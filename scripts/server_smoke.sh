#!/usr/bin/env bash
# Server smoke test: boot lindb_server, drive it with lindb_client over TCP,
# diff the output against the committed golden file, and verify the server
# shuts down cleanly on SIGTERM.
#
# Usage: scripts/server_smoke.sh [build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/examples/lindb_server"
CLIENT="$BUILD_DIR/examples/lindb_client"
GOLDEN="scripts/server_smoke_expected.txt"

[[ -x "$SERVER" && -x "$CLIENT" ]] || {
  echo "build examples first: cmake --build $BUILD_DIR -j" >&2
  exit 1
}

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$SERVER" --port 0 >"$WORK/server.out" 2>"$WORK/server.err" &
SERVER_PID=$!

# The server prints "PORT <n>" once it is listening.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(awk '/^PORT /{print $2; exit}' "$WORK/server.out" 2>/dev/null || true)"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/server.err" >&2; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "server never reported its port" >&2; exit 1; }

"$CLIENT" --port "$PORT" --file scripts/server_smoke_queries.sql >"$WORK/client.out"

if [[ "${UPDATE_GOLDEN:-0}" == "1" ]]; then
  cp "$WORK/client.out" "$GOLDEN"
  echo "updated $GOLDEN"
fi
diff -u "$GOLDEN" "$WORK/client.out" || {
  echo "server smoke output diverged from $GOLDEN" >&2
  exit 1
}

# Introspection: the same port must answer a Prometheus scrape over HTTP...
curl -sS --max-time 10 "http://127.0.0.1:$PORT/metrics" >"$WORK/metrics.out"
[[ -s "$WORK/metrics.out" ]] || { echo "/metrics scrape returned nothing" >&2; exit 1; }
grep -q '^# TYPE ' "$WORK/metrics.out" || {
  echo "/metrics is not Prometheus text exposition:" >&2
  head -5 "$WORK/metrics.out" >&2
  exit 1
}
grep -q '^server_requests ' "$WORK/metrics.out" || {
  echo "/metrics is missing the server_requests counter" >&2
  exit 1
}

# ...and system.queries must already hold the statements the golden run sent.
echo "SELECT count(*) FROM system.queries;" | "$CLIENT" --port "$PORT" >"$WORK/sysq.out"
grep -q '^OK 1 1$' "$WORK/sysq.out" || {
  echo "system.queries scan failed:" >&2
  cat "$WORK/sysq.out" >&2
  exit 1
}
SYSQ_COUNT="$(sed -n '3p' "$WORK/sysq.out")"
[[ "$SYSQ_COUNT" =~ ^[0-9]+$ && "$SYSQ_COUNT" -gt 0 ]] || {
  echo "system.queries is empty after the golden run (count='$SYSQ_COUNT')" >&2
  exit 1
}
echo "introspection smoke: /metrics OK, system.queries has $SYSQ_COUNT rows"

# Clean shutdown: SIGTERM must terminate the process promptly with status 0.
kill -TERM "$SERVER_PID"
STATUS=0
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    wait "$SERVER_PID" || STATUS=$?
    SERVER_PID=""
    break
  fi
  sleep 0.1
done
[[ -z "$SERVER_PID" ]] || { echo "server did not exit on SIGTERM" >&2; exit 1; }
[[ "$STATUS" -eq 0 ]] || { echo "server exited with status $STATUS" >&2; exit 1; }

echo "server smoke: OK"
