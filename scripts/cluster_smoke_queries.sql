-- The fig8 query-type mix phrased over the sharded frames table, plus the
-- merge shapes the coordinator must get byte-identical: GROUP BY keys split
-- across shards, the AVG -> SUM+COUNT rewrite, and ORDER BY/LIMIT k-way
-- merge. Every query is deterministic (ordered or aggregated) so a cluster
-- run diffs clean against a single-node run.

-- Type 2 analog: inference predicate.
SELECT count(*) AS hits FROM frames WHERE nudf_student(seed) = 1;

-- Type 1 analog: retrieval + inference projection, k-way merged.
SELECT id, nudf_student(seed) AS cls FROM frames WHERE id % 5 = 2 ORDER BY id;

-- Type 3 analog: inference aggregation (SUM/COUNT partials re-aggregated).
SELECT sum(nudf_student(seed)) AS s, count(*) AS n FROM frames WHERE id >= 24;

-- Type 4 analog: pure relational.
SELECT count(*) AS n FROM frames WHERE id % 3 = 0;

-- GROUP BY keys split across shards + the AVG rewrite.
SELECT seed % 4 AS g, count(*) AS n, sum(id) AS s, avg(seed) AS a
  FROM frames GROUP BY seed % 4 ORDER BY g;

-- Top-k: ORDER BY DESC with LIMIT, merged at the coordinator.
SELECT id, seed FROM frames ORDER BY id DESC LIMIT 7;

-- MIN/MAX partials.
SELECT min(id) AS lo, max(id) AS hi, count(*) AS n FROM frames;
