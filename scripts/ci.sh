#!/usr/bin/env bash
# CI entry point: build + test the default configuration, then rebuild under
# ThreadSanitizer and rerun the suite. The TSAN pass is what shakes out data
# races in the morsel-parallel relational paths (filters, join probe, hash
# aggregation, batched nUDFs) — the parallel_exec and accel tests drive
# multi-thread Devices explicitly, so races surface even on small hosts.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

echo "== CI pass 1/2: default build =="
run_suite build-ci

echo "== CI pass 2/2: ThreadSanitizer build =="
run_suite build-ci-tsan -DDL2SQL_SANITIZE=thread

echo "== CI: both passes green =="
