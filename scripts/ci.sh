#!/usr/bin/env bash
# CI entry point: build + test the default configuration, then rebuild under
# ThreadSanitizer and rerun the suite. The TSAN pass is what shakes out data
# races in the morsel-parallel relational paths (filters, join probe, hash
# aggregation, batched nUDFs) and the sharded cross-query caches — the
# parallel_exec, accel and cache tests drive multi-thread Devices explicitly,
# so races surface even on small hosts. The ASan pass rebuilds under
# AddressSanitizer+UBSan for memory-error and undefined-behaviour coverage.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

echo "== CI pass 1/9: default build =="
run_suite build-ci

echo "== CI pass 2/9: vectorized execution off (results must stay identical) =="
# The batch-at-a-time engine must be a pure performance change: rerunning the
# whole suite with DL2SQL_VECTOR=OFF pins the row-path fallback and proves
# nothing observable depends on which execution mode ran.
DL2SQL_VECTOR=OFF ctest --test-dir build-ci --output-on-failure -j "${JOBS}"

echo "== CI pass 3/9: resource accounting off (results must stay identical) =="
# Per-query accounting must be a pure observability change: rerunning the
# suite with DL2SQL_MEM_TRACKER=OFF pins the untracked path and proves no
# result depends on whether charges/limits/profiles were live.
DL2SQL_MEM_TRACKER=OFF ctest --test-dir build-ci --output-on-failure -j "${JOBS}"

echo "== CI pass 4/9: ThreadSanitizer build =="
run_suite build-ci-tsan -DDL2SQL_SANITIZE=thread

echo "== CI pass 5/9: tracing + cache + server + vector + profile tests under TSAN =="
# Redundant with the full TSAN suite above, but pinned by name so the
# concurrency-sensitive observability, caching, vectorized-kernel, and
# resource-accounting tests (trackers and the query-profile ring are written
# from pool workers and concurrent sessions) cannot silently drop out of
# coverage if the suite layout changes.
ctest --test-dir build-ci-tsan --output-on-failure -R "trace|metrics|counters|cache|server|vector|profile|mem_tracker"

echo "== CI pass 6/9: AddressSanitizer+UBSan build =="
# UBSan also proves the SIMD-friendly batch kernels clean: the float->int64
# canonicalization in the hash/compare kernels guards its casts explicitly.
run_suite build-ci-asan -DDL2SQL_SANITIZE=address

echo "== CI pass 7/9: tracing-overhead guard =="
# Tracing compiled in but runtime-disabled must stay under the overhead
# budget (default 5%; DL2SQL_TRACE_OVERHEAD_PCT overrides on noisy hosts),
# and enabled tracing must actually record spans. Uses the default
# (unsanitized) build: TSAN timing is meaningless for an overhead guard.
cmake --build build-ci -j "${JOBS}" --target bench_trace_overhead
./build-ci/bench/bench_trace_overhead
./build-ci/bench/bench_trace_overhead --enabled

echo "== CI pass 8/9: resource-accounting overhead guard =="
# Fully-enabled per-query accounting must stay within budget of the
# DL2SQL_MEM_TRACKER=OFF path on the fig8-style mix (default 5%;
# DL2SQL_PROFILE_OVERHEAD_PCT overrides on noisy hosts). Runs from the
# build dir so the emitted BENCH_profile.json never clobbers the committed
# snapshot at the repo root.
cmake --build build-ci -j "${JOBS}" --target bench_profile_overhead
(cd build-ci && ./bench/bench_profile_overhead)

echo "== CI pass 9/9: server smoke over TCP =="
# Boots lindb_server, drives it with lindb_client through a query script,
# diffs the output against the committed golden file, scrapes /metrics over
# HTTP (Prometheus text exposition) and scans system.queries (both must be
# non-empty), and checks SIGTERM shutdown is clean.
cmake --build build-ci -j "${JOBS}" --target lindb_server lindb_client
scripts/server_smoke.sh build-ci

echo "== CI: all passes green =="
