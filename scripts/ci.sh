#!/usr/bin/env bash
# CI entry point: build + test the default configuration, then rerun the
# suite under the feature gates (vectorized execution off, resource
# accounting off, paged out-of-core storage with a deliberately tiny buffer
# pool), then rebuild under ThreadSanitizer and AddressSanitizer+UBSan and
# rerun everything again. The TSAN pass is what shakes out data races in the
# morsel-parallel relational paths (filters, join probe, hash aggregation,
# batched nUDFs), the sharded cross-query caches, and the buffer pool's
# sharded pin/evict protocol.
#
# Passes are REGISTERED in the list at the bottom and banner numbers are
# derived from it, so adding a pass cannot silently reuse or skip a number.
# DL2SQL_CI_SKIP is an extended-regex over pass names for hosts that cannot
# run a pass (e.g. DL2SQL_CI_SKIP='sanitizer' on a box without TSAN); the
# summary line names every skipped pass so a green run that skipped work
# cannot masquerade as a full one.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

pass_default_build() {
  run_suite build-ci
}

pass_vector_off() {
  # The batch-at-a-time engine must be a pure performance change: rerunning
  # the whole suite with DL2SQL_VECTOR=OFF pins the row-path fallback and
  # proves nothing observable depends on which execution mode ran.
  DL2SQL_VECTOR=OFF ctest --test-dir build-ci --output-on-failure -j "${JOBS}"
}

pass_mem_tracker_off() {
  # Per-query accounting must be a pure observability change: rerunning the
  # suite with DL2SQL_MEM_TRACKER=OFF pins the untracked path and proves no
  # result depends on whether charges/limits/profiles were live.
  DL2SQL_MEM_TRACKER=OFF ctest --test-dir build-ci --output-on-failure \
    -j "${JOBS}"
}

pass_paged_storage() {
  # Paged storage must be bit-identical to the in-memory path: the whole
  # suite reruns with a deliberately tiny pool (2 MB), an aggressive paging
  # threshold, and a query memory budget, so eviction, the grace hash join,
  # and external aggregation all run on every merge — not just the happy
  # in-memory path. Tests that assert in-memory accounting semantics pin
  # StorageMode::kInMemory themselves.
  DL2SQL_STORAGE=paged \
  DL2SQL_BUFFER_POOL_BYTES=2097152 \
  DL2SQL_PAGE_MIN_BYTES=4096 \
  DL2SQL_QUERY_MEM_LIMIT=67108864 \
    ctest --test-dir build-ci --output-on-failure -j "${JOBS}"
}

pass_tsan_build() {
  run_suite build-ci-tsan -DDL2SQL_SANITIZE=thread
}

pass_tsan_pinned() {
  # Redundant with the full TSAN suite above, but pinned by name so the
  # concurrency-sensitive observability, caching, vectorized-kernel,
  # resource-accounting, and out-of-core tests (buffer-pool frames are
  # pinned and evicted from concurrent query threads) cannot silently drop
  # out of coverage if the suite layout changes.
  ctest --test-dir build-ci-tsan --output-on-failure \
    -R "trace|metrics|counters|cache|server|vector|profile|mem_tracker|storage|spill|buffer_pool|cluster"
}

pass_asan_build() {
  # UBSan also proves the SIMD-friendly batch kernels clean: the float->int64
  # canonicalization in the hash/compare kernels guards its casts explicitly.
  run_suite build-ci-asan -DDL2SQL_SANITIZE=address
}

pass_trace_overhead() {
  # Tracing compiled in but runtime-disabled must stay under the overhead
  # budget (default 5%; DL2SQL_TRACE_OVERHEAD_PCT overrides on noisy hosts),
  # and enabled tracing must actually record spans. Uses the default
  # (unsanitized) build: TSAN timing is meaningless for an overhead guard.
  cmake --build build-ci -j "${JOBS}" --target bench_trace_overhead
  ./build-ci/bench/bench_trace_overhead
  ./build-ci/bench/bench_trace_overhead --enabled
}

pass_profile_overhead() {
  # Fully-enabled per-query accounting must stay within budget of the
  # DL2SQL_MEM_TRACKER=OFF path on the fig8-style mix (default 5%;
  # DL2SQL_PROFILE_OVERHEAD_PCT overrides on noisy hosts). Runs from the
  # build dir so the emitted BENCH_profile.json never clobbers the committed
  # snapshot at the repo root. The distributed tracing leg runs AFTER the
  # profile bench (which rewrites BENCH_profile.json) and merges its
  # dist_mix_on_sec/dist_mix_off_sec keys into the same file.
  cmake --build build-ci -j "${JOBS}" --target bench_profile_overhead \
    bench_trace_overhead
  (cd build-ci && ./bench/bench_profile_overhead)
  (cd build-ci && ./bench/bench_trace_overhead --distributed)
}

pass_oocore_scale() {
  # Out-of-core scale guard: a fig8-style mix over data >= 10x the buffer
  # pool must complete bit-identical to the in-memory run with bounded RSS
  # and visible spills. Runs from the build dir (emits BENCH_oocore.json).
  cmake --build build-ci -j "${JOBS}" --target bench_oocore_scale
  (cd build-ci && ./bench/bench_oocore_scale --quick)
}

pass_server_smoke() {
  # Boots lindb_server, drives it with lindb_client through a query script,
  # diffs the output against the committed golden file, scrapes /metrics over
  # HTTP (Prometheus text exposition) and scans system.queries (both must be
  # non-empty), and checks SIGTERM shutdown is clean.
  cmake --build build-ci -j "${JOBS}" --target lindb_server lindb_client
  scripts/server_smoke.sh build-ci
}

pass_cluster_smoke() {
  # Boots a coordinator + 2 shard lindb_servers on loopback, loads a
  # hash-partitioned table through the coordinator, and requires the fig8
  # mix to render byte-identical to a single-node server over the same data.
  # Also checks system.shards health, federated system.queries, and clean
  # SIGTERM shutdown of all processes.
  cmake --build build-ci -j "${JOBS}" --target lindb_server lindb_client
  scripts/cluster_smoke.sh build-ci
}

# --- registered pass list: banner numbers derive from position here. ---
PASS_NAMES=()
PASS_FUNCS=()
register_pass() {
  PASS_NAMES+=("$1")
  PASS_FUNCS+=("$2")
}
register_pass "default build" pass_default_build
register_pass "vectorized execution off (results must stay identical)" \
  pass_vector_off
register_pass "resource accounting off (results must stay identical)" \
  pass_mem_tracker_off
register_pass "paged storage, tiny pool (results must stay identical)" \
  pass_paged_storage
register_pass "ThreadSanitizer build" pass_tsan_build
register_pass "concurrency-sensitive tests pinned under ThreadSanitizer" \
  pass_tsan_pinned
register_pass "AddressSanitizer+UBSan build" pass_asan_build
register_pass "tracing-overhead guard" pass_trace_overhead
register_pass "resource-accounting overhead guard" pass_profile_overhead
register_pass "out-of-core scale guard" pass_oocore_scale
register_pass "server smoke over TCP" pass_server_smoke
register_pass "cluster smoke: scatter-gather vs single node" \
  pass_cluster_smoke

TOTAL="${#PASS_NAMES[@]}"
SKIPPED=()
for ((i = 0; i < TOTAL; ++i)) do
  name="${PASS_NAMES[$i]}"
  if [[ -n "${DL2SQL_CI_SKIP:-}" ]] && [[ "${name}" =~ ${DL2SQL_CI_SKIP} ]]
  then
    echo "== CI pass $((i + 1))/${TOTAL}: ${name} == SKIPPED (DL2SQL_CI_SKIP)"
    SKIPPED+=("${name}")
    continue
  fi
  echo "== CI pass $((i + 1))/${TOTAL}: ${name} =="
  "${PASS_FUNCS[$i]}"
done

if ((${#SKIPPED[@]} > 0)); then
  echo "== CI: green with ${#SKIPPED[@]} pass(es) SKIPPED:" \
    "$(printf '[%s] ' "${SKIPPED[@]}")=="
else
  echo "== CI: all ${TOTAL} passes green =="
fi
