#!/usr/bin/env bash
# CI entry point: build + test the default configuration, then rebuild under
# ThreadSanitizer and rerun the suite. The TSAN pass is what shakes out data
# races in the morsel-parallel relational paths (filters, join probe, hash
# aggregation, batched nUDFs) and the sharded cross-query caches — the
# parallel_exec, accel and cache tests drive multi-thread Devices explicitly,
# so races surface even on small hosts. The ASan pass rebuilds under
# AddressSanitizer+UBSan for memory-error and undefined-behaviour coverage.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

echo "== CI pass 1/7: default build =="
run_suite build-ci

echo "== CI pass 2/7: vectorized execution off (results must stay identical) =="
# The batch-at-a-time engine must be a pure performance change: rerunning the
# whole suite with DL2SQL_VECTOR=OFF pins the row-path fallback and proves
# nothing observable depends on which execution mode ran.
DL2SQL_VECTOR=OFF ctest --test-dir build-ci --output-on-failure -j "${JOBS}"

echo "== CI pass 3/7: ThreadSanitizer build =="
run_suite build-ci-tsan -DDL2SQL_SANITIZE=thread

echo "== CI pass 4/7: tracing + cache + server + vector tests under TSAN =="
# Redundant with the full TSAN suite above, but pinned by name so the
# concurrency-sensitive observability, caching, and vectorized-kernel tests
# (string-comparison and hash kernels run from pool workers) cannot silently
# drop out of coverage if the suite layout changes.
ctest --test-dir build-ci-tsan --output-on-failure -R "trace|metrics|counters|cache|server|vector"

echo "== CI pass 5/7: AddressSanitizer+UBSan build =="
# UBSan also proves the SIMD-friendly batch kernels clean: the float->int64
# canonicalization in the hash/compare kernels guards its casts explicitly.
run_suite build-ci-asan -DDL2SQL_SANITIZE=address

echo "== CI pass 6/7: tracing-overhead guard =="
# Tracing compiled in but runtime-disabled must stay under the overhead
# budget (default 5%; DL2SQL_TRACE_OVERHEAD_PCT overrides on noisy hosts),
# and enabled tracing must actually record spans. Uses the default
# (unsanitized) build: TSAN timing is meaningless for an overhead guard.
cmake --build build-ci -j "${JOBS}" --target bench_trace_overhead
./build-ci/bench/bench_trace_overhead
./build-ci/bench/bench_trace_overhead --enabled

echo "== CI pass 7/7: server smoke over TCP =="
# Boots lindb_server, drives it with lindb_client through a query script,
# diffs the output against the committed golden file, scrapes /metrics over
# HTTP (Prometheus text exposition) and scans system.queries (both must be
# non-empty), and checks SIGTERM shutdown is clean.
cmake --build build-ci -j "${JOBS}" --target lindb_server lindb_client
scripts/server_smoke.sh build-ci

echo "== CI: all passes green =="
