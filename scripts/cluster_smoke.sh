#!/usr/bin/env bash
# Cluster smoke test: boot two lindb_server shards plus a coordinator on
# loopback ports, load a hash-partitioned frames table through the
# coordinator, run the fig8 query mix with lindb_client, and diff the
# rendered output byte-for-byte against a single-node server running the
# same mix over the same data. Also checks the federated introspection
# surface (system.shards health, shard-tagged system.queries rows) and that
# all three processes shut down cleanly on SIGTERM.
#
# Usage: scripts/cluster_smoke.sh [build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/examples/lindb_server"
CLIENT="$BUILD_DIR/examples/lindb_client"
QUERIES="scripts/cluster_smoke_queries.sql"

[[ -x "$SERVER" && -x "$CLIENT" ]] || {
  echo "build examples first: cmake --build $BUILD_DIR -j" >&2
  exit 1
}

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# The server prints "PORT <n>" once it is listening.
wait_port() {
  local out="$1" pid="$2" port=""
  for _ in $(seq 1 100); do
    port="$(awk '/^PORT /{print $2; exit}' "$out" 2>/dev/null || true)"
    [[ -n "$port" ]] && { echo "$port"; return 0; }
    kill -0 "$pid" 2>/dev/null || { cat "${out%.out}.err" >&2; return 1; }
    sleep 0.1
  done
  echo "server never reported its port ($out)" >&2
  return 1
}

# Shared rows: 40 frames, ids 0..39, seed == id. The coordinator routes them
# by hash(id); the single-node server just takes them all.
{
  echo -n "INSERT INTO frames VALUES "
  for i in $(seq 0 39); do
    [[ "$i" -gt 0 ]] && echo -n ", "
    echo -n "($i, $i)"
  done
  echo ";"
} >"$WORK/rows.sql"

{
  echo "CREATE TABLE frames (id int64, seed int64) PARTITION BY HASH (id);"
  cat "$WORK/rows.sql"
} >"$WORK/cluster_init.sql"
{
  echo "CREATE TABLE frames (id int64, seed int64);"
  cat "$WORK/rows.sql"
} >"$WORK/single_init.sql"

# Runtime tracing on for every process: the coordinator stamps distributed
# queries with trace ids and ships them to the shards, which is what the
# propagation checks below observe. Tracing never changes rendered results,
# so the byte-identity gate is also exercised with the pipeline live.
export DL2SQL_TRACE=on

# --- shards, then the coordinator pointed at them ---
"$SERVER" --port 0 --demo-model >"$WORK/shard0.out" 2>"$WORK/shard0.err" &
PIDS+=($!)
SHARD0_PID=$!
"$SERVER" --port 0 --demo-model >"$WORK/shard1.out" 2>"$WORK/shard1.err" &
PIDS+=($!)
SHARD1_PID=$!
SHARD0_PORT="$(wait_port "$WORK/shard0.out" "$SHARD0_PID")"
SHARD1_PORT="$(wait_port "$WORK/shard1.out" "$SHARD1_PID")"

"$SERVER" --port 0 --demo-model \
  --shard "127.0.0.1:$SHARD0_PORT" --shard "127.0.0.1:$SHARD1_PORT" \
  --init "$WORK/cluster_init.sql" \
  >"$WORK/coord.out" 2>"$WORK/coord.err" &
PIDS+=($!)
COORD_PID=$!
COORD_PORT="$(wait_port "$WORK/coord.out" "$COORD_PID")"

# --- single-node reference over identical data ---
"$SERVER" --port 0 --demo-model --init "$WORK/single_init.sql" \
  >"$WORK/single.out" 2>"$WORK/single.err" &
PIDS+=($!)
SINGLE_PID=$!
SINGLE_PORT="$(wait_port "$WORK/single.out" "$SINGLE_PID")"

# --- the byte-identity gate ---
"$CLIENT" --port "$COORD_PORT" --file "$QUERIES" >"$WORK/cluster_mix.out"
"$CLIENT" --port "$SINGLE_PORT" --file "$QUERIES" >"$WORK/single_mix.out"
diff -u "$WORK/single_mix.out" "$WORK/cluster_mix.out" || {
  echo "cluster results diverged from single-node run" >&2
  exit 1
}
echo "cluster smoke: fig8 mix byte-identical across 2 shards vs single node"

# --- data actually landed on both shards (hash partitioning is real) ---
for shard_port in "$SHARD0_PORT" "$SHARD1_PORT"; do
  echo "SELECT count(*) FROM frames;" | "$CLIENT" --port "$shard_port" \
    >"$WORK/shardcount.out"
  COUNT="$(sed -n '3p' "$WORK/shardcount.out")"
  [[ "$COUNT" =~ ^[0-9]+$ && "$COUNT" -gt 0 && "$COUNT" -lt 40 ]] || {
    echo "shard on port $shard_port holds $COUNT of 40 rows (want a proper" \
         "slice)" >&2
    exit 1
  }
done

# --- federated introspection ---
echo "SELECT count(*) FROM system.shards WHERE healthy;" \
  | "$CLIENT" --port "$COORD_PORT" >"$WORK/shards.out"
HEALTHY="$(sed -n '3p' "$WORK/shards.out")"
[[ "$HEALTHY" == "2" ]] || {
  echo "system.shards reports $HEALTHY healthy shards (want 2):" >&2
  cat "$WORK/shards.out" >&2
  exit 1
}
# system.queries must federate: rows from the coordinator (shard = -1) AND
# from both shards' own query logs, tagged with their shard index.
echo "SELECT count(*) FROM system.queries WHERE shard = -1;" \
  | "$CLIENT" --port "$COORD_PORT" >"$WORK/sysq_local.out"
LOCAL_ROWS="$(sed -n '3p' "$WORK/sysq_local.out")"
[[ "$LOCAL_ROWS" =~ ^[0-9]+$ && "$LOCAL_ROWS" -gt 0 ]] || {
  echo "federated system.queries has no coordinator rows" >&2
  exit 1
}
for shard_idx in 0 1; do
  echo "SELECT count(*) FROM system.queries WHERE shard = $shard_idx;" \
    | "$CLIENT" --port "$COORD_PORT" >"$WORK/sysq_shard.out"
  SHARD_ROWS="$(sed -n '3p' "$WORK/sysq_shard.out")"
  [[ "$SHARD_ROWS" =~ ^[0-9]+$ && "$SHARD_ROWS" -gt 0 ]] || {
    echo "federated system.queries has no rows from shard $shard_idx" >&2
    exit 1
  }
done
echo "cluster smoke: system.shards healthy=2, system.queries federated" \
     "(coordinator=$LOCAL_ROWS rows, shards tagged)"

# --- federated /metrics: one coordinator scrape, every shard labeled ---
curl -sS --max-time 10 "http://127.0.0.1:$COORD_PORT/metrics" \
  >"$WORK/fed_metrics.out"
for shard_idx in 0 1; do
  grep -q "^cluster_shard_client_statements{shard=\"$shard_idx\"} " \
    "$WORK/fed_metrics.out" || {
    echo "coordinator /metrics is missing shard $shard_idx client series" >&2
    exit 1
  }
  grep -q "^server_requests{shard=\"$shard_idx\"} " "$WORK/fed_metrics.out" || {
    echo "coordinator /metrics is missing shard $shard_idx scraped series" >&2
    exit 1
  }
done
echo "cluster smoke: /metrics federates shard-labeled series from both shards"

# --- trace propagation: one distributed statement, one cluster-wide id ---
# Shard-side query-log records only carry a trace id when the coordinator
# shipped one in the wire header, so any hex id found on a shard must also
# name a coordinator (shard = -1) record: the same trace spans both nodes.
TRACE_ID="$(echo "SELECT trace_id FROM system.queries WHERE shard = 0;" \
  | "$CLIENT" --port "$COORD_PORT" | grep -E '^[0-9a-f]{16}$' | tail -1)"
[[ -n "$TRACE_ID" ]] || {
  echo "no shard 0 query-log record carries a trace id" >&2
  exit 1
}
COORD_MATCH="$(echo "SELECT count(*) FROM system.queries \
WHERE shard = -1 AND trace_id = '$TRACE_ID';" \
  | "$CLIENT" --port "$COORD_PORT" | sed -n '3p')"
[[ "$COORD_MATCH" =~ ^[0-9]+$ && "$COORD_MATCH" -gt 0 ]] || {
  echo "shard trace id $TRACE_ID has no matching coordinator record" >&2
  exit 1
}
echo "cluster smoke: trace id $TRACE_ID shared across coordinator and shard"

# --- clean shutdown: coordinator first, then shards ---
for pid in "$COORD_PID" "$SINGLE_PID" "$SHARD0_PID" "$SHARD1_PID"; do
  kill -TERM "$pid"
  STATUS=0
  for _ in $(seq 1 100); do
    if ! kill -0 "$pid" 2>/dev/null; then
      wait "$pid" || STATUS=$?
      pid=""
      break
    fi
    sleep 0.1
  done
  [[ -z "$pid" ]] || { echo "process $pid did not exit on SIGTERM" >&2; exit 1; }
  [[ "$STATUS" -eq 0 ]] || { echo "process exited with status $STATUS" >&2; exit 1; }
done
PIDS=()

echo "cluster smoke: OK"
