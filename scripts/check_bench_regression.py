#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json files against committed snapshots.

Usage:
    scripts/check_bench_regression.py FRESH_DIR [BASELINE_DIR]
    scripts/check_bench_regression.py --list [BASELINE_DIR]

FRESH_DIR holds the just-produced BENCH_*.json files (e.g. the build
directory); BASELINE_DIR (default: repo root) holds the committed snapshots.
For every benchmark file present in BOTH directories, every seconds-like
numeric leaf (key ending in "seconds" or "_sec") is compared; the check
fails when a fresh value is more than DL2SQL_BENCH_REGRESSION_PCT percent
(default 25) slower than the committed baseline.

A fresh key with no baseline counterpart fails the check with a message
naming the file and key (the committed snapshot is stale — re-run the bench
on a reference machine and commit the refreshed JSON). Keys present only in
the baseline are reported informationally (that bench may simply not have
run). Speedups and counter drift are informational too: committed snapshots
come from a different machine than CI, so absolute-equality checks would be
noise. Set DL2SQL_BENCH_REGRESSION_PCT=0 to disable the regression check
(reports only; missing baseline keys still fail).

Scaling keys (thread keys matching "_<N>t_sec" and shard keys matching
"_<N>shard_sec", with N > 1) are only compared when both the baseline and
the fresh JSON carry a top-level "hardware_concurrency" field, the two
values agree, and both are >= 4: an 8-thread (or 4-shard scatter-gather)
timing from a 1-core container says nothing about an 8-core box (and vice
versa), so those comparisons are skipped with a note instead of silently
lying. Presence is still enforced for registered keys.

`--list` prints every tracked key per baseline file and exits; use it to see
what the check would compare before touching a snapshot.
"""

import json
import os
import re
import sys

# Key metrics that must be present in BOTH the fresh output and the committed
# snapshot whenever the named file is compared. Auto-discovery above catches
# any seconds-like leaf, but these registered keys guard the metrics the
# repo's conclusions rest on (the vectorized-vs-row timings re-derive the
# cost model's SQL calibration factor): if a bench silently stops emitting
# one, the check fails instead of comparing a shrunken key set.
REQUIRED_KEYS = {
    "BENCH_parallel.json": [
        "workloads[filter].row_1t_sec",
        "workloads[filter].vec_1t_sec",
        "workloads[filter].vec_8t_sec",
        "workloads[join].row_1t_sec",
        "workloads[join].vec_1t_sec",
        "workloads[join].vec_8t_sec",
        "workloads[aggregate].row_1t_sec",
        "workloads[aggregate].vec_1t_sec",
        "workloads[aggregate].vec_8t_sec",
        "workloads[nudf_batch].vec_1t_sec",
        "workloads[nudf_batch].vec_8t_sec",
    ],
    "BENCH_profile.json": [
        "mix_on_sec",
        "mix_off_sec",
        "dist_mix_on_sec",
        "dist_mix_off_sec",
    ],
    "BENCH_oocore.json": [
        "mix_paged_sec",
        "mix_inmem_sec",
    ],
    "BENCH_shard.json": [
        "mix_1shard_sec",
        "mix_4shard_sec",
    ],
}

# Memory-footprint keys compared like seconds keys (fresh must not exceed
# the baseline by more than the threshold) but gated on a matching
# "hardware_concurrency": allocator slack and result residency differ enough
# across machine shapes that a cross-machine RSS comparison is noise. The
# keys are still REQUIRED to be present in both documents whenever the file
# is compared — the out-of-core bench's bounded-RSS claim must stay
# observable.
GATED_MEM_KEYS = {
    "BENCH_oocore.json": [
        "peak_rss_delta_mb",
    ],
}

# Scaling leaves: thread keys "<workload>_<N>t_sec" and shard keys
# "<mix>_<N>shard_sec". N == 1 is a plain single-thread (or single-shard)
# timing and always comparable; N > 1 depends on the core count of the
# producing machine — a 4-shard scatter-gather on 1 core is pure overhead,
# not scaling.
THREAD_KEY_RE = re.compile(r"_(\d+)t_sec$")
SHARD_KEY_RE = re.compile(r"_(\d+)shard_sec$")


def scaling_count(path):
    """Returns N for a "_<N>t_sec" or "_<N>shard_sec" leaf path, else None."""
    for regex in (THREAD_KEY_RE, SHARD_KEY_RE):
        match = regex.search(path)
        if match:
            return int(match.group(1))
    return None


def seconds_leaves(node, prefix=""):
    """Yields (path, value) for every seconds-like numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (dict, list)):
                yield from seconds_leaves(value, path)
            elif isinstance(value, (int, float)) and (
                key.endswith("seconds") or key.endswith("_sec")
            ):
                yield path, float(value)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            # Label list entries by their "name" field when present, else index.
            label = value.get("name", str(i)) if isinstance(value, dict) else str(i)
            yield from seconds_leaves(value, f"{prefix}[{label}]")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def default_baseline_dir():
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")


def bench_files(directory):
    try:
        names = os.listdir(directory)
    except OSError as err:
        print(f"cannot list {directory}: {err}")
        sys.exit(2)
    return {
        name
        for name in names
        if name.startswith("BENCH_") and name.endswith(".json")
    }


def list_tracked_keys(baseline_dir):
    """Prints every seconds-like key the check tracks, per baseline file."""
    names = sorted(bench_files(baseline_dir))
    if not names:
        print(f"no BENCH_*.json in {baseline_dir}")
        return 2
    for name in names:
        print(name)
        keys = sorted(dict(seconds_leaves(load(os.path.join(baseline_dir, name)))))
        if not keys:
            print("  (no seconds-like keys)")
        for key in keys:
            print(f"  {key}")
    return 0


def main():
    args = sys.argv[1:]
    if args and args[0] == "--list":
        if len(args) > 2:
            print(__doc__)
            return 2
        return list_tracked_keys(args[1] if len(args) == 2 else default_baseline_dir())
    if len(args) < 1 or len(args) > 2:
        print(__doc__)
        return 2
    fresh_dir = args[0]
    baseline_dir = args[1] if len(args) == 2 else default_baseline_dir()
    threshold_pct = float(os.environ.get("DL2SQL_BENCH_REGRESSION_PCT", "25"))

    baselines = bench_files(baseline_dir)
    fresh_files = bench_files(fresh_dir)
    common = sorted(baselines & fresh_files)
    if not common:
        print(f"no BENCH_*.json present in both {fresh_dir} and {baseline_dir}")
        return 2
    for name in sorted(baselines - fresh_files):
        print(f"note: committed {name} has no fresh counterpart (not run?)")

    regressions = []
    missing_baseline_keys = []
    compared = 0
    missing_required = []
    skipped_scaling = 0
    for name in common:
        base_doc = load(os.path.join(baseline_dir, name))
        fresh_doc = load(os.path.join(fresh_dir, name))
        base = dict(seconds_leaves(base_doc))
        fresh = dict(seconds_leaves(fresh_doc))
        base_hw = base_doc.get("hardware_concurrency") if isinstance(
            base_doc, dict) else None
        fresh_hw = fresh_doc.get("hardware_concurrency") if isinstance(
            fresh_doc, dict) else None
        skip_scaling = (
            base_hw is None
            or fresh_hw is None
            or base_hw != fresh_hw
            or min(base_hw, fresh_hw) < 4
        )
        for key in REQUIRED_KEYS.get(name, []):
            for side, leaves in (("fresh", fresh), ("baseline", base)):
                if key not in leaves:
                    print(f"ERROR: {name}:{key} (registered key metric) "
                          f"missing from {side} output")
                    missing_required.append((name, key, side))
        for key in GATED_MEM_KEYS.get(name, []):
            base_v = base_doc.get(key) if isinstance(base_doc, dict) else None
            fresh_v = fresh_doc.get(key) if isinstance(fresh_doc, dict) else None
            for side, value in (("fresh", fresh_v), ("baseline", base_v)):
                if not isinstance(value, (int, float)):
                    print(f"ERROR: {name}:{key} (registered memory metric) "
                          f"missing from {side} output")
                    missing_required.append((name, key, side))
            if not isinstance(base_v, (int, float)) or not isinstance(
                    fresh_v, (int, float)):
                continue
            if base_hw is None or fresh_hw is None or base_hw != fresh_hw:
                print(f"note: {name}:{key} skipped (memory key; "
                      f"cores base={base_hw} fresh={fresh_hw})")
                skipped_scaling += 1
                continue
            compared += 1
            if base_v <= 0:
                continue
            delta_pct = (float(fresh_v) - float(base_v)) / float(base_v) * 100.0
            marker = ""
            if threshold_pct > 0 and delta_pct > threshold_pct:
                marker = "  <-- REGRESSION"
                regressions.append(
                    (name, key, float(base_v), float(fresh_v), delta_pct,
                     "MB"))
            print(f"{name}:{key}: base={base_v:.2f}MB fresh={fresh_v:.2f}MB "
                  f"({delta_pct:+.1f}%){marker}")
        for path in sorted(base.keys() | fresh.keys()):
            if path not in base:
                # A bench now reports a timing the committed snapshot has
                # never seen: without a baseline the regression check is
                # silently blind to it, so fail loudly instead of crashing
                # with a KeyError (or skipping it with a shrug).
                print(f"ERROR: {name}:{path} has no baseline key in "
                      f"{baseline_dir}/{name}")
                missing_baseline_keys.append((name, path))
                continue
            if path not in fresh:
                print(f"note: {name}:{path} only in baseline (bench not run?)")
                continue
            n_scale = scaling_count(path)
            if n_scale is not None and n_scale > 1 and skip_scaling:
                print(f"note: {name}:{path} skipped (scaling key; "
                      f"cores base={base_hw} fresh={fresh_hw})")
                skipped_scaling += 1
                continue
            compared += 1
            b, f = base[path], fresh[path]
            if b <= 0:
                continue  # degenerate baseline; nothing to compare against
            delta_pct = (f - b) / b * 100.0
            marker = ""
            if threshold_pct > 0 and delta_pct > threshold_pct:
                marker = "  <-- REGRESSION"
                regressions.append((name, path, b, f, delta_pct, "s"))
            print(f"{name}:{path}: base={b:.6f}s fresh={f:.6f}s "
                  f"({delta_pct:+.1f}%){marker}")

    print(f"\ncompared {compared} seconds-like leaves across "
          f"{len(common)} file(s), threshold {threshold_pct:.0f}%"
          + (f", skipped {skipped_scaling} thread-scaling leaves"
             if skipped_scaling else ""))
    if missing_required:
        print(f"FAIL: {len(missing_required)} registered key metric(s) "
              "missing:")
        for name, key, side in missing_required:
            print(f"  {name}:{key} ({side})")
        return 1
    if missing_baseline_keys:
        print(f"FAIL: {len(missing_baseline_keys)} fresh key(s) without a "
              "committed baseline; refresh the BENCH_*.json snapshot(s):")
        for name, path in missing_baseline_keys:
            print(f"  {name}:{path}")
        return 1
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s) beyond "
              f"{threshold_pct:.0f}%:")
        for name, path, b, f, delta, unit in regressions:
            print(f"  {name}:{path}: {b:.6f}{unit} -> {f:.6f}{unit} "
                  f"(+{delta:.1f}%)")
        return 1
    print("OK: no wall-clock or memory regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
