#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json files against committed snapshots.

Usage:
    scripts/check_bench_regression.py FRESH_DIR [BASELINE_DIR]

FRESH_DIR holds the just-produced BENCH_*.json files (e.g. the build
directory); BASELINE_DIR (default: repo root) holds the committed snapshots.
For every benchmark file present in BOTH directories, every seconds-like
numeric leaf (key ending in "seconds" or "_sec") is compared; the check
fails when a fresh value is more than DL2SQL_BENCH_REGRESSION_PCT percent
(default 25) slower than the committed baseline.

Only wall-clock regressions fail the check. Speedups, counter drift and new
or removed keys are reported informationally: committed snapshots come from
a different machine than CI, so absolute-equality checks would be noise.
Set DL2SQL_BENCH_REGRESSION_PCT=0 to disable the check (reports only).
"""

import json
import os
import sys


def seconds_leaves(node, prefix=""):
    """Yields (path, value) for every seconds-like numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (dict, list)):
                yield from seconds_leaves(value, path)
            elif isinstance(value, (int, float)) and (
                key.endswith("seconds") or key.endswith("_sec")
            ):
                yield path, float(value)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            # Label list entries by their "name" field when present, else index.
            label = value.get("name", str(i)) if isinstance(value, dict) else str(i)
            yield from seconds_leaves(value, f"{prefix}[{label}]")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(__doc__)
        return 2
    fresh_dir = sys.argv[1]
    baseline_dir = sys.argv[2] if len(sys.argv) == 3 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), ".."
    )
    threshold_pct = float(os.environ.get("DL2SQL_BENCH_REGRESSION_PCT", "25"))

    baselines = {
        name
        for name in os.listdir(baseline_dir)
        if name.startswith("BENCH_") and name.endswith(".json")
    }
    fresh_files = {
        name
        for name in os.listdir(fresh_dir)
        if name.startswith("BENCH_") and name.endswith(".json")
    }
    common = sorted(baselines & fresh_files)
    if not common:
        print(f"no BENCH_*.json present in both {fresh_dir} and {baseline_dir}")
        return 2
    for name in sorted(baselines - fresh_files):
        print(f"note: committed {name} has no fresh counterpart (not run?)")

    regressions = []
    compared = 0
    for name in common:
        base = dict(seconds_leaves(load(os.path.join(baseline_dir, name))))
        fresh = dict(seconds_leaves(load(os.path.join(fresh_dir, name))))
        for path in sorted(base.keys() | fresh.keys()):
            if path not in base or path not in fresh:
                print(f"note: {name}:{path} only in "
                      f"{'baseline' if path in base else 'fresh'}")
                continue
            compared += 1
            b, f = base[path], fresh[path]
            if b <= 0:
                continue  # degenerate baseline; nothing to compare against
            delta_pct = (f - b) / b * 100.0
            marker = ""
            if threshold_pct > 0 and delta_pct > threshold_pct:
                marker = "  <-- REGRESSION"
                regressions.append((name, path, b, f, delta_pct))
            print(f"{name}:{path}: base={b:.6f}s fresh={f:.6f}s "
                  f"({delta_pct:+.1f}%){marker}")

    print(f"\ncompared {compared} seconds-like leaves across "
          f"{len(common)} file(s), threshold {threshold_pct:.0f}%")
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s) beyond "
              f"{threshold_pct:.0f}%:")
        for name, path, b, f, delta in regressions:
            print(f"  {name}:{path}: {b:.6f}s -> {f:.6f}s (+{delta:.1f}%)")
        return 1
    print("OK: no wall-clock regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
