-- Smoke-test script driven through lindb_client against a live lindb_server.
-- Deterministic: fixed data, ordered results.
CREATE TABLE readings (id INT64, sensor STRING, temp FLOAT64);
INSERT INTO readings VALUES (1, 'a', 20.5), (2, 'b', 31.0), (3, 'a', 19.25), (4, 'c', 42.0);
SELECT count(*) FROM readings;
SELECT sensor, count(*) AS n FROM readings GROUP BY sensor ORDER BY sensor;
SELECT id, temp FROM readings WHERE temp > 20.0 ORDER BY id;
UPDATE readings SET temp = 0.0 WHERE sensor = 'c';
SELECT id, temp FROM readings WHERE temp > 20.0 ORDER BY id;
SELECT missing_column FROM readings;
DROP TABLE readings;
