/// \file server_introspection_test.cc
/// \brief Introspection under serving load, TSAN-pinned in CI (ctest -R
/// server): 8 client threads run the fig8-style query mix while observers
/// scrape /metrics over real HTTP and scan system.queries / system.sessions
/// through SQL. The query-log ring must never block writers and readers must
/// never observe torn records.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accel/device.h"
#include "common/logging.h"
#include "db/database.h"
#include "db/query_log.h"
#include "server/session.h"
#include "server/tcp_server.h"

namespace dl2sql::server {
namespace {

using db::DataType;
using db::Database;
using db::NUdfInfo;
using db::QueryLog;
using db::QueryLogRecord;
using db::Table;
using db::TableSchema;
using db::Value;

std::shared_ptr<Device> MakeCpuDevice(int threads) {
  DeviceProfile profile = Device::ServerCpuProfile();
  profile.name = "introspection-cpu-" + std::to_string(threads);
  profile.num_threads = threads;
  return std::make_shared<Device>(profile);
}

void RegisterAffineNudf(Database* db) {
  NUdfInfo info;
  info.model_name = "affine";
  info.fingerprint = 0xabcdULL;
  db->udfs().RegisterNeural(
      "nudf_affine", DataType::kFloat64,
      [](const std::vector<Value>& args) -> Result<Value> {
        DL2SQL_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        return Value::Float(x * 2.0 + 1.0);
      },
      info,
      [](const std::vector<std::vector<Value>>& rows)
          -> Result<std::vector<Value>> {
        std::vector<Value> out;
        out.reserve(rows.size());
        for (const auto& row : rows) {
          DL2SQL_ASSIGN_OR_RETURN(double x, row[0].AsDouble());
          out.push_back(Value::Float(x * 2.0 + 1.0));
        }
        return out;
      },
      /*arity=*/1, /*parallel_safe=*/true);
}

void MakeTable(Database* db, const std::string& name, int64_t rows) {
  TableSchema schema({{"id", DataType::kInt64}, {"val", DataType::kInt64}});
  Table t{schema};
  for (int64_t i = 0; i < rows; ++i) {
    DL2SQL_CHECK(t.AppendRow({Value::Int(i), Value::Int(i % 97)}).ok());
  }
  DL2SQL_CHECK(db->RegisterTable(name, std::move(t)).ok());
}

/// The fig8 query-type mix phrased over the test table (see
/// bench/serving_load.cc): filter-by-nUDF, project-nUDF, aggregate-over-nUDF,
/// and a relational-only control.
const std::vector<std::string>& Fig8Mix() {
  static const std::vector<std::string> kQueries = {
      "SELECT count(*) AS hits FROM frames WHERE nudf_affine(val) > 50.0",
      "SELECT id, nudf_affine(val) AS cls FROM frames WHERE id % 5 = 2",
      "SELECT sum(nudf_affine(val)) AS s, count(*) AS n FROM frames "
      "WHERE id % 2 = 0",
      "SELECT count(*) AS n FROM frames WHERE id % 3 = 0",
  };
  return kQueries;
}

/// One-shot HTTP GET against the server's SQL port; returns the whole
/// response (headers + body) read to EOF.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::string();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::string();
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return std::string();
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ServerIntrospection, ScrapeAndScanWhileEightClientsRunTheFig8Mix) {
  // Keep the ring small so the writers wrap it many times mid-scan.
  ::setenv("DL2SQL_QUERY_LOG_CAPACITY", "32", 1);
  auto device = MakeCpuDevice(4);
  Database db;
  ::unsetenv("DL2SQL_QUERY_LOG_CAPACITY");
  db.set_exec_options({device.get(), /*morsel_size=*/512});
  MakeTable(&db, "frames", 2000);
  RegisterAffineNudf(&db);
  ASSERT_NE(db.query_log(), nullptr);
  ASSERT_EQ(db.query_log()->capacity(), 32u);

  ServiceOptions opts;
  opts.admission.max_concurrent = 8;
  QueryService service(&db, opts);
  TcpServer server(&service, TcpServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kOpsPerClient = 25;
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  threads.reserve(kClients + 2);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&service, &failures, c] {
      auto session = service.CreateSession();
      const auto& mix = Fig8Mix();
      for (int i = 0; i < kOpsPerClient; ++i) {
        const auto& sql = mix[(c + i) % mix.size()];
        auto r = session->Execute(sql);
        // Admission backpressure is a legal serving answer; anything else is
        // a failure.
        if (!r.ok() && r.status().code() != StatusCode::kResourceExhausted) {
          ++failures;
        }
      }
    });
  }

  // Observer 1: Prometheus scrapes over real HTTP against the loaded port.
  threads.emplace_back([&server, &failures, &done] {
    int scrapes = 0;
    while (!done.load(std::memory_order_relaxed) || scrapes == 0) {
      const std::string response = HttpGet(server.port(), "/metrics");
      ++scrapes;
      if (response.find("HTTP/1.1 200 OK") == std::string::npos ||
          response.find("# TYPE ") == std::string::npos ||
          response.find("server_requests") == std::string::npos) {
        ++failures;
        return;
      }
    }
  });

  // Observer 2: concurrent system.queries + system.sessions scans through
  // the normal SQL path; the seqlock ring must yield only whole records.
  threads.emplace_back([&service, &db, &failures, &done] {
    auto session = service.CreateSession();
    int scans = 0;
    while (!done.load(std::memory_order_relaxed) || scans == 0) {
      auto r = session->Execute(
          "SELECT sql, duration_ms, neural_calls FROM system.queries "
          "ORDER BY duration_ms DESC LIMIT 5");
      ++scans;
      if (!r.ok()) {
        if (r.status().code() != StatusCode::kResourceExhausted) ++failures;
        continue;
      }
      if (r->num_rows() > 5) ++failures;
      auto sessions = session->Execute(
          "SELECT id, statements_ok FROM system.sessions");
      if (!sessions.ok() &&
          sessions.status().code() != StatusCode::kResourceExhausted) {
        ++failures;
      }
      // Direct ring reads race the writers harder than the SQL path (no
      // admission serialization): every record must be internally whole.
      for (const QueryLogRecord& rec : db.query_log()->Snapshot()) {
        const bool known =
            rec.sql.rfind("SELECT", 0) == 0 || rec.sql.empty();
        if (!known || rec.duration_us < 0 || rec.rows < 0 ||
            rec.neural_calls < 0) {
          ++failures;
        }
      }
    }
  });

  for (int c = 0; c < kClients; ++c) threads[static_cast<size_t>(c)].join();
  done.store(true, std::memory_order_relaxed);
  for (size_t t = kClients; t < threads.size(); ++t) threads[t].join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  // The ring saw every finished statement the clients pushed through.
  EXPECT_GE(db.query_log()->total_recorded(),
            static_cast<uint64_t>(kClients));
}

TEST(ServerIntrospection, SessionsTableTracksLiveSessions) {
  Database db;
  MakeTable(&db, "frames", 16);
  QueryService service(&db, ServiceOptions{});
  auto a = service.CreateSession();
  auto b = service.CreateSession();
  ASSERT_TRUE(a->Execute("SELECT count(*) FROM frames").ok());
  ASSERT_FALSE(a->Execute("SELECT nope FROM frames").ok());

  auto rows = b->Execute(
      "SELECT id, statements_ok, statements_failed FROM system.sessions");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_GE(rows->num_rows(), 2);
  bool found_a = false;
  for (int64_t i = 0; i < rows->num_rows(); ++i) {
    if (rows->column(0).GetValue(i).int_value() ==
        static_cast<int64_t>(a->id())) {
      found_a = true;
      EXPECT_EQ(rows->column(1).GetValue(i).int_value(), 1);
      EXPECT_EQ(rows->column(2).GetValue(i).int_value(), 1);
    }
  }
  EXPECT_TRUE(found_a);

  // A dropped session disappears from the scan.
  const int64_t a_id = static_cast<int64_t>(a->id());
  a.reset();
  rows = b->Execute("SELECT id FROM system.sessions");
  ASSERT_TRUE(rows.ok());
  for (int64_t i = 0; i < rows->num_rows(); ++i) {
    EXPECT_NE(rows->column(0).GetValue(i).int_value(), a_id);
  }
}

TEST(ServerIntrospection, QueriesRowsCarryServingHints) {
  Database db;
  MakeTable(&db, "frames", 64);
  QueryService service(&db, ServiceOptions{});
  auto session = service.CreateSession();
  ASSERT_TRUE(session->Execute("SELECT count(*) FROM frames").ok());

  ASSERT_NE(db.query_log(), nullptr);
  const std::vector<QueryLogRecord> snap = db.query_log()->Snapshot();
  ASSERT_FALSE(snap.empty());
  const QueryLogRecord& rec = snap.back();
  EXPECT_EQ(rec.sql, "SELECT count(*) FROM frames");
  EXPECT_EQ(rec.session_id, static_cast<int64_t>(session->id()));
  EXPECT_GE(rec.admission_wait_us, 0);
  EXPECT_EQ(rec.rows, 1);
}

}  // namespace
}  // namespace dl2sql::server
