/// \file server_tcp_test.cc
/// \brief TcpServer end-to-end over a real loopback socket: framed OK/ERR
/// responses, dot-commands, per-connection sessions, and clean Stop().
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "db/database.h"
#include "server/session.h"
#include "server/tcp_server.h"

namespace dl2sql::server {
namespace {

/// Minimal blocking line-protocol client over a raw socket.
class RawClient {
 public:
  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    DL2SQL_CHECK(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    DL2SQL_CHECK(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
    DL2SQL_CHECK(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0);
  }
  ~RawClient() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool Send(const std::string& statement) {
    std::string line = statement + "\n";
    size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n =
          ::send(fd_, line.data() + sent, line.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one framed response, returned including its "END\n" line.
  /// Empty string on EOF.
  std::string ReadResponse() {
    std::string response;
    while (true) {
      size_t nl;
      while ((nl = buffer_.find('\n')) != std::string::npos) {
        const std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        response += line;
        response += '\n';
        if (line == "END") return response;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::string();
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  std::string RoundTrip(const std::string& statement) {
    if (!Send(statement)) return std::string();
    return ReadResponse();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct ServerFixture {
  db::Database db;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<TcpServer> server;

  ServerFixture() {
    ServiceOptions opts;
    opts.admission.max_concurrent = 4;
    service = std::make_unique<QueryService>(&db, opts);
    server = std::make_unique<TcpServer>(service.get(), TcpServerOptions{});
    const Status st = server->Start();
    DL2SQL_CHECK(st.ok()) << st.ToString();
  }
  ~ServerFixture() { server->Stop(); }
};

TEST(TcpServer, SqlRoundTripOverLoopback) {
  ServerFixture f;
  ASSERT_GT(f.server->port(), 0);
  RawClient client(f.server->port());

  EXPECT_EQ(client.RoundTrip("CREATE TABLE pts (x INT64, y FLOAT64)"),
            "OK 0 0\nEND\n");
  // DML frames carry the affected-row count.
  EXPECT_EQ(client.RoundTrip(
                "INSERT INTO pts VALUES (1, 0.5), (2, 1.5), (3, 2.5)"),
            "OK 3 0\nEND\n");
  EXPECT_EQ(client.RoundTrip("SELECT x, y FROM pts WHERE x >= 2 ORDER BY x"),
            "OK 2 2\nx\ty\n2\t1.5\n3\t2.5\nEND\n");
}

TEST(TcpServer, ErrorsAreFramedNotFatal) {
  ServerFixture f;
  RawClient client(f.server->port());

  const std::string err = client.RoundTrip("SELECT broken FROM nowhere");
  ASSERT_FALSE(err.empty());
  EXPECT_EQ(err.compare(0, 4, "ERR "), 0) << err;
  EXPECT_NE(err.find("END\n"), std::string::npos);
  // The connection survives the error.
  EXPECT_EQ(client.RoundTrip("CREATE TABLE ok_after_err (x INT64)"),
            "OK 0 0\nEND\n");
}

TEST(TcpServer, DotCommandsPingAndFormat) {
  ServerFixture f;
  RawClient client(f.server->port());

  const std::string pong = client.RoundTrip(".ping");
  EXPECT_NE(pong.find("OK"), std::string::npos) << pong;

  ASSERT_EQ(client.RoundTrip("CREATE TABLE j (a INT64)"), "OK 0 0\nEND\n");
  ASSERT_EQ(client.RoundTrip("INSERT INTO j VALUES (7)"), "OK 1 0\nEND\n");

  const std::string fmt = client.RoundTrip(".format json");
  EXPECT_NE(fmt.find("OK"), std::string::npos) << fmt;
  const std::string json = client.RoundTrip("SELECT a FROM j");
  EXPECT_NE(json.find("{\"columns\":[\"a\"],\"rows\":[[7]]}"),
            std::string::npos)
      << json;

  const std::string bad = client.RoundTrip(".format csv");
  EXPECT_EQ(bad.compare(0, 4, "ERR "), 0) << bad;
}

TEST(TcpServer, SessionsAreIndependentPerConnection) {
  ServerFixture f;
  RawClient a(f.server->port());
  RawClient b(f.server->port());

  // Format changes on connection A must not leak into connection B.
  ASSERT_EQ(b.RoundTrip("CREATE TABLE shared (v INT64)"), "OK 0 0\nEND\n");
  ASSERT_EQ(b.RoundTrip("INSERT INTO shared VALUES (42)"), "OK 1 0\nEND\n");
  ASSERT_NE(a.RoundTrip(".format json").find("OK"), std::string::npos);

  const std::string from_b = b.RoundTrip("SELECT v FROM shared");
  EXPECT_EQ(from_b, "OK 1 1\nv\n42\nEND\n");  // B still renders TSV
  const std::string from_a = a.RoundTrip("SELECT v FROM shared");
  EXPECT_NE(from_a.find("\"rows\":[[42]]"), std::string::npos) << from_a;
}

TEST(TcpServer, QuitClosesConnectionAndStopIsClean) {
  ServerFixture f;
  {
    RawClient client(f.server->port());
    ASSERT_FALSE(client.RoundTrip(".ping").empty());
    ASSERT_TRUE(client.Send(".quit"));
    // Server closes the connection after .quit: further reads hit EOF (the
    // .quit acknowledgement may or may not arrive first).
    std::string r = client.ReadResponse();
    if (!r.empty()) {
      EXPECT_TRUE(client.ReadResponse().empty());
    }
  }
  // Stop with a live connection open must not hang or crash.
  RawClient lingering(f.server->port());
  ASSERT_FALSE(lingering.RoundTrip(".ping").empty());
  f.server->Stop();
  f.server->Stop();  // idempotent
}

}  // namespace
}  // namespace dl2sql::server
