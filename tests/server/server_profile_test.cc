/// \file server_profile_test.cc
/// \brief Serving-layer resource accounting: coalesced batch_fn time is
/// billed back to participating queries (>= 95% coverage), session trackers
/// surface through system.sessions, and lock waits are attributed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accel/device.h"
#include "common/logging.h"
#include "common/mem_tracker.h"
#include "common/timer.h"
#include "server/session.h"

namespace dl2sql::server {
namespace {

using db::BatchFn;
using db::DataType;
using db::Database;
using db::NUdfInfo;
using db::Table;
using db::TableSchema;
using db::Value;

constexpr int kClients = 16;
constexpr int64_t kRows = 3200;

class ScopedTrackingEnabled {
 public:
  ScopedTrackingEnabled() : prior_(MemTracker::Enabled()) {
    MemTracker::SetEnabled(true);
  }
  ~ScopedTrackingEnabled() { MemTracker::SetEnabled(prior_); }
  bool active() const { return MemTracker::Enabled(); }

 private:
  const bool prior_;
};

#define REQUIRE_TRACKING(guard)                                         \
  if (!(guard).active()) {                                              \
    GTEST_SKIP() << "resource accounting compiled out";                 \
  }

std::shared_ptr<Device> MakeCpuDevice(int threads) {
  DeviceProfile profile = Device::ServerCpuProfile();
  profile.name = "profile-test-cpu-" + std::to_string(threads);
  profile.num_threads = threads;
  return std::make_shared<Device>(profile);
}

/// nUDF body that measures its own wall time, the ground truth the billed
/// shares must cover.
struct TimedBody {
  std::atomic<int64_t> body_nanos{0};

  BatchFn MakeFn() {
    return [this](const std::vector<std::vector<Value>>& rows)
               -> Result<std::vector<Value>> {
      Stopwatch watch;
      std::vector<Value> out;
      out.reserve(rows.size());
      for (const auto& row : rows) {
        DL2SQL_ASSIGN_OR_RETURN(double x, row[0].AsDouble());
        // A little arithmetic so fn time is measurable, not just noise.
        double acc = x;
        for (int k = 0; k < 400; ++k) acc = acc * 1.0000001 + 0.5;
        out.push_back(Value::Float(acc));
      }
      body_nanos.fetch_add(static_cast<int64_t>(watch.ElapsedSeconds() * 1e9),
                           std::memory_order_relaxed);
      return out;
    };
  }
};

void SetUpDatabase(Database* db, TimedBody* body) {
  // The result cache would swallow repeat rows; disable it so every query
  // sends all its rows through the coalescer.
  db::CacheOptions cache;
  cache.enable_nudf_cache = false;
  db->set_cache_options(cache);

  TableSchema schema({{"id", DataType::kInt64}, {"val", DataType::kInt64}});
  Table t{schema};
  for (int64_t i = 0; i < kRows; ++i) {
    DL2SQL_CHECK(t.AppendRow({Value::Int(i), Value::Int((i * 31 + 7) % 513)})
                     .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("t", std::move(t)).ok());

  NUdfInfo info;
  info.model_name = "timed";
  info.fingerprint = 0xfeed01ULL;
  db->udfs().RegisterNeural(
      "nudf_timed", DataType::kFloat64,
      [](const std::vector<Value>& args) -> Result<Value> {
        DL2SQL_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        double acc = x;
        for (int k = 0; k < 400; ++k) acc = acc * 1.0000001 + 0.5;
        return Value::Float(acc);
      },
      info, body->MakeFn(), /*arity=*/1, /*parallel_safe=*/true);
}

TEST(ServerProfileTest, CoalescedBatchTimeIsBilledBackToQueries) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  auto device = MakeCpuDevice(4);
  Database db;
  db.set_exec_options({device.get(), /*morsel_size=*/256});
  TimedBody body;
  SetUpDatabase(&db, &body);

  ServiceOptions opts;
  opts.admission.max_concurrent = kClients;
  opts.coalescer.enabled = true;
  opts.coalescer.max_batch_rows = 128;
  opts.coalescer.wait_window_ms = 10.0;
  QueryService service(&db, opts);

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&service, c] {
      auto session = service.CreateSession();
      auto r = session->Execute(
          "SELECT id, nudf_timed(val) AS p FROM t WHERE id % " +
          std::to_string(kClients) + " = " + std::to_string(c));
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (r.ok()) EXPECT_EQ(r->num_rows(), kRows / kClients);
    });
  }
  for (auto& t : threads) t.join();

  // Total billed batch time across all recorded queries must cover >= 95%
  // of the ground-truth body time: the coalescer distributes each group's
  // fn time proportionally by row count, and the shares sum to 100% of it
  // (billed can exceed body time slightly — it includes invoke overhead).
  auto billed = db.Execute(
      "SELECT sum(billed_batch_ms) AS b, sum(coalesce_wait_ms) AS w "
      "FROM system.query_profiles");
  ASSERT_TRUE(billed.ok()) << billed.status().ToString();
  const double billed_ms = billed->column(0).GetValue(0).float_value();
  const double body_ms =
      static_cast<double>(body.body_nanos.load(std::memory_order_relaxed)) /
      1e6;
  ASSERT_GT(body_ms, 0.0);
  EXPECT_GE(billed_ms, 0.95 * body_ms)
      << "billed " << billed_ms << " ms of " << body_ms << " ms of fn time";
  // Wait time is whatever blocking exceeded the billed share; it can be
  // zero (leader did all the work) but never negative.
  EXPECT_GE(billed->column(1).GetValue(0).float_value(), 0.0);
}

TEST(ServerProfileTest, SessionsSurfaceTrackedMemory) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  Database db;
  // This test asserts in-memory tracker peaks; paged mode bills resident
  // bytes (possibly zero for streamed intermediates) — pin in-memory.
  ASSERT_TRUE(db.set_storage_mode(db::StorageMode::kInMemory).ok());
  TimedBody body;
  SetUpDatabase(&db, &body);
  ServiceOptions opts;
  QueryService service(&db, opts);

  auto session = service.CreateSession();
  ASSERT_TRUE(
      session->Execute("SELECT id, val FROM t WHERE val % 3 = 0").ok());

  // The statement's query tracker was parented under the session tracker,
  // so its charges registered in the session's peak; live consumption is
  // back to zero once the result was handed off.
  EXPECT_GT(session->mem_tracker()->peak(), 0);

  auto rows = session->Execute(
      "SELECT id, tracked_bytes, tracked_peak_bytes FROM system.sessions");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  bool found = false;
  for (int64_t i = 0; i < rows->num_rows(); ++i) {
    if (rows->column(0).GetValue(i).int_value() !=
        static_cast<int64_t>(session->id())) {
      continue;
    }
    found = true;
    EXPECT_GE(rows->column(1).GetValue(i).int_value(), 0);
    EXPECT_GT(rows->column(2).GetValue(i).int_value(), 0);
  }
  EXPECT_TRUE(found) << "session missing from system.sessions";
}

TEST(ServerProfileTest, ServedQueriesRecordSessionAndLockAttribution) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  Database db;
  TimedBody body;
  SetUpDatabase(&db, &body);
  ServiceOptions opts;
  QueryService service(&db, opts);

  auto session = service.CreateSession();
  const std::string sql = "SELECT count(*) AS c FROM t WHERE val < 100";
  ASSERT_TRUE(session->Execute(sql).ok());

  auto profiles = session->Execute(
      "SELECT sql, session_id, lock_wait_ms, cpu_ms "
      "FROM system.query_profiles");
  ASSERT_TRUE(profiles.ok()) << profiles.status().ToString();
  bool found = false;
  for (int64_t i = 0; i < profiles->num_rows(); ++i) {
    if (profiles->column(0).GetValue(i).string_value() != sql) continue;
    found = true;
    EXPECT_EQ(profiles->column(1).GetValue(i).int_value(),
              static_cast<int64_t>(session->id()));
    EXPECT_GE(profiles->column(2).GetValue(i).float_value(), 0.0);
    EXPECT_GE(profiles->column(3).GetValue(i).float_value(), 0.0);
  }
  EXPECT_TRUE(found) << "served statement missing from system.query_profiles";
}

}  // namespace
}  // namespace dl2sql::server
