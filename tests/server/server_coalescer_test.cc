/// \file server_coalescer_test.cc
/// \brief BatchCoalescer: results bit-identical with coalescing on vs off,
/// batches never exceed the cap, and the wait window flushes partial batches.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accel/device.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "server/session.h"

namespace dl2sql::server {
namespace {

using db::BatchFn;
using db::DataType;
using db::Database;
using db::NUdfInfo;
using db::Table;
using db::TableSchema;
using db::Value;

std::shared_ptr<Device> MakeCpuDevice(int threads) {
  DeviceProfile profile = Device::ServerCpuProfile();
  profile.name = "coalescer-test-cpu-" + std::to_string(threads);
  profile.num_threads = threads;
  return std::make_shared<Device>(profile);
}

/// Batched body instrumented with invocation count and max batch size.
struct InstrumentedBody {
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> max_batch{0};

  BatchFn MakeFn() {
    return [this](const std::vector<std::vector<Value>>& rows)
               -> Result<std::vector<Value>> {
      calls.fetch_add(1, std::memory_order_relaxed);
      int64_t prev = max_batch.load(std::memory_order_relaxed);
      while (prev < static_cast<int64_t>(rows.size()) &&
             !max_batch.compare_exchange_weak(prev,
                                              static_cast<int64_t>(rows.size()),
                                              std::memory_order_relaxed)) {
      }
      std::vector<Value> out;
      out.reserve(rows.size());
      for (const auto& row : rows) {
        DL2SQL_ASSIGN_OR_RETURN(double x, row[0].AsDouble());
        out.push_back(Value::Float(x * 3.0 - 1.0));
      }
      return out;
    };
  }
};

void RegisterInstrumentedNudf(Database* db, InstrumentedBody* body) {
  NUdfInfo info;
  info.model_name = "instrumented";
  info.fingerprint = 0xabc123ULL;
  db->udfs().RegisterNeural(
      "nudf_probe", DataType::kFloat64,
      [](const std::vector<Value>& args) -> Result<Value> {
        DL2SQL_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        return Value::Float(x * 3.0 - 1.0);
      },
      info, body->MakeFn(), /*arity=*/1, /*parallel_safe=*/true);
}

void MakeTable(Database* db, int64_t rows) {
  TableSchema schema({{"id", DataType::kInt64}, {"val", DataType::kInt64}});
  Table t{schema};
  for (int64_t i = 0; i < rows; ++i) {
    DL2SQL_CHECK(t.AppendRow({Value::Int(i), Value::Int((i * 31 + 7) % 513)})
                     .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("t", std::move(t)).ok());
}

std::vector<std::vector<Value>> MakeRows(int64_t n, int64_t seed) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int(seed * 1000 + i)});
  }
  return rows;
}

/// Runs the same 4-query workload through a QueryService on `threads`
/// concurrent sessions and returns rendered results, in query order.
std::vector<std::string> RunWorkload(bool coalesce, InstrumentedBody* body) {
  auto device = MakeCpuDevice(4);
  Database db;
  db.set_exec_options({device.get(), /*morsel_size=*/256});
  // The result cache would swallow repeat rows; disable it so every query
  // sends all its rows through the coalescer.
  db::CacheOptions cache;
  cache.enable_nudf_cache = false;
  db.set_cache_options(cache);
  MakeTable(&db, 3000);
  RegisterInstrumentedNudf(&db, body);

  ServiceOptions opts;
  opts.admission.max_concurrent = 4;
  opts.coalescer.enabled = coalesce;
  opts.coalescer.max_batch_rows = 64;
  opts.coalescer.wait_window_ms = 20.0;
  QueryService service(&db, opts);

  const std::vector<std::string> queries = {
      "SELECT id, nudf_probe(val) AS p FROM t WHERE id % 4 = 0",
      "SELECT id, nudf_probe(val) AS p FROM t WHERE id % 4 = 1",
      "SELECT id, nudf_probe(val) AS p FROM t WHERE id % 4 = 2",
      "SELECT sum(nudf_probe(val)) AS s FROM t WHERE id % 4 = 3",
  };
  std::vector<std::string> rendered(queries.size());
  std::vector<std::thread> threads;
  for (size_t q = 0; q < queries.size(); ++q) {
    threads.emplace_back([&service, &queries, &rendered, q] {
      auto session = service.CreateSession();
      auto r = session->Execute(queries[q]);
      EXPECT_TRUE(r.ok()) << queries[q] << ": " << r.status().ToString();
      if (r.ok()) rendered[q] = RenderTable(*r, OutputFormat::kTsv);
    });
  }
  for (auto& t : threads) t.join();
  return rendered;
}

TEST(Coalescer, BitIdenticalOnVsOff) {
  InstrumentedBody body_on, body_off;
  const auto on = RunWorkload(/*coalesce=*/true, &body_on);
  const auto off = RunWorkload(/*coalesce=*/false, &body_off);
  ASSERT_EQ(on.size(), off.size());
  for (size_t q = 0; q < on.size(); ++q) {
    EXPECT_EQ(on[q], off[q]) << "query " << q;
    EXPECT_FALSE(on[q].empty());
  }
}

TEST(Coalescer, BatchesNeverExceedCap) {
  InstrumentedBody body;
  RunWorkload(/*coalesce=*/true, &body);
  EXPECT_GT(body.calls.load(), 0);
  EXPECT_LE(body.max_batch.load(), 64);
}

TEST(Coalescer, OversizedSubmissionIsChunked) {
  CoalescerOptions opts;
  opts.enabled = true;
  opts.max_batch_rows = 32;
  opts.wait_window_ms = 1.0;
  BatchCoalescer coalescer(opts);
  // Two inflight queries: the group path (not the bypass) is exercised.
  coalescer.set_inflight_provider([] { return 2; });

  InstrumentedBody body;
  auto fn = body.MakeFn();
  auto result = coalescer.RunBatch(0x1ULL, fn, MakeRows(100, /*seed=*/1));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ((*result)[static_cast<size_t>(i)].float_value(),
              (1000.0 + i) * 3.0 - 1.0);
  }
  EXPECT_LE(body.max_batch.load(), 32);
  EXPECT_GE(body.calls.load(), 4);  // 100 rows / cap 32
}

TEST(Coalescer, WindowTimeoutFlushesPartialBatch) {
  CoalescerOptions opts;
  opts.enabled = true;
  opts.max_batch_rows = 256;
  opts.wait_window_ms = 30.0;
  BatchCoalescer coalescer(opts);
  coalescer.set_inflight_provider([] { return 2; });

  Counter* flush_window =
      MetricsRegistry::Global().counter("server.coalesce.flush_window");
  const int64_t window_flushes_before = flush_window->value();

  InstrumentedBody body;
  auto fn = body.MakeFn();
  Stopwatch watch;
  // 8 rows, cap 256, nobody else arrives: the leader must flush the partial
  // batch at the window deadline rather than waiting for a full batch.
  auto result = coalescer.RunBatch(0x2ULL, fn, MakeRows(8, /*seed=*/2));
  const double elapsed = watch.ElapsedSeconds();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 8u);
  EXPECT_EQ(body.calls.load(), 1);
  EXPECT_GE(elapsed, 0.025);  // waited (most of) the window
  EXPECT_EQ(flush_window->value(), window_flushes_before + 1);
}

TEST(Coalescer, MergesConcurrentSubmissionsIntoOneBatch) {
  CoalescerOptions opts;
  opts.enabled = true;
  opts.max_batch_rows = 256;
  opts.wait_window_ms = 250.0;  // generous: both submitters land in-window
  BatchCoalescer coalescer(opts);
  coalescer.set_inflight_provider([] { return 2; });

  InstrumentedBody body;
  auto fn = body.MakeFn();
  std::vector<std::vector<Value>> results(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&coalescer, &fn, &results, t] {
      auto r = coalescer.RunBatch(0x3ULL, fn, MakeRows(5, /*seed=*/t));
      EXPECT_TRUE(r.ok());
      if (r.ok()) results[static_cast<size_t>(t)] = *r;
    });
  }
  for (auto& t : threads) t.join();

  // One merged model call served both submissions, each getting its own
  // slice back in order.
  EXPECT_EQ(body.calls.load(), 1);
  EXPECT_EQ(body.max_batch.load(), 10);
  for (int t = 0; t < 2; ++t) {
    ASSERT_EQ(results[static_cast<size_t>(t)].size(), 5u);
    for (int64_t i = 0; i < 5; ++i) {
      EXPECT_EQ(results[static_cast<size_t>(t)][static_cast<size_t>(i)]
                    .float_value(),
                (t * 1000.0 + i) * 3.0 - 1.0);
    }
  }
}

TEST(Coalescer, DisabledMatchesDirectPath) {
  CoalescerOptions opts;
  opts.enabled = false;
  BatchCoalescer coalescer(opts);
  InstrumentedBody body;
  auto fn = body.MakeFn();
  auto result = coalescer.RunBatch(0x4ULL, fn, MakeRows(10, /*seed=*/4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 10u);
  // One body call for the whole submission, exactly like the evaluator's
  // direct invocation.
  EXPECT_EQ(body.calls.load(), 1);
  EXPECT_EQ(body.max_batch.load(), 10);
}

TEST(Coalescer, PropagatesBodyErrors) {
  CoalescerOptions opts;
  opts.enabled = true;
  opts.wait_window_ms = 1.0;
  BatchCoalescer coalescer(opts);
  coalescer.set_inflight_provider([] { return 2; });
  BatchFn failing = [](const std::vector<std::vector<Value>>&)
      -> Result<std::vector<Value>> {
    return Status::InternalError("model exploded");
  };
  auto result = coalescer.RunBatch(0x5ULL, failing, MakeRows(3, /*seed=*/5));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("model exploded"),
            std::string::npos);
}

}  // namespace
}  // namespace dl2sql::server
