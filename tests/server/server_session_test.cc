/// \file server_session_test.cc
/// \brief QueryService/Session: thread-safe concurrent entry into one
/// Database. Run under TSAN in CI (ctest -R server): two threads issuing
/// mixed DML + SELECT must be race-free, with plan/nUDF cache invalidation
/// staying correct under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "accel/device.h"
#include "common/logging.h"
#include "common/timer.h"
#include "server/session.h"

namespace dl2sql::server {
namespace {

using db::DataType;
using db::Database;
using db::NUdfInfo;
using db::Table;
using db::TableSchema;
using db::Value;

std::shared_ptr<Device> MakeCpuDevice(int threads) {
  DeviceProfile profile = Device::ServerCpuProfile();
  profile.name = "server-test-cpu-" + std::to_string(threads);
  profile.num_threads = threads;
  return std::make_shared<Device>(profile);
}

void RegisterAffineNudf(Database* db, uint64_t fingerprint) {
  NUdfInfo info;
  info.model_name = "affine";
  info.fingerprint = fingerprint;
  db->udfs().RegisterNeural(
      "nudf_affine", DataType::kFloat64,
      [](const std::vector<Value>& args) -> Result<Value> {
        DL2SQL_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        return Value::Float(x * 2.0 + 1.0);
      },
      info,
      [](const std::vector<std::vector<Value>>& rows)
          -> Result<std::vector<Value>> {
        std::vector<Value> out;
        out.reserve(rows.size());
        for (const auto& row : rows) {
          DL2SQL_ASSIGN_OR_RETURN(double x, row[0].AsDouble());
          out.push_back(Value::Float(x * 2.0 + 1.0));
        }
        return out;
      },
      /*arity=*/1, /*parallel_safe=*/true);
}

void MakeTable(Database* db, const std::string& name, int64_t rows) {
  TableSchema schema({{"id", DataType::kInt64}, {"val", DataType::kInt64}});
  Table t{schema};
  for (int64_t i = 0; i < rows; ++i) {
    DL2SQL_CHECK(t.AppendRow({Value::Int(i), Value::Int(i % 97)}).ok());
  }
  DL2SQL_CHECK(db->RegisterTable(name, std::move(t)).ok());
}

TEST(ServerSession, ConcurrentMixedDmlAndSelect) {
  auto device = MakeCpuDevice(4);
  Database db;
  db.set_exec_options({device.get(), /*morsel_size=*/512});
  MakeTable(&db, "t", 2000);
  RegisterAffineNudf(&db, /*fingerprint=*/0xfeedULL);

  ServiceOptions opts;
  opts.admission.max_concurrent = 4;
  QueryService service(&db, opts);

  constexpr int kWriters = 1;
  constexpr int kReaders = 1;
  constexpr int kOpsPerThread = 60;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  // Writer: INSERTs (each bumps the catalog version, invalidating cached
  // plans) interleaved with SELECTs of its own.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&service, &failures] {
      auto session = service.CreateSession();
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto ins = session->Execute("INSERT INTO t VALUES (100000, 1)");
        if (!ins.ok()) {
          ++failures;
          continue;
        }
        auto sel = session->Execute("SELECT count(*) FROM t WHERE val = 1");
        if (!sel.ok()) ++failures;
      }
    });
  }
  // Reader: SELECTs through the plan cache plus nUDF-bearing queries through
  // the result cache; every result must be internally consistent.
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&service, &failures] {
      auto session = service.CreateSession();
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto c = session->Execute("SELECT count(*) FROM t");
        if (!c.ok() || c->column(0).GetValue(0).int_value() < 2000) {
          ++failures;
        }
        auto n = session->Execute(
            "SELECT sum(nudf_affine(val)) AS s FROM t WHERE id < 64");
        // id < 64 rows are never touched by the writer, so this sum is a
        // constant: sum(2*val + 1) for val = id % 97, id in [0, 64).
        if (!n.ok() ||
            n->column(0).GetValue(0).float_value() != 2.0 * (63 * 64 / 2) + 64) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  // Cache invalidation stayed correct: the final count reflects every INSERT.
  auto session = service.CreateSession();
  auto final_count = session->Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->column(0).GetValue(0).int_value(),
            2000 + kWriters * kOpsPerThread);
  EXPECT_EQ(session->statements_ok(), 1);
}

TEST(ServerSession, AdmissionRejectsInsteadOfHanging) {
  AdmissionController admission(
      {/*max_concurrent=*/1, /*max_queue_depth=*/0, /*queue_timeout_ms=*/50.0});
  ASSERT_TRUE(admission.Admit().ok());
  EXPECT_EQ(admission.running(), 1);
  // Slot taken and no queue allowed: immediate ResourceExhausted.
  const Status st = admission.Admit();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  admission.Release();
  EXPECT_EQ(admission.running(), 0);
  ASSERT_TRUE(admission.Admit().ok());
  admission.Release();
}

TEST(ServerSession, AdmissionQueueTimesOut) {
  AdmissionController admission(
      {/*max_concurrent=*/1, /*max_queue_depth=*/4, /*queue_timeout_ms=*/20.0});
  ASSERT_TRUE(admission.Admit().ok());
  Stopwatch watch;
  const Status st = admission.Admit();  // queues, then times out
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(watch.ElapsedSeconds(), 0.015);
  admission.Release();
}

TEST(ServerSession, AdmissionIsFifo) {
  AdmissionController admission({/*max_concurrent=*/1, /*max_queue_depth=*/8,
                                 /*queue_timeout_ms=*/5000.0});
  ASSERT_TRUE(admission.Admit().ok());
  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&admission, &order, &order_mu, i] {
      EXPECT_TRUE(admission.Admit().ok());
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(i);
      }
      admission.Release();
    });
    // Stagger arrivals so queue order is deterministic.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  admission.Release();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ServerSession, RowBudgetRejectsOversizedResults) {
  Database db;
  MakeTable(&db, "t", 100);
  ServiceOptions opts;
  opts.max_result_rows = 10;
  QueryService service(&db, opts);
  auto session = service.CreateSession();

  ASSERT_TRUE(session->Execute("SELECT id FROM t WHERE id < 10").ok());
  auto big = session->Execute("SELECT id FROM t");
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(session->statements_failed(), 1);
}

TEST(ServerSession, StatementDeadlineReportedAsStatus) {
  Database db;
  MakeTable(&db, "t", 5000);
  ServiceOptions opts;
  opts.statement_timeout_ms = 1e-6;  // everything exceeds this
  QueryService service(&db, opts);
  auto session = service.CreateSession();
  auto r = session->Execute("SELECT count(*) FROM t WHERE val > 3");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(ServerSession, SyntaxErrorsDoNotConsumeSlots) {
  Database db;
  QueryService service(&db, ServiceOptions{});
  auto session = service.CreateSession();
  auto r = session->Execute("NOT SQL AT ALL");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(service.admission().running(), 0);
}

}  // namespace
}  // namespace dl2sql::server
