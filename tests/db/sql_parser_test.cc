/// \file sql_parser_test.cc
/// \brief Lexer + parser tests, including the paper's generated queries Q1-Q5
/// parsed verbatim.
#include <gtest/gtest.h>

#include "db/sql/parser.h"

namespace dl2sql::db::sql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a2, 'str''x', 42, 3.5, <=, <> FROM t");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  EXPECT_EQ(t[0].type, TokenType::kIdent);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[1].text, "a2");
  EXPECT_EQ(t[3].type, TokenType::kString);
  EXPECT_EQ(t[3].text, "str'x");
  EXPECT_EQ(t[5].type, TokenType::kInt);
  EXPECT_EQ(t[5].int_val, 42);
  EXPECT_EQ(t[7].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(t[7].float_val, 3.5);
  EXPECT_EQ(t[9].text, "<=");
  EXPECT_EQ(t[11].text, "!=");  // <> normalizes
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, CommentsAndErrors) {
  auto ok = Tokenize("SELECT 1 -- trailing comment\n+ 2");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 5u);  // SELECT 1 + 2 END
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT #").ok());
}

TEST(LexerTest, ScientificNumbers) {
  auto t = Tokenize("1e3 2.5E-2");
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ((*t)[0].float_val, 1000.0);
  EXPECT_DOUBLE_EQ((*t)[1].float_val, 0.025);
}

const SelectStmt& AsSelect(const Statement& s) {
  return *std::get<std::shared_ptr<SelectStmt>>(s);
}

TEST(ParserTest, SelectCore) {
  auto r = ParseStatement(
      "SELECT a, b AS bee, a + 1 plus FROM t1 x, t2 INNER JOIN t3 ON t2.id = "
      "t3.id WHERE a > 1 GROUP BY a HAVING count(*) > 2 ORDER BY a DESC "
      "LIMIT 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = AsSelect(*r);
  EXPECT_EQ(s.items.size(), 3u);
  EXPECT_EQ(s.items[1].alias, "bee");
  EXPECT_EQ(s.items[2].alias, "plus");
  ASSERT_TRUE(s.from.has_value());
  EXPECT_EQ(s.from->table_name, "t1");
  EXPECT_EQ(s.from->alias, "x");
  ASSERT_EQ(s.joins.size(), 2u);
  EXPECT_EQ(s.joins[0].join, JoinType::kCross);
  EXPECT_EQ(s.joins[1].join, JoinType::kInner);
  ASSERT_NE(s.joins[1].on, nullptr);
  EXPECT_NE(s.where, nullptr);
  EXPECT_EQ(s.group_by.size(), 1u);
  EXPECT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_EQ(s.limit, 5);
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = ParseExpression("1 + 2 * 3 = 7 AND NOT a OR b");
  ASSERT_TRUE(e.ok());
  // ((1 + (2*3)) = 7 AND (NOT a)) OR b
  EXPECT_EQ((*e)->ToString(), "((((1 + (2 * 3)) = 7) AND NOT a) OR b)");
}

TEST(ParserTest, NegativeLiteralsFold) {
  auto e = ParseExpression("-5 + -2.5");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(-5 + -2.5)");
}

TEST(ParserTest, InList) {
  auto e = ParseExpression("x IN (1, 2, 3)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kInList);
  EXPECT_EQ((*e)->children.size(), 4u);
}

TEST(ParserTest, FunctionAndAggregateCalls) {
  auto e = ParseExpression("count(nUDF_detect(V.keyframe) = TRUE) / sum(meter)");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->HasAggregate());
  EXPECT_TRUE((*e)->CallsFunction("nudf_detect"));
  auto star = ParseExpression("count(*)");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ((*star)->agg_func, AggFunc::kCountStar);
  auto stddev = ParseExpression("stddevSamp(Value)");
  ASSERT_TRUE(stddev.ok());
  EXPECT_EQ((*stddev)->agg_func, AggFunc::kStddevSamp);
}

TEST(ParserTest, ScalarSubqueryAndDerivedTable) {
  auto r = ParseStatement(
      "SELECT (SELECT max(v) FROM t2) FROM (SELECT a AS v FROM t1) d");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = AsSelect(*r);
  EXPECT_EQ(s.items[0].expr->kind, ExprKind::kScalarSubquery);
  ASSERT_TRUE(s.from.has_value());
  EXPECT_TRUE(s.from->IsDerived());
  EXPECT_EQ(s.from->alias, "d");
}

TEST(ParserTest, CreateVariants) {
  auto ctas = ParseStatement("CREATE TEMP TABLE t AS SELECT 1");
  ASSERT_TRUE(ctas.ok());
  const auto& c1 = std::get<CreateTableStmt>(*ctas);
  EXPECT_TRUE(c1.temporary);
  EXPECT_NE(c1.as_select, nullptr);

  auto paren = ParseStatement("CREATE TEMP TABLE t (SELECT a FROM x)");
  ASSERT_TRUE(paren.ok());
  EXPECT_NE(std::get<CreateTableStmt>(*paren).as_select, nullptr);

  auto ddl = ParseStatement("CREATE TABLE t (a INT, b FLOAT, c TEXT, d BOOL, "
                            "e BLOB, f DATE)");
  ASSERT_TRUE(ddl.ok());
  const auto& c2 = std::get<CreateTableStmt>(*ddl);
  ASSERT_EQ(c2.columns.size(), 6u);
  EXPECT_EQ(c2.columns[0].type, DataType::kInt64);
  EXPECT_EQ(c2.columns[1].type, DataType::kFloat64);
  EXPECT_EQ(c2.columns[2].type, DataType::kString);
  EXPECT_EQ(c2.columns[3].type, DataType::kBool);
  EXPECT_EQ(c2.columns[4].type, DataType::kBlob);
  EXPECT_EQ(c2.columns[5].type, DataType::kString);

  auto view = ParseStatement("CREATE OR REPLACE VIEW v AS SELECT 1");
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(std::get<CreateTableStmt>(*view).is_view);
  EXPECT_TRUE(std::get<CreateTableStmt>(*view).or_replace);

  EXPECT_FALSE(ParseStatement("CREATE TABLE t").ok());
}

TEST(ParserTest, DmlStatements) {
  auto ins = ParseStatement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(ins.ok());
  const auto& i = std::get<InsertStmt>(*ins);
  EXPECT_EQ(i.columns.size(), 2u);
  EXPECT_EQ(i.rows.size(), 2u);

  auto ins2 = ParseStatement("INSERT INTO t SELECT * FROM s");
  ASSERT_TRUE(ins2.ok());
  EXPECT_NE(std::get<InsertStmt>(*ins2).select, nullptr);

  auto upd = ParseStatement("UPDATE t SET a = a + 1, b = 0 WHERE a < 5");
  ASSERT_TRUE(upd.ok());
  const auto& u = std::get<UpdateStmt>(*upd);
  EXPECT_EQ(u.assignments.size(), 2u);
  EXPECT_NE(u.where, nullptr);

  auto del = ParseStatement("DELETE FROM t WHERE b = 'x'");
  ASSERT_TRUE(del.ok());
  EXPECT_NE(std::get<DeleteStmt>(*del).where, nullptr);

  auto drop = ParseStatement("DROP TABLE IF EXISTS t");
  ASSERT_TRUE(drop.ok());
  EXPECT_TRUE(std::get<DropStmt>(*drop).if_exists);
}

TEST(ParserTest, Script) {
  auto r = ParseScript("SELECT 1; SELECT 2;; SELECT 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_FALSE(ParseScript("SELECT 1 SELECT 2").ok());
}

// ---- The paper's queries, verbatim modulo table names ----

TEST(PaperQueriesTest, IntroductionQuery) {
  EXPECT_TRUE(ParseStatement(R"sql(
    SELECT patternID, transID
    FROM FABRIC F, Video V
    WHERE F.humidity > 80 and F.temperature > 30
      and F.printdate > '2021-01-01' and F.printdate < '2021-1-31'
      and F.transID = V.transID
      and V.date > '2021-01-01' and V.date < '2021-1-31'
      and nUDF_detect(V.keyframe) = FALSE)sql")
                  .ok());
}

TEST(PaperQueriesTest, Q1ConvolutionJoin) {
  EXPECT_TRUE(ParseStatement(R"sql(
    CREATE TEMP TABLE Layer_Output(
      SELECT MatrixID as TupleID, SUM(A.Value * B.Value) as Value
      FROM FeatureMap A INNER JOIN Kernel B ON A.OrderID = B.OrderID
      GROUP BY KernelID, MatrixID))sql")
                  .ok());
}

TEST(PaperQueriesTest, Q2MappingView) {
  EXPECT_TRUE(ParseStatement(R"sql(
    CREATE View FeatureMap2 AS
      SELECT MatrixID, OrderID, Value
      FROM Layer_Output A, Kernel_Mapping B
      WHERE A.TupleID = B.TupleID)sql")
                  .ok());
}

TEST(PaperQueriesTest, Q3Pooling) {
  EXPECT_TRUE(ParseStatement(R"sql(
    CREATE TEMP TABLE Pooling_Output(
      SELECT MatrixID as TupleID, MAX(A.Value) as Value
      FROM FeatureMap A GROUP BY MatrixID))sql")
                  .ok());
}

TEST(PaperQueriesTest, Q4BatchNormWithScalarSubqueries) {
  EXPECT_TRUE(ParseStatement(R"sql(
    CREATE TEMP TABLE feature_cbshortcut_conv_bn AS
      SELECT MatrixID, OrderID,
             ((Value - (SELECT AVG(Value) FROM feature_cbshortcut_conv)) /
              ((SELECT stddevSamp(Value) FROM feature_cbshortcut_conv) +
               0.00005)) as Value
      FROM feature_cbshortcut_conv)sql")
                  .ok());
}

TEST(PaperQueriesTest, Q5ResidualLinkAndReluUpdate) {
  auto script = ParseScript(R"sql(
    CREATE TEMP TABLE cb_output(
      SELECT A.MatrixID, A.OrderID, A.Value + B.Value as Value
      FROM feature_cbshortcut_conv_bn A, feature_cb3_conv_bn B
      WHERE A.MatrixID = B.MatrixID);
    UPDATE cb_output SET Value = 0 where Value < 0)sql");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->size(), 2u);
}

}  // namespace
}  // namespace dl2sql::db::sql
