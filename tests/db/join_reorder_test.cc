/// \file join_reorder_test.cc
/// \brief Greedy join reordering: correctness invariance, cross-product
/// avoidance, and order-insensitivity of multi-table queries.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "db/database.h"

namespace dl2sql::db {
namespace {

class JoinReorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE big (id INT, grp INT);
      CREATE TABLE mid (id INT, big_id INT, tag TEXT);
      CREATE TABLE tiny (id INT, mid_id INT);
    )sql")
                    .ok());
    auto big = *db_.catalog().GetTable("big");
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE(big->AppendRow({Value::Int(i), Value::Int(i % 7)}).ok());
    }
    auto mid = *db_.catalog().GetTable("mid");
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(mid->AppendRow({Value::Int(i), Value::Int(i * 10),
                                  Value::String("t" + std::to_string(i % 3))})
                      .ok());
    }
    auto tiny = *db_.catalog().GetTable("tiny");
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(tiny->AppendRow({Value::Int(i), Value::Int(i * 25)}).ok());
    }
    for (const char* t : {"big", "mid", "tiny"}) {
      ASSERT_TRUE(db_.catalog().Analyze(t).ok());
    }
  }

  Table Q(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).ValueOrDie() : Table{};
  }

  Database db_;
};

TEST_F(JoinReorderTest, ThreeTableOrderInsensitive) {
  const char* orders[] = {
      "SELECT count(*) FROM big b, mid m, tiny t WHERE b.id = m.big_id AND "
      "m.id = t.mid_id",
      "SELECT count(*) FROM tiny t, big b, mid m WHERE b.id = m.big_id AND "
      "m.id = t.mid_id",
      "SELECT count(*) FROM mid m, tiny t, big b WHERE m.id = t.mid_id AND "
      "b.id = m.big_id",
  };
  std::vector<int64_t> counts;
  for (const char* sql : orders) {
    counts.push_back(Q(sql).column(0).GetValue(0).int_value());
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], counts[2]);
  EXPECT_GT(counts[0], 0);
}

TEST_F(JoinReorderTest, AvoidsCrossProductBlowup) {
  // Written order starts with big x mid disconnected (the only link to big
  // is via mid -> tiny -> ... no: big-mid link given, but put tiny last with
  // the big table listed twice the pair (big, big2) unlinked directly).
  ASSERT_TRUE(db_.Execute("CREATE TABLE big2 (id INT)").ok());
  auto big2 = *db_.catalog().GetTable("big2");
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(big2->AppendRow({Value::Int(i)}).ok());
  }
  ASSERT_TRUE(db_.catalog().Analyze("big2").ok());
  // Without reordering, (big x big2) would hit the 100M-pair guard after
  // filtering... 5000*5000 = 25M pairs still materialized; the reorder puts
  // the connected tiny/mid joins first so intermediate results stay small.
  Table r = Q("SELECT count(*) FROM big b, big2 b2, mid m, tiny t WHERE b.id "
              "= m.big_id AND m.id = t.mid_id AND b2.id = t.id");
  EXPECT_GT(r.column(0).GetValue(0).int_value(), 0);
}

TEST_F(JoinReorderTest, PlanStartsFromSmallestRelation) {
  auto stmt = sql::ParseStatement(
      "SELECT count(*) FROM big b, mid m, tiny t WHERE b.id = m.big_id AND "
      "m.id = t.mid_id");
  auto plan = db_.PlanQuery(*std::get<std::shared_ptr<SelectStmt>>(*stmt));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The deepest-left scan of the join chain must be the tiny table.
  const PlanNode* n = plan->get();
  while (!n->children.empty()) n = n->children[0].get();
  EXPECT_EQ(n->kind, PlanKind::kScan);
  EXPECT_EQ(n->table_name, "tiny");
}

TEST_F(JoinReorderTest, ResidualNonEquiConditionsSurvive) {
  Table a = Q("SELECT count(*) FROM big b, mid m, tiny t WHERE b.id = "
              "m.big_id AND m.id = t.mid_id AND b.grp < t.id");
  db_.optimizer_options().enable_join_reorder = false;
  Table b = Q("SELECT count(*) FROM big b, mid m, tiny t WHERE b.id = "
              "m.big_id AND m.id = t.mid_id AND b.grp < t.id");
  EXPECT_EQ(a.column(0).GetValue(0).int_value(),
            b.column(0).GetValue(0).int_value());
}

TEST_F(JoinReorderTest, ReorderCanBeDisabled) {
  db_.optimizer_options().enable_join_reorder = false;
  auto stmt = sql::ParseStatement(
      "SELECT count(*) FROM big b, mid m, tiny t WHERE b.id = m.big_id AND "
      "m.id = t.mid_id");
  auto plan = db_.PlanQuery(*std::get<std::shared_ptr<SelectStmt>>(*stmt));
  ASSERT_TRUE(plan.ok());
  const PlanNode* n = plan->get();
  while (!n->children.empty()) n = n->children[0].get();
  EXPECT_EQ(n->table_name, "big");  // written order preserved
}

TEST_F(JoinReorderTest, FourTablesWithGroupBy) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE extra (tiny_id INT, w FLOAT)").ok());
  auto extra = *db_.catalog().GetTable("extra");
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        extra->AppendRow({Value::Int(i % 20), Value::Float(i * 1.5)}).ok());
  }
  Table r = Q("SELECT m.tag, count(*), sum(e.w) FROM big b, mid m, tiny t, "
              "extra e WHERE b.id = m.big_id AND m.id = t.mid_id AND t.id = "
              "e.tiny_id GROUP BY m.tag ORDER BY m.tag");
  EXPECT_GT(r.num_rows(), 0);
  // Cross-check against the unreordered plan.
  db_.optimizer_options().enable_join_reorder = false;
  Table ref = Q("SELECT m.tag, count(*), sum(e.w) FROM big b, mid m, tiny t, "
                "extra e WHERE b.id = m.big_id AND m.id = t.mid_id AND t.id "
                "= e.tiny_id GROUP BY m.tag ORDER BY m.tag");
  EXPECT_EQ(r.ToString(100), ref.ToString(100));
}

}  // namespace
}  // namespace dl2sql::db
