/// \file db_cache_test.cc
/// \brief Cross-query caching at the Database level: nUDF result memoization
/// (off-vs-on bit-identity, recomputation skipping, model-reload
/// invalidation), prepared-plan caching (DML/DDL invalidation including
/// drop/recreate), ExplainAnalyze counter visibility, and cached batched
/// nUDFs under morsel parallelism (TSAN-exercised in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/device.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "db/database.h"

namespace dl2sql::db {
namespace {

constexpr int64_t kRows = 2000;

std::shared_ptr<Device> MakeCpuDevice(int threads) {
  DeviceProfile profile = Device::ServerCpuProfile();
  profile.name = "cache-cpu-" + std::to_string(threads);
  profile.num_threads = threads;
  return std::make_shared<Device>(profile);
}

void FillFact(Database* db) {
  TableSchema schema({{"id", DataType::kInt64}, {"val", DataType::kInt64}});
  Table fact{schema};
  for (int64_t i = 0; i < kRows; ++i) {
    DL2SQL_CHECK(
        fact.AppendRow({Value::Int(i), Value::Int((i * 37) % 500)}).ok());
  }
  DL2SQL_CHECK(db->RegisterTable("fact", std::move(fact)).ok());
}

/// Deterministic "model" with an explicit fingerprint; `evals` counts rows
/// that actually reached the body (the quantity memoization must shrink).
void RegisterFingerprintedNudf(Database* db, uint64_t fingerprint,
                               double scale, std::atomic<int64_t>* evals) {
  NUdfInfo info;
  info.model_name = "affine-" + std::to_string(fingerprint);
  info.fingerprint = fingerprint;
  db->udfs().RegisterNeural(
      "nudf_model", DataType::kFloat64,
      [evals, scale](const std::vector<Value>& args) -> Result<Value> {
        DL2SQL_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        evals->fetch_add(1, std::memory_order_relaxed);
        return Value::Float(x * scale + 1.0);
      },
      info,
      [evals, scale](const std::vector<std::vector<Value>>& rows)
          -> Result<std::vector<Value>> {
        std::vector<Value> out;
        out.reserve(rows.size());
        for (const auto& row : rows) {
          DL2SQL_ASSIGN_OR_RETURN(double x, row[0].AsDouble());
          out.push_back(Value::Float(x * scale + 1.0));
        }
        evals->fetch_add(static_cast<int64_t>(rows.size()),
                         std::memory_order_relaxed);
        return out;
      },
      /*arity=*/1, /*parallel_safe=*/true);
}

/// Every cell of every row, so equality means bit-identical results.
std::string Dump(const Table& t) {
  std::string out;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    for (int c = 0; c < t.num_columns(); ++c) {
      out += t.column(c).GetValue(r).ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

CacheOptions AllOff() {
  CacheOptions off;
  off.enable_nudf_cache = false;
  off.enable_plan_cache = false;
  return off;
}

/// Forces defaults (both caches ON) so these tests hold even when the suite
/// runs under DL2SQL_CACHE=OFF (the off-vs-on CI pass).
void ForceCachesOn(Database* db) { db->set_cache_options(CacheOptions{}); }

TEST(DbCacheTest, OffVsOnResultsAreBitIdentical) {
  std::atomic<int64_t> evals_on{0};
  std::atomic<int64_t> evals_off{0};
  Database cached;
  Database uncached;
  ForceCachesOn(&cached);
  uncached.set_cache_options(AllOff());
  FillFact(&cached);
  FillFact(&uncached);
  RegisterFingerprintedNudf(&cached, 0x1111, 2.0, &evals_on);
  RegisterFingerprintedNudf(&uncached, 0x1111, 2.0, &evals_off);

  const std::string sql =
      "SELECT id, nudf_model(val) AS p FROM fact WHERE val < 400";
  for (int rep = 0; rep < 3; ++rep) {
    auto a = cached.Execute(sql);
    auto b = uncached.Execute(sql);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(Dump(*a), Dump(*b)) << "rep " << rep;
  }
  // The uncached engine recomputed every rep; the cached one did strictly
  // less work after warmup while producing the same bytes.
  EXPECT_LT(evals_on.load(), evals_off.load());
}

TEST(DbCacheTest, WarmNudfCacheSkipsModelWork) {
  std::atomic<int64_t> evals{0};
  Database db;
  ForceCachesOn(&db);
  FillFact(&db);
  RegisterFingerprintedNudf(&db, 0x2222, 2.0, &evals);
  Counter* batches = MetricsRegistry::Global().counter("nudf.batches");

  auto cold = db.Execute("SELECT nudf_model(val) AS p FROM fact");
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  const int64_t evals_cold = evals.load();
  // Probes precede inserts within a morsel, so the cold run still computes
  // every row; the payoff is cross-query.
  EXPECT_LE(evals_cold, kRows);
  EXPECT_GT(evals_cold, 0);

  const int64_t calls_before = db.neural_calls();
  const int64_t batches_before = batches->value();
  auto warm = db.Execute("SELECT nudf_model(val) AS p FROM fact");
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(Dump(*cold), Dump(*warm));
  // Fully warm: zero rows reached the model, zero real batches ran...
  EXPECT_EQ(evals.load(), evals_cold);
  EXPECT_EQ(batches->value(), batches_before);
  // ...yet the semantic tallies still count rows answered by the model.
  EXPECT_EQ(db.neural_calls() - calls_before, kRows);
}

TEST(DbCacheTest, ModelReloadInvalidatesStaleResults) {
  std::atomic<int64_t> evals{0};
  Database db;
  ForceCachesOn(&db);
  FillFact(&db);
  RegisterFingerprintedNudf(&db, 0x3333, 2.0, &evals);
  auto v1 = db.Execute("SELECT nudf_model(val) AS p FROM fact");
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  ASSERT_GT(db.nudf_cache()->entries(), 0);

  // Redeploy under the same name with new "weights" (scale 3, fingerprint
  // changed): the replacement hook must drop every memoized result.
  RegisterFingerprintedNudf(&db, 0x4444, 3.0, &evals);
  EXPECT_EQ(db.nudf_cache()->entries(), 0);

  auto v2 = db.Execute("SELECT nudf_model(val) AS p FROM fact");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_NE(Dump(*v1), Dump(*v2));  // stale entries were never served

  Database fresh;
  fresh.set_cache_options(AllOff());
  FillFact(&fresh);
  std::atomic<int64_t> fresh_evals{0};
  RegisterFingerprintedNudf(&fresh, 0x4444, 3.0, &fresh_evals);
  auto expect = fresh.Execute("SELECT nudf_model(val) AS p FROM fact");
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(Dump(*v2), Dump(*expect));
}

TEST(DbCacheTest, PlanCacheReusesPlanUntilDmlInvalidates) {
  Database db;
  ForceCachesOn(&db);
  FillFact(&db);
  const std::string sql = "SELECT id, val FROM fact WHERE val < 100";

  auto r1 = db.Execute(sql);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  const PlanNode* p1 = db.last_plan().get();

  auto r2 = db.Execute(sql);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(db.last_plan().get(), p1);  // served from the plan cache
  EXPECT_EQ(Dump(*r1), Dump(*r2));

  // DML bumps the catalog version of `fact`: the cached plan is stale.
  ASSERT_TRUE(db.Execute("INSERT INTO fact VALUES (99999, 5)").ok());
  auto r3 = db.Execute(sql);
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_NE(db.last_plan().get(), p1);  // replanned
  EXPECT_EQ(r3->num_rows(), r1->num_rows() + 1);  // and sees the new row

  const PlanNode* p3 = db.last_plan().get();
  auto r4 = db.Execute(sql);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(db.last_plan().get(), p3);  // re-cached after the replan
}

TEST(DbCacheTest, PlanCacheSurvivesDropAndRecreateWithNewSchema) {
  Database db;
  ForceCachesOn(&db);
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INT);"
                               "INSERT INTO t VALUES (1);"
                               "INSERT INTO t VALUES (2);")
                  .ok());
  auto r1 = db.Execute("SELECT * FROM t");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->num_columns(), 1);
  EXPECT_EQ(r1->num_rows(), 2);

  // Same name, different shape: the persistent per-name version counter
  // means the old plan can never validate against the recreated table.
  ASSERT_TRUE(db.ExecuteScript("DROP TABLE t;"
                               "CREATE TABLE t (b FLOAT, c INT);"
                               "INSERT INTO t VALUES (1.5, 7);")
                  .ok());
  auto r2 = db.Execute("SELECT * FROM t");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->num_columns(), 2);
  EXPECT_EQ(r2->num_rows(), 1);
}

TEST(DbCacheTest, ExplainAnalyzeShowsCacheHitCounters) {
  std::atomic<int64_t> evals{0};
  Database db;
  ForceCachesOn(&db);
  FillFact(&db);
  RegisterFingerprintedNudf(&db, 0x5555, 2.0, &evals);
  ASSERT_TRUE(db.Execute("SELECT nudf_model(val) AS p FROM fact").ok());

  auto ea = db.ExplainAnalyze("SELECT nudf_model(val) AS p FROM fact");
  ASSERT_TRUE(ea.ok()) << ea.status().ToString();
  // The warm run's probes all hit; the footer reports the per-query delta.
  EXPECT_NE(ea->find("cache.nudf.hits="), std::string::npos) << *ea;
}

TEST(DbCacheTest, CachedBatchedNudfIsSafeUnderMorselParallelism) {
  std::atomic<int64_t> evals{0};
  Database db;
  ForceCachesOn(&db);
  FillFact(&db);
  auto device = MakeCpuDevice(8);
  db.set_exec_options({device.get(), /*morsel_size=*/128});
  RegisterFingerprintedNudf(&db, 0x6666, 2.0, &evals);

  // Partially warm the cache, then run the full table: morsels race mixed
  // hit/miss probes and insertions against each other on the pool. TSAN
  // (ci.sh pass 3 reruns this binary) turns any cache race into a failure.
  ASSERT_TRUE(
      db.Execute("SELECT nudf_model(val) AS p FROM fact WHERE val < 250")
          .ok());
  std::string first;
  for (int rep = 0; rep < 3; ++rep) {
    auto r = db.Execute("SELECT id, nudf_model(val) AS p FROM fact");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->num_rows(), kRows);
    if (rep == 0) {
      first = Dump(*r);
    } else {
      EXPECT_EQ(Dump(*r), first) << "rep " << rep;
    }
  }
  // 500 distinct inputs, each duplicated 4x: concurrent morsels may both
  // miss a duplicate before either inserts it, but once the cache is warm
  // (after the first full pass) no row reaches the model again. Uncached,
  // this workload would cost 1000 + 3*2000 = 7000 evals.
  EXPECT_LE(evals.load(), 3000);
}

}  // namespace
}  // namespace dl2sql::db
