/// \file counters_race_test.cc
/// \brief Database tallies and observability sinks under morsel parallelism.
///
/// nUDF bodies finish on pool workers, so every cross-query tally the
/// Database keeps (neural_calls, join counters) and every observability sink
/// they feed (registry counters, histograms, trace buffers) must tolerate
/// concurrent writers without losing increments. CI reruns this binary under
/// ThreadSanitizer (scripts/ci.sh pass 3), which is what turns a latent race
/// into a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accel/device.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "db/database.h"

namespace dl2sql::db {
namespace {

constexpr int64_t kRows = 8000;
constexpr int64_t kDimRows = 32;
constexpr int64_t kSmallMorsel = 256;  // many morsels → real thread overlap
constexpr int kReps = 4;

std::shared_ptr<Device> MakeCpuDevice(int threads) {
  DeviceProfile profile = Device::ServerCpuProfile();
  profile.name = "race-cpu-" + std::to_string(threads);
  profile.num_threads = threads;
  return std::make_shared<Device>(profile);
}

void FillTables(Database* db) {
  TableSchema fact_schema({{"id", DataType::kInt64},
                           {"grp", DataType::kInt64},
                           {"val", DataType::kInt64}});
  Table fact{fact_schema};
  for (int64_t i = 0; i < kRows; ++i) {
    DL2SQL_CHECK(fact.AppendRow({Value::Int(i),
                                 Value::Int((i * 7919) % kDimRows),
                                 Value::Int((i * 104729 + 13) % 1000)})
                     .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("fact", std::move(fact)).ok());

  TableSchema dim_schema(
      {{"id", DataType::kInt64}, {"w", DataType::kInt64}});
  Table dim{dim_schema};
  for (int64_t i = 0; i < kDimRows; ++i) {
    DL2SQL_CHECK(dim.AppendRow({Value::Int(i), Value::Int(i * i)}).ok());
  }
  DL2SQL_CHECK(db->RegisterTable("dim", std::move(dim)).ok());

  NUdfInfo info;
  info.model_name = "affine";
  db->udfs().RegisterNeural(
      "nudf_affine", DataType::kFloat64,
      [](const std::vector<Value>& args) -> Result<Value> {
        DL2SQL_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        return Value::Float(x * 2.0 + 1.0);
      },
      info,
      [](const std::vector<std::vector<Value>>& rows)
          -> Result<std::vector<Value>> {
        std::vector<Value> out;
        out.reserve(rows.size());
        for (const auto& row : rows) {
          DL2SQL_ASSIGN_OR_RETURN(double x, row[0].AsDouble());
          out.push_back(Value::Float(x * 2.0 + 1.0));
        }
        return out;
      },
      /*arity=*/1, /*parallel_safe=*/true);
}

TEST(DbCountersRaceTest, NeuralCallTallyIsExactUnderMorselParallelism) {
  Database db;
  FillTables(&db);
  auto device = MakeCpuDevice(8);
  db.set_exec_options({device.get(), kSmallMorsel});

  db.reset_neural_calls();
  for (int rep = 0; rep < kReps; ++rep) {
    auto r = db.Execute("SELECT id, nudf_affine(val) AS p FROM fact");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->num_rows(), kRows);
  }
  // Workers drained per-morsel counts into the atomic tally; a plain int64
  // here would drop increments (and trip TSAN).
  EXPECT_EQ(db.neural_calls(), kRows * kReps);
}

TEST(DbCountersRaceTest, JoinTalliesStayConsistentAcrossParallelReps) {
  Database db;
  FillTables(&db);
  auto device = MakeCpuDevice(8);
  db.set_exec_options({device.get(), kSmallMorsel});

  const int64_t shj_before = db.symmetric_joins_executed();
  const int64_t idx_before = db.index_joins_executed();
  int64_t expect_rows = -1;
  for (int rep = 0; rep < kReps; ++rep) {
    auto r = db.Execute(
        "SELECT F.id, D.w FROM fact F INNER JOIN dim D ON F.grp = D.id "
        "WHERE F.val % 2 = 0");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (expect_rows < 0) expect_rows = r->num_rows();
    EXPECT_EQ(r->num_rows(), expect_rows);
  }
  // Each rep executes exactly one join; whichever strategy the optimizer
  // picked, the two tallies together must account for all of them.
  const int64_t shj = db.symmetric_joins_executed() - shj_before;
  const int64_t idx = db.index_joins_executed() - idx_before;
  EXPECT_GE(shj, 0);
  EXPECT_GE(idx, 0);
  EXPECT_LE(shj + idx, kReps);
}

TEST(DbCountersRaceTest, RegistryCountersMatchQueryWork) {
  Database db;
  FillTables(&db);
  auto device = MakeCpuDevice(8);
  db.set_exec_options({device.get(), kSmallMorsel});

  Counter* invocations = MetricsRegistry::Global().counter("nudf.invocations");
  Histogram* batch_us = MetricsRegistry::Global().histogram("nudf.batch_us");
  const int64_t inv_before = invocations->value();
  const int64_t batches_before = batch_us->count();

  for (int rep = 0; rep < kReps; ++rep) {
    auto r = db.Execute("SELECT id, nudf_affine(val) AS p FROM fact");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // Invocation counting is per-row exact even though the increments come
  // from pool workers; batch timings arrive one per morsel.
  EXPECT_EQ(invocations->value() - inv_before, kRows * kReps);
  EXPECT_GT(batch_us->count() - batches_before, 0);
}

TEST(DbCountersRaceTest, SinksSurviveDirectMultithreadedHammering) {
  // Bypass the executor: raw threads hitting the registry and the trace
  // collector at full speed, the worst case TSAN can check.
  TraceCollector::Global().SetEnabled(false);
  TraceCollector::Global().Clear();
  TraceCollector::Global().SetEnabled(true);

  constexpr int kThreads = 8;
  constexpr int kIters = 3000;
  Counter* c = MetricsRegistry::Global().counter("race.hammer.counter");
  Histogram* h = MetricsRegistry::Global().histogram("race.hammer.hist");
  const int64_t c_before = c->value();
  const int64_t h_before = h->count();
  const int64_t ev_before = TraceCollector::Global().EventCount();

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&go] {
      while (!go.load()) {
      }
      for (int i = 0; i < kIters; ++i) {
        MetricsRegistry::Global().counter("race.hammer.counter")->Increment();
        MetricsRegistry::Global().histogram("race.hammer.hist")->Record(i + 1);
        TraceSpan span("race", "hammer");
      }
    });
  }
  go.store(true);
  // Concurrent readers: snapshots and JSON export while writers run.
  for (int i = 0; i < 5; ++i) {
    (void)TraceCollector::Global().Snapshot();
    (void)MetricsRegistry::Global().ToJson();
  }
  for (auto& t : threads) t.join();
  TraceCollector::Global().SetEnabled(false);

  EXPECT_EQ(c->value() - c_before, kThreads * kIters);
  EXPECT_EQ(h->count() - h_before, kThreads * kIters);
  EXPECT_EQ(TraceCollector::Global().EventCount() - ev_before,
            kThreads * kIters);
  TraceCollector::Global().Clear();
}

}  // namespace
}  // namespace dl2sql::db
