/// \file expr_eval_test.cc
/// \brief Value semantics, vectorized expression evaluation, NULL handling
/// and type inference.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "db/eval.h"
#include "db/sql/parser.h"

namespace dl2sql::db {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Int(3).int_value(), 3);
  EXPECT_DOUBLE_EQ(Value::Float(2.5).float_value(), 2.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
  EXPECT_EQ(Value::Blob("ab").type(), DataType::kBlob);
}

TEST(ValueTest, CrossNumericCompare) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Float(2.0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Float(1.5)), 0);
  EXPECT_GT(Value::Float(3.0).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::String("a").Compare(Value::String("b")), -1);
  // NULLs sort first.
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
}

TEST(ValueTest, NullNeverEqualsAnything) {
  EXPECT_FALSE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
  EXPECT_TRUE(Value::Int(1).Equals(Value::Float(1.0)));
}

TEST(ValueTest, Coercions) {
  EXPECT_DOUBLE_EQ(*Value::Int(4).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(*Value::Bool(true).AsDouble(), 1.0);
  EXPECT_EQ(*Value::Float(3.9).AsInt(), 3);
  EXPECT_FALSE(Value::String("x").AsDouble().ok());
}

TEST(EvalBinaryTest, ThreeValuedLogic) {
  const Value null = Value::Null();
  const Value t = Value::Bool(true);
  const Value f = Value::Bool(false);
  // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
  EXPECT_FALSE((*EvalValueBinary(BinaryOp::kAnd, f, null)).bool_value());
  EXPECT_TRUE((*EvalValueBinary(BinaryOp::kAnd, t, null)).is_null());
  // TRUE OR NULL = TRUE; FALSE OR NULL = NULL.
  EXPECT_TRUE((*EvalValueBinary(BinaryOp::kOr, t, null)).bool_value());
  EXPECT_TRUE((*EvalValueBinary(BinaryOp::kOr, f, null)).is_null());
  // Comparisons with NULL are NULL.
  EXPECT_TRUE((*EvalValueBinary(BinaryOp::kEq, null, t)).is_null());
}

TEST(EvalBinaryTest, ArithmeticTyping) {
  EXPECT_EQ((*EvalValueBinary(BinaryOp::kAdd, Value::Int(2), Value::Int(3)))
                .type(),
            DataType::kInt64);
  EXPECT_EQ((*EvalValueBinary(BinaryOp::kAdd, Value::Int(2), Value::Float(3)))
                .type(),
            DataType::kFloat64);
  // Division is always float (ClickHouse semantics).
  const Value div = *EvalValueBinary(BinaryOp::kDiv, Value::Int(7), Value::Int(2));
  EXPECT_EQ(div.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(div.float_value(), 3.5);
  EXPECT_EQ((*EvalValueBinary(BinaryOp::kMod, Value::Int(7), Value::Int(3)))
                .int_value(),
            1);
  EXPECT_FALSE(EvalValueBinary(BinaryOp::kMod, Value::Int(1), Value::Int(0)).ok());
}

class EvalFixture : public ::testing::Test {
 protected:
  EvalFixture() {
    TableSchema schema({{"a", DataType::kInt64},
                        {"b", DataType::kFloat64},
                        {"s", DataType::kString}});
    table_ = Table(schema);
    DL2SQL_CHECK(table_.AppendRow({Value::Int(1), Value::Float(0.5),
                                   Value::String("x")}).ok());
    DL2SQL_CHECK(table_.AppendRow({Value::Int(2), Value::Float(1.5),
                                   Value::String("y")}).ok());
    DL2SQL_CHECK(table_.AppendRow({Value::Int(3), Value::Null(),
                                   Value::String("z")}).ok());
    ctx_.udfs = &udfs_;
  }

  ColumnHandle Eval(const std::string& expr) {
    auto e = sql::ParseExpression(expr);
    DL2SQL_CHECK(e.ok()) << e.status().ToString();
    auto col = EvalExpr(**e, table_, &ctx_);
    DL2SQL_CHECK(col.ok()) << col.status().ToString();
    return *col;
  }

  Table table_;
  UdfRegistry udfs_;
  EvalContext ctx_;
};

TEST_F(EvalFixture, ColumnRefAliasesInput) {
  ColumnHandle c = Eval("a");
  EXPECT_EQ(c->type(), DataType::kInt64);
  EXPECT_EQ(c->ints()[2], 3);
}

TEST_F(EvalFixture, VectorizedArithmetic) {
  ColumnHandle c = Eval("a * 2 + 1");
  EXPECT_EQ(c->type(), DataType::kInt64);
  EXPECT_EQ(c->ints()[1], 5);
}

TEST_F(EvalFixture, NullPropagationInColumns) {
  ColumnHandle c = Eval("b + 1");
  EXPECT_TRUE(c->IsValid(0));
  EXPECT_FALSE(c->IsValid(2));  // NULL row propagates
}

TEST_F(EvalFixture, StringComparisonVectorized) {
  ColumnHandle c = Eval("s >= 'y'");
  EXPECT_EQ(c->type(), DataType::kBool);
  EXPECT_EQ(c->bools()[0], 0);
  EXPECT_EQ(c->bools()[1], 1);
  EXPECT_EQ(c->bools()[2], 1);
}

TEST_F(EvalFixture, BuiltinFunctionOverColumn) {
  ColumnHandle c = Eval("greatest(0, a - 2)");
  EXPECT_DOUBLE_EQ(c->GetValue(0).float_value(), 0.0);
  EXPECT_DOUBLE_EQ(c->GetValue(2).float_value(), 1.0);
}

TEST_F(EvalFixture, FilterRowsNullIsFalse) {
  auto e = sql::ParseExpression("b < 100");
  auto rows = FilterRows(**e, table_, &ctx_);
  ASSERT_TRUE(rows.ok());
  // Row 2 has NULL b: excluded.
  EXPECT_EQ(*rows, (std::vector<int64_t>{0, 1}));
}

TEST_F(EvalFixture, FilterRequiresBool) {
  auto e = sql::ParseExpression("a + 1");
  EXPECT_TRUE(FilterRows(**e, table_, &ctx_).status().IsTypeError());
}

TEST_F(EvalFixture, EmptyInputStaysTyped) {
  Table empty{table_.schema()};
  auto e = sql::ParseExpression("a = 1");
  auto col = EvalExpr(**e, empty, &ctx_);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->type(), DataType::kBool);
  EXPECT_EQ((*col)->size(), 0);
}

TEST_F(EvalFixture, UnknownFunctionFails) {
  auto e = sql::ParseExpression("nosuchfn(a)");
  EXPECT_FALSE(EvalExpr(**e, table_, &ctx_).ok());
}

TEST_F(EvalFixture, ArityChecked) {
  auto e = sql::ParseExpression("sqrt(a, b)");
  EXPECT_FALSE(EvalExpr(**e, table_, &ctx_).ok());
}

TEST_F(EvalFixture, InListEval) {
  ColumnHandle c = Eval("a IN (1, 3)");
  EXPECT_EQ(c->bools()[0], 1);
  EXPECT_EQ(c->bools()[1], 0);
  EXPECT_EQ(c->bools()[2], 1);
}

TEST_F(EvalFixture, TypeInference) {
  auto check = [&](const std::string& expr, DataType expected) {
    auto e = sql::ParseExpression(expr);
    ASSERT_TRUE(e.ok());
    auto t = InferExprType(**e, table_.schema(), &udfs_);
    ASSERT_TRUE(t.ok()) << expr;
    EXPECT_EQ(*t, expected) << expr;
  };
  check("a", DataType::kInt64);
  check("b", DataType::kFloat64);
  check("a + 1", DataType::kInt64);
  check("a + b", DataType::kFloat64);
  check("a / 2", DataType::kFloat64);
  check("a % 2", DataType::kInt64);
  check("a > b", DataType::kBool);
  check("NOT (a > b)", DataType::kBool);
  check("s IN ('x')", DataType::kBool);
  check("count(*)", DataType::kInt64);
  check("sum(a)", DataType::kFloat64);
  check("min(s)", DataType::kString);
}

TEST(ExprUtilTest, SplitAndCombineConjuncts) {
  auto e = sql::ParseExpression("a AND b AND (c OR d)");
  std::vector<ExprPtr> parts;
  SplitConjuncts(*e, &parts);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2]->ToString(), "(c OR d)");
  ExprPtr combined = CombineConjuncts(parts);
  std::vector<ExprPtr> again;
  SplitConjuncts(combined, &again);
  EXPECT_EQ(again.size(), 3u);
  // Empty conjunct list is literal TRUE.
  EXPECT_EQ(CombineConjuncts({})->literal.bool_value(), true);
}

TEST(ExprUtilTest, CloneIsDeep) {
  auto e = sql::ParseExpression("a + b");
  ExprPtr clone = (*e)->Clone();
  clone->children[0]->column_name = "zzz";
  EXPECT_EQ((*e)->children[0]->column_name, "a");
}

}  // namespace
}  // namespace dl2sql::db
