/// \file codec_test.cc
/// \brief Columnar codec round-trips and compression properties.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "db/codec.h"

namespace dl2sql::db {
namespace {

Table SampleTable() {
  TableSchema schema({{"id", DataType::kInt64},
                      {"v", DataType::kFloat64},
                      {"flag", DataType::kBool},
                      {"name", DataType::kString},
                      {"payload", DataType::kBlob}});
  Table t{schema};
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    DL2SQL_CHECK(t.AppendRow({Value::Int(i * 3),
                              Value::Float(static_cast<float>(
                                  rng.UniformReal(-5, 5))),
                              Value::Bool(i % 3 == 0),
                              Value::String("name_" + std::to_string(i % 7)),
                              Value::Blob(std::string(i % 11, 'x'))})
                     .ok());
  }
  return t;
}

TEST(CodecTest, RoundTripAllTypes) {
  Table t = SampleTable();
  auto bytes = CompressTable(t);
  ASSERT_TRUE(bytes.ok());
  auto back = DecompressTable(*bytes);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), t.num_rows());
  ASSERT_EQ(back->num_columns(), t.num_columns());
  for (int c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(back->schema().field(c).name, t.schema().field(c).name);
    EXPECT_EQ(back->schema().field(c).type, t.schema().field(c).type);
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      EXPECT_EQ(back->column(c).GetValue(r).ToString(),
                t.column(c).GetValue(r).ToString())
          << "col " << c << " row " << r;
    }
  }
}

TEST(CodecTest, SequentialIntsCompressHard) {
  TableSchema schema({{"id", DataType::kInt64}});
  Table t{schema};
  for (int i = 0; i < 10000; ++i) {
    DL2SQL_CHECK(t.AppendRow({Value::Int(i)}).ok());
  }
  auto bytes = CompressedTableBytes(t);
  ASSERT_TRUE(bytes.ok());
  // Delta-varint: ~1 byte per row vs 8 raw.
  EXPECT_LT(*bytes, 10000u * 2);
  EXPECT_LT(*bytes * 4, t.ByteSize());
}

TEST(CodecTest, FloatsStoreAsFloat32) {
  TableSchema schema({{"v", DataType::kFloat64}});
  Table t{schema};
  for (int i = 0; i < 1000; ++i) {
    DL2SQL_CHECK(
        t.AppendRow({Value::Float(static_cast<float>(i) * 0.25f)}).ok());
  }
  auto bytes = CompressedTableBytes(t);
  ASSERT_TRUE(bytes.ok());
  EXPECT_LT(*bytes, 1000u * 5 + 64);
  // Values produced as float32 round-trip exactly.
  auto back = DecompressTable(*CompressTable(t));
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->column(0).floats()[999], 999 * 0.25);
}

TEST(CodecTest, EmptyTable) {
  Table t{TableSchema({{"a", DataType::kInt64}})};
  auto back = DecompressTable(*CompressTable(t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0);
}

TEST(CodecTest, RejectsCorruption) {
  EXPECT_FALSE(DecompressTable("").ok());
  EXPECT_FALSE(DecompressTable("XXXXXXXXgarbage").ok());
  Table t = SampleTable();
  std::string bytes = *CompressTable(t);
  bytes.resize(bytes.size() / 3);
  EXPECT_FALSE(DecompressTable(bytes).ok());
}

TEST(CodecTest, NullsAreRejected) {
  Table t{TableSchema({{"a", DataType::kInt64}})};
  DL2SQL_CHECK(t.AppendRow({Value::Null()}).ok());
  EXPECT_TRUE(CompressTable(t).status().IsNotImplemented());
}

}  // namespace
}  // namespace dl2sql::db
