/// \file db_advanced_test.cc
/// \brief Edge cases across the engine: view nesting, aggregates over empty
/// and NULL-laden inputs, DML corner cases, blob columns, join guards, and
/// the exact COUNT semantics the DL2SQL pipelines rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "db/database.h"

namespace dl2sql::db {
namespace {

class DbAdvancedTest : public ::testing::Test {
 protected:
  Table Q(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).ValueOrDie() : Table{};
  }
  Database db_;
};

TEST_F(DbAdvancedTest, NestedViewsExpand) {
  Q("CREATE TABLE t (a INT)");
  Q("INSERT INTO t VALUES (1), (2), (3), (4)");
  Q("CREATE VIEW v1 AS SELECT a FROM t WHERE a > 1");
  Q("CREATE VIEW v2 AS SELECT a FROM v1 WHERE a < 4");
  Table r = Q("SELECT count(*) FROM v2");
  EXPECT_EQ(r.column(0).GetValue(0).int_value(), 2);
  // A view of a view of a view.
  Q("CREATE VIEW v3 AS SELECT a * 10 AS b FROM v2");
  EXPECT_DOUBLE_EQ(Q("SELECT sum(b) FROM v3").column(0).GetValue(0)
                       .float_value(),
                   50.0);
}

TEST_F(DbAdvancedTest, ViewCycleIsRejected) {
  Q("CREATE TABLE base (a INT)");
  Q("CREATE VIEW loopy AS SELECT a FROM base");
  // Replace the view to reference itself.
  Q("CREATE OR REPLACE VIEW loopy AS SELECT a FROM loopy");
  EXPECT_FALSE(db_.Execute("SELECT * FROM loopy").ok());
}

TEST_F(DbAdvancedTest, AggregateOverEmptyInput) {
  Q("CREATE TABLE e (a INT, b FLOAT)");
  Table r = Q("SELECT count(*), sum(b), avg(b), min(a), max(a) FROM e");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.column(0).GetValue(0).int_value(), 0);
  EXPECT_TRUE(r.column(1).GetValue(0).is_null());
  EXPECT_TRUE(r.column(2).GetValue(0).is_null());
  EXPECT_TRUE(r.column(3).GetValue(0).is_null());
  // Grouped aggregate over empty input has no rows.
  Table g = Q("SELECT a, count(*) FROM e GROUP BY a");
  EXPECT_EQ(g.num_rows(), 0);
}

TEST_F(DbAdvancedTest, CountBooleanCountsTrues) {
  Q("CREATE TABLE flags (grp INT, ok BOOL)");
  Q("INSERT INTO flags VALUES (1, TRUE), (1, FALSE), (1, TRUE), (2, FALSE)");
  Table r = Q("SELECT grp, count(ok = TRUE) FROM flags GROUP BY grp ORDER BY "
              "grp");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(r.column(1).GetValue(0).int_value(), 2);
  EXPECT_EQ(r.column(1).GetValue(1).int_value(), 0);
}

TEST_F(DbAdvancedTest, StddevEdgeCases) {
  Q("CREATE TABLE s (v FLOAT)");
  Q("INSERT INTO s VALUES (5.0)");
  // stddevSamp of one sample is NULL.
  EXPECT_TRUE(Q("SELECT stddevSamp(v) FROM s").column(0).GetValue(0).is_null());
  Q("INSERT INTO s VALUES (5.0)");
  EXPECT_DOUBLE_EQ(
      Q("SELECT stddevSamp(v) FROM s").column(0).GetValue(0).float_value(),
      0.0);
}

TEST_F(DbAdvancedTest, GroupByNullsFormOneGroup) {
  Q("CREATE TABLE n (k INT, v INT)");
  Q("INSERT INTO n VALUES (1, 10), (NULL, 20), (NULL, 30)");
  Table r = Q("SELECT k, count(*) FROM n GROUP BY k ORDER BY count(*) DESC");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(r.column(1).GetValue(0).int_value(), 2);  // the NULL group
}

TEST_F(DbAdvancedTest, LimitZeroAndOverLimit) {
  Q("CREATE TABLE t (a INT)");
  Q("INSERT INTO t VALUES (1), (2)");
  EXPECT_EQ(Q("SELECT a FROM t LIMIT 0").num_rows(), 0);
  EXPECT_EQ(Q("SELECT a FROM t LIMIT 100").num_rows(), 2);
}

TEST_F(DbAdvancedTest, InsertWithColumnListFillsNulls) {
  Q("CREATE TABLE t (a INT, b TEXT, c FLOAT)");
  Q("INSERT INTO t (c, a) VALUES (1.5, 7)");
  Table r = Q("SELECT a, b, c FROM t");
  EXPECT_EQ(r.column(0).GetValue(0).int_value(), 7);
  EXPECT_TRUE(r.column(1).GetValue(0).is_null());
  EXPECT_DOUBLE_EQ(r.column(2).GetValue(0).float_value(), 1.5);
  // Arity mismatch is rejected.
  EXPECT_FALSE(db_.Execute("INSERT INTO t (a) VALUES (1, 2)").ok());
}

TEST_F(DbAdvancedTest, UpdateSelfReferential) {
  Q("CREATE TABLE t (a INT, b INT)");
  Q("INSERT INTO t VALUES (1, 100), (2, 200), (3, 300)");
  // All right-hand sides are evaluated against the pre-update table.
  Q("UPDATE t SET a = b, b = a WHERE a > 1");
  Table r = Q("SELECT a, b FROM t ORDER BY b");
  EXPECT_EQ(r.column(0).GetValue(0).int_value(), 1);
  EXPECT_EQ(r.column(0).GetValue(1).int_value(), 200);
}

TEST_F(DbAdvancedTest, DeleteAllAndReinsert) {
  Q("CREATE TABLE t (a INT)");
  Q("INSERT INTO t VALUES (1), (2)");
  Q("DELETE FROM t");
  EXPECT_EQ(Q("SELECT count(*) FROM t").column(0).GetValue(0).int_value(), 0);
  Q("INSERT INTO t VALUES (9)");
  EXPECT_EQ(Q("SELECT count(*) FROM t").column(0).GetValue(0).int_value(), 1);
}

TEST_F(DbAdvancedTest, BlobColumnsStoreAndCompare) {
  Q("CREATE TABLE bl (id INT, payload BLOB)");
  Q("INSERT INTO bl VALUES (1, 'abc'), (2, 'xyz')");
  Table r = Q("SELECT id FROM bl WHERE length(payload) = 3");
  EXPECT_EQ(r.num_rows(), 2);
}

TEST_F(DbAdvancedTest, CrossJoinGuardRejectsHugeProducts) {
  Q("CREATE TABLE a (x INT)");
  Q("CREATE TABLE b (y INT)");
  auto ta = db_.catalog().GetTable("a");
  auto tb = db_.catalog().GetTable("b");
  for (int i = 0; i < 11000; ++i) {
    ASSERT_TRUE((*ta)->AppendRow({Value::Int(i)}).ok());
    ASSERT_TRUE((*tb)->AppendRow({Value::Int(i)}).ok());
  }
  auto r = db_.Execute("SELECT count(*) FROM a, b");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(DbAdvancedTest, ThreeWayJoin) {
  Q("CREATE TABLE x (id INT, v INT)");
  Q("CREATE TABLE y (id INT, w INT)");
  Q("CREATE TABLE z (id INT, u INT)");
  Q("INSERT INTO x VALUES (1, 10), (2, 20)");
  Q("INSERT INTO y VALUES (1, 100), (2, 200)");
  Q("INSERT INTO z VALUES (1, 1000), (3, 3000)");
  Table r = Q("SELECT x.v, y.w, z.u FROM x, y, z WHERE x.id = y.id AND y.id "
              "= z.id");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.column(2).GetValue(0).int_value(), 1000);
}

TEST_F(DbAdvancedTest, SelfJoinWithAliases) {
  Q("CREATE TABLE p (id INT, parent INT)");
  Q("INSERT INTO p VALUES (1, 0), (2, 1), (3, 1), (4, 2)");
  Table r = Q("SELECT c.id FROM p c, p f WHERE c.parent = f.id AND f.parent "
              "= 1 ORDER BY c.id");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.column(0).GetValue(0).int_value(), 4);
}

TEST_F(DbAdvancedTest, ScalarSubqueryMustBeScalar) {
  Q("CREATE TABLE t (a INT)");
  Q("INSERT INTO t VALUES (1), (2)");
  // Two rows -> error.
  EXPECT_FALSE(db_.Execute("SELECT (SELECT a FROM t)").ok());
  // One row, one column -> fine.
  EXPECT_TRUE(db_.Execute("SELECT (SELECT max(a) FROM t)").ok());
}

TEST_F(DbAdvancedTest, TempTablesDropTogether) {
  Q("CREATE TEMP TABLE tmp1 AS SELECT 1 AS a");
  Q("CREATE TEMP TABLE tmp2 AS SELECT 2 AS a");
  Q("CREATE TABLE keepme (a INT)");
  db_.catalog().DropAllTemporary();
  EXPECT_FALSE(db_.catalog().HasTable("tmp1"));
  EXPECT_FALSE(db_.catalog().HasTable("tmp2"));
  EXPECT_TRUE(db_.catalog().HasTable("keepme"));
}

TEST_F(DbAdvancedTest, CatalogNameCollisions) {
  Q("CREATE TABLE dup (a INT)");
  EXPECT_FALSE(db_.Execute("CREATE TABLE dup (b INT)").ok());
  EXPECT_TRUE(db_.Execute("CREATE TABLE IF NOT EXISTS dup (b INT)").ok());
  EXPECT_FALSE(db_.Execute("CREATE VIEW dup AS SELECT 1").ok());
  Q("CREATE VIEW vw AS SELECT 1 AS one");
  EXPECT_FALSE(db_.Execute("CREATE TABLE vw (a INT)").ok());
  // DROP TABLE tolerates views (DL2SQL pipelines recreate both kinds).
  EXPECT_TRUE(db_.Execute("DROP TABLE vw").ok());
}

TEST_F(DbAdvancedTest, CaseInsensitiveIdentifiers) {
  Q("CREATE TABLE MiXeD (ColA INT)");
  Q("INSERT INTO mixed VALUES (5)");
  EXPECT_EQ(Q("SELECT cola FROM MIXED").column(0).GetValue(0).int_value(), 5);
  EXPECT_EQ(Q("SELECT m.COLA FROM mixed m").column(0).GetValue(0).int_value(),
            5);
}

TEST_F(DbAdvancedTest, QualifiedAmbiguityDetected) {
  Q("CREATE TABLE l (id INT)");
  Q("CREATE TABLE r (id INT)");
  Q("INSERT INTO l VALUES (1)");
  Q("INSERT INTO r VALUES (1)");
  // Bare `id` is ambiguous across the join.
  EXPECT_FALSE(db_.Execute("SELECT id FROM l, r WHERE l.id = r.id").ok());
  EXPECT_TRUE(db_.Execute("SELECT l.id FROM l, r WHERE l.id = r.id").ok());
}

TEST_F(DbAdvancedTest, OrderByMultipleKeysMixedDirections) {
  Q("CREATE TABLE t (a INT, b INT)");
  Q("INSERT INTO t VALUES (1, 2), (1, 1), (2, 9), (0, 5)");
  Table r = Q("SELECT a, b FROM t ORDER BY a ASC, b DESC");
  EXPECT_EQ(r.column(0).GetValue(0).int_value(), 0);
  EXPECT_EQ(r.column(1).GetValue(1).int_value(), 2);
  EXPECT_EQ(r.column(1).GetValue(2).int_value(), 1);
}

TEST_F(DbAdvancedTest, DivisionByZeroIsInfNotError) {
  // ClickHouse semantics: float division by zero -> inf.
  Table r = Q("SELECT 1 / 0");
  EXPECT_TRUE(std::isinf(r.column(0).GetValue(0).float_value()));
}

TEST_F(DbAdvancedTest, UpdateTypeMismatchRejected) {
  Q("CREATE TABLE t (a INT, s TEXT)");
  Q("INSERT INTO t VALUES (1, 'x')");
  EXPECT_FALSE(db_.Execute("UPDATE t SET s = 5").ok());
  EXPECT_FALSE(db_.Execute("UPDATE t SET a = 'nope'").ok());
}

TEST_F(DbAdvancedTest, AnalyzeTracksDml) {
  Q("CREATE TABLE t (a INT)");
  Q("INSERT INTO t VALUES (1), (2), (3)");
  ASSERT_TRUE(db_.catalog().Analyze("t").ok());
  ASSERT_NE(db_.catalog().GetStats("t"), nullptr);
  EXPECT_EQ(db_.catalog().GetStats("t")->num_rows, 3);
  // DML invalidates cached stats.
  Q("INSERT INTO t VALUES (4)");
  EXPECT_EQ(db_.catalog().GetStats("t"), nullptr);
}

TEST_F(DbAdvancedTest, DerivedTableWithAggInsideJoin) {
  Q("CREATE TABLE sales (region TEXT, amt FLOAT)");
  Q("INSERT INTO sales VALUES ('e', 10.0), ('e', 20.0), ('w', 5.0)");
  Q("CREATE TABLE goals (region TEXT, goal FLOAT)");
  Q("INSERT INTO goals VALUES ('e', 25.0), ('w', 10.0)");
  Table r = Q(
      "SELECT g.region FROM (SELECT region, sum(amt) AS total FROM sales "
      "GROUP BY region) s, goals g WHERE s.region = g.region AND s.total > "
      "g.goal");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.column(0).GetValue(0).string_value(), "e");
}

}  // namespace
}  // namespace dl2sql::db
