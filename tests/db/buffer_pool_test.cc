/// \file buffer_pool_test.cc
/// \brief BufferPool behavior: pin counts, eviction, dirty write-back,
/// budget enforcement — serial and under 8-thread contention (this binary is
/// TSAN-pinned by name, see scripts/ci.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "db/storage/buffer_pool.h"
#include "db/storage/storage_engine.h"

namespace dl2sql::db::storage {
namespace {

/// Deterministic per-block content so any read can be verified.
std::string BlockContent(int64_t block, size_t len) {
  std::string s(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>((block * 131 + static_cast<int64_t>(i) * 7) % 251);
  }
  return s;
}

std::shared_ptr<StorageEngine> MakeEngine(size_t pool_bytes, int shards,
                                          size_t block_bytes = 4096) {
  StorageOptions opts;
  opts.pool_bytes = pool_bytes;
  opts.block_bytes = block_bytes;
  opts.shards = shards;
  auto engine = StorageEngine::Create(opts);
  DL2SQL_CHECK(engine.ok()) << engine.status().ToString();
  return *engine;
}

TEST(BufferPoolTest, PutThenPinRoundTripsContent) {
  auto engine = MakeEngine(64 * 4096, 4);
  BufferPool& pool = engine->pool();
  const auto blocks = engine->AllocateBlocks(8);
  for (int64_t b : blocks) {
    const std::string content = BlockContent(b, pool.block_bytes());
    ASSERT_TRUE(pool.Put(b, content.data(), content.size()).ok());
  }
  for (int64_t b : blocks) {
    auto pin = pool.Pin(b);
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
    const std::string expect = BlockContent(b, pool.block_bytes());
    EXPECT_EQ(0, std::memcmp(pin->data(), expect.data(), pin->size()));
  }
}

TEST(BufferPoolTest, ShortPutIsZeroPaddedToBlockSize) {
  auto engine = MakeEngine(16 * 4096, 1);
  BufferPool& pool = engine->pool();
  const auto blocks = engine->AllocateBlocks(1);
  const std::string content = BlockContent(blocks[0], 100);
  ASSERT_TRUE(pool.Put(blocks[0], content.data(), content.size()).ok());
  auto pin = pool.Pin(blocks[0]);
  ASSERT_TRUE(pin.ok());
  ASSERT_EQ(pin->size(), pool.block_bytes());
  EXPECT_EQ(0, std::memcmp(pin->data(), content.data(), content.size()));
  for (size_t i = content.size(); i < pin->size(); ++i) {
    EXPECT_EQ(pin->data()[i], '\0') << "byte " << i;
  }
}

TEST(BufferPoolTest, DirtyFramesWriteBackThroughEviction) {
  // Budget of 4 frames, 32 dirty blocks: most must be evicted (with
  // write-back) before they are read again.
  auto engine = MakeEngine(4 * 4096, 1);
  BufferPool& pool = engine->pool();
  const auto blocks = engine->AllocateBlocks(32);
  for (int64_t b : blocks) {
    const std::string content = BlockContent(b, pool.block_bytes());
    ASSERT_TRUE(pool.Put(b, content.data(), content.size()).ok());
  }
  EXPECT_GT(pool.stats().evictions, 0);
  EXPECT_GT(pool.stats().writebacks, 0);
  for (int64_t b : blocks) {
    auto pin = pool.Pin(b);
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
    const std::string expect = BlockContent(b, pool.block_bytes());
    EXPECT_EQ(0, std::memcmp(pin->data(), expect.data(), pin->size()))
        << "block " << b;
  }
}

TEST(BufferPoolTest, PinnedFramesAreNotEvictableAndExhaustCleanly) {
  // Single shard, 2-frame budget: the third concurrent pin must fail
  // (everything else is pinned), and releasing a pin must make it succeed.
  auto engine = MakeEngine(2 * 4096, 1);
  BufferPool& pool = engine->pool();
  const auto blocks = engine->AllocateBlocks(3);
  for (int64_t b : blocks) {
    const std::string content = BlockContent(b, pool.block_bytes());
    ASSERT_TRUE(pool.Put(b, content.data(), content.size()).ok());
  }
  auto pin0 = pool.Pin(blocks[0]);
  ASSERT_TRUE(pin0.ok());
  auto pin1 = pool.Pin(blocks[1]);
  ASSERT_TRUE(pin1.ok());
  auto pin2 = pool.Pin(blocks[2]);
  ASSERT_FALSE(pin2.ok());
  EXPECT_EQ(pin2.status().code(), StatusCode::kResourceExhausted)
      << pin2.status().ToString();
  // Re-pinning an already-pinned block is a hit, not a new frame.
  auto again = pool.Pin(blocks[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().pinned, 2);
  // Dropping one pin frees a frame for the blocked block.
  *pin1 = PinnedBlock();
  auto now_ok = pool.Pin(blocks[2]);
  ASSERT_TRUE(now_ok.ok()) << now_ok.status().ToString();
  const std::string expect = BlockContent(blocks[2], pool.block_bytes());
  EXPECT_EQ(0, std::memcmp(now_ok->data(), expect.data(), now_ok->size()));
}

TEST(BufferPoolTest, BudgetIsNeverExceeded) {
  const size_t budget = 8 * 4096;
  auto engine = MakeEngine(budget, 4);
  BufferPool& pool = engine->pool();
  const auto blocks = engine->AllocateBlocks(64);
  for (int64_t b : blocks) {
    const std::string content = BlockContent(b, pool.block_bytes());
    ASSERT_TRUE(pool.Put(b, content.data(), content.size()).ok());
    EXPECT_LE(pool.stats().frame_bytes, static_cast<int64_t>(budget));
  }
  for (int64_t b : blocks) {
    auto pin = pool.Pin(b);
    ASSERT_TRUE(pin.ok());
    EXPECT_LE(pool.stats().frame_bytes, static_cast<int64_t>(budget));
  }
}

TEST(BufferPoolTest, ConcurrentPinUnpinEvictIsSafeAndBudgeted) {
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  constexpr int64_t kBlocks = 48;
  const size_t budget = 12 * 4096;  // far fewer frames than blocks
  auto engine = MakeEngine(budget, 4);
  BufferPool& pool = engine->pool();
  const auto blocks = engine->AllocateBlocks(kBlocks);
  for (int64_t b : blocks) {
    const std::string content = BlockContent(b, pool.block_bytes());
    ASSERT_TRUE(pool.Put(b, content.data(), content.size()).ok());
  }

  std::atomic<int> corrupt{0};
  std::atomic<int> failures{0};
  std::atomic<int64_t> over_budget{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kIters; ++i) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const int64_t b = blocks[static_cast<size_t>(
            (rng >> 33) % static_cast<uint64_t>(kBlocks))];
        auto pin = pool.Pin(b);
        if (!pin.ok()) {
          // Transient exhaustion (every frame of the shard pinned by peers)
          // is legal; it must be the documented error and must not corrupt.
          if (pin.status().code() != StatusCode::kResourceExhausted) {
            failures.fetch_add(1);
          }
          continue;
        }
        const std::string expect = BlockContent(b, pool.block_bytes());
        if (std::memcmp(pin->data(), expect.data(), pin->size()) != 0) {
          corrupt.fetch_add(1);
        }
        if (pool.stats().frame_bytes > static_cast<int64_t>(budget)) {
          over_budget.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(over_budget.load(), 0);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.pinned, 0);
  EXPECT_GT(stats.hits + stats.misses, 0);
  EXPECT_LE(stats.frame_bytes, static_cast<int64_t>(budget));
}

TEST(BufferPoolTest, DiscardDropsFramesWithoutWriteBack) {
  auto engine = MakeEngine(16 * 4096, 2);
  BufferPool& pool = engine->pool();
  const auto blocks = engine->AllocateBlocks(4);
  for (int64_t b : blocks) {
    const std::string content = BlockContent(b, pool.block_bytes());
    ASSERT_TRUE(pool.Put(b, content.data(), content.size()).ok());
  }
  const int64_t wb_before = pool.stats().writebacks;
  engine->FreeBlocks(blocks);  // discards cached frames, returns ids
  EXPECT_EQ(pool.stats().writebacks, wb_before);
  EXPECT_EQ(pool.stats().dirty, 0);
}

}  // namespace
}  // namespace dl2sql::db::storage
