/// \file vector_kernels_test.cc
/// \brief Unit coverage for the batch-at-a-time kernels: selection-vector
/// refinement and set algebra, sel-compressed arithmetic (including the
/// modulo-by-zero error and div-by-zero -> inf semantics), canonical key
/// hashing/equality against row_key.h's byte encoding, string comparison
/// kernels, typed aggregate accumulation, and the empty-morsel /
/// sel-shrinks-to-zero edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "db/column.h"
#include "db/exec/row_key.h"
#include "db/exec/vector_batch.h"
#include "db/exec/vector_filter.h"
#include "db/exec/vector_kernels.h"
#include "db/expr.h"
#include "db/table.h"

namespace dl2sql::db::vec {
namespace {

std::vector<SelIndex> Identity(SelIndex n) {
  std::vector<SelIndex> sel(static_cast<size_t>(n));
  for (SelIndex i = 0; i < n; ++i) sel[i] = i;
  return sel;
}

std::vector<SelIndex> Survivors(const SelIndex* out, SelIndex count) {
  return std::vector<SelIndex>(out, out + count);
}

TEST(VectorRefineTest, DenseIntVsImmediateComparisons) {
  const std::vector<int64_t> vals = {5, -1, 7, 3, 7, 0};
  const NumOperand a = NumOperand::DenseInt(vals.data());
  const NumOperand b = NumOperand::ImmInt(3);
  const std::vector<SelIndex> sel = Identity(6);
  std::vector<SelIndex> out(6);

  SelIndex n = RefineCompareNum(BinaryOp::kLt, a, b, sel.data(), 6, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{1, 5}));
  n = RefineCompareNum(BinaryOp::kGe, a, b, sel.data(), 6, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{0, 2, 3, 4}));
  n = RefineCompareNum(BinaryOp::kEq, a, b, sel.data(), 6, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{3}));
  n = RefineCompareNum(BinaryOp::kNe, a, b, sel.data(), 6, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{0, 1, 2, 4, 5}));
}

TEST(VectorRefineTest, MixedIntFloatCanonicalizesThroughDouble) {
  // 3 == 3.0 and 2 < 2.5 must hold exactly like the row path's FastBinary.
  const std::vector<int64_t> ints = {3, 2, 4};
  const std::vector<double> floats = {3.0, 2.5, 3.5};
  const NumOperand a = NumOperand::DenseInt(ints.data());
  const NumOperand b = NumOperand::DenseFloat(floats.data());
  const std::vector<SelIndex> sel = Identity(3);
  std::vector<SelIndex> out(3);

  SelIndex n = RefineCompareNum(BinaryOp::kEq, a, b, sel.data(), 3, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{0}));
  n = RefineCompareNum(BinaryOp::kLt, a, b, sel.data(), 3, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{1}));
}

TEST(VectorRefineTest, NaNComparesFalseUnderEveryOperator) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> vals = {nan, 1.0};
  const NumOperand a = NumOperand::DenseFloat(vals.data());
  const NumOperand b = NumOperand::ImmFloat(1.0);
  const std::vector<SelIndex> sel = Identity(2);
  std::vector<SelIndex> out(2);
  for (BinaryOp op : {BinaryOp::kEq, BinaryOp::kLt, BinaryOp::kLe,
                      BinaryOp::kGt, BinaryOp::kGe}) {
    const SelIndex n =
        RefineCompareNum(op, a, b, sel.data(), 2, out.data());
    for (SelIndex k = 0; k < n; ++k) {
      EXPECT_NE(out[k], 0) << "NaN row must never survive";
    }
  }
  // != is true for NaN (NaN != x holds), matching double semantics.
  const SelIndex n =
      RefineCompareNum(BinaryOp::kNe, a, b, sel.data(), 2, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{0}));
}

TEST(VectorRefineTest, EmptySelectionStaysEmpty) {
  const std::vector<int64_t> vals = {1, 2, 3};
  const NumOperand a = NumOperand::DenseInt(vals.data());
  const NumOperand b = NumOperand::ImmInt(0);
  std::vector<SelIndex> out(3);
  EXPECT_EQ(RefineCompareNum(BinaryOp::kGt, a, b, nullptr, 0, out.data()), 0);
}

TEST(VectorRefineTest, StringComparisonsMatchStdCompare) {
  const std::vector<std::string> names = {"apple", "pear", "apple", "zz", ""};
  const std::string imm = "apple";
  StrOperand col;
  col.base = names.data();
  StrOperand lit;
  lit.imm = &imm;
  const std::vector<SelIndex> sel = Identity(5);
  std::vector<SelIndex> out(5);

  SelIndex n =
      RefineCompareStr(BinaryOp::kEq, col, lit, sel.data(), 5, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{0, 2}));
  n = RefineCompareStr(BinaryOp::kGt, col, lit, sel.data(), 5, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{1, 3}));
  n = RefineCompareStr(BinaryOp::kLt, col, lit, sel.data(), 5, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{4}));
}

TEST(VectorRefineTest, BoolColumnKeepsWantedRows) {
  const std::vector<uint8_t> bools = {1, 0, 1, 0};
  const std::vector<SelIndex> sel = Identity(4);
  std::vector<SelIndex> out(4);
  SelIndex n = RefineBool(bools.data(), true, sel.data(), 4, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{0, 2}));
  n = RefineBool(bools.data(), false, sel.data(), 4, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{1, 3}));
}

TEST(VectorSelAlgebraTest, UnionMergesAscendingWithoutDuplicates) {
  const std::vector<SelIndex> a = {0, 2, 5};
  const std::vector<SelIndex> b = {1, 2, 6};
  std::vector<SelIndex> out(6);
  const SelIndex n =
      SelUnion(a.data(), 3, b.data(), 3, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{0, 1, 2, 5, 6}));
  EXPECT_EQ(SelUnion(nullptr, 0, nullptr, 0, out.data()), 0);
  const SelIndex one = SelUnion(a.data(), 3, nullptr, 0, out.data());
  EXPECT_EQ(Survivors(out.data(), one), a);
}

TEST(VectorSelAlgebraTest, DifferenceRemovesSubset) {
  const std::vector<SelIndex> sel = {0, 1, 2, 3, 4};
  const std::vector<SelIndex> sub = {1, 3};
  std::vector<SelIndex> out(5);
  const SelIndex n =
      SelDifference(sel.data(), 5, sub.data(), 2, out.data());
  EXPECT_EQ(Survivors(out.data(), n), (std::vector<SelIndex>{0, 2, 4}));
  // NOT over everything -> empty; NOT over nothing -> identity.
  const SelIndex none =
      SelDifference(sel.data(), 5, sel.data(), 5, out.data());
  EXPECT_EQ(none, 0);
  const SelIndex all = SelDifference(sel.data(), 5, nullptr, 0, out.data());
  EXPECT_EQ(Survivors(out.data(), all), sel);
}

TEST(VectorArithTest, IntOpsAndModuloByZeroError) {
  const std::vector<int64_t> lhs = {10, 7, -3};
  const NumOperand a = NumOperand::DenseInt(lhs.data());
  const NumOperand b = NumOperand::ImmInt(3);
  const std::vector<SelIndex> sel = Identity(3);
  std::vector<int64_t> out(3);
  ASSERT_TRUE(ArithInt(BinaryOp::kMod, a, b, sel.data(), 3, out.data()).ok());
  EXPECT_EQ(out[0], 10 % 3);
  EXPECT_EQ(out[1], 7 % 3);
  EXPECT_EQ(out[2], -3 % 3);
  ASSERT_TRUE(ArithInt(BinaryOp::kMul, a, b, sel.data(), 3, out.data()).ok());
  EXPECT_EQ(out[0], 30);

  const NumOperand zero = NumOperand::ImmInt(0);
  const Status s = ArithInt(BinaryOp::kMod, a, zero, sel.data(), 3, out.data());
  EXPECT_FALSE(s.ok());

  // A zero divisor on an UNSELECTED slot must not error: only selected rows
  // are evaluated.
  const std::vector<int64_t> divs = {2, 0, 5};
  const NumOperand d = NumOperand::DenseInt(divs.data());
  const std::vector<SelIndex> skip_zero = {0, 2};
  ASSERT_TRUE(
      ArithInt(BinaryOp::kMod, a, d, skip_zero.data(), 2, out.data()).ok());
}

TEST(VectorArithTest, FloatDivByZeroIsInfAndModIsFmod) {
  const std::vector<double> lhs = {1.0, -2.0, 7.5};
  const NumOperand a = NumOperand::DenseFloat(lhs.data());
  const NumOperand b = NumOperand::ImmFloat(0.0);
  const std::vector<SelIndex> sel = Identity(3);
  std::vector<double> out(3);
  ASSERT_TRUE(ArithFloat(BinaryOp::kDiv, a, b, sel.data(), 3, out.data()).ok());
  EXPECT_TRUE(std::isinf(out[0]) && out[0] > 0);
  EXPECT_TRUE(std::isinf(out[1]) && out[1] < 0);

  const NumOperand two = NumOperand::ImmFloat(2.0);
  ASSERT_TRUE(
      ArithFloat(BinaryOp::kMod, a, two, sel.data(), 3, out.data()).ok());
  EXPECT_DOUBLE_EQ(out[2], std::fmod(7.5, 2.0));
}

/// Hash/equality kernels must agree with row_key.h's byte encoding: two rows
/// compare equal iff their EncodeRowKey strings are equal, and equal keys
/// hash equal (including the int64 <-> integral-float canonicalization).
TEST(VectorHashKeyTest, MatchesEncodeRowKeyAcrossTypes) {
  Column ints = Column::Ints({1, 2, 3, 1});
  Column floats = Column::Floats({1.0, 2.5, 3.0, 1.0});
  Column strs = Column::Strings({"a", "b", "a", "a"});
  Column with_null{DataType::kInt64};
  ASSERT_TRUE(with_null.Append(Value::Int(7)).ok());
  ASSERT_TRUE(with_null.Append(Value::Null()).ok());
  ASSERT_TRUE(with_null.Append(Value::Int(7)).ok());
  ASSERT_TRUE(with_null.Append(Value::Null()).ok());

  const std::vector<const Column*> a = {&ints, &strs};
  const std::vector<const Column*> b = {&floats, &strs};
  for (int64_t ra = 0; ra < 4; ++ra) {
    for (int64_t rb = 0; rb < 4; ++rb) {
      const bool want = EncodeRowKey(a, ra) == EncodeRowKey(b, rb);
      EXPECT_EQ(CanonicalKeyRowsEqual(a, ra, b, rb), want)
          << "rows " << ra << " vs " << rb;
      if (want) {
        EXPECT_EQ(HashKeyRow(a, ra), HashKeyRow(b, rb));
      }
    }
  }

  // Batched hashing agrees with the single-row variant.
  uint64_t batch[4];
  HashKeyRange(a, 0, 4, batch);
  for (int64_t r = 0; r < 4; ++r) EXPECT_EQ(batch[r], HashKeyRow(a, r));

  // NULL detection mirrors RowKeyHasNull.
  const std::vector<const Column*> nullable = {&ints, &with_null};
  uint8_t nulls[4];
  KeyNullRange(nullable, 0, 4, nulls);
  for (int64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(nulls[r] != 0, RowKeyHasNull(nullable, r)) << "row " << r;
  }
}

TEST(VectorHashKeyTest, EncodeColumnKeysRangeMatchesAppendKeyPart) {
  Column col{DataType::kFloat64};
  ASSERT_TRUE(col.Append(Value::Float(2.0)).ok());
  ASSERT_TRUE(col.Append(Value::Null()).ok());
  ASSERT_TRUE(col.Append(Value::Float(-0.5)).ok());
  std::vector<std::string> got;
  EncodeColumnKeysRange(col, 0, 3, &got);
  ASSERT_EQ(got.size(), 3u);
  for (int64_t r = 0; r < 3; ++r) {
    std::string want;
    if (col.IsValid(r)) AppendKeyPart(col, r, &want);
    EXPECT_EQ(got[static_cast<size_t>(r)], want) << "row " << r;
  }
  EXPECT_TRUE(got[1].empty()) << "NULL encodes as the empty (never-joining) key";
}

TEST(VectorAggTest, AccumulateAndMergeMatchScalarReference) {
  const std::vector<int64_t> vals = {5, 1, 9, 3};
  const std::vector<SelIndex> gids = {0, 1, 0, 1};
  std::vector<VAggState> st(2);
  AccumulateSumInt(vals.data(), gids.data(), 4, st.data());
  EXPECT_EQ(st[0].count, 2);
  EXPECT_DOUBLE_EQ(st[0].sum, 14.0);
  EXPECT_DOUBLE_EQ(st[0].sumsq, 25.0 + 81.0);
  EXPECT_EQ(st[1].count, 2);
  EXPECT_DOUBLE_EQ(st[1].sum, 4.0);

  std::vector<VAggState> mn(2), mx(2);
  AccumulateMinMaxInt(vals.data(), gids.data(), 4, /*want_min=*/true,
                      mn.data());
  AccumulateMinMaxInt(vals.data(), gids.data(), 4, /*want_min=*/false,
                      mx.data());
  EXPECT_EQ(mn[0].imin_max, 5);
  EXPECT_EQ(mx[0].imin_max, 9);
  EXPECT_EQ(mn[1].imin_max, 1);
  EXPECT_EQ(mx[1].imin_max, 3);

  const std::vector<uint8_t> flags = {1, 1, 0, 1};
  std::vector<VAggState> cb(2);
  AccumulateCountBool(flags.data(), gids.data(), 4, cb.data());
  EXPECT_EQ(cb[0].count, 1);  // row 2 is FALSE
  EXPECT_EQ(cb[1].count, 2);

  // Worker merge: fold the second half into the first as a second state set.
  std::vector<VAggState> w0(1), w1(1);
  const std::vector<SelIndex> zeros = {0, 0};
  AccumulateMinMaxInt(vals.data(), zeros.data(), 2, true, w0.data());
  AccumulateMinMaxInt(vals.data() + 2, zeros.data(), 2, true, w1.data());
  MergeVAggState(&w0[0], w1[0], /*want_min=*/true);
  EXPECT_EQ(w0[0].imin_max, 1);
  EXPECT_EQ(w0[0].count, 0);  // min/max kernels do not touch count

  // Empty morsel: every kernel is a no-op at n == 0.
  VAggState empty;
  AccumulateCount(nullptr, 0, &empty);
  AccumulateSumFloat(nullptr, nullptr, 0, &empty);
  EXPECT_EQ(empty.count, 0);
}

/// NULL-bearing and unsupported columns must force the row-path fallback:
/// the predicate compiler refuses them rather than silently mis-evaluating.
TEST(VectorFilterFallbackTest, NullBearingColumnsAreNotVectorizable) {
  TableSchema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  Table t{schema};
  ASSERT_TRUE(t.AppendRow({Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Int(3)}).ok());

  const ExprPtr nullable =
      Expr::Binary(BinaryOp::kGt, Expr::Col("a"), Expr::Lit(Value::Int(0)));
  EXPECT_FALSE(IsVectorizablePredicate(*nullable, t));
  const ExprPtr clean =
      Expr::Binary(BinaryOp::kGt, Expr::Col("b"), Expr::Lit(Value::Int(0)));
  EXPECT_TRUE(IsVectorizablePredicate(*clean, t));
  // An AND with one non-vectorizable leg falls back as a whole.
  const ExprPtr both = Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kGt, Expr::Col("b"), Expr::Lit(Value::Int(0))),
      Expr::Binary(BinaryOp::kGt, Expr::Col("a"), Expr::Lit(Value::Int(0))));
  EXPECT_FALSE(IsVectorizablePredicate(*both, t));
}

/// A conjunction whose first leg eliminates every row must still run the
/// remaining refinements over the empty selection without touching data.
TEST(VectorFilterFallbackTest, SelectionShrinksToZeroMidPipeline) {
  TableSchema schema({{"a", DataType::kInt64}});
  Table t{schema};
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i)}).ok());
  }
  const ExprPtr pred = Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kLt, Expr::Col("a"), Expr::Lit(Value::Int(-5))),
      Expr::Binary(BinaryOp::kEq,
                   Expr::Binary(BinaryOp::kMod, Expr::Col("a"),
                                Expr::Lit(Value::Int(7))),
                   Expr::Lit(Value::Int(1))));
  std::vector<int64_t> rows;
  auto done = TryVectorFilter(*pred, t, nullptr, &rows);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  ASSERT_TRUE(*done);
  EXPECT_TRUE(rows.empty());
}

}  // namespace
}  // namespace dl2sql::db::vec
