/// \file spill_exec_test.cc
/// \brief Bit-identity of the spilling executor paths (grace hash join,
/// external aggregation, windowed filter/project) against the in-memory
/// executor, across several pool/query-memory budgets.
///
/// All databases here run serially (no device pool), because the parallel
/// in-memory aggregation merges float state in worker order; the spill
/// contract is bit-identity with the SERIAL in-memory execution.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/mem_tracker.h"
#include "db/database.h"
#include "db/storage/storage_engine.h"

namespace dl2sql::db {
namespace {

constexpr int64_t kRows = 30000;
constexpr int64_t kDimRows = 96;

class ScopedTrackingEnabled {
 public:
  ScopedTrackingEnabled() : prior_(MemTracker::Enabled()) {
    MemTracker::SetEnabled(true);
  }
  ~ScopedTrackingEnabled() { MemTracker::SetEnabled(prior_); }
  bool active() const { return MemTracker::Enabled(); }

 private:
  const bool prior_;
};

#define REQUIRE_TRACKING(guard)                         \
  if (!(guard).active()) {                              \
    GTEST_SKIP() << "resource accounting compiled out"; \
  }

void FillTables(Database* db) {
  // ~2.8 MB fact table: big enough that a ~1 MB query budget refuses to
  // materialize it, small enough that the test stays fast.
  TableSchema fact_schema({{"id", DataType::kInt64},
                           {"grp", DataType::kInt64},
                           {"val", DataType::kFloat64},
                           {"payload", DataType::kString}});
  Table fact{fact_schema};
  const std::string payload(48, 'p');
  for (int64_t i = 0; i < kRows; ++i) {
    DL2SQL_CHECK(
        fact.AppendRow({Value::Int(i), Value::Int((i * 7919) % kDimRows),
                        Value::Float(static_cast<double>((i * 104729 + 13) %
                                                         100000) /
                                     7.0),
                        Value::String(payload)})
            .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("fact", std::move(fact)).ok());

  TableSchema dim_schema({{"id", DataType::kInt64}, {"w", DataType::kInt64}});
  Table dim{dim_schema};
  for (int64_t i = 0; i < kDimRows; ++i) {
    DL2SQL_CHECK(dim.AppendRow({Value::Int(i), Value::Int(i * i)}).ok());
  }
  DL2SQL_CHECK(db->RegisterTable("dim", std::move(dim)).ok());
}

// The join probe side must be the whole fact table (nothing pushable below
// the join), or the planner's pushed-down filter shrinks the input under the
// query budget and the in-memory join runs instead of the grace join.
const char* const kJoinSql =
    "SELECT F.id, F.grp, D.w FROM fact F INNER JOIN dim D ON F.grp = D.id";
// The residual references both sides, so it must survive as a join_condition
// applied after pair emission (slice-local in the grace path).
const char* const kJoinResidualSql =
    "SELECT F.id, D.w FROM fact F INNER JOIN dim D "
    "ON F.grp = D.id AND F.id % 7 < D.id";
const char* const kAggSql =
    "SELECT grp, count(*) AS c, sum(val) AS s, avg(val) AS a, "
    "min(val) AS lo, max(val) AS hi, stddev_samp(val) AS sd "
    "FROM fact GROUP BY grp";
const char* const kGlobalAggSql =
    "SELECT count(*) AS c, sum(val) AS s, avg(val) AS a FROM fact";
const char* const kFilterProjectSql =
    "SELECT id * 2 AS d, val + 1.0 AS v FROM fact WHERE grp < 7";

std::vector<std::string> RunAll(Database* db,
                                const std::vector<const char*>& queries) {
  std::vector<std::string> renders;
  for (const char* sql : queries) {
    auto r = db->Execute(sql);
    DL2SQL_CHECK(r.ok()) << sql << ": " << r.status().ToString();
    renders.push_back(r->ToString(r->num_rows()));
  }
  return renders;
}

/// Reference renders from a serial in-memory database.
std::vector<std::string> ReferenceRenders(
    const std::vector<const char*>& queries) {
  Database ref;
  DL2SQL_CHECK(ref.set_storage_mode(StorageMode::kInMemory).ok());
  FillTables(&ref);
  return RunAll(&ref, queries);
}

/// Largest spill_bytes recorded for `sql` in system.query_profiles.
int64_t SpillBytesFor(Database* db, const std::string& sql) {
  auto profiles = db->Execute(
      "SELECT sql, spill_bytes FROM system.query_profiles");
  DL2SQL_CHECK(profiles.ok()) << profiles.status().ToString();
  int64_t spill = -1;
  for (int64_t i = 0; i < profiles->num_rows(); ++i) {
    if (profiles->column(0).GetValue(i).string_value() != sql) continue;
    spill = std::max(spill, profiles->column(1).GetValue(i).int_value());
  }
  return spill;
}

struct PagedConfig {
  size_t pool_bytes;
  size_t block_bytes;
  int shards;
  int spill_partitions;
  int64_t query_mem_limit;
};

void ExpectBitIdentical(const PagedConfig& cfg) {
  const std::vector<const char*> queries = {kJoinSql, kJoinResidualSql,
                                            kAggSql, kGlobalAggSql,
                                            kFilterProjectSql};
  const std::vector<std::string> expected = ReferenceRenders(queries);

  Database db;
  storage::StorageOptions opts;
  opts.pool_bytes = cfg.pool_bytes;
  opts.block_bytes = cfg.block_bytes;
  opts.shards = cfg.shards;
  opts.spill_partitions = cfg.spill_partitions;
  opts.page_min_bytes = 4096;  // page everything non-trivial
  ASSERT_TRUE(db.set_storage_mode(StorageMode::kPaged, opts).ok());
  FillTables(&db);
  db.set_query_mem_limit(cfg.query_mem_limit);

  for (size_t q = 0; q < queries.size(); ++q) {
    auto r = db.Execute(queries[q]);
    ASSERT_TRUE(r.ok()) << queries[q] << ": " << r.status().ToString();
    EXPECT_EQ(r->ToString(r->num_rows()), expected[q]) << queries[q];
  }

  // The fact table (~2.8 MB) cannot be admitted under the query budget, so
  // the join and aggregation must have taken the spill paths.
  EXPECT_GT(SpillBytesFor(&db, kJoinSql), 0);
  EXPECT_GT(SpillBytesFor(&db, kAggSql), 0);
}

TEST(SpillExecTest, GraceJoinAndExternalAggMatchInMemory) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  // Comfortable pool, a query budget below the fact table's footprint.
  ExpectBitIdentical({/*pool_bytes=*/4u << 20, /*block_bytes=*/64 * 1024,
                      /*shards=*/4, /*spill_partitions=*/4,
                      /*query_mem_limit=*/1 << 20});
}

TEST(SpillExecTest, TinyPoolForcesAllPartitionsThroughDisk) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  // Pool far below the data size (floor: shards * block_bytes = 32 KB), so
  // every spill partition round-trips through the block file; more
  // partitions than the pool can hold frames for.
  ExpectBitIdentical({/*pool_bytes=*/64 * 1024, /*block_bytes=*/16 * 1024,
                      /*shards=*/2, /*spill_partitions=*/8,
                      /*query_mem_limit=*/1 << 20});
}

TEST(SpillExecTest, LargerBudgetStillSpillsIdentically) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  ExpectBitIdentical({/*pool_bytes=*/1u << 20, /*block_bytes=*/32 * 1024,
                      /*shards=*/4, /*spill_partitions=*/16,
                      /*query_mem_limit=*/2 << 20});
}

TEST(SpillExecTest, PagedModeWithoutPressureIsStillBitIdentical) {
  // No query memory limit: paged inputs are admitted (materialized) rather
  // than spilled, which must also reproduce the in-memory results exactly.
  const std::vector<const char*> queries = {kJoinSql, kAggSql,
                                            kFilterProjectSql};
  const std::vector<std::string> expected = ReferenceRenders(queries);
  Database db;
  storage::StorageOptions opts;
  opts.pool_bytes = 2u << 20;
  opts.page_min_bytes = 4096;
  ASSERT_TRUE(db.set_storage_mode(StorageMode::kPaged, opts).ok());
  FillTables(&db);
  const std::vector<std::string> got = RunAll(&db, queries);
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(got[q], expected[q]) << queries[q];
  }
}

TEST(SpillExecTest, OrderByOverBudgetReportsMissingSpillSort) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  Database db;
  storage::StorageOptions opts;
  opts.pool_bytes = 2u << 20;
  opts.page_min_bytes = 4096;
  ASSERT_TRUE(db.set_storage_mode(StorageMode::kPaged, opts).ok());
  FillTables(&db);
  db.set_query_mem_limit(1 << 20);
  auto r = db.Execute("SELECT id, payload FROM fact ORDER BY id DESC");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("spillable sort"), std::string::npos)
      << r.status().ToString();
}

TEST(SpillExecTest, DmlHealsAndRepagesTables) {
  Database db;
  storage::StorageOptions opts;
  opts.pool_bytes = 2u << 20;
  opts.page_min_bytes = 4096;
  ASSERT_TRUE(db.set_storage_mode(StorageMode::kPaged, opts).ok());
  FillTables(&db);
  ASSERT_TRUE(
      db.Execute("UPDATE fact SET val = val + 1.0 WHERE id % 2 = 0").ok());
  ASSERT_TRUE(db.Execute("DELETE FROM fact WHERE id % 3 = 0").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO fact VALUES (1000000, 5, 2.5, 'x')").ok());
  auto count = db.Execute("SELECT count(*) AS c FROM fact");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  // 30000 rows minus the 10000 multiples of 3, plus the inserted row.
  EXPECT_EQ(count->column(0).GetValue(0).int_value(), kRows - kRows / 3 + 1);

  // The same DML against an in-memory database yields the same table.
  Database ref;
  DL2SQL_CHECK(ref.set_storage_mode(StorageMode::kInMemory).ok());
  FillTables(&ref);
  ASSERT_TRUE(
      ref.Execute("UPDATE fact SET val = val + 1.0 WHERE id % 2 = 0").ok());
  ASSERT_TRUE(ref.Execute("DELETE FROM fact WHERE id % 3 = 0").ok());
  ASSERT_TRUE(
      ref.Execute("INSERT INTO fact VALUES (1000000, 5, 2.5, 'x')").ok());
  const char* const all = "SELECT * FROM fact WHERE id % 11 = 0";
  auto got = db.Execute(all);
  auto want = ref.Execute(all);
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(got->ToString(got->num_rows()), want->ToString(want->num_rows()));
}

}  // namespace
}  // namespace dl2sql::db
