/// \file persistence_test.cc
/// \brief Snapshot save/load round-trips (tables, views, blobs) and the SQL
/// printer's parse/print fixpoint.
#include <gtest/gtest.h>

#include <cstdio>

#include "db/persistence.h"
#include "db/sql/printer.h"

namespace dl2sql::db {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE items (id INT, name TEXT, price FLOAT, ok BOOL,
                          payload BLOB);
      INSERT INTO items VALUES
        (1, 'hammer', 9.5, TRUE, 'bin1'),
        (2, 'nail', 0.1, FALSE, 'bin2'),
        (3, 'saw', 19.0, TRUE, 'bin3');
      CREATE VIEW pricey AS SELECT id, name FROM items WHERE price > 5.0;
      CREATE TEMP TABLE scratch AS SELECT 1 AS x;
    )sql")
                    .ok());
  }
  Database db_;
};

TEST_F(PersistenceTest, SnapshotRoundTripsTablesAndViews) {
  auto bytes = SnapshotDatabase(db_);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  Database restored;
  ASSERT_TRUE(RestoreDatabase(*bytes, &restored).ok());

  auto rows = restored.Execute("SELECT id, name, price FROM items ORDER BY id");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->num_rows(), 3);
  EXPECT_EQ(rows->column(1).GetValue(2).string_value(), "saw");

  auto via_view = restored.Execute("SELECT count(*) FROM pricey");
  ASSERT_TRUE(via_view.ok()) << via_view.status().ToString();
  EXPECT_EQ(via_view->column(0).GetValue(0).int_value(), 2);

  // Temp tables are not persisted.
  EXPECT_FALSE(restored.catalog().HasTable("scratch"));
}

TEST_F(PersistenceTest, FileRoundTrip) {
  const std::string path = "/tmp/dl2sql_persistence_test.snap";
  ASSERT_TRUE(SaveDatabase(db_, path).ok());
  Database restored;
  ASSERT_TRUE(LoadDatabase(path, &restored).ok());
  EXPECT_TRUE(restored.catalog().HasTable("items"));
  EXPECT_TRUE(restored.catalog().HasView("pricey"));
  std::remove(path.c_str());
  EXPECT_FALSE(LoadDatabase("/nonexistent/dir/x.snap", &restored).ok());
}

TEST_F(PersistenceTest, CorruptSnapshotsRejected) {
  Database restored;
  EXPECT_FALSE(RestoreDatabase("", &restored).ok());
  EXPECT_FALSE(RestoreDatabase("LDBSNAP1", &restored).ok());
  auto bytes = SnapshotDatabase(db_);
  std::string corrupt = *bytes;
  corrupt.resize(corrupt.size() / 2);
  EXPECT_FALSE(RestoreDatabase(corrupt, &restored).ok());
}

TEST(SqlPrinterTest, ParsePrintFixpoint) {
  // Printing a parsed statement and re-parsing must yield the same print.
  const char* queries[] = {
      "SELECT a, b AS bee FROM t WHERE (a > 1) AND (b IN (1, 2))",
      "SELECT patternID, count(*) FROM fabric F, video V WHERE (F.transID = "
      "V.transID) GROUP BY patternID ORDER BY patternID LIMIT 5",
      "SELECT sum(x.v) FROM (SELECT v FROM t) x HAVING sum(x.v) > 0",
      "SELECT (SELECT max(a) FROM t2), exp(1.5) FROM t1 INNER JOIN t2 ON "
      "t1.id = t2.id",
      "SELECT greatest(0.0, Value) AS Value FROM fm WHERE NOT (Value = 'x''y')",
  };
  for (const char* q : queries) {
    auto s1 = sql::ParseStatement(q);
    ASSERT_TRUE(s1.ok()) << q;
    const std::string printed =
        sql::PrintSelect(*std::get<std::shared_ptr<SelectStmt>>(*s1));
    auto s2 = sql::ParseStatement(printed);
    ASSERT_TRUE(s2.ok()) << "re-parse failed: " << printed;
    EXPECT_EQ(printed,
              sql::PrintSelect(*std::get<std::shared_ptr<SelectStmt>>(*s2)))
        << q;
  }
}

TEST(SqlPrinterTest, QuotesEscaped) {
  auto e = sql::ParseExpression("'it''s'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(sql::PrintExpr(**e), "'it''s'");
}

}  // namespace
}  // namespace dl2sql::db
