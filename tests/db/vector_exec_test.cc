/// \file vector_exec_test.cc
/// \brief Vectorized-vs-row bit-identity: every query in the relational mix
/// (filters with arithmetic and boolean algebra, string predicates, hash
/// joins including cross-type keys, hash aggregation over int/float/string
/// grouping keys) must render byte-identically with DL2SQL_VECTOR on and
/// off, including the paper's fig8-style Type1-4 queries end to end through
/// an engine. Also covers the observability surface (ExplainAnalyze
/// `batches=`/`sel_density=`, system.queries vector_batches) and the
/// DL2SQL_VECTOR environment gate.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "accel/device.h"
#include "common/logging.h"
#include "db/database.h"
#include "workload/testbed.h"

namespace dl2sql::db {
namespace {

constexpr int64_t kRows = 20000;
constexpr int64_t kDimRows = 64;
constexpr int64_t kSmallMorsel = 512;  // force many batches per query

std::shared_ptr<Device> MakeCpuDevice(int threads) {
  DeviceProfile profile = Device::ServerCpuProfile();
  profile.name = "vec-test-cpu-" + std::to_string(threads);
  profile.num_threads = threads;
  return std::make_shared<Device>(profile);
}

void FillTables(Database* db) {
  TableSchema fact_schema({{"id", DataType::kInt64},
                           {"grp", DataType::kInt64},
                           {"grp2", DataType::kInt64},
                           {"val", DataType::kInt64},
                           {"fval", DataType::kFloat64},
                           {"flag", DataType::kBool},
                           {"name", DataType::kString},
                           {"nv", DataType::kInt64}});
  Table fact{fact_schema};
  for (int64_t i = 0; i < kRows; ++i) {
    const int64_t grp = (i * 7919) % kDimRows;
    const int64_t val = (i * 104729 + 13) % 1000;
    // nv carries NULLs so predicates over it exercise the row-path fallback.
    const Value nv = i % 5 == 0 ? Value::Null() : Value::Int(val % 17);
    DL2SQL_CHECK(fact.AppendRow({Value::Int(i), Value::Int(grp),
                                 Value::Int(grp % 7),
                                 Value::Int(val),
                                 Value::Float(val * 0.25 - 100.0),
                                 Value::Bool(i % 3 == 0),
                                 Value::String("n" + std::to_string(grp)), nv})
                     .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("fact", std::move(fact)).ok());

  TableSchema dim_schema(
      {{"id", DataType::kInt64}, {"label", DataType::kString}});
  Table dim{dim_schema};
  for (int64_t i = 0; i < kDimRows; ++i) {
    DL2SQL_CHECK(
        dim.AppendRow({Value::Int(i), Value::String("g" + std::to_string(i))})
            .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("dim", std::move(dim)).ok());

  // A float-keyed dimension whose keys are integral floats: the canonical
  // key encoding must let them join int64 keys.
  TableSchema fdim_schema(
      {{"fid", DataType::kFloat64}, {"w", DataType::kInt64}});
  Table fdim{fdim_schema};
  for (int64_t i = 0; i < kDimRows; ++i) {
    DL2SQL_CHECK(fdim.AppendRow({Value::Float(static_cast<double>(i)),
                                 Value::Int(i * i)})
                     .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("fdim", std::move(fdim)).ok());

  TableSchema empty_schema({{"x", DataType::kInt64}});
  DL2SQL_CHECK(db->RegisterTable("etab", Table{empty_schema}).ok());
}

// The relational mix: every vectorized code path plus every documented
// fallback, with no ORDER BY so output order itself is under test.
const char* const kQueries[] = {
    // Arithmetic + AND/OR/NOT numeric filters (fully vectorized).
    "SELECT id, val FROM fact WHERE val % 7 = 3 AND (val * 3 + id) % 11 < 4",
    "SELECT id FROM fact WHERE val < 100 OR val >= 900",
    "SELECT id FROM fact WHERE NOT (val % 2 = 0) AND id > 50",
    // Float and cross-type comparisons; division semantics.
    "SELECT id, fval FROM fact WHERE fval > 120.5 AND fval / 2.0 < 70.0",
    "SELECT id FROM fact WHERE fval = 25 AND id % 3 = 0",
    // Boolean column and string predicates.
    "SELECT id FROM fact WHERE flag AND val > 500",
    "SELECT id, grp FROM fact WHERE name = 'n13'",
    "SELECT id FROM fact WHERE name > 'n50' AND name < 'n55'",
    // NULL-bearing column: whole predicate falls back to the row path.
    "SELECT id FROM fact WHERE nv = 3",
    "SELECT id FROM fact WHERE nv = 3 AND val > 100",
    // Selection shrinking to zero.
    "SELECT id FROM fact WHERE val < -1 AND val % 7 = 3",
    // Hash joins: int keys, and int64 joining integral float64 keys.
    "SELECT F.id, D.label FROM fact F INNER JOIN dim D ON F.grp = D.id "
    "WHERE F.val % 3 = 1",
    "SELECT F.id, X.w FROM fact F INNER JOIN fdim X ON F.grp = X.fid "
    "WHERE F.val % 5 = 2",
    // Hash aggregation: single int key, two int keys, string (hashed) key,
    // global aggregate, and every aggregate function incl. float inputs.
    "SELECT grp, count(*) AS c, sum(val) AS s, min(val) AS mn, max(val) AS mx "
    "FROM fact GROUP BY grp",
    "SELECT grp, grp2, count(*) AS c, sum(val) AS s FROM fact "
    "GROUP BY grp, grp2",
    "SELECT name, count(*) AS c, avg(val) AS a FROM fact GROUP BY name",
    "SELECT count(*) AS c, sum(val) AS s, avg(val) AS a, min(fval) AS mn, "
    "max(fval) AS mx, stddev_samp(val) AS sd FROM fact",
    "SELECT grp, sum(fval) AS fs, stddev_samp(fval) AS fsd FROM fact "
    "WHERE val % 2 = 0 GROUP BY grp",
    // Aggregates over NULL-bearing input fall back; empty input emits the
    // row path's single global-aggregate row.
    "SELECT grp, sum(nv) AS s, count(nv) AS c FROM fact GROUP BY grp",
    "SELECT count(*) AS c, sum(x) AS s FROM etab",
};

/// Renders every result row; byte-compared across configurations.
std::vector<std::string> RunWorkload(Database* db) {
  std::vector<std::string> renders;
  for (const char* sql : kQueries) {
    auto r = db->Execute(sql);
    DL2SQL_CHECK(r.ok()) << sql << ": " << r.status().ToString();
    renders.push_back(r->ToString(r->num_rows()));
  }
  return renders;
}

TEST(VectorExecTest, SerialRendersAreByteIdenticalOffVsOn) {
  Database off;
  off.set_vectorized(false);
  FillTables(&off);
  ASSERT_FALSE(off.vectorized());
  const std::vector<std::string> row_renders = RunWorkload(&off);

  Database on;
  on.set_vectorized(true);
  FillTables(&on);
  const std::vector<std::string> vec_renders = RunWorkload(&on);

  ASSERT_EQ(row_renders.size(), vec_renders.size());
  for (size_t q = 0; q < row_renders.size(); ++q) {
    EXPECT_EQ(row_renders[q], vec_renders[q]) << kQueries[q];
  }
  // Sanity: the mix is non-trivial.
  for (size_t q = 0; q < row_renders.size(); ++q) {
    EXPECT_FALSE(row_renders[q].empty());
  }
}

TEST(VectorExecTest, SmallMorselsWithPooledDeviceStayByteIdentical) {
  // A 1-thread pool with tiny morsels drives every batch boundary and the
  // pool-inline execution path; results must not change.
  auto device = MakeCpuDevice(1);

  Database off;
  off.set_vectorized(false);
  FillTables(&off);
  off.set_exec_options({device.get(), kSmallMorsel});
  const std::vector<std::string> row_renders = RunWorkload(&off);

  Database on;
  on.set_vectorized(true);  // explicit: survives a DL2SQL_VECTOR=OFF CI leg
  FillTables(&on);
  on.set_exec_options({device.get(), kSmallMorsel});
  const std::vector<std::string> vec_renders = RunWorkload(&on);

  ASSERT_EQ(row_renders.size(), vec_renders.size());
  for (size_t q = 0; q < row_renders.size(); ++q) {
    EXPECT_EQ(row_renders[q], vec_renders[q]) << kQueries[q];
  }
}

TEST(VectorExecTest, ParallelExactQueriesMatchRowPathAtEightThreads) {
  // Row sets (filters, joins) and integer aggregates are exact in double, so
  // they must match the row path even under multi-threaded execution, where
  // float accumulation order is worker-dependent in both paths.
  const std::vector<size_t> exact = {0, 1, 2, 5, 6, 7, 11, 12, 13, 14};
  auto device = MakeCpuDevice(8);

  Database off;
  off.set_vectorized(false);
  FillTables(&off);
  off.set_exec_options({device.get(), kSmallMorsel});

  Database on;
  on.set_vectorized(true);
  FillTables(&on);
  on.set_exec_options({device.get(), kSmallMorsel});

  for (size_t q : exact) {
    auto a = off.Execute(kQueries[q]);
    auto b = on.Execute(kQueries[q]);
    ASSERT_TRUE(a.ok()) << kQueries[q] << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << kQueries[q] << ": " << b.status().ToString();
    EXPECT_EQ(a->ToString(a->num_rows()), b->ToString(b->num_rows()))
        << kQueries[q];
  }
}

/// The paper's fig8-style Type1-4 queries end to end through the DL2SQL
/// engine (1-thread edge CPU => fully deterministic): toggling the
/// DL2SQL_VECTOR environment gate must not change a byte of any result.
TEST(VectorExecTest, Fig8MixQueriesAreByteIdenticalAcrossEngineRebuilds) {
  workload::TestbedOptions options;
  options.dataset.video_rows = 200;
  options.dataset.keyframe_size = 8;
  options.dataset.seed = 42;
  options.model_base_channels = 2;
  options.histogram_samples = 16;

  workload::QueryParams p;
  p.selectivity = 0.05;
  const std::vector<std::string> sqls = {
      workload::MakeType1Query(p), workload::MakeType2Query(p),
      workload::MakeType3Query(p), workload::MakeType4Query(p)};

  auto run_mix = [&](const char* gate) -> std::vector<std::string> {
    if (gate != nullptr) {
      ::setenv("DL2SQL_VECTOR", gate, 1);
    } else {
      ::unsetenv("DL2SQL_VECTOR");
    }
    auto tb = workload::Testbed::Create(options);
    ::unsetenv("DL2SQL_VECTOR");
    DL2SQL_CHECK(tb.ok()) << tb.status().ToString();
    std::vector<std::string> renders;
    for (const std::string& sql : sqls) {
      engines::QueryCost cost;
      auto r = (*tb)->dl2sql()->ExecuteCollaborative(sql, &cost);
      DL2SQL_CHECK(r.ok()) << sql << ": " << r.status().ToString();
      renders.push_back(r->ToString(r->num_rows()));
    }
    return renders;
  };

  const std::vector<std::string> vec_on = run_mix(nullptr);
  const std::vector<std::string> vec_off = run_mix("OFF");
  ASSERT_EQ(vec_on.size(), vec_off.size());
  for (size_t q = 0; q < vec_on.size(); ++q) {
    EXPECT_EQ(vec_on[q], vec_off[q]) << sqls[q];
  }
}

TEST(VectorExecTest, ExplainAnalyzeReportsBatchesAndSelDensity) {
  Database db;
  db.set_vectorized(true);
  FillTables(&db);
  auto text = db.ExplainAnalyze(
      "SELECT grp, count(*) AS c FROM fact WHERE val % 7 = 3 GROUP BY grp");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("batches="), std::string::npos) << *text;
  EXPECT_NE(text->find("sel_density="), std::string::npos) << *text;

  Database off;
  off.set_vectorized(false);
  FillTables(&off);
  auto row_text = off.ExplainAnalyze(
      "SELECT grp, count(*) AS c FROM fact WHERE val % 7 = 3 GROUP BY grp");
  ASSERT_TRUE(row_text.ok()) << row_text.status().ToString();
  EXPECT_EQ(row_text->find("batches="), std::string::npos) << *row_text;
}

TEST(VectorExecTest, SystemQueriesRecordsVectorBatches) {
  Database db;
  db.set_vectorized(true);
  FillTables(&db);
  ASSERT_TRUE(
      db.Execute("SELECT id FROM fact WHERE val % 7 = 3 AND id > 10").ok());
  auto log = db.Execute(
      "SELECT sql, vector_batches FROM system.queries "
      "WHERE vector_batches > 0");
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_GT(log->num_rows(), 0)
      << "vectorized statement missing from system.queries";

  Database off;
  off.set_vectorized(false);
  FillTables(&off);
  ASSERT_TRUE(
      off.Execute("SELECT id FROM fact WHERE val % 7 = 3 AND id > 10").ok());
  auto none = off.Execute(
      "SELECT sql FROM system.queries WHERE vector_batches > 0");
  ASSERT_TRUE(none.ok()) << none.status().ToString();
  EXPECT_EQ(none->num_rows(), 0);
}

TEST(VectorExecTest, EnvironmentGateDisablesVectorizedExecution) {
  ::setenv("DL2SQL_VECTOR", "OFF", 1);
  Database off;
  EXPECT_FALSE(off.vectorized());
  ::setenv("DL2SQL_VECTOR", "0", 1);
  Database zero;
  EXPECT_FALSE(zero.vectorized());
  ::unsetenv("DL2SQL_VECTOR");
  Database on;
  EXPECT_TRUE(on.vectorized());
}

}  // namespace
}  // namespace dl2sql::db
