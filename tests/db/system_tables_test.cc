/// \file system_tables_test.cc
/// \brief The system.* introspection tables: live data through the normal SQL
/// path, read-only enforcement, query-log ring semantics, plan-cache
/// freshness, the slow-query log, and the env kill switches.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "db/database.h"
#include "db/query_log.h"

namespace dl2sql::db {
namespace {

constexpr int64_t kRows = 64;

void FillTables(Database* db) {
  TableSchema schema({{"id", DataType::kInt64}, {"val", DataType::kInt64}});
  Table t{schema};
  for (int64_t i = 0; i < kRows; ++i) {
    DL2SQL_CHECK(t.AppendRow({Value::Int(i), Value::Int(i % 97)}).ok());
  }
  DL2SQL_CHECK(db->RegisterTable("readings", std::move(t)).ok());

  NUdfInfo info;
  info.model_name = "affine";
  db->udfs().RegisterNeural(
      "nudf_affine", DataType::kFloat64,
      [](const std::vector<Value>& args) -> Result<Value> {
        DL2SQL_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        return Value::Float(x * 2.0 + 1.0);
      },
      info,
      [](const std::vector<std::vector<Value>>& rows)
          -> Result<std::vector<Value>> {
        std::vector<Value> out;
        out.reserve(rows.size());
        for (const auto& row : rows) {
          DL2SQL_ASSIGN_OR_RETURN(double x, row[0].AsDouble());
          out.push_back(Value::Float(x * 2.0 + 1.0));
        }
        return out;
      },
      /*arity=*/1, /*parallel_safe=*/true);
}

/// Row index whose string column `col` equals `needle`, or -1.
int64_t FindRow(const Table& t, int col, const std::string& needle) {
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    if (t.column(col).GetValue(i).string_value() == needle) return i;
  }
  return -1;
}

TEST(QueryLogTest, RingWrapsKeepingNewestRecords) {
  QueryLog log(4);
  EXPECT_EQ(log.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    QueryLogRecord r;
    r.sql = "q" + std::to_string(i);
    r.kind = QueryKind::kSelect;
    r.duration_us = 10 * i;
    log.Record(r);
  }
  const std::vector<QueryLogRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Ids are assigned from the writer sequence; the ring keeps the newest
  // capacity records, sorted oldest-first.
  EXPECT_EQ(snap.front().id, 6);
  EXPECT_EQ(snap.back().id, 9);
  EXPECT_EQ(snap.back().sql, "q9");
  EXPECT_EQ(snap.back().duration_us, 90);
  EXPECT_EQ(log.total_recorded(), 10u);
}

TEST(QueryLogTest, OverlongSqlIsTruncatedWithEllipsis) {
  QueryLog log(2);
  QueryLogRecord r;
  r.sql = std::string(QueryLog::kMaxSqlBytes + 100, 'x');
  r.kind = QueryKind::kSelect;
  log.Record(r);
  const std::vector<QueryLogRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].sql.size(), QueryLog::kMaxSqlBytes);
  EXPECT_EQ(snap[0].sql.substr(QueryLog::kMaxSqlBytes - 3), "...");
}

TEST(SystemTablesTest, MetricsTableReturnsLiveValuesThroughSql) {
  Database db;
  MetricsRegistry::Global().counter("test.sys.live")->Increment(42);
  auto result = db.Execute("SELECT name, value FROM system.metrics");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->num_rows(), 0);
  const int64_t row = FindRow(*result, 0, "test.sys.live");
  ASSERT_GE(row, 0) << "counter missing from system.metrics";
  EXPECT_EQ(result->column(1).GetValue(row).float_value(), 42.0);

  // The scan is live, not a snapshot taken at registration time.
  MetricsRegistry::Global().counter("test.sys.live")->Increment(8);
  result = db.Execute(
      "SELECT value FROM system.metrics WHERE name = 'test.sys.live'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 1);
  EXPECT_EQ(result->column(0).GetValue(0).float_value(), 50.0);
}

TEST(SystemTablesTest, QueriesTableRecordsFinishedStatements) {
  Database db;
  FillTables(&db);
  const std::string nudf_sql =
      "SELECT id, nudf_affine(val) AS p FROM readings";
  ASSERT_TRUE(db.Execute(nudf_sql).ok());
  ASSERT_FALSE(db.Execute("SELECT nope FROM readings").ok());

  // The acceptance query: top-5 slowest statements via the normal SQL path.
  auto top = db.Execute(
      "SELECT sql, duration_ms, neural_calls FROM system.queries "
      "ORDER BY duration_ms DESC LIMIT 5");
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_GT(top->num_rows(), 0);
  ASSERT_LE(top->num_rows(), 5);

  auto all = db.Execute(
      "SELECT sql, kind, error, rows, neural_calls, operator_rows, "
      "peak_operator_bytes FROM system.queries");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  const int64_t nudf_row = FindRow(*all, 0, nudf_sql);
  ASSERT_GE(nudf_row, 0) << "nUDF statement missing from system.queries";
  EXPECT_EQ(all->column(1).GetValue(nudf_row).string_value(), "select");
  EXPECT_EQ(all->column(2).GetValue(nudf_row).string_value(), "");
  EXPECT_EQ(all->column(3).GetValue(nudf_row).int_value(), kRows);
  // Every reading went through the nUDF exactly once.
  EXPECT_EQ(all->column(4).GetValue(nudf_row).int_value(), kRows);
  // Per-operator accounting: the scan+project pipeline produced rows and
  // held materialized output.
  EXPECT_GT(all->column(5).GetValue(nudf_row).int_value(), 0);
  EXPECT_GT(all->column(6).GetValue(nudf_row).int_value(), 0);

  // Failed statements are recorded too, with their error status.
  const int64_t err_row = FindRow(*all, 0, "SELECT nope FROM readings");
  ASSERT_GE(err_row, 0);
  EXPECT_NE(all->column(2).GetValue(err_row).string_value(), "");
}

TEST(SystemTablesTest, AliasedAndQualifiedScansBind) {
  Database db;
  ASSERT_TRUE(db.Execute("SELECT count(*) FROM system.metrics").ok());
  auto aliased = db.Execute("SELECT q.sql FROM system.queries q LIMIT 1");
  ASSERT_TRUE(aliased.ok()) << aliased.status().ToString();
  auto spans = db.Execute("SELECT name, count FROM system.spans");
  ASSERT_TRUE(spans.ok()) << spans.status().ToString();
  auto caches = db.Execute("SELECT name, hits, misses FROM system.caches");
  ASSERT_TRUE(caches.ok()) << caches.status().ToString();
}

TEST(SystemTablesTest, TablesTableListsBaseAndVirtualRelations) {
  Database db;
  FillTables(&db);
  auto result = db.Execute("SELECT name, kind, rows FROM system.tables");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const int64_t base = FindRow(*result, 0, "readings");
  ASSERT_GE(base, 0);
  EXPECT_EQ(result->column(1).GetValue(base).string_value(), "table");
  EXPECT_EQ(result->column(2).GetValue(base).int_value(), kRows);
  const int64_t virt = FindRow(*result, 0, "system.queries");
  ASSERT_GE(virt, 0);
  EXPECT_EQ(result->column(1).GetValue(virt).string_value(), "virtual");
}

TEST(SystemTablesTest, SystemTablesAreReadOnly) {
  Database db;
  FillTables(&db);
  EXPECT_FALSE(db.Execute("INSERT INTO system.metrics VALUES ('x','y',1.0)")
                   .ok());
  EXPECT_FALSE(db.Execute("UPDATE system.queries SET rows = 0").ok());
  EXPECT_FALSE(db.Execute("DELETE FROM system.queries").ok());
  EXPECT_FALSE(db.Execute("DROP TABLE system.metrics").ok());
  // The whole schema name is reserved, registered table or not.
  EXPECT_FALSE(
      db.Execute("CREATE TABLE system.mine (id INT64)").ok());
}

TEST(SystemTablesTest, PlanCacheServesFreshSnapshots) {
  Database db;
  const std::string count_sql = "SELECT count(*) FROM system.queries";
  auto first = db.Execute(count_sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const int64_t count1 = first->column(0).GetValue(0).int_value();
  // The identical statement replans or hits the prepared-plan cache; either
  // way it must see the first scan's own record (scan-time materialization,
  // never a cached snapshot).
  auto second = db.Execute(count_sql);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  const int64_t count2 = second->column(0).GetValue(0).int_value();
  EXPECT_EQ(count2, count1 + 1);
}

TEST(SystemTablesTest, SlowQueryThresholdEmitsWarnWithPlan) {
  Database db;
  FillTables(&db);
  db.set_slow_query_ms(0.0001);  // everything is slow now
  EXPECT_EQ(db.slow_query_ms(), 0.0001);
  ::testing::internal::CaptureStderr();
  ASSERT_TRUE(db.Execute("SELECT count(*) FROM readings").ok());
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("slow query"), std::string::npos) << err;
  EXPECT_NE(err.find("plan:"), std::string::npos) << err;
  EXPECT_NE(err.find("SELECT count(*) FROM readings"), std::string::npos)
      << err;

  // Raising the threshold silences the log (recording continues).
  db.set_slow_query_ms(1e9);
  ::testing::internal::CaptureStderr();
  ASSERT_TRUE(db.Execute("SELECT count(*) FROM readings").ok());
  EXPECT_EQ(::testing::internal::GetCapturedStderr().find("slow query"),
            std::string::npos);
}

TEST(SystemTablesTest, ExplainAnalyzeReportsOperatorTotals) {
  Database db;
  FillTables(&db);
  auto text = db.ExplainAnalyze("SELECT id, nudf_affine(val) FROM readings");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("bytes="), std::string::npos) << *text;
  EXPECT_NE(text->find("Operators: rows="), std::string::npos) << *text;
  EXPECT_NE(text->find("Counters:"), std::string::npos) << *text;
}

TEST(SystemTablesTest, EnvKnobsControlCapacityAndKillSwitch) {
  ::setenv("DL2SQL_QUERY_LOG_CAPACITY", "4", 1);
  {
    Database db;
    ASSERT_NE(db.query_log(), nullptr);
    EXPECT_EQ(db.query_log()->capacity(), 4u);
  }
  ::unsetenv("DL2SQL_QUERY_LOG_CAPACITY");

  ::setenv("DL2SQL_INTROSPECTION", "OFF", 1);
  {
    Database db;
    EXPECT_FALSE(db.introspection_options().enabled);
    EXPECT_EQ(db.query_log(), nullptr);
    // No providers registered: the system schema does not resolve.
    EXPECT_FALSE(db.Execute("SELECT count(*) FROM system.metrics").ok());
  }
  ::unsetenv("DL2SQL_INTROSPECTION");
}

}  // namespace
}  // namespace dl2sql::db
