/// \file explain_counters_test.cc
/// \brief ExplainAnalyze observability: golden plan structure, parallel runs
/// matching serial row counts, sane per-node timings, the per-worker
/// parallelism breakdown, and the registry-counter footer.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/device.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "db/database.h"

namespace dl2sql::db {
namespace {

constexpr int64_t kRows = 20000;
constexpr int64_t kDimRows = 64;
constexpr int64_t kSmallMorsel = 512;  // force many morsels on kRows

std::shared_ptr<Device> MakeCpuDevice(int threads) {
  DeviceProfile profile = Device::ServerCpuProfile();
  profile.name = "explain-cpu-" + std::to_string(threads);
  profile.num_threads = threads;
  return std::make_shared<Device>(profile);
}

void FillTables(Database* db) {
  TableSchema fact_schema({{"id", DataType::kInt64},
                           {"grp", DataType::kInt64},
                           {"val", DataType::kInt64}});
  Table fact{fact_schema};
  for (int64_t i = 0; i < kRows; ++i) {
    DL2SQL_CHECK(fact.AppendRow({Value::Int(i),
                                 Value::Int((i * 7919) % kDimRows),
                                 Value::Int((i * 104729 + 13) % 1000)})
                     .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("fact", std::move(fact)).ok());

  TableSchema dim_schema(
      {{"id", DataType::kInt64}, {"label", DataType::kString}});
  Table dim{dim_schema};
  for (int64_t i = 0; i < kDimRows; ++i) {
    DL2SQL_CHECK(
        dim.AppendRow({Value::Int(i), Value::String("g" + std::to_string(i))})
            .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("dim", std::move(dim)).ok());

  NUdfInfo info;
  info.model_name = "affine";
  db->udfs().RegisterNeural(
      "nudf_affine", DataType::kFloat64,
      [](const std::vector<Value>& args) -> Result<Value> {
        DL2SQL_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        return Value::Float(x * 2.0 + 1.0);
      },
      info,
      [](const std::vector<std::vector<Value>>& rows)
          -> Result<std::vector<Value>> {
        std::vector<Value> out;
        out.reserve(rows.size());
        for (const auto& row : rows) {
          DL2SQL_ASSIGN_OR_RETURN(double x, row[0].AsDouble());
          out.push_back(Value::Float(x * 2.0 + 1.0));
        }
        return out;
      },
      /*arity=*/1, /*parallel_safe=*/true);
}

const char* const kJoinAggSql =
    "SELECT D.label, count(*) AS c FROM fact F INNER JOIN dim D "
    "ON F.grp = D.id WHERE F.val % 3 = 1 GROUP BY D.label";

/// Every "actual rows=N" value in plan-render order.
std::vector<int64_t> ActualRows(const std::string& text) {
  std::vector<int64_t> rows;
  const std::string key = "actual rows=";
  for (size_t pos = text.find(key); pos != std::string::npos;
       pos = text.find(key, pos + 1)) {
    rows.push_back(std::stoll(text.substr(pos + key.size())));
  }
  return rows;
}

/// Every "prefixX.XXXXs" float following `prefix` in plan-render order.
std::vector<double> TimingValues(const std::string& text,
                                 const std::string& prefix) {
  std::vector<double> values;
  for (size_t pos = text.find(prefix); pos != std::string::npos;
       pos = text.find(prefix, pos + 1)) {
    values.push_back(std::stod(text.substr(pos + prefix.size())));
  }
  return values;
}

TEST(ExplainCountersTest, ExplainRendersGoldenStructure) {
  Database db;
  FillTables(&db);
  auto text = db.Explain(kJoinAggSql);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // Plain EXPLAIN shows structure only — no actuals, no counters.
  EXPECT_NE(text->find("Aggregate"), std::string::npos) << *text;
  EXPECT_NE(text->find("Join"), std::string::npos) << *text;
  EXPECT_NE(text->find("Scan fact"), std::string::npos) << *text;
  EXPECT_NE(text->find("Scan dim"), std::string::npos) << *text;
  EXPECT_EQ(text->find("actual rows="), std::string::npos) << *text;
  EXPECT_EQ(text->find("Counters:"), std::string::npos) << *text;
}

TEST(ExplainCountersTest, ParallelAnalyzeMatchesSerialRowCounts) {
  Database db;
  FillTables(&db);

  auto serial = db.ExplainAnalyze(kJoinAggSql);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  auto device = MakeCpuDevice(4);
  db.set_exec_options({device.get(), kSmallMorsel});
  auto parallel = db.ExplainAnalyze(kJoinAggSql);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  // Identical plan → identical per-node actual row counts regardless of the
  // thread count (morsel-order result assembly is deterministic).
  const std::vector<int64_t> serial_rows = ActualRows(*serial);
  const std::vector<int64_t> parallel_rows = ActualRows(*parallel);
  ASSERT_FALSE(serial_rows.empty());
  EXPECT_EQ(serial_rows, parallel_rows) << *serial << "\n--\n" << *parallel;

  // Timings are per-node: as many totals as actuals, all non-negative, and
  // every node's total covers its self time.
  for (const std::string& text : {*serial, *parallel}) {
    const std::vector<double> totals = TimingValues(text, "total=");
    const std::vector<double> selfs = TimingValues(text, "self=");
    ASSERT_EQ(totals.size(), serial_rows.size()) << text;
    ASSERT_EQ(selfs.size(), totals.size()) << text;
    for (size_t i = 0; i < totals.size(); ++i) {
      EXPECT_GE(totals[i], 0.0) << text;
      EXPECT_GE(selfs[i], 0.0) << text;
      // Allow rounding slack: both fields print at 0.1ms resolution.
      EXPECT_GE(totals[i] + 5e-4, selfs[i]) << text;
    }
    // The root's total bounds every node's total.
    for (double t : totals) EXPECT_GE(totals[0] + 5e-4, t) << text;
  }
}

TEST(ExplainCountersTest, AnalyzeReportsPerWorkerBreakdown) {
  Database db;
  FillTables(&db);
  auto device = MakeCpuDevice(4);
  db.set_exec_options({device.get(), kSmallMorsel});
  // The batched nUDF keeps pool workers busy long enough to register
  // non-zero per-worker microsecond totals.
  auto text = db.ExplainAnalyze("SELECT id, nudf_affine(val) AS p FROM fact");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[workers:"), std::string::npos) << *text;
  EXPECT_NE(text->find("w0="), std::string::npos) << *text;
}

TEST(ExplainCountersTest, AnalyzeFooterReportsCounterDeltas) {
  Database db;
  FillTables(&db);
  auto device = MakeCpuDevice(4);
  db.set_exec_options({device.get(), kSmallMorsel});

  auto text = db.ExplainAnalyze("SELECT id, nudf_affine(val) AS p FROM fact");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("Counters:"), std::string::npos) << *text;
  // Every fact row went through the nUDF exactly once, and the scan+project
  // pipeline ran morsels on the pool.
  EXPECT_NE(text->find("nudf.invocations=" + std::to_string(kRows)),
            std::string::npos)
      << *text;
  EXPECT_NE(text->find("pool.morsels="), std::string::npos) << *text;

  // The footer shows per-query deltas, not absolute totals: a second
  // identical run reports the same invocation delta.
  auto again = db.ExplainAnalyze("SELECT id, nudf_affine(val) AS p FROM fact");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_NE(again->find("nudf.invocations=" + std::to_string(kRows)),
            std::string::npos)
      << *again;
}

}  // namespace
}  // namespace dl2sql::db
