/// \file query_profiles_race_test.cc
/// \brief The query-log seqlock under write pressure: 8 writer sessions
/// overflow a tiny DL2SQL_QUERY_LOG_CAPACITY ring (every Record overwrites a
/// live slot) while readers scan system.query_profiles concurrently. Readers
/// must never observe a torn row — ids stay unique and monotone, and every
/// field combination belongs to one record. CI reruns this binary under
/// ThreadSanitizer (the name matches the TSAN pin regex in scripts/ci.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/mem_tracker.h"
#include "db/database.h"
#include "db/query_log.h"
#include "server/session.h"

namespace dl2sql::db {
namespace {

constexpr int kWriters = 8;

/// Direct seqlock hammer: field combinations are arithmetically linked, so a
/// reader that mixes two records is caught even without TSAN.
TEST(QueryProfilesRaceTest, SeqlockNeverYieldsTornRecordsAcrossWrap) {
  QueryLog log(/*capacity=*/8);  // writers lap the ring constantly
  constexpr int kPerWriter = 4000;

  std::atomic<bool> done{false};
  std::atomic<int64_t> next_value{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, &next_value] {
      for (int i = 0; i < kPerWriter; ++i) {
        const int64_t v = next_value.fetch_add(1, std::memory_order_relaxed);
        QueryLogRecord r;
        r.sql = "q" + std::to_string(v);
        r.kind = QueryKind::kSelect;
        r.duration_us = v;
        r.cpu_us = 2 * v;
        r.mem_peak_bytes = 3 * v;
        r.mem_cumulative_bytes = 5 * v;
        log.Record(r);
      }
    });
  }

  std::thread reader([&log, &done] {
    while (!done.load(std::memory_order_acquire)) {
      int64_t prev_id = -1;
      for (const QueryLogRecord& r : log.Snapshot()) {
        // Unique, strictly monotone ids (writer-sequence order).
        EXPECT_GT(r.id, prev_id);
        prev_id = r.id;
        // A torn read would break the arithmetic links between fields.
        EXPECT_EQ(r.cpu_us, 2 * r.duration_us) << "torn record id " << r.id;
        EXPECT_EQ(r.mem_peak_bytes, 3 * r.duration_us)
            << "torn record id " << r.id;
        EXPECT_EQ(r.mem_cumulative_bytes, 5 * r.duration_us)
            << "torn record id " << r.id;
        EXPECT_EQ(r.sql, "q" + std::to_string(r.duration_us))
            << "torn record id " << r.id;
      }
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(log.total_recorded(), kWriters * kPerWriter);
  EXPECT_EQ(log.Snapshot().size(), 8u);
}

/// End to end through the serving layer: 8 concurrent SELECT sessions wrap
/// the ring while two more scan system.query_profiles through SQL.
TEST(QueryProfilesRaceTest, ConcurrentScansSurviveRingOverflow) {
  const bool prior = MemTracker::Enabled();
  MemTracker::SetEnabled(true);  // no-op when compiled out; either way safe
  ::setenv("DL2SQL_QUERY_LOG_CAPACITY", "8", 1);
  auto db = std::make_unique<Database>();
  ::unsetenv("DL2SQL_QUERY_LOG_CAPACITY");
  ASSERT_NE(db->query_log(), nullptr);
  ASSERT_EQ(db->query_log()->capacity(), 8u);

  TableSchema schema({{"id", DataType::kInt64}, {"val", DataType::kInt64}});
  Table t{schema};
  for (int64_t i = 0; i < 256; ++i) {
    DL2SQL_CHECK(t.AppendRow({Value::Int(i), Value::Int(i % 13)}).ok());
  }
  DL2SQL_CHECK(db->RegisterTable("t", std::move(t)).ok());

  server::ServiceOptions opts;
  opts.admission.max_concurrent = kWriters + 2;
  server::QueryService service(db.get(), opts);

  constexpr int kQueriesPerWriter = 60;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&service, w] {
      auto session = service.CreateSession();
      for (int i = 0; i < kQueriesPerWriter; ++i) {
        auto r = session->Execute(
            "SELECT sum(val) AS s FROM t WHERE id % " +
            std::to_string(2 + (w + i) % 7) + " = 0");
        EXPECT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&service, &done] {
      auto session = service.CreateSession();
      while (!done.load(std::memory_order_acquire)) {
        auto r = session->Execute(
            "SELECT id, duration_ms, cpu_ms, mem_peak_bytes "
            "FROM system.query_profiles");
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        int64_t prev = -1;
        for (int64_t i = 0; i < r->num_rows(); ++i) {
          const int64_t id = r->column(0).GetValue(i).int_value();
          EXPECT_GT(id, prev) << "ids not monotone";
          prev = id;
          EXPECT_GE(r->column(1).GetValue(i).float_value(), 0.0);
          EXPECT_GE(r->column(2).GetValue(i).float_value(), 0.0);
          EXPECT_GE(r->column(3).GetValue(i).int_value(), 0);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  done.store(true, std::memory_order_release);
  threads[kWriters].join();
  threads[kWriters + 1].join();

  // Every writer statement was recorded (readers add their own on top).
  EXPECT_GE(db->query_log()->total_recorded(),
            int64_t{kWriters} * kQueriesPerWriter);
  MemTracker::SetEnabled(prior);
}

}  // namespace
}  // namespace dl2sql::db
