/// \file optimizer_test.cc
/// \brief Optimizer rewrites and cost-model behaviour: predicate pushdown,
/// equi-key extraction, statistics-driven selectivity, build-side choice and
/// the default model's documented magic constants.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "db/database.h"

namespace dl2sql::db {
namespace {

class OptimizerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE big (id INT, v FLOAT, grp INT);
      CREATE TABLE small (id INT, tag TEXT);
    )sql")
                    .ok());
    // big: 1000 rows, v uniform 0..999, grp 0..9; small: 10 rows.
    auto big = db_.catalog().GetTable("big");
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE((*big)->AppendRow({Value::Int(i),
                                     Value::Float(static_cast<double>(i)),
                                     Value::Int(i % 10)})
                      .ok());
    }
    auto small = db_.catalog().GetTable("small");
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*small)
                      ->AppendRow({Value::Int(i),
                                   Value::String("t" + std::to_string(i))})
                      .ok());
    }
    ASSERT_TRUE(db_.catalog().Analyze("big").ok());
    ASSERT_TRUE(db_.catalog().Analyze("small").ok());
  }

  PlanPtr Plan(const std::string& sql) {
    auto stmt = sql::ParseStatement(sql);
    DL2SQL_CHECK(stmt.ok()) << stmt.status().ToString();
    auto plan = db_.PlanQuery(
        *std::get<std::shared_ptr<SelectStmt>>(*stmt));
    DL2SQL_CHECK(plan.ok()) << plan.status().ToString();
    return *plan;
  }

  static const PlanNode* FindJoin(const PlanNode& n) {
    if (n.kind == PlanKind::kJoin) return &n;
    for (const auto& c : n.children) {
      if (const PlanNode* j = FindJoin(*c)) return j;
    }
    return nullptr;
  }

  Database db_;
};

TEST_F(OptimizerFixture, CommaJoinBecomesHashJoin) {
  PlanPtr p = Plan("SELECT b.id FROM big b, small s WHERE b.id = s.id");
  const PlanNode* join = FindJoin(*p);
  ASSERT_NE(join, nullptr);
  EXPECT_TRUE(join->join_is_inner);
  ASSERT_EQ(join->equi_keys.size(), 1u);
  EXPECT_EQ(join->join_condition, nullptr);  // fully absorbed into keys
}

TEST_F(OptimizerFixture, SingleTablePredicatesPushBelowJoin) {
  PlanPtr p = Plan(
      "SELECT b.id FROM big b, small s WHERE b.id = s.id AND b.v > 500 AND "
      "s.tag = 't3'");
  const PlanNode* join = FindJoin(*p);
  ASSERT_NE(join, nullptr);
  // Each child must be a Filter over a Scan.
  for (const auto& child : join->children) {
    EXPECT_EQ(child->kind, PlanKind::kFilter);
    EXPECT_EQ(child->children[0]->kind, PlanKind::kScan);
  }
}

TEST_F(OptimizerFixture, NonEquiConditionStaysResidual) {
  PlanPtr p = Plan("SELECT b.id FROM big b, small s WHERE b.id < s.id");
  const PlanNode* join = FindJoin(*p);
  ASSERT_NE(join, nullptr);
  EXPECT_TRUE(join->equi_keys.empty());
  ASSERT_NE(join->join_condition, nullptr);
}

TEST_F(OptimizerFixture, BuildSideIsSmallerInput) {
  PlanPtr p = Plan("SELECT b.id FROM big b, small s WHERE b.id = s.id");
  const PlanNode* join = FindJoin(*p);
  ASSERT_NE(join, nullptr);
  // Left child (big) is larger -> build on the right (small): flag false.
  EXPECT_FALSE(join->join_build_left);

  PlanPtr p2 = Plan("SELECT b.id FROM small s, big b WHERE b.id = s.id");
  const PlanNode* join2 = FindJoin(*p2);
  ASSERT_NE(join2, nullptr);
  EXPECT_TRUE(join2->join_build_left);
}

TEST_F(OptimizerFixture, RangeSelectivityInterpolatesWithStats) {
  // v uniform in [0, 999]: the estimator should get ~25% for v > 750.
  PlanPtr p = Plan("SELECT id FROM big WHERE v > 750");
  // Root is Project over Filter; est_rows annotated by the final pass.
  ASSERT_EQ(p->children[0]->kind, PlanKind::kFilter);
  EXPECT_NEAR(p->children[0]->est_rows, 250.0, 30.0);
}

TEST_F(OptimizerFixture, EqualitySelectivityUsesNdv) {
  PlanPtr p = Plan("SELECT id FROM big WHERE grp = 3");
  ASSERT_EQ(p->children[0]->kind, PlanKind::kFilter);
  // ndv(grp) = 10 -> 1000/10 = 100 rows.
  EXPECT_NEAR(p->children[0]->est_rows, 100.0, 1.0);
}

TEST_F(OptimizerFixture, JoinCardinalityWithStats) {
  PlanPtr p = Plan("SELECT b.id FROM big b, small s WHERE b.id = s.id");
  const PlanNode* join = FindJoin(*p);
  // |big| * |small| / max(ndv) = 1000*10/1000 = 10.
  EXPECT_NEAR(join->est_rows, 10.0, 1.0);
}

TEST_F(OptimizerFixture, GroupByEstimateUsesNdv) {
  PlanPtr p = Plan("SELECT grp, count(*) FROM big GROUP BY grp");
  const PlanNode* agg = p->children[0].get();
  ASSERT_EQ(agg->kind, PlanKind::kAggregate);
  EXPECT_NEAR(agg->est_rows, 10.0, 1.0);
}

TEST(DefaultCostModelTest, BlindConstantsWithoutStats) {
  // A table that exists but was never ANALYZE'd falls back to the magic
  // constants documented in cost_model.h.
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INT, b INT);"
                               "INSERT INTO t VALUES (1, 1), (2, 2)")
                  .ok());
  auto stmt = sql::ParseStatement("SELECT a FROM t WHERE a = 5");
  auto plan = db.PlanQuery(*std::get<std::shared_ptr<SelectStmt>>(*stmt));
  ASSERT_TRUE(plan.ok());
  const PlanNode* filter = (*plan)->children[0].get();
  ASSERT_EQ(filter->kind, PlanKind::kFilter);
  EXPECT_NEAR(filter->est_rows,
              2 * DefaultCostModel::kDefaultEqSelectivity, 1e-9);
}

TEST(DefaultCostModelTest, UnknownTableAssumedRows) {
  Database db;
  CostContext ctx;
  ctx.catalog = &db.catalog();
  PlanPtr scan = MakeScan("ghost", "g", TableSchema({{"x", DataType::kInt64}}));
  DefaultCostModel model;
  ASSERT_TRUE(model.Annotate(scan.get(), ctx).ok());
  EXPECT_DOUBLE_EQ(scan->est_rows, 1000.0);  // textbook default
  ctx.assumed_rows["ghost"] = 77;
  ASSERT_TRUE(model.Annotate(scan.get(), ctx).ok());
  EXPECT_DOUBLE_EQ(scan->est_rows, 77.0);
}

TEST(OptimizerToggleTest, PushdownCanBeDisabled) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INT);"
                               "INSERT INTO t VALUES (1), (2), (3)")
                  .ok());
  db.optimizer_options().enable_pushdown = false;
  auto result = db.Execute("SELECT a FROM t WHERE a > 1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2);
  // Filter stays above the scan unchanged (no scan-level predicates).
  const PlanPtr& plan = db.last_plan();
  EXPECT_EQ(plan->children[0]->kind, PlanKind::kFilter);
}

TEST(ExplainTest, ExplainAnalyzeReportsActuals) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INT);"
                               "INSERT INTO t VALUES (1), (2), (3), (4)")
                  .ok());
  auto text = db.ExplainAnalyze("SELECT a FROM t WHERE a > 2");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("actual rows=2"), std::string::npos) << *text;
  EXPECT_NE(text->find("actual rows=4"), std::string::npos) << *text;
  EXPECT_NE(text->find("self="), std::string::npos);
  EXPECT_FALSE(db.ExplainAnalyze("DROP TABLE t").ok());
}

TEST(ExplainTest, RendersTree) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  auto text = db.Explain("SELECT a FROM t WHERE a > 0 ORDER BY a LIMIT 3");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Limit"), std::string::npos);
  EXPECT_NE(text->find("Sort"), std::string::npos);
  EXPECT_NE(text->find("Filter"), std::string::npos);
  EXPECT_NE(text->find("Scan t"), std::string::npos);
  EXPECT_FALSE(db.Explain("INSERT INTO t VALUES (1)").ok());
}

}  // namespace
}  // namespace dl2sql::db
