/// \file parallel_exec_test.cc
/// \brief Morsel-parallel plan execution must be bit-identical to serial.
///
/// Every parallel relational path (predicate evaluation + FilterRows, hash
/// join probe, hash aggregation, batched nUDFs) buffers per morsel and
/// concatenates in morsel order, so results — including row order and
/// group-by output order — must match the 1-thread run exactly for any
/// thread count.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "accel/device.h"
#include "common/logging.h"
#include "db/database.h"

namespace dl2sql::db {
namespace {

constexpr int64_t kRows = 40000;
constexpr int64_t kDimRows = 64;
constexpr int64_t kSmallMorsel = 512;  // force many morsels on kRows

std::shared_ptr<Device> MakeCpuDevice(int threads) {
  DeviceProfile profile = Device::ServerCpuProfile();
  profile.name = "test-cpu-" + std::to_string(threads);
  profile.num_threads = threads;
  return std::make_shared<Device>(profile);
}

void FillTables(Database* db) {
  TableSchema fact_schema({{"id", DataType::kInt64},
                           {"grp", DataType::kInt64},
                           {"val", DataType::kInt64},
                           {"name", DataType::kString}});
  Table fact{fact_schema};
  for (int64_t i = 0; i < kRows; ++i) {
    // Deterministic but non-monotonic values so min/max/sum differ per group.
    const int64_t grp = (i * 7919) % kDimRows;
    const int64_t val = (i * 104729 + 13) % 1000;
    DL2SQL_CHECK(fact.AppendRow({Value::Int(i), Value::Int(grp),
                                 Value::Int(val),
                                 Value::String("n" + std::to_string(grp))})
                     .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("fact", std::move(fact)).ok());

  TableSchema dim_schema({{"id", DataType::kInt64},
                          {"label", DataType::kString}});
  Table dim{dim_schema};
  for (int64_t i = 0; i < kDimRows; ++i) {
    DL2SQL_CHECK(dim.AppendRow({Value::Int(i),
                                Value::String("g" + std::to_string(i))})
                     .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("dim", std::move(dim)).ok());

  // A pure-compute batched nUDF safe to run from several pool workers.
  NUdfInfo info;
  info.model_name = "affine";
  db->udfs().RegisterNeural(
      "nudf_affine", DataType::kFloat64,
      [](const std::vector<Value>& args) -> Result<Value> {
        DL2SQL_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        return Value::Float(x * 2.0 + 1.0);
      },
      info,
      [](const std::vector<std::vector<Value>>& rows)
          -> Result<std::vector<Value>> {
        std::vector<Value> out;
        out.reserve(rows.size());
        for (const auto& row : rows) {
          DL2SQL_ASSIGN_OR_RETURN(double x, row[0].AsDouble());
          out.push_back(Value::Float(x * 2.0 + 1.0));
        }
        return out;
      },
      /*arity=*/1, /*parallel_safe=*/true);
}

// The workload: filter-heavy scan, string filter, hash join probe, hash
// aggregation (no ORDER BY — output order itself is under test), and a
// batched nUDF projection.
const char* const kQueries[] = {
    "SELECT id, val FROM fact WHERE val % 7 = 3 AND id > 100",
    "SELECT id, grp FROM fact WHERE name = 'n13'",
    "SELECT F.id, D.label FROM fact F INNER JOIN dim D ON F.grp = D.id "
    "WHERE F.val % 3 = 1",
    "SELECT grp, count(*) AS c, sum(val) AS s, min(val) AS mn, "
    "max(val) AS mx FROM fact GROUP BY grp",
    "SELECT id, nudf_affine(val) AS p FROM fact WHERE id % 2 = 0",
};

std::vector<Table> RunWorkload(Database* db) {
  std::vector<Table> results;
  for (const char* sql : kQueries) {
    auto r = db->Execute(sql);
    DL2SQL_CHECK(r.ok()) << sql << ": " << r.status().ToString();
    results.push_back(std::move(*r));
  }
  return results;
}

void ExpectIdentical(const Table& serial, const Table& parallel,
                     const char* sql, int threads) {
  ASSERT_EQ(serial.num_rows(), parallel.num_rows())
      << sql << " @" << threads << " threads";
  ASSERT_EQ(serial.num_columns(), parallel.num_columns()) << sql;
  for (int c = 0; c < serial.num_columns(); ++c) {
    EXPECT_EQ(serial.schema().field(c).name, parallel.schema().field(c).name)
        << sql;
    for (int64_t r = 0; r < serial.num_rows(); ++r) {
      ASSERT_EQ(serial.column(c).GetValue(r).ToString(),
                parallel.column(c).GetValue(r).ToString())
          << sql << " @" << threads << " threads, col " << c << " row " << r;
    }
  }
}

TEST(ParallelExecTest, WorkloadIsDeterministicAcrossThreadCounts) {
  Database serial_db;
  FillTables(&serial_db);
  auto serial_device = MakeCpuDevice(1);
  serial_db.set_exec_options({serial_device.get(), kSmallMorsel});
  const std::vector<Table> serial = RunWorkload(&serial_db);

  // Sanity: the workload produces non-trivial results.
  for (const Table& t : serial) ASSERT_GT(t.num_rows(), 0);

  for (int threads : {2, 4, 8}) {
    Database db;
    FillTables(&db);
    auto device = MakeCpuDevice(threads);
    db.set_exec_options({device.get(), kSmallMorsel});
    const std::vector<Table> parallel = RunWorkload(&db);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t q = 0; q < serial.size(); ++q) {
      ExpectIdentical(serial[q], parallel[q], kQueries[q], threads);
    }
  }
}

TEST(ParallelExecTest, NullDeviceMatchesOneThreadDevice) {
  Database plain_db;  // no ExecOptions at all: the original serial engine
  FillTables(&plain_db);
  const std::vector<Table> plain = RunWorkload(&plain_db);

  Database db;
  FillTables(&db);
  auto device = MakeCpuDevice(4);
  db.set_exec_options({device.get(), kSmallMorsel});
  const std::vector<Table> parallel = RunWorkload(&db);

  for (size_t q = 0; q < plain.size(); ++q) {
    ExpectIdentical(plain[q], parallel[q], kQueries[q], 4);
  }
}

TEST(ParallelExecTest, NeuralCallAccountingSurvivesParallelism) {
  Database db;
  FillTables(&db);
  auto device = MakeCpuDevice(4);
  db.set_exec_options({device.get(), kSmallMorsel});
  auto r = db.Execute("SELECT nudf_affine(val) AS p FROM fact");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // One metered inference per input row, regardless of morsel splitting.
  EXPECT_EQ(db.neural_calls(), kRows);
}

TEST(ParallelExecTest, BatchUdfErrorPropagatesFromWorkers) {
  Database db;
  FillTables(&db);
  auto device = MakeCpuDevice(4);
  db.set_exec_options({device.get(), kSmallMorsel});
  NUdfInfo info;
  info.model_name = "explosive";
  db.udfs().RegisterNeural(
      "nudf_boom", DataType::kFloat64,
      [](const std::vector<Value>&) -> Result<Value> {
        return Status::InternalError("scalar boom");
      },
      info,
      [](const std::vector<std::vector<Value>>& rows)
          -> Result<std::vector<Value>> {
        for (const auto& row : rows) {
          DL2SQL_ASSIGN_OR_RETURN(int64_t x, row[0].AsInt());
          if (x >= 30000) return Status::InternalError("batch boom at ", x);
        }
        return std::vector<Value>(rows.size(), Value::Float(0.0));
      },
      /*arity=*/1, /*parallel_safe=*/true);
  auto r = db.Execute("SELECT nudf_boom(id) AS p FROM fact");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("batch boom"), std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace dl2sql::db
