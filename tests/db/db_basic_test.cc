/// \file db_basic_test.cc
/// \brief End-to-end smoke tests of the lindb engine: DDL, DML, SELECTs with
/// joins / aggregation / subqueries — the SQL surface the DL2SQL pipelines
/// depend on.
#include <gtest/gtest.h>

#include "db/database.h"

namespace dl2sql::db {
namespace {

class DbBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE fabric (transID INT, patternID INT, meter FLOAT,
                           humidity FLOAT, temperature FLOAT, printdate TEXT);
      INSERT INTO fabric VALUES
        (1, 10, 5.0, 85.0, 31.0, '2021-01-05'),
        (2, 10, 7.5, 75.0, 29.0, '2021-01-10'),
        (3, 20, 2.5, 90.0, 35.0, '2021-02-01'),
        (4, 20, 4.0, 82.0, 33.0, '2021-01-20'),
        (5, 30, 9.0, 60.0, 25.0, '2021-01-25');
      CREATE TABLE video (transID INT, date TEXT, keyframe TEXT);
      INSERT INTO video VALUES
        (1, '2021-01-05', 'k1'),
        (2, '2021-01-10', 'k2'),
        (3, '2021-02-01', 'k3'),
        (4, '2021-01-20', 'k4');
    )sql")
                    .ok());
  }

  Table MustQuery(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).ValueOrDie() : Table{};
  }

  Database db_;
};

TEST_F(DbBasicTest, SelectAll) {
  Table t = MustQuery("SELECT * FROM fabric");
  EXPECT_EQ(t.num_rows(), 5);
  EXPECT_EQ(t.num_columns(), 6);
}

TEST_F(DbBasicTest, SelectWithoutFrom) {
  Table t = MustQuery("SELECT 1 + 2 AS three, 'x' AS s");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.column(0).GetValue(0).int_value(), 3);
  EXPECT_EQ(t.column(1).GetValue(0).string_value(), "x");
}

TEST_F(DbBasicTest, FilterComparisons) {
  Table t = MustQuery(
      "SELECT transID FROM fabric WHERE humidity > 80 AND temperature > 30");
  ASSERT_EQ(t.num_rows(), 3);
}

TEST_F(DbBasicTest, StringDateRange) {
  Table t = MustQuery(
      "SELECT transID FROM fabric WHERE printdate > '2021-01-01' AND "
      "printdate < '2021-01-31'");
  EXPECT_EQ(t.num_rows(), 4);
}

TEST_F(DbBasicTest, Projection) {
  Table t = MustQuery("SELECT meter * 2 AS dbl FROM fabric WHERE transID = 1");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_DOUBLE_EQ(t.column(0).GetValue(0).float_value(), 10.0);
}

TEST_F(DbBasicTest, InnerJoinExplicit) {
  Table t = MustQuery(
      "SELECT F.transID, V.keyframe FROM fabric F INNER JOIN video V ON "
      "F.transID = V.transID");
  EXPECT_EQ(t.num_rows(), 4);
}

TEST_F(DbBasicTest, CommaJoinWithWhereEquality) {
  Table t = MustQuery(
      "SELECT F.transID FROM fabric F, video V WHERE F.transID = V.transID "
      "AND F.humidity > 80");
  EXPECT_EQ(t.num_rows(), 3);
}

TEST_F(DbBasicTest, GroupByAggregates) {
  Table t = MustQuery(
      "SELECT patternID, sum(meter), count(*), avg(meter) FROM fabric GROUP "
      "BY patternID ORDER BY patternID");
  ASSERT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.column(0).GetValue(0).int_value(), 10);
  EXPECT_DOUBLE_EQ(t.column(1).GetValue(0).float_value(), 12.5);
  EXPECT_EQ(t.column(2).GetValue(0).int_value(), 2);
  EXPECT_DOUBLE_EQ(t.column(3).GetValue(0).float_value(), 6.25);
}

TEST_F(DbBasicTest, GlobalAggregate) {
  Table t = MustQuery("SELECT sum(meter), min(meter), max(meter) FROM fabric");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_DOUBLE_EQ(t.column(0).GetValue(0).float_value(), 28.0);
  EXPECT_DOUBLE_EQ(t.column(1).GetValue(0).float_value(), 2.5);
  EXPECT_DOUBLE_EQ(t.column(2).GetValue(0).float_value(), 9.0);
}

TEST_F(DbBasicTest, StddevSamp) {
  ASSERT_TRUE(db_.ExecuteScript("CREATE TABLE nums (v FLOAT);"
                                "INSERT INTO nums VALUES (2.0),(4.0),(4.0),"
                                "(4.0),(5.0),(5.0),(7.0),(9.0);")
                  .ok());
  Table t = MustQuery("SELECT stddevSamp(v) FROM nums");
  EXPECT_NEAR(t.column(0).GetValue(0).float_value(), 2.13809, 1e-4);
}

TEST_F(DbBasicTest, HavingAndOrderDesc) {
  Table t = MustQuery(
      "SELECT patternID, sum(meter) AS total FROM fabric GROUP BY patternID "
      "HAVING sum(meter) > 5 ORDER BY total DESC");
  ASSERT_EQ(t.num_rows(), 3);
  EXPECT_DOUBLE_EQ(t.column(1).GetValue(0).float_value(), 12.5);
}

TEST_F(DbBasicTest, ScalarSubquery) {
  Table t = MustQuery(
      "SELECT transID FROM fabric WHERE meter > (SELECT avg(meter) FROM "
      "fabric)");
  EXPECT_EQ(t.num_rows(), 2);  // 7.5 and 9.0 exceed the mean 5.6
}

TEST_F(DbBasicTest, DerivedTable) {
  Table t = MustQuery(
      "SELECT d.patternID FROM (SELECT patternID, sum(meter) AS m FROM fabric "
      "GROUP BY patternID) d WHERE d.m > 6 ORDER BY d.patternID");
  ASSERT_EQ(t.num_rows(), 3);
}

TEST_F(DbBasicTest, CreateTableAsSelect) {
  MustQuery("CREATE TEMP TABLE big AS SELECT * FROM fabric WHERE meter > 4");
  Table t = MustQuery("SELECT count(*) FROM big");
  EXPECT_EQ(t.column(0).GetValue(0).int_value(), 3);
}

TEST_F(DbBasicTest, CreateTableParenSelectClickhouseStyle) {
  // The paper's Q1 syntax: CREATE TEMP TABLE x (SELECT ...)
  MustQuery("CREATE TEMP TABLE sel (SELECT transID FROM fabric)");
  EXPECT_EQ(MustQuery("SELECT count(*) FROM sel").column(0).GetValue(0)
                .int_value(),
            5);
}

TEST_F(DbBasicTest, ViewsExpandWithAlias) {
  MustQuery("CREATE VIEW heavy AS SELECT transID, meter FROM fabric WHERE "
            "meter > 4");
  Table t = MustQuery(
      "SELECT h.transID FROM heavy h, video v WHERE h.transID = v.transID");
  EXPECT_EQ(t.num_rows(), 2);
}

TEST_F(DbBasicTest, UpdateWithWhere) {
  MustQuery("UPDATE fabric SET meter = 0 WHERE meter < 5");
  Table t = MustQuery("SELECT count(*) FROM fabric WHERE meter = 0");
  EXPECT_EQ(t.column(0).GetValue(0).int_value(), 2);
}

TEST_F(DbBasicTest, DeleteWithWhere) {
  MustQuery("DELETE FROM fabric WHERE patternID = 10");
  EXPECT_EQ(MustQuery("SELECT count(*) FROM fabric").column(0).GetValue(0)
                .int_value(),
            3);
}

TEST_F(DbBasicTest, DropTable) {
  MustQuery("DROP TABLE video");
  EXPECT_FALSE(db_.Execute("SELECT * FROM video").ok());
  EXPECT_TRUE(db_.Execute("DROP TABLE IF EXISTS video").ok());
  EXPECT_FALSE(db_.Execute("DROP TABLE video").ok());
}

TEST_F(DbBasicTest, InsertSelect) {
  MustQuery("CREATE TABLE fabric2 (transID INT, patternID INT, meter FLOAT,"
            " humidity FLOAT, temperature FLOAT, printdate TEXT)");
  MustQuery("INSERT INTO fabric2 SELECT * FROM fabric WHERE patternID = 20");
  EXPECT_EQ(MustQuery("SELECT count(*) FROM fabric2").column(0).GetValue(0)
                .int_value(),
            2);
}

TEST_F(DbBasicTest, LimitAndOrder) {
  Table t = MustQuery("SELECT transID FROM fabric ORDER BY meter DESC LIMIT 2");
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.column(0).GetValue(0).int_value(), 5);
  EXPECT_EQ(t.column(0).GetValue(1).int_value(), 2);
}

TEST_F(DbBasicTest, InList) {
  Table t = MustQuery("SELECT transID FROM fabric WHERE patternID IN (10, 30)");
  EXPECT_EQ(t.num_rows(), 3);
}

TEST_F(DbBasicTest, BuiltinFunctions) {
  Table t = MustQuery("SELECT greatest(0, -3.5), sqrt(16.0), intDiv(7, 2)");
  EXPECT_DOUBLE_EQ(t.column(0).GetValue(0).float_value(), 0.0);
  EXPECT_DOUBLE_EQ(t.column(1).GetValue(0).float_value(), 4.0);
  EXPECT_EQ(t.column(2).GetValue(0).int_value(), 3);
}

TEST_F(DbBasicTest, NullHandling) {
  MustQuery("CREATE TABLE n (a INT, b INT)");
  MustQuery("INSERT INTO n VALUES (1, NULL), (2, 5), (NULL, NULL)");
  EXPECT_EQ(MustQuery("SELECT count(*) FROM n").column(0).GetValue(0)
                .int_value(),
            3);
  EXPECT_EQ(MustQuery("SELECT count(b) FROM n").column(0).GetValue(0)
                .int_value(),
            1);
  // NULL comparisons filter out.
  EXPECT_EQ(MustQuery("SELECT count(*) FROM n WHERE b > 0").column(0)
                .GetValue(0)
                .int_value(),
            1);
}

TEST_F(DbBasicTest, ParseErrors) {
  EXPECT_FALSE(db_.Execute("SELEC * FROM fabric").ok());
  EXPECT_FALSE(db_.Execute("SELECT FROM fabric").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM fabric WHERE").ok());
  EXPECT_FALSE(db_.Execute("SELECT 'unterminated FROM fabric").ok());
}

TEST_F(DbBasicTest, UnknownColumnsAndTables) {
  EXPECT_FALSE(db_.Execute("SELECT nosuch FROM fabric").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM nosuch").ok());
}

TEST_F(DbBasicTest, ExplainShowsPushdown) {
  auto explain = db_.Explain(
      "SELECT F.transID FROM fabric F, video V WHERE F.transID = V.transID "
      "AND F.meter > 4");
  ASSERT_TRUE(explain.ok());
  // The meter predicate must sit below the join (pushed to the fabric scan).
  const std::string plan = *explain;
  const size_t join_pos = plan.find("Join");
  const size_t filter_pos = plan.find("F.meter");
  ASSERT_NE(join_pos, std::string::npos);
  ASSERT_NE(filter_pos, std::string::npos);
  EXPECT_GT(filter_pos, join_pos);
}

TEST_F(DbBasicTest, CostBreakdownBuckets) {
  CostAccumulator acc;
  db_.set_cost_accumulator(&acc);
  MustQuery(
      "SELECT patternID, sum(meter) FROM fabric F, video V WHERE F.transID = "
      "V.transID GROUP BY patternID");
  db_.set_cost_accumulator(nullptr);
  EXPECT_GT(acc.Get("scan"), 0.0);
  EXPECT_GT(acc.Get("join"), 0.0);
  EXPECT_GT(acc.Get("groupby"), 0.0);
}

}  // namespace
}  // namespace dl2sql::db
