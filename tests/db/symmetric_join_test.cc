/// \file symmetric_join_test.cc
/// \brief Symmetric hash join with bucket-LRU: exact-result property under
/// every memory budget, eviction accounting, and batch-size sweeps.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "db/exec/symmetric_hash_join.h"

namespace dl2sql::db {
namespace {

Table MakeKeyedTable(const std::vector<int64_t>& keys) {
  TableSchema schema({{"k", DataType::kInt64}});
  auto t = Table::FromColumns(schema, {Column::Ints(keys)});
  return std::move(t).ValueOrDie();
}

/// Reference join: all (l, r) index pairs with equal keys.
std::vector<std::pair<int64_t, int64_t>> ReferencePairs(
    const std::vector<int64_t>& l, const std::vector<int64_t>& r) {
  std::vector<std::pair<int64_t, int64_t>> out;
  for (size_t i = 0; i < l.size(); ++i) {
    for (size_t j = 0; j < r.size(); ++j) {
      if (l[i] == r[j]) out.emplace_back(i, j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<int64_t, int64_t>> RunJoin(
    const std::vector<int64_t>& l, const std::vector<int64_t>& r,
    const SymmetricHashJoinOptions& opts,
    SymmetricHashJoinStats* stats = nullptr) {
  Table lt = MakeKeyedTable(l);
  Table rt = MakeKeyedTable(r);
  ExprPtr key = Expr::BoundCol(0, "k");
  UdfRegistry udfs;
  EvalContext ctx;
  ctx.udfs = &udfs;
  auto pairs = SymmetricHashJoinPairs(lt, rt, *key, *key, &ctx, opts, stats);
  DL2SQL_CHECK(pairs.ok()) << pairs.status().ToString();
  auto out = *pairs;
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SymmetricHashJoinTest, MatchesReferenceNoEviction) {
  Rng rng(1);
  std::vector<int64_t> l, r;
  for (int i = 0; i < 200; ++i) l.push_back(rng.UniformInt(0, 20));
  for (int i = 0; i < 150; ++i) r.push_back(rng.UniformInt(0, 20));
  SymmetricHashJoinOptions opts;
  opts.batch_size = 16;
  EXPECT_EQ(RunJoin(l, r, opts), ReferencePairs(l, r));
}

/// The core property: any memory budget must still produce the exact join
/// (evictions recovered by the cleanup phase).
class BudgetSweepTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(BudgetSweepTest, ExactUnderEviction) {
  Rng rng(GetParam() + 7);
  std::vector<int64_t> l, r;
  for (int i = 0; i < 300; ++i) l.push_back(rng.UniformInt(0, 15));
  for (int i = 0; i < 250; ++i) r.push_back(rng.UniformInt(0, 15));
  SymmetricHashJoinOptions opts;
  opts.batch_size = 8;
  opts.memory_budget_tuples = GetParam();
  SymmetricHashJoinStats stats;
  EXPECT_EQ(RunJoin(l, r, opts, &stats), ReferencePairs(l, r))
      << "budget=" << GetParam();
  if (GetParam() > 0 && GetParam() < 100) {
    EXPECT_GT(stats.evicted_tuples, 0);
    EXPECT_GT(stats.cleanup_pairs, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweepTest,
                         ::testing::Values(0, 8, 16, 32, 64, 128, 10000));

class BatchSweepTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(BatchSweepTest, BatchSizeDoesNotChangeResult) {
  Rng rng(3);
  std::vector<int64_t> l, r;
  for (int i = 0; i < 120; ++i) l.push_back(rng.UniformInt(0, 9));
  for (int i = 0; i < 77; ++i) r.push_back(rng.UniformInt(0, 9));
  SymmetricHashJoinOptions opts;
  opts.batch_size = GetParam();
  EXPECT_EQ(RunJoin(l, r, opts), ReferencePairs(l, r));
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweepTest,
                         ::testing::Values(1, 3, 17, 64, 1000));

TEST(SymmetricHashJoinTest, EmptyInputs) {
  SymmetricHashJoinOptions opts;
  EXPECT_TRUE(RunJoin({}, {}, opts).empty());
  EXPECT_TRUE(RunJoin({1, 2}, {}, opts).empty());
  EXPECT_TRUE(RunJoin({}, {1, 2}, opts).empty());
}

TEST(SymmetricHashJoinTest, NullKeysNeverJoin) {
  TableSchema schema({{"k", DataType::kInt64}});
  Table lt{schema}, rt{schema};
  ASSERT_TRUE(lt.AppendRow({Value::Int(1)}).ok());
  ASSERT_TRUE(lt.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(rt.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(rt.AppendRow({Value::Int(1)}).ok());
  ExprPtr key = Expr::BoundCol(0, "k");
  UdfRegistry udfs;
  EvalContext ctx;
  ctx.udfs = &udfs;
  auto pairs = SymmetricHashJoinPairs(lt, rt, *key, *key, &ctx, {});
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ((*pairs)[0], (std::pair<int64_t, int64_t>{0, 1}));
}

TEST(SymmetricHashJoinTest, InvalidBatchSizeRejected) {
  SymmetricHashJoinOptions opts;
  opts.batch_size = 0;
  Table t = MakeKeyedTable({1});
  ExprPtr key = Expr::BoundCol(0, "k");
  UdfRegistry udfs;
  EvalContext ctx;
  ctx.udfs = &udfs;
  EXPECT_FALSE(SymmetricHashJoinPairs(t, t, *key, *key, &ctx, opts).ok());
}

TEST(SymmetricHashJoinTest, ExpressionKeys) {
  // Join on k % 5 from both sides.
  Rng rng(5);
  std::vector<int64_t> l, r;
  for (int i = 0; i < 60; ++i) l.push_back(rng.UniformInt(0, 100));
  for (int i = 0; i < 40; ++i) r.push_back(rng.UniformInt(0, 100));
  Table lt = MakeKeyedTable(l);
  Table rt = MakeKeyedTable(r);
  auto key = Expr::Binary(BinaryOp::kMod, Expr::BoundCol(0, "k"),
                          Expr::Lit(Value::Int(5)));
  UdfRegistry udfs;
  EvalContext ctx;
  ctx.udfs = &udfs;
  auto pairs = SymmetricHashJoinPairs(lt, rt, *key, *key, &ctx, {});
  ASSERT_TRUE(pairs.ok());
  std::vector<std::pair<int64_t, int64_t>> expected;
  for (size_t i = 0; i < l.size(); ++i) {
    for (size_t j = 0; j < r.size(); ++j) {
      if (l[i] % 5 == r[j] % 5) expected.emplace_back(i, j);
    }
  }
  auto got = *pairs;
  std::sort(got.begin(), got.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace dl2sql::db
