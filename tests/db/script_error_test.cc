/// \file script_error_test.cc
/// \brief Database::ExecuteScript must report the failing statement's index
/// and SQL text, for both parse and execution failures.
#include <gtest/gtest.h>

#include <string>

#include "db/database.h"
#include "db/sql/parser.h"

namespace dl2sql::db {
namespace {

TEST(SplitStatements, RespectsStringsAndComments) {
  const auto pieces = sql::SplitStatements(
      "SELECT 'a;b' AS s;\n"
      "-- a comment; with a semicolon\n"
      "SELECT 2;\n"
      " ;; \n"
      "SELECT 3");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "SELECT 'a;b' AS s");
  // The comment belongs to the following statement's text.
  EXPECT_EQ(pieces[1],
            "-- a comment; with a semicolon\nSELECT 2");
  EXPECT_EQ(pieces[2], "SELECT 3");
}

TEST(SplitStatements, QuoteEscapes) {
  const auto pieces = sql::SplitStatements("SELECT 'it''s; fine'; SELECT 1");
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "SELECT 'it''s; fine'");
}

TEST(ExecuteScript, SuccessRunsAllStatements) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (x INT64);"
                               "INSERT INTO t VALUES (1), (2);"
                               "INSERT INTO t VALUES (3)")
                  .ok());
  auto r = db.Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).GetValue(0).int_value(), 3);
}

TEST(ExecuteScript, ExecutionErrorNamesStatementAndSql) {
  Database db;
  const Status st = db.ExecuteScript(
      "CREATE TABLE t (x INT64);\n"
      "INSERT INTO t VALUES (1);\n"
      "SELECT nope FROM missing_table;\n"
      "INSERT INTO t VALUES (2)");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("statement #3"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find("SELECT nope FROM missing_table"),
            std::string::npos)
      << st.ToString();
  // Statement #4 never ran: the script stops at the first failure.
  auto r = db.Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).GetValue(0).int_value(), 1);
}

TEST(ExecuteScript, ParseErrorNamesStatementAndRunsNothing) {
  Database db;
  const Status st = db.ExecuteScript(
      "CREATE TABLE t (x INT64);\n"
      "FLARB GLARB;\n"
      "INSERT INTO t VALUES (1)");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("statement #2"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find("FLARB GLARB"), std::string::npos)
      << st.ToString();
  // Whole-script parse validation happens before execution: even the valid
  // leading CREATE must not have run.
  EXPECT_FALSE(db.catalog().HasTable("t"));
}

TEST(ExecuteScript, LongStatementTextIsElided) {
  Database db;
  std::string sql = "SELECT nope FROM missing_table WHERE x = '";
  sql += std::string(300, 'y');
  sql += "'";
  const Status st = db.ExecuteScript(sql);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("statement #1"), std::string::npos);
  EXPECT_NE(st.ToString().find(" ... "), std::string::npos) << st.ToString();
  // The elided context stays bounded even for giant statements.
  EXPECT_LT(st.ToString().size(), sql.size());
}

}  // namespace
}  // namespace dl2sql::db
