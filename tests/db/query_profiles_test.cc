/// \file query_profiles_test.cc
/// \brief Per-query resource accounting end to end: system.query_profiles
/// rows carry non-trivial memory peaks and sane cpu/wait breakdowns, results
/// are bit-identical with the tracker on and off, a per-query hard memory
/// limit fails with ResourceExhausted naming the offending operator, catalog
/// storage shows up in system.tables.tracked_bytes, and ExplainAnalyze grows
/// a Profile footer.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/mem_tracker.h"
#include "db/database.h"

namespace dl2sql::db {
namespace {

constexpr int64_t kRows = 20000;
constexpr int64_t kDimRows = 64;

/// Forces the accounting gate on and restores the prior state on exit.
class ScopedTrackingEnabled {
 public:
  ScopedTrackingEnabled() : prior_(MemTracker::Enabled()) {
    MemTracker::SetEnabled(true);
  }
  ~ScopedTrackingEnabled() { MemTracker::SetEnabled(prior_); }
  bool active() const { return MemTracker::Enabled(); }

 private:
  const bool prior_;
};

#define REQUIRE_TRACKING(guard)                                         \
  if (!(guard).active()) {                                              \
    GTEST_SKIP() << "resource accounting compiled out";                 \
  }

void FillTables(Database* db) {
  // The payload column makes operator outputs comfortably larger than the
  // 1 MB budget the limit test sets.
  TableSchema fact_schema({{"id", DataType::kInt64},
                           {"grp", DataType::kInt64},
                           {"val", DataType::kInt64},
                           {"payload", DataType::kString}});
  Table fact{fact_schema};
  const std::string payload(64, 'p');
  for (int64_t i = 0; i < kRows; ++i) {
    DL2SQL_CHECK(fact.AppendRow({Value::Int(i),
                                 Value::Int((i * 7919) % kDimRows),
                                 Value::Int((i * 104729 + 13) % 1000),
                                 Value::String(payload)})
                     .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("fact", std::move(fact)).ok());

  TableSchema dim_schema({{"id", DataType::kInt64}, {"w", DataType::kInt64}});
  Table dim{dim_schema};
  for (int64_t i = 0; i < kDimRows; ++i) {
    DL2SQL_CHECK(dim.AppendRow({Value::Int(i), Value::Int(i * i)}).ok());
  }
  DL2SQL_CHECK(db->RegisterTable("dim", std::move(dim)).ok());

  NUdfInfo info;
  info.model_name = "affine";
  db->udfs().RegisterNeural(
      "nudf_affine", DataType::kFloat64,
      [](const std::vector<Value>& args) -> Result<Value> {
        DL2SQL_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        return Value::Float(x * 2.0 + 1.0);
      },
      info,
      [](const std::vector<std::vector<Value>>& rows)
          -> Result<std::vector<Value>> {
        std::vector<Value> out;
        out.reserve(rows.size());
        for (const auto& row : rows) {
          DL2SQL_ASSIGN_OR_RETURN(double x, row[0].AsDouble());
          out.push_back(Value::Float(x * 2.0 + 1.0));
        }
        return out;
      },
      /*arity=*/1, /*parallel_safe=*/true);
}

// One query of each interesting shape; all run serially (no device), so
// per-query CPU cannot legitimately exceed wall time.
const char* const kJoinSql =
    "SELECT F.id, D.w FROM fact F INNER JOIN dim D ON F.grp = D.id "
    "WHERE F.val % 3 = 1";
const char* const kAggSql =
    "SELECT grp, count(*) AS c, sum(val) AS s FROM fact GROUP BY grp";
const char* const kNudfSql =
    "SELECT id, nudf_affine(val) AS p FROM fact WHERE id < 4000";

TEST(QueryProfilesTest, ProfilesCarryMemoryPeaksAndSaneTimeBreakdown) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  Database db;
  // This test asserts in-memory tracker behavior; paged mode (spilling,
  // resident-bytes billing) legitimately reports different peaks.
  ASSERT_TRUE(db.set_storage_mode(StorageMode::kInMemory).ok());
  FillTables(&db);
  ASSERT_TRUE(db.Execute(kJoinSql).ok());
  ASSERT_TRUE(db.Execute(kAggSql).ok());
  ASSERT_TRUE(db.Execute(kNudfSql).ok());

  auto profiles = db.Execute(
      "SELECT sql, duration_ms, cpu_ms, admission_wait_ms, lock_wait_ms, "
      "pool_queue_wait_ms, coalesce_wait_ms, mem_peak_bytes, "
      "mem_cumulative_bytes FROM system.query_profiles");
  ASSERT_TRUE(profiles.ok()) << profiles.status().ToString();

  int matched = 0;
  for (int64_t i = 0; i < profiles->num_rows(); ++i) {
    const std::string sql = profiles->column(0).GetValue(i).string_value();
    if (sql != kJoinSql && sql != kAggSql && sql != kNudfSql) continue;
    ++matched;
    const double duration_ms = profiles->column(1).GetValue(i).float_value();
    const double cpu_ms = profiles->column(2).GetValue(i).float_value();
    const double wait_ms = profiles->column(3).GetValue(i).float_value() +
                           profiles->column(4).GetValue(i).float_value() +
                           profiles->column(5).GetValue(i).float_value() +
                           profiles->column(6).GetValue(i).float_value();
    const int64_t peak = profiles->column(7).GetValue(i).int_value();
    const int64_t cumulative = profiles->column(8).GetValue(i).int_value();
    // Join / aggregate / nUDF statements all materialize tracked state.
    EXPECT_GT(peak, 0) << sql;
    EXPECT_GE(cumulative, peak) << sql;
    // Serial execution: CPU bounded by wall (1 ms slack for the coarser
    // granularity of CLOCK_THREAD_CPUTIME_ID vs the monotonic stopwatch),
    // and an embedded database never waits on admission/locks/pool queues.
    EXPECT_LE(cpu_ms, duration_ms + 1.0) << sql;
    EXPECT_LE(wait_ms, duration_ms + 1.0) << sql;
  }
  EXPECT_EQ(matched, 3);
}

TEST(QueryProfilesTest, ResultsAreBitIdenticalTrackerOnVsOff) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  const char* const queries[] = {kJoinSql, kAggSql, kNudfSql};

  MemTracker::SetEnabled(true);
  Database on;
  FillTables(&on);
  std::vector<std::string> on_renders;
  for (const char* sql : queries) {
    auto r = on.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    on_renders.push_back(r->ToString(r->num_rows()));
  }

  MemTracker::SetEnabled(false);
  Database off;
  FillTables(&off);
  std::vector<std::string> off_renders;
  for (const char* sql : queries) {
    auto r = off.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    off_renders.push_back(r->ToString(r->num_rows()));
  }
  MemTracker::SetEnabled(true);

  for (size_t q = 0; q < on_renders.size(); ++q) {
    EXPECT_EQ(on_renders[q], off_renders[q]) << queries[q];
  }
}

TEST(QueryProfilesTest, QueryMemLimitFailsNamingTheOffendingOperator) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  Database db;
  // Paged mode spills instead of failing on the limit — pin in-memory.
  ASSERT_TRUE(db.set_storage_mode(StorageMode::kInMemory).ok());
  FillTables(&db);
  db.set_query_mem_limit(1 << 20);  // 1 MB

  // The fact scan alone materializes well over 1 MB (payload column).
  auto r = db.Execute("SELECT id, payload FROM fact WHERE val >= 0");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  const std::string msg = r.status().ToString();
  EXPECT_NE(msg.find("memory limit exceeded"), std::string::npos) << msg;
  EXPECT_NE(msg.find("op."), std::string::npos)
      << "error does not name the offending operator: " << msg;

  // Lifting the limit lets the identical statement succeed: the failed
  // attempt released everything it charged.
  db.set_query_mem_limit(0);
  auto ok = db.Execute("SELECT id, payload FROM fact WHERE val >= 0");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->num_rows(), kRows);
}

TEST(QueryProfilesTest, EnvSeedsQueryMemLimitAtConstruction) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  ::setenv("DL2SQL_QUERY_MEM_LIMIT", "1048576", 1);
  Database db;
  ::unsetenv("DL2SQL_QUERY_MEM_LIMIT");
  EXPECT_EQ(db.query_mem_limit(), 1048576);
  // Paged mode spills instead of failing on the limit — pin in-memory.
  ASSERT_TRUE(db.set_storage_mode(StorageMode::kInMemory).ok());
  FillTables(&db);
  auto r = db.Execute("SELECT id, payload FROM fact WHERE val >= 0");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
}

TEST(QueryProfilesTest, SystemTablesReportTrackedStorageBytes) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  Database db;
  FillTables(&db);  // registered with the gate on → synced at create
  auto r = db.Execute(
      "SELECT name, bytes, tracked_bytes FROM system.tables "
      "WHERE name = 'fact'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 1);
  const int64_t bytes = r->column(1).GetValue(0).int_value();
  const int64_t tracked = r->column(2).GetValue(0).int_value();
  EXPECT_GT(tracked, 0);
  EXPECT_EQ(tracked, bytes);  // re-synced value is exactly ByteSize()

  // DML re-syncs through InvalidateStats.
  ASSERT_TRUE(
      db.Execute("INSERT INTO fact VALUES (99991, 1, 1, 'x')").ok());
  auto after = db.Execute(
      "SELECT tracked_bytes FROM system.tables WHERE name = 'fact'");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GT(after->column(0).GetValue(0).int_value(), tracked);
}

TEST(QueryProfilesTest, ExplainAnalyzeGrowsProfileFooterWhenEnabled) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  Database db;
  FillTables(&db);
  auto text = db.ExplainAnalyze(kAggSql);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("Profile: cpu_us="), std::string::npos) << *text;
  EXPECT_NE(text->find("op.aggregate"), std::string::npos) << *text;

  MemTracker::SetEnabled(false);
  auto off_text = db.ExplainAnalyze(kAggSql);
  MemTracker::SetEnabled(true);
  ASSERT_TRUE(off_text.ok()) << off_text.status().ToString();
  EXPECT_EQ(off_text->find("Profile:"), std::string::npos) << *off_text;
}

TEST(QueryProfilesTest, DisabledGateLeavesProfileColumnsZero) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  MemTracker::SetEnabled(false);
  Database db;
  FillTables(&db);
  ASSERT_TRUE(db.Execute(kAggSql).ok());
  auto r = db.Execute(
      "SELECT cpu_ms, mem_peak_bytes, mem_cumulative_bytes "
      "FROM system.query_profiles WHERE mem_peak_bytes > 0");
  MemTracker::SetEnabled(true);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 0);
}

}  // namespace
}  // namespace dl2sql::db
