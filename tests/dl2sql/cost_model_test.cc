/// \file cost_model_test.cc
/// \brief The customized cost model (Eqs. 3-8) vs the blind default:
/// hand-checked formulas, compounding-error property, and calibration.
#include <gtest/gtest.h>

#include "dl2sql/cost_model.h"
#include "nn/builders.h"
#include "nn/layers.h"

namespace dl2sql::core {
namespace {

nn::Model SingleConvModel(int64_t channels, int64_t size, int64_t k,
                          int64_t stride, int64_t pad, int64_t out_c) {
  Rng rng(9);
  nn::Model m("probe", Shape({channels, size, size}), {"a", "b"});
  m.AddLayer(std::make_shared<nn::Conv2d>("conv", channels, out_c, k, stride,
                                          pad, &rng));
  return m;
}

TEST(CustomCostModelTest, ConvFormulasMatchHandComputation) {
  // 1-channel 5x5 input, 3x3 kernel, stride 2, no padding, 2 output kernels:
  // the worked example of Fig. 3/4.
  db::Database db;
  auto converted = ConvertModel(SingleConvModel(1, 5, 3, 2, 0, 2), {}, &db);
  ASSERT_TRUE(converted.ok());
  auto est = EstimateCustom(*converted);
  ASSERT_EQ(est.size(), 1u);
  // k_in = 9, out = 2x2 windows -> T_in = 4 * 9 = 36 (Fig. 3's 36 rows).
  // S_J = 1/9, k_out = 9*2=18 -> T_out = 36 * (1/9) * 18 = 72 (Eq. 5).
  // Cost (Eq. 7 + reshape scan): T_in + T_out*S_J*k_in + T_out + T_in.
  const double t_in = 36, t_out = 72;
  const double expected = t_in + t_out * (1.0 / 9.0) * 9 + t_out + t_in;
  EXPECT_DOUBLE_EQ(est[0].cost_units, expected);
  EXPECT_DOUBLE_EQ(est[0].output_rows, 2 * 2 * 2.0);  // out_c*out_h*out_w
}

TEST(CustomCostModelTest, CostGrowsWithKernelAndMapSize) {
  db::Database db1, db2, db3;
  auto small = ConvertModel(SingleConvModel(3, 16, 1, 1, 0, 3),
                            {"a", PreJoinStrategy::kNone,
                             BnSqlMode::kRunningStats, false},
                            &db1);
  auto mid = ConvertModel(SingleConvModel(3, 16, 3, 1, 1, 3),
                          {"b", PreJoinStrategy::kNone,
                           BnSqlMode::kRunningStats, false},
                          &db2);
  auto big = ConvertModel(SingleConvModel(3, 32, 3, 1, 1, 3),
                          {"c", PreJoinStrategy::kNone,
                           BnSqlMode::kRunningStats, false},
                          &db3);
  ASSERT_TRUE(small.ok() && mid.ok() && big.ok());
  EXPECT_LT(TotalUnits(EstimateCustom(*small)), TotalUnits(EstimateCustom(*mid)));
  EXPECT_LT(TotalUnits(EstimateCustom(*mid)), TotalUnits(EstimateCustom(*big)));
}

TEST(DefaultEstimateTest, OverestimatesAndCompounds) {
  // The blind model's error must grow (multiplicatively) with layer count —
  // the paper's "exaggerated exponentially" observation.
  nn::BuilderOptions b;
  b.input_size = 16;
  b.base_channels = 4;
  nn::Model model = nn::BuildStudentCnn(b);
  db::Database db;
  auto converted = ConvertModel(model, {}, &db);
  ASSERT_TRUE(converted.ok());
  auto blind = EstimateDefault(*converted, &db);
  ASSERT_TRUE(blind.ok());
  auto custom = EstimateCustom(*converted);
  ASSERT_EQ(blind->size(), custom.size());

  // Total: grossly overestimated.
  EXPECT_GT(TotalUnits(*blind), 100 * TotalUnits(custom));
  // Per-conv overestimation ratio increases layer over layer.
  std::vector<double> ratios;
  for (size_t i = 0; i < custom.size(); ++i) {
    if (custom[i].kind == nn::LayerKind::kConv2d && custom[i].cost_units > 0) {
      ratios.push_back((*blind)[i].cost_units / custom[i].cost_units);
    }
  }
  ASSERT_GE(ratios.size(), 3u);
  EXPECT_GT(ratios[1], ratios[0]);
  EXPECT_GT(ratios[2], ratios[1]);
}

TEST(DefaultEstimateTest, LeavesNoShellTablesBehind) {
  nn::BuilderOptions b;
  b.input_size = 16;
  b.base_channels = 2;
  nn::Model model = nn::BuildStudentCnn(b);
  db::Database db;
  auto converted = ConvertModel(model, {}, &db);
  ASSERT_TRUE(converted.ok());
  const size_t before = db.catalog().TableNames().size();
  ASSERT_TRUE(EstimateDefault(*converted, &db).ok());
  EXPECT_EQ(db.catalog().TableNames().size(), before);
}

TEST(CustomCostModelTest, LinearOpsScanOnce) {
  Rng rng(4);
  nn::Model m("linear_ops", Shape({2, 8, 8}), {"a", "b"});
  auto bn = std::make_shared<nn::BatchNorm>("bn", 2);
  bn->RandomizeStats(&rng);
  m.AddLayer(bn);
  m.AddLayer(std::make_shared<nn::ReluLayer>("relu"));
  db::Database db;
  auto converted = ConvertModel(m, {}, &db);
  ASSERT_TRUE(converted.ok());
  auto est = EstimateCustom(*converted);
  ASSERT_EQ(est.size(), 2u);
  EXPECT_DOUBLE_EQ(est[0].cost_units, 2 * 8 * 8);
  EXPECT_DOUBLE_EQ(est[1].cost_units, 2 * 8 * 8);
}

TEST(CalibrationTest, ProducesPlausibleSecondsPerUnit) {
  db::Database db;
  auto r = CalibrateSecondsPerUnit(&db, 50000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(*r, 1e-11);
  EXPECT_LT(*r, 1e-5);
  // The calibration table is cleaned up.
  EXPECT_FALSE(db.catalog().HasTable("__calib"));
}

}  // namespace
}  // namespace dl2sql::core
