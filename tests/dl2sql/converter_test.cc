/// \file converter_test.cc
/// \brief Property tests: the generated SQL pipelines must compute the exact
/// same function as native minidl inference, across layer types, geometries
/// and pre-join strategies (Table II's "Supported" matrix).
#include <gtest/gtest.h>

#include "dl2sql/converter.h"
#include "dl2sql/pipeline.h"
#include "nn/builders.h"

namespace dl2sql::core {
namespace {

using nn::BuilderOptions;
using nn::Model;

/// Runs both paths and returns the max element-wise divergence.
double CompareNativeVsSql(const Model& model, const ConvertOptions& options,
                          uint64_t input_seed) {
  db::Database db;
  auto converted = ConvertModel(model, options, &db);
  EXPECT_TRUE(converted.ok()) << converted.status().ToString();
  if (!converted.ok()) return 1e9;
  Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());

  Rng rng(input_seed);
  Tensor input = Tensor::Random(model.input_shape(), &rng, 1.0f);

  auto device = Device::Create(DeviceKind::kEdgeCpu);
  auto native = model.Forward(input, device.get());
  EXPECT_TRUE(native.ok()) << native.status().ToString();
  auto sql_out = runner.Infer(input);
  EXPECT_TRUE(sql_out.ok()) << sql_out.status().ToString();
  if (!native.ok() || !sql_out.ok()) return 1e9;

  Tensor nat = std::move(native).ValueOrDie();
  auto flat = nat.Reshape(Shape({nat.NumElements()}));
  EXPECT_TRUE(flat.ok());
  auto diff = MaxAbsDiff(*flat, *sql_out);
  EXPECT_TRUE(diff.ok()) << diff.status().ToString();
  return diff.ok() ? *diff : 1e9;
}

// The double-precision SQL path vs float32 native inference justifies a
// relatively loose tolerance; systematic errors would exceed it by orders of
// magnitude.
constexpr double kTol = 2e-3;

TEST(Dl2SqlConverter, StudentCnnMatchesNative) {
  BuilderOptions opts;
  opts.input_size = 16;
  opts.base_channels = 4;
  Model m = nn::BuildStudentCnn(opts);
  EXPECT_LT(CompareNativeVsSql(m, {}, 7), kTol);
}

TEST(Dl2SqlConverter, LeNetMatchesNative) {
  BuilderOptions opts;
  opts.input_size = 16;
  opts.base_channels = 4;
  Model m = nn::BuildLeNet(opts);
  EXPECT_LT(CompareNativeVsSql(m, {}, 11), kTol);
}

TEST(Dl2SqlConverter, VggTinyMatchesNative) {
  BuilderOptions opts;
  opts.input_size = 12;
  opts.base_channels = 3;
  Model m = nn::BuildVggTiny(opts);
  EXPECT_LT(CompareNativeVsSql(m, {}, 13), kTol);
}

TEST(Dl2SqlConverter, ResNetMatchesNative) {
  BuilderOptions opts;
  opts.input_size = 12;
  opts.base_channels = 4;
  auto m = nn::BuildResNet(7, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_LT(CompareNativeVsSql(*m, {}, 17), kTol);
}

TEST(Dl2SqlConverter, DenseNetMatchesNative) {
  BuilderOptions opts;
  opts.input_size = 10;
  opts.base_channels = 4;
  Model m = nn::BuildDenseNetTiny(opts);
  EXPECT_LT(CompareNativeVsSql(m, {}, 19), kTol);
}

TEST(Dl2SqlConverter, AttentionMlpMatchesNative) {
  BuilderOptions opts;
  opts.input_size = 6;
  Model m = nn::BuildAttentionMlp(opts);
  EXPECT_LT(CompareNativeVsSql(m, {}, 23), kTol);
}

TEST(Dl2SqlConverter, PreJoinMappingMatchesNative) {
  BuilderOptions opts;
  opts.input_size = 16;
  opts.base_channels = 4;
  Model m = nn::BuildStudentCnn(opts);
  ConvertOptions c;
  c.prejoin = PreJoinStrategy::kPreJoinMapping;
  EXPECT_LT(CompareNativeVsSql(m, c, 29), kTol);
}

TEST(Dl2SqlConverter, PreJoinFullMatchesNative) {
  BuilderOptions opts;
  opts.input_size = 16;
  opts.base_channels = 4;
  Model m = nn::BuildStudentCnn(opts);
  ConvertOptions c;
  c.prejoin = PreJoinStrategy::kPreJoinFull;
  EXPECT_LT(CompareNativeVsSql(m, c, 31), kTol);
}

TEST(Dl2SqlConverter, ReluAsUpdateMatchesNative) {
  BuilderOptions opts;
  opts.input_size = 12;
  opts.base_channels = 3;
  Model m = nn::BuildStudentCnn(opts);
  ConvertOptions c;
  c.relu_as_update = true;
  EXPECT_LT(CompareNativeVsSql(m, c, 37), kTol);
}

/// Parameterized geometry sweep for a single conv layer: kernel size,
/// stride, padding, channel combinations.
struct ConvCase {
  int64_t in_c, size, out_c, k, stride, pad;
};

class ConvGeometryTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometryTest, SingleConvMatchesNative) {
  const ConvCase c = GetParam();
  Rng rng(c.k * 100 + c.stride * 10 + c.pad);
  Model m("conv_probe", Shape({c.in_c, c.size, c.size}), {"a", "b"});
  m.AddLayer(std::make_shared<nn::Conv2d>("conv", c.in_c, c.out_c, c.k,
                                          c.stride, c.pad, &rng));
  EXPECT_LT(CompareNativeVsSql(m, {}, 41), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometryTest,
    ::testing::Values(ConvCase{1, 5, 1, 3, 1, 0}, ConvCase{1, 5, 2, 3, 2, 0},
                      ConvCase{3, 8, 4, 3, 1, 1}, ConvCase{2, 9, 3, 5, 2, 2},
                      ConvCase{4, 7, 2, 1, 1, 0}, ConvCase{2, 6, 5, 3, 3, 1},
                      ConvCase{3, 10, 3, 5, 1, 2}, ConvCase{1, 12, 8, 3, 2, 1}));

TEST(Dl2SqlConverter, DeconvMatchesNative) {
  Rng rng(5);
  Model m("deconv_probe", Shape({2, 5, 5}), {"a"});
  m.AddLayer(std::make_shared<nn::Deconv2d>("deconv", 2, 3, 3, 2, 1, &rng));
  EXPECT_LT(CompareNativeVsSql(m, {}, 43), kTol);
}

TEST(Dl2SqlConverter, PaperBatchStatsModeRuns) {
  // Q4-faithful BN: runs and produces a normalized (mean~0) activation; it
  // intentionally does NOT match running-stats inference.
  Rng rng(5);
  Model m("bnprobe", Shape({2, 6, 6}), {"a"});
  m.AddLayer(std::make_shared<nn::Conv2d>("conv", 2, 2, 3, 1, 1, &rng));
  auto bn = std::make_shared<nn::BatchNorm>("bn", 2);
  bn->RandomizeStats(&rng);
  m.AddLayer(bn);

  db::Database db;
  ConvertOptions c;
  c.bn_mode = BnSqlMode::kPaperBatchStats;
  auto converted = ConvertModel(m, c, &db);
  ASSERT_TRUE(converted.ok()) << converted.status().ToString();
  Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  Tensor input = Tensor::Random(m.input_shape(), &rng, 1.0f);
  auto out = runner.Infer(input);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  double mean = 0;
  for (int64_t i = 0; i < out->NumElements(); ++i) mean += out->at(i);
  mean /= static_cast<double>(out->NumElements());
  EXPECT_NEAR(mean, 0.0, 0.05);
}

TEST(Dl2SqlConverter, MappingTableMatchesAlgorithm2Shape) {
  LayerGeometry g;
  g.in_c = 1;
  g.in_h = 5;
  g.in_w = 5;
  g.kernel = 3;
  g.stride = 2;
  g.pad = 0;
  g.out_h = 2;
  g.out_w = 2;
  g.out_c = 2;
  db::Table t = GenerateMappingTable(g);
  // 4 windows x 9 patch positions, no padding -> 36 rows (Fig. 3's example).
  EXPECT_EQ(t.num_rows(), 36);
  // TupleIDs must be valid input positions.
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    const int64_t tid = t.column(2).ints()[static_cast<size_t>(r)];
    EXPECT_GE(tid, 0);
    EXPECT_LT(tid, 25);
  }
}

TEST(Dl2SqlConverter, KernelTableShape) {
  Rng rng(3);
  Tensor w = Tensor::Random(Shape({2, 3, 3, 3}), &rng);
  db::Table t = GenerateKernelTable(w);
  EXPECT_EQ(t.num_rows(), 2 * 3 * 3 * 3);
}

TEST(Dl2SqlConverter, StorageBytesGrowWithDepth) {
  BuilderOptions opts;
  opts.input_size = 16;
  opts.base_channels = 4;
  db::Database db1, db2;
  auto m1 = nn::BuildResNet(5, opts);
  auto m2 = nn::BuildResNet(9, opts);
  ASSERT_TRUE(m1.ok() && m2.ok());
  ConvertOptions c1{"m1", PreJoinStrategy::kNone, BnSqlMode::kRunningStats,
                    false};
  ConvertOptions c2{"m2", PreJoinStrategy::kNone, BnSqlMode::kRunningStats,
                    false};
  auto conv1 = ConvertModel(*m1, c1, &db1);
  auto conv2 = ConvertModel(*m2, c2, &db2);
  ASSERT_TRUE(conv1.ok() && conv2.ok());
  auto b1 = StaticStorageBytes(*conv1, db1);
  auto b2 = StaticStorageBytes(*conv2, db2);
  ASSERT_TRUE(b1.ok() && b2.ok());
  EXPECT_GT(*b2, *b1);
}

}  // namespace
}  // namespace dl2sql::core
