/// \file pipeline_test.cc
/// \brief Dl2SqlRunner behaviour: input validation, runtime-table hygiene,
/// repeated runs, profiling output, and the unsupported-operator matrix of
/// Table II.
#include <gtest/gtest.h>

#include "dl2sql/pipeline.h"
#include "nn/builders.h"
#include "nn/layers.h"

namespace dl2sql::core {
namespace {

nn::Model SmallModel() {
  nn::BuilderOptions b;
  b.input_size = 8;
  b.base_channels = 2;
  b.num_classes = 3;
  return nn::BuildStudentCnn(b);
}

TEST(PipelineTest, RejectsWrongInputShape) {
  db::Database db;
  auto converted = ConvertModel(SmallModel(), {}, &db);
  ASSERT_TRUE(converted.ok());
  Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  Tensor wrong(Shape({3, 4, 4}));
  EXPECT_FALSE(runner.Infer(wrong).ok());
}

TEST(PipelineTest, RuntimeTablesAreCleanedUp) {
  db::Database db;
  auto converted = ConvertModel(SmallModel(), {}, &db);
  ASSERT_TRUE(converted.ok());
  const auto runtime_tables = converted->RuntimeTables();
  EXPECT_GT(runtime_tables.size(), 5u);
  Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  Rng rng(1);
  Tensor in = Tensor::Random(Shape({3, 8, 8}), &rng, 1.0f);
  ASSERT_TRUE(runner.Infer(in).ok());
  for (const auto& t : runtime_tables) {
    EXPECT_FALSE(db.catalog().HasTable(t)) << t << " left behind";
  }
}

TEST(PipelineTest, RepeatedRunsAreDeterministic) {
  db::Database db;
  auto converted = ConvertModel(SmallModel(), {}, &db);
  ASSERT_TRUE(converted.ok());
  Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  Rng rng(2);
  Tensor in = Tensor::Random(Shape({3, 8, 8}), &rng, 1.0f);
  auto a = runner.Infer(in);
  auto b = runner.Infer(in);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(*MaxAbsDiff(*a, *b), 0.0);
}

TEST(PipelineTest, StatsCoverEveryOp) {
  db::Database db;
  auto converted = ConvertModel(SmallModel(), {}, &db);
  ASSERT_TRUE(converted.ok());
  const size_t num_ops = converted->ops.size();
  Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  Rng rng(3);
  Tensor in = Tensor::Random(Shape({3, 8, 8}), &rng, 1.0f);
  PipelineRunStats stats;
  ASSERT_TRUE(runner.Infer(in, &stats).ok());
  EXPECT_EQ(stats.per_op.size(), num_ops);
  EXPECT_GT(stats.infer_seconds, 0.0);
  // Join and group-by appear in the clause breakdown (conv layers).
  EXPECT_GT(stats.clause_costs.Get("join"), 0.0);
  EXPECT_GT(stats.clause_costs.Get("groupby"), 0.0);
}

TEST(PipelineTest, PredictMatchesNativeArgmax) {
  nn::Model model = SmallModel();
  db::Database db;
  auto converted = ConvertModel(model, {}, &db);
  ASSERT_TRUE(converted.ok());
  Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    Tensor in = Tensor::Random(model.input_shape(), &rng, 1.0f);
    auto native = model.Predict(in, device.get());
    auto via_sql = runner.Predict(in);
    ASSERT_TRUE(native.ok() && via_sql.ok());
    EXPECT_EQ(*native, *via_sql);
  }
}

TEST(PipelineTest, InstanceNormMatchesNative) {
  // Table II lists instance normalization as Supported: the grouped-stats
  // translation must match the native operator.
  nn::Model m("inorm", Shape({3, 6, 6}), {"a"});
  m.AddLayer(std::make_shared<nn::InstanceNorm>("in", 3));
  db::Database db;
  auto converted = ConvertModel(m, {}, &db);
  ASSERT_TRUE(converted.ok()) << converted.status().ToString();
  Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  Rng rng(7);
  Tensor in = Tensor::Random(m.input_shape(), &rng, 2.0f);
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  auto native = m.Forward(in, device.get());
  auto via_sql = runner.Infer(in);
  ASSERT_TRUE(native.ok() && via_sql.ok())
      << native.status().ToString() << " / " << via_sql.status().ToString();
  auto flat = native->Reshape(Shape({native->NumElements()}));
  EXPECT_LT(*MaxAbsDiff(*flat, *via_sql), 2e-3);
}

TEST(PipelineTest, InstanceNormBatchedMatchesNative) {
  nn::Model m("inorm", Shape({2, 5, 5}), {"a"});
  m.AddLayer(std::make_shared<nn::InstanceNorm>("in", 2));
  db::Database db;
  ConvertOptions c;
  c.batched = true;
  auto converted = ConvertModel(m, c, &db);
  ASSERT_TRUE(converted.ok()) << converted.status().ToString();
  Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  Rng rng(9);
  std::vector<Tensor> batch;
  for (int i = 0; i < 3; ++i) {
    batch.push_back(Tensor::Random(m.input_shape(), &rng, 2.0f));
  }
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  auto out = runner.InferBatch(batch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (size_t b = 0; b < batch.size(); ++b) {
    auto native = m.Forward(batch[b], device.get());
    ASSERT_TRUE(native.ok());
    auto flat = native->Reshape(Shape({native->NumElements()}));
    EXPECT_LT(*MaxAbsDiff(*flat, (*out)[b]), 2e-3) << "batch element " << b;
  }
}

TEST(PipelineTest, ConvertedModelListsStaticTables) {
  db::Database db;
  ConvertOptions opts;
  opts.table_prefix = "probe";
  auto converted = ConvertModel(SmallModel(), opts, &db);
  ASSERT_TRUE(converted.ok());
  for (const auto& t : converted->static_tables) {
    EXPECT_TRUE(db.catalog().HasTable(t)) << t;
    EXPECT_EQ(t.rfind("probe_", 0), 0u) << t << " not under the prefix";
  }
}

TEST(PipelineTest, DistinctPrefixesCoexist) {
  db::Database db;
  ConvertOptions a, b;
  a.table_prefix = "ma";
  b.table_prefix = "mb";
  auto ca = ConvertModel(SmallModel(), a, &db);
  auto cb = ConvertModel(SmallModel(), b, &db);
  ASSERT_TRUE(ca.ok() && cb.ok());
  Dl2SqlRunner ra(&db, std::move(ca).ValueOrDie());
  Dl2SqlRunner rb(&db, std::move(cb).ValueOrDie());
  Rng rng(5);
  Tensor in = Tensor::Random(Shape({3, 8, 8}), &rng, 1.0f);
  auto oa = ra.Infer(in);
  auto ob = rb.Infer(in);
  ASSERT_TRUE(oa.ok() && ob.ok());
  EXPECT_DOUBLE_EQ(*MaxAbsDiff(*oa, *ob), 0.0);
}

}  // namespace
}  // namespace dl2sql::core
