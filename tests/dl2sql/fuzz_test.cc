/// \file fuzz_test.cc
/// \brief Randomized property test: random valid layer stacks must translate
/// to SQL and match native inference, across pre-join strategies and batch
/// mode. Exercises the converter's shape handling far beyond the curated
/// architectures.
#include <gtest/gtest.h>

#include "dl2sql/pipeline.h"
#include "nn/blocks.h"
#include "nn/layers.h"
#include "nn/model.h"

namespace dl2sql::core {
namespace {

/// Builds a random model: conv/bn/relu/pool/identity-block body over a CHW
/// activation, then flatten + fc + softmax.
nn::Model RandomModel(uint64_t seed) {
  Rng rng(seed);
  const int64_t in_c = rng.UniformInt(1, 3);
  const int64_t size = rng.UniformInt(8, 14);
  nn::Model m("fuzz_" + std::to_string(seed), Shape({in_c, size, size}),
              {"a", "b", "c"});
  Shape shape({in_c, size, size});
  const int body_ops = static_cast<int>(rng.UniformInt(1, 5));
  for (int i = 0; i < body_ops; ++i) {
    const std::string tag = "op" + std::to_string(i);
    switch (rng.UniformInt(0, 4)) {
      case 0: {  // conv with random geometry that keeps the map non-empty
        const int64_t out_c = rng.UniformInt(1, 4);
        const int64_t k = 1 + 2 * rng.UniformInt(0, 1);  // 1 or 3
        const int64_t stride = rng.UniformInt(1, 2);
        const int64_t pad = k / 2;
        auto conv = std::make_shared<nn::Conv2d>(tag, shape[0], out_c, k,
                                                 stride, pad, &rng);
        auto s = conv->OutputShape(shape);
        if (!s.ok() || (*s)[1] < 2) continue;  // keep room for later pooling
        shape = *s;
        m.AddLayer(conv);
        break;
      }
      case 1: {  // bn
        auto bn = std::make_shared<nn::BatchNorm>(tag, shape[0]);
        bn->RandomizeStats(&rng);
        m.AddLayer(bn);
        break;
      }
      case 2:
        m.AddLayer(std::make_shared<nn::ReluLayer>(tag));
        break;
      case 3: {  // pool
        if (shape[1] < 2 || shape[2] < 2) continue;
        auto pool = rng.Bernoulli(0.5)
                        ? nn::LayerPtr(std::make_shared<nn::MaxPool2d>(tag, 2, 2))
                        : nn::LayerPtr(std::make_shared<nn::AvgPool2d>(tag, 2, 2));
        auto s = pool->OutputShape(shape);
        if (!s.ok()) continue;
        shape = *s;
        m.AddLayer(pool);
        break;
      }
      case 4: {  // identity block
        m.AddLayer(std::make_shared<nn::IdentityBlock>(tag, shape[0], 3, 2,
                                                       &rng));
        break;
      }
    }
  }
  m.AddLayer(std::make_shared<nn::Flatten>("flatten"));
  m.AddLayer(std::make_shared<nn::Linear>("fc", shape.NumElements(), 3, &rng));
  m.AddLayer(std::make_shared<nn::SoftmaxLayer>("softmax"));
  return m;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomModelMatchesNative) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  nn::Model model = RandomModel(seed);
  ASSERT_TRUE(model.OutputShape().ok());

  Rng rng(seed * 31 + 1);
  Tensor input = Tensor::Random(model.input_shape(), &rng, 1.0f);
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  auto native = model.Forward(input, device.get());
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  auto flat = native->Reshape(Shape({native->NumElements()}));

  // Every strategy x batch combination must agree with native inference.
  const PreJoinStrategy kStrategies[] = {PreJoinStrategy::kNone,
                                         PreJoinStrategy::kPreJoinFull};
  for (PreJoinStrategy strategy : kStrategies) {
    for (bool batched : {false, true}) {
      db::Database db;
      ConvertOptions opts;
      opts.prejoin = strategy;
      opts.batched = batched;
      auto converted = ConvertModel(model, opts, &db);
      ASSERT_TRUE(converted.ok())
          << "seed " << seed << ": " << converted.status().ToString();
      Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
      auto out = runner.Infer(input);
      ASSERT_TRUE(out.ok()) << "seed " << seed << " strategy "
                            << static_cast<int>(strategy) << " batched "
                            << batched << ": " << out.status().ToString();
      auto diff = MaxAbsDiff(*flat, *out);
      ASSERT_TRUE(diff.ok());
      EXPECT_LT(*diff, 2e-3)
          << "seed " << seed << " strategy " << static_cast<int>(strategy)
          << " batched " << batched << "\n"
          << model.Summary();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(1, 25));

}  // namespace
}  // namespace dl2sql::core
