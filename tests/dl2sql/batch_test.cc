/// \file batch_test.cc
/// \brief Batched DL2SQL pipelines: one SQL execution infers a whole batch of
/// keyframes and must match native inference exactly, across architectures,
/// pre-join strategies and ReLU modes; the vectorized nUDF path must leave
/// query answers unchanged.
#include <gtest/gtest.h>

#include "dl2sql/pipeline.h"
#include "nn/builders.h"
#include "workload/testbed.h"

namespace dl2sql::core {
namespace {

std::vector<Tensor> MakeBatch(const Shape& shape, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> out;
  for (int i = 0; i < n; ++i) out.push_back(Tensor::Random(shape, &rng, 1.0f));
  return out;
}

double BatchVsNative(const nn::Model& model, ConvertOptions options, int n,
                     uint64_t seed) {
  options.batched = true;
  db::Database db;
  auto converted = ConvertModel(model, options, &db);
  EXPECT_TRUE(converted.ok()) << converted.status().ToString();
  if (!converted.ok()) return 1e9;
  Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());

  auto inputs = MakeBatch(model.input_shape(), n, seed);
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  auto batch_out = runner.InferBatch(inputs);
  EXPECT_TRUE(batch_out.ok()) << batch_out.status().ToString();
  if (!batch_out.ok()) return 1e9;

  double worst = 0;
  for (int i = 0; i < n; ++i) {
    auto native = model.Forward(inputs[static_cast<size_t>(i)], device.get());
    EXPECT_TRUE(native.ok());
    auto flat = native->Reshape(Shape({native->NumElements()}));
    auto diff = MaxAbsDiff(*flat, (*batch_out)[static_cast<size_t>(i)]);
    EXPECT_TRUE(diff.ok()) << diff.status().ToString();
    if (diff.ok()) worst = std::max(worst, *diff);
  }
  return worst;
}

constexpr double kTol = 2e-3;

TEST(BatchedPipeline, StudentCnnBatchMatchesNative) {
  nn::BuilderOptions b;
  b.input_size = 16;
  b.base_channels = 4;
  EXPECT_LT(BatchVsNative(nn::BuildStudentCnn(b), {}, 5, 7), kTol);
}

TEST(BatchedPipeline, ResNetBatchMatchesNative) {
  nn::BuilderOptions b;
  b.input_size = 12;
  b.base_channels = 4;
  auto m = nn::BuildResNet(7, b);
  ASSERT_TRUE(m.ok());
  EXPECT_LT(BatchVsNative(*m, {}, 3, 11), kTol);
}

TEST(BatchedPipeline, DenseNetBatchMatchesNative) {
  nn::BuilderOptions b;
  b.input_size = 10;
  b.base_channels = 4;
  EXPECT_LT(BatchVsNative(nn::BuildDenseNetTiny(b), {}, 3, 13), kTol);
}

TEST(BatchedPipeline, AttentionBatchMatchesNative) {
  nn::BuilderOptions b;
  b.input_size = 6;
  EXPECT_LT(BatchVsNative(nn::BuildAttentionMlp(b), {}, 4, 17), kTol);
}

TEST(BatchedPipeline, PreJoinStrategiesBatchMatchNative) {
  nn::BuilderOptions b;
  b.input_size = 16;
  b.base_channels = 4;
  nn::Model m = nn::BuildStudentCnn(b);
  for (auto strategy :
       {PreJoinStrategy::kPreJoinMapping, PreJoinStrategy::kPreJoinFull}) {
    ConvertOptions c;
    c.prejoin = strategy;
    EXPECT_LT(BatchVsNative(m, c, 4, 19), kTol)
        << "strategy " << static_cast<int>(strategy);
  }
}

TEST(BatchedPipeline, ReluAsUpdateBatchMatchesNative) {
  nn::BuilderOptions b;
  b.input_size = 12;
  b.base_channels = 3;
  ConvertOptions c;
  c.relu_as_update = true;
  EXPECT_LT(BatchVsNative(nn::BuildStudentCnn(b), c, 3, 23), kTol);
}

TEST(BatchedPipeline, BatchOfOneEqualsSingle) {
  nn::BuilderOptions b;
  b.input_size = 8;
  b.base_channels = 2;
  nn::Model m = nn::BuildStudentCnn(b);

  db::Database db1, db2;
  ConvertOptions single, batched;
  single.table_prefix = "s";
  batched.table_prefix = "b";
  batched.batched = true;
  auto c1 = ConvertModel(m, single, &db1);
  auto c2 = ConvertModel(m, batched, &db2);
  ASSERT_TRUE(c1.ok() && c2.ok());
  Dl2SqlRunner r1(&db1, std::move(c1).ValueOrDie());
  Dl2SqlRunner r2(&db2, std::move(c2).ValueOrDie());
  Rng rng(3);
  Tensor in = Tensor::Random(m.input_shape(), &rng, 1.0f);
  auto o1 = r1.Infer(in);
  auto o2 = r2.Infer(in);  // delegates to InferBatch({in})
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_LT(*MaxAbsDiff(*o1, *o2), 1e-9);
}

TEST(BatchedPipeline, EmptyBatchIsEmpty) {
  nn::BuilderOptions b;
  b.input_size = 8;
  b.base_channels = 2;
  db::Database db;
  ConvertOptions c;
  c.batched = true;
  auto converted = ConvertModel(nn::BuildStudentCnn(b), c, &db);
  ASSERT_TRUE(converted.ok());
  Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  auto out = runner.InferBatch({});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(BatchedPipeline, PaperBatchStatsPerImage) {
  // Batched Q4-BN normalizes each image by its own statistics.
  Rng rng(5);
  nn::Model m("bnprobe", Shape({2, 6, 6}), {"a"});
  m.AddLayer(std::make_shared<nn::Conv2d>("conv", 2, 2, 3, 1, 1, &rng));
  auto bn = std::make_shared<nn::BatchNorm>("bn", 2);
  bn->RandomizeStats(&rng);
  m.AddLayer(bn);
  db::Database db;
  ConvertOptions c;
  c.bn_mode = BnSqlMode::kPaperBatchStats;
  c.batched = true;
  auto converted = ConvertModel(m, c, &db);
  ASSERT_TRUE(converted.ok()) << converted.status().ToString();
  Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  auto inputs = MakeBatch(m.input_shape(), 3, 29);
  auto out = runner.InferBatch(inputs);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (const auto& img : *out) {
    double mean = 0;
    for (int64_t i = 0; i < img.NumElements(); ++i) mean += img.at(i);
    mean /= static_cast<double>(img.NumElements());
    EXPECT_NEAR(mean, 0.0, 0.05);
  }
}

TEST(BatchedEngine, AgreesWithRowAtATimeEngines) {
  workload::TestbedOptions options;
  options.dataset.video_rows = 250;
  options.dataset.keyframe_size = 8;
  options.dataset.seed = 41;
  options.model_base_channels = 2;
  options.histogram_samples = 12;
  auto tb = workload::Testbed::Create(options);
  ASSERT_TRUE(tb.ok());

  // A separately wired batched DL2SQL-OP engine.
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  engines::Dl2SqlEngine::Options o;
  o.enable_optimizer_hints = true;
  o.convert.batched = true;
  engines::Dl2SqlEngine batched(device, o);
  ASSERT_TRUE(batched.AttachTablesFrom((*tb)->master_db()).ok());
  for (const auto& [model, name, kind] :
       {std::tuple<const nn::Model*, const char*, engines::NUdfOutput>{
            &(*tb)->detect_model(), "nUDF_detect", engines::NUdfOutput::kBool},
        {&(*tb)->classify_model(), "nUDF_classify",
         engines::NUdfOutput::kLabel},
        {&(*tb)->recog_model(), "nUDF_recog",
         engines::NUdfOutput::kClassId}}) {
    engines::ModelDeployment dep;
    dep.udf_name = name;
    dep.output = kind;
    auto sel = engines::LearnSelectivityHistogram(*model, kind, device.get(),
                                                  12, 3);
    ASSERT_TRUE(sel.ok());
    dep.selectivity = *sel;
    ASSERT_TRUE(batched.DeployModel(*model, dep).ok());
  }

  workload::QueryParams p;
  p.selectivity = 0.2;
  for (int type = 1; type <= 4; ++type) {
    const std::string sql = workload::MakeQueryOfType(type, p, nullptr);
    engines::QueryCost c1, c2;
    auto ref = (*tb)->dl2sql_op()->ExecuteCollaborative(sql, &c1);
    auto got = batched.ExecuteCollaborative(sql, &c2);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString() << "\n" << sql;
    EXPECT_EQ(ref->ToString(1000), got->ToString(1000)) << "type " << type;
  }
}

}  // namespace
}  // namespace dl2sql::core
