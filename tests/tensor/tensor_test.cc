/// \file tensor_test.cc
/// \brief Tensor library tests: shapes, elementwise ops, matmul, im2col
/// (validated against a naive direct convolution), padding, blob round-trip.
#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "tensor/tensor_blob.h"

namespace dl2sql {
namespace {

TEST(ShapeTest, Basics) {
  Shape s({2, 3, 5});
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.NumElements(), 30);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s.ToString(), "[2, 3, 5]");
  EXPECT_EQ(s.Strides(), (std::vector<int64_t>{15, 5, 1}));
  EXPECT_EQ(Shape({}).NumElements(), 1);
  EXPECT_TRUE(Shape({2, 3}) == Shape({2, 3}));
  EXPECT_TRUE(Shape({2, 3}) != Shape({3, 2}));
}

TEST(TensorTest, ConstructionAndAccess) {
  Tensor t(Shape({2, 2}));
  EXPECT_EQ(t.NumElements(), 4);
  EXPECT_FLOAT_EQ(t.at(0), 0.f);
  t.at2(1, 1) = 5.f;
  EXPECT_FLOAT_EQ(t.at(3), 5.f);
  t.Fill(2.f);
  EXPECT_FLOAT_EQ(t.at(2), 2.f);
}

TEST(TensorTest, CopySharesBufferCloneDoesNot) {
  Tensor a(Shape({3}), {1.f, 2.f, 3.f});
  Tensor b = a;          // aliases
  Tensor c = a.Clone();  // deep copy
  b.at(0) = 9.f;
  EXPECT_FLOAT_EQ(a.at(0), 9.f);
  EXPECT_FLOAT_EQ(c.at(0), 1.f);
}

TEST(TensorTest, ReshapeChecksElementCount) {
  Tensor t(Shape({2, 3}));
  EXPECT_TRUE(t.Reshape(Shape({6})).ok());
  EXPECT_TRUE(t.Reshape(Shape({3, 2})).ok());
  EXPECT_FALSE(t.Reshape(Shape({5})).ok());
}

TEST(TensorOpsTest, AddMulShapeChecks) {
  Tensor a(Shape({2}), {1.f, 2.f});
  Tensor b(Shape({2}), {3.f, 4.f});
  auto sum = Add(a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_FLOAT_EQ(sum->at(1), 6.f);
  auto prod = Mul(a, b);
  ASSERT_TRUE(prod.ok());
  EXPECT_FLOAT_EQ(prod->at(1), 8.f);
  EXPECT_FALSE(Add(a, Tensor(Shape({3}))).ok());
}

TEST(TensorOpsTest, Relu) {
  Tensor a(Shape({4}), {-1.f, 0.f, 2.f, -0.5f});
  Tensor r = Relu(a);
  EXPECT_FLOAT_EQ(r.at(0), 0.f);
  EXPECT_FLOAT_EQ(r.at(2), 2.f);
  EXPECT_FLOAT_EQ(r.at(3), 0.f);
}

TEST(TensorOpsTest, MatMulSmall) {
  Tensor a(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor b(Shape({3, 2}), {7, 8, 9, 10, 11, 12});
  auto c = MatMul(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_FLOAT_EQ(c->at2(0, 0), 58.f);
  EXPECT_FLOAT_EQ(c->at2(0, 1), 64.f);
  EXPECT_FLOAT_EQ(c->at2(1, 0), 139.f);
  EXPECT_FLOAT_EQ(c->at2(1, 1), 154.f);
  EXPECT_FALSE(MatMul(a, a).ok());  // inner-dim mismatch
}

TEST(TensorOpsTest, SoftmaxSumsToOne) {
  Tensor a(Shape({4}), {0.5f, -1.f, 3.f, 0.f});
  auto s = Softmax(a);
  ASSERT_TRUE(s.ok());
  float sum = 0;
  for (int64_t i = 0; i < 4; ++i) {
    sum += s->at(i);
    EXPECT_GT(s->at(i), 0.f);
  }
  EXPECT_NEAR(sum, 1.f, 1e-6);
  // Invariance under shift.
  Tensor b(Shape({4}), {100.5f, 99.f, 103.f, 100.f});
  auto s2 = Softmax(b);
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(s->at(i), s2->at(i), 1e-6);
}

TEST(TensorOpsTest, PadChw) {
  Tensor a(Shape({1, 2, 2}), {1, 2, 3, 4});
  auto p = PadChw(a, 1);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->shape(), Shape({1, 4, 4}));
  EXPECT_FLOAT_EQ(p->at3(0, 0, 0), 0.f);
  EXPECT_FLOAT_EQ(p->at3(0, 1, 1), 1.f);
  EXPECT_FLOAT_EQ(p->at3(0, 2, 2), 4.f);
  EXPECT_FALSE(PadChw(a, -1).ok());
  // pad 0 is identity.
  auto p0 = PadChw(a, 0);
  EXPECT_EQ(p0->shape(), a.shape());
}

/// Naive direct convolution used as the ground truth for im2col.
float DirectConvAt(const Tensor& in, const Tensor& w, int64_t oc, int64_t oy,
                   int64_t ox, int64_t stride, int64_t pad) {
  const int64_t in_c = in.shape()[0];
  const int64_t h = in.shape()[1];
  const int64_t wd = in.shape()[2];
  const int64_t k = w.shape()[2];
  float acc = 0;
  for (int64_t ic = 0; ic < in_c; ++ic) {
    for (int64_t i = 0; i < k; ++i) {
      for (int64_t j = 0; j < k; ++j) {
        const int64_t y = oy * stride + i - pad;
        const int64_t x = ox * stride + j - pad;
        if (y < 0 || y >= h || x < 0 || x >= wd) continue;
        acc += in.at3(ic, y, x) *
               w.at((((oc * in_c) + ic) * k + i) * k + j);
      }
    }
  }
  return acc;
}

struct Im2ColCase {
  int64_t c, size, k, stride, pad;
};

class Im2ColPropertyTest : public ::testing::TestWithParam<Im2ColCase> {};

TEST_P(Im2ColPropertyTest, MatchesDirectConvolution) {
  const Im2ColCase p = GetParam();
  Rng rng(p.c * 100 + p.k);
  Tensor in = Tensor::Random(Shape({p.c, p.size, p.size}), &rng, 1.0f);
  Tensor w = Tensor::Random(Shape({2, p.c, p.k, p.k}), &rng, 1.0f);

  auto cols = Im2Col(in, p.k, p.k, p.stride, p.pad);
  ASSERT_TRUE(cols.ok()) << cols.status().ToString();
  auto wmat = w.Reshape(Shape({2, p.c * p.k * p.k}));
  ASSERT_TRUE(wmat.ok());
  auto out = MatMul(*wmat, *cols);
  ASSERT_TRUE(out.ok());

  const int64_t out_size = (p.size + 2 * p.pad - p.k) / p.stride + 1;
  ASSERT_EQ(out->shape()[1], out_size * out_size);
  for (int64_t oc = 0; oc < 2; ++oc) {
    for (int64_t oy = 0; oy < out_size; ++oy) {
      for (int64_t ox = 0; ox < out_size; ++ox) {
        EXPECT_NEAR(out->at2(oc, oy * out_size + ox),
                    DirectConvAt(in, w, oc, oy, ox, p.stride, p.pad), 1e-4)
            << "oc=" << oc << " oy=" << oy << " ox=" << ox;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColPropertyTest,
    ::testing::Values(Im2ColCase{1, 5, 3, 1, 0}, Im2ColCase{1, 5, 3, 2, 0},
                      Im2ColCase{3, 6, 3, 1, 1}, Im2ColCase{2, 7, 5, 2, 2},
                      Im2ColCase{4, 4, 1, 1, 0}, Im2ColCase{2, 8, 3, 3, 1}));

TEST(TensorOpsTest, Im2ColErrors) {
  Tensor in(Shape({1, 3, 3}));
  EXPECT_FALSE(Im2Col(in, 5, 5, 1, 0).ok());   // kernel larger than input
  EXPECT_FALSE(Im2Col(in, 2, 2, 0, 0).ok());   // bad stride
  EXPECT_FALSE(Im2Col(Tensor(Shape({3, 3})), 2, 2, 1, 0).ok());  // not CHW
}

TEST(TensorOpsTest, MaxAbsDiff) {
  Tensor a(Shape({2}), {1.f, 2.f});
  Tensor b(Shape({2}), {1.5f, 1.f});
  auto d = MaxAbsDiff(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 1.0);
  EXPECT_FALSE(MaxAbsDiff(a, Tensor(Shape({3}))).ok());
}

TEST(TensorBlobTest, RoundTrip) {
  Rng rng(3);
  Tensor t = Tensor::Random(Shape({3, 4, 5}), &rng, 2.0f);
  const std::string blob = EncodeTensorBlob(t);
  auto back = DecodeTensorBlob(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shape(), t.shape());
  auto diff = MaxAbsDiff(t, *back);
  EXPECT_DOUBLE_EQ(*diff, 0.0);
}

TEST(TensorBlobTest, RejectsCorruptInput) {
  EXPECT_FALSE(DecodeTensorBlob("").ok());
  EXPECT_FALSE(DecodeTensorBlob("garbage").ok());
  Tensor t(Shape({2, 2}));
  std::string blob = EncodeTensorBlob(t);
  blob.resize(blob.size() - 4);  // truncate payload
  EXPECT_FALSE(DecodeTensorBlob(blob).ok());
}

}  // namespace
}  // namespace dl2sql
