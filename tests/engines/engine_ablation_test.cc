/// \file engine_ablation_test.cc
/// \brief Behavioural properties of the three strategies beyond result
/// equivalence: selectivity (in)sensitivity, device profiles, pre-join
/// equivalence through the engine, deploy caching, and boundary accounting.
#include <gtest/gtest.h>

#include "workload/testbed.h"

namespace dl2sql::workload {
namespace {

using engines::CollaborativeEngine;
using engines::QueryCost;

TestbedOptions SmallOptions() {
  TestbedOptions options;
  options.dataset.video_rows = 400;
  options.dataset.keyframe_size = 8;
  options.dataset.seed = 31;
  options.model_base_channels = 2;
  options.histogram_samples = 16;
  return options;
}

TEST(EngineAblation, UdfInsensitiveToSelectivityOpSensitive) {
  auto tb = Testbed::Create(SmallOptions());
  ASSERT_TRUE(tb.ok()) << tb.status().ToString();
  // DB-UDF infers on every scanned keyframe: its nUDF call count does not
  // change with the fabric predicates' selectivity. DL2SQL-OP's does —
  // Table V's observation.
  QueryParams lo, hi;
  lo.selectivity = 0.01;
  hi.selectivity = 0.5;

  auto& udf_db = (*tb)->udf()->database();
  udf_db.reset_neural_calls();
  QueryCost c;
  ASSERT_TRUE((*tb)->udf()->ExecuteCollaborative(MakeType3Query(lo), &c).ok());
  const int64_t udf_lo = udf_db.neural_calls();
  udf_db.reset_neural_calls();
  ASSERT_TRUE((*tb)->udf()->ExecuteCollaborative(MakeType3Query(hi), &c).ok());
  const int64_t udf_hi = udf_db.neural_calls();
  EXPECT_EQ(udf_lo, udf_hi);

  auto& op_db = (*tb)->dl2sql_op()->database();
  op_db.reset_neural_calls();
  ASSERT_TRUE(
      (*tb)->dl2sql_op()->ExecuteCollaborative(MakeType3Query(lo), &c).ok());
  const int64_t op_lo = op_db.neural_calls();
  op_db.reset_neural_calls();
  ASSERT_TRUE(
      (*tb)->dl2sql_op()->ExecuteCollaborative(MakeType3Query(hi), &c).ok());
  const int64_t op_hi = op_db.neural_calls();
  EXPECT_LT(op_lo, op_hi);
  EXPECT_LT(op_hi, udf_hi);
}

TEST(EngineAblation, GpuProfileShiftsCostsAsInFig8) {
  TestbedOptions cpu_opts = SmallOptions();
  cpu_opts.device = DeviceKind::kServerCpu;
  TestbedOptions gpu_opts = SmallOptions();
  gpu_opts.device = DeviceKind::kServerGpu;
  auto cpu = Testbed::Create(cpu_opts);
  auto gpu = Testbed::Create(gpu_opts);
  ASSERT_TRUE(cpu.ok() && gpu.ok());

  QueryParams p;
  p.selectivity = 0.2;
  const std::string sql = MakeType3Query(p);

  QueryCost cpu_udf, gpu_udf;
  ASSERT_TRUE((*cpu)->udf()->ExecuteCollaborative(sql, &cpu_udf).ok());
  ASSERT_TRUE((*gpu)->udf()->ExecuteCollaborative(sql, &gpu_udf).ok());
  // The GPU cuts the UDF's inference share but inflates its loading share
  // (per-call transfers), Fig. 8's DB-UDF anomaly.
  EXPECT_LT(gpu_udf.inference_seconds, cpu_udf.inference_seconds + 1e-9);
  EXPECT_GT(gpu_udf.loading_seconds, cpu_udf.loading_seconds);
}

TEST(EngineAblation, EdgeSlowerThanServer) {
  TestbedOptions edge_opts = SmallOptions();
  TestbedOptions server_opts = SmallOptions();
  server_opts.device = DeviceKind::kServerCpu;
  auto edge = Testbed::Create(edge_opts);
  auto server = Testbed::Create(server_opts);
  ASSERT_TRUE(edge.ok() && server.ok());
  QueryParams p;
  p.selectivity = 0.2;
  const std::string sql = MakeType3Query(p);
  QueryCost ce, cs;
  ASSERT_TRUE((*edge)->dl2sql_op()->ExecuteCollaborative(sql, &ce).ok());
  ASSERT_TRUE((*server)->dl2sql_op()->ExecuteCollaborative(sql, &cs).ok());
  EXPECT_LT(cs.Total(), ce.Total());
}

TEST(EngineAblation, CachedDeploymentSkipsLoading) {
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  engines::Dl2SqlEngine::Options cached;
  cached.enable_optimizer_hints = true;
  cached.redeploy_per_query = false;
  engines::Dl2SqlEngine engine(device, cached);

  db::Database master;
  DatasetOptions d;
  d.video_rows = 200;
  d.keyframe_size = 8;
  ASSERT_TRUE(PopulateDatabase(&master, d).ok());
  ASSERT_TRUE(engine.AttachTablesFrom(master).ok());

  TestbedOptions opts = SmallOptions();
  nn::Model model = BuildRepositoryModel(opts, 2, 5);
  engines::ModelDeployment dep;
  dep.udf_name = "nUDF_detect";
  dep.output = engines::NUdfOutput::kBool;
  auto sel = engines::LearnSelectivityHistogram(
      model, engines::NUdfOutput::kBool, device.get(), 8, 3);
  ASSERT_TRUE(sel.ok());
  dep.selectivity = *sel;
  ASSERT_TRUE(engine.DeployModel(model, dep).ok());

  QueryParams p;
  p.selectivity = 0.3;
  QueryCost first, second;
  ASSERT_TRUE(
      engine.ExecuteCollaborative(MakeType3Query(p), &first).ok());
  ASSERT_TRUE(
      engine.ExecuteCollaborative(MakeType3Query(p), &second).ok());
  // With cached deployment the conversion cost is paid once at DeployModel,
  // so per-query loading stays minimal and stable.
  EXPECT_LT(second.loading_seconds, 0.05);
}

TEST(EngineAblation, PreJoinStrategiesAgreeThroughEngine) {
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  db::Database master;
  DatasetOptions d;
  d.video_rows = 200;
  d.keyframe_size = 8;
  d.seed = 77;
  ASSERT_TRUE(PopulateDatabase(&master, d).ok());

  TestbedOptions opts = SmallOptions();
  nn::Model model = BuildRepositoryModel(opts, 2, 5);
  auto sel = engines::LearnSelectivityHistogram(
      model, engines::NUdfOutput::kBool, device.get(), 8, 3);
  ASSERT_TRUE(sel.ok());

  QueryParams p;
  p.selectivity = 0.3;
  const std::string sql = MakeType3Query(p);

  std::vector<std::string> results;
  for (auto strategy :
       {core::PreJoinStrategy::kNone, core::PreJoinStrategy::kPreJoinMapping,
        core::PreJoinStrategy::kPreJoinFull}) {
    engines::Dl2SqlEngine::Options o;
    o.enable_optimizer_hints = true;
    o.convert.prejoin = strategy;
    engines::Dl2SqlEngine engine(device, o);
    ASSERT_TRUE(engine.AttachTablesFrom(master).ok());
    engines::ModelDeployment dep;
    dep.udf_name = "nUDF_detect";
    dep.output = engines::NUdfOutput::kBool;
    dep.selectivity = *sel;
    ASSERT_TRUE(engine.DeployModel(model, dep).ok());
    QueryCost c;
    auto r = engine.ExecuteCollaborative(sql, &c);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results.push_back(r->ToString(1000));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(EngineAblation, IndependentBoundaryScalesWithData) {
  // Doubling the boundary latency must increase the loading cost.
  auto tb = Testbed::Create(SmallOptions());
  ASSERT_TRUE(tb.ok());
  QueryParams p;
  p.selectivity = 0.2;
  const std::string sql = MakeType3Query(p);
  QueryCost before;
  ASSERT_TRUE((*tb)->independent()->ExecuteCollaborative(sql, &before).ok());
  (*tb)->independent()->boundary().latency_s *= 100;
  (*tb)->independent()->boundary().bandwidth_bytes_per_s /= 100;
  QueryCost after;
  ASSERT_TRUE((*tb)->independent()->ExecuteCollaborative(sql, &after).ok());
  EXPECT_GT(after.loading_seconds, before.loading_seconds);
}

TEST(EngineAblation, NUdfOnWrongArgumentTypeFails) {
  auto tb = Testbed::Create(SmallOptions());
  ASSERT_TRUE(tb.ok());
  // Passing a numeric column to the nUDF must fail cleanly, not crash.
  QueryCost c;
  auto r = (*tb)->udf()->ExecuteCollaborative(
      "SELECT count(*) FROM video V WHERE nUDF_detect(V.transID) = TRUE", &c);
  EXPECT_FALSE(r.ok());
}

TEST(EngineAblation, TwoUdfOrderingPrunesSecondModel) {
  // The hint rules order detect (selective) before classify; the classify
  // model then sees only the survivors.
  auto tb = Testbed::Create(SmallOptions());
  ASSERT_TRUE(tb.ok());
  QueryParams p;
  p.selectivity = 0.5;
  auto& op_db = (*tb)->dl2sql_op()->database();
  op_db.reset_neural_calls();
  QueryCost c;
  ASSERT_TRUE(
      (*tb)->dl2sql_op()->ExecuteCollaborative(MakeTwoUdfQuery(p), &c).ok());
  const int64_t op_calls = op_db.neural_calls();

  auto& plain_db = (*tb)->dl2sql()->database();
  plain_db.reset_neural_calls();
  ASSERT_TRUE(
      (*tb)->dl2sql()->ExecuteCollaborative(MakeTwoUdfQuery(p), &c).ok());
  const int64_t plain_calls = plain_db.neural_calls();
  EXPECT_LT(op_calls, plain_calls);
}

}  // namespace
}  // namespace dl2sql::workload
