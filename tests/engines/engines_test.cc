/// \file engines_test.cc
/// \brief Cross-strategy equivalence: DB-PyTorch, DB-UDF, DL2SQL and
/// DL2SQL-OP must produce identical answers for every collaborative query
/// type — they differ only in *where* the work happens.
#include <gtest/gtest.h>

#include "workload/testbed.h"

namespace dl2sql::workload {
namespace {

using engines::CollaborativeEngine;
using engines::QueryCost;

class EnginesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TestbedOptions options;
    options.dataset.video_rows = 300;
    options.dataset.keyframe_size = 8;
    options.dataset.seed = 99;
    options.model_base_channels = 2;
    options.histogram_samples = 16;
    auto tb = Testbed::Create(options);
    ASSERT_TRUE(tb.ok()) << tb.status().ToString();
    testbed_ = std::move(tb).ValueOrDie().release();
  }
  static void TearDownTestSuite() {
    delete testbed_;
    testbed_ = nullptr;
  }

  /// Canonical multiset rendering of a result table (row order-insensitive).
  static std::vector<std::string> Canonical(const db::Table& t) {
    std::vector<std::string> rows;
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      std::string row;
      for (int c = 0; c < t.num_columns(); ++c) {
        const db::Value v = t.column(c).GetValue(r);
        if (v.type() == db::DataType::kFloat64) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.6g", v.float_value());
          row += buf;
        } else {
          row += v.ToString();
        }
        row += "|";
      }
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  void ExpectAllEnginesAgree(const std::string& sql) {
    std::vector<std::vector<std::string>> results;
    std::vector<std::string> names;
    for (CollaborativeEngine* e : testbed_->AllEngines()) {
      QueryCost cost;
      auto r = e->ExecuteCollaborative(sql, &cost);
      ASSERT_TRUE(r.ok()) << e->name() << ": " << r.status().ToString()
                          << "\nSQL: " << sql;
      results.push_back(Canonical(*r));
      names.push_back(e->name());
    }
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[0], results[i])
          << names[0] << " vs " << names[i] << " differ on:\n"
          << sql;
    }
  }

  static Testbed* testbed_;
};

Testbed* EnginesTest::testbed_ = nullptr;

TEST_F(EnginesTest, Type1Agree) {
  QueryParams p;
  p.selectivity = 0.05;
  ExpectAllEnginesAgree(MakeType1Query(p));
}

TEST_F(EnginesTest, Type2Agree) {
  QueryParams p;
  p.selectivity = 0.05;
  ExpectAllEnginesAgree(MakeType2Query(p));
}

TEST_F(EnginesTest, Type3Agree) {
  QueryParams p;
  p.selectivity = 0.05;
  ExpectAllEnginesAgree(MakeType3Query(p));
}

TEST_F(EnginesTest, Type4Agree) {
  QueryParams p;
  p.selectivity = 0.05;
  ExpectAllEnginesAgree(MakeType4Query(p));
}

TEST_F(EnginesTest, Type4EqualityAgree) {
  QueryParams p;
  p.selectivity = 0.05;
  ExpectAllEnginesAgree(MakeType4EqualityQuery(p));
}

TEST_F(EnginesTest, TwoUdfQueryAgree) {
  QueryParams p;
  p.selectivity = 0.1;
  ExpectAllEnginesAgree(MakeTwoUdfQuery(p));
}

TEST_F(EnginesTest, CostBreakdownIsPopulated) {
  QueryParams p;
  p.selectivity = 0.05;
  for (CollaborativeEngine* e : testbed_->AllEngines()) {
    QueryCost cost;
    auto r = e->ExecuteCollaborative(MakeType3Query(p), &cost);
    ASSERT_TRUE(r.ok()) << e->name();
    EXPECT_GT(cost.Total(), 0.0) << e->name();
    EXPECT_GE(cost.inference_seconds, 0.0) << e->name();
    EXPECT_GE(cost.loading_seconds, 0.0) << e->name();
    EXPECT_GE(cost.relational_seconds, 0.0) << e->name();
  }
}

TEST_F(EnginesTest, HintsPruneInference) {
  // At a selective relational predicate, DL2SQL-OP should delay the nUDF and
  // evaluate it on far fewer rows than plain DL2SQL (which pushes it to the
  // scan).
  QueryParams p;
  p.selectivity = 0.02;
  const std::string sql = MakeType3Query(p);

  testbed_->dl2sql()->database().reset_neural_calls();
  QueryCost c1;
  ASSERT_TRUE(testbed_->dl2sql()->ExecuteCollaborative(sql, &c1).ok());
  const int64_t plain_calls = testbed_->dl2sql()->database().neural_calls();

  testbed_->dl2sql_op()->database().reset_neural_calls();
  QueryCost c2;
  ASSERT_TRUE(testbed_->dl2sql_op()->ExecuteCollaborative(sql, &c2).ok());
  const int64_t op_calls = testbed_->dl2sql_op()->database().neural_calls();

  EXPECT_LT(op_calls, plain_calls)
      << "hints should prune nUDF invocations (plain=" << plain_calls
      << ", op=" << op_calls << ")";
}

TEST_F(EnginesTest, SymmetricHashJoinKicksIn) {
  QueryParams p;
  p.selectivity = 0.05;
  const std::string sql = MakeType4EqualityQuery(p);
  const int64_t before =
      testbed_->dl2sql_op()->database().symmetric_joins_executed();
  QueryCost cost;
  ASSERT_TRUE(testbed_->dl2sql_op()->ExecuteCollaborative(sql, &cost).ok());
  const int64_t after =
      testbed_->dl2sql_op()->database().symmetric_joins_executed();
  EXPECT_GT(after, before) << "hint rule 3 should pick the symmetric join";
}

TEST(EngineCalibrationTest, SqlCalibrationReDerivedFromVectorizedThroughput) {
  // The vectorized batch-at-a-time engine closed most of the gap to the
  // ClickHouse-class engine the paper deploys on: the calibration factor was
  // re-derived from micro_db's measured scan-filter/group-by throughput
  // (~120-150M rows/s vs ClickHouse's published 200-500M rows/s) and must
  // stay at that measured value, strictly above the interpreted row path's
  // 0.05 and at most 1 (a factor above 1 would claim we outrun the engine
  // we calibrate against).
  EXPECT_DOUBLE_EQ(CollaborativeEngine::kSqlEngineCalibration, 0.4);
  EXPECT_GT(CollaborativeEngine::kSqlEngineCalibration, 0.05);
  EXPECT_LE(CollaborativeEngine::kSqlEngineCalibration, 1.0);
}

TEST_F(EnginesTest, StorageAccounting) {
  auto script = testbed_->independent()->ScriptBytes("nUDF_detect");
  auto blob = testbed_->udf()->CompiledBlobBytes("nUDF_detect");
  auto relational = testbed_->dl2sql()->RelationalStorageBytes("nUDF_detect");
  ASSERT_TRUE(script.ok() && blob.ok() && relational.ok());
  // Table IV's ordering: DL2SQL > DB-PyTorch (script) > DB-UDF (blob).
  EXPECT_GT(*script, *blob);
  EXPECT_GT(*relational, *script);
}

}  // namespace
}  // namespace dl2sql::workload
