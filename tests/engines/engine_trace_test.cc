/// \file engine_trace_test.cc
/// \brief End-to-end trace capture across the three inference strategies:
/// one collaborative query per engine must yield a valid Chrome trace whose
/// spans nest engine phase -> plan node -> morsel / NN layer.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/trace.h"
#include "workload/testbed.h"

namespace dl2sql::workload {
namespace {

using engines::CollaborativeEngine;
using engines::QueryCost;

class EngineTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TestbedOptions options;
    options.dataset.video_rows = 300;
    options.dataset.keyframe_size = 8;
    options.dataset.seed = 99;
    options.model_base_channels = 2;
    options.histogram_samples = 16;
    auto tb = Testbed::Create(options);
    ASSERT_TRUE(tb.ok()) << tb.status().ToString();
    testbed_ = std::move(tb).ValueOrDie().release();
  }
  static void TearDownTestSuite() {
    delete testbed_;
    testbed_ = nullptr;
  }

  void SetUp() override {
    TraceCollector::Global().SetEnabled(false);
    TraceCollector::Global().Clear();
  }
  void TearDown() override {
    TraceCollector::Global().SetEnabled(false);
    TraceCollector::Global().Clear();
  }

  /// Runs one collaborative query on `engine` with tracing on and returns
  /// the captured events.
  static std::vector<TraceEvent> CaptureQuery(CollaborativeEngine* engine,
                                              const std::string& sql) {
    TraceCollector::Global().Clear();
    TraceCollector::Global().SetEnabled(true);
    QueryCost cost;
    auto r = engine->ExecuteCollaborative(sql, &cost);
    TraceCollector::Global().SetEnabled(false);
    EXPECT_TRUE(r.ok()) << engine->name() << ": " << r.status().ToString();
    return TraceCollector::Global().Snapshot();
  }

  static const TraceEvent* FindQuerySpan(const std::vector<TraceEvent>& events,
                                         const std::string& name) {
    for (const TraceEvent& e : events) {
      if (std::strcmp(e.category, "engine") == 0 && e.name == name) return &e;
    }
    return nullptr;
  }

  /// True when `e` starts inside the `outer` span's [start, end) window.
  static bool InWindow(const TraceEvent& e, const TraceEvent& outer) {
    return e.start_us >= outer.start_us &&
           e.start_us <= outer.start_us + outer.duration_us;
  }

  /// A span of `category` lexically nested under `outer`: same thread,
  /// deeper, inside the window.
  static bool HasNestedSpan(const std::vector<TraceEvent>& events,
                            const TraceEvent& outer, const char* category) {
    for (const TraceEvent& e : events) {
      if (std::strcmp(e.category, category) == 0 && e.tid == outer.tid &&
          e.depth > outer.depth && InWindow(e, outer)) {
        return true;
      }
    }
    return false;
  }

  /// A span of `category` anywhere in the query window — pool morsels run on
  /// worker threads, so they appear on their own timeline rows.
  static bool HasSpanInWindow(const std::vector<TraceEvent>& events,
                              const TraceEvent& outer, const char* category) {
    for (const TraceEvent& e : events) {
      if (std::strcmp(e.category, category) == 0 && InWindow(e, outer)) {
        return true;
      }
    }
    return false;
  }

  static void ExpectValidChromeJson(const std::string& json) {
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    int braces = 0, brackets = 0;
    bool in_string = false;
    for (size_t i = 0; i < json.size(); ++i) {
      const char c = json[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') in_string = true;
      if (c == '{') ++braces;
      if (c == '}') --braces;
      if (c == '[') ++brackets;
      if (c == ']') --brackets;
      ASSERT_GE(braces, 0);
      ASSERT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_FALSE(in_string);
  }

  static Testbed* testbed_;
};

Testbed* EngineTraceTest::testbed_ = nullptr;

#if !defined(DL2SQL_TRACING_DISABLED)

TEST_F(EngineTraceTest, IndependentEngineTraceNestsPhases) {
  QueryParams p;
  p.selectivity = 0.05;
  const auto events = CaptureQuery(testbed_->independent(), MakeType1Query(p));
  const TraceEvent* query = FindQuerySpan(events, "independent.query");
  ASSERT_NE(query, nullptr);
  // Engine phase -> relational plan node on the driving thread.
  EXPECT_TRUE(HasNestedSpan(events, *query, "db"));
  // Relational work ran in morsels and model inference traced per NN layer.
  EXPECT_TRUE(HasSpanInWindow(events, *query, "pool"));
  EXPECT_TRUE(HasSpanInWindow(events, *query, "nn"));
  ExpectValidChromeJson(TraceCollector::Global().ToChromeTraceJson());
}

TEST_F(EngineTraceTest, UdfEngineTraceNestsPhases) {
  QueryParams p;
  p.selectivity = 0.05;
  const auto events = CaptureQuery(testbed_->udf(), MakeType1Query(p));
  const TraceEvent* query = FindQuerySpan(events, "udf.query");
  ASSERT_NE(query, nullptr);
  EXPECT_TRUE(HasNestedSpan(events, *query, "db"));
  EXPECT_TRUE(HasSpanInWindow(events, *query, "pool"));
  // The in-database UDF calls the model per tuple batch: NN layer spans.
  EXPECT_TRUE(HasSpanInWindow(events, *query, "nn"));
  ExpectValidChromeJson(TraceCollector::Global().ToChromeTraceJson());
}

TEST_F(EngineTraceTest, Dl2SqlEngineTraceNestsPhases) {
  QueryParams p;
  p.selectivity = 0.05;
  const auto events = CaptureQuery(testbed_->dl2sql(), MakeType1Query(p));
  const TraceEvent* query = FindQuerySpan(events, "dl2sql.query");
  ASSERT_NE(query, nullptr);
  EXPECT_TRUE(HasNestedSpan(events, *query, "db"));
  EXPECT_TRUE(HasSpanInWindow(events, *query, "pool"));
  // DL2SQL lowers inference to relational SQL — no nn spans, by design:
  // model math appears as plan-node and morsel spans instead.
  EXPECT_FALSE(HasSpanInWindow(events, *query, "nn"));
  ExpectValidChromeJson(TraceCollector::Global().ToChromeTraceJson());
}

TEST_F(EngineTraceTest, QuerySpanDepthsFormAHierarchy) {
  QueryParams p;
  p.selectivity = 0.05;
  const auto events = CaptureQuery(testbed_->udf(), MakeType1Query(p));
  const TraceEvent* query = FindQuerySpan(events, "udf.query");
  ASSERT_NE(query, nullptr);
  // The engine span is the root of its thread's hierarchy: nothing on that
  // thread within the window sits above it.
  for (const TraceEvent& e : events) {
    if (e.tid == query->tid && InWindow(e, *query) && &e != query) {
      EXPECT_GT(e.depth, query->depth) << e.name;
    }
  }
}

#else

TEST_F(EngineTraceTest, CompiledOutTracingRecordsNothing) {
  QueryParams p;
  p.selectivity = 0.05;
  const auto events = CaptureQuery(testbed_->udf(), MakeType1Query(p));
  EXPECT_TRUE(events.empty());
}

#endif  // !defined(DL2SQL_TRACING_DISABLED)

}  // namespace
}  // namespace dl2sql::workload
