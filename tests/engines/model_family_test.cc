/// \file model_family_test.cc
/// \brief Conditional model families (Type 3 model selection): variant
/// routing, engine agreement (DB-UDF vs DL2SQL-OP), and the documented
/// limitation of independent processing.
#include <gtest/gtest.h>

#include "workload/testbed.h"

namespace dl2sql::workload {
namespace {

using engines::ModelFamilyDeployment;
using engines::NUdfOutput;
using engines::QueryCost;

ModelFamilyDeployment MakeFamily(const TestbedOptions& opts, Device* device) {
  ModelFamilyDeployment family;
  family.udf_name = "nUDF_detect_cond";
  family.output = NUdfOutput::kBool;
  // Most-specific first: harsh conditions, humid conditions, catch-all.
  const std::tuple<double, double, uint64_t> kVariants[] = {
      {80.0, 30.0, 101}, {50.0, 0.0, 102}, {0.0, 0.0, 103}};
  for (const auto& [humidity, temperature, seed] : kVariants) {
    ModelFamilyDeployment::Variant v;
    v.humidity_min = humidity;
    v.temperature_min = temperature;
    v.model = BuildRepositoryModel(opts, 2, seed);
    auto sel = engines::LearnSelectivityHistogram(
        v.model, NUdfOutput::kBool, device, 12, seed);
    DL2SQL_CHECK(sel.ok());
    v.selectivity = *sel;
    family.variants.push_back(std::move(v));
  }
  return family;
}

TEST(ModelFamilyTest, SelectRoutesByCondition) {
  TestbedOptions opts;
  opts.dataset.keyframe_size = 8;
  opts.model_base_channels = 2;
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  ModelFamilyDeployment family = MakeFamily(opts, device.get());
  EXPECT_EQ(family.Select(85.0, 35.0), 0u);  // harsh: humid and hot
  EXPECT_EQ(family.Select(85.0, 10.0), 1u);  // humid only
  EXPECT_EQ(family.Select(60.0, 35.0), 1u);
  EXPECT_EQ(family.Select(10.0, 10.0), 2u);  // catch-all
}

TEST(ModelFamilyTest, MergedSelectivityPoolsHistograms) {
  TestbedOptions opts;
  opts.dataset.keyframe_size = 8;
  opts.model_base_channels = 2;
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  ModelFamilyDeployment family = MakeFamily(opts, device.get());
  EXPECT_EQ(family.MergedSelectivity().TotalCount(), 3 * 12);
}

class ModelFamilyEngines : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TestbedOptions options;
    options.dataset.video_rows = 300;
    options.dataset.keyframe_size = 8;
    options.dataset.seed = 71;
    options.model_base_channels = 2;
    options.histogram_samples = 12;
    auto tb = Testbed::Create(options);
    ASSERT_TRUE(tb.ok()) << tb.status().ToString();
    testbed_ = std::move(tb).ValueOrDie().release();

    auto family = MakeFamily(options, testbed_->device());
    ASSERT_TRUE(testbed_->udf()->DeployModelFamily(family).ok());
    ASSERT_TRUE(testbed_->dl2sql()->DeployModelFamily(family).ok());
    ASSERT_TRUE(testbed_->dl2sql_op()->DeployModelFamily(family).ok());
  }
  static void TearDownTestSuite() {
    delete testbed_;
    testbed_ = nullptr;
  }
  static Testbed* testbed_;
};

Testbed* ModelFamilyEngines::testbed_ = nullptr;

TEST_F(ModelFamilyEngines, UdfAndDl2SqlAgree) {
  QueryParams p;
  p.selectivity = 0.3;
  const std::string sql = MakeType3ModelSelectionQuery(p);
  QueryCost c1, c2, c3;
  auto udf = testbed_->udf()->ExecuteCollaborative(sql, &c1);
  auto tight = testbed_->dl2sql()->ExecuteCollaborative(sql, &c2);
  auto tight_op = testbed_->dl2sql_op()->ExecuteCollaborative(sql, &c3);
  ASSERT_TRUE(udf.ok()) << udf.status().ToString();
  ASSERT_TRUE(tight.ok()) << tight.status().ToString();
  ASSERT_TRUE(tight_op.ok()) << tight_op.status().ToString();
  EXPECT_EQ(udf->ToString(1000), tight->ToString(1000));
  EXPECT_EQ(udf->ToString(1000), tight_op->ToString(1000));
}

TEST_F(ModelFamilyEngines, FamilyPredicateIsInherentlyDelayed) {
  // The family call references columns from BOTH relations (keyframe from V,
  // conditions from F), so it cannot be pushed below the join even without
  // hints: both engine modes evaluate it only on join survivors. This is the
  // structural reason Type 3 queries "depend on Q_db" in Table I.
  QueryParams p;
  p.selectivity = 0.05;
  const std::string sql = MakeType3ModelSelectionQuery(p);
  testbed_->dl2sql()->database().reset_neural_calls();
  QueryCost c;
  ASSERT_TRUE(testbed_->dl2sql()->ExecuteCollaborative(sql, &c).ok());
  const int64_t plain = testbed_->dl2sql()->database().neural_calls();
  testbed_->dl2sql_op()->database().reset_neural_calls();
  ASSERT_TRUE(testbed_->dl2sql_op()->ExecuteCollaborative(sql, &c).ok());
  const int64_t hinted = testbed_->dl2sql_op()->database().neural_calls();
  EXPECT_EQ(hinted, plain);
  // Far fewer calls than keyframes in the table: the join pruned first.
  EXPECT_LT(plain, 300);
  EXPECT_GT(plain, 0);
}

TEST_F(ModelFamilyEngines, IndependentProcessingDeclines) {
  TestbedOptions opts;
  opts.dataset.keyframe_size = 8;
  opts.model_base_channels = 2;
  auto family = MakeFamily(opts, testbed_->device());
  // Table III: the independent strategy needs hand-crafted per-query
  // coordination; generic conditional model selection is not supported.
  EXPECT_TRUE(testbed_->independent()
                  ->DeployModelFamily(family)
                  .IsNotImplemented());
}

TEST_F(ModelFamilyEngines, WrongArityRejected) {
  QueryCost c;
  auto r = testbed_->udf()->ExecuteCollaborative(
      "SELECT count(*) FROM video V WHERE nUDF_detect_cond(V.keyframe) = "
      "TRUE",
      &c);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace dl2sql::workload
