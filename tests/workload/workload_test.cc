/// \file workload_test.cc
/// \brief Dataset generator and query-template tests: table ratios, column
/// distributions, selectivity calibration, and template well-formedness.
#include <gtest/gtest.h>

#include "db/sql/parser.h"
#include "engines/engine.h"
#include "nn/builders.h"
#include "tensor/tensor_blob.h"
#include "workload/dataset.h"
#include "workload/queries.h"
#include "workload/testbed.h"

namespace dl2sql::workload {
namespace {

TEST(DatasetTest, SizesFollowPaperRatio) {
  DatasetOptions opts;
  opts.video_rows = 10000;
  const DatasetSizes s = ComputeSizes(opts);
  EXPECT_EQ(s.video, 10000);
  EXPECT_EQ(s.fabric, 1000);
  EXPECT_EQ(s.client, 100);
  EXPECT_EQ(s.order, 1000);
  EXPECT_EQ(s.device, 100);
}

class PopulatedDataset : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new db::Database();
    DatasetOptions opts;
    opts.video_rows = 2000;
    opts.keyframe_size = 4;
    ASSERT_TRUE(PopulateDatabase(db_, opts).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static db::Database* db_;
};

db::Database* PopulatedDataset::db_ = nullptr;

TEST_F(PopulatedDataset, AllFiveTablesExist) {
  for (const char* name : {"fabric", "video", "client", "orders", "device"}) {
    EXPECT_TRUE(db_->catalog().HasTable(name)) << name;
    EXPECT_NE(db_->catalog().GetStats(name), nullptr) << name;
  }
}

TEST_F(PopulatedDataset, ForeignKeysResolve) {
  auto r = db_->Execute(
      "SELECT count(*) FROM video V, fabric F WHERE V.transID = F.transID");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Every video row references an existing fabric transaction.
  EXPECT_EQ(r->column(0).GetValue(0).int_value(), 2000);
}

TEST_F(PopulatedDataset, HumidityIsUniform) {
  auto r = db_->Execute(
      "SELECT count(*), min(humidity), max(humidity) FROM fabric");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).GetValue(0).int_value(), 200);
  EXPECT_GE(r->column(1).GetValue(0).float_value(), 0.0);
  EXPECT_LE(r->column(2).GetValue(0).float_value(), 100.0);
}

TEST_F(PopulatedDataset, DatesAreIsoFormatted) {
  auto r = db_->Execute(
      "SELECT count(*) FROM fabric WHERE printdate >= '2021-01-01' AND "
      "printdate <= '2021-12-31'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).GetValue(0).int_value(), 200);
}

TEST_F(PopulatedDataset, KeyframesDecode) {
  auto r = db_->Execute("SELECT keyframe FROM video LIMIT 4");
  ASSERT_TRUE(r.ok());
  for (int64_t i = 0; i < r->num_rows(); ++i) {
    auto t = DecodeTensorBlob(r->column(0).strings()[static_cast<size_t>(i)]);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t->shape(), Shape({3, 4, 4}));
  }
}

TEST_F(PopulatedDataset, SelectivityCalibration) {
  // The template's predicate block should pass ~selectivity of fabric rows.
  for (double target : {0.04, 0.16, 0.5}) {
    QueryParams p;
    p.selectivity = target;
    // Extract the fabric-side predicates by running the count directly.
    const double per = std::sqrt(target);
    const std::string sql =
        "SELECT count(*) FROM fabric F WHERE F.humidity > " +
        std::to_string(100.0 * (1.0 - per)) + " AND F.temperature > " +
        std::to_string(40.0 * (1.0 - per));
    auto r = db_->Execute(sql);
    ASSERT_TRUE(r.ok());
    const double frac =
        static_cast<double>(r->column(0).GetValue(0).int_value()) / 200.0;
    EXPECT_NEAR(frac, target, std::max(0.08, target * 0.8)) << sql;
  }
}

TEST_F(PopulatedDataset, DeterministicForSeed) {
  db::Database other;
  DatasetOptions opts;
  opts.video_rows = 2000;
  opts.keyframe_size = 4;
  ASSERT_TRUE(PopulateDatabase(&other, opts).ok());
  auto a = db_->Execute("SELECT sum(meter) FROM fabric");
  auto b = other.Execute("SELECT sum(meter) FROM fabric");
  EXPECT_DOUBLE_EQ(a->column(0).GetValue(0).float_value(),
                   b->column(0).GetValue(0).float_value());
}

TEST(QueryTemplatesTest, AllTemplatesParse) {
  QueryParams p;
  for (const std::string& sql :
       {MakeType1Query(p), MakeType2Query(p), MakeType3Query(p),
        MakeType4Query(p), MakeType4EqualityQuery(p), MakeTwoUdfQuery(p)}) {
    EXPECT_TRUE(db::sql::ParseStatement(sql).ok()) << sql;
  }
}

TEST(QueryTemplatesTest, TypeDispatcherRandomizesLabel) {
  QueryParams p;
  Rng rng(5);
  const std::string q = MakeQueryOfType(1, p, &rng);
  EXPECT_NE(q.find("class_"), std::string::npos);
  EXPECT_EQ(MakeQueryOfType(2, p, nullptr).find("nUDF_detect") ==
                std::string::npos,
            false);
}

TEST(ModelRepositoryTest, BuildsTwentyTasksAcrossFourKinds) {
  ModelRepoOptions opts;
  opts.input_size = 8;
  opts.base_channels = 2;
  auto repo = BuildModelRepository(opts);
  ASSERT_EQ(repo.size(), 20u);
  std::map<std::string, int> kinds;
  std::set<std::string> names;
  for (const auto& task : repo) {
    kinds[task.task_kind]++;
    EXPECT_TRUE(names.insert(task.udf_name).second) << task.udf_name;
    EXPECT_GT(task.model.NumParameters(), 0);
  }
  EXPECT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds["defect_detection"], 5);
  EXPECT_EQ(kinds["pattern_recognition"], 5);
}

TEST(ModelRepositoryTest, MixedWorkloadUsesRepositoryTasks) {
  TestbedOptions options;
  options.dataset.video_rows = 150;
  options.dataset.keyframe_size = 8;
  options.model_base_channels = 2;
  options.histogram_samples = 8;
  options.full_repository = true;
  options.repository_tasks = 8;
  auto tb = Testbed::Create(options);
  ASSERT_TRUE(tb.ok()) << tb.status().ToString();
  EXPECT_EQ((*tb)->repository().size(), 8u);
  auto cost = (*tb)->RunMixedWorkload((*tb)->dl2sql_op(), 1, 0.2, 3);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_GT(cost->Total(), 0.0);
}

TEST(SelectivityHistogramTest, SumsToTotal) {
  nn::BuilderOptions b;
  b.input_size = 8;
  b.base_channels = 2;
  b.num_classes = 2;
  nn::Model m = nn::BuildStudentCnn(b);
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  auto sel = engines::LearnSelectivityHistogram(
      m, engines::NUdfOutput::kBool, device.get(), 40, 11);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->TotalCount(), 40);
  double p = 0;
  for (const auto& [label, _] : sel->histogram) {
    EXPECT_TRUE(label == "TRUE" || label == "FALSE");
    p += sel->Probability(label);
  }
  EXPECT_NEAR(p, 1.0, 1e-9);
}

}  // namespace
}  // namespace dl2sql::workload
