/// \file accel_test.cc
/// \brief Thread pool and simulated-device tests.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "accel/device.h"
#include "accel/thread_pool.h"

namespace dl2sql {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(10000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SmallRangesRunInline) {
  ThreadPool pool(4);
  int64_t sum = 0;  // safe: inline execution for n < 1024
  pool.ParallelFor(100, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPoolTest, ZeroAndNegativeAreNoOps) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](int64_t, int64_t) { called = true; });
  pool.ParallelFor(-5, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<int64_t> data(200000);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(static_cast<int64_t>(data.size()), [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) local += data[static_cast<size_t>(i)];
    total += local;
  });
  EXPECT_EQ(total.load(), 199999ll * 200000 / 2);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(DeviceTest, ProfilesMatchPaperTestbeds) {
  auto edge = Device::Create(DeviceKind::kEdgeCpu);
  auto server = Device::Create(DeviceKind::kServerCpu);
  auto gpu = Device::Create(DeviceKind::kServerGpu);
  EXPECT_EQ(edge->profile().num_threads, 1);
  EXPECT_FALSE(edge->profile().NeedsTransfer());
  EXPECT_FALSE(server->profile().NeedsTransfer());
  EXPECT_TRUE(gpu->profile().NeedsTransfer());
  // The GPU is the fastest at tensor compute; the edge the slowest.
  EXPECT_LT(gpu->profile().compute_scale, server->profile().compute_scale);
  EXPECT_LT(server->profile().compute_scale, edge->profile().compute_scale);
  // SQL runs at host speed on both server profiles.
  EXPECT_DOUBLE_EQ(gpu->profile().relational_scale,
                   server->profile().relational_scale);
}

TEST(DeviceTest, TransferModel) {
  auto gpu = Device::Create(DeviceKind::kServerGpu);
  const double small = gpu->TransferSeconds(4);
  const double large = gpu->TransferSeconds(1 << 30);
  EXPECT_GE(small, gpu->profile().transfer_latency_s);
  EXPECT_GT(large, small);
  // Latency floor dominates tiny copies.
  EXPECT_NEAR(small, gpu->profile().transfer_latency_s, 1e-6);

  auto edge = Device::Create(DeviceKind::kEdgeCpu);
  EXPECT_DOUBLE_EQ(edge->TransferSeconds(1 << 20), 0.0);
}

TEST(DeviceTest, ChargeTransferAccumulates) {
  auto gpu = Device::Create(DeviceKind::kServerGpu);
  CostAccumulator acc;
  const double s = gpu->ChargeTransfer(1 << 20, &acc, "loading");
  EXPECT_GT(s, 0.0);
  EXPECT_DOUBLE_EQ(acc.Get("loading"), s);
}

}  // namespace
}  // namespace dl2sql
