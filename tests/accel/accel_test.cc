/// \file accel_test.cc
/// \brief Thread pool and simulated-device tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "accel/device.h"
#include "accel/thread_pool.h"

namespace dl2sql {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(10000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SmallRangesRunInline) {
  ThreadPool pool(4);
  int64_t sum = 0;  // safe: inline execution for n < 1024
  pool.ParallelFor(100, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPoolTest, ZeroAndNegativeAreNoOps) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](int64_t, int64_t) { called = true; });
  pool.ParallelFor(-5, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<int64_t> data(200000);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(static_cast<int64_t>(data.size()), [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) local += data[static_cast<size_t>(i)];
    total += local;
  });
  EXPECT_EQ(total.load(), 199999ll * 200000 / 2);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPoolMorselTest, CoversRangeExactlyOnceWithSmallMorsels) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(50000);
  ASSERT_TRUE(pool.ParallelForMorsel(50000, 128,
                                     [&](int64_t b, int64_t e, int) {
                                       for (int64_t i = b; i < e; ++i) {
                                         hits[static_cast<size_t>(i)]++;
                                       }
                                       return Status::OK();
                                     })
                  .ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolMorselTest, PropagatesFirstErrorAndCancels) {
  ThreadPool pool(4);
  std::atomic<int64_t> morsels_run{0};
  const Status s = pool.ParallelForMorsel(
      1 << 20, 64, [&](int64_t b, int64_t, int) -> Status {
        morsels_run++;
        if (b >= 4096) {
          return Status::InvalidArgument("boom at ", b);
        }
        return Status::OK();
      });
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("boom"), std::string::npos);
  // Cancellation: the failure stops the cursor well before all 16384
  // morsels are dispatched.
  EXPECT_LT(morsels_run.load(), (1 << 20) / 64);
}

TEST(ThreadPoolMorselTest, RangeSmallerThanOneMorselRunsInline) {
  ThreadPool pool(4);
  int calls = 0;  // safe without atomics: must run inline on this thread
  ASSERT_TRUE(pool.ParallelForMorsel(100, 4096,
                                     [&](int64_t b, int64_t e, int worker) {
                                       ++calls;
                                       EXPECT_EQ(b, 0);
                                       EXPECT_EQ(e, 100);
                                       EXPECT_EQ(worker, 0);
                                       return Status::OK();
                                     })
                  .ok());
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolMorselTest, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  ASSERT_TRUE(pool.ParallelForMorsel(100000, 64,
                                     [&](int64_t, int64_t, int worker) {
                                       if (worker < 0 || worker >= 3) {
                                         bad = true;
                                       }
                                       return Status::OK();
                                     })
                  .ok());
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPoolMorselTest, NestedInvocationFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int64_t> inner_total{0};
  const Status s = pool.ParallelForMorsel(
      1 << 16, 1024, [&](int64_t b, int64_t e, int) {
        // A nested parallel loop issued from a pool worker must degrade to an
        // inline serial loop instead of waiting on the (occupied) pool.
        int64_t local = 0;
        const Status inner = pool.ParallelForMorsel(
            e - b, 128, [&](int64_t ib, int64_t ie, int) {
              local += ie - ib;
              return Status::OK();
            });
        inner_total += local;
        return inner;
      });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(inner_total.load(), 1 << 16);
}

TEST(ThreadPoolMorselTest, ZeroRowsIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  ASSERT_TRUE(pool.ParallelForMorsel(0, 4096,
                                     [&](int64_t, int64_t, int) {
                                       called = true;
                                       return Status::OK();
                                     })
                  .ok());
  EXPECT_FALSE(called);
}

TEST(ThreadPoolMorselTest, FixedBoundariesRegardlessOfThreadCount) {
  // Morsel i must cover [i*m, min(n, (i+1)*m)) for every pool size — the
  // property per-morsel output buffers rely on for determinism.
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> seen;
    ASSERT_TRUE(pool.ParallelForMorsel(10000, 1024,
                                       [&](int64_t b, int64_t e, int) {
                                         std::lock_guard<std::mutex> lock(mu);
                                         seen.emplace_back(b, e);
                                         return Status::OK();
                                       })
                    .ok());
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), 10u);
    for (size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i].first, static_cast<int64_t>(i) * 1024);
      EXPECT_EQ(seen[i].second,
                std::min<int64_t>(10000, static_cast<int64_t>(i + 1) * 1024));
    }
  }
}

TEST(DeviceTest, ProfilesMatchPaperTestbeds) {
  auto edge = Device::Create(DeviceKind::kEdgeCpu);
  auto server = Device::Create(DeviceKind::kServerCpu);
  auto gpu = Device::Create(DeviceKind::kServerGpu);
  EXPECT_EQ(edge->profile().num_threads, 1);
  EXPECT_FALSE(edge->profile().NeedsTransfer());
  EXPECT_FALSE(server->profile().NeedsTransfer());
  EXPECT_TRUE(gpu->profile().NeedsTransfer());
  // The GPU is the fastest at tensor compute; the edge the slowest.
  EXPECT_LT(gpu->profile().compute_scale, server->profile().compute_scale);
  EXPECT_LT(server->profile().compute_scale, edge->profile().compute_scale);
  // SQL runs at host speed on both server profiles.
  EXPECT_DOUBLE_EQ(gpu->profile().relational_scale,
                   server->profile().relational_scale);
}

TEST(DeviceTest, TransferModel) {
  auto gpu = Device::Create(DeviceKind::kServerGpu);
  const double small = gpu->TransferSeconds(4);
  const double large = gpu->TransferSeconds(1 << 30);
  EXPECT_GE(small, gpu->profile().transfer_latency_s);
  EXPECT_GT(large, small);
  // Latency floor dominates tiny copies.
  EXPECT_NEAR(small, gpu->profile().transfer_latency_s, 1e-6);

  auto edge = Device::Create(DeviceKind::kEdgeCpu);
  EXPECT_DOUBLE_EQ(edge->TransferSeconds(1 << 20), 0.0);
}

TEST(DeviceTest, ChargeTransferAccumulates) {
  auto gpu = Device::Create(DeviceKind::kServerGpu);
  CostAccumulator acc;
  const double s = gpu->ChargeTransfer(1 << 20, &acc, "loading");
  EXPECT_GT(s, 0.0);
  EXPECT_DOUBLE_EQ(acc.Get("loading"), s);
}

}  // namespace
}  // namespace dl2sql
