/// \file cluster_merge_test.cc
/// \brief Unit tests for the coordinator's merge layer (merge.h) and the
/// hash partitioner (hash_partitioner.h) — pure table-in/table-out, no
/// sockets. The golden hash values pin cross-platform determinism: a
/// coordinator restarted on any build or architecture must agree with the
/// shard layout its predecessor wrote.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/hash_partitioner.h"
#include "cluster/merge.h"
#include "db/table.h"

namespace dl2sql::cluster {
namespace {

db::TableSchema IntSchema(const std::vector<std::string>& names) {
  std::vector<db::Field> cols;
  for (const std::string& n : names) cols.push_back({n, db::DataType::kInt64});
  return db::TableSchema(cols);
}

db::Table IntTable(const db::TableSchema& schema,
                   const std::vector<std::vector<int64_t>>& rows) {
  db::Table t{schema};
  for (const auto& row : rows) {
    std::vector<db::Value> vals;
    for (int64_t v : row) vals.push_back(db::Value::Int(v));
    EXPECT_TRUE(t.AppendRow(vals).ok());
  }
  return t;
}

std::vector<int64_t> Column(const db::Table& t, int col) {
  std::vector<int64_t> out;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    out.push_back(t.GetRow(r)[col].AsInt().ValueOr(-999));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Hash partitioner determinism.
// ---------------------------------------------------------------------------

TEST(HashPartitioner, GoldenValuesArePlatformIndependent) {
  // FNV-1a 64 over the canonical key encoding, computed once and pinned.
  // If any of these change, every existing cluster's data placement breaks:
  // treat a failure here as an ABI break, not a test to update.
  EXPECT_EQ(PartitionHash(db::Value::Int(0)), 0x0cd92cf54dc615e5ULL);
  EXPECT_EQ(PartitionHash(db::Value::Int(1)), 0xedde65ec42d6cbc4ULL);
  EXPECT_EQ(PartitionHash(db::Value::Int(42)), 0x21fdd47119083f4fULL);
  EXPECT_EQ(PartitionHash(db::Value::Int(-7)), 0x46d68c00a4e46c1bULL);
  EXPECT_EQ(PartitionHash(db::Value::Float(2.5)), 0x797caf97b9371936ULL);
  EXPECT_EQ(PartitionHash(db::Value::String("video_17")),
            0xc9f89c9c3f52f35bULL);
  EXPECT_EQ(PartitionHash(db::Value::String("")), 0xb200c32f2fee3fc3ULL);
  EXPECT_EQ(PartitionHash(db::Value::Bool(true)), 0x082f2307b4e88e77ULL);
  EXPECT_EQ(PartitionHash(db::Value::Null()), 0xaf63bd4c8601b7dfULL);
}

TEST(HashPartitioner, IntegralFloatLandsWithMatchingInt) {
  // Mirrors row_key.h: a key of 3 and 3.0 are the same group, so they must
  // also be the same shard.
  EXPECT_EQ(PartitionHash(db::Value::Float(3.0)),
            PartitionHash(db::Value::Int(3)));
  EXPECT_NE(PartitionHash(db::Value::Float(2.5)),
            PartitionHash(db::Value::Int(2)));
}

TEST(HashPartitioner, ShardIndexInRangeAndSpreads) {
  for (int shards : {1, 2, 3, 4, 7}) {
    std::vector<int64_t> per_shard(static_cast<size_t>(shards), 0);
    for (int64_t k = 0; k < 1000; ++k) {
      const int s = ShardIndexFor(db::Value::Int(k), shards);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, shards);
      ++per_shard[static_cast<size_t>(s)];
    }
    // Loose balance bound: FNV over sequential ints should not starve any
    // shard (perfectly uniform would be 1000/shards each).
    for (int64_t n : per_shard) {
      EXPECT_GT(n, 1000 / shards / 2) << shards << " shards";
    }
  }
  EXPECT_EQ(ShardIndexFor(db::Value::Int(123), 1), 0);
}

// ---------------------------------------------------------------------------
// Concatenation and k-way merge.
// ---------------------------------------------------------------------------

TEST(ClusterMerge, ConcatKeepsShardOrderAndAppliesLimit) {
  const db::TableSchema schema = IntSchema({"v"});
  const std::vector<db::Table> parts = {IntTable(schema, {{1}, {2}}),
                                        IntTable(schema, {{3}}),
                                        IntTable(schema, {{4}, {5}})};
  auto all = ConcatTables(schema, parts, -1);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(Column(*all, 0), (std::vector<int64_t>{1, 2, 3, 4, 5}));

  auto limited = ConcatTables(schema, parts, 3);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(Column(*limited, 0), (std::vector<int64_t>{1, 2, 3}));
}

TEST(ClusterMerge, KWayMergeReproducesSingleNodeOrdering) {
  // Interleaved sorted runs: merging them must equal sorting the union.
  const db::TableSchema schema = IntSchema({"id", "payload"});
  const std::vector<db::Table> parts = {
      IntTable(schema, {{0, 100}, {3, 103}, {4, 104}, {9, 109}}),
      IntTable(schema, {{1, 101}, {2, 102}, {8, 108}}),
      IntTable(schema, {{5, 105}, {6, 106}, {7, 107}})};
  auto merged = MergeSortedTables(schema, parts, {{0, true}}, -1);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(Column(*merged, 0),
            (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(Column(*merged, 1), (std::vector<int64_t>{100, 101, 102, 103, 104,
                                                      105, 106, 107, 108, 109}));

  auto top3 = MergeSortedTables(schema, parts, {{0, true}}, 3);
  ASSERT_TRUE(top3.ok());
  EXPECT_EQ(Column(*top3, 0), (std::vector<int64_t>{0, 1, 2}));
}

TEST(ClusterMerge, KWayMergeDescending) {
  const db::TableSchema schema = IntSchema({"id"});
  const std::vector<db::Table> parts = {IntTable(schema, {{9}, {4}, {0}}),
                                        IntTable(schema, {{8}, {5}})};
  auto merged = MergeSortedTables(schema, parts, {{0, false}}, 4);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(Column(*merged, 0), (std::vector<int64_t>{9, 8, 5, 4}));
}

TEST(ClusterMerge, KWayMergeTiesAreStableByShardIndex) {
  // Equal keys: lower shard index wins, then that shard's own row order —
  // the property that makes the merge deterministic run to run.
  const db::TableSchema schema = IntSchema({"k", "src"});
  const std::vector<db::Table> parts = {
      IntTable(schema, {{1, 0}, {1, 0}, {2, 0}}),
      IntTable(schema, {{1, 1}, {2, 1}})};
  auto merged = MergeSortedTables(schema, parts, {{0, true}}, -1);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(Column(*merged, 0), (std::vector<int64_t>{1, 1, 1, 2, 2}));
  EXPECT_EQ(Column(*merged, 1), (std::vector<int64_t>{0, 0, 1, 0, 1}));
}

TEST(ClusterMerge, KWayMergeNullsFirst) {
  const db::TableSchema schema = IntSchema({"k"});
  db::Table with_null{schema};
  ASSERT_TRUE(with_null.AppendRow({db::Value::Null()}).ok());
  ASSERT_TRUE(with_null.AppendRow({db::Value::Int(5)}).ok());
  const std::vector<db::Table> parts = {IntTable(schema, {{2}}),
                                        std::move(with_null)};
  auto merged = MergeSortedTables(schema, parts, {{0, true}}, -1);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->num_rows(), 3);
  EXPECT_TRUE(merged->GetRow(0)[0].is_null());
  EXPECT_EQ(merged->GetRow(1)[0].AsInt().ValueOr(-1), 2);
  EXPECT_EQ(merged->GetRow(2)[0].AsInt().ValueOr(-1), 5);
}

// ---------------------------------------------------------------------------
// Partial-aggregate re-aggregation.
// ---------------------------------------------------------------------------

TEST(ClusterMerge, GlobalAggregatesMergeAcrossShards) {
  // Partials: [count, sum, min, max] with no group keys — every shard
  // contributes exactly one row. SUM re-aggregates as float64, matching the
  // engine's aggregate typing (vector_aggregate types SUM/AVG as kFloat64).
  const db::TableSchema partial = IntSchema({"c", "s", "lo", "hi"});
  const db::TableSchema out = db::TableSchema({{"c", db::DataType::kInt64},
                                               {"s", db::DataType::kFloat64},
                                               {"lo", db::DataType::kInt64},
                                               {"hi", db::DataType::kInt64}});
  const std::vector<db::Table> parts = {
      IntTable(partial, {{3, 30, 2, 17}}),
      IntTable(partial, {{2, 12, -5, 9}})};
  const std::vector<MergeOutputSpec> outputs = {
      {MergeOutputSpec::Kind::kCount, 0, -1},
      {MergeOutputSpec::Kind::kSum, 1, -1},
      {MergeOutputSpec::Kind::kMin, 2, -1},
      {MergeOutputSpec::Kind::kMax, 3, -1}};
  auto merged = MergeAggregatePartials(out, parts, /*num_keys=*/0, outputs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged->num_rows(), 1);
  EXPECT_EQ(Column(*merged, 0), (std::vector<int64_t>{5}));
  EXPECT_DOUBLE_EQ(merged->GetRow(0)[1].AsDouble().ValueOr(0), 42.0);
  EXPECT_EQ(Column(*merged, 2), (std::vector<int64_t>{-5}));
  EXPECT_EQ(Column(*merged, 3), (std::vector<int64_t>{17}));
}

TEST(ClusterMerge, GroupKeysSplitAcrossShardsMergeIntoOneGroup) {
  // Group 1 has rows on both shards; group 2 only on shard 0, group 3 only
  // on shard 1. Output must have one row per group, keys ascending.
  const db::TableSchema partial = IntSchema({"g", "c", "s"});
  const db::TableSchema out = db::TableSchema({{"g", db::DataType::kInt64},
                                               {"c", db::DataType::kInt64},
                                               {"s", db::DataType::kFloat64}});
  const std::vector<db::Table> parts = {
      IntTable(partial, {{1, 2, 20}, {2, 1, 7}}),
      IntTable(partial, {{3, 4, 40}, {1, 3, 9}})};
  const std::vector<MergeOutputSpec> outputs = {
      {MergeOutputSpec::Kind::kGroupKey, 0, -1},
      {MergeOutputSpec::Kind::kCount, 1, -1},
      {MergeOutputSpec::Kind::kSum, 2, -1}};
  auto merged = MergeAggregatePartials(out, parts, /*num_keys=*/1, outputs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(Column(*merged, 0), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(Column(*merged, 1), (std::vector<int64_t>{5, 1, 4}));
  ASSERT_EQ(merged->num_rows(), 3);
  EXPECT_DOUBLE_EQ(merged->GetRow(0)[2].AsDouble().ValueOr(0), 29.0);
  EXPECT_DOUBLE_EQ(merged->GetRow(1)[2].AsDouble().ValueOr(0), 7.0);
  EXPECT_DOUBLE_EQ(merged->GetRow(2)[2].AsDouble().ValueOr(0), 40.0);
}

TEST(ClusterMerge, AvgRewritesFromSumAndCount) {
  // AVG ships as SUM+COUNT partials; the coordinator divides. 10+20 over
  // 3+1 calls = 7.5 — a value neither shard's local average equals (the
  // classic distributed-AVG bug this rewrite exists to avoid).
  const db::TableSchema partial = db::TableSchema(
      {{"s", db::DataType::kFloat64}, {"c", db::DataType::kInt64}});
  const db::TableSchema out = db::TableSchema({{"a", db::DataType::kFloat64}});
  db::Table p0{partial}, p1{partial};
  ASSERT_TRUE(p0.AppendRow({db::Value::Float(10.0), db::Value::Int(3)}).ok());
  ASSERT_TRUE(p1.AppendRow({db::Value::Float(20.0), db::Value::Int(1)}).ok());
  std::vector<db::Table> parts;
  parts.push_back(std::move(p0));
  parts.push_back(std::move(p1));
  const std::vector<MergeOutputSpec> outputs = {
      {MergeOutputSpec::Kind::kAvg, 0, 1}};
  auto merged = MergeAggregatePartials(out, parts, /*num_keys=*/0, outputs);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->num_rows(), 1);
  EXPECT_DOUBLE_EQ(merged->GetRow(0)[0].AsDouble().ValueOr(0), 7.5);
}

TEST(ClusterMerge, AvgOfZeroRowsIsNull) {
  // Empty-table shards report count 0 / NULL sum; the merged AVG is NULL,
  // exactly like a single-node AVG over zero rows.
  const db::TableSchema partial = db::TableSchema(
      {{"s", db::DataType::kFloat64}, {"c", db::DataType::kInt64}});
  const db::TableSchema out = db::TableSchema({{"a", db::DataType::kFloat64}});
  db::Table p0{partial};
  ASSERT_TRUE(p0.AppendRow({db::Value::Null(), db::Value::Int(0)}).ok());
  std::vector<db::Table> parts;
  parts.push_back(std::move(p0));
  auto merged = MergeAggregatePartials(
      out, parts, 0, {{MergeOutputSpec::Kind::kAvg, 0, 1}});
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->num_rows(), 1);
  EXPECT_TRUE(merged->GetRow(0)[0].is_null());
}

TEST(ClusterMerge, SumIgnoresNullPartialsButAllNullStaysNull) {
  const db::TableSchema partial = IntSchema({"s"});
  const db::TableSchema out = db::TableSchema({{"s", db::DataType::kFloat64}});
  db::Table some{partial}, none{partial};
  ASSERT_TRUE(some.AppendRow({db::Value::Int(11)}).ok());
  ASSERT_TRUE(none.AppendRow({db::Value::Null()}).ok());
  {
    std::vector<db::Table> parts;
    parts.push_back(some);
    parts.push_back(none);
    auto merged = MergeAggregatePartials(
        out, parts, 0, {{MergeOutputSpec::Kind::kSum, 0, -1}});
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_DOUBLE_EQ(merged->GetRow(0)[0].AsDouble().ValueOr(-1), 11.0);
  }
  {
    std::vector<db::Table> parts;
    parts.push_back(none);
    parts.push_back(none);
    auto merged = MergeAggregatePartials(
        out, parts, 0, {{MergeOutputSpec::Kind::kSum, 0, -1}});
    ASSERT_TRUE(merged.ok());
    EXPECT_TRUE(merged->GetRow(0)[0].is_null());
  }
}

TEST(ClusterMerge, SortAndLimitOrdersGroups) {
  const db::TableSchema schema = IntSchema({"g", "n"});
  auto sorted = SortAndLimit(
      IntTable(schema, {{3, 1}, {1, 2}, {2, 3}}), {{1, false}}, 2);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(Column(*sorted, 0), (std::vector<int64_t>{2, 1}));
}

}  // namespace
}  // namespace dl2sql::cluster
