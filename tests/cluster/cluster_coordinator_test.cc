/// \file cluster_coordinator_test.cc
/// \brief End-to-end coordinator tests against in-process shard stubs: real
/// TcpServer instances speaking the wire protocol, each with its own
/// database and a replica of the same deterministic test nUDF. Covers
/// strategy selection (pushdown / merge-aggregate / fallback), byte-identity
/// with single-node execution, DDL/DML fan-out, federated system tables, and
/// concurrent scatter-gather clients (the "cluster" name keeps this binary
/// in the TSAN-pinned CI pass).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "db/database.h"
#include "server/session.h"
#include "server/tcp_server.h"

namespace dl2sql::cluster {
namespace {

/// Deterministic stand-in for a replicated model: every process computes the
/// same class for the same seed, which is all scatter-gather correctness
/// needs from model replication.
void RegisterTestNudf(db::Database* db) {
  db::NUdfInfo info;
  info.model_name = "test-cnn";
  info.num_parameters = 4;
  info.fingerprint = 0x7e57;
  db->udfs().RegisterNeural(
      "nudf_cls", db::DataType::kInt64,
      [](const std::vector<db::Value>& args) -> Result<db::Value> {
        DL2SQL_ASSIGN_OR_RETURN(int64_t seed, args[0].AsInt());
        return db::Value::Int(((seed * 13 + 5) % 4 + 4) % 4);
      },
      info, /*batch_fn=*/nullptr, /*arity=*/1, /*parallel_safe=*/true);
}

struct ShardProc {
  std::unique_ptr<db::Database> db = std::make_unique<db::Database>();
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::TcpServer> tcp;
};

class ClusterCoordinatorTest : public ::testing::Test {
 protected:
  void StartCluster(int num_shards) {
    std::vector<ShardEndpoint> endpoints;
    for (int s = 0; s < num_shards; ++s) {
      auto shard = std::make_unique<ShardProc>();
      RegisterTestNudf(shard->db.get());
      shard->service = std::make_unique<server::QueryService>(
          shard->db.get(), server::ServiceOptions{});
      shard->tcp = std::make_unique<server::TcpServer>(
          shard->service.get(), server::TcpServerOptions{});
      ASSERT_TRUE(shard->tcp->Start().ok());
      endpoints.push_back({"127.0.0.1", shard->tcp->port()});
      shards_.push_back(std::move(shard));
    }
    RegisterTestNudf(&co_db_);
    service_ = std::make_unique<server::QueryService>(&co_db_,
                                                      server::ServiceOptions{});
    ShardClientOptions opts;
    opts.connect_retry_ms = 500;
    opts.statement_timeout_ms = 10000;
    coordinator_ = std::make_unique<Coordinator>(&co_db_, std::move(endpoints),
                                                 opts);
    service_->set_distributed_executor(coordinator_.get());
    session_ = service_->CreateSession();

    // Single-node twin for byte-identity comparisons.
    RegisterTestNudf(&single_db_);
  }

  void TearDown() override {
    session_.reset();
    if (service_ != nullptr) service_->set_distributed_executor(nullptr);
    coordinator_.reset();
    for (auto& shard : shards_) {
      if (shard->tcp != nullptr) shard->tcp->Stop();
    }
  }

  Result<db::Table> Exec(const std::string& sql) {
    return session_->Execute(sql);
  }

  /// Executes on the cluster AND the single-node twin; both must succeed and
  /// render byte-identically.
  std::string ExecBoth(const std::string& sql) {
    auto cluster = session_->Execute(sql);
    auto single = single_db_.Execute(sql);
    EXPECT_TRUE(cluster.ok()) << sql << ": " << cluster.status().ToString();
    EXPECT_TRUE(single.ok()) << sql << ": " << single.status().ToString();
    if (!cluster.ok() || !single.ok()) return "";
    const std::string c =
        server::RenderTable(*cluster, server::OutputFormat::kTsv);
    const std::string s =
        server::RenderTable(*single, server::OutputFormat::kTsv);
    EXPECT_EQ(c, s) << "cluster result diverged from single node for: " << sql;
    return c;
  }

  /// Creates the sharded frames table on the cluster, the plain twin on the
  /// single node, and loads `rows` frames (id = seed = 0..rows-1) into both.
  void LoadFrames(int64_t rows) {
    ASSERT_TRUE(Exec("CREATE TABLE frames (id int64, seed int64) "
                     "PARTITION BY HASH (id)")
                    .ok());
    ASSERT_TRUE(
        single_db_.Execute("CREATE TABLE frames (id int64, seed int64)").ok());
    std::string values;
    for (int64_t i = 0; i < rows; ++i) {
      if (i > 0) values += ", ";
      values += "(" + std::to_string(i) + ", " + std::to_string(i) + ")";
    }
    const std::string insert = "INSERT INTO frames VALUES " + values;
    ASSERT_TRUE(Exec(insert).ok());
    ASSERT_TRUE(single_db_.Execute(insert).ok());
  }

  int64_t ShardLocalCount(int shard, const std::string& table) {
    auto session = shards_[static_cast<size_t>(shard)]->service->CreateSession();
    auto r = session->Execute("SELECT count(*) FROM " + table);
    if (!r.ok()) return -1;
    return r->GetRow(0)[0].AsInt().ValueOr(-1);
  }

  std::vector<std::unique_ptr<ShardProc>> shards_;
  db::Database co_db_;
  db::Database single_db_;
  std::unique_ptr<server::QueryService> service_;
  std::unique_ptr<Coordinator> coordinator_;
  std::shared_ptr<server::Session> session_;
};

TEST_F(ClusterCoordinatorTest, PartitionByHashBroadcastsDdlAndKeepsLocalStub) {
  StartCluster(2);
  ASSERT_TRUE(Exec("CREATE TABLE frames (id int64, seed int64) "
                   "PARTITION BY HASH (id)")
                  .ok());
  EXPECT_TRUE(coordinator_->IsSharded("frames"));
  // Every shard got the table; the coordinator keeps an empty stub.
  EXPECT_EQ(ShardLocalCount(0, "frames"), 0);
  EXPECT_EQ(ShardLocalCount(1, "frames"), 0);
  auto local = co_db_.Execute("SELECT count(*) FROM frames");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->GetRow(0)[0].AsInt().ValueOr(-1), 0);
}

TEST_F(ClusterCoordinatorTest, InsertRoutesEveryRowExactlyOnce) {
  StartCluster(2);
  LoadFrames(64);
  // Complete: the union of the shard slices is the full table.
  auto count = Exec("SELECT count(*) FROM frames");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->GetRow(0)[0].AsInt().ValueOr(-1), 64);
  // Partitioned: both shards hold a proper, disjoint slice.
  const int64_t s0 = ShardLocalCount(0, "frames");
  const int64_t s1 = ShardLocalCount(1, "frames");
  EXPECT_GT(s0, 0);
  EXPECT_GT(s1, 0);
  EXPECT_EQ(s0 + s1, 64);
}

TEST_F(ClusterCoordinatorTest, PushdownSelectIsByteIdentical) {
  StartCluster(2);
  LoadFrames(48);
  ExecBoth("SELECT id, nudf_cls(seed) AS cls FROM frames WHERE id % 5 = 2 "
           "ORDER BY id");
  EXPECT_EQ(coordinator_->last_strategy(), DistStrategy::kPushdown);
  // Top-k descending exercises the k-way merge + re-applied LIMIT.
  ExecBoth("SELECT id, seed FROM frames ORDER BY id DESC LIMIT 7");
  EXPECT_EQ(coordinator_->last_strategy(), DistStrategy::kPushdown);
  // No ORDER BY: concatenation in shard order is still a complete result.
  auto all = Exec("SELECT id FROM frames WHERE id < 10");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 10);
}

TEST_F(ClusterCoordinatorTest, MergeAggregateIsByteIdentical) {
  StartCluster(2);
  LoadFrames(48);
  ExecBoth("SELECT count(*) AS n FROM frames WHERE nudf_cls(seed) = 1");
  EXPECT_EQ(coordinator_->last_strategy(), DistStrategy::kMergeAggregate);
  ExecBoth("SELECT sum(nudf_cls(seed)) AS s, count(*) AS n, min(id) AS lo, "
           "max(id) AS hi FROM frames WHERE id >= 8");
  EXPECT_EQ(coordinator_->last_strategy(), DistStrategy::kMergeAggregate);
  // GROUP BY keys split across shards + the AVG -> SUM+COUNT rewrite: the
  // merged average must be the global one, not an average of shard averages.
  ExecBoth("SELECT seed % 4 AS g, count(*) AS n, sum(id) AS s, avg(seed) AS a "
           "FROM frames GROUP BY seed % 4 ORDER BY g");
  EXPECT_EQ(coordinator_->last_strategy(), DistStrategy::kMergeAggregate);
}

TEST_F(ClusterCoordinatorTest, FallbackGathersAndRestoresStubs) {
  StartCluster(2);
  LoadFrames(24);
  // A self join is beyond pushdown and partial aggregation: the coordinator
  // must gather the shard slices, run locally, and still match single-node.
  ExecBoth("SELECT a.id, b.id FROM frames a JOIN frames b ON a.id = b.id "
           "WHERE a.id < 5 ORDER BY a.id");
  EXPECT_EQ(coordinator_->last_strategy(), DistStrategy::kFallback);
  // The gathered rows must not leak into the coordinator's local stub.
  auto local = co_db_.Execute("SELECT count(*) FROM frames");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->GetRow(0)[0].AsInt().ValueOr(-1), 0);
}

TEST_F(ClusterCoordinatorTest, ViewOverShardedTableRoutesThroughCoordinator) {
  StartCluster(2);
  LoadFrames(24);
  ASSERT_TRUE(
      Exec("CREATE VIEW lows AS SELECT id FROM frames WHERE id < 6").ok());
  ASSERT_TRUE(
      single_db_.Execute("CREATE VIEW lows AS SELECT id FROM frames WHERE id < 6")
          .ok());
  ExecBoth("SELECT count(*) AS n FROM lows");
}

TEST_F(ClusterCoordinatorTest, UpdateAndDeleteBroadcastWithTotalRowCounts) {
  StartCluster(2);
  LoadFrames(32);
  auto update = Exec("UPDATE frames SET seed = seed + 100 WHERE id % 2 = 0");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->num_rows(), 16);  // affected rows summed across shards
  ASSERT_TRUE(
      single_db_.Execute("UPDATE frames SET seed = seed + 100 WHERE id % 2 = 0")
          .ok());
  ExecBoth("SELECT sum(seed) AS s FROM frames");

  auto del = Exec("DELETE FROM frames WHERE id >= 24");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->num_rows(), 8);
  ASSERT_TRUE(single_db_.Execute("DELETE FROM frames WHERE id >= 24").ok());
  ExecBoth("SELECT count(*) AS n FROM frames");
}

TEST_F(ClusterCoordinatorTest, InsertWithColumnListAndNullKeyStillRoutes) {
  StartCluster(2);
  ASSERT_TRUE(Exec("CREATE TABLE frames (id int64, seed int64) "
                   "PARTITION BY HASH (id)")
                  .ok());
  // Columns reordered: the partition key is found by name, not position.
  ASSERT_TRUE(Exec("INSERT INTO frames (seed, id) VALUES (7, 1)").ok());
  // Key column absent: the row routes by the NULL key's hash, consistently.
  ASSERT_TRUE(Exec("INSERT INTO frames (seed) VALUES (9)").ok());
  auto count = Exec("SELECT count(*) FROM frames");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->GetRow(0)[0].AsInt().ValueOr(-1), 2);
}

TEST_F(ClusterCoordinatorTest, DropTableRemovesFromEveryShard) {
  StartCluster(2);
  LoadFrames(8);
  ASSERT_TRUE(Exec("DROP TABLE frames").ok());
  EXPECT_FALSE(coordinator_->IsSharded("frames"));
  EXPECT_EQ(ShardLocalCount(0, "frames"), -1);  // gone on the shards too
  EXPECT_EQ(ShardLocalCount(1, "frames"), -1);
  EXPECT_FALSE(Exec("SELECT count(*) FROM frames").ok());
}

TEST_F(ClusterCoordinatorTest, FederatedSystemTablesCarryShardColumn) {
  StartCluster(2);
  LoadFrames(16);
  ExecBoth("SELECT count(*) AS n FROM frames");  // make shard-side history

  auto shards = Exec("SELECT count(*) FROM system.shards WHERE healthy");
  ASSERT_TRUE(shards.ok());
  EXPECT_EQ(shards->GetRow(0)[0].AsInt().ValueOr(-1), 2);

  auto local_rows = Exec("SELECT count(*) FROM system.queries WHERE shard = -1");
  ASSERT_TRUE(local_rows.ok());
  EXPECT_GT(local_rows->GetRow(0)[0].AsInt().ValueOr(-1), 0);
  for (int shard = 0; shard < 2; ++shard) {
    auto rows = Exec("SELECT count(*) FROM system.queries WHERE shard = " +
                     std::to_string(shard));
    ASSERT_TRUE(rows.ok());
    EXPECT_GT(rows->GetRow(0)[0].AsInt().ValueOr(-1), 0)
        << "no federated rows from shard " << shard;
  }
  auto sessions = Exec("SELECT count(*) FROM system.sessions WHERE shard = -1");
  ASSERT_TRUE(sessions.ok());
  EXPECT_GT(sessions->GetRow(0)[0].AsInt().ValueOr(-1), 0);
}

TEST_F(ClusterCoordinatorTest, ConcurrentClientsScatterGatherSafely) {
  StartCluster(2);
  LoadFrames(40);
  const std::vector<std::string> mix = {
      "SELECT count(*) AS n FROM frames WHERE nudf_cls(seed) = 1",
      "SELECT id, nudf_cls(seed) AS cls FROM frames WHERE id % 5 = 2 "
      "ORDER BY id",
      "SELECT sum(nudf_cls(seed)) AS s, count(*) AS n FROM frames",
      "SELECT id, seed FROM frames ORDER BY id DESC LIMIT 5",
  };
  // Reference renders through the sequential session first.
  std::vector<std::string> expected;
  for (const std::string& q : mix) {
    auto r = Exec(q);
    ASSERT_TRUE(r.ok()) << q;
    expected.push_back(server::RenderTable(*r, server::OutputFormat::kTsv));
  }
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 6;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = service_->CreateSession();
      for (int k = 0; k < kItersPerThread; ++k) {
        const size_t qi = static_cast<size_t>(t + k) % mix.size();
        auto r = session->Execute(mix[qi]);
        if (!r.ok() ||
            server::RenderTable(*r, server::OutputFormat::kTsv) !=
                expected[qi]) {
          ++failures[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[static_cast<size_t>(t)], 0) << "thread " << t;
  }
}

TEST_F(ClusterCoordinatorTest, SingleShardClusterBehavesLikeSingleNode) {
  StartCluster(1);
  LoadFrames(16);
  ExecBoth("SELECT id, seed FROM frames ORDER BY id");
  ExecBoth("SELECT avg(seed) AS a, count(*) AS n FROM frames");
}

}  // namespace
}  // namespace dl2sql::cluster
