/// \file cluster_fault_test.cc
/// \brief Failure-path coverage for the cluster tier: a killed shard, a
/// shard that accepts connections but never answers, and the health surface
/// in system.shards. The contract under test is the house style promise —
/// every shard failure is a returned Status naming the shard, within the
/// deadline, never a hang and never partial rows. (The "cluster" name keeps
/// this binary in the TSAN-pinned CI pass.)
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "common/timer.h"
#include "db/database.h"
#include "server/session.h"
#include "server/tcp_server.h"

namespace dl2sql::cluster {
namespace {

struct ShardProc {
  std::unique_ptr<db::Database> db = std::make_unique<db::Database>();
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::TcpServer> tcp;
};

class ClusterFaultTest : public ::testing::Test {
 protected:
  void StartCluster(int num_shards) {
    std::vector<ShardEndpoint> endpoints;
    for (int s = 0; s < num_shards; ++s) {
      auto shard = std::make_unique<ShardProc>();
      shard->service = std::make_unique<server::QueryService>(
          shard->db.get(), server::ServiceOptions{});
      shard->tcp = std::make_unique<server::TcpServer>(
          shard->service.get(), server::TcpServerOptions{});
      ASSERT_TRUE(shard->tcp->Start().ok());
      endpoints.push_back({"127.0.0.1", shard->tcp->port()});
      shards_.push_back(std::move(shard));
    }
    service_ = std::make_unique<server::QueryService>(&co_db_,
                                                      server::ServiceOptions{});
    // Tight budgets so every fault path resolves quickly: a dead shard must
    // surface within ~connect_retry_ms, a mute one within statement_timeout.
    ShardClientOptions opts;
    opts.connect_retry_ms = 200;
    opts.statement_timeout_ms = 1500;
    opts.ping_timeout_ms = 300;
    coordinator_ = std::make_unique<Coordinator>(&co_db_, std::move(endpoints),
                                                 opts);
    service_->set_distributed_executor(coordinator_.get());
    session_ = service_->CreateSession();
  }

  void TearDown() override {
    session_.reset();
    if (service_ != nullptr) service_->set_distributed_executor(nullptr);
    coordinator_.reset();
    for (auto& shard : shards_) {
      if (shard->tcp != nullptr) shard->tcp->Stop();
    }
  }

  Result<db::Table> Exec(const std::string& sql) {
    return session_->Execute(sql);
  }

  void LoadFrames(int64_t rows) {
    ASSERT_TRUE(Exec("CREATE TABLE frames (id int64, seed int64) "
                     "PARTITION BY HASH (id)")
                    .ok());
    std::string insert = "INSERT INTO frames VALUES ";
    for (int64_t i = 0; i < rows; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i) + ", " + std::to_string(i) + ")";
    }
    ASSERT_TRUE(Exec(insert).ok());
  }

  std::vector<std::unique_ptr<ShardProc>> shards_;
  db::Database co_db_;
  std::unique_ptr<server::QueryService> service_;
  std::unique_ptr<Coordinator> coordinator_;
  std::shared_ptr<server::Session> session_;
};

TEST_F(ClusterFaultTest, KilledShardTurnsSelectIntoUnavailableNamingIt) {
  StartCluster(2);
  LoadFrames(32);
  ASSERT_TRUE(Exec("SELECT count(*) FROM frames").ok());

  // Kill shard 1 (listener and live connections die; the pooled connections
  // the coordinator holds are now broken too).
  shards_[1]->tcp->Stop();

  Stopwatch watch;
  auto result = Exec("SELECT count(*) AS n FROM frames");
  const double elapsed = watch.ElapsedSeconds();
  ASSERT_FALSE(result.ok()) << "scatter over a dead shard must fail";
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("shard 1"), std::string::npos)
      << "error must name the failed shard: " << result.status().ToString();
  // Deadline discipline: connect retry (200 ms) + slack, not a hang.
  EXPECT_LT(elapsed, 5.0);

  // Ordered pushdown must also fail outright — no partial rows from the
  // surviving shard masquerading as a complete result.
  auto ordered = Exec("SELECT id FROM frames ORDER BY id");
  ASSERT_FALSE(ordered.ok());
  EXPECT_EQ(ordered.status().code(), StatusCode::kUnavailable);
}

TEST_F(ClusterFaultTest, WritesToDeadShardFailWithStatus) {
  StartCluster(2);
  LoadFrames(16);
  shards_[0]->tcp->Stop();

  // Broadcast write: all-must-ack, so a dead shard fails the statement.
  auto update = Exec("UPDATE frames SET seed = 0 WHERE id < 4");
  ASSERT_FALSE(update.ok());
  EXPECT_EQ(update.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(update.status().ToString().find("shard 0"), std::string::npos);

  // Routed INSERT: at least one of these keys lands on the dead shard.
  bool any_insert_failed = false;
  for (int64_t k = 100; k < 108; ++k) {
    auto insert = Exec("INSERT INTO frames VALUES (" + std::to_string(k) +
                       ", 0)");
    if (!insert.ok()) {
      any_insert_failed = true;
      EXPECT_EQ(insert.status().code(), StatusCode::kUnavailable);
      break;
    }
  }
  EXPECT_TRUE(any_insert_failed);
}

TEST_F(ClusterFaultTest, SystemShardsSurfacesHealthFlip) {
  StartCluster(2);
  LoadFrames(8);
  auto healthy = Exec("SELECT count(*) FROM system.shards WHERE healthy");
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->GetRow(0)[0].AsInt().ValueOr(-1), 2);

  shards_[1]->tcp->Stop();
  auto after = Exec(
      "SELECT shard FROM system.shards WHERE healthy ORDER BY shard");
  ASSERT_TRUE(after.ok()) << "system.shards must survive a dead shard";
  ASSERT_EQ(after->num_rows(), 1);
  EXPECT_EQ(after->GetRow(0)[0].AsInt().ValueOr(-1), 0);

  // The federated query log degrades gracefully: shard 0's rows still
  // arrive, the dead shard's are skipped, the query itself succeeds.
  auto fed = Exec("SELECT count(*) FROM system.queries WHERE shard = 0");
  ASSERT_TRUE(fed.ok());
  EXPECT_GT(fed->GetRow(0)[0].AsInt().ValueOr(-1), 0);
}

TEST(ClusterShardClientTest, MuteShardTimesOutWithinDeadline) {
  // A listener that accepts nothing: connections sit in the backlog forever,
  // so send/recv never completes. The client must give up at its deadline.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const int port = ntohs(addr.sin_port);

  ShardClientOptions opts;
  opts.connect_retry_ms = 200;
  opts.statement_timeout_ms = 400;
  opts.ping_timeout_ms = 200;
  ShardClient client(/*shard_index=*/3, {"127.0.0.1", port}, opts);

  Stopwatch watch;
  auto response = client.Execute("SELECT 1");
  const double elapsed = watch.ElapsedSeconds();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(response.status().ToString().find("shard 3"), std::string::npos);
  // 400 ms statement deadline; generous slack for loaded CI hosts, but far
  // from a hang.
  EXPECT_LT(elapsed, 5.0);
  EXPECT_FALSE(client.Ping().ok());
  EXPECT_EQ(client.failures(), 2);
  EXPECT_FALSE(client.last_error().empty());

  ::close(listen_fd);
}

}  // namespace
}  // namespace dl2sql::cluster
