/// \file cluster_trace_test.cc
/// \brief Distributed observability end-to-end: trace-context propagation
/// over the live wire (one trace id across coordinator and shard query
/// logs), span/profile trailer shipping into one cluster Chrome trace with a
/// lane per shard, federated /metrics text, the distributed EXPLAIN ANALYZE
/// footer, and dead-shard degradation to a partial (never failing) trace.
/// The "cluster"/"trace" name keeps this binary in the TSAN-pinned CI pass.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "common/trace.h"
#include "db/database.h"
#include "db/query_log.h"
#include "db/sql/parser.h"
#include "server/session.h"
#include "server/tcp_server.h"

namespace dl2sql::cluster {
namespace {

/// Enables runtime tracing for one test and restores the disabled default
/// (the collector is process-global; leaking "enabled" would couple tests).
struct ScopedTracing {
  ScopedTracing() {
    TraceCollector::Global().Clear();
    TraceCollector::Global().SetEnabled(true);
  }
  ~ScopedTracing() {
    TraceCollector::Global().SetEnabled(false);
    TraceCollector::Global().Clear();
  }
};

struct ShardProc {
  std::unique_ptr<db::Database> db = std::make_unique<db::Database>();
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::TcpServer> tcp;
};

class ClusterTraceTest : public ::testing::Test {
 protected:
  void StartCluster(int num_shards) {
    std::vector<ShardEndpoint> endpoints;
    for (int s = 0; s < num_shards; ++s) {
      auto shard = std::make_unique<ShardProc>();
      shard->service = std::make_unique<server::QueryService>(
          shard->db.get(), server::ServiceOptions{});
      shard->tcp = std::make_unique<server::TcpServer>(
          shard->service.get(), server::TcpServerOptions{});
      ASSERT_TRUE(shard->tcp->Start().ok());
      endpoints.push_back({"127.0.0.1", shard->tcp->port()});
      shards_.push_back(std::move(shard));
    }
    service_ = std::make_unique<server::QueryService>(&co_db_,
                                                      server::ServiceOptions{});
    ShardClientOptions opts;
    opts.connect_retry_ms = 500;
    opts.statement_timeout_ms = 10000;
    coordinator_ = std::make_unique<Coordinator>(&co_db_, std::move(endpoints),
                                                 opts);
    service_->set_distributed_executor(coordinator_.get());
    session_ = service_->CreateSession();
  }

  void TearDown() override {
    session_.reset();
    if (service_ != nullptr) service_->set_distributed_executor(nullptr);
    coordinator_.reset();
    for (auto& shard : shards_) {
      if (shard->tcp != nullptr) shard->tcp->Stop();
    }
  }

  void LoadFrames(int64_t rows) {
    ASSERT_TRUE(session_
                    ->Execute("CREATE TABLE frames (id int64, seed int64) "
                              "PARTITION BY HASH (id)")
                    .ok());
    std::string values;
    for (int64_t i = 0; i < rows; ++i) {
      if (i > 0) values += ", ";
      values += "(" + std::to_string(i) + ", " + std::to_string(i) + ")";
    }
    ASSERT_TRUE(session_->Execute("INSERT INTO frames VALUES " + values).ok());
  }

  /// Newest query-log record whose sql contains `needle`.
  static bool FindRecord(db::Database* db, const std::string& needle,
                         db::QueryLogRecord* out) {
    db::QueryLog* log = db->query_log();
    if (log == nullptr) return false;
    bool found = false;
    for (const db::QueryLogRecord& r : log->Snapshot()) {
      if (r.sql.find(needle) != std::string::npos) {
        *out = r;
        found = true;
      }
    }
    return found;
  }

  /// Any record stamped with `trace_id` (shard statements are planner
  /// rewrites, so their sql text is not stable to match on).
  static bool HasTraceId(db::Database* db, uint64_t trace_id) {
    db::QueryLog* log = db->query_log();
    if (log == nullptr) return false;
    for (const db::QueryLogRecord& r : log->Snapshot()) {
      if (r.trace_id == trace_id) return true;
    }
    return false;
  }

  std::vector<std::unique_ptr<ShardProc>> shards_;
  db::Database co_db_;
  std::unique_ptr<server::QueryService> service_;
  std::unique_ptr<Coordinator> coordinator_;
  std::shared_ptr<server::Session> session_;
};

TEST_F(ClusterTraceTest, DistributedQuerySharesOneTraceIdAcrossNodes) {
  ScopedTracing tracing;
  StartCluster(2);
  LoadFrames(16);

  auto result = session_->Execute("SELECT sum(seed) FROM frames");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  db::QueryLogRecord coord_rec;
  ASSERT_TRUE(FindRecord(&co_db_, "sum(seed)", &coord_rec));
  EXPECT_NE(coord_rec.trace_id, 0u);
  EXPECT_EQ(coord_rec.dist_shards, 2);
  EXPECT_GE(coord_rec.dist_slowest_shard, 0);
  EXPECT_LE(coord_rec.dist_slowest_shard, 1);
  EXPECT_GT(coord_rec.dist_slowest_us, 0);
  // sum() over both shards re-merges partial aggregates.
  EXPECT_STREQ(db::DistStrategyLabel(coord_rec.dist_strategy),
               "merge_aggregate");

  // Both shards executed the scattered statement under the coordinator's id.
  for (int s = 0; s < 2; ++s) {
    EXPECT_TRUE(HasTraceId(shards_[s]->db.get(), coord_rec.trace_id))
        << "shard " << s << " has no record with the coordinator's trace id";
  }
}

TEST_F(ClusterTraceTest, ClusterTraceExportHasOneLanePerShard) {
  ScopedTracing tracing;
  StartCluster(2);
  LoadFrames(16);
  ASSERT_TRUE(session_->Execute("SELECT sum(seed) FROM frames").ok());

  const std::string path =
      ::testing::TempDir() + "/cluster_trace_test_export.json";
  ASSERT_TRUE(coordinator_->WriteClusterTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  std::remove(path.c_str());

  // Structural sanity: a traceEvents array, coordinator lane plus one lane
  // per shard, and the distributed root span.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 64);
  EXPECT_NE(json.find("],\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("distributed_query"), std::string::npos);
  EXPECT_NE(json.find("shard 0 rpc"), std::string::npos);
  EXPECT_NE(json.find("shard 1 rpc"), std::string::npos);

  db::QueryLogRecord coord_rec;
  ASSERT_TRUE(FindRecord(&co_db_, "sum(seed)", &coord_rec));
  char trace_hex[24];
  std::snprintf(trace_hex, sizeof(trace_hex), "%016llx",
                static_cast<unsigned long long>(coord_rec.trace_id));
  EXPECT_NE(json.find(trace_hex), std::string::npos)
      << "export is missing the query's trace id";
}

TEST_F(ClusterTraceTest, FederatedMetricsLabelEachShard) {
  StartCluster(2);
  LoadFrames(8);
  ASSERT_TRUE(session_->Execute("SELECT count(*) FROM frames").ok());

  const std::string text = coordinator_->FederatedMetricsText();
  EXPECT_NE(text.find("cluster_shard_client_statements{shard=\"0\"} "),
            std::string::npos);
  EXPECT_NE(text.find("cluster_shard_client_statements{shard=\"1\"} "),
            std::string::npos);
  // Shard-side registry series come through under sanitized names.
  EXPECT_NE(text.find("{shard=\"0\"} "), std::string::npos);
  EXPECT_NE(text.find("server_requests{shard=\"0\"} "), std::string::npos);

  // The client-side counters also surface through system.shards.
  auto shards_table = session_->Execute(
      "SELECT shard, requests, bytes_sent, bytes_received, rows_shipped, "
      "p95_latency_ms FROM system.shards ORDER BY shard");
  ASSERT_TRUE(shards_table.ok()) << shards_table.status().ToString();
  ASSERT_EQ(shards_table->num_rows(), 2);
  for (int64_t r = 0; r < 2; ++r) {
    const std::vector<db::Value> row = shards_table->GetRow(r);
    EXPECT_GT(row[1].AsInt().ValueOr(0), 0) << "requests, shard " << r;
    EXPECT_GT(row[2].AsInt().ValueOr(0), 0) << "bytes_sent, shard " << r;
    EXPECT_GT(row[3].AsInt().ValueOr(0), 0) << "bytes_received, shard " << r;
  }
}

TEST_F(ClusterTraceTest, ExplainAnalyzePrintsPerShardFooter) {
  StartCluster(2);
  LoadFrames(16);

  auto stmt = db::sql::ParseStatement("SELECT id FROM frames ORDER BY id");
  ASSERT_TRUE(stmt.ok());
  auto text = coordinator_->ExplainAnalyze(
      *stmt, "SELECT id FROM frames ORDER BY id");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("strategy=pushdown"), std::string::npos) << *text;
  EXPECT_NE(text->find("shards=2/2"), std::string::npos) << *text;
  EXPECT_NE(text->find("shard 0 (127.0.0.1:"), std::string::npos) << *text;
  EXPECT_NE(text->find("shard 1 (127.0.0.1:"), std::string::npos) << *text;
  EXPECT_NE(text->find("slowest: shard "), std::string::npos) << *text;
  EXPECT_NE(text->find("merge="), std::string::npos) << *text;

  // Non-SELECT statements are refused, not silently run.
  auto ddl = db::sql::ParseStatement("DROP TABLE frames");
  ASSERT_TRUE(ddl.ok());
  EXPECT_FALSE(coordinator_->ExplainAnalyze(*ddl, "DROP TABLE frames").ok());
}

TEST_F(ClusterTraceTest, DeadShardDegradesToPartialObservability) {
  ScopedTracing tracing;
  StartCluster(2);
  LoadFrames(16);
  ASSERT_TRUE(session_->Execute("SELECT sum(seed) FROM frames").ok());

  // Kill shard 1; observability must degrade to partial data, not errors.
  shards_[1]->tcp->Stop();

  const std::string metrics = coordinator_->FederatedMetricsText();
  EXPECT_NE(metrics.find("cluster_shard_client_statements{shard=\"0\"} "),
            std::string::npos);
  EXPECT_NE(metrics.find("server_requests{shard=\"0\"} "), std::string::npos);
  EXPECT_EQ(metrics.find("server_requests{shard=\"1\"} "), std::string::npos)
      << "dead shard should be skipped, not scraped";

  // Federated system tables skip the dead shard.
  auto spans = session_->Execute(
      "SELECT count(*) FROM system.spans WHERE shard = -1");
  ASSERT_TRUE(spans.ok()) << spans.status().ToString();
  EXPECT_GT(spans->GetRow(0)[0].AsInt().ValueOr(0), 0);

  // The last trace still exports (it was shipped before the shard died).
  const std::string path =
      ::testing::TempDir() + "/cluster_trace_test_partial.json";
  ASSERT_TRUE(coordinator_->WriteClusterTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());
  EXPECT_NE(buf.str().find("\"pid\":3"), std::string::npos);
}

TEST_F(ClusterTraceTest, TracingOffShipsNoTrailerAndRecordsNoTraceId) {
  // Collector stays at its disabled default: statements must cross the wire
  // without a ".trace" header and without META trailer lines.
  StartCluster(2);
  LoadFrames(8);

  auto result = session_->Execute("SELECT count(*) FROM frames");
  ASSERT_TRUE(result.ok());

  db::QueryLogRecord coord_rec;
  ASSERT_TRUE(FindRecord(&co_db_, "count(*)", &coord_rec));
  EXPECT_EQ(coord_rec.trace_id, 0u);
  // Distributed bookkeeping still works untraced.
  EXPECT_EQ(coord_rec.dist_shards, 2);
  EXPECT_GE(coord_rec.dist_slowest_shard, 0);

  for (int s = 0; s < 2; ++s) {
    db::QueryLog* log = shards_[s]->db->query_log();
    ASSERT_NE(log, nullptr);
    for (const db::QueryLogRecord& r : log->Snapshot()) {
      EXPECT_EQ(r.trace_id, 0u) << "shard " << s << " recorded a trace id "
                                << "for untraced statement: " << r.sql;
    }
  }

  // A raw untraced statement gets no trailer.
  auto response = coordinator_->shard(0)->Execute("SELECT 1");
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->meta.empty());
  EXPECT_GT(response->wire_bytes, 0);

  // And a traced one does (profile line at minimum; spans need the collector).
  TraceContext ctx{0x1234abcd, 0x1};
  auto traced = coordinator_->shard(0)->Execute("SELECT 1", 0.0, &ctx);
  ASSERT_TRUE(traced.ok());
  EXPECT_FALSE(traced->meta.empty());
}

}  // namespace
}  // namespace dl2sql::cluster
