/// \file trace_test.cc
/// \brief TraceCollector / TraceSpan: recording, nesting, thread ids,
/// Chrome-trace export, and concurrent append safety (exercised under TSAN
/// by the CI sanitizer pass).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"

namespace dl2sql {
namespace {

/// Every test owns the global collector for its duration.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Global().SetEnabled(false);
    TraceCollector::Global().Clear();
  }
  void TearDown() override {
    TraceCollector::Global().SetEnabled(false);
    TraceCollector::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(TraceCollector::Global().enabled());
  {
    TraceSpan span("test", "quiet");
  }
  EXPECT_EQ(TraceCollector::Global().EventCount(), 0);
}

TEST_F(TraceTest, EnabledSpansRecordNameCategoryArgs) {
  TraceCollector::Global().SetEnabled(true);
  {
    TraceSpan span("cat", "outer", "\"k\":1");
  }
  auto events = TraceCollector::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_STREQ(events[0].category, "cat");
  EXPECT_EQ(events[0].args, "\"k\":1");
  EXPECT_GE(events[0].duration_us, 0);
}

TEST_F(TraceTest, SpansNestWithDepthAndContainment) {
  TraceCollector::Global().SetEnabled(true);
  {
    TraceSpan outer("test", "outer");
    {
      TraceSpan inner("test", "inner");
    }
  }
  auto events = TraceCollector::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Both spans can start in the same microsecond, so locate by name rather
  // than relying on Snapshot's start-time ordering.
  const TraceEvent& outer = events[0].name == "outer" ? events[0] : events[1];
  const TraceEvent& inner = events[0].name == "inner" ? events[0] : events[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, outer.depth + 1);
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.duration_us,
            outer.start_us + outer.duration_us);
}

#if !defined(DL2SQL_TRACING_DISABLED)
TEST_F(TraceTest, MacroRecordsSpan) {
  TraceCollector::Global().SetEnabled(true);
  {
    DL2SQL_TRACE_SPAN("test", "via_macro");
    DL2SQL_TRACE_SPAN("test", "with_args", "\"n\":42");
  }
  auto events = TraceCollector::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  std::set<std::string> names{events[0].name, events[1].name};
  EXPECT_TRUE(names.count("via_macro"));
  EXPECT_TRUE(names.count("with_args"));
}
#endif

TEST_F(TraceTest, SpanStartedWhileDisabledStaysQuiet) {
  // The enabled check happens at construction; flipping the switch mid-span
  // must not produce a half-initialized event.
  TraceSpan span("test", "race");
  TraceCollector::Global().SetEnabled(true);
  // span destructs here with active_ == false.
  EXPECT_EQ(TraceCollector::Global().EventCount(), 0);
}

TEST_F(TraceTest, ThreadsGetDistinctCompactIds) {
  const int32_t main_id = TraceCollector::CurrentThreadId();
  int32_t other_id = main_id;
  std::thread t([&] { other_id = TraceCollector::CurrentThreadId(); });
  t.join();
  EXPECT_NE(main_id, other_id);
  // Stable per thread.
  EXPECT_EQ(TraceCollector::CurrentThreadId(), main_id);
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  TraceCollector::Global().SetEnabled(true);
  {
    TraceSpan a("phase", "alpha", "\"rows\":10");
    TraceSpan b("phase", "beta \"quoted\"\n");
  }
  const std::string json = TraceCollector::Global().ToChromeTraceJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  // Quotes and newlines in names must be escaped, never raw.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  // Balanced braces/brackets (events contain no nested arrays).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(TraceTest, WriteChromeTraceProducesLoadableFile) {
  TraceCollector::Global().SetEnabled(true);
  {
    TraceSpan span("io", "file_span");
  }
  const std::string path = ::testing::TempDir() + "trace_test_out.json";
  ASSERT_TRUE(TraceCollector::Global().WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, TraceCollector::Global().ToChromeTraceJson());
  EXPECT_NE(content.find("file_span"), std::string::npos);
}

TEST_F(TraceTest, SummaryAggregatesPerName) {
  TraceCollector::Global().SetEnabled(true);
  for (int i = 0; i < 3; ++i) {
    TraceSpan span("agg", "repeated");
  }
  {
    TraceSpan span("agg", "single");
  }
  const std::string summary = TraceCollector::Global().SummaryJson();
  EXPECT_NE(summary.find("\"repeated\""), std::string::npos);
  EXPECT_NE(summary.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(summary.find("\"single\""), std::string::npos);
  EXPECT_NE(summary.find("\"total_us\""), std::string::npos);
}

TEST_F(TraceTest, ClearDropsEventsButKeepsRecording) {
  TraceCollector::Global().SetEnabled(true);
  {
    TraceSpan span("test", "before");
  }
  ASSERT_EQ(TraceCollector::Global().EventCount(), 1);
  TraceCollector::Global().Clear();
  EXPECT_EQ(TraceCollector::Global().EventCount(), 0);
  {
    TraceSpan span("test", "after");
  }
  EXPECT_EQ(TraceCollector::Global().EventCount(), 1);
}

TEST_F(TraceTest, ConcurrentSpansFromManyThreadsAllArrive) {
  // TSAN coverage: per-thread buffers appended from workers while the main
  // thread snapshots concurrently.
  TraceCollector::Global().SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&go, t] {
      while (!go.load()) {
      }
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("mt", "worker_span",
                       "\"t\":" + std::to_string(t));
      }
    });
  }
  go.store(true);
  // Snapshot concurrently with the appends — must be data-race free.
  for (int i = 0; i < 10; ++i) (void)TraceCollector::Global().Snapshot();
  for (auto& t : threads) t.join();
  EXPECT_EQ(TraceCollector::Global().EventCount(), kThreads * kSpansPerThread);
  auto events = TraceCollector::Global().Snapshot();
  std::set<int32_t> tids;
  for (const auto& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

}  // namespace
}  // namespace dl2sql
