/// \file cache_test.cc
/// \brief ShardedLruCache: LRU semantics, byte budget + eviction, metrics
/// wiring, and concurrent hit/miss/evict safety (TSAN-exercised in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cache.h"
#include "common/metrics.h"

namespace dl2sql {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().ResetAll(); }
  void TearDown() override { MetricsRegistry::Global().ResetAll(); }

  static ShardedLruCache::ValuePtr IntValue(int64_t v) {
    return std::make_shared<const int64_t>(v);
  }
};

TEST_F(CacheTest, Hash64IsDeterministicAndSpreads) {
  const std::string a = "hello";
  EXPECT_EQ(Hash64(a), Hash64("hello"));
  EXPECT_NE(Hash64("hello"), Hash64("hellp"));
  EXPECT_NE(Hash64(""), 0u);  // FNV offset basis, not zero
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));  // order-dependent
}

TEST_F(CacheTest, LookupMissThenHit) {
  ShardedLruCache cache("t", 1 << 20);
  EXPECT_EQ(cache.Lookup(42), nullptr);
  cache.Insert(42, IntValue(7), 64);
  auto v = cache.LookupAs<int64_t>(42);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.insertions, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.bytes, 64);
}

TEST_F(CacheTest, InsertReplacesExistingKey) {
  ShardedLruCache cache("t", 1 << 20);
  cache.Insert(1, IntValue(10), 100);
  cache.Insert(1, IntValue(20), 50);
  auto v = cache.LookupAs<int64_t>(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 20);
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_EQ(cache.bytes(), 50u);
}

TEST_F(CacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Single shard so the LRU order is global and deterministic.
  ShardedLruCache cache("t", /*capacity_bytes=*/300, /*shard_bits=*/0);
  cache.Insert(1, IntValue(1), 100);
  cache.Insert(2, IntValue(2), 100);
  cache.Insert(3, IntValue(3), 100);
  // Touch key 1 so key 2 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(1), nullptr);
  cache.Insert(4, IntValue(4), 100);
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(3), nullptr);
  EXPECT_NE(cache.Lookup(4), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_LE(cache.bytes(), 300u);
}

TEST_F(CacheTest, OversizedValueBecomesOnlyEntry) {
  ShardedLruCache cache("t", 100, /*shard_bits=*/0);
  cache.Insert(1, IntValue(1), 40);
  cache.Insert(2, IntValue(2), 1000);  // larger than the whole budget
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(2), nullptr);
  EXPECT_EQ(cache.entries(), 1);
}

TEST_F(CacheTest, EraseAndClearAreNotEvictions) {
  ShardedLruCache cache("t", 1 << 20);
  cache.Insert(1, IntValue(1), 10);
  cache.Insert(2, IntValue(2), 10);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_EQ(cache.Lookup(2), nullptr);
}

TEST_F(CacheTest, ValueSurvivesConcurrentEviction) {
  ShardedLruCache cache("t", 100, /*shard_bits=*/0);
  cache.Insert(1, IntValue(123), 80);
  auto held = cache.LookupAs<int64_t>(1);
  ASSERT_NE(held, nullptr);
  cache.Insert(2, IntValue(456), 80);  // evicts key 1
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_EQ(*held, 123);  // shared_ptr keeps the payload alive
}

TEST_F(CacheTest, FeedsMetricsRegistry) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  ShardedLruCache cache("unit", 1 << 20);
  cache.Insert(9, IntValue(9), 32);
  (void)cache.Lookup(9);   // hit
  (void)cache.Lookup(10);  // miss
  EXPECT_EQ(reg.counter("cache.unit.hits")->value(), 1);
  EXPECT_EQ(reg.counter("cache.unit.misses")->value(), 1);
  EXPECT_EQ(reg.counter("cache.unit.insertions")->value(), 1);
  EXPECT_EQ(reg.counter("cache.hits")->value(), 1);
  EXPECT_EQ(reg.counter("cache.misses")->value(), 1);
  EXPECT_EQ(reg.gauge("cache.unit.bytes")->value(), 32.0);
}

// Raw-thread hammer over a deliberately tiny cache: every operation class
// (hit, miss, insert-replace, evict, erase, clear) races with every other.
// Correctness here is "TSAN-clean + internal accounting stays consistent".
TEST_F(CacheTest, ConcurrentMixedWorkloadIsSafe) {
  ShardedLruCache cache("race", /*capacity_bytes=*/4096, /*shard_bits=*/2);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<int64_t> observed_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &observed_hits, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Key space of 64 spread over all shards via HashCombine.
        const uint64_t key = HashCombine(0x5eedULL, (t * 31 + i) % 64);
        switch (i % 5) {
          case 0:
          case 1: {
            auto v = cache.LookupAs<int64_t>(key);
            if (v != nullptr) {
              // Payload must equal what some thread inserted for this key.
              EXPECT_EQ(*v % 64, static_cast<int64_t>((t * 31 + i) % 64));
              observed_hits.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case 2:
            cache.Insert(key,
                         std::make_shared<const int64_t>(
                             static_cast<int64_t>((t * 31 + i) % 64 + 64 * i)),
                         64);
            break;
          case 3:
            cache.Erase(key);
            break;
          default:
            if (i % 1000 == 4) {
              cache.Clear();
            } else {
              (void)cache.Lookup(key);
            }
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses,
            MetricsRegistry::Global().counter("cache.race.hits")->value() +
                MetricsRegistry::Global().counter("cache.race.misses")->value());
  EXPECT_GE(s.hits, observed_hits.load());
  EXPECT_LE(cache.bytes(), 4096u);
  EXPECT_GE(s.insertions, 1);
}

}  // namespace
}  // namespace dl2sql
