/// \file mem_tracker_test.cc
/// \brief Hierarchical MemTracker semantics: charge propagation, peak and
/// cumulative counters, limit enforcement via TryConsume, destructor release,
/// the RAII charge helpers, and the runtime gate.
#include "common/mem_tracker.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace dl2sql {
namespace {

/// Forces the gate on for the test body and restores the prior state. Skips
/// the test when the layer is compiled out (-DDL2SQL_MEM_TRACKER=OFF), since
/// charges are unconditional no-ops then.
class ScopedTrackingEnabled {
 public:
  ScopedTrackingEnabled() : prior_(MemTracker::Enabled()) {
    MemTracker::SetEnabled(true);
  }
  ~ScopedTrackingEnabled() { MemTracker::SetEnabled(prior_); }
  bool active() const { return MemTracker::Enabled(); }

 private:
  const bool prior_;
};

#define REQUIRE_TRACKING(guard)                                         \
  if (!(guard).active()) {                                              \
    GTEST_SKIP() << "resource accounting compiled out";                 \
  }

TEST(MemTrackerTest, ChargesPropagateToAncestors) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  MemTracker root("root");
  MemTracker mid("mid", &root);
  MemTracker leaf("leaf", &mid);

  leaf.Consume(100);
  EXPECT_EQ(leaf.consumption(), 100);
  EXPECT_EQ(mid.consumption(), 100);
  EXPECT_EQ(root.consumption(), 100);

  mid.Consume(50);
  EXPECT_EQ(leaf.consumption(), 100);
  EXPECT_EQ(mid.consumption(), 150);
  EXPECT_EQ(root.consumption(), 150);

  leaf.Release(100);
  mid.Release(50);
  EXPECT_EQ(root.consumption(), 0);
}

TEST(MemTrackerTest, PeakAndCumulativeTrackHighWaterAndTotal) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  MemTracker t("t");
  t.Consume(100);
  t.Release(60);
  t.Consume(30);
  EXPECT_EQ(t.consumption(), 70);
  EXPECT_EQ(t.peak(), 100);
  EXPECT_EQ(t.cumulative(), 130);  // releases never reduce cumulative
  t.Release(70);
}

TEST(MemTrackerTest, TryConsumeEnforcesAncestorLimitNamingTracker) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  MemTracker budget("query-7", nullptr, /*limit_bytes=*/1000);
  MemTracker op("op.join", &budget);

  EXPECT_TRUE(op.TryConsume(800).ok());
  const Status overrun = op.TryConsume(300);
  ASSERT_FALSE(overrun.ok());
  EXPECT_EQ(overrun.code(), StatusCode::kResourceExhausted);
  // Names the limited tracker and the leaf that asked.
  EXPECT_NE(overrun.ToString().find("query-7"), std::string::npos)
      << overrun.ToString();
  EXPECT_NE(overrun.ToString().find("op.join"), std::string::npos)
      << overrun.ToString();
  // Failed attempt charged nothing.
  EXPECT_EQ(budget.consumption(), 800);
  // Still room below the limit.
  EXPECT_TRUE(op.TryConsume(200).ok());
  op.Release(1000);
}

TEST(MemTrackerTest, DestructorReleasesOutstandingFromAncestors) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  MemTracker root("root");
  {
    MemTracker child("child", &root);
    child.Consume(512);
    EXPECT_EQ(root.consumption(), 512);
  }
  EXPECT_EQ(root.consumption(), 0);
}

TEST(MemTrackerTest, ScopedChargeReleasesOnScopeExit) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  MemTracker t("t", nullptr, /*limit_bytes=*/100);
  {
    ScopedMemCharge charge(&t);
    EXPECT_TRUE(charge.Charge(60).ok());
    EXPECT_FALSE(charge.Charge(60).ok());  // over the limit, nothing charged
    charge.Add(10);                        // unchecked
    EXPECT_EQ(charge.charged(), 70);
    EXPECT_EQ(t.consumption(), 70);
  }
  EXPECT_EQ(t.consumption(), 0);
}

TEST(MemTrackerTest, BatchedChargeFlushesAtThresholdAndReleasesAll) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  MemTracker t("t");
  {
    BatchedMemCharge charge(&t, /*flush_bytes=*/100);
    charge.Add(40);
    EXPECT_EQ(t.consumption(), 0);  // below threshold, still pending
    charge.Add(70);
    EXPECT_EQ(t.consumption(), 110);  // crossed, flushed
    charge.Add(5);
  }
  EXPECT_EQ(t.consumption(), 0);  // dtor flushed the 5 and released 115
}

TEST(MemTrackerTest, DisabledGateMakesChargesNoOps) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  MemTracker t("t", nullptr, /*limit_bytes=*/10);
  MemTracker::SetEnabled(false);
  t.Consume(1000);
  EXPECT_EQ(t.consumption(), 0);
  EXPECT_TRUE(t.TryConsume(1000).ok());  // limits not enforced either
  EXPECT_EQ(t.peak(), 0);
  MemTracker::SetEnabled(true);
}

TEST(MemTrackerTest, ConcurrentChargesSumExactly) {
  ScopedTrackingEnabled guard;
  REQUIRE_TRACKING(guard);
  MemTracker root("root");
  MemTracker child("child", &root);
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&child] {
      for (int n = 0; n < kIters; ++n) {
        child.Consume(3);
        child.Release(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(child.consumption(), kThreads * kIters * 2);
  EXPECT_EQ(root.consumption(), kThreads * kIters * 2);
  EXPECT_GE(child.peak(), child.consumption());
  child.Release(child.consumption());
}

TEST(MemTrackerTest, ProcessRootIsSharedSingleton) {
  EXPECT_EQ(MemTracker::Process(), MemTracker::Process());
  EXPECT_EQ(MemTracker::Process()->parent(), nullptr);
}

TEST(ThreadCpuTest, CpuClockAdvancesUnderWork) {
  const int64_t before = ThreadCpuNanos();
  if (before == 0) GTEST_SKIP() << "thread CPU clock unavailable";
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 2'000'000; ++i) sink += i * i;
  (void)sink;
  EXPECT_GT(ThreadCpuNanos(), before);
}

}  // namespace
}  // namespace dl2sql
