/// \file common_test.cc
/// \brief Unit tests for the common runtime: Status/Result, byte buffers,
/// string utilities, timers and the deterministic RNG.
#include <gtest/gtest.h>

#include <thread>

#include "common/bytes.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace dl2sql {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad value: ", 42);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad value: 42");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad value: 42");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::InternalError("x").IsInternalError());
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("table t").WithContext("planning");
  EXPECT_EQ(s.message(), "planning: table t");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_TRUE(Status::OK().WithContext("nop").ok());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::IoError("disk");
  Status b = a;
  EXPECT_EQ(b.message(), "disk");
  EXPECT_TRUE(b.IsIoError());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive: ", v);
  return v;
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_TRUE(ok.status().ok());

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto f = [](int v) -> Result<int> {
    DL2SQL_ASSIGN_OR_RETURN(int x, ParsePositive(v));
    return x * 2;
  };
  EXPECT_EQ(*f(4), 8);
  EXPECT_FALSE(f(0).ok());
}

TEST(ResultTest, OkStatusConversionBecomesInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternalError());
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(std::move(ParsePositive(3)).ValueOr(-1), 3);
  EXPECT_EQ(std::move(ParsePositive(-3)).ValueOr(-1), -1);
}

TEST(BytesTest, RoundTripAllTypes) {
  BufferWriter w;
  w.WriteU8(7);
  w.WriteU32(123456);
  w.WriteU64(1ull << 40);
  w.WriteI64(-42);
  w.WriteF32(1.5f);
  w.WriteF64(-2.25);
  w.WriteString("hello");
  const float floats[] = {1.f, 2.f, 3.f};
  w.WriteFloats(floats, 3);

  BufferReader r(w.data());
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_EQ(*r.ReadU32(), 123456u);
  EXPECT_EQ(*r.ReadU64(), 1ull << 40);
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_FLOAT_EQ(*r.ReadF32(), 1.5f);
  EXPECT_DOUBLE_EQ(*r.ReadF64(), -2.25);
  EXPECT_EQ(*r.ReadString(), "hello");
  auto fs = r.ReadFloats();
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(fs->size(), 3u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, UnderflowIsOutOfRange) {
  BufferWriter w;
  w.WriteU8(1);
  BufferReader r(w.data());
  EXPECT_TRUE(r.ReadU8().ok());
  EXPECT_TRUE(r.ReadU64().status().IsOutOfRange());
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringUtilTest, SplitJoinTrim) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Join({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_TRUE(StartsWith("CREATE TEMP", "CREATE"));
  EXPECT_FALSE(StartsWith("CRE", "CREATE"));
}

TEST(StringUtilTest, Formatting) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MB");
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  const int64_t va = a.UniformInt(0, 1000000);
  EXPECT_EQ(va, b.UniformInt(0, 1000000));
  // Overwhelmingly likely to differ for another seed.
  Rng a2(7);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a2.UniformInt(0, 1 << 30) != c.UniformInt(0, 1 << 30)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, RangesRespected) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    const double d = rng.UniformReal(0.0, 1.0);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(2);
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) {
    counts[rng.Categorical({0.9, 0.1})]++;
  }
  EXPECT_GT(counts[0], counts[1] * 4);
}

TEST(TimerTest, CostAccumulatorBucketsAndMerge) {
  CostAccumulator a;
  a.Add("x", 1.0);
  a.Add("x", 0.5);
  a.Add("y", 2.0);
  EXPECT_DOUBLE_EQ(a.Get("x"), 1.5);
  EXPECT_DOUBLE_EQ(a.Get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(a.Total(), 3.5);

  CostAccumulator b;
  b.Add("y", 1.0);
  b.Add("z", 4.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Get("y"), 3.0);
  EXPECT_DOUBLE_EQ(a.Get("z"), 4.0);

  a.Clear();
  EXPECT_DOUBLE_EQ(a.Total(), 0.0);
}

TEST(TimerTest, ScopedTimerCharges) {
  CostAccumulator acc;
  {
    ScopedTimer t(&acc, "work");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(acc.Get("work"), 0.003);
}

TEST(TimerTest, StopwatchMonotonic) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double t1 = w.ElapsedSeconds();
  EXPECT_GT(t1, 0.0);
  EXPECT_GE(w.ElapsedMicros(), 1000);
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), t1 + 1.0);
}

}  // namespace
}  // namespace dl2sql
