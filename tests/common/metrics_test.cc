/// \file metrics_test.cc
/// \brief MetricsRegistry: counter/gauge/histogram semantics, stable handles,
/// JSON export, and lock-free concurrent updates (TSAN-exercised in CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace dl2sql {
namespace {

/// Shared-process registry: each test starts from zeroed metrics.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().ResetAll(); }
  void TearDown() override { MetricsRegistry::Global().ResetAll(); }
};

TEST_F(MetricsTest, CounterIncrementsAndResets) {
  Counter* c = MetricsRegistry::Global().counter("test.counter");
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42);
  c->Reset();
  EXPECT_EQ(c->value(), 0);
}

TEST_F(MetricsTest, GaugeHoldsLastValue) {
  Gauge* g = MetricsRegistry::Global().gauge("test.gauge");
  EXPECT_EQ(g->value(), 0.0);
  g->Set(3.5);
  g->Set(-1.25);
  EXPECT_EQ(g->value(), -1.25);
}

TEST_F(MetricsTest, HandlesAreStablePerName) {
  Counter* a = MetricsRegistry::Global().counter("test.stable");
  Counter* b = MetricsRegistry::Global().counter("test.stable");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, MetricsRegistry::Global().counter("test.stable2"));
  // Same name in a different namespace (gauge vs counter) is a distinct
  // metric, not an aliased handle.
  Gauge* g = MetricsRegistry::Global().gauge("test.stable");
  g->Set(7.0);
  EXPECT_EQ(a->value(), 0);
}

TEST_F(MetricsTest, HistogramBucketBoundsArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketBoundMicros(0), 1);
  EXPECT_EQ(Histogram::BucketBoundMicros(1), 2);
  EXPECT_EQ(Histogram::BucketBoundMicros(10), 1024);
  // The last bucket is +inf.
  EXPECT_EQ(Histogram::BucketBoundMicros(Histogram::kNumBuckets - 1), -1);
}

TEST_F(MetricsTest, HistogramRecordsIntoCorrectBuckets) {
  Histogram* h = MetricsRegistry::Global().histogram("test.hist");
  h->Record(1);     // bucket 0 (<= 1us)
  h->Record(2);     // bucket 1
  h->Record(3);     // bucket 2 (<= 4us)
  h->Record(1000);  // bucket 10 (<= 1024us)
  EXPECT_EQ(h->count(), 4);
  EXPECT_EQ(h->sum_micros(), 1 + 2 + 3 + 1000);
  EXPECT_EQ(h->bucket_count(0), 1);
  EXPECT_EQ(h->bucket_count(1), 1);
  EXPECT_EQ(h->bucket_count(2), 1);
  EXPECT_EQ(h->bucket_count(10), 1);
  // A value beyond every finite bound lands in the +inf bucket.
  h->Record(INT64_C(1) << 40);
  EXPECT_EQ(h->bucket_count(Histogram::kNumBuckets - 1), 1);
}

TEST_F(MetricsTest, HistogramQuantilesTrackTheDistribution) {
  Histogram* h = MetricsRegistry::Global().histogram("test.quant");
  for (int i = 0; i < 90; ++i) h->Record(10);    // bucket bound 16us
  for (int i = 0; i < 10; ++i) h->Record(5000);  // bucket bound 8192us
  EXPECT_EQ(h->ApproxQuantileMicros(0.5), 16);
  EXPECT_EQ(h->ApproxQuantileMicros(0.99), 8192);
  h->Reset();
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(h->ApproxQuantileMicros(0.5), 0);
}

TEST_F(MetricsTest, ToJsonContainsEveryMetricKind) {
  MetricsRegistry::Global().counter("test.json.counter")->Increment(7);
  MetricsRegistry::Global().gauge("test.json.gauge")->Set(2.5);
  MetricsRegistry::Global().histogram("test.json.hist")->Record(100);
  const std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(MetricsTest, CounterNamesAreSortedAndComplete) {
  MetricsRegistry::Global().counter("test.names.b");
  MetricsRegistry::Global().counter("test.names.a");
  const std::vector<std::string> names =
      MetricsRegistry::Global().CounterNames();
  int a_idx = -1, b_idx = -1;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "test.names.a") a_idx = static_cast<int>(i);
    if (names[i] == "test.names.b") b_idx = static_cast<int>(i);
  }
  ASSERT_GE(a_idx, 0);
  ASSERT_GE(b_idx, 0);
  EXPECT_LT(a_idx, b_idx);
}

TEST_F(MetricsTest, ResetAllZeroesButKeepsHandlesValid) {
  Counter* c = MetricsRegistry::Global().counter("test.reset.c");
  Histogram* h = MetricsRegistry::Global().histogram("test.reset.h");
  c->Increment(5);
  h->Record(100);
  MetricsRegistry::Global().ResetAll();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(h->count(), 0);
  c->Increment();  // handle still live after reset
  EXPECT_EQ(c->value(), 1);
}

TEST_F(MetricsTest, SnapshotCopiesEveryKindUnderOneLock) {
  MetricsRegistry& r = MetricsRegistry::Global();
  r.counter("test.snap.c")->Increment(3);
  r.gauge("test.snap.g")->Set(1.5);
  r.histogram("test.snap.h")->Record(100);
  const MetricsSnapshot snap = r.Snapshot();
  EXPECT_EQ(snap.counters.at("test.snap.c"), 3);
  EXPECT_EQ(snap.gauges.at("test.snap.g"), 1.5);
  EXPECT_EQ(snap.histograms.at("test.snap.h").count, 1);
  EXPECT_EQ(snap.histograms.at("test.snap.h").sum_micros, 100);
}

TEST_F(MetricsTest, SnapshotDeltaSubtractsCountersAndHistograms) {
  MetricsRegistry& r = MetricsRegistry::Global();
  Counter* c = r.counter("test.delta.c");
  Gauge* g = r.gauge("test.delta.g");
  Histogram* h = r.histogram("test.delta.h");
  c->Increment(10);
  g->Set(2.0);
  h->Record(10);
  const MetricsSnapshot before = r.Snapshot();
  c->Increment(32);
  g->Set(7.5);
  h->Record(10);
  h->Record(5000);
  Counter* fresh = r.counter("test.delta.new");
  fresh->Increment(4);
  const MetricsSnapshot after = r.Snapshot();

  const MetricsSnapshot delta = MetricsRegistry::SnapshotDelta(before, after);
  EXPECT_EQ(delta.counters.at("test.delta.c"), 32);
  // A counter born between the snapshots deltas against zero.
  EXPECT_EQ(delta.counters.at("test.delta.new"), 4);
  // Gauges are last-written values: the delta keeps `after`'s reading.
  EXPECT_EQ(delta.gauges.at("test.delta.g"), 7.5);
  const MetricsSnapshot::HistogramData& hd = delta.histograms.at("test.delta.h");
  EXPECT_EQ(hd.count, 2);
  EXPECT_EQ(hd.sum_micros, 10 + 5000);
  int64_t bucket_total = 0;
  for (int64_t b : hd.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 2);
}

TEST_F(MetricsTest, QuantileFromBucketsMatchesLiveHistogram) {
  Histogram* h = MetricsRegistry::Global().histogram("test.qfb");
  for (int i = 0; i < 90; ++i) h->Record(10);    // bucket bound 16us
  for (int i = 0; i < 10; ++i) h->Record(5000);  // bucket bound 8192us
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const MetricsSnapshot::HistogramData& hd = snap.histograms.at("test.qfb");
  EXPECT_EQ(hd.Quantile(0.5), h->ApproxQuantileMicros(0.5));
  EXPECT_EQ(hd.Quantile(0.5), 16);
  // The 95th sample of a 90/10 split already sits in the slow bucket.
  EXPECT_EQ(hd.Quantile(0.95), 8192);
  EXPECT_EQ(hd.Quantile(0.99), 8192);
  // Degenerate inputs stay in range: q=0 is the first populated bucket,
  // q=1 walks past every sample and reports the +inf sentinel.
  EXPECT_EQ(hd.Quantile(0.0), 16);
  EXPECT_EQ(hd.Quantile(1.0), -1);
  const MetricsSnapshot::HistogramData empty;
  EXPECT_EQ(empty.Quantile(0.5), 0);
}

TEST_F(MetricsTest, PrometheusTextRendersEveryKind) {
  MetricsRegistry& r = MetricsRegistry::Global();
  r.counter("test.prom.requests")->Increment(7);
  r.gauge("test.prom.pool-size")->Set(4.0);
  Histogram* h = r.histogram("test.prom.lat");
  h->Record(1);    // bucket le="1"
  h->Record(3);    // bucket le="4"
  const std::string text = MetricsRegistry::ToPrometheusText(r.Snapshot());

  // Names are sanitized: dots and dashes become underscores.
  EXPECT_NE(text.find("# TYPE test_prom_requests counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_requests 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_pool_size gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_lat histogram"), std::string::npos);
  // Buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(text.find("test_prom_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_prom_lat_bucket{le=\"4\"} 2"), std::string::npos);
  EXPECT_NE(text.find("test_prom_lat_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_lat_sum 4"), std::string::npos);
  EXPECT_NE(text.find("test_prom_lat_count 2"), std::string::npos);
}

TEST_F(MetricsTest, ConcurrentUpdatesAreExact) {
  // TSAN coverage: registry lookups and metric updates from many threads.
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      // Look the handles up inside the thread so registry lookup races with
      // other threads' lookups and updates.
      Counter* c = MetricsRegistry::Global().counter("test.mt.counter");
      Histogram* h = MetricsRegistry::Global().histogram("test.mt.hist");
      for (int i = 0; i < kIters; ++i) {
        c->Increment();
        h->Record(i % 100 + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(MetricsRegistry::Global().counter("test.mt.counter")->value(),
            kThreads * kIters);
  EXPECT_EQ(MetricsRegistry::Global().histogram("test.mt.hist")->count(),
            kThreads * kIters);
}

}  // namespace
}  // namespace dl2sql
