/// \file metrics_test.cc
/// \brief MetricsRegistry: counter/gauge/histogram semantics, stable handles,
/// JSON export, and lock-free concurrent updates (TSAN-exercised in CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace dl2sql {
namespace {

/// Shared-process registry: each test starts from zeroed metrics.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().ResetAll(); }
  void TearDown() override { MetricsRegistry::Global().ResetAll(); }
};

TEST_F(MetricsTest, CounterIncrementsAndResets) {
  Counter* c = MetricsRegistry::Global().counter("test.counter");
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42);
  c->Reset();
  EXPECT_EQ(c->value(), 0);
}

TEST_F(MetricsTest, GaugeHoldsLastValue) {
  Gauge* g = MetricsRegistry::Global().gauge("test.gauge");
  EXPECT_EQ(g->value(), 0.0);
  g->Set(3.5);
  g->Set(-1.25);
  EXPECT_EQ(g->value(), -1.25);
}

TEST_F(MetricsTest, HandlesAreStablePerName) {
  Counter* a = MetricsRegistry::Global().counter("test.stable");
  Counter* b = MetricsRegistry::Global().counter("test.stable");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, MetricsRegistry::Global().counter("test.stable2"));
  // Same name in a different namespace (gauge vs counter) is a distinct
  // metric, not an aliased handle.
  Gauge* g = MetricsRegistry::Global().gauge("test.stable");
  g->Set(7.0);
  EXPECT_EQ(a->value(), 0);
}

TEST_F(MetricsTest, HistogramBucketBoundsArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketBoundMicros(0), 1);
  EXPECT_EQ(Histogram::BucketBoundMicros(1), 2);
  EXPECT_EQ(Histogram::BucketBoundMicros(10), 1024);
  // The last bucket is +inf.
  EXPECT_EQ(Histogram::BucketBoundMicros(Histogram::kNumBuckets - 1), -1);
}

TEST_F(MetricsTest, HistogramRecordsIntoCorrectBuckets) {
  Histogram* h = MetricsRegistry::Global().histogram("test.hist");
  h->Record(1);     // bucket 0 (<= 1us)
  h->Record(2);     // bucket 1
  h->Record(3);     // bucket 2 (<= 4us)
  h->Record(1000);  // bucket 10 (<= 1024us)
  EXPECT_EQ(h->count(), 4);
  EXPECT_EQ(h->sum_micros(), 1 + 2 + 3 + 1000);
  EXPECT_EQ(h->bucket_count(0), 1);
  EXPECT_EQ(h->bucket_count(1), 1);
  EXPECT_EQ(h->bucket_count(2), 1);
  EXPECT_EQ(h->bucket_count(10), 1);
  // A value beyond every finite bound lands in the +inf bucket.
  h->Record(INT64_C(1) << 40);
  EXPECT_EQ(h->bucket_count(Histogram::kNumBuckets - 1), 1);
}

TEST_F(MetricsTest, HistogramQuantilesTrackTheDistribution) {
  Histogram* h = MetricsRegistry::Global().histogram("test.quant");
  for (int i = 0; i < 90; ++i) h->Record(10);    // bucket bound 16us
  for (int i = 0; i < 10; ++i) h->Record(5000);  // bucket bound 8192us
  EXPECT_EQ(h->ApproxQuantileMicros(0.5), 16);
  EXPECT_EQ(h->ApproxQuantileMicros(0.99), 8192);
  h->Reset();
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(h->ApproxQuantileMicros(0.5), 0);
}

TEST_F(MetricsTest, ToJsonContainsEveryMetricKind) {
  MetricsRegistry::Global().counter("test.json.counter")->Increment(7);
  MetricsRegistry::Global().gauge("test.json.gauge")->Set(2.5);
  MetricsRegistry::Global().histogram("test.json.hist")->Record(100);
  const std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(MetricsTest, CounterNamesAreSortedAndComplete) {
  MetricsRegistry::Global().counter("test.names.b");
  MetricsRegistry::Global().counter("test.names.a");
  const std::vector<std::string> names =
      MetricsRegistry::Global().CounterNames();
  int a_idx = -1, b_idx = -1;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "test.names.a") a_idx = static_cast<int>(i);
    if (names[i] == "test.names.b") b_idx = static_cast<int>(i);
  }
  ASSERT_GE(a_idx, 0);
  ASSERT_GE(b_idx, 0);
  EXPECT_LT(a_idx, b_idx);
}

TEST_F(MetricsTest, ResetAllZeroesButKeepsHandlesValid) {
  Counter* c = MetricsRegistry::Global().counter("test.reset.c");
  Histogram* h = MetricsRegistry::Global().histogram("test.reset.h");
  c->Increment(5);
  h->Record(100);
  MetricsRegistry::Global().ResetAll();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(h->count(), 0);
  c->Increment();  // handle still live after reset
  EXPECT_EQ(c->value(), 1);
}

TEST_F(MetricsTest, ConcurrentUpdatesAreExact) {
  // TSAN coverage: registry lookups and metric updates from many threads.
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      // Look the handles up inside the thread so registry lookup races with
      // other threads' lookups and updates.
      Counter* c = MetricsRegistry::Global().counter("test.mt.counter");
      Histogram* h = MetricsRegistry::Global().histogram("test.mt.hist");
      for (int i = 0; i < kIters; ++i) {
        c->Increment();
        h->Record(i % 100 + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(MetricsRegistry::Global().counter("test.mt.counter")->value(),
            kThreads * kIters);
  EXPECT_EQ(MetricsRegistry::Global().histogram("test.mt.hist")->count(),
            kThreads * kIters);
}

}  // namespace
}  // namespace dl2sql
