/// \file nn_test.cc
/// \brief minidl tests: layer math against references, shape inference,
/// composite blocks, model builders and serialization round-trips.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/builders.h"
#include "nn/serialize.h"

namespace dl2sql::nn {
namespace {

std::shared_ptr<Device> EdgeDevice() {
  static std::shared_ptr<Device> d = Device::Create(DeviceKind::kEdgeCpu);
  return d;
}

TEST(LayersTest, ConvOutputShape) {
  Rng rng(1);
  Conv2d conv("c", 3, 8, 3, 2, 1, &rng);
  auto s = conv.OutputShape(Shape({3, 16, 16}));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, Shape({8, 8, 8}));
  EXPECT_FALSE(conv.OutputShape(Shape({4, 16, 16})).ok());  // wrong channels
  EXPECT_FALSE(conv.OutputShape(Shape({16, 16})).ok());     // not CHW
  EXPECT_EQ(conv.NumParameters(), 8 * 3 * 3 * 3 + 8);
}

TEST(LayersTest, ConvIdentityKernel) {
  // A 1x1 conv with weight=1, bias=0 is identity per channel.
  Tensor w(Shape({1, 1, 1, 1}), {1.f});
  Conv2d conv("c", w, std::nullopt, 1, 0);
  Rng rng(2);
  Tensor in = Tensor::Random(Shape({1, 4, 4}), &rng);
  auto out = conv.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(*MaxAbsDiff(in, *out), 0.0);
}

TEST(LayersTest, BatchNormMath) {
  // y = gamma * (x - mean)/sqrt(var+eps) + beta, per channel.
  Tensor gamma(Shape({2}), {2.f, 1.f});
  Tensor beta(Shape({2}), {1.f, 0.f});
  Tensor mean(Shape({2}), {0.5f, -1.f});
  Tensor var(Shape({2}), {4.f, 1.f});
  BatchNorm bn("bn", gamma, beta, mean, var, 0.f);
  Tensor in(Shape({2, 1, 1}), {2.5f, 0.f});
  auto out = bn.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->at(0), 2.f * (2.5f - 0.5f) / 2.f + 1.f, 1e-5);
  EXPECT_NEAR(out->at(1), (0.f + 1.f) / 1.f, 1e-5);
}

TEST(LayersTest, IdentityBatchNormIsNoOp) {
  BatchNorm bn("bn", 3);
  Rng rng(3);
  Tensor in = Tensor::Random(Shape({3, 4, 4}), &rng);
  auto out = bn.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(out.ok());
  EXPECT_LT(*MaxAbsDiff(in, *out), 1e-4);
}

TEST(LayersTest, InstanceNormNormalizes) {
  InstanceNorm inorm("in", 2);
  Rng rng(4);
  Tensor in = Tensor::Random(Shape({2, 8, 8}), &rng, 3.0f);
  auto out = inorm.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(out.ok());
  // Each channel of the output has ~zero mean, ~unit variance.
  for (int64_t c = 0; c < 2; ++c) {
    double sum = 0, sq = 0;
    for (int64_t i = 0; i < 64; ++i) {
      const float v = out->at(c * 64 + i);
      sum += v;
      sq += v * v;
    }
    EXPECT_NEAR(sum / 64, 0.0, 1e-3);
    EXPECT_NEAR(sq / 64, 1.0, 1e-2);
  }
}

TEST(LayersTest, MaxAndAvgPool) {
  Tensor in(Shape({1, 4, 4}),
            {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  MaxPool2d mp("mp", 2, 2);
  auto mo = mp.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(mo.ok());
  EXPECT_EQ(mo->shape(), Shape({1, 2, 2}));
  EXPECT_FLOAT_EQ(mo->at3(0, 0, 0), 6.f);
  EXPECT_FLOAT_EQ(mo->at3(0, 1, 1), 16.f);

  AvgPool2d ap("ap", 2, 2);
  auto ao = ap.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(ao.ok());
  EXPECT_FLOAT_EQ(ao->at3(0, 0, 0), 3.5f);
  EXPECT_FLOAT_EQ(ao->at3(0, 1, 1), 13.5f);
}

TEST(LayersTest, GlobalAvgPool) {
  Tensor in(Shape({2, 2, 2}), {1, 2, 3, 4, 10, 20, 30, 40});
  GlobalAvgPool gap("gap");
  auto out = gap.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), Shape({2}));
  EXPECT_FLOAT_EQ(out->at(0), 2.5f);
  EXPECT_FLOAT_EQ(out->at(1), 25.f);
}

TEST(LayersTest, LinearMath) {
  Tensor w(Shape({2, 3}), {1, 0, -1, 2, 2, 2});
  Tensor b(Shape({2}), {0.5f, -1.f});
  Linear fc("fc", w, b);
  Tensor in(Shape({3}), {1.f, 2.f, 3.f});
  auto out = fc.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->at(0), 1 - 3 + 0.5f);
  EXPECT_FLOAT_EQ(out->at(1), 2 + 4 + 6 - 1.f);
  EXPECT_FALSE(fc.Forward(Tensor(Shape({4})), EdgeDevice().get()).ok());
}

TEST(LayersTest, DeconvInvertsShapeRule) {
  Rng rng(5);
  Deconv2d d("d", 2, 3, 3, 2, 1, &rng);
  auto s = d.OutputShape(Shape({2, 5, 5}));
  ASSERT_TRUE(s.ok());
  // out = (in-1)*stride - 2*pad + k = 4*2 - 2 + 3 = 9
  EXPECT_EQ(*s, Shape({3, 9, 9}));
  Tensor in = Tensor::Random(Shape({2, 5, 5}), &rng);
  auto out = d.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), *s);
}

TEST(BlocksTest, IdentityBlockPreservesShape) {
  Rng rng(6);
  IdentityBlock block("ib", 4, 3, 2, &rng);
  Tensor in = Tensor::Random(Shape({4, 6, 6}), &rng);
  auto out = block.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), in.shape());
  // Output is post-ReLU: non-negative.
  for (int64_t i = 0; i < out->NumElements(); ++i) {
    EXPECT_GE(out->at(i), 0.f);
  }
}

TEST(BlocksTest, ResidualBlockDownsamples) {
  Rng rng(7);
  ResidualBlock block("rb", 4, 8, 3, 2, 2, &rng);
  auto s = block.OutputShape(Shape({4, 8, 8}));
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(*s, Shape({8, 4, 4}));
  Tensor in = Tensor::Random(Shape({4, 8, 8}), &rng);
  auto out = block.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), *s);
}

TEST(BlocksTest, DenseBlockGrowsChannels) {
  Rng rng(8);
  DenseBlock block("db", 4, 2, 3, 3, &rng);
  auto s = block.OutputShape(Shape({4, 5, 5}));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, Shape({4 + 3 * 2, 5, 5}));
  Tensor in = Tensor::Random(Shape({4, 5, 5}), &rng);
  auto out = block.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), *s);
  // The first input channels pass through unchanged (concat semantics).
  for (int64_t i = 0; i < in.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(out->at(i), in.at(i));
  }
}

TEST(BlocksTest, ConcatChannelsValidation) {
  Tensor a(Shape({1, 2, 2}));
  Tensor b(Shape({2, 2, 2}));
  auto c = ConcatChannels({a, b});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->shape(), Shape({3, 2, 2}));
  EXPECT_FALSE(ConcatChannels({a, Tensor(Shape({1, 3, 2}))}).ok());
  EXPECT_FALSE(ConcatChannels({}).ok());
}

TEST(ModelTest, ForwardValidatesInputShape) {
  Model m = BuildStudentCnn({});
  Tensor wrong(Shape({3, 8, 8}));
  EXPECT_FALSE(m.Forward(wrong, EdgeDevice().get()).ok());
}

TEST(ModelTest, PredictReturnsArgmax) {
  BuilderOptions b;
  b.input_size = 16;
  b.base_channels = 2;
  Model m = BuildStudentCnn(b);
  Rng rng(9);
  Tensor in = Tensor::Random(m.input_shape(), &rng, 1.0f);
  auto probs = m.Forward(in, EdgeDevice().get());
  auto pred = m.Predict(in, EdgeDevice().get());
  ASSERT_TRUE(probs.ok() && pred.ok());
  for (int64_t i = 0; i < probs->NumElements(); ++i) {
    EXPECT_LE(probs->at(i), probs->at(*pred));
  }
}

TEST(BuildersTest, OutputShapesAreClassCounts) {
  for (auto* build : {&BuildStudentCnn, &BuildLeNet, &BuildVggTiny,
                      &BuildDenseNetTiny, &BuildAttentionMlp}) {
    BuilderOptions b;
    b.input_size = 16;
    b.num_classes = 7;
    b.base_channels = 2;
    Model m = build(b);
    auto s = m.OutputShape();
    ASSERT_TRUE(s.ok()) << m.name() << ": " << s.status().ToString();
    EXPECT_EQ(*s, Shape({7})) << m.name();
    EXPECT_GT(m.NumParameters(), 0) << m.name();
  }
}

TEST(BuildersTest, ResNetParamsGrowLinearly) {
  BuilderOptions b;
  b.input_size = 16;
  b.base_channels = 8;
  std::vector<int64_t> params;
  for (int64_t depth : {5, 10, 15, 20}) {
    auto m = BuildResNet(depth, b);
    ASSERT_TRUE(m.ok());
    params.push_back(m->NumParameters());
  }
  // Differences between consecutive depths are equal (linear growth), as in
  // Table VI of the paper.
  const int64_t d1 = params[1] - params[0];
  const int64_t d2 = params[2] - params[1];
  const int64_t d3 = params[3] - params[2];
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d2, d3);
  EXPECT_GT(d1, 0);
  EXPECT_FALSE(BuildResNet(2, b).ok());
}

TEST(BuildersTest, DeterministicPerSeed) {
  BuilderOptions b;
  b.input_size = 16;
  b.base_channels = 2;
  Model m1 = BuildStudentCnn(b);
  Model m2 = BuildStudentCnn(b);
  Rng rng(10);
  Tensor in = Tensor::Random(m1.input_shape(), &rng, 1.0f);
  auto o1 = m1.Forward(in, EdgeDevice().get());
  auto o2 = m2.Forward(in, EdgeDevice().get());
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_DOUBLE_EQ(*MaxAbsDiff(*o1, *o2), 0.0);
}

class SerializeRoundTripTest
    : public ::testing::TestWithParam<ModelFormat> {};

TEST_P(SerializeRoundTripTest, ModelsComputeSameFunction) {
  BuilderOptions b;
  b.input_size = 12;
  b.base_channels = 3;
  // Cover composite blocks too.
  auto resnet = BuildResNet(7, b);
  ASSERT_TRUE(resnet.ok());
  for (const Model* m :
       {&*resnet}) {
    auto bytes = SerializeModel(*m, GetParam());
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    auto back = DeserializeModel(*bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->NumParameters(), m->NumParameters());
    Rng rng(11);
    Tensor in = Tensor::Random(m->input_shape(), &rng, 1.0f);
    auto o1 = m->Forward(in, EdgeDevice().get());
    auto o2 = back->Forward(in, EdgeDevice().get());
    ASSERT_TRUE(o1.ok() && o2.ok());
    EXPECT_DOUBLE_EQ(*MaxAbsDiff(*o1, *o2), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, SerializeRoundTripTest,
                         ::testing::Values(ModelFormat::kScript,
                                           ModelFormat::kCompiledBlob));

TEST(SerializeTest, ScriptLargerThanBlob) {
  BuilderOptions b;
  b.input_size = 16;
  Model m = BuildStudentCnn(b);
  auto script = SerializedSize(m, ModelFormat::kScript);
  auto blob = SerializedSize(m, ModelFormat::kCompiledBlob);
  ASSERT_TRUE(script.ok() && blob.ok());
  EXPECT_GT(*script, *blob);
}

TEST(SerializeTest, ScriptKeepsNamesBlobDoesNot) {
  BuilderOptions b;
  b.input_size = 16;
  b.base_channels = 2;
  Model m = BuildStudentCnn(b);
  auto script = SerializeModel(m, ModelFormat::kScript);
  auto blob = SerializeModel(m, ModelFormat::kCompiledBlob);
  auto from_script = DeserializeModel(*script);
  auto from_blob = DeserializeModel(*blob);
  ASSERT_TRUE(from_script.ok() && from_blob.ok());
  EXPECT_EQ(from_script->layers()[0]->name(), m.layers()[0]->name());
  EXPECT_EQ(from_blob->layers()[0]->name(), "layer0");
  EXPECT_EQ(from_script->classes()[0], m.classes()[0]);
}

TEST(SerializeTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeModel("").ok());
  EXPECT_FALSE(DeserializeModel("DL2SQLM1").ok());
  EXPECT_FALSE(DeserializeModel("NOTMAGIC_xxxxxxxxxxxx").ok());
  BuilderOptions b;
  b.input_size = 16;
  b.base_channels = 2;
  Model m = BuildStudentCnn(b);
  auto bytes = SerializeModel(m, ModelFormat::kCompiledBlob);
  std::string corrupt = *bytes;
  corrupt.resize(corrupt.size() / 2);
  EXPECT_FALSE(DeserializeModel(corrupt).ok());
}

}  // namespace
}  // namespace dl2sql::nn
