/// \file compute_test.cc
/// \brief Kernel-level properties: ParallelMatMul thread-count invariance and
/// the conv/deconv adjoint identity <Conv(x), y> == <x, Deconv(y)>.
#include <gtest/gtest.h>

#include "nn/compute.h"

namespace dl2sql::nn {
namespace {

TEST(ParallelMatMulTest, MatchesSerialAcrossShapes) {
  auto parallel = Device::Create(DeviceKind::kServerCpu);
  Rng rng(1);
  // Include m > 1024 so the thread pool actually splits the row loop.
  const std::pair<int64_t, int64_t> shapes[] = {
      {3, 4}, {64, 64}, {1500, 32}, {2048, 8}};
  for (const auto& [m, k] : shapes) {
    Tensor a = Tensor::Random(Shape({m, k}), &rng, 1.0f);
    Tensor b = Tensor::Random(Shape({k, m / 2 + 1}), &rng, 1.0f);
    auto serial = MatMul(a, b);
    auto par = ParallelMatMul(a, b, parallel.get());
    ASSERT_TRUE(serial.ok() && par.ok());
    EXPECT_LT(*MaxAbsDiff(*serial, *par), 1e-4) << m << "x" << k;
  }
}

TEST(ParallelMatMulTest, NullDeviceRunsInline) {
  Rng rng(2);
  Tensor a = Tensor::Random(Shape({8, 8}), &rng);
  Tensor b = Tensor::Random(Shape({8, 8}), &rng);
  auto r = ParallelMatMul(a, b, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*MaxAbsDiff(*MatMul(a, b), *r), 0.0);
}

double Dot(const Tensor& a, const Tensor& b) {
  double acc = 0;
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    acc += static_cast<double>(a.at(i)) * static_cast<double>(b.at(i));
  }
  return acc;
}

struct AdjointCase {
  int64_t in_c, out_c, size, k, stride, pad;
};

class ConvDeconvAdjointTest : public ::testing::TestWithParam<AdjointCase> {};

TEST_P(ConvDeconvAdjointTest, InnerProductIdentity) {
  // <Conv(x; W), y> == <x, Deconv(y; W^T)> where W^T swaps the channel axes.
  // This is an independent check of both kernels: any indexing or padding
  // bug breaks the identity for random x, y.
  const AdjointCase p = GetParam();
  // Geometry must divide exactly so deconv's output shape matches x.
  ASSERT_EQ((p.size + 2 * p.pad - p.k) % p.stride, 0);
  Rng rng(p.k * 17 + p.stride);
  auto device = Device::Create(DeviceKind::kEdgeCpu);

  Tensor x = Tensor::Random(Shape({p.in_c, p.size, p.size}), &rng, 1.0f);
  Tensor w = Tensor::Random(Shape({p.out_c, p.in_c, p.k, p.k}), &rng, 1.0f);
  auto conv = Conv2dForward(x, w, nullptr, p.stride, p.pad, device.get());
  ASSERT_TRUE(conv.ok()) << conv.status().ToString();
  Tensor y = Tensor::Random(conv->shape(), &rng, 1.0f);

  // W^T: [in_c, out_c, k, k] with weights transposed across channel axes.
  Tensor wt(Shape({p.in_c, p.out_c, p.k, p.k}));
  for (int64_t o = 0; o < p.out_c; ++o) {
    for (int64_t i = 0; i < p.in_c; ++i) {
      for (int64_t a = 0; a < p.k; ++a) {
        for (int64_t b = 0; b < p.k; ++b) {
          wt.at((((i * p.out_c) + o) * p.k + a) * p.k + b) =
              w.at((((o * p.in_c) + i) * p.k + a) * p.k + b);
        }
      }
    }
  }
  auto deconv = Deconv2dForward(y, wt, nullptr, p.stride, p.pad);
  ASSERT_TRUE(deconv.ok()) << deconv.status().ToString();
  ASSERT_EQ(deconv->shape(), x.shape());

  const double lhs = Dot(*conv, y);
  const double rhs = Dot(x, *deconv);
  EXPECT_NEAR(lhs, rhs, 1e-3 * (std::abs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvDeconvAdjointTest,
    ::testing::Values(AdjointCase{1, 1, 5, 3, 1, 0},
                      AdjointCase{2, 3, 7, 3, 2, 0},
                      AdjointCase{3, 2, 6, 3, 1, 1},
                      AdjointCase{2, 4, 9, 5, 2, 0},
                      AdjointCase{4, 1, 8, 1, 1, 0}));

TEST(SoftmaxTest, TwoDimensionalRows) {
  Tensor a(Shape({2, 3}), {1, 2, 3, -1, 0, 1});
  auto s = Softmax(a);
  ASSERT_TRUE(s.ok());
  for (int64_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (int64_t c = 0; c < 3; ++c) sum += s->at2(r, c);
    EXPECT_NEAR(sum, 1.f, 1e-6);
  }
  // Both rows have the same relative offsets, so equal distributions.
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(s->at2(0, c), s->at2(1, c), 1e-6);
  }
}

}  // namespace
}  // namespace dl2sql::nn
