/// \file layers.h
/// \brief Primitive Layer implementations (Table II rows "Supported").
#pragma once

#include <optional>

#include "nn/compute.h"
#include "nn/layer.h"

namespace dl2sql::nn {

/// \brief 2-D convolution with OIHW weights and optional bias.
class Conv2d : public Layer {
 public:
  /// Randomly initialized conv layer.
  Conv2d(std::string name, int64_t in_channels, int64_t out_channels,
         int64_t kernel, int64_t stride, int64_t pad, Rng* rng);

  /// Conv layer with explicit weights (weight OIHW; bias [out_c] or absent).
  Conv2d(std::string name, Tensor weight, std::optional<Tensor> bias,
         int64_t stride, int64_t pad);

  LayerKind kind() const override { return LayerKind::kConv2d; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override;
  std::vector<NamedParam> Parameters() const override;

  int64_t in_channels() const { return weight_.shape()[1]; }
  int64_t out_channels() const { return weight_.shape()[0]; }
  int64_t kernel_h() const { return weight_.shape()[2]; }
  int64_t kernel_w() const { return weight_.shape()[3]; }
  int64_t stride() const { return stride_; }
  int64_t pad() const { return pad_; }
  const Tensor& weight() const { return weight_; }
  const std::optional<Tensor>& bias() const { return bias_; }

 private:
  Tensor weight_;
  std::optional<Tensor> bias_;
  int64_t stride_;
  int64_t pad_;
};

/// \brief Transposed convolution (deconvolution).
class Deconv2d : public Layer {
 public:
  Deconv2d(std::string name, int64_t in_channels, int64_t out_channels,
           int64_t kernel, int64_t stride, int64_t pad, Rng* rng);
  Deconv2d(std::string name, Tensor weight, std::optional<Tensor> bias,
           int64_t stride, int64_t pad);

  LayerKind kind() const override { return LayerKind::kDeconv2d; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override;
  std::vector<NamedParam> Parameters() const override;

  int64_t stride() const { return stride_; }
  int64_t pad() const { return pad_; }
  const Tensor& weight() const { return weight_; }

 private:
  Tensor weight_;
  std::optional<Tensor> bias_;
  int64_t stride_;
  int64_t pad_;
};

/// \brief Inference-mode batch normalization (uses frozen running stats).
class BatchNorm : public Layer {
 public:
  /// Identity-initialized BN over `channels`.
  BatchNorm(std::string name, int64_t channels);

  /// BN with explicit parameters, each of size [channels].
  BatchNorm(std::string name, Tensor gamma, Tensor beta, Tensor running_mean,
            Tensor running_var, float eps = 1e-5f);

  LayerKind kind() const override { return LayerKind::kBatchNorm; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override;
  std::vector<NamedParam> Parameters() const override;

  float eps() const { return eps_; }
  const Tensor& gamma() const { return gamma_; }
  const Tensor& beta() const { return beta_; }
  const Tensor& running_mean() const { return mean_; }
  const Tensor& running_var() const { return var_; }

  /// Randomizes the running statistics; used by tests so BN is not identity.
  void RandomizeStats(Rng* rng);

 private:
  Tensor gamma_, beta_, mean_, var_;
  float eps_;
};

/// \brief Instance normalization (per-channel spatial stats, affine params).
class InstanceNorm : public Layer {
 public:
  InstanceNorm(std::string name, int64_t channels, float eps = 1e-5f);

  LayerKind kind() const override { return LayerKind::kInstanceNorm; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override;
  std::vector<NamedParam> Parameters() const override;

  float eps() const { return eps_; }

 private:
  Tensor gamma_, beta_;
  float eps_;
};

/// \brief Rectified linear activation.
class ReluLayer : public Layer {
 public:
  explicit ReluLayer(std::string name) : Layer(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::kRelu; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override { return input; }
};

/// \brief Max pooling over square windows.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::string name, int64_t window, int64_t stride);
  LayerKind kind() const override { return LayerKind::kMaxPool; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override;
  int64_t window() const { return window_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t window_;
  int64_t stride_;
};

/// \brief Average pooling over square windows.
class AvgPool2d : public Layer {
 public:
  AvgPool2d(std::string name, int64_t window, int64_t stride);
  LayerKind kind() const override { return LayerKind::kAvgPool; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override;
  int64_t window() const { return window_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t window_;
  int64_t stride_;
};

/// \brief Global average pooling: CHW -> [C].
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::kGlobalAvgPool; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override;
};

/// \brief Flattens any input to 1-D.
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name) : Layer(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::kFlatten; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override {
    return Shape({input.NumElements()});
  }
};

/// \brief Fully connected layer y = Wx + b.
class Linear : public Layer {
 public:
  Linear(std::string name, int64_t in_dim, int64_t out_dim, Rng* rng);
  Linear(std::string name, Tensor weight, std::optional<Tensor> bias);

  LayerKind kind() const override { return LayerKind::kLinear; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override;
  std::vector<NamedParam> Parameters() const override;

  int64_t in_dim() const { return weight_.shape()[1]; }
  int64_t out_dim() const { return weight_.shape()[0]; }
  const Tensor& weight() const { return weight_; }
  const std::optional<Tensor>& bias() const { return bias_; }

 private:
  Tensor weight_;
  std::optional<Tensor> bias_;
};

/// \brief Softmax over a 1-D activation vector.
class SoftmaxLayer : public Layer {
 public:
  explicit SoftmaxLayer(std::string name) : Layer(std::move(name)) {}
  LayerKind kind() const override { return LayerKind::kSoftmax; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override { return input; }
};

}  // namespace dl2sql::nn
