#include "nn/compute.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dl2sql::nn {

Result<Tensor> ParallelMatMul(const Tensor& a, const Tensor& b, Device* device) {
  if (a.shape().ndim() != 2 || b.shape().ndim() != 2) {
    return Status::InvalidArgument("ParallelMatMul requires 2-D tensors");
  }
  const int64_t m = a.shape()[0];
  const int64_t k = a.shape()[1];
  if (k != b.shape()[0]) {
    return Status::InvalidArgument("ParallelMatMul inner-dim mismatch: ",
                                   a.shape().ToString(), " x ",
                                   b.shape().ToString());
  }
  const int64_t n = b.shape()[1];
  Tensor out(Shape({m, n}));
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  auto body = [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      float* orow = po + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = pa[i * k + kk];
        if (av == 0.f) continue;
        const float* brow = pb + kk * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  };
  if (device != nullptr && device->pool()->num_threads() > 1 && m > 1) {
    // Parallelize over output rows; chunks of rows never alias.
    device->pool()->ParallelFor(m, body);
  } else {
    body(0, m);
  }
  return out;
}

Result<Tensor> Conv2dForward(const Tensor& input, const Tensor& weight,
                             const Tensor* bias, int64_t stride, int64_t pad,
                             Device* device) {
  if (input.shape().ndim() != 3) {
    return Status::InvalidArgument("Conv2dForward requires CHW input, got ",
                                   input.shape().ToString());
  }
  if (weight.shape().ndim() != 4) {
    return Status::InvalidArgument("Conv2dForward requires OIHW weight, got ",
                                   weight.shape().ToString());
  }
  const int64_t out_c = weight.shape()[0];
  const int64_t in_c = weight.shape()[1];
  const int64_t kh = weight.shape()[2];
  const int64_t kw = weight.shape()[3];
  if (input.shape()[0] != in_c) {
    return Status::InvalidArgument("conv channel mismatch: input ",
                                   input.shape().ToString(), " weight ",
                                   weight.shape().ToString());
  }
  const int64_t h = input.shape()[1];
  const int64_t w = input.shape()[2];
  const int64_t out_h = (h + 2 * pad - kh) / stride + 1;
  const int64_t out_w = (w + 2 * pad - kw) / stride + 1;
  if (out_h <= 0 || out_w <= 0) {
    return Status::InvalidArgument("conv output would be empty: input ",
                                   input.shape().ToString(), " kernel ", kh, "x",
                                   kw, " stride ", stride, " pad ", pad);
  }

  DL2SQL_ASSIGN_OR_RETURN(Tensor cols, Im2Col(input, kh, kw, stride, pad));
  DL2SQL_ASSIGN_OR_RETURN(
      Tensor wmat, weight.Reshape(Shape({out_c, in_c * kh * kw})));
  DL2SQL_ASSIGN_OR_RETURN(Tensor prod, ParallelMatMul(wmat, cols, device));

  Tensor out(Shape({out_c, out_h, out_w}));
  const int64_t plane = out_h * out_w;
  for (int64_t oc = 0; oc < out_c; ++oc) {
    const float b = bias != nullptr ? bias->at(oc) : 0.f;
    const float* src = prod.data() + oc * plane;
    float* dst = out.data() + oc * plane;
    for (int64_t i = 0; i < plane; ++i) dst[i] = src[i] + b;
  }
  return out;
}

namespace {

template <typename Reducer>
Result<Tensor> Pool2d(const Tensor& input, int64_t k, int64_t stride,
                      Reducer reduce, float init) {
  if (input.shape().ndim() != 3) {
    return Status::InvalidArgument("pooling requires CHW input, got ",
                                   input.shape().ToString());
  }
  if (k <= 0 || stride <= 0) {
    return Status::InvalidArgument("pooling window/stride must be positive");
  }
  const int64_t c = input.shape()[0];
  const int64_t h = input.shape()[1];
  const int64_t w = input.shape()[2];
  if (k > h || k > w) {
    return Status::InvalidArgument("pool window ", k, " larger than input ",
                                   input.shape().ToString());
  }
  const int64_t out_h = (h - k) / stride + 1;
  const int64_t out_w = (w - k) / stride + 1;
  Tensor out(Shape({c, out_h, out_w}));
  for (int64_t ci = 0; ci < c; ++ci) {
    for (int64_t oy = 0; oy < out_h; ++oy) {
      for (int64_t ox = 0; ox < out_w; ++ox) {
        float acc = init;
        for (int64_t ki = 0; ki < k; ++ki) {
          for (int64_t kj = 0; kj < k; ++kj) {
            acc = reduce(acc, input.at3(ci, oy * stride + ki, ox * stride + kj));
          }
        }
        out.at3(ci, oy, ox) = acc;
      }
    }
  }
  return out;
}

}  // namespace

Result<Tensor> MaxPool2dForward(const Tensor& input, int64_t k, int64_t stride) {
  return Pool2d(
      input, k, stride, [](float a, float b) { return std::max(a, b); },
      -std::numeric_limits<float>::infinity());
}

Result<Tensor> AvgPool2dForward(const Tensor& input, int64_t k, int64_t stride) {
  DL2SQL_ASSIGN_OR_RETURN(
      Tensor summed,
      Pool2d(
          input, k, stride, [](float a, float b) { return a + b; }, 0.f));
  const float inv = 1.f / static_cast<float>(k * k);
  for (int64_t i = 0; i < summed.NumElements(); ++i) summed.at(i) *= inv;
  return summed;
}

Result<Tensor> BatchNormForward(const Tensor& input, const Tensor& gamma,
                                const Tensor& beta, const Tensor& mean,
                                const Tensor& var, float eps) {
  if (input.shape().ndim() != 3) {
    return Status::InvalidArgument("BatchNorm requires CHW input, got ",
                                   input.shape().ToString());
  }
  const int64_t c = input.shape()[0];
  if (gamma.NumElements() != c || beta.NumElements() != c ||
      mean.NumElements() != c || var.NumElements() != c) {
    return Status::InvalidArgument("BatchNorm parameter size mismatch for ", c,
                                   " channels");
  }
  const int64_t plane = input.shape()[1] * input.shape()[2];
  Tensor out(input.shape());
  for (int64_t ci = 0; ci < c; ++ci) {
    const float scale =
        gamma.at(ci) / std::sqrt(var.at(ci) + eps);
    const float shift = beta.at(ci) - mean.at(ci) * scale;
    const float* src = input.data() + ci * plane;
    float* dst = out.data() + ci * plane;
    for (int64_t i = 0; i < plane; ++i) dst[i] = src[i] * scale + shift;
  }
  return out;
}

Result<Tensor> InstanceNormForward(const Tensor& input, const Tensor& gamma,
                                   const Tensor& beta, float eps) {
  if (input.shape().ndim() != 3) {
    return Status::InvalidArgument("InstanceNorm requires CHW input, got ",
                                   input.shape().ToString());
  }
  const int64_t c = input.shape()[0];
  if (gamma.NumElements() != c || beta.NumElements() != c) {
    return Status::InvalidArgument("InstanceNorm parameter size mismatch");
  }
  const int64_t plane = input.shape()[1] * input.shape()[2];
  Tensor out(input.shape());
  for (int64_t ci = 0; ci < c; ++ci) {
    const float* src = input.data() + ci * plane;
    double sum = 0;
    for (int64_t i = 0; i < plane; ++i) sum += src[i];
    const double mu = sum / static_cast<double>(plane);
    double sq = 0;
    for (int64_t i = 0; i < plane; ++i) {
      const double d = src[i] - mu;
      sq += d * d;
    }
    const double sigma2 = sq / static_cast<double>(plane);
    const float scale =
        gamma.at(ci) / static_cast<float>(std::sqrt(sigma2 + eps));
    const float shift = beta.at(ci) - static_cast<float>(mu) * scale;
    float* dst = out.data() + ci * plane;
    for (int64_t i = 0; i < plane; ++i) dst[i] = src[i] * scale + shift;
  }
  return out;
}

Result<Tensor> LinearForward(const Tensor& input, const Tensor& weight,
                             const Tensor* bias, Device* device) {
  if (weight.shape().ndim() != 2) {
    return Status::InvalidArgument("Linear weight must be 2-D, got ",
                                   weight.shape().ToString());
  }
  const int64_t out_dim = weight.shape()[0];
  const int64_t in_dim = weight.shape()[1];
  if (input.NumElements() != in_dim) {
    return Status::InvalidArgument("Linear input size ", input.NumElements(),
                                   " != weight in-dim ", in_dim);
  }
  DL2SQL_ASSIGN_OR_RETURN(Tensor x, input.Reshape(Shape({in_dim, 1})));
  DL2SQL_ASSIGN_OR_RETURN(Tensor y, ParallelMatMul(weight, x, device));
  DL2SQL_ASSIGN_OR_RETURN(Tensor flat, y.Reshape(Shape({out_dim})));
  if (bias != nullptr) {
    if (bias->NumElements() != out_dim) {
      return Status::InvalidArgument("Linear bias size mismatch");
    }
    for (int64_t i = 0; i < out_dim; ++i) flat.at(i) += bias->at(i);
  }
  return flat;
}

Result<Tensor> Deconv2dForward(const Tensor& input, const Tensor& weight,
                               const Tensor* bias, int64_t stride, int64_t pad) {
  if (input.shape().ndim() != 3 || weight.shape().ndim() != 4) {
    return Status::InvalidArgument("Deconv2dForward requires CHW input and ",
                                   "OIHW weight");
  }
  const int64_t out_c = weight.shape()[0];
  const int64_t in_c = weight.shape()[1];
  const int64_t kh = weight.shape()[2];
  const int64_t kw = weight.shape()[3];
  if (input.shape()[0] != in_c) {
    return Status::InvalidArgument("deconv channel mismatch");
  }
  const int64_t h = input.shape()[1];
  const int64_t w = input.shape()[2];
  const int64_t out_h = (h - 1) * stride - 2 * pad + kh;
  const int64_t out_w = (w - 1) * stride - 2 * pad + kw;
  if (out_h <= 0 || out_w <= 0) {
    return Status::InvalidArgument("deconv output would be empty");
  }
  Tensor out(Shape({out_c, out_h, out_w}));
  // Scatter formulation: each input pixel contributes a kh x kw stamp.
  for (int64_t ic = 0; ic < in_c; ++ic) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        const float v = input.at3(ic, y, x);
        if (v == 0.f) continue;
        for (int64_t oc = 0; oc < out_c; ++oc) {
          for (int64_t ki = 0; ki < kh; ++ki) {
            const int64_t oy = y * stride + ki - pad;
            if (oy < 0 || oy >= out_h) continue;
            for (int64_t kj = 0; kj < kw; ++kj) {
              const int64_t ox = x * stride + kj - pad;
              if (ox < 0 || ox >= out_w) continue;
              out.at3(oc, oy, ox) +=
                  v * weight.at((((oc * in_c) + ic) * kh + ki) * kw + kj);
            }
          }
        }
      }
    }
  }
  if (bias != nullptr) {
    const int64_t plane = out_h * out_w;
    for (int64_t oc = 0; oc < out_c; ++oc) {
      float* dst = out.data() + oc * plane;
      for (int64_t i = 0; i < plane; ++i) dst[i] += bias->at(oc);
    }
  }
  return out;
}

}  // namespace dl2sql::nn
