/// \file blocks.h
/// \brief Composite blocks (Residual / Identity / Dense / Basic Attention),
/// assembled from the primitive layers exactly as Section III-C2 of the paper
/// composes them from SQL-implemented operators.
#pragma once

#include "nn/layers.h"

namespace dl2sql::nn {

/// \brief ResNet-style convolution block with a projecting shortcut:
/// out = ReLU(main(x) + shortcut(x)), where main is `num_convs` Conv+BN
/// stages (ReLU between them) and shortcut is a strided 1x1 Conv+BN.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(std::string name, int64_t in_channels, int64_t out_channels,
                int64_t kernel, int64_t stride, int64_t num_convs, Rng* rng);

  LayerKind kind() const override { return LayerKind::kResidualBlock; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override;
  std::vector<NamedParam> Parameters() const override;
  std::vector<const Layer*> Children() const override;

  const std::vector<LayerPtr>& main_path() const { return main_; }
  const std::vector<LayerPtr>& shortcut() const { return shortcut_; }

 private:
  std::vector<LayerPtr> main_;
  std::vector<LayerPtr> shortcut_;
};

/// \brief ResNet identity block: out = ReLU(main(x) + x). Channel counts and
/// spatial size are preserved by construction (stride 1, padded convs).
class IdentityBlock : public Layer {
 public:
  IdentityBlock(std::string name, int64_t channels, int64_t kernel,
                int64_t num_convs, Rng* rng);

  LayerKind kind() const override { return LayerKind::kIdentityBlock; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override;
  std::vector<NamedParam> Parameters() const override;
  std::vector<const Layer*> Children() const override;

  const std::vector<LayerPtr>& main_path() const { return main_; }

 private:
  std::vector<LayerPtr> main_;
};

/// \brief DenseNet-style block: each stage consumes the channel-concatenation
/// of the input and all previous stage outputs and contributes `growth`
/// channels; output channels = in + stages * growth.
class DenseBlock : public Layer {
 public:
  DenseBlock(std::string name, int64_t in_channels, int64_t growth,
             int64_t num_stages, int64_t kernel, Rng* rng);

  LayerKind kind() const override { return LayerKind::kDenseBlock; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override;
  std::vector<NamedParam> Parameters() const override;
  std::vector<const Layer*> Children() const override;

  int64_t growth() const { return growth_; }
  int64_t num_stages() const { return static_cast<int64_t>(stages_.size()); }

 private:
  // One Conv+BN+ReLU triple per stage.
  std::vector<std::vector<LayerPtr>> stages_;
  int64_t in_channels_;
  int64_t growth_;
};

/// \brief Basic (non-self) attention over a 1-D activation: a = softmax(Wa x),
/// out = a ⊙ (Wv x). The paper classifies this as a full-connection variant;
/// it is likewise rewritten as FC SQL by the DL2SQL converter.
class BasicAttention : public Layer {
 public:
  BasicAttention(std::string name, int64_t in_dim, int64_t out_dim, Rng* rng);

  LayerKind kind() const override { return LayerKind::kBasicAttention; }
  Result<Tensor> Forward(const Tensor& input, Device* device) const override;
  Result<Shape> OutputShape(const Shape& input) const override;
  std::vector<NamedParam> Parameters() const override;
  std::vector<const Layer*> Children() const override;

  const Linear& attention_proj() const { return *attn_; }
  const Linear& value_proj() const { return *value_; }

 private:
  std::shared_ptr<Linear> attn_;
  std::shared_ptr<Linear> value_;
};

/// Concatenates CHW tensors along the channel axis (all H,W must match).
Result<Tensor> ConcatChannels(const std::vector<Tensor>& parts);

}  // namespace dl2sql::nn
