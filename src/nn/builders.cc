#include "nn/builders.h"

namespace dl2sql::nn {

namespace {

std::vector<std::string> MakeClassNames(int64_t n) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) names.push_back("class_" + std::to_string(i));
  return names;
}

/// Adds Conv + BN + ReLU with randomized BN statistics.
void AddConvBnRelu(Model* m, const std::string& tag, int64_t in_c, int64_t out_c,
                   int64_t kernel, int64_t stride, int64_t pad, Rng* rng) {
  m->AddLayer(std::make_shared<Conv2d>(tag + ".conv", in_c, out_c, kernel,
                                       stride, pad, rng));
  auto bn = std::make_shared<BatchNorm>(tag + ".bn", out_c);
  bn->RandomizeStats(rng);
  m->AddLayer(bn);
  m->AddLayer(std::make_shared<ReluLayer>(tag + ".relu"));
}

}  // namespace

Model BuildStudentCnn(const BuilderOptions& opts) {
  Rng rng(opts.seed);
  Model m("student_cnn", Shape({opts.input_channels, opts.input_size,
                                opts.input_size}),
          MakeClassNames(opts.num_classes));
  const int64_t c1 = opts.base_channels;
  const int64_t c2 = opts.base_channels * 2;
  const int64_t c3 = opts.base_channels * 4;
  // Three Conv+BN+ReLU blocks per the paper's distilled student; stride-2
  // convs shrink the map so the classifier head stays small.
  AddConvBnRelu(&m, "block1", opts.input_channels, c1, 3, 2, 1, &rng);
  AddConvBnRelu(&m, "block2", c1, c2, 3, 2, 1, &rng);
  AddConvBnRelu(&m, "block3", c2, c3, 3, 1, 1, &rng);
  m.AddLayer(std::make_shared<MaxPool2d>("pool", 2, 2));
  m.AddLayer(std::make_shared<Flatten>("flatten"));
  const int64_t spatial = opts.input_size / 8;  // two stride-2 convs + pool
  m.AddLayer(std::make_shared<Linear>("fc", c3 * spatial * spatial,
                                      opts.num_classes, &rng));
  m.AddLayer(std::make_shared<SoftmaxLayer>("softmax"));
  return m;
}

Result<Model> BuildResNet(int64_t depth, const BuilderOptions& opts) {
  if (depth < 4) {
    return Status::InvalidArgument("ResNet depth must be >= 4, got ", depth);
  }
  Rng rng(opts.seed);
  Model m("resnet" + std::to_string(depth),
          Shape({opts.input_channels, opts.input_size, opts.input_size}),
          MakeClassNames(opts.num_classes));
  const int64_t c = opts.base_channels;
  // Stem: one weighted conv layer, downsampling by 2.
  AddConvBnRelu(&m, "stem", opts.input_channels, c, 3, 2, 1, &rng);
  // Each block contributes 2 weighted conv layers (+1 shortcut conv for the
  // projecting block). We count main-path convs toward the depth budget, as
  // ResNet depth conventionally does.
  int64_t remaining = depth - 1;
  m.AddLayer(std::make_shared<ResidualBlock>("rb1", c, c, 3, 2, 2, &rng));
  remaining -= 2;
  int64_t idx = 2;
  while (remaining >= 2) {
    m.AddLayer(std::make_shared<IdentityBlock>("ib" + std::to_string(idx), c, 3,
                                               2, &rng));
    remaining -= 2;
    ++idx;
  }
  if (remaining == 1) {
    AddConvBnRelu(&m, "tail", c, c, 3, 1, 1, &rng);
  }
  m.AddLayer(std::make_shared<GlobalAvgPool>("gap"));
  m.AddLayer(std::make_shared<Linear>("fc", c, opts.num_classes, &rng));
  m.AddLayer(std::make_shared<SoftmaxLayer>("softmax"));
  return m;
}

Model BuildLeNet(const BuilderOptions& opts) {
  Rng rng(opts.seed);
  Model m("lenet", Shape({opts.input_channels, opts.input_size, opts.input_size}),
          MakeClassNames(opts.num_classes));
  const int64_t c1 = opts.base_channels;
  const int64_t c2 = opts.base_channels * 2;
  m.AddLayer(
      std::make_shared<Conv2d>("conv1", opts.input_channels, c1, 5, 1, 2, &rng));
  m.AddLayer(std::make_shared<ReluLayer>("relu1"));
  m.AddLayer(std::make_shared<MaxPool2d>("pool1", 2, 2));
  m.AddLayer(std::make_shared<Conv2d>("conv2", c1, c2, 5, 1, 2, &rng));
  m.AddLayer(std::make_shared<ReluLayer>("relu2"));
  m.AddLayer(std::make_shared<MaxPool2d>("pool2", 2, 2));
  m.AddLayer(std::make_shared<Flatten>("flatten"));
  const int64_t spatial = opts.input_size / 4;
  m.AddLayer(
      std::make_shared<Linear>("fc1", c2 * spatial * spatial, 64, &rng));
  m.AddLayer(std::make_shared<ReluLayer>("relu3"));
  m.AddLayer(std::make_shared<Linear>("fc2", 64, opts.num_classes, &rng));
  m.AddLayer(std::make_shared<SoftmaxLayer>("softmax"));
  return m;
}

Model BuildVggTiny(const BuilderOptions& opts) {
  Rng rng(opts.seed);
  Model m("vgg_tiny",
          Shape({opts.input_channels, opts.input_size, opts.input_size}),
          MakeClassNames(opts.num_classes));
  const int64_t c1 = opts.base_channels;
  const int64_t c2 = opts.base_channels * 2;
  AddConvBnRelu(&m, "b1c1", opts.input_channels, c1, 3, 1, 1, &rng);
  AddConvBnRelu(&m, "b1c2", c1, c1, 3, 1, 1, &rng);
  m.AddLayer(std::make_shared<MaxPool2d>("pool1", 2, 2));
  AddConvBnRelu(&m, "b2c1", c1, c2, 3, 1, 1, &rng);
  AddConvBnRelu(&m, "b2c2", c2, c2, 3, 1, 1, &rng);
  m.AddLayer(std::make_shared<MaxPool2d>("pool2", 2, 2));
  m.AddLayer(std::make_shared<Flatten>("flatten"));
  const int64_t spatial = opts.input_size / 4;
  m.AddLayer(std::make_shared<Linear>("fc", c2 * spatial * spatial,
                                      opts.num_classes, &rng));
  m.AddLayer(std::make_shared<SoftmaxLayer>("softmax"));
  return m;
}

Model BuildDenseNetTiny(const BuilderOptions& opts) {
  Rng rng(opts.seed);
  Model m("densenet_tiny",
          Shape({opts.input_channels, opts.input_size, opts.input_size}),
          MakeClassNames(opts.num_classes));
  const int64_t c = opts.base_channels;
  AddConvBnRelu(&m, "stem", opts.input_channels, c, 3, 2, 1, &rng);
  m.AddLayer(std::make_shared<DenseBlock>("dense1", c, c / 2 > 0 ? c / 2 : 1, 3,
                                          3, &rng));
  m.AddLayer(std::make_shared<GlobalAvgPool>("gap"));
  const int64_t out_c = c + 3 * (c / 2 > 0 ? c / 2 : 1);
  m.AddLayer(std::make_shared<Linear>("fc", out_c, opts.num_classes, &rng));
  m.AddLayer(std::make_shared<SoftmaxLayer>("softmax"));
  return m;
}

Model BuildAttentionMlp(const BuilderOptions& opts) {
  Rng rng(opts.seed);
  const int64_t in_dim =
      opts.input_channels * opts.input_size * opts.input_size;
  Model m("attention_mlp",
          Shape({opts.input_channels, opts.input_size, opts.input_size}),
          MakeClassNames(opts.num_classes));
  m.AddLayer(std::make_shared<Flatten>("flatten"));
  m.AddLayer(std::make_shared<Linear>("fc1", in_dim, 64, &rng));
  m.AddLayer(std::make_shared<ReluLayer>("relu1"));
  m.AddLayer(std::make_shared<BasicAttention>("attn", 64, 64, &rng));
  m.AddLayer(std::make_shared<Linear>("fc2", 64, opts.num_classes, &rng));
  m.AddLayer(std::make_shared<SoftmaxLayer>("softmax"));
  return m;
}

}  // namespace dl2sql::nn
