#include "nn/serialize.h"

#include <cstring>

#include "common/bytes.h"
#include "common/cache.h"
#include "nn/blocks.h"
#include "nn/layers.h"

namespace dl2sql::nn {

namespace {

constexpr char kMagic[] = "DL2SQLM1";

/// Integer hyper-parameters needed to reconstruct each layer kind.
Result<std::vector<int64_t>> LayerHyperParams(const Layer& layer) {
  switch (layer.kind()) {
    case LayerKind::kConv2d: {
      const auto& c = static_cast<const Conv2d&>(layer);
      return std::vector<int64_t>{c.in_channels(), c.out_channels(),
                                  c.kernel_h(),    c.stride(),
                                  c.pad(),         c.bias() ? 1 : 0};
    }
    case LayerKind::kDeconv2d: {
      const auto& c = static_cast<const Deconv2d&>(layer);
      const auto& w = c.weight().shape();
      return std::vector<int64_t>{w[1], w[0], w[2], c.stride(), c.pad(), 1};
    }
    case LayerKind::kBatchNorm: {
      const auto& b = static_cast<const BatchNorm&>(layer);
      return std::vector<int64_t>{b.gamma().NumElements()};
    }
    case LayerKind::kInstanceNorm: {
      const auto& b = static_cast<const InstanceNorm&>(layer);
      return std::vector<int64_t>{b.Parameters()[0].tensor.NumElements()};
    }
    case LayerKind::kLinear: {
      const auto& l = static_cast<const Linear&>(layer);
      return std::vector<int64_t>{l.in_dim(), l.out_dim(), l.bias() ? 1 : 0};
    }
    case LayerKind::kMaxPool: {
      const auto& p = static_cast<const MaxPool2d&>(layer);
      return std::vector<int64_t>{p.window(), p.stride()};
    }
    case LayerKind::kAvgPool: {
      const auto& p = static_cast<const AvgPool2d&>(layer);
      return std::vector<int64_t>{p.window(), p.stride()};
    }
    case LayerKind::kRelu:
    case LayerKind::kFlatten:
    case LayerKind::kSoftmax:
    case LayerKind::kGlobalAvgPool:
      return std::vector<int64_t>{};
    case LayerKind::kResidualBlock: {
      const auto& r = static_cast<const ResidualBlock&>(layer);
      // main_ holds conv/bn(/relu) triples; conv0 defines geometry.
      const auto& conv0 = static_cast<const Conv2d&>(*r.main_path()[0]);
      int64_t num_convs = 0;
      for (const auto& l : r.main_path()) {
        if (l->kind() == LayerKind::kConv2d) ++num_convs;
      }
      return std::vector<int64_t>{conv0.in_channels(), conv0.out_channels(),
                                  conv0.kernel_h(), conv0.stride(), num_convs};
    }
    case LayerKind::kIdentityBlock: {
      const auto& r = static_cast<const IdentityBlock&>(layer);
      const auto& conv0 = static_cast<const Conv2d&>(*r.main_path()[0]);
      int64_t num_convs = 0;
      for (const auto& l : r.main_path()) {
        if (l->kind() == LayerKind::kConv2d) ++num_convs;
      }
      return std::vector<int64_t>{conv0.in_channels(), conv0.kernel_h(),
                                  num_convs};
    }
    case LayerKind::kDenseBlock: {
      const auto& d = static_cast<const DenseBlock&>(layer);
      const auto* first_conv = static_cast<const Conv2d*>(d.Children()[0]);
      return std::vector<int64_t>{first_conv->in_channels(), d.growth(),
                                  d.num_stages(), first_conv->kernel_h()};
    }
    case LayerKind::kBasicAttention: {
      const auto& a = static_cast<const BasicAttention&>(layer);
      return std::vector<int64_t>{a.attention_proj().in_dim(),
                                  a.attention_proj().out_dim()};
    }
  }
  return Status::NotImplemented("serialization for layer kind");
}

Result<LayerPtr> MakeLayer(LayerKind kind, const std::string& name,
                           const std::vector<int64_t>& hp) {
  // Placeholder weights are overwritten from the stream right after.
  Rng rng(0);
  auto need = [&](size_t n) -> Status {
    if (hp.size() != n) {
      return Status::ParseError("layer ", name, ": expected ", n,
                                " hyperparams, got ", hp.size());
    }
    return Status::OK();
  };
  switch (kind) {
    case LayerKind::kConv2d: {
      DL2SQL_RETURN_NOT_OK(need(6));
      auto layer =
          std::make_shared<Conv2d>(name, hp[0], hp[1], hp[2], hp[3], hp[4], &rng);
      if (hp[5] == 0) {
        return LayerPtr(std::make_shared<Conv2d>(
            name, layer->weight().Clone(), std::nullopt, hp[3], hp[4]));
      }
      return LayerPtr(layer);
    }
    case LayerKind::kDeconv2d: {
      DL2SQL_RETURN_NOT_OK(need(6));
      return LayerPtr(std::make_shared<Deconv2d>(name, hp[0], hp[1], hp[2],
                                                 hp[3], hp[4], &rng));
    }
    case LayerKind::kBatchNorm: {
      DL2SQL_RETURN_NOT_OK(need(1));
      return LayerPtr(std::make_shared<BatchNorm>(name, hp[0]));
    }
    case LayerKind::kInstanceNorm: {
      DL2SQL_RETURN_NOT_OK(need(1));
      return LayerPtr(std::make_shared<InstanceNorm>(name, hp[0]));
    }
    case LayerKind::kLinear: {
      DL2SQL_RETURN_NOT_OK(need(3));
      auto layer = std::make_shared<Linear>(name, hp[0], hp[1], &rng);
      if (hp[2] == 0) {
        return LayerPtr(std::make_shared<Linear>(name, layer->weight().Clone(),
                                                 std::nullopt));
      }
      return LayerPtr(layer);
    }
    case LayerKind::kMaxPool: {
      DL2SQL_RETURN_NOT_OK(need(2));
      return LayerPtr(std::make_shared<MaxPool2d>(name, hp[0], hp[1]));
    }
    case LayerKind::kAvgPool: {
      DL2SQL_RETURN_NOT_OK(need(2));
      return LayerPtr(std::make_shared<AvgPool2d>(name, hp[0], hp[1]));
    }
    case LayerKind::kRelu:
      return LayerPtr(std::make_shared<ReluLayer>(name));
    case LayerKind::kFlatten:
      return LayerPtr(std::make_shared<Flatten>(name));
    case LayerKind::kSoftmax:
      return LayerPtr(std::make_shared<SoftmaxLayer>(name));
    case LayerKind::kGlobalAvgPool:
      return LayerPtr(std::make_shared<GlobalAvgPool>(name));
    case LayerKind::kResidualBlock: {
      DL2SQL_RETURN_NOT_OK(need(5));
      return LayerPtr(std::make_shared<ResidualBlock>(name, hp[0], hp[1], hp[2],
                                                      hp[3], hp[4], &rng));
    }
    case LayerKind::kIdentityBlock: {
      DL2SQL_RETURN_NOT_OK(need(3));
      return LayerPtr(
          std::make_shared<IdentityBlock>(name, hp[0], hp[1], hp[2], &rng));
    }
    case LayerKind::kDenseBlock: {
      DL2SQL_RETURN_NOT_OK(need(4));
      return LayerPtr(
          std::make_shared<DenseBlock>(name, hp[0], hp[1], hp[2], hp[3], &rng));
    }
    case LayerKind::kBasicAttention: {
      DL2SQL_RETURN_NOT_OK(need(2));
      return LayerPtr(std::make_shared<BasicAttention>(name, hp[0], hp[1], &rng));
    }
  }
  return Status::ParseError("unknown layer kind ", static_cast<int>(kind));
}

/// Overwrites a freshly constructed layer's weights with streamed values.
/// Tensor copies alias the underlying buffer, so writing through the tensors
/// returned by Parameters() mutates the layer in place.
Status LoadWeights(Layer* layer, const std::vector<std::vector<float>>& values) {
  auto params = layer->Parameters();
  if (params.size() != values.size()) {
    return Status::ParseError("layer ", layer->name(), ": expected ",
                              params.size(), " weight tensors, got ",
                              values.size());
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& t = params[i].tensor;
    if (static_cast<size_t>(t.NumElements()) != values[i].size()) {
      return Status::ParseError("layer ", layer->name(), " param ", i,
                                ": size mismatch ", t.NumElements(), " vs ",
                                values[i].size());
    }
    std::memcpy(t.data(), values[i].data(), values[i].size() * sizeof(float));
  }
  return Status::OK();
}

Status WriteLayer(const Layer& layer, ModelFormat format, BufferWriter* w) {
  w->WriteU8(static_cast<uint8_t>(layer.kind()));
  if (format == ModelFormat::kScript) {
    w->WriteString(layer.name());
    // TorchScript-analog preamble: a redundant self-describing header the
    // compiled blob strips out.
    std::string meta = std::string("{\"op\":\"") +
                       LayerKindToString(layer.kind()) +
                       "\",\"params\":" + std::to_string(layer.NumParameters()) +
                       ",\"origin\":\"torch.jit.trace\"}";
    w->WriteString(meta);
  }
  DL2SQL_ASSIGN_OR_RETURN(std::vector<int64_t> hp, LayerHyperParams(layer));
  w->WriteU32(static_cast<uint32_t>(hp.size()));
  for (int64_t v : hp) w->WriteI64(v);
  auto params = layer.Parameters();
  w->WriteU32(static_cast<uint32_t>(params.size()));
  for (const auto& p : params) {
    if (format == ModelFormat::kScript) w->WriteString(p.name);
    w->WriteFloats(p.tensor.data(), static_cast<size_t>(p.tensor.NumElements()));
  }
  return Status::OK();
}

}  // namespace

Result<std::string> SerializeModel(const Model& model, ModelFormat format) {
  BufferWriter w;
  w.WriteRaw(kMagic, 8);
  w.WriteU8(static_cast<uint8_t>(format));
  w.WriteString(model.name());
  w.WriteU32(static_cast<uint32_t>(model.input_shape().ndim()));
  for (int i = 0; i < model.input_shape().ndim(); ++i) {
    w.WriteI64(model.input_shape()[i]);
  }
  w.WriteU32(static_cast<uint32_t>(model.classes().size()));
  for (const auto& c : model.classes()) {
    if (format == ModelFormat::kScript) {
      w.WriteString(c);
    } else {
      // Blob keeps only the class count; labels live app-side.
      (void)c;
    }
  }
  w.WriteU32(static_cast<uint32_t>(model.layers().size()));
  for (const auto& layer : model.layers()) {
    DL2SQL_RETURN_NOT_OK(WriteLayer(*layer, format, &w));
  }
  return w.Take();
}

Result<Model> DeserializeModel(const std::string& bytes) {
  BufferReader r(bytes);
  if (bytes.size() < 9 || std::memcmp(bytes.data(), kMagic, 8) != 0) {
    return Status::ParseError("bad model magic");
  }
  // Skip magic.
  for (int i = 0; i < 8; ++i) {
    DL2SQL_RETURN_NOT_OK(r.ReadU8().status());
  }
  DL2SQL_ASSIGN_OR_RETURN(uint8_t fmt_byte, r.ReadU8());
  const auto format = static_cast<ModelFormat>(fmt_byte);
  DL2SQL_ASSIGN_OR_RETURN(std::string name, r.ReadString());
  DL2SQL_ASSIGN_OR_RETURN(uint32_t ndim, r.ReadU32());
  std::vector<int64_t> dims;
  for (uint32_t i = 0; i < ndim; ++i) {
    DL2SQL_ASSIGN_OR_RETURN(int64_t d, r.ReadI64());
    dims.push_back(d);
  }
  DL2SQL_ASSIGN_OR_RETURN(uint32_t num_classes, r.ReadU32());
  std::vector<std::string> classes;
  for (uint32_t i = 0; i < num_classes; ++i) {
    if (format == ModelFormat::kScript) {
      DL2SQL_ASSIGN_OR_RETURN(std::string c, r.ReadString());
      classes.push_back(std::move(c));
    } else {
      classes.push_back("class_" + std::to_string(i));
    }
  }
  Model model(std::move(name), Shape(std::move(dims)), std::move(classes));

  DL2SQL_ASSIGN_OR_RETURN(uint32_t num_layers, r.ReadU32());
  for (uint32_t li = 0; li < num_layers; ++li) {
    DL2SQL_ASSIGN_OR_RETURN(uint8_t kind_byte, r.ReadU8());
    const auto kind = static_cast<LayerKind>(kind_byte);
    std::string lname = "layer" + std::to_string(li);
    if (format == ModelFormat::kScript) {
      DL2SQL_ASSIGN_OR_RETURN(lname, r.ReadString());
      DL2SQL_RETURN_NOT_OK(r.ReadString().status());  // metadata preamble
    }
    DL2SQL_ASSIGN_OR_RETURN(uint32_t nhp, r.ReadU32());
    std::vector<int64_t> hp;
    for (uint32_t i = 0; i < nhp; ++i) {
      DL2SQL_ASSIGN_OR_RETURN(int64_t v, r.ReadI64());
      hp.push_back(v);
    }
    DL2SQL_ASSIGN_OR_RETURN(LayerPtr layer, MakeLayer(kind, lname, hp));
    DL2SQL_ASSIGN_OR_RETURN(uint32_t nparams, r.ReadU32());
    std::vector<std::vector<float>> values;
    for (uint32_t i = 0; i < nparams; ++i) {
      if (format == ModelFormat::kScript) {
        DL2SQL_RETURN_NOT_OK(r.ReadString().status());  // param name
      }
      DL2SQL_ASSIGN_OR_RETURN(std::vector<float> vals, r.ReadFloats());
      values.push_back(std::move(vals));
    }
    DL2SQL_RETURN_NOT_OK(LoadWeights(layer.get(), values));
    model.AddLayer(std::move(layer));
  }
  return model;
}

Result<uint64_t> SerializedSize(const Model& model, ModelFormat format) {
  DL2SQL_ASSIGN_OR_RETURN(std::string bytes, SerializeModel(model, format));
  return static_cast<uint64_t>(bytes.size());
}

Result<uint64_t> ModelFingerprint(const Model& model) {
  DL2SQL_ASSIGN_OR_RETURN(std::string bytes,
                          SerializeModel(model, ModelFormat::kCompiledBlob));
  const uint64_t h = Hash64(bytes);
  return h == 0 ? 1 : h;
}

}  // namespace dl2sql::nn
