/// \file layer.h
/// \brief Layer: the unit of inference in minidl and the unit of translation
/// in DL2SQL.
///
/// Every neural operator in Table II of the paper is a Layer subclass (or a
/// composite block of them). Layers expose their hyper-parameters and weight
/// tensors so that (a) the serializer can produce the "compiled UDF binary"
/// used by the loose-integration strategy and (b) the DL2SQL converter can
/// rewrite them into FeatureMap/Kernel relational tables and SQL.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/device.h"
#include "common/result.h"
#include "tensor/tensor.h"

namespace dl2sql::nn {

/// Operator taxonomy, mirroring Table II of the paper.
enum class LayerKind : int {
  kConv2d = 0,
  kBatchNorm = 1,
  kRelu = 2,
  kMaxPool = 3,
  kAvgPool = 4,
  kLinear = 5,
  kFlatten = 6,
  kSoftmax = 7,
  kResidualBlock = 8,
  kIdentityBlock = 9,
  kDenseBlock = 10,
  kBasicAttention = 11,
  kInstanceNorm = 12,
  kDeconv2d = 13,
  kGlobalAvgPool = 14,
};

/// \brief Human-readable operator name ("Conv2d", "BatchNorm", ...).
const char* LayerKindToString(LayerKind kind);

/// \brief A named weight tensor belonging to a layer.
struct NamedParam {
  std::string name;
  Tensor tensor;
};

/// \brief Abstract neural operator.
class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  const std::string& name() const { return name_; }
  virtual LayerKind kind() const = 0;

  /// Runs inference on one input. `device` supplies the thread pool; it must
  /// not be null.
  virtual Result<Tensor> Forward(const Tensor& input, Device* device) const = 0;

  /// Shape produced for a given input shape (validates compatibility).
  virtual Result<Shape> OutputShape(const Shape& input) const = 0;

  /// Weight tensors in a stable order (empty for parameter-free ops).
  virtual std::vector<NamedParam> Parameters() const { return {}; }

  /// Total scalar parameter count.
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const auto& p : Parameters()) n += p.tensor.NumElements();
    return n;
  }

  /// Child layers for composite blocks (empty for primitives).
  virtual std::vector<const Layer*> Children() const { return {}; }

 private:
  std::string name_;
};

using LayerPtr = std::shared_ptr<Layer>;

}  // namespace dl2sql::nn
