/// \file compute.h
/// \brief Dense inference kernels shared by the layer implementations.
///
/// These are the "native" (LibTorch-equivalent) code paths used by the
/// independent-processing and UDF strategies. DL2SQL instead executes the
/// same math as SQL over relational tables; the property tests in
/// tests/dl2sql assert both paths agree to float tolerance.
#pragma once

#include "accel/device.h"
#include "common/result.h"
#include "tensor/tensor.h"

namespace dl2sql::nn {

/// 2-D convolution of a CHW input with OIHW weights, optional bias [out_c].
/// Implemented as im2col + a device-parallel matmul.
Result<Tensor> Conv2dForward(const Tensor& input, const Tensor& weight,
                             const Tensor* bias, int64_t stride, int64_t pad,
                             Device* device);

/// Max pooling over kxk windows with the given stride (CHW input).
Result<Tensor> MaxPool2dForward(const Tensor& input, int64_t k, int64_t stride);

/// Average pooling over kxk windows with the given stride (CHW input).
Result<Tensor> AvgPool2dForward(const Tensor& input, int64_t k, int64_t stride);

/// Inference-mode batch normalization over channels of a CHW input.
Result<Tensor> BatchNormForward(const Tensor& input, const Tensor& gamma,
                                const Tensor& beta, const Tensor& mean,
                                const Tensor& var, float eps);

/// Instance normalization: normalizes each channel by its own spatial
/// statistics (no running stats).
Result<Tensor> InstanceNormForward(const Tensor& input, const Tensor& gamma,
                                   const Tensor& beta, float eps);

/// Fully connected: y = W x + b for 1-D x, W [out, in], b [out].
Result<Tensor> LinearForward(const Tensor& input, const Tensor& weight,
                             const Tensor* bias, Device* device);

/// Transposed convolution (deconvolution) of a CHW input with IOHW-equivalent
/// weights stored OIHW (out_c first), stride/pad per the usual conv-transpose
/// shape rule: out = (in - 1) * stride - 2*pad + k.
Result<Tensor> Deconv2dForward(const Tensor& input, const Tensor& weight,
                               const Tensor* bias, int64_t stride, int64_t pad);

/// Matmul whose row loop is spread over the device's thread pool.
Result<Tensor> ParallelMatMul(const Tensor& a, const Tensor& b, Device* device);

}  // namespace dl2sql::nn
