#include "nn/layers.h"

namespace dl2sql::nn {

const char* LayerKindToString(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv2d:
      return "Conv2d";
    case LayerKind::kBatchNorm:
      return "BatchNorm";
    case LayerKind::kRelu:
      return "ReLU";
    case LayerKind::kMaxPool:
      return "MaxPool";
    case LayerKind::kAvgPool:
      return "AvgPool";
    case LayerKind::kLinear:
      return "Linear";
    case LayerKind::kFlatten:
      return "Flatten";
    case LayerKind::kSoftmax:
      return "Softmax";
    case LayerKind::kResidualBlock:
      return "ResidualBlock";
    case LayerKind::kIdentityBlock:
      return "IdentityBlock";
    case LayerKind::kDenseBlock:
      return "DenseBlock";
    case LayerKind::kBasicAttention:
      return "BasicAttention";
    case LayerKind::kInstanceNorm:
      return "InstanceNorm";
    case LayerKind::kDeconv2d:
      return "Deconv2d";
    case LayerKind::kGlobalAvgPool:
      return "GlobalAvgPool";
  }
  return "Unknown";
}

// ---------------------------------------------------------------- Conv2d ----

Conv2d::Conv2d(std::string name, int64_t in_channels, int64_t out_channels,
               int64_t kernel, int64_t stride, int64_t pad, Rng* rng)
    : Layer(std::move(name)),
      weight_(Tensor::Random(Shape({out_channels, in_channels, kernel, kernel}),
                             rng)),
      bias_(Tensor::Random(Shape({out_channels}), rng)),
      stride_(stride),
      pad_(pad) {}

Conv2d::Conv2d(std::string name, Tensor weight, std::optional<Tensor> bias,
               int64_t stride, int64_t pad)
    : Layer(std::move(name)),
      weight_(std::move(weight)),
      bias_(std::move(bias)),
      stride_(stride),
      pad_(pad) {}

Result<Tensor> Conv2d::Forward(const Tensor& input, Device* device) const {
  return Conv2dForward(input, weight_, bias_ ? &*bias_ : nullptr, stride_, pad_,
                       device);
}

Result<Shape> Conv2d::OutputShape(const Shape& input) const {
  if (input.ndim() != 3 || input[0] != in_channels()) {
    return Status::InvalidArgument(name(), ": bad input shape ",
                                   input.ToString(), ", expect [", in_channels(),
                                   ", H, W]");
  }
  const int64_t oh = (input[1] + 2 * pad_ - kernel_h()) / stride_ + 1;
  const int64_t ow = (input[2] + 2 * pad_ - kernel_w()) / stride_ + 1;
  if (oh <= 0 || ow <= 0) {
    return Status::InvalidArgument(name(), ": empty output for input ",
                                   input.ToString());
  }
  return Shape({out_channels(), oh, ow});
}

std::vector<NamedParam> Conv2d::Parameters() const {
  std::vector<NamedParam> p{{"weight", weight_}};
  if (bias_) p.push_back({"bias", *bias_});
  return p;
}

// -------------------------------------------------------------- Deconv2d ----

Deconv2d::Deconv2d(std::string name, int64_t in_channels, int64_t out_channels,
                   int64_t kernel, int64_t stride, int64_t pad, Rng* rng)
    : Layer(std::move(name)),
      weight_(Tensor::Random(Shape({out_channels, in_channels, kernel, kernel}),
                             rng)),
      bias_(Tensor::Random(Shape({out_channels}), rng)),
      stride_(stride),
      pad_(pad) {}

Deconv2d::Deconv2d(std::string name, Tensor weight, std::optional<Tensor> bias,
                   int64_t stride, int64_t pad)
    : Layer(std::move(name)),
      weight_(std::move(weight)),
      bias_(std::move(bias)),
      stride_(stride),
      pad_(pad) {}

Result<Tensor> Deconv2d::Forward(const Tensor& input, Device*) const {
  return Deconv2dForward(input, weight_, bias_ ? &*bias_ : nullptr, stride_,
                         pad_);
}

Result<Shape> Deconv2d::OutputShape(const Shape& input) const {
  if (input.ndim() != 3 || input[0] != weight_.shape()[1]) {
    return Status::InvalidArgument(name(), ": bad input shape ",
                                   input.ToString());
  }
  const int64_t k = weight_.shape()[2];
  const int64_t oh = (input[1] - 1) * stride_ - 2 * pad_ + k;
  const int64_t ow = (input[2] - 1) * stride_ - 2 * pad_ + k;
  if (oh <= 0 || ow <= 0) {
    return Status::InvalidArgument(name(), ": empty deconv output");
  }
  return Shape({weight_.shape()[0], oh, ow});
}

std::vector<NamedParam> Deconv2d::Parameters() const {
  std::vector<NamedParam> p{{"weight", weight_}};
  if (bias_) p.push_back({"bias", *bias_});
  return p;
}

// ------------------------------------------------------------- BatchNorm ----

BatchNorm::BatchNorm(std::string name, int64_t channels)
    : Layer(std::move(name)),
      gamma_(Shape({channels})),
      beta_(Shape({channels})),
      mean_(Shape({channels})),
      var_(Shape({channels})),
      eps_(1e-5f) {
  gamma_.Fill(1.f);
  var_.Fill(1.f);
}

BatchNorm::BatchNorm(std::string name, Tensor gamma, Tensor beta,
                     Tensor running_mean, Tensor running_var, float eps)
    : Layer(std::move(name)),
      gamma_(std::move(gamma)),
      beta_(std::move(beta)),
      mean_(std::move(running_mean)),
      var_(std::move(running_var)),
      eps_(eps) {}

void BatchNorm::RandomizeStats(Rng* rng) {
  for (int64_t i = 0; i < gamma_.NumElements(); ++i) {
    gamma_.at(i) = rng->UniformFloat(0.5f, 1.5f);
    beta_.at(i) = rng->UniformFloat(-0.5f, 0.5f);
    mean_.at(i) = rng->UniformFloat(-0.2f, 0.2f);
    var_.at(i) = rng->UniformFloat(0.5f, 2.0f);
  }
}

Result<Tensor> BatchNorm::Forward(const Tensor& input, Device*) const {
  return BatchNormForward(input, gamma_, beta_, mean_, var_, eps_);
}

Result<Shape> BatchNorm::OutputShape(const Shape& input) const {
  if (input.ndim() != 3 || input[0] != gamma_.NumElements()) {
    return Status::InvalidArgument(name(), ": bad input shape ",
                                   input.ToString());
  }
  return input;
}

std::vector<NamedParam> BatchNorm::Parameters() const {
  return {{"gamma", gamma_},
          {"beta", beta_},
          {"running_mean", mean_},
          {"running_var", var_}};
}

// ---------------------------------------------------------- InstanceNorm ----

InstanceNorm::InstanceNorm(std::string name, int64_t channels, float eps)
    : Layer(std::move(name)),
      gamma_(Shape({channels})),
      beta_(Shape({channels})),
      eps_(eps) {
  gamma_.Fill(1.f);
}

Result<Tensor> InstanceNorm::Forward(const Tensor& input, Device*) const {
  return InstanceNormForward(input, gamma_, beta_, eps_);
}

Result<Shape> InstanceNorm::OutputShape(const Shape& input) const {
  if (input.ndim() != 3 || input[0] != gamma_.NumElements()) {
    return Status::InvalidArgument(name(), ": bad input shape ",
                                   input.ToString());
  }
  return input;
}

std::vector<NamedParam> InstanceNorm::Parameters() const {
  return {{"gamma", gamma_}, {"beta", beta_}};
}

// ------------------------------------------------------------------ ReLU ----

Result<Tensor> ReluLayer::Forward(const Tensor& input, Device*) const {
  return Relu(input);
}

// --------------------------------------------------------------- Pooling ----

MaxPool2d::MaxPool2d(std::string name, int64_t window, int64_t stride)
    : Layer(std::move(name)), window_(window), stride_(stride) {}

Result<Tensor> MaxPool2d::Forward(const Tensor& input, Device*) const {
  return MaxPool2dForward(input, window_, stride_);
}

Result<Shape> MaxPool2d::OutputShape(const Shape& input) const {
  if (input.ndim() != 3) {
    return Status::InvalidArgument(name(), ": bad input shape ",
                                   input.ToString());
  }
  const int64_t oh = (input[1] - window_) / stride_ + 1;
  const int64_t ow = (input[2] - window_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) {
    return Status::InvalidArgument(name(), ": empty pooling output");
  }
  return Shape({input[0], oh, ow});
}

AvgPool2d::AvgPool2d(std::string name, int64_t window, int64_t stride)
    : Layer(std::move(name)), window_(window), stride_(stride) {}

Result<Tensor> AvgPool2d::Forward(const Tensor& input, Device*) const {
  return AvgPool2dForward(input, window_, stride_);
}

Result<Shape> AvgPool2d::OutputShape(const Shape& input) const {
  if (input.ndim() != 3) {
    return Status::InvalidArgument(name(), ": bad input shape ",
                                   input.ToString());
  }
  const int64_t oh = (input[1] - window_) / stride_ + 1;
  const int64_t ow = (input[2] - window_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) {
    return Status::InvalidArgument(name(), ": empty pooling output");
  }
  return Shape({input[0], oh, ow});
}

Result<Tensor> GlobalAvgPool::Forward(const Tensor& input, Device*) const {
  if (input.shape().ndim() != 3) {
    return Status::InvalidArgument(name(), ": requires CHW input");
  }
  const int64_t c = input.shape()[0];
  const int64_t plane = input.shape()[1] * input.shape()[2];
  Tensor out(Shape({c}));
  for (int64_t ci = 0; ci < c; ++ci) {
    double sum = 0;
    const float* src = input.data() + ci * plane;
    for (int64_t i = 0; i < plane; ++i) sum += src[i];
    out.at(ci) = static_cast<float>(sum / static_cast<double>(plane));
  }
  return out;
}

Result<Shape> GlobalAvgPool::OutputShape(const Shape& input) const {
  if (input.ndim() != 3) {
    return Status::InvalidArgument(name(), ": requires CHW input");
  }
  return Shape({input[0]});
}

// --------------------------------------------------------------- Flatten ----

Result<Tensor> Flatten::Forward(const Tensor& input, Device*) const {
  return input.Reshape(Shape({input.NumElements()}));
}

// ---------------------------------------------------------------- Linear ----

Linear::Linear(std::string name, int64_t in_dim, int64_t out_dim, Rng* rng)
    : Layer(std::move(name)),
      weight_(Tensor::Random(Shape({out_dim, in_dim}), rng)),
      bias_(Tensor::Random(Shape({out_dim}), rng)) {}

Linear::Linear(std::string name, Tensor weight, std::optional<Tensor> bias)
    : Layer(std::move(name)), weight_(std::move(weight)), bias_(std::move(bias)) {}

Result<Tensor> Linear::Forward(const Tensor& input, Device* device) const {
  return LinearForward(input, weight_, bias_ ? &*bias_ : nullptr, device);
}

Result<Shape> Linear::OutputShape(const Shape& input) const {
  if (input.NumElements() != in_dim()) {
    return Status::InvalidArgument(name(), ": input ", input.ToString(),
                                   " does not have ", in_dim(), " elements");
  }
  return Shape({out_dim()});
}

std::vector<NamedParam> Linear::Parameters() const {
  std::vector<NamedParam> p{{"weight", weight_}};
  if (bias_) p.push_back({"bias", *bias_});
  return p;
}

// --------------------------------------------------------------- Softmax ----

Result<Tensor> SoftmaxLayer::Forward(const Tensor& input, Device*) const {
  DL2SQL_ASSIGN_OR_RETURN(Tensor flat, input.Reshape(Shape({input.NumElements()})));
  return Softmax(flat);
}

}  // namespace dl2sql::nn
