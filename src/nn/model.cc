#include "nn/model.h"

#include <sstream>

#include "common/trace.h"

namespace dl2sql::nn {

Result<Tensor> Model::Forward(const Tensor& input, Device* device) const {
  if (input.shape() != input_shape_) {
    return Status::InvalidArgument("model ", name_, " expects input ",
                                   input_shape_.ToString(), ", got ",
                                   input.shape().ToString());
  }
  Tensor x = input;
  for (const auto& layer : layers_) {
    // One span per layer forward; the kind is the span name so traces
    // aggregate across models, the layer instance goes into args.
    DL2SQL_TRACE_SPAN("nn", LayerKindToString(layer->kind()),
                      "\"layer\":\"" + layer->name() + "\"");
    auto r = layer->Forward(x, device);
    if (!r.ok()) return r.status().WithContext("layer " + layer->name());
    x = std::move(r).ValueOrDie();
  }
  return x;
}

Result<int64_t> Model::Predict(const Tensor& input, Device* device) const {
  DL2SQL_ASSIGN_OR_RETURN(Tensor out, Forward(input, device));
  int64_t best = 0;
  for (int64_t i = 1; i < out.NumElements(); ++i) {
    if (out.at(i) > out.at(best)) best = i;
  }
  return best;
}

Result<Shape> Model::OutputShape() const {
  Shape s = input_shape_;
  for (const auto& layer : layers_) {
    auto r = layer->OutputShape(s);
    if (!r.ok()) return r.status().WithContext("layer " + layer->name());
    s = std::move(r).ValueOrDie();
  }
  return s;
}

int64_t Model::NumParameters() const {
  int64_t n = 0;
  for (const auto& layer : layers_) n += layer->NumParameters();
  return n;
}

std::vector<NamedParam> Model::Parameters() const {
  std::vector<NamedParam> out;
  for (const auto& layer : layers_) {
    for (auto& p : layer->Parameters()) {
      out.push_back({layer->name() + "." + p.name, p.tensor});
    }
  }
  return out;
}

std::string Model::Summary() const {
  std::ostringstream oss;
  oss << "Model " << name_ << " input=" << input_shape_.ToString()
      << " classes=" << classes_.size() << " params=" << NumParameters() << "\n";
  Shape s = input_shape_;
  for (const auto& layer : layers_) {
    auto r = layer->OutputShape(s);
    oss << "  " << LayerKindToString(layer->kind()) << " " << layer->name();
    if (r.ok()) {
      s = r.ValueOrDie();
      oss << " -> " << s.ToString();
    } else {
      oss << " -> <error: " << r.status().message() << ">";
    }
    oss << " (" << layer->NumParameters() << " params)\n";
  }
  return oss.str();
}

}  // namespace dl2sql::nn
