#include "nn/blocks.h"

namespace dl2sql::nn {

namespace {

/// Runs a sequence of layers, threading the activation through.
Result<Tensor> RunSequence(const std::vector<LayerPtr>& layers,
                           const Tensor& input, Device* device) {
  Tensor x = input;
  for (const auto& layer : layers) {
    DL2SQL_ASSIGN_OR_RETURN(x, layer->Forward(x, device));
  }
  return x;
}

Result<Shape> SequenceShape(const std::vector<LayerPtr>& layers,
                            const Shape& input) {
  Shape s = input;
  for (const auto& layer : layers) {
    DL2SQL_ASSIGN_OR_RETURN(s, layer->OutputShape(s));
  }
  return s;
}

void CollectParams(const std::vector<LayerPtr>& layers,
                   const std::string& prefix, std::vector<NamedParam>* out) {
  for (const auto& layer : layers) {
    for (auto& p : layer->Parameters()) {
      out->push_back({prefix + layer->name() + "." + p.name, p.tensor});
    }
  }
}

}  // namespace

Result<Tensor> ConcatChannels(const std::vector<Tensor>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("ConcatChannels: no inputs");
  }
  const int64_t h = parts[0].shape()[1];
  const int64_t w = parts[0].shape()[2];
  int64_t total_c = 0;
  for (const auto& p : parts) {
    if (p.shape().ndim() != 3 || p.shape()[1] != h || p.shape()[2] != w) {
      return Status::InvalidArgument(
          "ConcatChannels: spatial mismatch, expected [*, ", h, ", ", w,
          "], got ", p.shape().ToString());
    }
    total_c += p.shape()[0];
  }
  Tensor out(Shape({total_c, h, w}));
  float* dst = out.data();
  for (const auto& p : parts) {
    const int64_t n = p.NumElements();
    std::copy(p.data(), p.data() + n, dst);
    dst += n;
  }
  return out;
}

// --------------------------------------------------------- ResidualBlock ----

ResidualBlock::ResidualBlock(std::string name, int64_t in_channels,
                             int64_t out_channels, int64_t kernel,
                             int64_t stride, int64_t num_convs, Rng* rng)
    : Layer(std::move(name)) {
  const int64_t pad = kernel / 2;
  int64_t c = in_channels;
  for (int64_t i = 0; i < num_convs; ++i) {
    const std::string tag = Layer::name() + ".conv" + std::to_string(i + 1);
    // Only the first conv strides; later ones preserve the spatial size.
    const int64_t s = (i == 0) ? stride : 1;
    main_.push_back(
        std::make_shared<Conv2d>(tag, c, out_channels, kernel, s, pad, rng));
    auto bn = std::make_shared<BatchNorm>(tag + ".bn", out_channels);
    bn->RandomizeStats(rng);
    main_.push_back(bn);
    if (i + 1 < num_convs) {
      main_.push_back(std::make_shared<ReluLayer>(tag + ".relu"));
    }
    c = out_channels;
  }
  const std::string stag = Layer::name() + ".shortcut";
  shortcut_.push_back(std::make_shared<Conv2d>(stag + ".conv", in_channels,
                                               out_channels, 1, stride, 0, rng));
  auto sbn = std::make_shared<BatchNorm>(stag + ".bn", out_channels);
  sbn->RandomizeStats(rng);
  shortcut_.push_back(sbn);
}

Result<Tensor> ResidualBlock::Forward(const Tensor& input,
                                      Device* device) const {
  DL2SQL_ASSIGN_OR_RETURN(Tensor main_out, RunSequence(main_, input, device));
  DL2SQL_ASSIGN_OR_RETURN(Tensor sc_out, RunSequence(shortcut_, input, device));
  DL2SQL_ASSIGN_OR_RETURN(Tensor summed, Add(main_out, sc_out));
  return Relu(summed);
}

Result<Shape> ResidualBlock::OutputShape(const Shape& input) const {
  DL2SQL_ASSIGN_OR_RETURN(Shape main_shape, SequenceShape(main_, input));
  DL2SQL_ASSIGN_OR_RETURN(Shape sc_shape, SequenceShape(shortcut_, input));
  if (main_shape != sc_shape) {
    return Status::InternalError(name(), ": main ", main_shape.ToString(),
                                 " vs shortcut ", sc_shape.ToString());
  }
  return main_shape;
}

std::vector<NamedParam> ResidualBlock::Parameters() const {
  std::vector<NamedParam> out;
  CollectParams(main_, "", &out);
  CollectParams(shortcut_, "", &out);
  return out;
}

std::vector<const Layer*> ResidualBlock::Children() const {
  std::vector<const Layer*> out;
  for (const auto& l : main_) out.push_back(l.get());
  for (const auto& l : shortcut_) out.push_back(l.get());
  return out;
}

// --------------------------------------------------------- IdentityBlock ----

IdentityBlock::IdentityBlock(std::string name, int64_t channels, int64_t kernel,
                             int64_t num_convs, Rng* rng)
    : Layer(std::move(name)) {
  const int64_t pad = kernel / 2;
  for (int64_t i = 0; i < num_convs; ++i) {
    const std::string tag = Layer::name() + ".conv" + std::to_string(i + 1);
    main_.push_back(
        std::make_shared<Conv2d>(tag, channels, channels, kernel, 1, pad, rng));
    auto bn = std::make_shared<BatchNorm>(tag + ".bn", channels);
    bn->RandomizeStats(rng);
    main_.push_back(bn);
    if (i + 1 < num_convs) {
      main_.push_back(std::make_shared<ReluLayer>(tag + ".relu"));
    }
  }
}

Result<Tensor> IdentityBlock::Forward(const Tensor& input,
                                      Device* device) const {
  DL2SQL_ASSIGN_OR_RETURN(Tensor main_out, RunSequence(main_, input, device));
  DL2SQL_ASSIGN_OR_RETURN(Tensor summed, Add(main_out, input));
  return Relu(summed);
}

Result<Shape> IdentityBlock::OutputShape(const Shape& input) const {
  DL2SQL_ASSIGN_OR_RETURN(Shape main_shape, SequenceShape(main_, input));
  if (main_shape != input) {
    return Status::InternalError(name(), ": identity block changed shape");
  }
  return main_shape;
}

std::vector<NamedParam> IdentityBlock::Parameters() const {
  std::vector<NamedParam> out;
  CollectParams(main_, "", &out);
  return out;
}

std::vector<const Layer*> IdentityBlock::Children() const {
  std::vector<const Layer*> out;
  for (const auto& l : main_) out.push_back(l.get());
  return out;
}

// ------------------------------------------------------------ DenseBlock ----

DenseBlock::DenseBlock(std::string name, int64_t in_channels, int64_t growth,
                       int64_t num_stages, int64_t kernel, Rng* rng)
    : Layer(std::move(name)), in_channels_(in_channels), growth_(growth) {
  const int64_t pad = kernel / 2;
  int64_t c = in_channels;
  for (int64_t i = 0; i < num_stages; ++i) {
    const std::string tag = Layer::name() + ".stage" + std::to_string(i + 1);
    std::vector<LayerPtr> stage;
    stage.push_back(
        std::make_shared<Conv2d>(tag + ".conv", c, growth, kernel, 1, pad, rng));
    auto bn = std::make_shared<BatchNorm>(tag + ".bn", growth);
    bn->RandomizeStats(rng);
    stage.push_back(bn);
    stage.push_back(std::make_shared<ReluLayer>(tag + ".relu"));
    stages_.push_back(std::move(stage));
    c += growth;
  }
}

Result<Tensor> DenseBlock::Forward(const Tensor& input, Device* device) const {
  std::vector<Tensor> feats{input};
  for (const auto& stage : stages_) {
    DL2SQL_ASSIGN_OR_RETURN(Tensor x, ConcatChannels(feats));
    DL2SQL_ASSIGN_OR_RETURN(Tensor y, RunSequence(stage, x, device));
    feats.push_back(std::move(y));
  }
  return ConcatChannels(feats);
}

Result<Shape> DenseBlock::OutputShape(const Shape& input) const {
  if (input.ndim() != 3 || input[0] != in_channels_) {
    return Status::InvalidArgument(name(), ": bad input shape ",
                                   input.ToString());
  }
  return Shape({in_channels_ + num_stages() * growth_, input[1], input[2]});
}

std::vector<NamedParam> DenseBlock::Parameters() const {
  std::vector<NamedParam> out;
  for (const auto& stage : stages_) CollectParams(stage, "", &out);
  return out;
}

std::vector<const Layer*> DenseBlock::Children() const {
  std::vector<const Layer*> out;
  for (const auto& stage : stages_) {
    for (const auto& l : stage) out.push_back(l.get());
  }
  return out;
}

// -------------------------------------------------------- BasicAttention ----

BasicAttention::BasicAttention(std::string name, int64_t in_dim, int64_t out_dim,
                               Rng* rng)
    : Layer(std::move(name)),
      attn_(std::make_shared<Linear>(Layer::name() + ".attn", in_dim, out_dim,
                                     rng)),
      value_(std::make_shared<Linear>(Layer::name() + ".value", in_dim, out_dim,
                                      rng)) {}

Result<Tensor> BasicAttention::Forward(const Tensor& input,
                                       Device* device) const {
  DL2SQL_ASSIGN_OR_RETURN(Tensor scores, attn_->Forward(input, device));
  DL2SQL_ASSIGN_OR_RETURN(Tensor weights, Softmax(scores));
  DL2SQL_ASSIGN_OR_RETURN(Tensor values, value_->Forward(input, device));
  return Mul(weights, values);
}

Result<Shape> BasicAttention::OutputShape(const Shape& input) const {
  return attn_->OutputShape(input);
}

std::vector<NamedParam> BasicAttention::Parameters() const {
  std::vector<NamedParam> out;
  for (auto& p : attn_->Parameters()) {
    out.push_back({attn_->name() + "." + p.name, p.tensor});
  }
  for (auto& p : value_->Parameters()) {
    out.push_back({value_->name() + "." + p.name, p.tensor});
  }
  return out;
}

std::vector<const Layer*> BasicAttention::Children() const {
  return {attn_.get(), value_.get()};
}

}  // namespace dl2sql::nn
