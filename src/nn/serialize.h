/// \file serialize.h
/// \brief Model (de)serialization: the "model compilation" component of the
/// loose-integration strategy (Section III-B).
///
/// Two container formats mirror the paper's pipeline:
///  - kScript: the tracing/TorchScript analog produced by the DL system —
///    self-describing, carries layer & parameter names plus a metadata
///    preamble per layer. Used by the independent-processing strategy.
///  - kCompiledBlob: the stripped binary linked into the database kernel for
///    the DB-UDF strategy — architecture descriptor plus raw weights, no
///    names. Smaller, as Table IV of the paper reports.
///
/// Round-tripping either format reconstructs a Model that computes the exact
/// same function (bit-identical weights).
#pragma once

#include <string>

#include "nn/model.h"

namespace dl2sql::nn {

enum class ModelFormat : uint8_t {
  kScript = 0,
  kCompiledBlob = 1,
};

/// Serializes `model` into the chosen container format.
Result<std::string> SerializeModel(const Model& model, ModelFormat format);

/// Reconstructs a model from bytes produced by SerializeModel. Blob-format
/// models get synthesized layer names (layer0, layer1, ...).
Result<Model> DeserializeModel(const std::string& bytes);

/// Byte size the format would occupy, without materializing the buffer twice.
Result<uint64_t> SerializedSize(const Model& model, ModelFormat format);

/// Content fingerprint of a model: a 64-bit hash over the compiled-blob
/// serialization (architecture + exact weight bytes). Two models compute the
/// same function iff their blobs match, so the fingerprint keys cross-query
/// nUDF result caches; redeploying a retrained model changes it and thereby
/// invalidates every memoized result. Never returns 0 (0 is the "uncacheable"
/// sentinel in NUdfInfo).
Result<uint64_t> ModelFingerprint(const Model& model);

}  // namespace dl2sql::nn
