/// \file serialize.h
/// \brief Model (de)serialization: the "model compilation" component of the
/// loose-integration strategy (Section III-B).
///
/// Two container formats mirror the paper's pipeline:
///  - kScript: the tracing/TorchScript analog produced by the DL system —
///    self-describing, carries layer & parameter names plus a metadata
///    preamble per layer. Used by the independent-processing strategy.
///  - kCompiledBlob: the stripped binary linked into the database kernel for
///    the DB-UDF strategy — architecture descriptor plus raw weights, no
///    names. Smaller, as Table IV of the paper reports.
///
/// Round-tripping either format reconstructs a Model that computes the exact
/// same function (bit-identical weights).
#pragma once

#include <string>

#include "nn/model.h"

namespace dl2sql::nn {

enum class ModelFormat : uint8_t {
  kScript = 0,
  kCompiledBlob = 1,
};

/// Serializes `model` into the chosen container format.
Result<std::string> SerializeModel(const Model& model, ModelFormat format);

/// Reconstructs a model from bytes produced by SerializeModel. Blob-format
/// models get synthesized layer names (layer0, layer1, ...).
Result<Model> DeserializeModel(const std::string& bytes);

/// Byte size the format would occupy, without materializing the buffer twice.
Result<uint64_t> SerializedSize(const Model& model, ModelFormat format);

}  // namespace dl2sql::nn
