/// \file model.h
/// \brief Model: a named sequential pipeline of layers (blocks may branch
/// internally) with a fixed input shape and class labels.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.h"

namespace dl2sql::nn {

/// \brief An inference-ready neural network.
///
/// Models in this repo mirror the paper's deployment: trained offline (we
/// materialize deterministic random weights instead), frozen, then either
/// (a) served behind the DL-system boundary (independent processing),
/// (b) compiled into a UDF blob (loose integration), or
/// (c) converted into relational tables + SQL (DL2SQL).
class Model {
 public:
  Model() = default;
  Model(std::string name, Shape input_shape, std::vector<std::string> classes)
      : name_(std::move(name)),
        input_shape_(std::move(input_shape)),
        classes_(std::move(classes)) {}

  const std::string& name() const { return name_; }
  const Shape& input_shape() const { return input_shape_; }
  const std::vector<std::string>& classes() const { return classes_; }
  int64_t num_classes() const { return static_cast<int64_t>(classes_.size()); }

  void AddLayer(LayerPtr layer) { layers_.push_back(std::move(layer)); }
  const std::vector<LayerPtr>& layers() const { return layers_; }

  /// Runs the full pipeline; `device` must not be null.
  Result<Tensor> Forward(const Tensor& input, Device* device) const;

  /// Forward, then argmax over the output vector -> predicted class index.
  Result<int64_t> Predict(const Tensor& input, Device* device) const;

  /// Validates the layer chain against the declared input shape and returns
  /// the output shape.
  Result<Shape> OutputShape() const;

  /// Total scalar parameters across all layers.
  int64_t NumParameters() const;

  /// Flattened (name, tensor) list across all layers, stable order.
  std::vector<NamedParam> Parameters() const;

  /// Multi-line structural summary for logging / README examples.
  std::string Summary() const;

 private:
  std::string name_;
  Shape input_shape_;
  std::vector<std::string> classes_;
  std::vector<LayerPtr> layers_;
};

}  // namespace dl2sql::nn
