/// \file builders.h
/// \brief Model factories for the architectures the paper evaluates.
///
/// The paper trains on 224x224x3 keyframes; this repo defaults to smaller
/// spatial sizes so the relational (DL2SQL) execution path stays tractable on
/// a development machine — the comparison between strategies is unaffected
/// because all strategies run the same architecture on the same input.
#pragma once

#include "nn/blocks.h"
#include "nn/model.h"

namespace dl2sql::nn {

/// Options shared by the builders.
struct BuilderOptions {
  int64_t input_channels = 3;
  int64_t input_size = 32;  ///< spatial H = W
  int64_t num_classes = 10;
  int64_t base_channels = 8;  ///< width multiplier
  uint64_t seed = 42;
};

/// \brief The distilled "student" model from the evaluation: three
/// Conv+BN+ReLU blocks, a max-pool, and a softmax classifier head.
/// (Paper: distilled from ResNet34; 87% vs 93% accuracy — accuracy is not
/// modeled here, only the inference-time architecture.)
Model BuildStudentCnn(const BuilderOptions& opts = {});

/// \brief ResNet-`depth` analog used in Tables IV & VI: a conv stem followed
/// by residual/identity blocks totalling `depth` weighted conv layers, then
/// global-average-pool + FC + softmax. Parameter count grows linearly in
/// depth as in Table VI.
Result<Model> BuildResNet(int64_t depth, const BuilderOptions& opts = {});

/// \brief LeNet-style classifier (conv-pool-conv-pool-fc-fc).
Model BuildLeNet(const BuilderOptions& opts = {});

/// \brief Tiny VGG-style stack (conv-conv-pool twice, then FC head).
Model BuildVggTiny(const BuilderOptions& opts = {});

/// \brief DenseNet-style toy: stem conv + one dense block + classifier head.
Model BuildDenseNetTiny(const BuilderOptions& opts = {});

/// \brief MLP with a basic-attention block, exercising the FC/attention
/// translation path.
Model BuildAttentionMlp(const BuilderOptions& opts = {});

}  // namespace dl2sql::nn
