#include "engines/independent_engine.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "db/eval.h"
#include "tensor/tensor_blob.h"

namespace dl2sql::engines {

namespace {

std::string BaseName(const std::string& name) {
  const size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

std::string QualifierOf(const std::string& name) {
  const size_t dot = name.rfind('.');
  return dot == std::string::npos ? std::string() : name.substr(0, dot);
}

/// Strips table qualifiers from every column reference.
void UnqualifyColumns(db::Expr* e) {
  if (e->kind == db::ExprKind::kColumnRef) {
    e->column_name = BaseName(e->column_name);
    e->bound_index = -1;
  }
  for (auto& c : e->children) UnqualifyColumns(c.get());
}

/// Replaces neural-call subtrees (textual identity) with column references.
void ReplaceNeuralCalls(db::ExprPtr* e,
                        const std::map<std::string, std::string>& call_to_col) {
  auto it = call_to_col.find((*e)->ToString());
  if (it != call_to_col.end()) {
    *e = db::Expr::Col(it->second);
    return;
  }
  for (auto& c : (*e)->children) ReplaceNeuralCalls(&c, call_to_col);
}

/// Collects distinct neural calls in an expression tree.
void CollectNeuralCalls(const db::ExprPtr& e, const db::UdfRegistry& udfs,
                        std::vector<db::ExprPtr>* calls,
                        std::set<std::string>* seen) {
  if (e->kind == db::ExprKind::kFuncCall && udfs.IsNeural(e->func_name)) {
    if (seen->insert(e->ToString()).second) calls->push_back(e);
    return;
  }
  for (const auto& c : e->children) CollectNeuralCalls(c, udfs, calls, seen);
}

bool ContainsNeural(const db::ExprPtr& e, const db::UdfRegistry& udfs) {
  std::vector<db::ExprPtr> calls;
  std::set<std::string> seen;
  CollectNeuralCalls(e, udfs, &calls, &seen);
  return !calls.empty();
}

}  // namespace

IndependentEngine::IndependentEngine(std::shared_ptr<Device> device)
    : CollaborativeEngine(std::move(device)) {}

Status IndependentEngine::DeployModel(const nn::Model& model,
                                      const ModelDeployment& deployment) {
  DL2SQL_ASSIGN_OR_RETURN(std::string script,
                          nn::SerializeModel(model, nn::ModelFormat::kScript));
  served_[ToLower(deployment.udf_name)] =
      ServedModel{std::move(script), deployment.output};
  deployments_[deployment.udf_name] = deployment;
  // Register metadata-only: the application layer intercepts neural calls
  // before the database would ever evaluate them, but the registry entry (a)
  // lets the coordinator identify neural calls and (b) carries the
  // selectivity histogram.
  db::NUdfInfo info;
  info.model_name = model.name();
  info.selectivity = deployment.selectivity;
  info.num_parameters = model.NumParameters();
  db::DataType ret;
  switch (deployment.output) {
    case NUdfOutput::kBool:
      ret = db::DataType::kBool;
      break;
    case NUdfOutput::kLabel:
      ret = db::DataType::kString;
      break;
    case NUdfOutput::kClassId:
      ret = db::DataType::kInt64;
      break;
  }
  db_.udfs().RegisterNeural(
      deployment.udf_name, ret,
      [](const std::vector<db::Value>&) -> Result<db::Value> {
        return Status::InternalError(
            "independent processing must not evaluate nUDFs inside the "
            "database");
      },
      std::move(info));
  return Status::OK();
}

Result<std::vector<db::Value>> IndependentEngine::ServeBatch(
    const std::string& udf_name, const std::vector<Tensor>& inputs,
    QueryCost* cost) {
  auto it = served_.find(ToLower(udf_name));
  if (it == served_.end()) {
    return Status::NotFound("model for nUDF '", udf_name, "' is not served");
  }
  const ServedModel& served = it->second;
  const DeviceProfile& prof = device_->profile();

  // Per-query model load in the DL system (CPU work, device-speed scaled).
  Stopwatch load_watch;
  DL2SQL_ASSIGN_OR_RETURN(nn::Model model, nn::DeserializeModel(served.script));
  cost->loading_seconds +=
      load_watch.ElapsedSeconds() * CpuFactor();

  // Accelerator traffic: one batched transfer each way + weights once per
  // query (modeled, absolute).
  if (prof.NeedsTransfer()) {
    uint64_t bytes = static_cast<uint64_t>(model.NumParameters()) * sizeof(float);
    for (const auto& t : inputs) {
      bytes += static_cast<uint64_t>(t.NumElements()) * sizeof(float);
    }
    cost->loading_seconds += device_->TransferSeconds(bytes);
    cost->loading_seconds +=
        device_->TransferSeconds(inputs.size() * sizeof(int64_t));
  }

  std::vector<db::Value> out;
  out.reserve(inputs.size());
  Stopwatch fwd_watch;
  for (const auto& input : inputs) {
    DL2SQL_ASSIGN_OR_RETURN(int64_t cls, model.Predict(input, device_.get()));
    switch (served.output) {
      case NUdfOutput::kBool:
        out.push_back(db::Value::Bool(cls == 1));
        break;
      case NUdfOutput::kLabel:
        out.push_back(db::Value::String(model.classes()[static_cast<size_t>(cls)]));
        break;
      case NUdfOutput::kClassId:
        out.push_back(db::Value::Int(cls));
        break;
    }
  }
  cost->inference_seconds += fwd_watch.ElapsedSeconds() * prof.compute_scale;
  return out;
}

Result<db::Table> IndependentEngine::ExecuteCollaborative(const std::string& sql,
                                                          QueryCost* cost) {
  // The application layer coordinates (Section III-A): Q_learning runs in
  // the DL system over each nUDF's *source relation* (filtered only by that
  // relation's own relational predicates — the app cannot anticipate join
  // results), predictions are forwarded back into the database as enriched
  // temp tables, and Q_db runs there with nUDF calls replaced by prediction
  // columns. The full keyframe set crossing the system boundary is this
  // strategy's structural cost, and it is what makes it insensitive to the
  // relational selectivity (Table V's observation).
  QueryCost local;
  const DeviceProfile& prof = device_->profile();
  DL2SQL_TRACE_SPAN("engine", "independent.query");
  DL2SQL_ASSIGN_OR_RETURN(db::Statement parsed, db::sql::ParseStatement(sql));
  if (!std::holds_alternative<std::shared_ptr<db::SelectStmt>>(parsed)) {
    return Status::InvalidArgument(
        "collaborative queries must be SELECT statements");
  }
  auto stmt = std::get<std::shared_ptr<db::SelectStmt>>(parsed);

  // ---- identify Q_learning: the distinct nUDF calls ----
  std::vector<db::ExprPtr> neural_calls;
  std::set<std::string> seen_calls;
  for (const auto& item : stmt->items) {
    CollectNeuralCalls(item.expr, db_.udfs(), &neural_calls, &seen_calls);
  }
  if (stmt->where != nullptr) {
    CollectNeuralCalls(stmt->where, db_.udfs(), &neural_calls, &seen_calls);
  }
  if (stmt->having != nullptr) {
    CollectNeuralCalls(stmt->having, db_.udfs(), &neural_calls, &seen_calls);
  }

  // ---- resolve each call's source relation (alias -> base table) ----
  struct SourceRelation {
    std::string alias;
    std::string base_table;
    std::vector<const db::Expr*> calls;  // calls fed from this relation
  };
  std::map<std::string, SourceRelation> sources;
  auto alias_to_table = [&](const std::string& alias) -> Result<std::string> {
    auto check = [&](const db::TableRef& ref) -> std::string {
      if (EqualsIgnoreCase(ref.EffectiveName(), alias) && !ref.IsDerived()) {
        return ref.table_name;
      }
      return "";
    };
    if (stmt->from) {
      std::string t = check(*stmt->from);
      if (!t.empty()) return t;
    }
    for (const auto& j : stmt->joins) {
      std::string t = check(j.table);
      if (!t.empty()) return t;
    }
    return Status::InvalidArgument("cannot resolve relation alias '", alias,
                                   "' for an nUDF argument");
  };

  for (const auto& call : neural_calls) {
    std::vector<std::string> refs;
    call->CollectColumns(&refs);
    if (refs.empty()) {
      return Status::InvalidArgument("nUDF call without column arguments: ",
                                     call->ToString());
    }
    std::set<std::string> quals;
    for (const auto& r : refs) quals.insert(ToLower(QualifierOf(r)));
    if (quals.size() != 1 || quals.count("") != 0) {
      return Status::NotImplemented(
          "independent processing requires qualified single-relation nUDF "
          "arguments: ",
          call->ToString());
    }
    const std::string alias = *quals.begin();
    auto& src = sources[alias];
    if (src.alias.empty()) {
      src.alias = alias;
      DL2SQL_ASSIGN_OR_RETURN(src.base_table, alias_to_table(alias));
    }
    src.calls.push_back(call.get());
  }

  // ---- per-relation local predicates (the app's hand-crafted pushdown) ----
  std::vector<db::ExprPtr> where_conjuncts;
  if (stmt->where != nullptr) {
    db::SplitConjuncts(stmt->where, &where_conjuncts);
  }
  auto local_conjuncts_for = [&](const std::string& alias) {
    std::vector<db::ExprPtr> out;
    for (const auto& c : where_conjuncts) {
      if (ContainsNeural(c, db_.udfs())) continue;
      std::vector<std::string> refs;
      c->CollectColumns(&refs);
      if (refs.empty()) continue;
      bool all_local = true;
      for (const auto& r : refs) {
        if (!EqualsIgnoreCase(QualifierOf(r), alias)) {
          all_local = false;
          break;
        }
      }
      if (all_local) out.push_back(c);
    }
    return out;
  };

  // ---- Q_learning per source relation ----
  std::map<std::string, std::string> call_to_col;
  std::vector<std::string> temp_tables;
  int pred_idx = 0;
  for (auto& [alias_key, src] : sources) {
    // Q_learning phase: local scan + DL-system serving + boundary shipping
    // for one source relation.
    DL2SQL_TRACE_SPAN("engine", "independent.q_learning",
                      "\"relation\":\"" + src.base_table + "\"");
    // Local relational scan of the source relation, inside the database.
    auto local_stmt = std::make_shared<db::SelectStmt>();
    local_stmt->items.push_back({db::Expr::Star(), ""});
    db::TableRef ref;
    ref.table_name = src.base_table;
    ref.alias = src.alias;
    local_stmt->from = ref;
    auto local_preds = local_conjuncts_for(src.alias);
    if (!local_preds.empty()) {
      local_stmt->where = db::CombineConjuncts(local_preds);
    }
    CostAccumulator acc;
    db_.set_cost_accumulator(&acc);
    auto rows_r = db_.ExecuteSelect(*local_stmt);
    db_.set_cost_accumulator(nullptr);
    DL2SQL_RETURN_NOT_OK(rows_r.status());
    db::Table rows = std::move(rows_r).ValueOrDie();
    {
      QueryCost relational = SplitBuckets(acc);
      local.relational_seconds +=
          relational.relational_seconds * RelationalFactor();
    }

    db::Table enriched = rows;
    db::EvalContext eval_ctx;
    eval_ctx.udfs = &db_.udfs();
    for (const db::Expr* call : src.calls) {
      // Argument blobs cross the boundary to the DL system.
      db::ExprPtr arg = call->children[0]->Clone();
      UnqualifyColumns(arg.get());
      DL2SQL_ASSIGN_OR_RETURN(db::ColumnHandle blob_col,
                              db::EvalExpr(*arg, rows, &eval_ctx));
      local.loading_seconds += boundary_.TransferSeconds(blob_col->ByteSize());

      std::vector<Tensor> inputs;
      inputs.reserve(static_cast<size_t>(blob_col->size()));
      Stopwatch decode_watch;
      for (int64_t i = 0; i < blob_col->size(); ++i) {
        DL2SQL_ASSIGN_OR_RETURN(
            Tensor t,
            DecodeTensorBlob(blob_col->strings()[static_cast<size_t>(i)]));
        inputs.push_back(std::move(t));
      }
      local.loading_seconds +=
          decode_watch.ElapsedSeconds() * CpuFactor();

      std::vector<db::Value> preds;
      {
        DL2SQL_TRACE_SPAN("engine", "independent.serve",
                          "\"udf\":\"" + call->func_name + "\"");
        DL2SQL_ASSIGN_OR_RETURN(preds,
                                ServeBatch(call->func_name, inputs, &local));
      }

      // Predictions travel back across the boundary into the database.
      uint64_t pred_bytes = 0;
      for (const auto& v : preds) {
        pred_bytes += v.type() == db::DataType::kString
                          ? v.string_value().size() + 4
                          : 8;
      }
      local.loading_seconds += boundary_.TransferSeconds(pred_bytes);

      const std::string col_name = "__pred" + std::to_string(pred_idx++);
      db::Column pc(preds.empty() ? db::DataType::kBool : preds[0].type());
      for (const auto& v : preds) {
        DL2SQL_RETURN_NOT_OK(pc.Append(v));
      }
      db::TableSchema schema = enriched.schema();
      schema.AddField({col_name, pc.type()});
      std::vector<db::Column> cols;
      for (int i = 0; i < enriched.num_columns(); ++i) {
        cols.push_back(enriched.column(i));
      }
      cols.push_back(std::move(pc));
      DL2SQL_ASSIGN_OR_RETURN(enriched,
                              db::Table::FromColumns(schema, std::move(cols)));
      call_to_col[call->ToString()] = src.alias + "." + col_name;
    }

    const std::string temp_name = "__indep_" + ToLower(src.alias);
    Stopwatch forward_watch;
    DL2SQL_RETURN_NOT_OK(db_.RegisterTable(temp_name, enriched, true));
    local.loading_seconds +=
        forward_watch.ElapsedSeconds() * RelationalFactor();
    temp_tables.push_back(temp_name);
  }

  // ---- Q_db: the original query over the enriched relations ----
  auto rewrite_expr = [&](const db::ExprPtr& e) {
    db::ExprPtr out = e->Clone();
    ReplaceNeuralCalls(&out, call_to_col);
    return out;
  };
  auto phase3 = std::make_shared<db::SelectStmt>(*stmt);
  auto redirect_ref = [&](db::TableRef* ref) {
    if (ref->IsDerived()) return;
    const std::string alias = ToLower(ref->EffectiveName());
    if (sources.count(alias) != 0) {
      ref->alias = ref->EffectiveName();
      ref->table_name = "__indep_" + alias;
    }
  };
  if (phase3->from) redirect_ref(&*phase3->from);
  for (auto& j : phase3->joins) redirect_ref(&j.table);
  for (auto& item : phase3->items) item.expr = rewrite_expr(item.expr);
  if (phase3->where != nullptr) phase3->where = rewrite_expr(phase3->where);
  if (phase3->having != nullptr) phase3->having = rewrite_expr(phase3->having);
  for (auto& g : phase3->group_by) g = rewrite_expr(g);
  for (auto& o : phase3->order_by) o.expr = rewrite_expr(o.expr);

  CostAccumulator acc3;
  db_.set_cost_accumulator(&acc3);
  Result<db::Table> result = [&] {
    // Q_db phase: the rewritten query over the enriched temp tables.
    DL2SQL_TRACE_SPAN("engine", "independent.q_db");
    return db_.ExecuteSelect(*phase3);
  }();
  db_.set_cost_accumulator(nullptr);
  for (const auto& t : temp_tables) {
    (void)db_.catalog().DropTable(t, true);
  }
  DL2SQL_RETURN_NOT_OK(result.status());
  {
    QueryCost relational = SplitBuckets(acc3);
    local.relational_seconds +=
        relational.relational_seconds * RelationalFactor();
    local.loading_seconds += relational.loading_seconds;
  }

  if (cost != nullptr) *cost = local;
  return result;
}

Result<uint64_t> IndependentEngine::ScriptBytes(const std::string& udf_name) const {
  auto it = served_.find(ToLower(udf_name));
  if (it == served_.end()) {
    return Status::NotFound("no served model for ", udf_name);
  }
  return static_cast<uint64_t>(it->second.script.size());
}

}  // namespace dl2sql::engines
