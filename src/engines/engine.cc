#include "engines/engine.h"

namespace dl2sql::engines {

Status CollaborativeEngine::AttachTablesFrom(const db::Database& source) {
  for (const auto& name : source.catalog().TableNames()) {
    DL2SQL_ASSIGN_OR_RETURN(db::TablePtr t, source.catalog().GetTable(name));
    if (db_.catalog().HasTable(name)) {
      DL2SQL_RETURN_NOT_OK(db_.catalog().DropTable(name, false));
    }
    // Shared TablePtr: all engines see the same physical columns.
    DL2SQL_RETURN_NOT_OK(db_.catalog().CreateTable(name, t, false));
    if (const db::TableStats* stats = source.catalog().GetStats(name)) {
      (void)stats;
      DL2SQL_RETURN_NOT_OK(db_.catalog().Analyze(name));
    }
  }
  return Status::OK();
}

QueryCost CollaborativeEngine::SplitBuckets(const CostAccumulator& acc) {
  QueryCost cost;
  for (const auto& [bucket, secs] : acc.buckets()) {
    if (bucket == "inference") {
      cost.inference_seconds += secs;
    } else if (bucket == "loading") {
      cost.loading_seconds += secs;
    } else {
      cost.relational_seconds += secs;
    }
  }
  return cost;
}

Result<db::NUdfSelectivity> LearnSelectivityHistogram(const nn::Model& model,
                                                      NUdfOutput output,
                                                      Device* device,
                                                      int64_t samples,
                                                      uint64_t seed) {
  Rng rng(seed);
  db::NUdfSelectivity sel;
  for (int64_t s = 0; s < samples; ++s) {
    Tensor input = Tensor::Random(model.input_shape(), &rng, 1.0f);
    DL2SQL_ASSIGN_OR_RETURN(int64_t cls, model.Predict(input, device));
    std::string label;
    switch (output) {
      case NUdfOutput::kBool:
        label = cls == 1 ? "TRUE" : "FALSE";
        break;
      case NUdfOutput::kLabel:
        label = model.classes()[static_cast<size_t>(cls)];
        break;
      case NUdfOutput::kClassId:
        label = std::to_string(cls);
        break;
    }
    sel.histogram[label] += 1;
  }
  return sel;
}

}  // namespace dl2sql::engines
