#include "engines/engine.h"

#include "common/cache.h"
#include "nn/serialize.h"

namespace dl2sql::engines {

Result<uint64_t> FamilyFingerprint(const ModelFamilyDeployment& family) {
  // Routing is part of the function: same args through a family whose
  // thresholds moved may pick a different variant, so thresholds and output
  // kind hash in alongside every variant's weights.
  uint64_t h = Hash64(family.udf_name);
  for (const auto& v : family.variants) {
    DL2SQL_ASSIGN_OR_RETURN(uint64_t model_fp, nn::ModelFingerprint(v.model));
    h = HashCombine(h, model_fp);
    h = HashCombine(h, Hash64(&v.humidity_min, sizeof(v.humidity_min)));
    h = HashCombine(h, Hash64(&v.temperature_min, sizeof(v.temperature_min)));
  }
  h = HashCombine(h, static_cast<uint64_t>(family.output));
  return h == 0 ? 1 : h;
}

Status CollaborativeEngine::AttachTablesFrom(const db::Database& source) {
  for (const auto& name : source.catalog().TableNames()) {
    DL2SQL_ASSIGN_OR_RETURN(db::TablePtr t, source.catalog().GetTable(name));
    if (db_.catalog().HasTable(name)) {
      DL2SQL_RETURN_NOT_OK(db_.catalog().DropTable(name, false));
    }
    // Shared TablePtr: all engines see the same physical columns.
    DL2SQL_RETURN_NOT_OK(db_.catalog().CreateTable(name, t, false));
    if (const db::TableStats* stats = source.catalog().GetStats(name)) {
      (void)stats;
      DL2SQL_RETURN_NOT_OK(db_.catalog().Analyze(name));
    }
  }
  return Status::OK();
}

QueryCost CollaborativeEngine::SplitBuckets(const CostAccumulator& acc) {
  QueryCost cost;
  for (const auto& [bucket, secs] : acc.buckets()) {
    if (bucket == "inference") {
      cost.inference_seconds += secs;
    } else if (bucket == "loading") {
      cost.loading_seconds += secs;
    } else {
      cost.relational_seconds += secs;
    }
  }
  return cost;
}

Result<db::NUdfSelectivity> LearnSelectivityHistogram(const nn::Model& model,
                                                      NUdfOutput output,
                                                      Device* device,
                                                      int64_t samples,
                                                      uint64_t seed) {
  Rng rng(seed);
  db::NUdfSelectivity sel;
  for (int64_t s = 0; s < samples; ++s) {
    Tensor input = Tensor::Random(model.input_shape(), &rng, 1.0f);
    DL2SQL_ASSIGN_OR_RETURN(int64_t cls, model.Predict(input, device));
    std::string label;
    switch (output) {
      case NUdfOutput::kBool:
        label = cls == 1 ? "TRUE" : "FALSE";
        break;
      case NUdfOutput::kLabel:
        label = model.classes()[static_cast<size_t>(cls)];
        break;
      case NUdfOutput::kClassId:
        label = std::to_string(cls);
        break;
    }
    sel.histogram[label] += 1;
  }
  return sel;
}

}  // namespace dl2sql::engines
