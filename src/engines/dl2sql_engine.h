/// \file dl2sql_engine.h
/// \brief Tight integration (the paper's DL2SQL / DL2SQL-OP): nUDFs are
/// rewritten into generated SQL over relational parameter tables and run
/// natively by the database.
///
/// Per collaborative query the engine:
///   1. converts every referenced model into relational tables ("load the
///    neural model from relational tables" — the loading cost that grows
///    with depth in Table VI),
///   2. registers each nUDF as a function whose body executes the model's
///    generated SQL pipeline (so nUDF evaluation *is* SQL execution, placed
///    wherever the optimizer decides),
///   3. runs the collaborative query. With hints enabled (DL2SQL-OP) the
///    optimizer applies Section IV-B's rules: scan-time vs delayed nUDF
///    placement by cost, most-selective-first ordering, and symmetric hash
///    joins for nUDF join conditions.
#pragma once

#include "dl2sql/cost_model.h"
#include "dl2sql/pipeline.h"
#include "engines/engine.h"

namespace dl2sql::engines {

class Dl2SqlEngine : public CollaborativeEngine {
 public:
  struct Options {
    /// Hint rules + neural-aware cost model (DL2SQL-OP when true).
    bool enable_optimizer_hints = false;
    /// Re-deploy parameter tables on every query (the paper's benchmark
    /// integrates models on the fly); false caches them across queries.
    bool redeploy_per_query = true;
    core::ConvertOptions convert;
  };

  Dl2SqlEngine(std::shared_ptr<Device> device, Options options);

  const char* name() const override {
    return options_.enable_optimizer_hints ? "DL2SQL-OP" : "DL2SQL";
  }

  Status DeployModel(const nn::Model& model,
                     const ModelDeployment& deployment) override;

  /// Conditional model families: every variant is converted to its own set
  /// of relational parameter tables; the 3-ary nUDF routes each row's
  /// keyframe through the variant selected by the condition columns.
  Status DeployModelFamily(const ModelFamilyDeployment& family) override;

  Result<db::Table> ExecuteCollaborative(const std::string& sql,
                                         QueryCost* cost) override;

  /// Static relational storage bytes for one deployed model (Table IV).
  Result<uint64_t> RelationalStorageBytes(const std::string& udf_name);

  /// Per-op / per-clause profile aggregated over the nUDF invocations of the
  /// most recent ExecuteCollaborative call (Figs. 9 & 10).
  const core::PipelineRunStats& last_pipeline_stats() const {
    return last_stats_;
  }

  /// Direct access to a converted model (cost-model benches).
  Result<const core::ConvertedModel*> converted_model(
      const std::string& udf_name);

 private:
  struct DeployedModel {
    nn::Model model;
    ModelDeployment deployment;
    /// Valid while deployed; rebuilt per query when redeploy_per_query.
    std::shared_ptr<core::Dl2SqlRunner> runner;
    double per_call_cost_sec = 0;
  };

  /// (Re)builds parameter tables + runner for one model; returns seconds.
  Result<double> Deploy(DeployedModel* m);
  Status Undeploy(DeployedModel* m);
  void RegisterNUdf(const std::string& name);

  struct DeployedFamily {
    ModelFamilyDeployment family;
    std::vector<std::shared_ptr<DeployedModel>> variants;
  };

  Options options_;
  std::map<std::string, std::shared_ptr<DeployedModel>> models_;
  std::map<std::string, std::shared_ptr<DeployedFamily>> families_;
  /// Accumulates pipeline-internal stats across nUDF calls in one query.
  core::PipelineRunStats last_stats_;
  /// Input-tensor loading seconds accumulated inside nUDF calls (moved from
  /// the inference to the loading bucket after the query).
  double call_loading_seconds_ = 0;
  int prefix_counter_ = 0;
};

}  // namespace dl2sql::engines
