/// \file engine.h
/// \brief Common interface of the three collaborative-query strategies
/// (Section III): independent processing, loose integration (UDF), and tight
/// integration (DL2SQL / DL2SQL-OP).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "accel/device.h"
#include "db/database.h"
#include "nn/model.h"

namespace dl2sql::engines {

/// The paper's three-way cost breakdown (Fig. 8): loading cost (models and
/// data into the system + cross-system I/O), inference cost, and relational
/// algebra cost.
struct QueryCost {
  double loading_seconds = 0;
  double inference_seconds = 0;
  double relational_seconds = 0;

  double Total() const {
    return loading_seconds + inference_seconds + relational_seconds;
  }

  QueryCost& operator+=(const QueryCost& o) {
    loading_seconds += o.loading_seconds;
    inference_seconds += o.inference_seconds;
    relational_seconds += o.relational_seconds;
    return *this;
  }

  QueryCost operator/(double n) const {
    return {loading_seconds / n, inference_seconds / n,
            relational_seconds / n};
  }
};

/// How a deployed model's prediction surfaces as an nUDF return value.
enum class NUdfOutput : int {
  kBool,     ///< detect-style: TRUE iff predicted class index is 1
  kLabel,    ///< classify-style: the predicted class label string
  kClassId,  ///< recog-style: the predicted class index (e.g. a pattern ID)
};

/// Everything a deployed model needs.
struct ModelDeployment {
  std::string udf_name;
  NUdfOutput output = NUdfOutput::kBool;
  db::NUdfSelectivity selectivity;  ///< offline class histogram (Eq. 10)
};

/// \brief A conditional model family (the paper's Type 3 motivation:
/// "various models are trained for different humidity and temperature
/// combinations", and Q_db's output decides which model runs).
///
/// The family is exposed as a 3-ary nUDF
/// `name(keyframe, humidity, temperature)`: per row, the first variant whose
/// humidity/temperature minimums are satisfied is selected (order the
/// variants most-specific first; the last one should be a catch-all).
struct ModelFamilyDeployment {
  struct Variant {
    double humidity_min = 0;
    double temperature_min = 0;
    nn::Model model;
    db::NUdfSelectivity selectivity;
  };
  std::string udf_name;
  NUdfOutput output = NUdfOutput::kBool;
  std::vector<Variant> variants;

  /// Index of the variant serving the given conditions (last as fallback).
  size_t Select(double humidity, double temperature) const {
    for (size_t i = 0; i < variants.size(); ++i) {
      if (humidity >= variants[i].humidity_min &&
          temperature >= variants[i].temperature_min) {
        return i;
      }
    }
    return variants.size() - 1;
  }

  /// Pooled selectivity histogram across variants (for the hint rules).
  db::NUdfSelectivity MergedSelectivity() const {
    db::NUdfSelectivity merged;
    for (const auto& v : variants) {
      for (const auto& [label, count] : v.selectivity.histogram) {
        merged.histogram[label] += count;
      }
    }
    return merged;
  }
};

/// \brief Base class: owns a database instance plus a compute device and
/// exposes the collaborative-query entry point.
class CollaborativeEngine {
 public:
  explicit CollaborativeEngine(std::shared_ptr<Device> device)
      : device_(std::move(device)) {
    // Relational execution (filters, join probe, aggregation, batched nUDFs)
    // runs morsel-parallel on this device's pool; a 1-thread device (edge
    // profile) degenerates to the serial paths.
    db_.set_exec_options({device_.get(), ThreadPool::kDefaultMorselSize});
  }
  virtual ~CollaborativeEngine() = default;

  virtual const char* name() const = 0;

  db::Database& database() { return db_; }
  Device* device() { return device_.get(); }

  /// Makes `model` callable as nUDF `deployment.udf_name` in SQL queries.
  virtual Status DeployModel(const nn::Model& model,
                             const ModelDeployment& deployment) = 0;

  /// Deploys a conditional model family (Type 3 model selection). The
  /// default reflects the paper's Table III: strategies that need per-query
  /// hand-crafted coordination do not support it generically.
  virtual Status DeployModelFamily(const ModelFamilyDeployment& family) {
    return Status::NotImplemented(
        name(), " requires hand-crafted per-query coordination for "
                "conditional model selection (family '",
        family.udf_name, "')");
  }

  /// Processes one collaborative query, reporting the cost breakdown.
  virtual Result<db::Table> ExecuteCollaborative(const std::string& sql,
                                                 QueryCost* cost) = 0;

  /// Attaches the base tables of `source` into this engine's catalog by
  /// reference (zero copy) — every engine queries the same IoT dataset.
  Status AttachTablesFrom(const db::Database& source);

  /// Calibration from this engine to the ClickHouse-class vectorized engine
  /// the paper deploys on. With the batch-at-a-time vectorized execution
  /// path (src/db/exec/vector_*), the measured basis is micro_db's
  /// scan-filter and group-by throughput: ~120-150M rows/s single-threaded
  /// (up from ~10-20M rows/s for the interpreted row-at-a-time path that
  /// originally set this constant to 0.05) vs ClickHouse's published
  /// ~200-500M rows/s on comparable cores — a ratio band of 0.24-0.75 whose
  /// geometric mean rounds to 0.4. Applied to every database-executed bucket
  /// so the native-tensor vs in-database cost *ratio* matches the paper's
  /// testbed. Public so tests can pin the re-derived value.
  static constexpr double kSqlEngineCalibration = 0.4;

 protected:
  /// Splits an operator-bucket accumulator into the paper's three-way cost.
  static QueryCost SplitBuckets(const CostAccumulator& acc);

  /// Modeled cost of integrating a new compiled-UDF model into the database
  /// kernel (recompile + relink + reload; Section III-B notes the kernel
  /// "has to be recompiled"). A conservative estimate of a small C++ TU
  /// compile+link on the edge profile; scaled by the host's CPU speed.
  static constexpr double kUdfIntegrationSeconds = 0.2;

  /// Wall-time factor for work executed by the database engine.
  double RelationalFactor() const {
    return device_->profile().relational_scale * kSqlEngineCalibration;
  }
  /// Wall-time factor for plain C++ host work ((de)serialization etc.).
  double CpuFactor() const { return device_->profile().relational_scale; }

  db::Database db_;
  std::shared_ptr<Device> device_;
  std::map<std::string, ModelDeployment> deployments_;
};

/// Combined 64-bit fingerprint of a model family: every variant's model
/// fingerprint plus its routing thresholds and the output kind. Keys the
/// cross-query nUDF result cache for family UDFs; never returns 0.
Result<uint64_t> FamilyFingerprint(const ModelFamilyDeployment& family);

/// Builds the per-class selectivity histogram the paper learns during
/// offline training (Eq. 10): runs the model over `samples` random inputs
/// and counts predicted classes, formatting labels as the engine's nUDF
/// would return them.
Result<db::NUdfSelectivity> LearnSelectivityHistogram(const nn::Model& model,
                                                      NUdfOutput output,
                                                      Device* device,
                                                      int64_t samples,
                                                      uint64_t seed);

}  // namespace dl2sql::engines
