/// \file independent_engine.h
/// \brief Independent processing (the paper's DB-PyTorch): the database and
/// the DL system are black boxes coordinated by an application layer.
///
/// Per collaborative query the application layer:
///   1. splits the query into Q_db (relational) and Q_learning (neural),
///   2. runs Q_db in the database to obtain candidate rows,
///   3. ships the intermediate result across a simulated IPC boundary
///      (serialization + bandwidth + per-message latency) to the DL system,
///   4. batch-infers every nUDF on the device,
///   5. forwards the predictions back into the database as a temp table and
///      runs the residual query (neural predicates, aggregation, projection).
/// Steps 3/5's transfers and the per-query model load in the DL system are
/// the loading cost that dominates this strategy in Fig. 8.
#pragma once

#include "engines/engine.h"
#include "nn/serialize.h"

namespace dl2sql::engines {

/// \brief Simulated IPC/RPC boundary between the DB and the DL system.
struct SystemBoundary {
  double bandwidth_bytes_per_s = 2.0e9;  ///< loopback gRPC-ish throughput
  double latency_s = 100e-6;             ///< per-message latency

  double TransferSeconds(uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

class IndependentEngine : public CollaborativeEngine {
 public:
  explicit IndependentEngine(std::shared_ptr<Device> device);

  const char* name() const override { return "DB-PyTorch"; }

  Status DeployModel(const nn::Model& model,
                     const ModelDeployment& deployment) override;

  Result<db::Table> ExecuteCollaborative(const std::string& sql,
                                         QueryCost* cost) override;

  SystemBoundary& boundary() { return boundary_; }

  /// Script (TorchScript-analog) size for Table IV storage accounting.
  Result<uint64_t> ScriptBytes(const std::string& udf_name) const;

 private:
  struct ServedModel {
    std::string script;  ///< serialized TorchScript-analog
    NUdfOutput output = NUdfOutput::kBool;
  };

  /// The "DL system": loads a served model (per query) and batch-infers.
  Result<std::vector<db::Value>> ServeBatch(const std::string& udf_name,
                                            const std::vector<Tensor>& inputs,
                                            QueryCost* cost);

  std::map<std::string, ServedModel> served_;
  SystemBoundary boundary_;
};

}  // namespace dl2sql::engines
