#include "engines/dl2sql_engine.h"

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "nn/serialize.h"
#include "tensor/tensor_blob.h"

namespace dl2sql::engines {

Dl2SqlEngine::Dl2SqlEngine(std::shared_ptr<Device> device, Options options)
    : CollaborativeEngine(std::move(device)), options_(std::move(options)) {
  db_.optimizer_options().enable_nudf_hints = options_.enable_optimizer_hints;
  if (options_.enable_optimizer_hints) {
    db_.optimizer_options().cost_model =
        std::make_shared<db::NeuralAwareCostModel>();
  }
}

Status Dl2SqlEngine::DeployModel(const nn::Model& model,
                                 const ModelDeployment& deployment) {
  auto m = std::make_shared<DeployedModel>();
  m->model = model;
  m->deployment = deployment;
  models_[ToLower(deployment.udf_name)] = m;
  deployments_[deployment.udf_name] = deployment;

  if (!options_.redeploy_per_query) {
    DL2SQL_RETURN_NOT_OK(Deploy(m.get()).status());
  }
  // Calibrate per-call cost for the hint rules by one probe run (through a
  // temporary deployment when not cached).
  {
    const bool was_deployed = m->runner != nullptr;
    if (!was_deployed) {
      DL2SQL_RETURN_NOT_OK(Deploy(m.get()).status());
    }
    Rng rng(1);
    Tensor probe = Tensor::Random(model.input_shape(), &rng, 1.0f);
    Stopwatch watch;
    DL2SQL_RETURN_NOT_OK(m->runner->Predict(probe).status());
    m->per_call_cost_sec = watch.ElapsedSeconds();
    if (!was_deployed && options_.redeploy_per_query) {
      DL2SQL_RETURN_NOT_OK(Undeploy(m.get()));
    }
  }
  RegisterNUdf(deployment.udf_name);
  return Status::OK();
}

Result<double> Dl2SqlEngine::Deploy(DeployedModel* m) {
  DL2SQL_TRACE_SPAN("engine", "dl2sql.deploy",
                    "\"udf\":\"" + m->deployment.udf_name + "\"");
  static Counter* const deployments =
      MetricsRegistry::Global().counter("dl2sql.model_deployments");
  deployments->Increment();
  Stopwatch watch;
  core::ConvertOptions copts = options_.convert;
  // Sanitize to a valid SQL identifier (family variants are named "fam#i").
  std::string stem = ToLower(m->deployment.udf_name);
  for (char& c : stem) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';
  }
  copts.table_prefix = "nn_" + stem + std::to_string(prefix_counter_++);
  DL2SQL_ASSIGN_OR_RETURN(core::ConvertedModel converted,
                          core::ConvertModel(m->model, copts, &db_));
  m->runner = std::make_shared<core::Dl2SqlRunner>(&db_, std::move(converted));
  return watch.ElapsedSeconds();
}

Status Dl2SqlEngine::Undeploy(DeployedModel* m) {
  if (m->runner == nullptr) return Status::OK();
  for (const auto& t : m->runner->model().static_tables) {
    DL2SQL_RETURN_NOT_OK(db_.catalog().DropTable(t, true));
  }
  m->runner = nullptr;
  return Status::OK();
}

void Dl2SqlEngine::RegisterNUdf(const std::string& name) {
  auto model_ref = models_[ToLower(name)];
  db::NUdfInfo info;
  info.model_name = model_ref->model.name();
  info.selectivity = model_ref->deployment.selectivity;
  info.num_parameters = model_ref->model.NumParameters();
  info.per_call_cost_sec = model_ref->per_call_cost_sec;
  // ValueOr(0): a model that fails to serialize simply stays uncacheable.
  info.fingerprint = nn::ModelFingerprint(model_ref->model).ValueOr(0);

  db::DataType ret;
  switch (model_ref->deployment.output) {
    case NUdfOutput::kBool:
      ret = db::DataType::kBool;
      break;
    case NUdfOutput::kLabel:
      ret = db::DataType::kString;
      break;
    case NUdfOutput::kClassId:
      ret = db::DataType::kInt64;
      break;
  }

  Dl2SqlEngine* self = this;

  // Vectorized body: with a batch-converted model the whole predicate column
  // runs through ONE generated-SQL pipeline execution.
  db::BatchFn batch_fn = nullptr;
  if (options_.convert.batched) {
    batch_fn = [self, model_ref](const std::vector<std::vector<db::Value>>&
                                     rows) -> Result<std::vector<db::Value>> {
      if (model_ref->runner == nullptr) {
        return Status::InternalError("nUDF called before model deployment");
      }
      std::vector<Tensor> inputs;
      inputs.reserve(rows.size());
      Stopwatch decode_watch;
      for (const auto& row : rows) {
        if (row.size() != 1 || (row[0].type() != db::DataType::kBlob &&
                                row[0].type() != db::DataType::kString)) {
          return Status::InvalidArgument("nUDF expects one keyframe blob");
        }
        DL2SQL_ASSIGN_OR_RETURN(Tensor t, DecodeTensorBlob(row[0].string_value()));
        inputs.push_back(std::move(t));
      }
      self->call_loading_seconds_ += decode_watch.ElapsedSeconds();

      core::PipelineRunStats stats;
      CostAccumulator* outer = self->db_.cost_accumulator();
      auto preds = model_ref->runner->PredictBatch(inputs, &stats);
      self->db_.set_cost_accumulator(outer);
      DL2SQL_RETURN_NOT_OK(preds.status());
      self->call_loading_seconds_ += stats.load_seconds;
      self->last_stats_.load_seconds += stats.load_seconds;
      self->last_stats_.infer_seconds += stats.infer_seconds;
      self->last_stats_.clause_costs.Merge(stats.clause_costs);

      std::vector<db::Value> out;
      out.reserve(preds->size());
      for (int64_t cls : *preds) {
        switch (model_ref->deployment.output) {
          case NUdfOutput::kBool:
            out.push_back(db::Value::Bool(cls == 1));
            break;
          case NUdfOutput::kLabel:
            out.push_back(db::Value::String(
                model_ref->model.classes()[static_cast<size_t>(cls)]));
            break;
          case NUdfOutput::kClassId:
            out.push_back(db::Value::Int(cls));
            break;
        }
      }
      return out;
    };
  }

  db_.udfs().RegisterNeural(
      name, ret,
      [self, model_ref](const std::vector<db::Value>& args)
          -> Result<db::Value> {
        if (model_ref->runner == nullptr) {
          return Status::InternalError("nUDF called before model deployment");
        }
        if (args.size() != 1 || (args[0].type() != db::DataType::kBlob &&
                                 args[0].type() != db::DataType::kString)) {
          return Status::InvalidArgument("nUDF expects one keyframe blob");
        }
        Stopwatch decode_watch;
        DL2SQL_ASSIGN_OR_RETURN(Tensor input,
                                DecodeTensorBlob(args[0].string_value()));
        self->call_loading_seconds_ += decode_watch.ElapsedSeconds();

        // The pipeline's recursive SQL runs under its own accumulator so the
        // outer query's relational buckets stay clean; the whole call is
        // still charged to "inference" by the expression evaluator.
        core::PipelineRunStats stats;
        CostAccumulator* outer = self->db_.cost_accumulator();
        auto cls = model_ref->runner->Predict(input, &stats);
        self->db_.set_cost_accumulator(outer);
        DL2SQL_RETURN_NOT_OK(cls.status());
        self->call_loading_seconds_ += stats.load_seconds;
        self->last_stats_.load_seconds += stats.load_seconds;
        self->last_stats_.infer_seconds += stats.infer_seconds;
        // Merge the per-op and per-clause profiles (Figs. 9-10).
        if (self->last_stats_.per_op.size() == stats.per_op.size()) {
          for (size_t i = 0; i < stats.per_op.size(); ++i) {
            self->last_stats_.per_op[i].seconds += stats.per_op[i].seconds;
          }
        } else if (self->last_stats_.per_op.empty()) {
          self->last_stats_.per_op = stats.per_op;
        }
        self->last_stats_.clause_costs.Merge(stats.clause_costs);

        switch (model_ref->deployment.output) {
          case NUdfOutput::kBool:
            return db::Value::Bool(*cls == 1);
          case NUdfOutput::kLabel:
            return db::Value::String(
                model_ref->model.classes()[static_cast<size_t>(*cls)]);
          case NUdfOutput::kClassId:
            return db::Value::Int(*cls);
        }
        return Status::InternalError("bad output kind");
      },
      std::move(info), std::move(batch_fn));
}

Status Dl2SqlEngine::DeployModelFamily(const ModelFamilyDeployment& family) {
  if (family.variants.empty()) {
    return Status::InvalidArgument("model family '", family.udf_name,
                                   "' has no variants");
  }
  auto fam = std::make_shared<DeployedFamily>();
  fam->family = family;
  for (size_t i = 0; i < family.variants.size(); ++i) {
    auto m = std::make_shared<DeployedModel>();
    m->model = family.variants[i].model;
    m->deployment.udf_name =
        family.udf_name + "#" + std::to_string(i);
    m->deployment.output = family.output;
    m->deployment.selectivity = family.variants[i].selectivity;
    if (!options_.redeploy_per_query) {
      DL2SQL_RETURN_NOT_OK(Deploy(m.get()).status());
    }
    fam->variants.push_back(std::move(m));
  }
  families_[ToLower(family.udf_name)] = fam;

  // Per-call cost probe on the first variant (drives the hint rules).
  double per_call = 0;
  {
    DeployedModel* v0 = fam->variants[0].get();
    const bool was_deployed = v0->runner != nullptr;
    if (!was_deployed) {
      DL2SQL_RETURN_NOT_OK(Deploy(v0).status());
    }
    Rng rng(1);
    Tensor probe = Tensor::Random(v0->model.input_shape(), &rng, 1.0f);
    Stopwatch watch;
    DL2SQL_RETURN_NOT_OK(v0->runner->Predict(probe).status());
    per_call = watch.ElapsedSeconds();
    if (!was_deployed && options_.redeploy_per_query) {
      DL2SQL_RETURN_NOT_OK(Undeploy(v0));
    }
  }

  db::NUdfInfo info;
  info.model_name = family.udf_name;
  info.selectivity = family.MergedSelectivity();
  info.num_parameters = family.variants[0].model.NumParameters();
  info.per_call_cost_sec = per_call;
  DL2SQL_ASSIGN_OR_RETURN(info.fingerprint, FamilyFingerprint(family));

  db::DataType ret;
  switch (family.output) {
    case NUdfOutput::kBool:
      ret = db::DataType::kBool;
      break;
    case NUdfOutput::kLabel:
      ret = db::DataType::kString;
      break;
    case NUdfOutput::kClassId:
      ret = db::DataType::kInt64;
      break;
  }

  Dl2SqlEngine* self = this;
  auto fam_ref = fam;
  db_.udfs().RegisterNeural(
      family.udf_name, ret,
      [self, fam_ref](const std::vector<db::Value>& args)
          -> Result<db::Value> {
        if (args.size() != 3 || (args[0].type() != db::DataType::kBlob &&
                                 args[0].type() != db::DataType::kString)) {
          return Status::InvalidArgument(
              "family nUDF expects (keyframe, humidity, temperature)");
        }
        DL2SQL_ASSIGN_OR_RETURN(double humidity, args[1].AsDouble());
        DL2SQL_ASSIGN_OR_RETURN(double temperature, args[2].AsDouble());
        DeployedModel& variant =
            *fam_ref->variants[fam_ref->family.Select(humidity, temperature)];
        if (variant.runner == nullptr) {
          return Status::InternalError("family variant not deployed");
        }
        Stopwatch decode_watch;
        DL2SQL_ASSIGN_OR_RETURN(Tensor input,
                                DecodeTensorBlob(args[0].string_value()));
        self->call_loading_seconds_ += decode_watch.ElapsedSeconds();

        core::PipelineRunStats stats;
        CostAccumulator* outer = self->db_.cost_accumulator();
        auto cls = variant.runner->Predict(input, &stats);
        self->db_.set_cost_accumulator(outer);
        DL2SQL_RETURN_NOT_OK(cls.status());
        self->call_loading_seconds_ += stats.load_seconds;
        self->last_stats_.load_seconds += stats.load_seconds;
        self->last_stats_.infer_seconds += stats.infer_seconds;
        self->last_stats_.clause_costs.Merge(stats.clause_costs);

        switch (fam_ref->family.output) {
          case NUdfOutput::kBool:
            return db::Value::Bool(*cls == 1);
          case NUdfOutput::kLabel:
            return db::Value::String(
                variant.model.classes()[static_cast<size_t>(*cls)]);
          case NUdfOutput::kClassId:
            return db::Value::Int(*cls);
        }
        return Status::InternalError("bad output kind");
      },
      std::move(info), nullptr, /*arity=*/3);
  return Status::OK();
}

Result<db::Table> Dl2SqlEngine::ExecuteCollaborative(const std::string& sql,
                                                     QueryCost* cost) {
  DL2SQL_TRACE_SPAN("engine", "dl2sql.query");
  QueryCost local;
  last_stats_ = core::PipelineRunStats{};
  call_loading_seconds_ = 0;

  // Integrate referenced models on the fly: conversion to relational tables
  // is this strategy's model-loading cost.
  const DeviceProfile& prof = device_->profile();
  double transfer_seconds = 0;
  std::vector<DeployedModel*> deployed_now;
  // Family variants referenced via the family nUDF name.
  std::vector<DeployedModel*> referenced;
  for (auto& [lname, m] : models_) {
    if (ToLower(sql).find(lname) != std::string::npos) {
      referenced.push_back(m.get());
    }
  }
  for (auto& [lname, fam] : families_) {
    if (ToLower(sql).find(lname) == std::string::npos) continue;
    for (auto& v : fam->variants) referenced.push_back(v.get());
  }
  for (DeployedModel* m : referenced) {
    if (m->runner == nullptr) {
      DL2SQL_ASSIGN_OR_RETURN(double secs, Deploy(m));
      local.loading_seconds += secs;
      deployed_now.push_back(m);
    } else {
      // Relational deployment survived from a previous query (cache_models
      // mode): no conversion cost this time.
      static Counter* const cache_hits =
          MetricsRegistry::Global().counter("dl2sql.model_cache_hits");
      cache_hits->Increment();
    }
    if (prof.NeedsTransfer()) {
      // GPU mode ships the parameter tables to device memory per query —
      // the I/O that inflates DL2SQL's GPU loading cost in Fig. 8.
      auto bytes = core::StaticStorageBytes(m->runner->model(), db_,
                                            /*compressed=*/false);
      if (bytes.ok()) transfer_seconds += device_->TransferSeconds(*bytes);
    }
  }

  CostAccumulator acc;
  db_.set_cost_accumulator(&acc);
  Result<db::Table> result = [&] {
    DL2SQL_TRACE_SPAN("engine", "dl2sql.exec");
    return db_.Execute(sql);
  }();
  // The nUDF body nulls the accumulator before recursing; restore & clear.
  db_.set_cost_accumulator(nullptr);

  if (options_.redeploy_per_query) {
    for (DeployedModel* m : deployed_now) {
      DL2SQL_RETURN_NOT_OK(Undeploy(m));
    }
  }
  DL2SQL_RETURN_NOT_OK(result.status());

  QueryCost from_buckets = SplitBuckets(acc);
  // Device scaling: the generated neural SQL runs in the (calibrated)
  // database engine; on the GPU profile the dense neural ops are offloaded,
  // so the faster of the two factors applies. The outer query and loading
  // work run at the host's database/CPU speed; modeled transfers are
  // absolute.
  const double sql_inference_factor =
      std::min(prof.compute_scale, prof.relational_scale) *
      kSqlEngineCalibration;
  local.relational_seconds +=
      from_buckets.relational_seconds * RelationalFactor();
  // Inference bucket holds whole nUDF call durations; move the input-loading
  // share into the loading bucket.
  local.inference_seconds +=
      std::max(0.0, from_buckets.inference_seconds - call_loading_seconds_) *
      sql_inference_factor;
  local.loading_seconds =
      (local.loading_seconds + call_loading_seconds_ +
       from_buckets.loading_seconds) *
          CpuFactor() +
      transfer_seconds;
  if (cost != nullptr) *cost = local;
  return result;
}

Result<uint64_t> Dl2SqlEngine::RelationalStorageBytes(
    const std::string& udf_name) {
  auto it = models_.find(ToLower(udf_name));
  if (it == models_.end()) {
    return Status::NotFound("no deployed model for ", udf_name);
  }
  DeployedModel* m = it->second.get();
  const bool was_deployed = m->runner != nullptr;
  if (!was_deployed) {
    DL2SQL_RETURN_NOT_OK(Deploy(m).status());
  }
  DL2SQL_ASSIGN_OR_RETURN(uint64_t bytes,
                          core::StaticStorageBytes(m->runner->model(), db_));
  if (!was_deployed) {
    DL2SQL_RETURN_NOT_OK(Undeploy(m));
  }
  return bytes;
}

Result<const core::ConvertedModel*> Dl2SqlEngine::converted_model(
    const std::string& udf_name) {
  auto it = models_.find(ToLower(udf_name));
  if (it == models_.end()) {
    return Status::NotFound("no deployed model for ", udf_name);
  }
  if (it->second->runner == nullptr) {
    DL2SQL_RETURN_NOT_OK(Deploy(it->second.get()).status());
  }
  return &it->second->runner->model();
}

}  // namespace dl2sql::engines
