#include "engines/udf_engine.h"

#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "tensor/tensor_blob.h"

namespace dl2sql::engines {

UdfEngine::UdfEngine(std::shared_ptr<Device> device)
    : CollaborativeEngine(std::move(device)) {}

Status UdfEngine::DeployModel(const nn::Model& model,
                              const ModelDeployment& deployment) {
  // "Model compilation": serialize to the stripped kernel-linkable blob.
  DL2SQL_ASSIGN_OR_RETURN(
      std::string blob,
      nn::SerializeModel(model, nn::ModelFormat::kCompiledBlob));
  auto state = std::make_shared<UdfState>();
  state->blob = std::move(blob);
  state->output = deployment.output;
  state->device = device_.get();
  states_[deployment.udf_name] = state;
  deployments_[deployment.udf_name] = deployment;

  // Estimate per-call cost once for the registry metadata (used only by
  // DL2SQL-OP's hint rules; the blind optimizer here ignores it).
  db::NUdfInfo info;
  info.model_name = model.name();
  info.selectivity = deployment.selectivity;
  info.num_parameters = model.NumParameters();
  DL2SQL_ASSIGN_OR_RETURN(info.fingerprint, nn::ModelFingerprint(model));
  {
    Rng rng(1);
    Tensor probe = Tensor::Random(model.input_shape(), &rng, 1.0f);
    Stopwatch watch;
    DL2SQL_RETURN_NOT_OK(model.Predict(probe, device_.get()).status());
    info.per_call_cost_sec = watch.ElapsedSeconds();
  }

  db::DataType ret;
  switch (deployment.output) {
    case NUdfOutput::kBool:
      ret = db::DataType::kBool;
      break;
    case NUdfOutput::kLabel:
      ret = db::DataType::kString;
      break;
    case NUdfOutput::kClassId:
      ret = db::DataType::kInt64;
      break;
  }

  auto state_ref = state;
  db_.udfs().RegisterNeural(
      deployment.udf_name, ret,
      [state_ref](const std::vector<db::Value>& args) -> Result<db::Value> {
        UdfState& st = *state_ref;
        if (args.size() != 1 || (args[0].type() != db::DataType::kBlob &&
                                 args[0].type() != db::DataType::kString)) {
          return Status::InvalidArgument("nUDF expects one keyframe blob");
        }
        // Lazy in-kernel load of the compiled blob (charged as loading).
        if (st.loaded == nullptr) {
          Stopwatch load_watch;
          DL2SQL_ASSIGN_OR_RETURN(nn::Model m, nn::DeserializeModel(st.blob));
          st.loaded = std::make_shared<nn::Model>(std::move(m));
          st.loading_seconds += load_watch.ElapsedSeconds();
          st.weights_on_device = false;
        }
        Stopwatch decode_watch;
        DL2SQL_ASSIGN_OR_RETURN(Tensor input,
                                DecodeTensorBlob(args[0].string_value()));
        st.loading_seconds += decode_watch.ElapsedSeconds();
        // Simulated accelerator traffic: weights once per query, activations
        // per call (the per-call latency is what keeps DB-UDF from gaining
        // on the GPU server, Fig. 8).
        if (st.device->profile().NeedsTransfer()) {
          if (!st.weights_on_device) {
            st.transfer_seconds += st.device->TransferSeconds(
                static_cast<uint64_t>(st.loaded->NumParameters()) *
                sizeof(float));
            st.weights_on_device = true;
          }
          st.transfer_seconds += st.device->TransferSeconds(
              static_cast<uint64_t>(input.NumElements()) * sizeof(float));
          st.transfer_seconds += st.device->TransferSeconds(sizeof(int64_t));
        }
        DL2SQL_ASSIGN_OR_RETURN(int64_t cls,
                                st.loaded->Predict(input, st.device));
        switch (st.output) {
          case NUdfOutput::kBool:
            return db::Value::Bool(cls == 1);
          case NUdfOutput::kLabel:
            return db::Value::String(
                st.loaded->classes()[static_cast<size_t>(cls)]);
          case NUdfOutput::kClassId:
            return db::Value::Int(cls);
        }
        return Status::InternalError("bad output kind");
      },
      std::move(info));
  return Status::OK();
}

Status UdfEngine::DeployModelFamily(const ModelFamilyDeployment& family) {
  if (family.variants.empty()) {
    return Status::InvalidArgument("model family '", family.udf_name,
                                   "' has no variants");
  }
  // Compile every variant into its own kernel blob.
  std::vector<std::shared_ptr<UdfState>> variant_states;
  for (size_t i = 0; i < family.variants.size(); ++i) {
    DL2SQL_ASSIGN_OR_RETURN(
        std::string blob,
        nn::SerializeModel(family.variants[i].model,
                           nn::ModelFormat::kCompiledBlob));
    auto st = std::make_shared<UdfState>();
    st->blob = std::move(blob);
    st->output = family.output;
    st->device = device_.get();
    states_[ToLower(family.udf_name) + "#" + std::to_string(i)] = st;
    variant_states.push_back(std::move(st));
  }
  families_[ToLower(family.udf_name)] = family;

  db::NUdfInfo info;
  info.model_name = family.udf_name;
  info.selectivity = family.MergedSelectivity();
  info.num_parameters = family.variants[0].model.NumParameters();
  DL2SQL_ASSIGN_OR_RETURN(info.fingerprint, FamilyFingerprint(family));
  {
    Rng rng(1);
    Tensor probe =
        Tensor::Random(family.variants[0].model.input_shape(), &rng, 1.0f);
    Stopwatch watch;
    DL2SQL_RETURN_NOT_OK(
        family.variants[0].model.Predict(probe, device_.get()).status());
    info.per_call_cost_sec = watch.ElapsedSeconds();
  }

  db::DataType ret;
  switch (family.output) {
    case NUdfOutput::kBool:
      ret = db::DataType::kBool;
      break;
    case NUdfOutput::kLabel:
      ret = db::DataType::kString;
      break;
    case NUdfOutput::kClassId:
      ret = db::DataType::kInt64;
      break;
  }

  ModelFamilyDeployment family_copy = family;
  db_.udfs().RegisterNeural(
      family.udf_name, ret,
      [variant_states, family_copy](
          const std::vector<db::Value>& args) -> Result<db::Value> {
        if (args.size() != 3 || (args[0].type() != db::DataType::kBlob &&
                                 args[0].type() != db::DataType::kString)) {
          return Status::InvalidArgument(
              "family nUDF expects (keyframe, humidity, temperature)");
        }
        DL2SQL_ASSIGN_OR_RETURN(double humidity, args[1].AsDouble());
        DL2SQL_ASSIGN_OR_RETURN(double temperature, args[2].AsDouble());
        UdfState& st =
            *variant_states[family_copy.Select(humidity, temperature)];
        if (st.loaded == nullptr) {
          Stopwatch load_watch;
          DL2SQL_ASSIGN_OR_RETURN(nn::Model m, nn::DeserializeModel(st.blob));
          st.loaded = std::make_shared<nn::Model>(std::move(m));
          st.loading_seconds += load_watch.ElapsedSeconds();
          st.weights_on_device = false;
        }
        Stopwatch decode_watch;
        DL2SQL_ASSIGN_OR_RETURN(Tensor input,
                                DecodeTensorBlob(args[0].string_value()));
        st.loading_seconds += decode_watch.ElapsedSeconds();
        if (st.device->profile().NeedsTransfer()) {
          if (!st.weights_on_device) {
            st.transfer_seconds += st.device->TransferSeconds(
                static_cast<uint64_t>(st.loaded->NumParameters()) *
                sizeof(float));
            st.weights_on_device = true;
          }
          st.transfer_seconds += st.device->TransferSeconds(
              static_cast<uint64_t>(input.NumElements()) * sizeof(float));
        }
        DL2SQL_ASSIGN_OR_RETURN(int64_t cls,
                                st.loaded->Predict(input, st.device));
        switch (st.output) {
          case NUdfOutput::kBool:
            return db::Value::Bool(cls == 1);
          case NUdfOutput::kLabel:
            return db::Value::String(
                st.loaded->classes()[static_cast<size_t>(cls)]);
          case NUdfOutput::kClassId:
            return db::Value::Int(cls);
        }
        return Status::InternalError("bad output kind");
      },
      std::move(info), nullptr, /*arity=*/3);
  return Status::OK();
}

Result<db::Table> UdfEngine::ExecuteCollaborative(const std::string& sql,
                                                  QueryCost* cost) {
  DL2SQL_TRACE_SPAN("engine", "udf.query");
  // Models are (re)integrated per query, per the paper's benchmark setup.
  {
    DL2SQL_TRACE_SPAN("engine", "udf.integrate");
    for (auto& [_, st] : states_) {
      st->loaded = nullptr;
      st->weights_on_device = false;
      st->loading_seconds = 0;
      st->transfer_seconds = 0;
    }
  }
  CostAccumulator acc;
  db_.set_cost_accumulator(&acc);
  Result<db::Table> result = [&] {
    DL2SQL_TRACE_SPAN("engine", "udf.exec");
    return db_.Execute(sql);
  }();
  db_.set_cost_accumulator(nullptr);
  DL2SQL_RETURN_NOT_OK(result.status());

  if (cost != nullptr) {
    const DeviceProfile& prof = device_->profile();
    QueryCost measured = SplitBuckets(acc);
    double load_cpu = 0;
    double transfer = 0;
    double integration = 0;
    for (auto& [_, st] : states_) {
      // Loading work happened inside timed UDF calls: move it from the
      // inference bucket to the loading bucket.
      load_cpu += st->loading_seconds;
      transfer += st->transfer_seconds;
      // Each model actually invoked was freshly integrated into the kernel
      // (recompile + reload), the structural cost of loose integration.
      if (st->loaded != nullptr) integration += kUdfIntegrationSeconds;
    }
    QueryCost c;
    c.inference_seconds =
        std::max(0.0, measured.inference_seconds - load_cpu) *
        prof.compute_scale;
    c.loading_seconds = load_cpu * CpuFactor() + transfer +
                        integration * CpuFactor() +
                        measured.loading_seconds;
    c.relational_seconds = measured.relational_seconds * RelationalFactor();
    *cost = c;
  }
  return result;
}

Result<uint64_t> UdfEngine::CompiledBlobBytes(const std::string& udf_name) const {
  auto it = states_.find(udf_name);
  if (it == states_.end()) {
    return Status::NotFound("no deployed model for ", udf_name);
  }
  return static_cast<uint64_t>(it->second->blob.size());
}

}  // namespace dl2sql::engines
