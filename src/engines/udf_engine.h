/// \file udf_engine.h
/// \brief Loose integration (the paper's DB-UDF): the model is compiled to an
/// opaque binary blob linked into the database kernel and invoked as a
/// scalar UDF.
///
/// The optimizer treats the UDF as a black box (no hint rules, no cost), so
/// nUDF predicates are evaluated wherever pushdown puts ordinary predicates —
/// at the scan — incurring full inference cost (Table III's "UDF cannot be
/// optimized by the database's optimizer").
#pragma once

#include "engines/engine.h"
#include "nn/serialize.h"

namespace dl2sql::engines {

class UdfEngine : public CollaborativeEngine {
 public:
  explicit UdfEngine(std::shared_ptr<Device> device);

  const char* name() const override { return "DB-UDF"; }

  Status DeployModel(const nn::Model& model,
                     const ModelDeployment& deployment) override;

  /// Conditional model families: each variant is compiled to its own blob;
  /// the 3-ary nUDF selects the variant per row from the condition columns.
  Status DeployModelFamily(const ModelFamilyDeployment& family) override;

  Result<db::Table> ExecuteCollaborative(const std::string& sql,
                                         QueryCost* cost) override;

  /// Compiled blob size for a deployed model (Table IV storage accounting).
  Result<uint64_t> CompiledBlobBytes(const std::string& udf_name) const;

 private:
  struct UdfState {
    std::string blob;  ///< the "compiled" model binary
    std::shared_ptr<nn::Model> loaded;  ///< nullptr until first call
    NUdfOutput output = NUdfOutput::kBool;
    /// Seconds spent inside UDF calls on CPU loading work (blob
    /// deserialization, input decode); subtracted from the inference bucket
    /// after each query.
    double loading_seconds = 0;
    /// Modeled host<->accelerator transfer seconds (absolute, not subject to
    /// device speed scaling).
    double transfer_seconds = 0;
    Device* device = nullptr;
    /// Model parameter bytes shipped to the accelerator once per query.
    bool weights_on_device = false;
  };

  std::map<std::string, std::shared_ptr<UdfState>> states_;
  /// Family variants also live in `states_` (one entry per variant, keyed
  /// "<family>#<i>"), sharing all per-query accounting; this map only tracks
  /// the selection metadata.
  std::map<std::string, ModelFamilyDeployment> families_;
};

}  // namespace dl2sql::engines
