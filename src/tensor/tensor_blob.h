/// \file tensor_blob.h
/// \brief Compact binary encoding of tensors, used to store keyframes as BLOB
/// columns and to ship tensors across the simulated DB <-> DL-system
/// boundary.
#pragma once

#include <string>

#include "common/result.h"
#include "tensor/tensor.h"

namespace dl2sql {

/// Header: u8 ndim, i64 dims..., then float32 payload.
std::string EncodeTensorBlob(const Tensor& t);

/// Inverse of EncodeTensorBlob.
Result<Tensor> DecodeTensorBlob(const std::string& blob);

}  // namespace dl2sql
