#include "tensor/tensor_blob.h"

#include <cstring>

#include "common/bytes.h"

namespace dl2sql {

std::string EncodeTensorBlob(const Tensor& t) {
  BufferWriter w;
  w.WriteU8(static_cast<uint8_t>(t.shape().ndim()));
  for (int i = 0; i < t.shape().ndim(); ++i) w.WriteI64(t.shape()[i]);
  w.WriteRaw(t.data(), static_cast<size_t>(t.NumElements()) * sizeof(float));
  return w.Take();
}

Result<Tensor> DecodeTensorBlob(const std::string& blob) {
  BufferReader r(blob);
  DL2SQL_ASSIGN_OR_RETURN(uint8_t ndim, r.ReadU8());
  std::vector<int64_t> dims;
  for (int i = 0; i < ndim; ++i) {
    DL2SQL_ASSIGN_OR_RETURN(int64_t d, r.ReadI64());
    if (d <= 0 || d > (1 << 24)) {
      return Status::ParseError("bad tensor blob dimension ", d);
    }
    dims.push_back(d);
  }
  Shape shape(std::move(dims));
  const size_t need = static_cast<size_t>(shape.NumElements()) * sizeof(float);
  if (blob.size() < r.position() + need) {
    return Status::ParseError("tensor blob truncated: need ", need,
                              " payload bytes, have ",
                              blob.size() - r.position());
  }
  Tensor t(shape);
  std::memcpy(t.data(), blob.data() + r.position(), need);
  return t;
}

}  // namespace dl2sql
