/// \file tensor.h
/// \brief Dense float32 tensor used by the minidl inference library and by the
/// DL2SQL model-to-table converter.
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "tensor/shape.h"

namespace dl2sql {

/// \brief A reference-counted dense float tensor with row-major layout.
///
/// Copying a Tensor shares the underlying buffer (cheap); use Clone() for a
/// deep copy. All inference code in this repo is single-precision, matching
/// the paper's edge-device deployment.
class Tensor {
 public:
  /// Empty 0-d tensor.
  Tensor() : shape_({}), data_(std::make_shared<std::vector<float>>(1, 0.f)) {}

  /// Allocates a zero-filled tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(std::make_shared<std::vector<float>>(
            static_cast<size_t>(shape_.NumElements()), 0.f)) {}

  /// Wraps existing values; `values.size()` must equal shape.NumElements().
  Tensor(Shape shape, std::vector<float> values)
      : shape_(std::move(shape)),
        data_(std::make_shared<std::vector<float>>(std::move(values))) {
    DL2SQL_CHECK(static_cast<int64_t>(data_->size()) == shape_.NumElements())
        << "value count " << data_->size() << " != shape " << shape_.ToString();
  }

  const Shape& shape() const { return shape_; }
  int64_t NumElements() const { return shape_.NumElements(); }

  float* data() { return data_->data(); }
  const float* data() const { return data_->data(); }

  float& at(int64_t i) { return (*data_)[static_cast<size_t>(i)]; }
  float at(int64_t i) const { return (*data_)[static_cast<size_t>(i)]; }

  /// 3-D (CHW) element access.
  float& at3(int64_t c, int64_t h, int64_t w) {
    return (*data_)[static_cast<size_t>((c * shape_[1] + h) * shape_[2] + w)];
  }
  float at3(int64_t c, int64_t h, int64_t w) const {
    return (*data_)[static_cast<size_t>((c * shape_[1] + h) * shape_[2] + w)];
  }

  /// 2-D element access.
  float& at2(int64_t r, int64_t c) {
    return (*data_)[static_cast<size_t>(r * shape_[1] + c)];
  }
  float at2(int64_t r, int64_t c) const {
    return (*data_)[static_cast<size_t>(r * shape_[1] + c)];
  }

  /// Deep copy.
  Tensor Clone() const {
    return Tensor(shape_, std::vector<float>(*data_));
  }

  /// Returns a tensor sharing this buffer but viewed with a new shape of the
  /// same element count.
  Result<Tensor> Reshape(const Shape& new_shape) const {
    if (new_shape.NumElements() != shape_.NumElements()) {
      return Status::InvalidArgument("cannot reshape ", shape_.ToString(), " to ",
                                     new_shape.ToString());
    }
    Tensor t = *this;
    t.shape_ = new_shape;
    return t;
  }

  void FillZero() { std::fill(data_->begin(), data_->end(), 0.f); }
  void Fill(float v) { std::fill(data_->begin(), data_->end(), v); }

  /// Kaiming-uniform-like initialization used for all model builders; the
  /// exact distribution does not matter for the systems experiments, only
  /// that it is deterministic per seed.
  void RandomInit(Rng* rng, float scale = 0.1f) {
    for (auto& v : *data_) v = rng->UniformFloat(-scale, scale);
  }

  /// Creates a tensor with uniform random values.
  static Tensor Random(Shape shape, Rng* rng, float scale = 0.1f) {
    Tensor t(std::move(shape));
    t.RandomInit(rng, scale);
    return t;
  }

  const std::vector<float>& values() const { return *data_; }

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> data_;
};

/// \name Elementwise & linear-algebra kernels (tensor_ops.cc)
/// @{

/// out = a + b (shapes must match).
Result<Tensor> Add(const Tensor& a, const Tensor& b);

/// out = a * b elementwise (shapes must match).
Result<Tensor> Mul(const Tensor& a, const Tensor& b);

/// out = max(a, 0).
Tensor Relu(const Tensor& a);

/// Matrix product of [m,k] x [k,n] -> [m,n].
Result<Tensor> MatMul(const Tensor& a, const Tensor& b);

/// Numerically stable softmax over the last axis of a 1-D or 2-D tensor.
Result<Tensor> Softmax(const Tensor& a);

/// Max |a - b| over all elements; shapes must match (checked).
Result<double> MaxAbsDiff(const Tensor& a, const Tensor& b);

/// Zero-pads a CHW tensor by `pad` on both sides of H and W.
Result<Tensor> PadChw(const Tensor& input, int64_t pad);

/// im2col: unfolds a CHW input into a [C*kh*kw, out_h*out_w] patch matrix for
/// convolution-as-matmul. Used by the minidl conv kernel and mirrored by the
/// DL2SQL feature-map table layout.
Result<Tensor> Im2Col(const Tensor& input, int64_t kh, int64_t kw, int64_t stride,
                      int64_t pad);

/// @}

}  // namespace dl2sql
