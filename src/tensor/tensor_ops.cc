#include <algorithm>
#include <cmath>

#include "tensor/tensor.h"

namespace dl2sql {

Result<Tensor> Add(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return Status::InvalidArgument("Add shape mismatch: ", a.shape().ToString(),
                                   " vs ", b.shape().ToString());
  }
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = a.NumElements();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
  return out;
}

Result<Tensor> Mul(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return Status::InvalidArgument("Mul shape mismatch: ", a.shape().ToString(),
                                   " vs ", b.shape().ToString());
  }
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = a.NumElements();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
  return out;
}

Tensor Relu(const Tensor& a) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.NumElements();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] > 0.f ? pa[i] : 0.f;
  return out;
}

Result<Tensor> MatMul(const Tensor& a, const Tensor& b) {
  if (a.shape().ndim() != 2 || b.shape().ndim() != 2) {
    return Status::InvalidArgument("MatMul requires 2-D tensors, got ",
                                   a.shape().ToString(), " x ",
                                   b.shape().ToString());
  }
  const int64_t m = a.shape()[0];
  const int64_t k = a.shape()[1];
  const int64_t k2 = b.shape()[0];
  const int64_t n = b.shape()[1];
  if (k != k2) {
    return Status::InvalidArgument("MatMul inner-dim mismatch: ",
                                   a.shape().ToString(), " x ",
                                   b.shape().ToString());
  }
  Tensor out(Shape({m, n}));
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // ikj loop order keeps the innermost accesses sequential for both B and the
  // output row, which matters on the cache-starved edge profile we simulate.
  for (int64_t i = 0; i < m; ++i) {
    float* orow = po + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.f) continue;
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Result<Tensor> Softmax(const Tensor& a) {
  if (a.shape().ndim() > 2) {
    return Status::InvalidArgument("Softmax requires 1-D or 2-D input, got ",
                                   a.shape().ToString());
  }
  const int64_t rows = a.shape().ndim() == 2 ? a.shape()[0] : 1;
  const int64_t cols = a.shape().ndim() == 2 ? a.shape()[1] : a.NumElements();
  Tensor out(a.shape());
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = a.data() + r * cols;
    float* orow = out.data() + r * cols;
    float mx = row[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
    double sum = 0;
    for (int64_t c = 0; c < cols; ++c) {
      orow[c] = std::exp(row[c] - mx);
      sum += orow[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t c = 0; c < cols; ++c) orow[c] *= inv;
  }
  return out;
}

Result<double> MaxAbsDiff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return Status::InvalidArgument("MaxAbsDiff shape mismatch: ",
                                   a.shape().ToString(), " vs ",
                                   b.shape().ToString());
  }
  double mx = 0;
  const int64_t n = a.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    mx = std::max(mx, static_cast<double>(std::fabs(a.at(i) - b.at(i))));
  }
  return mx;
}

Result<Tensor> PadChw(const Tensor& input, int64_t pad) {
  if (input.shape().ndim() != 3) {
    return Status::InvalidArgument("PadChw requires CHW input, got ",
                                   input.shape().ToString());
  }
  if (pad < 0) return Status::InvalidArgument("negative padding ", pad);
  if (pad == 0) return input;
  const int64_t c = input.shape()[0];
  const int64_t h = input.shape()[1];
  const int64_t w = input.shape()[2];
  Tensor out(Shape({c, h + 2 * pad, w + 2 * pad}));
  for (int64_t ci = 0; ci < c; ++ci) {
    for (int64_t hi = 0; hi < h; ++hi) {
      const float* src = input.data() + (ci * h + hi) * w;
      float* dst =
          out.data() + (ci * (h + 2 * pad) + hi + pad) * (w + 2 * pad) + pad;
      std::copy(src, src + w, dst);
    }
  }
  return out;
}

Result<Tensor> Im2Col(const Tensor& input, int64_t kh, int64_t kw, int64_t stride,
                      int64_t pad) {
  if (input.shape().ndim() != 3) {
    return Status::InvalidArgument("Im2Col requires CHW input, got ",
                                   input.shape().ToString());
  }
  if (stride <= 0) return Status::InvalidArgument("stride must be positive");
  DL2SQL_ASSIGN_OR_RETURN(Tensor padded, PadChw(input, pad));
  const int64_t c = padded.shape()[0];
  const int64_t h = padded.shape()[1];
  const int64_t w = padded.shape()[2];
  if (kh > h || kw > w) {
    return Status::InvalidArgument("kernel ", kh, "x", kw,
                                   " larger than padded input ", h, "x", w);
  }
  const int64_t out_h = (h - kh) / stride + 1;
  const int64_t out_w = (w - kw) / stride + 1;
  Tensor out(Shape({c * kh * kw, out_h * out_w}));
  float* po = out.data();
  const int64_t cols = out_h * out_w;
  for (int64_t ci = 0; ci < c; ++ci) {
    for (int64_t ki = 0; ki < kh; ++ki) {
      for (int64_t kj = 0; kj < kw; ++kj) {
        const int64_t row = (ci * kh + ki) * kw + kj;
        float* orow = po + row * cols;
        for (int64_t oy = 0; oy < out_h; ++oy) {
          const float* src =
              padded.data() + (ci * h + oy * stride + ki) * w + kj;
          for (int64_t ox = 0; ox < out_w; ++ox) {
            orow[oy * out_w + ox] = src[ox * stride];
          }
        }
      }
    }
  }
  return out;
}

}  // namespace dl2sql
