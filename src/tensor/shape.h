/// \file shape.h
/// \brief Tensor shape: a small vector of dimension sizes with row-major
/// stride computation.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace dl2sql {

/// \brief Dimensions of a dense tensor, row-major layout.
///
/// Convention in this repo: feature maps are CHW (channels, height, width);
/// a batch adds a leading N. 1-D tensors are used for FC activations.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int ndim() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const { return dims_[static_cast<size_t>(i)]; }
  int64_t operator[](int i) const { return dims_[static_cast<size_t>(i)]; }
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Product of all dimensions (1 for a scalar shape).
  int64_t NumElements() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Row-major strides, innermost dimension stride 1.
  std::vector<int64_t> Strides() const {
    std::vector<int64_t> s(dims_.size(), 1);
    for (int i = static_cast<int>(dims_.size()) - 2; i >= 0; --i) {
      s[static_cast<size_t>(i)] =
          s[static_cast<size_t>(i) + 1] * dims_[static_cast<size_t>(i) + 1];
    }
    return s;
  }

  /// "[2, 3, 5]"
  std::string ToString() const {
    std::string out = "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(dims_[i]);
    }
    out += "]";
    return out;
  }

 private:
  std::vector<int64_t> dims_;
};

}  // namespace dl2sql
