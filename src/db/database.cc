#include "db/database.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <map>
#include <unordered_map>

#include <cstdlib>

#include "accel/device.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "db/exec/row_key.h"
#include "db/exec/vector_aggregate.h"
#include "db/exec/vector_batch.h"
#include "db/exec/vector_kernels.h"
#include "db/sql/printer.h"
#include "db/storage/column_source.h"
#include "db/storage/paged_table.h"
#include "db/storage/storage_engine.h"
#include "db/system_tables.h"

namespace dl2sql::db {

thread_local Database::QueryTally* Database::tls_tally_ = nullptr;

namespace {

/// Vectorized-kernel stats drained since the innermost ExecNode wrapper
/// last claimed them (ExplainAnalyze node-stats collection only). Operators
/// drain their contexts on the query's calling thread, and each wrapper
/// takes the pending stats right after its operator finishes, so the stats a
/// wrapper claims belong to exactly its own operator.
thread_local vec::VectorOpStats tls_pending_vec_stats;

/// Tracker label for an operator kind: "op.join", "op.aggregate", ... —
/// lower-cased so labels match the documented hierarchy (mem_tracker.h) and
/// stay stable even if plan rendering changes capitalization.
std::string OpTrackerLabel(PlanKind kind) {
  std::string label = PlanKindToString(kind);
  for (char& c : label) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return "op." + label;
}

/// A memoized optimized plan plus everything needed to prove it is still
/// valid: the catalog version of every relation it resolved, and the cost
/// model it was optimized under. Holding the cost model alive by shared_ptr
/// makes the pointer-identity check at hit time immune to address reuse.
struct CachedPlan {
  PlanPtr plan;
  std::shared_ptr<const CostModel> cost_model;
  std::vector<std::pair<std::string, uint64_t>> deps;
};

/// DL2SQL_CACHE=OFF|off|0 disables both caches at construction.
CacheOptions DefaultCacheOptions() {
  CacheOptions opts;
  const char* env = std::getenv("DL2SQL_CACHE");
  if (env != nullptr) {
    const std::string v = env;
    if (v == "OFF" || v == "off" || v == "0") {
      opts.enable_nudf_cache = false;
      opts.enable_plan_cache = false;
    }
  }
  return opts;
}

/// DL2SQL_VECTOR=OFF|off|0 disables batch-at-a-time vectorized execution at
/// construction, forcing the original row paths everywhere (the off-vs-on
/// bit-identity baseline and the CI rerun leg).
bool DefaultVectorEnabled() {
  if (const char* env = std::getenv("DL2SQL_VECTOR")) {
    const std::string v = env;
    if (v == "OFF" || v == "off" || v == "0") return false;
  }
  return true;
}

/// DL2SQL_INTROSPECTION=OFF|off|0 disables the system.* tables and query
/// recording; DL2SQL_QUERY_LOG_CAPACITY / DL2SQL_SLOW_QUERY_MS tune them.
IntrospectionOptions DefaultIntrospectionOptions() {
  IntrospectionOptions opts;
  if (const char* env = std::getenv("DL2SQL_INTROSPECTION")) {
    const std::string v = env;
    if (v == "OFF" || v == "off" || v == "0") opts.enabled = false;
  }
  if (const char* env = std::getenv("DL2SQL_QUERY_LOG_CAPACITY")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) opts.query_log_capacity = static_cast<size_t>(parsed);
  }
  if (const char* env = std::getenv("DL2SQL_SLOW_QUERY_MS")) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env) opts.slow_query_ms = parsed;
  }
  return opts;
}

/// Hard guard against runaway cross products.
constexpr int64_t kMaxJoinPairs = 100'000'000;

/// Composite key for the two-int64 fast paths (batched pipelines group and
/// join on (BatchID, TupleID)-style pairs).
struct Int2Key {
  int64_t a;
  int64_t b;
  bool operator==(const Int2Key& o) const { return a == o.a && b == o.b; }
};

struct Int2KeyHash {
  size_t operator()(const Int2Key& k) const {
    // splitmix-style combine.
    uint64_t x = static_cast<uint64_t>(k.a) * 0x9e3779b97f4a7c15ull;
    x ^= static_cast<uint64_t>(k.b) + 0x9e3779b97f4a7c15ull + (x << 6) +
         (x >> 2);
    return static_cast<size_t>(x);
  }
};

/// Charges `seconds` minus the inference time already charged separately.
void ChargeOperator(CostAccumulator* costs, const std::string& bucket,
                    double seconds, double inference_delta) {
  if (costs == nullptr) return;
  costs->Add(bucket, std::max(0.0, seconds - inference_delta));
}

}  // namespace

Database::Database()
    : cache_options_(DefaultCacheOptions()),
      vectorized_(DefaultVectorEnabled()),
      introspection_options_(DefaultIntrospectionOptions()) {
  RebuildCaches();
  // Model reload: replacing a neural UDF with a different fingerprint drops
  // every memoized result. (Fingerprints already keep stale entries from
  // being *served*; the hook reclaims their memory promptly.)
  udfs_.set_neural_replaced_hook([this](const std::string& /*name*/) {
    if (nudf_cache_ != nullptr) nudf_cache_->Clear();
  });
  slow_query_ms_.store(introspection_options_.slow_query_ms,
                       std::memory_order_relaxed);
  // DL2SQL_QUERY_MEM_LIMIT=<bytes> seeds the per-query hard memory budget
  // (soft check: overrunning queries fail with ResourceExhausted, nothing
  // aborts). Zero/absent = unlimited.
  if (const char* env = std::getenv("DL2SQL_QUERY_MEM_LIMIT")) {
    const long long parsed = std::strtoll(env, nullptr, 10);
    if (parsed > 0) query_mem_limit_.store(parsed, std::memory_order_relaxed);
  }
  // DL2SQL_STORAGE=paged selects the out-of-core paged storage mode at
  // construction (pool budget and the other knobs come from their own env
  // variables via StorageOptions::FromEnv). An engine that fails to open —
  // no writable temp directory — degrades to in-memory with a warning
  // instead of failing construction.
  if (const char* env = std::getenv("DL2SQL_STORAGE")) {
    const std::string v = env;
    if (v == "paged" || v == "PAGED") {
      const Status st = set_storage_mode(StorageMode::kPaged);
      if (!st.ok()) {
        DL2SQL_LOG(Warning)
            << "DL2SQL_STORAGE=paged: storage engine unavailable, staying "
               "in-memory: "
            << st.ToString();
      }
    } else if (v != "memory" && v != "MEMORY" && !v.empty()) {
      DL2SQL_LOG(Warning) << "DL2SQL_STORAGE='" << v
                          << "' not recognized (want 'paged' or 'memory'); "
                             "staying in-memory";
    }
  }
  if (introspection_options_.enabled) {
    query_log_ =
        std::make_unique<QueryLog>(introspection_options_.query_log_capacity);
    RegisterDatabaseSystemTables(this);
  }
}

void Database::set_cache_options(CacheOptions opts) {
  cache_options_ = opts;
  RebuildCaches();
}

Status Database::set_storage_mode(StorageMode mode) {
  return set_storage_mode(mode, storage::StorageOptions::FromEnv());
}

Status Database::set_storage_mode(StorageMode mode,
                                  const storage::StorageOptions& options) {
  if (mode == StorageMode::kPaged && storage_ == nullptr) {
    DL2SQL_ASSIGN_OR_RETURN(storage_, storage::StorageEngine::Create(options));
  }
  storage_mode_ = mode;
  return Status::OK();
}

Status Database::MaybePageOut(Table* table) {
  if (storage_mode_ != StorageMode::kPaged || storage_ == nullptr ||
      table == nullptr || table->is_paged() || table->num_columns() == 0) {
    return Status::OK();
  }
  if (table->ByteSize() < storage_->options().page_min_bytes) {
    return Status::OK();
  }
  return table->PageOut(storage_);
}

void Database::TallySpill(int64_t bytes, int64_t partitions) {
  if (QueryTally* tally = tls_tally_) {
    tally->spill_bytes += bytes;
    tally->spill_partitions += partitions;
  }
  static Counter* const spill_bytes_counter =
      MetricsRegistry::Global().counter("db.spill.bytes");
  static Counter* const spill_partitions_counter =
      MetricsRegistry::Global().counter("db.spill.partitions");
  if (bytes > 0) spill_bytes_counter->Increment(bytes);
  if (partitions > 0) spill_partitions_counter->Increment(partitions);
}

void Database::RebuildCaches() {
  nudf_cache_ =
      cache_options_.enable_nudf_cache
          ? std::make_unique<ShardedLruCache>("nudf",
                                              cache_options_.nudf_cache_bytes)
          : nullptr;
  plan_cache_ =
      cache_options_.enable_plan_cache
          ? std::make_unique<ShardedLruCache>("plan",
                                              cache_options_.plan_cache_bytes)
          : nullptr;
}

uint64_t Database::PlanCacheKey(const SelectStmt& stmt) const {
  uint64_t key = Hash64(sql::PrintSelect(stmt));
  const uint64_t opt_bits =
      (opt_options_.enable_pushdown ? 1u : 0u) |
      (opt_options_.enable_join_reorder ? 2u : 0u) |
      (opt_options_.enable_nudf_hints ? 4u : 0u);
  key = HashCombine(key, opt_bits);
  key = HashCombine(key, reinterpret_cast<uintptr_t>(
                             opt_options_.cost_model.get()));
  uint64_t parallelism = 1;
  if (exec_options_.device != nullptr) {
    parallelism =
        static_cast<uint64_t>(exec_options_.device->pool()->num_threads());
  }
  key = HashCombine(key, parallelism);
  // Registering any UDF bumps the registry version: plans embed resolved UDF
  // metadata (selectivity, per-call cost), so a redeploy must miss.
  return HashCombine(key, udfs_.version());
}

EvalContext Database::MakeEvalContext() {
  EvalContext ctx;
  ctx.udfs = &udfs_;
  ctx.costs = costs_;
  ctx.vectorized = vectorized_;
  ctx.nudf_cache = nudf_cache_.get();
  ctx.batch_sink = nudf_batch_sink_;
  if (exec_options_.device != nullptr) {
    ctx.pool = exec_options_.device->pool();
    if (exec_options_.morsel_size > 0) {
      ctx.morsel_size = exec_options_.morsel_size;
    }
  }
  ctx.subquery_exec = [this](const SelectStmt& stmt) -> Result<Value> {
    DL2SQL_ASSIGN_OR_RETURN(Table t, ExecuteSelect(stmt));
    if (t.num_rows() != 1 || t.num_columns() != 1) {
      return Status::InvalidArgument("scalar subquery returned ", t.num_rows(),
                                     "x", t.num_columns(),
                                     ", expected exactly one value");
    }
    return t.column(0).GetValue(0);
  };
  return ctx;
}

double Database::DrainEvalContext(const EvalContext& ctx) {
  neural_calls_.fetch_add(ctx.neural_calls, std::memory_order_relaxed);
  // Contexts are drained on the query's calling thread, so the per-query
  // tally (when a recorded statement is running) needs no synchronization.
  if (QueryTally* tally = tls_tally_) {
    tally->neural_calls += ctx.neural_calls;
    tally->nudf_cache_hits += ctx.nudf_cache_hits;
    tally->vector_batches += ctx.vec_batches;
    tally->nudf_wait_seconds += ctx.nudf_wait_seconds;
    tally->nudf_billed_seconds += ctx.nudf_billed_seconds;
  }
  if (ctx.vec_batches > 0) {
    static Counter* const batches_counter =
        MetricsRegistry::Global().counter("db.vector.batches");
    static Counter* const rows_counter =
        MetricsRegistry::Global().counter("db.vector.rows");
    static Counter* const selected_counter =
        MetricsRegistry::Global().counter("db.vector.selected");
    batches_counter->Increment(ctx.vec_batches);
    rows_counter->Increment(ctx.vec_rows_in);
    selected_counter->Increment(ctx.vec_rows_selected);
    if (collect_node_stats_) {
      // Parked per-thread until the enclosing ExecNode wrapper claims it for
      // its NodeRunStats; children consume their own drains first, so a
      // parent wrapper only ever sees its own operators' kernels.
      tls_pending_vec_stats.batches += ctx.vec_batches;
      tls_pending_vec_stats.rows_in += ctx.vec_rows_in;
      tls_pending_vec_stats.rows_selected += ctx.vec_rows_selected;
    }
  }
  return ctx.inference_seconds;
}

Result<Table> Database::Execute(const std::string& sql) {
  DL2SQL_ASSIGN_OR_RETURN(Statement stmt, sql::ParseStatement(sql));
  return ExecuteStatementRecorded(stmt, sql, QueryRecordHints{});
}

namespace {

QueryKind KindOfStatement(const Statement& stmt) {
  if (std::holds_alternative<std::shared_ptr<SelectStmt>>(stmt)) {
    return QueryKind::kSelect;
  }
  if (std::holds_alternative<InsertStmt>(stmt)) return QueryKind::kInsert;
  if (std::holds_alternative<UpdateStmt>(stmt)) return QueryKind::kUpdate;
  if (std::holds_alternative<DeleteStmt>(stmt)) return QueryKind::kDelete;
  if (std::holds_alternative<CreateTableStmt>(stmt) ||
      std::holds_alternative<DropStmt>(stmt)) {
    return QueryKind::kDdl;
  }
  return QueryKind::kOther;
}

}  // namespace

Result<Table> Database::ExecuteStatementRecorded(const Statement& stmt,
                                                 const std::string& sql,
                                                 const QueryRecordHints& hints) {
  if (query_log_ == nullptr) return ExecuteStatement(stmt);

  // Resource accounting: a per-query tracker parented under the session's
  // (serving) or the process root (embedded), carrying the optional hard
  // budget. Declared before the tally so the tally's operator trackers —
  // its children — are destroyed first, releasing their outstanding charges
  // up the chain in order.
  const bool profile = MemTracker::Enabled();
  std::unique_ptr<MemTracker> query_mem;
  QueryTally tally;
  int64_t cpu0_ns = 0;
  int64_t pool_cpu0_ns = 0;
  int64_t pool_wait0_us = 0;
  if (profile) {
    query_mem = std::make_unique<MemTracker>(
        "query-" + std::to_string(query_log_->total_recorded()),
        hints.session_mem != nullptr ? hints.session_mem
                                     : MemTracker::Process(),
        query_mem_limit_.load(std::memory_order_relaxed));
    tally.mem = query_mem.get();
    cpu0_ns = ThreadCpuNanos();
    pool_cpu0_ns = ThreadPool::credited_cpu_ns();
    pool_wait0_us = ThreadPool::credited_queue_wait_us();
  }
  // Save/restore: a recorded statement can reach another recorded execution
  // on the same thread (scripted pipelines); inner statements keep their own
  // tallies and the outer record stays scoped to its own work.
  QueryTally* const prev = tls_tally_;
  tls_tally_ = &tally;
  Stopwatch watch;
  auto result = ExecuteStatement(stmt);
  const int64_t duration_us = static_cast<int64_t>(watch.ElapsedMicros());
  tls_tally_ = prev;

  QueryLogRecord rec;
  rec.sql = sql;
  rec.kind = KindOfStatement(stmt);
  if (!result.ok()) rec.error = result.status().ToString();
  rec.duration_us = duration_us;
  rec.rows = result.ok() ? result->num_rows() : 0;
  rec.neural_calls = tally.neural_calls;
  rec.nudf_cache_hits = tally.nudf_cache_hits;
  rec.plan_cache_hit = tally.plan_cache_hit;
  rec.admission_wait_us = hints.admission_wait_us;
  rec.session_id = hints.session_id;
  rec.peak_operator_bytes = tally.peak_operator_bytes;
  rec.operator_rows = tally.operator_rows;
  rec.vector_batches = tally.vector_batches;
  rec.spill_bytes = tally.spill_bytes;
  rec.spill_partitions = tally.spill_partitions;
  rec.end_micros = TraceCollector::NowMicros();
  rec.lock_wait_us = hints.lock_wait_us;
  // Distributed trace stamp: the wire header wins; otherwise inherit the
  // thread's scoped context so embedded use under ScopedTraceContext tags too.
  if (hints.trace_id != 0) {
    rec.trace_id = hints.trace_id;
    rec.parent_span_id = hints.parent_span_id;
  } else {
    const TraceContext ctx = CurrentTraceContext();
    rec.trace_id = ctx.trace_id;
    rec.parent_span_id = ctx.parent_span_id;
  }
  if (profile) {
    // CPU = this thread's execution time plus pool-morsel time the pool
    // credited back to this thread; with parallel morsels the sum can
    // legitimately exceed wall time (work done concurrently).
    rec.cpu_us = (ThreadCpuNanos() - cpu0_ns +
                  ThreadPool::credited_cpu_ns() - pool_cpu0_ns) /
                 1000;
    rec.pool_queue_wait_us =
        ThreadPool::credited_queue_wait_us() - pool_wait0_us;
    rec.coalesce_wait_us =
        static_cast<int64_t>(tally.nudf_wait_seconds * 1e6);
    rec.billed_batch_us =
        static_cast<int64_t>(tally.nudf_billed_seconds * 1e6);
    rec.mem_peak_bytes = query_mem->peak();
    rec.mem_cumulative_bytes = query_mem->cumulative();
    // Static handles: one registry lookup for the process lifetime.
    static Histogram* const h_mem_peak =
        MetricsRegistry::Global().histogram("dl2sql.query.mem_peak_bytes");
    static Histogram* const h_cpu =
        MetricsRegistry::Global().histogram("dl2sql.query.cpu_us");
    static Histogram* const h_lock_wait =
        MetricsRegistry::Global().histogram("dl2sql.query.lock_wait_us");
    static Histogram* const h_pool_wait =
        MetricsRegistry::Global().histogram("dl2sql.query.pool_queue_wait_us");
    static Histogram* const h_coalesce_wait =
        MetricsRegistry::Global().histogram("dl2sql.query.coalesce_wait_us");
    static Histogram* const h_billed =
        MetricsRegistry::Global().histogram("dl2sql.query.billed_batch_us");
    h_mem_peak->Record(rec.mem_peak_bytes);
    h_cpu->Record(rec.cpu_us);
    h_lock_wait->Record(rec.lock_wait_us);
    h_pool_wait->Record(rec.pool_queue_wait_us);
    h_coalesce_wait->Record(rec.coalesce_wait_us);
    h_billed->Record(rec.billed_batch_us);
  }
  query_log_->Record(rec);
  if (hints.record_out != nullptr) *hints.record_out = rec;

  const double threshold_ms = slow_query_ms_.load(std::memory_order_relaxed);
  const double duration_ms = static_cast<double>(duration_us) / 1000.0;
  if (threshold_ms > 0 && duration_ms >= threshold_ms) {
    std::string plan_text;
    if (rec.kind == QueryKind::kSelect) {
      if (PlanPtr plan = last_plan()) {
        plan_text = plan->ToString();
        if (!plan_text.empty() && plan_text.back() == '\n') {
          plan_text.pop_back();
        }
      }
    }
    std::string breakdown;
    if (profile) {
      breakdown = " [cpu=" + std::to_string(rec.cpu_us) +
                  "us, mem_peak=" + std::to_string(rec.mem_peak_bytes) +
                  "B, waits(us): admission=" +
                  std::to_string(rec.admission_wait_us) +
                  " lock=" + std::to_string(rec.lock_wait_us) +
                  " pool_queue=" + std::to_string(rec.pool_queue_wait_us) +
                  " coalesce=" + std::to_string(rec.coalesce_wait_us) +
                  ", billed_batch=" + std::to_string(rec.billed_batch_us) +
                  "us]";
    }
    DL2SQL_LOG(Warning) << "slow query (" << duration_ms << " ms >= "
                        << threshold_ms << " ms threshold): " << rec.sql
                        << (rec.error.empty() ? "" : " [error: " + rec.error + "]")
                        << breakdown
                        << (plan_text.empty() ? ""
                                              : "\nplan:\n" + plan_text);
  }
  return result;
}

namespace {

/// Error-context tag for one script statement: 1-based index plus its SQL
/// text (middle-elided past ~120 chars so a giant INSERT stays readable).
std::string StatementContext(size_t index, const std::string& sql) {
  constexpr size_t kMaxSql = 120;
  std::string text = sql;
  for (char& c : text) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  if (text.size() > kMaxSql) {
    text = text.substr(0, kMaxSql / 2) + " ... " +
           text.substr(text.size() - kMaxSql / 2);
  }
  return "statement #" + std::to_string(index + 1) + ": " + text;
}

}  // namespace

Status Database::ExecuteScript(const std::string& script) {
  // Split first so every error — parse or execution — can name the failing
  // statement's position and SQL text. Parse the whole script before running
  // anything, preserving ParseScript's all-or-nothing semantics for syntax
  // errors.
  const std::vector<std::string> pieces = sql::SplitStatements(script);
  std::vector<Statement> stmts;
  stmts.reserve(pieces.size());
  for (size_t i = 0; i < pieces.size(); ++i) {
    auto parsed = sql::ParseStatement(pieces[i]);
    if (!parsed.ok()) {
      return parsed.status().WithContext(StatementContext(i, pieces[i]));
    }
    stmts.push_back(std::move(parsed).ValueOrDie());
  }
  for (size_t i = 0; i < stmts.size(); ++i) {
    Status st =
        ExecuteStatementRecorded(stmts[i], pieces[i], QueryRecordHints{})
            .status();
    if (!st.ok()) return st.WithContext(StatementContext(i, pieces[i]));
  }
  return Status::OK();
}

Result<Table> Database::ExecuteStatement(const Statement& stmt) {
  if (std::holds_alternative<std::shared_ptr<SelectStmt>>(stmt)) {
    return ExecuteSelect(*std::get<std::shared_ptr<SelectStmt>>(stmt));
  }
  if (std::holds_alternative<CreateTableStmt>(stmt)) {
    return ExecCreateTable(std::get<CreateTableStmt>(stmt));
  }
  if (std::holds_alternative<InsertStmt>(stmt)) {
    return ExecInsert(std::get<InsertStmt>(stmt));
  }
  if (std::holds_alternative<UpdateStmt>(stmt)) {
    return ExecUpdate(std::get<UpdateStmt>(stmt));
  }
  if (std::holds_alternative<DeleteStmt>(stmt)) {
    return ExecDelete(std::get<DeleteStmt>(stmt));
  }
  if (std::holds_alternative<DropStmt>(stmt)) {
    return ExecDrop(std::get<DropStmt>(stmt));
  }
  return Status::InternalError("unknown statement variant");
}

Result<PlanPtr> Database::PlanQuery(const SelectStmt& stmt,
                                    std::vector<std::string>* referenced) {
  Planner planner(&catalog_, &udfs_, referenced);
  DL2SQL_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(stmt));
  CostContext cctx;
  cctx.catalog = &catalog_;
  cctx.udfs = &udfs_;
  if (exec_options_.device != nullptr) {
    cctx.parallelism =
        static_cast<double>(exec_options_.device->pool()->num_threads());
  }
  Optimizer optimizer(opt_options_, cctx);
  return optimizer.Optimize(std::move(plan));
}

Result<std::string> Database::Explain(const std::string& sql) {
  DL2SQL_ASSIGN_OR_RETURN(Statement stmt, sql::ParseStatement(sql));
  if (!std::holds_alternative<std::shared_ptr<SelectStmt>>(stmt)) {
    return Status::InvalidArgument("EXPLAIN supports only SELECT");
  }
  DL2SQL_ASSIGN_OR_RETURN(
      PlanPtr plan, PlanQuery(*std::get<std::shared_ptr<SelectStmt>>(stmt)));
  CostContext cctx;
  cctx.catalog = &catalog_;
  cctx.udfs = &udfs_;
  if (exec_options_.device != nullptr) {
    cctx.parallelism =
        static_cast<double>(exec_options_.device->pool()->num_threads());
  }
  const CostModel* model = opt_options_.cost_model.get();
  std::shared_ptr<const CostModel> fallback;
  if (model == nullptr) {
    fallback = std::make_shared<DefaultCostModel>();
    model = fallback.get();
  }
  DL2SQL_RETURN_NOT_OK(model->Annotate(plan.get(), cctx));
  return plan->ToString();
}

Result<Table> Database::ExecuteSelect(const SelectStmt& stmt) {
  if (plan_cache_ == nullptr) {
    DL2SQL_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(stmt));
    SetLastPlan(plan);
    return ExecRoot(*plan);
  }

  const uint64_t key = PlanCacheKey(stmt);
  {
    DL2SQL_TRACE_SPAN("cache", "plan_probe");
    if (auto hit = plan_cache_->LookupAs<CachedPlan>(key)) {
      bool fresh = hit->cost_model == opt_options_.cost_model;
      for (const auto& [name, version] : hit->deps) {
        if (!fresh) break;
        fresh = catalog_.VersionOf(name) == version;
      }
      if (fresh) {
        if (QueryTally* tally = tls_tally_) tally->plan_cache_hit = true;
        SetLastPlan(hit->plan);
        return ExecRoot(*hit->plan);
      }
      // Stale (DDL/DML bumped a referenced relation, or the cost model was
      // swapped): drop the entry and fall through to a fresh plan.
      plan_cache_->Erase(key);
    }
  }

  std::vector<std::string> referenced;
  DL2SQL_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(stmt, &referenced));
  auto entry = std::make_shared<CachedPlan>();
  entry->plan = plan;
  entry->cost_model = opt_options_.cost_model;
  std::sort(referenced.begin(), referenced.end());
  referenced.erase(std::unique(referenced.begin(), referenced.end()),
                   referenced.end());
  entry->deps.reserve(referenced.size());
  size_t charge = 4096;  // plan tree + entry bookkeeping, order of magnitude
  for (const std::string& name : referenced) {
    entry->deps.emplace_back(name, catalog_.VersionOf(name));
    charge += name.size() + sizeof(uint64_t);
  }
  plan_cache_->Insert(key, std::move(entry), charge);
  SetLastPlan(plan);
  return ExecRoot(*plan);
}

Result<Table> Database::ExecutePlan(const PlanNode& plan) {
  return ExecRoot(plan);
}

Result<Table> Database::ExecRoot(const PlanNode& plan) {
  DL2SQL_ASSIGN_OR_RETURN(Table out, ExecNode(plan));
  // Callers of a SELECT — result consumers, CTAS, subqueries — expect
  // resident columns; a paged root output (e.g. a bare scan of a paged base
  // table) decodes here.
  DL2SQL_RETURN_NOT_OK(out.EnsureResident());
  return out;
}

Status Database::RegisterTable(const std::string& name, Table table,
                               bool temporary) {
  if (catalog_.HasTable(name)) {
    DL2SQL_RETURN_NOT_OK(catalog_.DropTable(name, false));
  }
  DL2SQL_RETURN_NOT_OK(MaybePageOut(&table));
  return catalog_.CreateTable(name, std::make_shared<Table>(std::move(table)),
                              temporary);
}

// ------------------------------------------------------------- operators ----

MemTracker* Database::OpScratchTracker(PlanKind kind) {
  QueryTally* const tally = tls_tally_;
  if (tally == nullptr || tally->mem == nullptr) return nullptr;
  auto& slot = tally->op_trackers[static_cast<int>(kind)];
  if (slot == nullptr) {
    slot = std::make_unique<MemTracker>(OpTrackerLabel(kind), tally->mem);
  }
  return slot.get();
}

Status Database::ChargeOperatorOutput(QueryTally* tally, const PlanNode& node,
                                      int64_t out_bytes) {
  if (out_bytes <= 0) return Status::OK();
  auto& slot = tally->op_trackers[static_cast<int>(node.kind)];
  if (slot == nullptr) {
    slot = std::make_unique<MemTracker>(OpTrackerLabel(node.kind), tally->mem);
  }
  DL2SQL_RETURN_NOT_OK(slot->TryConsume(out_bytes));
  if (!tally->mem_frames.empty()) {
    // Parent operator holds this output as an input; released when it pops
    // its frame. The root output has no parent frame and stays charged until
    // the statement's trackers are destroyed.
    tally->mem_frames.back().emplace_back(slot.get(), out_bytes);
  }
  return Status::OK();
}

Result<bool> Database::TryEnsureResident(PlanKind kind, Table* t) {
  if (!t->is_paged()) return true;
  const int64_t bytes = static_cast<int64_t>(t->ByteSize());
  QueryTally* const tally = tls_tally_;
  if (tally != nullptr && tally->mem != nullptr) {
    MemTracker* const tracker = OpScratchTracker(kind);
    // Admission check: does the resident form fit under the query budget?
    // On admission the charge is parked in the operator's own frame (popped
    // when it finishes), billing the materialized input for exactly as long
    // as the operator holds it.
    if (!tracker->TryConsume(bytes).ok()) return false;
    if (!tally->mem_frames.empty()) {
      tally->mem_frames.back().emplace_back(tracker, bytes);
    } else {
      tracker->Release(bytes);
    }
  }
  DL2SQL_RETURN_NOT_OK(t->EnsureResident());
  return true;
}

Result<Table> Database::ExecNode(const PlanNode& node) {
  DL2SQL_TRACE_SPAN("db", PlanKindToString(node.kind));
  // Per-operator accounting for the recorded statement running on this
  // thread (system.queries / system.query_profiles): output rows across all
  // plan nodes, the peak single-operator materialized footprint, and —
  // with resource accounting enabled — charge-frame memory attribution.
  // One TLS load when no recorded statement is active.
  QueryTally* const tally = tls_tally_;
  if (tally == nullptr && !collect_node_stats_) return ExecNodeImpl(node);

  const bool track = tally != nullptr && tally->mem != nullptr;
  if (track) tally->mem_frames.emplace_back();
  auto result = collect_node_stats_ ? ExecNodeCollect(node) : ExecNodeImpl(node);
  if (track) {
    // Children's outputs — charged into this operator's frame when their own
    // wrappers finished — die with this operator, like their Tables do.
    for (const auto& [t, bytes] : tally->mem_frames.back()) t->Release(bytes);
    tally->mem_frames.pop_back();
  }
  if (tally != nullptr && result.ok()) {
    // Resident bytes, not logical: a paged output's payload lives in the
    // buffer pool (billed to storage.buffer_pool), not in this query.
    const int64_t out_bytes = static_cast<int64_t>(result->ResidentBytes());
    tally->operator_rows += result->num_rows();
    tally->peak_operator_bytes =
        std::max(tally->peak_operator_bytes, out_bytes);
    if (track) {
      DL2SQL_RETURN_NOT_OK(ChargeOperatorOutput(tally, node, out_bytes));
    }
  }
  return result;
}

Result<Table> Database::ExecNodeCollect(const PlanNode& node) {
  ThreadPool* pool =
      exec_options_.device != nullptr ? exec_options_.device->pool() : nullptr;
  const int workers = pool != nullptr ? pool->num_threads() : 0;
  std::vector<double> busy_before(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    busy_before[static_cast<size_t>(w)] = pool->worker_busy_seconds(w);
  }

  Stopwatch watch;
  auto result = ExecNodeImpl(node);
  const double elapsed = watch.ElapsedSeconds();

  // Claim the vectorized-kernel stats this operator's context drains parked
  // on this thread. Child operators ran inside ExecNodeImpl through their
  // own ExecNode wrappers, which already claimed theirs.
  const vec::VectorOpStats vstats = tls_pending_vec_stats;
  tls_pending_vec_stats = vec::VectorOpStats{};

  std::lock_guard<std::mutex> lock(node_stats_mu_);
  NodeRunStats& stats = node_stats_[&node];
  stats.cumulative_seconds += elapsed;
  stats.vec_batches += vstats.batches;
  stats.vec_rows_in += vstats.rows_in;
  stats.vec_rows_selected += vstats.rows_selected;
  if (result.ok()) {
    stats.rows += result->num_rows();
    stats.output_bytes = std::max(
        stats.output_bytes, static_cast<int64_t>(result->ResidentBytes()));
  }
  if (workers > 0) {
    if (static_cast<int>(stats.worker_busy_seconds.size()) < workers) {
      stats.worker_busy_seconds.resize(static_cast<size_t>(workers), 0.0);
    }
    // Busy-time delta while this subtree ran. Morsels issued by concurrent
    // re-entrant queries would be co-charged, but ExplainAnalyze drives one
    // query at a time.
    for (int w = 0; w < workers; ++w) {
      stats.worker_busy_seconds[static_cast<size_t>(w)] +=
          pool->worker_busy_seconds(w) - busy_before[static_cast<size_t>(w)];
    }
  }
  return result;
}

Result<std::string> Database::ExplainAnalyze(const std::string& sql) {
  DL2SQL_ASSIGN_OR_RETURN(Statement stmt, sql::ParseStatement(sql));
  if (!std::holds_alternative<std::shared_ptr<SelectStmt>>(stmt)) {
    return Status::InvalidArgument("EXPLAIN ANALYZE supports only SELECT");
  }
  DL2SQL_ASSIGN_OR_RETURN(
      PlanPtr plan, PlanQuery(*std::get<std::shared_ptr<SelectStmt>>(stmt)));
  SetLastPlan(plan);
  node_stats_.clear();
  collect_node_stats_ = true;

  // Registry state before execution, captured as one consistent session-
  // local snapshot (single lock acquisition): the footer reports the deltas
  // this query produced (nUDF invocations, cache hits, pool morsels, ...).
  // The previous per-counter enumeration locked the registry once per name,
  // twice, so counters registered mid-query or bumped between the two passes
  // made footers interleave non-deterministically under concurrent sessions.
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricsSnapshot counters_before = registry.Snapshot();

  // Resource-accounting profile for the analyzed query: a scratch tracker
  // (declared before the tally so the tally's operator trackers destroy
  // first) plus a scoped tally so the charge frames run exactly as they do
  // for recorded statements.
  const bool profile = MemTracker::Enabled();
  std::unique_ptr<MemTracker> query_mem;
  QueryTally tally;
  int64_t cpu0_ns = 0;
  if (profile) {
    query_mem = std::make_unique<MemTracker>(
        "query-explain", MemTracker::Process(),
        query_mem_limit_.load(std::memory_order_relaxed));
    tally.mem = query_mem.get();
    cpu0_ns = ThreadCpuNanos();
  }
  QueryTally* const prev_tally = tls_tally_;
  tls_tally_ = &tally;
  auto result = ExecNode(*plan);
  tls_tally_ = prev_tally;
  const int64_t cpu_us = profile ? (ThreadCpuNanos() - cpu0_ns) / 1000 : 0;
  collect_node_stats_ = false;
  DL2SQL_RETURN_NOT_OK(result.status());

  std::string out;
  std::function<void(const PlanNode&, int)> render = [&](const PlanNode& n,
                                                         int indent) {
    // First line of the subtree rendering = this node's own description.
    std::string line = n.ToString(indent);
    line = line.substr(0, line.find('\n'));
    out += line;
    auto it = node_stats_.find(&n);
    if (it != node_stats_.end()) {
      double children = 0;
      for (const auto& c : n.children) {
        auto ci = node_stats_.find(c.get());
        if (ci != node_stats_.end()) children += ci->second.cumulative_seconds;
      }
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    " [actual rows=%lld, total=%.4fs, self=%.4fs, "
                    "bytes=%lld]",
                    static_cast<long long>(it->second.rows),
                    it->second.cumulative_seconds,
                    std::max(0.0, it->second.cumulative_seconds - children),
                    static_cast<long long>(it->second.output_bytes));
      out += buf;
      // Vectorized-kernel profile: batches processed and average
      // selection-vector density (rows surviving selection / rows entering
      // the kernels). Omitted for nodes that ran the row path.
      if (it->second.vec_batches > 0) {
        const double density =
            it->second.vec_rows_in > 0
                ? static_cast<double>(it->second.vec_rows_selected) /
                      static_cast<double>(it->second.vec_rows_in)
                : 0.0;
        char vbuf[64];
        std::snprintf(vbuf, sizeof(vbuf), " [batches=%lld, sel_density=%.2f]",
                      static_cast<long long>(it->second.vec_batches), density);
        out += vbuf;
      }
      // Per-worker parallelism breakdown: seconds each pool worker spent
      // inside morsel bodies while this subtree ran. Omitted for nodes whose
      // subtree never touched the pool.
      double busy_total = 0;
      for (double s : it->second.worker_busy_seconds) busy_total += s;
      if (busy_total > 0) {
        out += " [workers:";
        for (size_t w = 0; w < it->second.worker_busy_seconds.size(); ++w) {
          char wbuf[48];
          std::snprintf(wbuf, sizeof(wbuf), " w%zu=%.4fs", w,
                        it->second.worker_busy_seconds[w]);
          out += wbuf;
        }
        out += "]";
      }
    }
    out += "\n";
    for (const auto& c : n.children) render(*c, indent + 1);
  };
  render(*plan, 0);

  // Per-query operator accounting: total rows produced across all plan
  // nodes and the largest single materialized operator output.
  int64_t total_rows = 0;
  int64_t peak_bytes = 0;
  for (const auto& [_, stats] : node_stats_) {
    total_rows += stats.rows;
    peak_bytes = std::max(peak_bytes, stats.output_bytes);
  }
  out += "Operators: rows=" + std::to_string(total_rows) +
         ", peak_bytes=" + std::to_string(peak_bytes) + "\n";

  // Resource-accounting footer: tracked memory per operator kind (peak bytes
  // charged to each "op.<kind>" tracker) and query-level totals. Omitted
  // with DL2SQL_MEM_TRACKER=OFF.
  if (profile) {
    out += "Profile: cpu_us=" + std::to_string(cpu_us) +
           ", mem_peak_bytes=" + std::to_string(query_mem->peak()) +
           ", mem_cumulative_bytes=" +
           std::to_string(query_mem->cumulative()) +
           ", spill_bytes=" + std::to_string(tally.spill_bytes) +
           ", spill_partitions=" + std::to_string(tally.spill_partitions) +
           "\n";
    for (const auto& [kind, tracker] : tally.op_trackers) {
      (void)kind;
      out += "  " + tracker->label() +
             ": peak_bytes=" + std::to_string(tracker->peak()) +
             ", cumulative_bytes=" + std::to_string(tracker->cumulative()) +
             "\n";
    }
  }

  // Footer: registry counters incremented by this query, computed as the
  // delta of two session-local snapshots.
  const MetricsSnapshot delta =
      MetricsRegistry::SnapshotDelta(counters_before, registry.Snapshot());
  std::string footer;
  for (const auto& [name, value] : delta.counters) {
    if (value == 0) continue;
    footer += "  " + name + "=" + std::to_string(value) + "\n";
  }
  if (!footer.empty()) out += "Counters:\n" + footer;
  return out;
}

Result<Table> Database::ExecNodeImpl(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kScan:
      return ExecScan(node);
    case PlanKind::kFilter: {
      DL2SQL_ASSIGN_OR_RETURN(Table in, ExecNode(*node.children[0]));
      return ExecFilter(node, std::move(in));
    }
    case PlanKind::kProject: {
      DL2SQL_ASSIGN_OR_RETURN(Table in, ExecNode(*node.children[0]));
      return ExecProject(node, std::move(in));
    }
    case PlanKind::kJoin: {
      DL2SQL_ASSIGN_OR_RETURN(Table l, ExecNode(*node.children[0]));
      DL2SQL_ASSIGN_OR_RETURN(Table r, ExecNode(*node.children[1]));
      return ExecJoin(node, std::move(l), std::move(r));
    }
    case PlanKind::kAggregate: {
      DL2SQL_ASSIGN_OR_RETURN(Table in, ExecNode(*node.children[0]));
      return ExecAggregate(node, std::move(in));
    }
    case PlanKind::kSort: {
      DL2SQL_ASSIGN_OR_RETURN(Table in, ExecNode(*node.children[0]));
      return ExecSort(node, std::move(in));
    }
    case PlanKind::kLimit: {
      DL2SQL_ASSIGN_OR_RETURN(Table in, ExecNode(*node.children[0]));
      Stopwatch watch;
      const int64_t n = std::min<int64_t>(in.num_rows(),
                                          node.limit < 0 ? in.num_rows()
                                                         : node.limit);
      std::vector<int64_t> rows(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) rows[static_cast<size_t>(i)] = i;
      Table out = in.TakeRows(rows);
      ChargeOperator(costs_, "limit", watch.ElapsedSeconds(), 0);
      return out;
    }
  }
  return Status::InternalError("unhandled plan node kind");
}

Result<Table> Database::ExecScan(const PlanNode& node) {
  Stopwatch watch;
  if (node.table_name.empty()) {
    // SELECT without FROM: one phantom row.
    Table t{TableSchema{}};
    t.SetZeroColumnRows(1);
    return t;
  }
  TablePtr table;
  if (auto provider = catalog_.GetVirtualTable(node.table_name)) {
    // Virtual tables have no stored columns: every scan materializes fresh
    // rows from live engine state, so even a plan-cache hit sees current
    // data.
    DL2SQL_ASSIGN_OR_RETURN(table, provider->Materialize());
    if (table->num_columns() != node.output_schema.num_fields()) {
      return Status::InternalError(
          "virtual table '", node.table_name, "' materialized ",
          table->num_columns(), " columns, plan expected ",
          node.output_schema.num_fields());
    }
  } else {
    DL2SQL_ASSIGN_OR_RETURN(table, catalog_.GetTable(node.table_name));
  }
  if (table->is_paged()) {
    // Zero-copy paged view: the scan output shares the table's backing under
    // the plan's qualified schema. Consumers either window over it, spill,
    // or materialize it after an admission check (TryEnsureResident).
    Table out = Table::FromPaged(node.output_schema, table->paged());
    ChargeOperator(costs_, "scan", watch.ElapsedSeconds(), 0);
    return out;
  }
  // Columns are shared copy-on-write; only the schema is rewritten with the
  // qualified names assigned at planning time.
  std::vector<Column> cols;
  cols.reserve(static_cast<size_t>(table->num_columns()));
  for (int i = 0; i < table->num_columns(); ++i) cols.push_back(table->column(i));
  DL2SQL_ASSIGN_OR_RETURN(Table out,
                          Table::FromColumns(node.output_schema, std::move(cols)));
  ChargeOperator(costs_, "scan", watch.ElapsedSeconds(), 0);
  return out;
}

namespace {

/// Accumulates windowed operator output back into paged storage, so the
/// streaming operators (filter/project, spill merges) never hold more than
/// one window of output resident. Finish() materializes small results
/// (< page_min_bytes) so trivially-sized paged tables don't escape into the
/// plan and force every consumer through the windowed machinery.
class PagedResultWriter {
 public:
  PagedResultWriter(std::shared_ptr<storage::StorageEngine> engine,
                    TableSchema schema)
      : engine_(std::move(engine)),
        schema_(schema),
        builder_(engine_, std::move(schema)) {}

  Status Append(const Table& t) { return builder_.Append(t); }

  Result<Table> Finish() {
    DL2SQL_ASSIGN_OR_RETURN(std::shared_ptr<storage::PagedTableData> data,
                            builder_.Finish());
    Table out = Table::FromPaged(schema_, std::move(data));
    if (out.ByteSize() < engine_->options().page_min_bytes) {
      DL2SQL_RETURN_NOT_OK(out.EnsureResident());
    }
    return out;
  }

 private:
  std::shared_ptr<storage::StorageEngine> engine_;
  TableSchema schema_;
  storage::PagedTableBuilder builder_;
};

}  // namespace

Result<Table> Database::ExecFilter(const PlanNode& node, Table input) {
  if (input.is_paged()) return ExecFilterPaged(node, input);
  Stopwatch watch;
  EvalContext ctx = MakeEvalContext();
  DL2SQL_ASSIGN_OR_RETURN(std::vector<int64_t> rows,
                          FilterRows(*node.predicate, input, &ctx));
  Table out = input.TakeRows(rows);
  const double inf = DrainEvalContext(ctx);
  ChargeOperator(costs_, "filter", watch.ElapsedSeconds(), inf);
  return out;
}

Result<Table> Database::ExecFilterPaged(const PlanNode& node,
                                        const Table& input) {
  Stopwatch watch;
  EvalContext ctx = MakeEvalContext();
  // One window per storage chunk: the predicate is row-local, so evaluating
  // it window-by-window and re-paging the survivors is exactly the resident
  // semantics with bounded residency.
  const std::unique_ptr<storage::ColumnSource> source =
      storage::MakeColumnSource(std::make_shared<Table>(input), 0);
  PagedResultWriter writer(input.paged()->shared_engine(), input.schema());
  for (int64_t w = 0; w < source->num_windows(); ++w) {
    DL2SQL_ASSIGN_OR_RETURN(Table window, source->ReadWindow(w));
    DL2SQL_ASSIGN_OR_RETURN(std::vector<int64_t> rows,
                            FilterRows(*node.predicate, window, &ctx));
    if (!rows.empty()) {
      DL2SQL_RETURN_NOT_OK(writer.Append(window.TakeRows(rows)));
    }
  }
  DL2SQL_ASSIGN_OR_RETURN(Table out, writer.Finish());
  const double inf = DrainEvalContext(ctx);
  ChargeOperator(costs_, "filter", watch.ElapsedSeconds(), inf);
  return out;
}

Result<Table> Database::ExecProject(const PlanNode& node, Table input) {
  if (input.is_paged()) return ExecProjectPaged(node, input);
  Stopwatch watch;
  EvalContext ctx = MakeEvalContext();
  std::vector<Column> cols;
  TableSchema schema;
  for (size_t i = 0; i < node.exprs.size(); ++i) {
    DL2SQL_ASSIGN_OR_RETURN(ColumnHandle col,
                            EvalExpr(*node.exprs[i], input, &ctx));
    cols.push_back(*col);  // cheap: shared payload
    schema.AddField({node.names[i], col->type()});
  }
  const double inf = DrainEvalContext(ctx);
  DL2SQL_ASSIGN_OR_RETURN(Table out,
                          Table::FromColumns(std::move(schema), std::move(cols)));
  if (node.exprs.empty()) out.SetZeroColumnRows(input.num_rows());
  ChargeOperator(costs_, "project", watch.ElapsedSeconds(), inf);
  return out;
}

Result<Table> Database::ExecProjectPaged(const PlanNode& node,
                                         const Table& input) {
  Stopwatch watch;
  EvalContext ctx = MakeEvalContext();
  if (node.exprs.empty()) {
    Table out;
    out.SetZeroColumnRows(input.num_rows());
    ChargeOperator(costs_, "project", watch.ElapsedSeconds(),
                   DrainEvalContext(ctx));
    return out;
  }
  const std::unique_ptr<storage::ColumnSource> source =
      storage::MakeColumnSource(std::make_shared<Table>(input), 0);
  // All expressions are row-local, so projecting each window independently
  // and concatenating reproduces the resident output exactly. The output
  // schema is discovered from the first window's expression types.
  std::unique_ptr<PagedResultWriter> writer;
  for (int64_t w = 0; w < source->num_windows(); ++w) {
    DL2SQL_ASSIGN_OR_RETURN(Table window, source->ReadWindow(w));
    std::vector<Column> cols;
    TableSchema schema;
    for (size_t i = 0; i < node.exprs.size(); ++i) {
      DL2SQL_ASSIGN_OR_RETURN(ColumnHandle col,
                              EvalExpr(*node.exprs[i], window, &ctx));
      cols.push_back(*col);
      schema.AddField({node.names[i], col->type()});
    }
    DL2SQL_ASSIGN_OR_RETURN(
        Table piece, Table::FromColumns(std::move(schema), std::move(cols)));
    if (writer == nullptr) {
      writer = std::make_unique<PagedResultWriter>(
          input.paged()->shared_engine(), piece.schema());
    }
    DL2SQL_RETURN_NOT_OK(writer->Append(piece));
  }
  DL2SQL_CHECK(writer != nullptr) << "paged table with zero chunks";
  DL2SQL_ASSIGN_OR_RETURN(Table out, writer->Finish());
  const double inf = DrainEvalContext(ctx);
  ChargeOperator(costs_, "project", watch.ElapsedSeconds(), inf);
  return out;
}

Result<Table> Database::ExecJoin(const PlanNode& node, Table left, Table right) {
  if (left.is_paged() || right.is_paged()) {
    // Try to admit each paged side into the query's memory budget; whatever
    // doesn't fit forces the grace (partitioned, spilling) join, which only
    // exists for equi joins. Cross and symmetric-hash joins have no spill
    // path — surface the budget refusal instead of silently thrashing.
    DL2SQL_ASSIGN_OR_RETURN(bool left_fits,
                            TryEnsureResident(PlanKind::kJoin, &left));
    DL2SQL_ASSIGN_OR_RETURN(bool right_fits,
                            TryEnsureResident(PlanKind::kJoin, &right));
    if (!left_fits || !right_fits) {
      if (!node.equi_keys.empty() && !node.use_symmetric_hash) {
        return ExecJoinGrace(node, std::move(left), std::move(right));
      }
      return Status::ResourceExhausted(
          "join input (", left.ByteSize() + right.ByteSize(),
          " bytes) exceeds the query memory budget and this join shape "
          "(cross or symmetric-hash) has no spill path");
    }
  }
  Stopwatch watch;
  EvalContext ctx = MakeEvalContext();
  // Transient join state — build-side hash table and the pair buffer — is
  // charged against op.join while live and released on return. Estimates
  // (bucket node + row-id vector entries), not malloc-exact: the accounting
  // answers "which operator holds the memory", not "what does malloc say".
  ScopedMemCharge scratch_mem(OpScratchTracker(PlanKind::kJoin));
  std::vector<std::pair<int64_t, int64_t>> pairs;

  if (node.use_symmetric_hash && node.equi_keys.size() == 1) {
    SymmetricHashJoinStats shj_stats;
    DL2SQL_ASSIGN_OR_RETURN(
        pairs, SymmetricHashJoinPairs(left, right, *node.equi_keys[0].first,
                                      *node.equi_keys[0].second, &ctx,
                                      shj_options_, &shj_stats));
    {
      std::lock_guard<std::mutex> lock(last_run_mu_);
      last_shj_stats_ = shj_stats;
    }
    ++symmetric_joins_;
    static Counter* const symmetric_counter =
        MetricsRegistry::Global().counter("db.symmetric_joins");
    symmetric_counter->Increment();
  } else if (!node.equi_keys.empty()) {
    // Hash join: build on the right, probe with the left.
    std::vector<ColumnHandle> lkeys, rkeys;
    for (const auto& [lk, rk] : node.equi_keys) {
      DL2SQL_ASSIGN_OR_RETURN(ColumnHandle lc, EvalExpr(*lk, left, &ctx));
      DL2SQL_ASSIGN_OR_RETURN(ColumnHandle rc, EvalExpr(*rk, right, &ctx));
      lkeys.push_back(std::move(lc));
      rkeys.push_back(std::move(rc));
    }
    std::vector<const Column*> lcols, rcols;
    for (const auto& c : lkeys) lcols.push_back(c.get());
    for (const auto& c : rkeys) rcols.push_back(c.get());

    // Build the hash table on the side the optimizer estimated smaller.
    const bool build_left = node.join_build_left;
    const Table& build_table = build_left ? left : right;
    const Table& probe_table = build_left ? right : left;
    const auto& build_keys = build_left ? lcols : rcols;
    const auto& probe_keys = build_left ? rcols : lcols;

    // Morsel-parallel probe driver. The build side is immutable once
    // constructed, so any number of workers may probe it concurrently; each
    // probe morsel collects its (left, right) pairs into its own buffer and
    // the buffers are concatenated in morsel order, which reproduces the
    // serial pair order exactly for every thread count. `per_row(p, out)`
    // appends the matches of probe row p.
    std::atomic<int64_t> total_pairs{0};
    auto run_probe = [&](int64_t probe_count, auto&& per_row) -> Status {
      const int64_t m = ctx.morsel_size;
      if (ctx.pool == nullptr || ctx.pool->num_threads() <= 1 ||
          probe_count <= m) {
        for (int64_t p = 0; p < probe_count; ++p) {
          DL2SQL_RETURN_NOT_OK(per_row(p, &pairs));
          if (static_cast<int64_t>(pairs.size()) > kMaxJoinPairs) {
            return Status::ResourceExhausted("join produced more than ",
                                             kMaxJoinPairs, " pairs");
          }
        }
        return Status::OK();
      }
      const int64_t num_morsels = (probe_count + m - 1) / m;
      std::vector<std::vector<std::pair<int64_t, int64_t>>> parts(
          static_cast<size_t>(num_morsels));
      DL2SQL_RETURN_NOT_OK(ctx.pool->ParallelForMorsel(
          probe_count, m, [&](int64_t bgn, int64_t end, int) -> Status {
            auto& part = parts[static_cast<size_t>(bgn / m)];
            for (int64_t p = bgn; p < end; ++p) {
              DL2SQL_RETURN_NOT_OK(per_row(p, &part));
            }
            const int64_t sz = static_cast<int64_t>(part.size());
            if (total_pairs.fetch_add(sz) + sz > kMaxJoinPairs) {
              return Status::ResourceExhausted("join produced more than ",
                                               kMaxJoinPairs, " pairs");
            }
            return Status::OK();
          }));
      size_t total = pairs.size();
      for (const auto& part : parts) total += part.size();
      pairs.reserve(total);
      for (auto& part : parts) {
        pairs.insert(pairs.end(), part.begin(), part.end());
      }
      return Status::OK();
    };
    auto emit_into = [build_left](std::vector<std::pair<int64_t, int64_t>>* out,
                                  int64_t b, int64_t p) {
      if (build_left) {
        out->emplace_back(b, p);
      } else {
        out->emplace_back(p, b);
      }
    };

    auto all_int_no_nulls = [](const std::vector<ColumnHandle>& keys) {
      for (const auto& k : keys) {
        if (k->type() != DataType::kInt64 || k->HasNulls()) return false;
      }
      return true;
    };
    const bool ints_only =
        all_int_no_nulls(build_left ? lkeys : rkeys) &&
        all_int_no_nulls(build_left ? rkeys : lkeys);
    const bool int_fast_path = build_keys.size() == 1 && ints_only;
    const bool int2_fast_path = build_keys.size() == 2 && ints_only;
    if (int_fast_path) {
      // Reuse a prebuilt base-table hash index when the build side is an
      // unfiltered scan keyed on a plain column (the shape of the generated
      // neural-operator joins: static kernel/mapping tables on the build
      // side). Falls back to an on-the-fly hash table otherwise.
      std::shared_ptr<HashIndex> index;
      const PlanNode& build_plan = *node.children[build_left ? 0 : 1];
      const Expr& build_key_expr =
          build_left ? *node.equi_keys[0].first : *node.equi_keys[0].second;
      if (build_plan.kind == PlanKind::kScan &&
          build_plan.scan_predicates.empty() &&
          build_key_expr.kind == ExprKind::kColumnRef &&
          build_key_expr.bound_index >= 0) {
        const std::string& qualified =
            build_plan.output_schema.field(build_key_expr.bound_index).name;
        const size_t dot = qualified.rfind('.');
        const std::string base =
            dot == std::string::npos ? qualified : qualified.substr(dot + 1);
        index = catalog_.GetIndex(build_plan.table_name, base);
        if (index != nullptr &&
            index->indexed_rows() != build_table.num_rows()) {
          index = nullptr;  // stale snapshot guard
        }
      }

      const auto& pvals = probe_keys[0]->ints();
      if (index != nullptr) {
        ++index_joins_;
        static Counter* const index_counter =
            MetricsRegistry::Global().counter("db.index_joins");
        index_counter->Increment();
        DL2SQL_RETURN_NOT_OK(run_probe(
            static_cast<int64_t>(pvals.size()),
            [&](int64_t p,
                std::vector<std::pair<int64_t, int64_t>>* out) -> Status {
              const std::vector<int64_t>* rows =
                  index->Lookup(pvals[static_cast<size_t>(p)]);
              if (rows == nullptr) return Status::OK();
              for (int64_t b : *rows) emit_into(out, b, p);
              return Status::OK();
            }));
      } else {
        // Single-int64 equi key: skip the generic key encoding entirely.
        const auto& bvals = build_keys[0]->ints();
        std::unordered_map<int64_t, std::vector<int64_t>> build;
        build.reserve(bvals.size());
        for (size_t r = 0; r < bvals.size(); ++r) {
          build[bvals[r]].push_back(static_cast<int64_t>(r));
        }
        DL2SQL_RETURN_NOT_OK(scratch_mem.Charge(static_cast<int64_t>(
            build.size() * (sizeof(int64_t) + sizeof(std::vector<int64_t>) +
                            16) +
            bvals.size() * sizeof(int64_t))));
        DL2SQL_RETURN_NOT_OK(run_probe(
            static_cast<int64_t>(pvals.size()),
            [&](int64_t p,
                std::vector<std::pair<int64_t, int64_t>>* out) -> Status {
              auto it = build.find(pvals[static_cast<size_t>(p)]);
              if (it == build.end()) return Status::OK();
              for (int64_t b : it->second) emit_into(out, b, p);
              return Status::OK();
            }));
      }
    } else if (int2_fast_path) {
      // Two-int64 equi keys (e.g. batched (BatchID, TupleID) joins).
      const auto& b0 = build_keys[0]->ints();
      const auto& b1 = build_keys[1]->ints();
      const auto& p0 = probe_keys[0]->ints();
      const auto& p1 = probe_keys[1]->ints();
      std::unordered_map<Int2Key, std::vector<int64_t>, Int2KeyHash> build;
      build.reserve(b0.size());
      for (size_t r = 0; r < b0.size(); ++r) {
        build[{b0[r], b1[r]}].push_back(static_cast<int64_t>(r));
      }
      DL2SQL_RETURN_NOT_OK(scratch_mem.Charge(static_cast<int64_t>(
          build.size() *
              (sizeof(Int2Key) + sizeof(std::vector<int64_t>) + 16) +
          b0.size() * sizeof(int64_t))));
      DL2SQL_RETURN_NOT_OK(run_probe(
          static_cast<int64_t>(p0.size()),
          [&](int64_t p,
              std::vector<std::pair<int64_t, int64_t>>* out) -> Status {
            const size_t sp = static_cast<size_t>(p);
            auto it = build.find({p0[sp], p1[sp]});
            if (it == build.end()) return Status::OK();
            for (int64_t b : it->second) emit_into(out, b, p);
            return Status::OK();
          }));
    } else if (ctx.vectorized) {
      // Vectorized generic path: null flags and canonical key hashes are
      // computed a batch at a time into preallocated arrays (disjoint morsel
      // writes, so the loop parallelizes without synchronization), replacing
      // the per-row EncodeRowKey string allocations. Buckets hold build rows
      // in row order and probes verify candidates with exact canonical-key
      // equality, so the emitted pair order is identical to the string-keyed
      // row path for every thread count.
      const int64_t bn = build_table.num_rows();
      const int64_t pn = probe_table.num_rows();
      std::vector<uint64_t> bhash(static_cast<size_t>(bn));
      std::vector<uint64_t> phash(static_cast<size_t>(pn));
      std::vector<uint8_t> bnull(static_cast<size_t>(bn));
      std::vector<uint8_t> pnull(static_cast<size_t>(pn));
      auto batch_keys = [&](const std::vector<const Column*>& keys, int64_t kn,
                            uint64_t* hash, uint8_t* null_flags) -> Status {
        const int64_t m = ctx.morsel_size;
        auto body = [&](int64_t bgn, int64_t end, int) -> Status {
          vec::KeyNullRange(keys, bgn, end, null_flags + bgn);
          vec::HashKeyRange(keys, bgn, end, hash + bgn);
          return Status::OK();
        };
        // Per-row output slots are disjoint, so any wired pool can run the
        // loop (it degrades to inline execution for single-threaded pools
        // and single-morsel inputs); this keeps pool accounting and trace
        // spans identical to the row path.
        if (ctx.pool != nullptr) {
          DL2SQL_RETURN_NOT_OK(ctx.pool->ParallelForMorsel(kn, m, body));
        } else {
          for (int64_t b = 0; b < kn; b += m) {
            DL2SQL_RETURN_NOT_OK(body(b, std::min(kn, b + m), 0));
          }
        }
        ctx.vec_batches += kn == 0 ? 0 : (kn + m - 1) / m;
        ctx.vec_rows_in += kn;
        ctx.vec_rows_selected += kn;
        return Status::OK();
      };
      DL2SQL_RETURN_NOT_OK(
          batch_keys(build_keys, bn, bhash.data(), bnull.data()));
      DL2SQL_RETURN_NOT_OK(
          batch_keys(probe_keys, pn, phash.data(), pnull.data()));
      std::unordered_map<uint64_t, std::vector<int64_t>> build;
      build.reserve(static_cast<size_t>(bn));
      for (int64_t r = 0; r < bn; ++r) {
        if (bnull[static_cast<size_t>(r)] != 0) continue;
        build[bhash[static_cast<size_t>(r)]].push_back(r);
      }
      DL2SQL_RETURN_NOT_OK(scratch_mem.Charge(
          (bn + pn) * static_cast<int64_t>(sizeof(uint64_t) + 1) +
          static_cast<int64_t>(
              build.size() *
                  (sizeof(uint64_t) + sizeof(std::vector<int64_t>) + 16) +
              static_cast<size_t>(bn) * sizeof(int64_t))));
      DL2SQL_RETURN_NOT_OK(run_probe(
          pn,
          [&](int64_t p,
              std::vector<std::pair<int64_t, int64_t>>* out) -> Status {
            if (pnull[static_cast<size_t>(p)] != 0) return Status::OK();
            auto it = build.find(phash[static_cast<size_t>(p)]);
            if (it == build.end()) return Status::OK();
            for (int64_t b : it->second) {
              if (vec::CanonicalKeyRowsEqual(probe_keys, p, build_keys, b)) {
                emit_into(out, b, p);
              }
            }
            return Status::OK();
          }));
    } else {
      std::unordered_map<std::string, std::vector<int64_t>> build;
      build.reserve(static_cast<size_t>(build_table.num_rows()));
      for (int64_t r = 0; r < build_table.num_rows(); ++r) {
        if (RowKeyHasNull(build_keys, r)) continue;
        build[EncodeRowKey(build_keys, r)].push_back(r);
      }
      int64_t key_bytes = 0;
      for (const auto& [key, rows] : build) {
        key_bytes += static_cast<int64_t>(key.size() + rows.size() * 8);
      }
      DL2SQL_RETURN_NOT_OK(scratch_mem.Charge(
          key_bytes +
          static_cast<int64_t>(
              build.size() *
              (sizeof(std::string) + sizeof(std::vector<int64_t>) + 16))));
      DL2SQL_RETURN_NOT_OK(run_probe(
          probe_table.num_rows(),
          [&](int64_t p,
              std::vector<std::pair<int64_t, int64_t>>* out) -> Status {
            if (RowKeyHasNull(probe_keys, p)) return Status::OK();
            auto it = build.find(EncodeRowKey(probe_keys, p));
            if (it == build.end()) return Status::OK();
            for (int64_t b : it->second) emit_into(out, b, p);
            return Status::OK();
          }));
    }
  } else {
    // Cross product (with optional residual condition applied below).
    const int64_t total = left.num_rows() * right.num_rows();
    if (total > kMaxJoinPairs) {
      return Status::ResourceExhausted("cross join of ", left.num_rows(), " x ",
                                       right.num_rows(), " rows is too large");
    }
    pairs.reserve(static_cast<size_t>(total));
    for (int64_t l = 0; l < left.num_rows(); ++l) {
      for (int64_t r = 0; r < right.num_rows(); ++r) pairs.emplace_back(l, r);
    }
  }

  // Materialize the joined table.
  DL2SQL_RETURN_NOT_OK(scratch_mem.Charge(
      static_cast<int64_t>(pairs.size() * sizeof(pairs[0]) * 2)));
  std::vector<int64_t> lrows, rrows;
  lrows.reserve(pairs.size());
  rrows.reserve(pairs.size());
  for (const auto& [l, r] : pairs) {
    lrows.push_back(l);
    rrows.push_back(r);
  }
  Table ltaken = left.TakeRows(lrows);
  Table rtaken = right.TakeRows(rrows);
  std::vector<Column> cols;
  for (int i = 0; i < ltaken.num_columns(); ++i) cols.push_back(ltaken.column(i));
  for (int i = 0; i < rtaken.num_columns(); ++i) cols.push_back(rtaken.column(i));
  DL2SQL_ASSIGN_OR_RETURN(Table joined,
                          Table::FromColumns(node.output_schema, std::move(cols)));

  if (node.join_condition != nullptr) {
    DL2SQL_ASSIGN_OR_RETURN(std::vector<int64_t> keep,
                            FilterRows(*node.join_condition, joined, &ctx));
    joined = joined.TakeRows(keep);
  }
  const double inf = DrainEvalContext(ctx);
  ChargeOperator(costs_, "join", watch.ElapsedSeconds(), inf);
  return joined;
}

Result<Table> Database::ExecJoinGrace(const PlanNode& node, Table left,
                                      Table right) {
  Stopwatch watch;
  EvalContext ctx = MakeEvalContext();
  // Long-lived grace state (the global pair buffer) bills against op.join;
  // the per-partition build tables are charged on their own scopes below.
  ScopedMemCharge scratch_mem(OpScratchTracker(PlanKind::kJoin));

  std::shared_ptr<storage::StorageEngine> engine =
      left.is_paged() ? left.paged()->shared_engine()
      : right.is_paged() ? right.paged()->shared_engine()
                         : storage_;
  if (engine == nullptr) {
    return Status::InternalError("grace join requires a storage engine");
  }
  const int64_t num_parts =
      std::max<int64_t>(1, engine->options().spill_partitions);

  // Phase 1: partition. Each side spills (global row id, canonical key
  // bytes) pairs into per-partition paged files keyed by hash(key) — the
  // canonical encoding is EncodeRowKey's, so cross-type matches (int vs
  // integral float) behave exactly like the in-memory join. NULL keys never
  // match and are dropped here.
  TableSchema spill_schema;
  spill_schema.AddField({"__row", DataType::kInt64});
  spill_schema.AddField({"__key", DataType::kBlob});

  int64_t spilled_bytes = 0;
  int64_t spilled_parts = 0;

  auto partition_side =
      [&](const Table& side, bool left_side)
      -> Result<std::vector<std::shared_ptr<storage::PagedTableData>>> {
    std::vector<std::unique_ptr<storage::PagedTableBuilder>> builders;
    builders.reserve(static_cast<size_t>(num_parts));
    for (int64_t p = 0; p < num_parts; ++p) {
      builders.push_back(
          std::make_unique<storage::PagedTableBuilder>(engine, spill_schema));
    }
    const std::unique_ptr<storage::ColumnSource> source =
        storage::MakeColumnSource(std::make_shared<Table>(side), 0);
    for (int64_t w = 0; w < source->num_windows(); ++w) {
      DL2SQL_ASSIGN_OR_RETURN(Table window, source->ReadWindow(w));
      const int64_t base = source->window_start(w);
      std::vector<ColumnHandle> keys;
      for (const auto& [lk, rk] : node.equi_keys) {
        DL2SQL_ASSIGN_OR_RETURN(
            ColumnHandle c, EvalExpr(left_side ? *lk : *rk, window, &ctx));
        keys.push_back(std::move(c));
      }
      std::vector<const Column*> kptrs;
      for (const auto& c : keys) kptrs.push_back(c.get());
      for (int64_t r = 0; r < window.num_rows(); ++r) {
        if (RowKeyHasNull(kptrs, r)) continue;
        std::string key;
        for (const Column* c : kptrs) AppendKeyPart(*c, r, &key);
        const int64_t p = static_cast<int64_t>(
            Hash64(key.data(), key.size()) % static_cast<uint64_t>(num_parts));
        DL2SQL_RETURN_NOT_OK(builders[static_cast<size_t>(p)]->AppendRow(
            {Value::Int(base + r), Value::Blob(key)}));
      }
    }
    std::vector<std::shared_ptr<storage::PagedTableData>> parts;
    parts.reserve(builders.size());
    for (auto& b : builders) {
      DL2SQL_ASSIGN_OR_RETURN(std::shared_ptr<storage::PagedTableData> d,
                              b->Finish());
      spilled_bytes += d->logical_bytes();
      if (d->num_rows() > 0) ++spilled_parts;
      parts.push_back(std::move(d));
    }
    return parts;
  };

  DL2SQL_ASSIGN_OR_RETURN(auto lparts, partition_side(left, true));
  DL2SQL_ASSIGN_OR_RETURN(auto rparts, partition_side(right, false));
  TallySpill(spilled_bytes, spilled_parts);
  static Counter* const grace_counter =
      MetricsRegistry::Global().counter("db.grace_joins");
  grace_counter->Increment();

  // Phase 2: per partition, build a hash table on the optimizer's build side
  // and probe with the other. Only one partition's build map is resident at
  // a time; its bytes are charged on a per-iteration scope.
  const bool build_left = node.join_build_left;
  const auto& bparts = build_left ? lparts : rparts;
  const auto& pparts = build_left ? rparts : lparts;

  std::vector<std::pair<int64_t, int64_t>> pb_pairs;  // (probe row, build row)
  for (int64_t part = 0; part < num_parts; ++part) {
    const auto& bp = bparts[static_cast<size_t>(part)];
    const auto& pp = pparts[static_cast<size_t>(part)];
    if (bp->num_rows() == 0 || pp->num_rows() == 0) continue;
    ScopedMemCharge part_mem(OpScratchTracker(PlanKind::kJoin));
    DL2SQL_ASSIGN_OR_RETURN(std::vector<Column> bcols, bp->Materialize());
    const auto& brows = bcols[0].ints();
    const auto& bkeys = bcols[1].strings();
    std::unordered_map<std::string, std::vector<int64_t>> build;
    build.reserve(brows.size());
    int64_t key_bytes = 0;
    for (size_t i = 0; i < brows.size(); ++i) {
      build[bkeys[i]].push_back(brows[i]);
      key_bytes += static_cast<int64_t>(bkeys[i].size() + 8);
    }
    DL2SQL_RETURN_NOT_OK(part_mem.Charge(
        key_bytes +
        static_cast<int64_t>(build.size() * (sizeof(std::string) +
                                             sizeof(std::vector<int64_t>) +
                                             16))));
    for (int64_t c = 0; c < pp->num_chunks(); ++c) {
      DL2SQL_ASSIGN_OR_RETURN(std::vector<Column> pcols, pp->ReadChunk(c));
      const auto& prow_ids = pcols[0].ints();
      const auto& pkeys = pcols[1].strings();
      for (size_t i = 0; i < prow_ids.size(); ++i) {
        auto it = build.find(pkeys[i]);
        if (it == build.end()) continue;
        for (int64_t b : it->second) pb_pairs.emplace_back(prow_ids[i], b);
        if (static_cast<int64_t>(pb_pairs.size()) > kMaxJoinPairs) {
          return Status::ResourceExhausted("join produced more than ",
                                           kMaxJoinPairs, " pairs");
        }
      }
    }
  }
  DL2SQL_RETURN_NOT_OK(scratch_mem.Charge(static_cast<int64_t>(
      pb_pairs.size() * sizeof(std::pair<int64_t, int64_t>))));
  // Hash partitioning scattered the pairs; the in-memory join emits them
  // probe-ascending, then build-ascending within a probe row (insertion
  // order of the build map's row lists). Both spill files were written in
  // row order, so a global sort on (probe, build) restores exactly that
  // order — the bit-identity contract for join output.
  std::sort(pb_pairs.begin(), pb_pairs.end());

  // Phase 3: emit in bounded slices through paged output, applying the
  // residual condition per slice (it is row-local, so slice-local filtering
  // equals whole-table filtering).
  PagedResultWriter writer(engine, node.output_schema);
  constexpr int64_t kEmitRows = 16384;
  for (size_t start = 0; start < pb_pairs.size();
       start += static_cast<size_t>(kEmitRows)) {
    const size_t end =
        std::min(pb_pairs.size(), start + static_cast<size_t>(kEmitRows));
    std::vector<int64_t> lrows, rrows;
    lrows.reserve(end - start);
    rrows.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      const auto& [p, b] = pb_pairs[i];
      lrows.push_back(build_left ? b : p);
      rrows.push_back(build_left ? p : b);
    }
    Table ltaken = left.TakeRows(lrows);
    Table rtaken = right.TakeRows(rrows);
    std::vector<Column> cols;
    for (int i = 0; i < ltaken.num_columns(); ++i) {
      cols.push_back(ltaken.column(i));
    }
    for (int i = 0; i < rtaken.num_columns(); ++i) {
      cols.push_back(rtaken.column(i));
    }
    DL2SQL_ASSIGN_OR_RETURN(
        Table joined, Table::FromColumns(node.output_schema, std::move(cols)));
    if (node.join_condition != nullptr) {
      DL2SQL_ASSIGN_OR_RETURN(std::vector<int64_t> keep,
                              FilterRows(*node.join_condition, joined, &ctx));
      joined = joined.TakeRows(keep);
    }
    if (joined.num_rows() > 0) {
      DL2SQL_RETURN_NOT_OK(writer.Append(joined));
    }
  }
  DL2SQL_ASSIGN_OR_RETURN(Table out, writer.Finish());
  const double inf = DrainEvalContext(ctx);
  ChargeOperator(costs_, "join", watch.ElapsedSeconds(), inf);
  return out;
}

namespace {

/// Running state for one aggregate over one group.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  double sumsq = 0;
  Value min;
  Value max;
};

/// Folds a thread-local aggregate state into the global one. Count/sum/sumsq
/// are additive; min/max combine by comparison (NULL = no value seen yet).
void MergeAggState(AggState* dst, const AggState& src) {
  dst->count += src.count;
  dst->sum += src.sum;
  dst->sumsq += src.sumsq;
  if (!src.min.is_null() &&
      (dst->min.is_null() || src.min.Compare(dst->min) < 0)) {
    dst->min = src.min;
  }
  if (!src.max.is_null() &&
      (dst->max.is_null() || src.max.Compare(dst->max) > 0)) {
    dst->max = src.max;
  }
}

/// Folds one argument value into an aggregate state. Shared by the in-memory
/// row path and the external (spilling) aggregation so both accumulate in
/// exactly the same order with exactly the same float operations — the
/// bit-identity contract between the two paths rests on this.
Status AccumulateAggValue(AggFunc f, const Value& v, AggState* st) {
  if (f == AggFunc::kCountStar) {
    ++st->count;
    return Status::OK();
  }
  if (v.is_null()) return Status::OK();
  switch (f) {
    case AggFunc::kCount:
      // COUNT over a boolean expression counts TRUE rows (the intent of
      // the paper's count(nUDF(...) = TRUE); ClickHouse would use
      // countIf). COUNT over other types counts non-NULL rows.
      if (v.type() == DataType::kBool) {
        if (v.bool_value()) ++st->count;
      } else {
        ++st->count;
      }
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
    case AggFunc::kStddevSamp: {
      DL2SQL_ASSIGN_OR_RETURN(double d, v.AsDouble());
      ++st->count;
      st->sum += d;
      st->sumsq += d * d;
      break;
    }
    case AggFunc::kMin:
      if (st->min.is_null() || v.Compare(st->min) < 0) st->min = v;
      break;
    case AggFunc::kMax:
      if (st->max.is_null() || v.Compare(st->max) > 0) st->max = v;
      break;
    case AggFunc::kCountStar:
      break;
  }
  return Status::OK();
}

/// Output column type of aggregate `f` over an argument of `arg_type`
/// (kNull when the aggregate takes no argument).
DataType AggOutputType(AggFunc f, DataType arg_type) {
  switch (f) {
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return DataType::kInt64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg_type != DataType::kNull ? arg_type : DataType::kFloat64;
    default:
      return DataType::kFloat64;
  }
}

/// Final value of aggregate `f` from an accumulated state.
Value AggOutputValue(AggFunc f, const AggState& st) {
  switch (f) {
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return Value::Int(st.count);
    case AggFunc::kSum:
      return st.count == 0 ? Value::Null() : Value::Float(st.sum);
    case AggFunc::kAvg:
      return st.count == 0
                 ? Value::Null()
                 : Value::Float(st.sum / static_cast<double>(st.count));
    case AggFunc::kStddevSamp: {
      if (st.count < 2) return Value::Null();
      const double mean = st.sum / static_cast<double>(st.count);
      const double var =
          (st.sumsq - static_cast<double>(st.count) * mean * mean) /
          static_cast<double>(st.count - 1);
      return Value::Float(std::sqrt(std::max(0.0, var)));
    }
    case AggFunc::kMin:
      return st.min;
    case AggFunc::kMax:
      return st.max;
  }
  return Value::Null();
}

}  // namespace

Result<Table> Database::ExecAggregate(const PlanNode& node, Table input) {
  if (input.is_paged()) {
    DL2SQL_ASSIGN_OR_RETURN(bool fits,
                            TryEnsureResident(PlanKind::kAggregate, &input));
    if (!fits) return ExecAggregateExternal(node, input);
  }
  Stopwatch watch;
  EvalContext ctx = MakeEvalContext();

  // Evaluate group keys and aggregate arguments once, vectorized.
  std::vector<ColumnHandle> key_cols;
  for (const auto& k : node.group_keys) {
    DL2SQL_ASSIGN_OR_RETURN(ColumnHandle c, EvalExpr(*k, input, &ctx));
    key_cols.push_back(std::move(c));
  }
  std::vector<ColumnHandle> arg_cols(node.agg_calls.size());
  for (size_t i = 0; i < node.agg_calls.size(); ++i) {
    const Expr& call = *node.agg_calls[i];
    if (call.agg_func != AggFunc::kCountStar) {
      DL2SQL_ASSIGN_OR_RETURN(arg_cols[i],
                              EvalExpr(*call.children[0], input, &ctx));
    }
  }

  std::vector<const Column*> kptrs;
  for (const auto& c : key_cols) kptrs.push_back(c.get());

  if (ctx.vectorized) {
    // Batch-at-a-time path: typed per-group accumulators updated by tight
    // kernels (db/exec/vector_aggregate.h). Falls through to the row path
    // when any aggregate or argument shape is outside the kernel inventory.
    Table vout;
    DL2SQL_ASSIGN_OR_RETURN(
        bool done, vec::TryVectorAggregate(node, key_cols, arg_cols,
                                           input.num_rows(), &ctx, &vout));
    if (done) {
      const double inf = DrainEvalContext(ctx);
      ChargeOperator(costs_, "groupby", watch.ElapsedSeconds(), inf);
      return vout;
    }
  }

  struct Group {
    int64_t first_row;
    std::vector<AggState> aggs;
  };

  const int64_t n = input.num_rows();

  // Per-row accumulation shared by both key representations.
  auto accumulate_row = [&](Group* g, int64_t row) -> Status {
    for (size_t a = 0; a < node.agg_calls.size(); ++a) {
      const AggFunc f = node.agg_calls[a]->agg_func;
      DL2SQL_RETURN_NOT_OK(AccumulateAggValue(
          f,
          f == AggFunc::kCountStar ? Value::Null() : arg_cols[a]->GetValue(row),
          &g->aggs[a]));
    }
    return Status::OK();
  };

  // Groups in first-seen order, referenced by index from either key map.
  // Grouping state is charged against op.aggregate once the group count is
  // known (post-merge for the parallel mode) and released on return.
  ScopedMemCharge scratch_mem(OpScratchTracker(PlanKind::kAggregate));
  std::vector<Group> groups;

  // Generic grouping driver over one key representation. Serial mode fills
  // `groups` in first-seen order directly. Parallel mode gives every pool
  // worker its own hash-index + group vector (no shared mutable state inside
  // the morsel loop), then merges the thread-local states once: matching
  // groups fold their AggStates together and keep the minimum first_row, and
  // a final sort by first_row restores the serial first-seen order for any
  // thread count.
  auto run_grouping = [&](auto make_index, auto key_of) -> Status {
    const size_t num_aggs = node.agg_calls.size();
    const bool parallel = ctx.pool != nullptr && ctx.pool->num_threads() > 1 &&
                          n > ctx.morsel_size;
    if (!parallel) {
      auto index = make_index();
      index.reserve(static_cast<size_t>(n) / 4 + 8);
      for (int64_t row = 0; row < n; ++row) {
        auto [it, inserted] = index.try_emplace(key_of(row), groups.size());
        if (inserted) {
          groups.push_back(Group{row, std::vector<AggState>(num_aggs)});
        }
        DL2SQL_RETURN_NOT_OK(accumulate_row(&groups[it->second], row));
      }
      return Status::OK();
    }
    const int workers = ctx.pool->num_threads();
    std::vector<std::vector<Group>> wgroups(static_cast<size_t>(workers));
    std::vector<decltype(make_index())> windex(static_cast<size_t>(workers));
    DL2SQL_RETURN_NOT_OK(ctx.pool->ParallelForMorsel(
        n, ctx.morsel_size, [&](int64_t bgn, int64_t end, int w) -> Status {
          auto& local_groups = wgroups[static_cast<size_t>(w)];
          auto& local_index = windex[static_cast<size_t>(w)];
          for (int64_t row = bgn; row < end; ++row) {
            auto [it, inserted] =
                local_index.try_emplace(key_of(row), local_groups.size());
            if (inserted) {
              local_groups.push_back(Group{row, std::vector<AggState>(num_aggs)});
            }
            DL2SQL_RETURN_NOT_OK(
                accumulate_row(&local_groups[it->second], row));
          }
          return Status::OK();
        }));
    auto merged = make_index();
    for (auto& local_groups : wgroups) {
      for (Group& g : local_groups) {
        auto [it, inserted] =
            merged.try_emplace(key_of(g.first_row), groups.size());
        if (inserted) {
          groups.push_back(std::move(g));
          continue;
        }
        Group& dst = groups[it->second];
        dst.first_row = std::min(dst.first_row, g.first_row);
        for (size_t a = 0; a < num_aggs; ++a) {
          MergeAggState(&dst.aggs[a], g.aggs[a]);
        }
      }
    }
    std::sort(groups.begin(), groups.end(),
              [](const Group& a, const Group& b) {
                return a.first_row < b.first_row;
              });
    return Status::OK();
  };

  auto int_keys_no_nulls = [&](size_t count) {
    if (kptrs.size() != count) return false;
    for (const Column* k : kptrs) {
      if (k->type() != DataType::kInt64 || k->HasNulls()) return false;
    }
    return true;
  };
  if (int_keys_no_nulls(1)) {
    const auto& keys = kptrs[0]->ints();
    DL2SQL_RETURN_NOT_OK(run_grouping(
        [] { return std::unordered_map<int64_t, size_t>(); },
        [&](int64_t row) { return keys[static_cast<size_t>(row)]; }));
  } else if (int_keys_no_nulls(2)) {
    // Batched pipelines group on (BatchID, key) pairs.
    const auto& k0 = kptrs[0]->ints();
    const auto& k1 = kptrs[1]->ints();
    DL2SQL_RETURN_NOT_OK(run_grouping(
        [] { return std::unordered_map<Int2Key, size_t, Int2KeyHash>(); },
        [&](int64_t row) {
          const size_t r = static_cast<size_t>(row);
          return Int2Key{k0[r], k1[r]};
        }));
  } else {
    DL2SQL_RETURN_NOT_OK(run_grouping(
        [] { return std::unordered_map<std::string, size_t>(); },
        [&](int64_t row) {
          return kptrs.empty() ? std::string() : EncodeRowKey(kptrs, row);
        }));
  }

  // Global aggregate over empty input still yields one row.
  if (kptrs.empty() && groups.empty()) {
    groups.push_back(Group{-1, std::vector<AggState>(node.agg_calls.size())});
  }
  DL2SQL_RETURN_NOT_OK(scratch_mem.Charge(static_cast<int64_t>(
      groups.size() *
      (sizeof(Group) + 16 +
       node.agg_calls.size() * sizeof(AggState)))));

  // Emit: key columns then aggregate columns.
  std::vector<Column> out_cols;
  TableSchema out_schema;
  for (size_t k = 0; k < key_cols.size(); ++k) {
    Column c(key_cols[k]->type());
    c.Reserve(static_cast<int64_t>(groups.size()));
    for (const Group& g : groups) {
      DL2SQL_RETURN_NOT_OK(c.Append(key_cols[k]->GetValue(g.first_row)));
    }
    out_schema.AddField({node.group_names[k], c.type()});
    out_cols.push_back(std::move(c));
  }
  for (size_t a = 0; a < node.agg_calls.size(); ++a) {
    const AggFunc f = node.agg_calls[a]->agg_func;
    Column c(AggOutputType(
        f, arg_cols[a] != nullptr ? arg_cols[a]->type() : DataType::kNull));
    c.Reserve(static_cast<int64_t>(groups.size()));
    for (const Group& g : groups) {
      DL2SQL_RETURN_NOT_OK(c.Append(AggOutputValue(f, g.aggs[a])));
    }
    out_schema.AddField({node.agg_names[a], c.type()});
    out_cols.push_back(std::move(c));
  }

  const double inf = DrainEvalContext(ctx);
  DL2SQL_ASSIGN_OR_RETURN(
      Table out, Table::FromColumns(std::move(out_schema), std::move(out_cols)));
  ChargeOperator(costs_, "groupby", watch.ElapsedSeconds(), inf);
  return out;
}

Result<Table> Database::ExecAggregateExternal(const PlanNode& node,
                                              const Table& input) {
  Stopwatch watch;
  EvalContext ctx = MakeEvalContext();
  // Final group states live until emit and bill against op.aggregate; each
  // partition's hash index is charged on its own per-iteration scope.
  ScopedMemCharge scratch_mem(OpScratchTracker(PlanKind::kAggregate));
  const std::shared_ptr<storage::StorageEngine>& engine =
      input.paged()->shared_engine();

  const size_t num_keys = node.group_keys.size();
  const size_t num_aggs = node.agg_calls.size();
  // Aggregate arguments pack densely into the spill rows; COUNT(*) has none.
  std::vector<int> arg_slot(num_aggs, -1);
  int num_args = 0;
  for (size_t a = 0; a < num_aggs; ++a) {
    if (node.agg_calls[a]->agg_func != AggFunc::kCountStar) {
      arg_slot[a] = num_args++;
    }
  }
  const int64_t num_parts =
      num_keys == 0
          ? 1
          : std::max<int64_t>(1, engine->options().spill_partitions);

  // Phase 1: partition by key hash. Each spill row is
  // (global row id, key values..., argument values...); same-key rows land
  // in one partition in global row order, so per-group accumulation in
  // phase 2 replays exactly the serial order — float-identical results.
  std::vector<std::unique_ptr<storage::PagedTableBuilder>> builders;
  std::vector<DataType> key_types, arg_types;
  const std::unique_ptr<storage::ColumnSource> source =
      storage::MakeColumnSource(std::make_shared<Table>(input), 0);
  for (int64_t w = 0; w < source->num_windows(); ++w) {
    DL2SQL_ASSIGN_OR_RETURN(Table window, source->ReadWindow(w));
    const int64_t base = source->window_start(w);
    std::vector<ColumnHandle> key_cols;
    for (const auto& k : node.group_keys) {
      DL2SQL_ASSIGN_OR_RETURN(ColumnHandle c, EvalExpr(*k, window, &ctx));
      key_cols.push_back(std::move(c));
    }
    std::vector<ColumnHandle> arg_cols(num_aggs);
    for (size_t a = 0; a < num_aggs; ++a) {
      if (arg_slot[a] < 0) continue;
      DL2SQL_ASSIGN_OR_RETURN(
          arg_cols[a], EvalExpr(*node.agg_calls[a]->children[0], window, &ctx));
    }
    if (builders.empty()) {
      // Spill layout discovered from the first window's expression types.
      TableSchema spill_schema;
      spill_schema.AddField({"__row", DataType::kInt64});
      for (size_t k = 0; k < num_keys; ++k) {
        key_types.push_back(key_cols[k]->type());
        spill_schema.AddField(
            {"__key" + std::to_string(k), key_cols[k]->type()});
      }
      for (size_t a = 0; a < num_aggs; ++a) {
        if (arg_slot[a] < 0) continue;
        arg_types.push_back(arg_cols[a]->type());
        spill_schema.AddField(
            {"__arg" + std::to_string(arg_slot[a]), arg_cols[a]->type()});
      }
      builders.reserve(static_cast<size_t>(num_parts));
      for (int64_t p = 0; p < num_parts; ++p) {
        builders.push_back(std::make_unique<storage::PagedTableBuilder>(
            engine, spill_schema));
      }
    }
    std::vector<const Column*> kptrs;
    for (const auto& c : key_cols) kptrs.push_back(c.get());
    for (int64_t r = 0; r < window.num_rows(); ++r) {
      int64_t p = 0;
      if (num_keys > 0) {
        const std::string key = EncodeRowKey(kptrs, r);
        p = static_cast<int64_t>(Hash64(key.data(), key.size()) %
                                 static_cast<uint64_t>(num_parts));
      }
      std::vector<Value> row;
      row.reserve(1 + num_keys + static_cast<size_t>(num_args));
      row.push_back(Value::Int(base + r));
      for (const Column* c : kptrs) row.push_back(c->GetValue(r));
      for (size_t a = 0; a < num_aggs; ++a) {
        if (arg_slot[a] >= 0) row.push_back(arg_cols[a]->GetValue(r));
      }
      DL2SQL_RETURN_NOT_OK(builders[static_cast<size_t>(p)]->AppendRow(row));
    }
  }
  if (builders.empty()) {
    return Status::InternalError("external aggregation over empty paged input");
  }

  // Phase 2: per partition, group and accumulate in spill order. Group keys
  // are re-encoded from the stored values — AppendKeyPart's canonical form
  // is stable across the round trip, so grouping matches the in-memory path.
  struct SpillGroup {
    int64_t first_row;
    std::vector<Value> keys;
    std::vector<AggState> aggs;
  };
  std::vector<SpillGroup> groups;
  int64_t spilled_bytes = 0;
  int64_t spilled_parts = 0;
  for (auto& b : builders) {
    DL2SQL_ASSIGN_OR_RETURN(std::shared_ptr<storage::PagedTableData> part,
                            b->Finish());
    if (part->num_rows() == 0) continue;
    spilled_bytes += part->logical_bytes();
    ++spilled_parts;
    ScopedMemCharge part_mem(OpScratchTracker(PlanKind::kAggregate));
    std::unordered_map<std::string, size_t> index;
    const size_t part_first_group = groups.size();
    int64_t part_key_bytes = 0;
    for (int64_t c = 0; c < part->num_chunks(); ++c) {
      DL2SQL_ASSIGN_OR_RETURN(std::vector<Column> cols, part->ReadChunk(c));
      std::vector<const Column*> kptrs;
      for (size_t k = 0; k < num_keys; ++k) kptrs.push_back(&cols[1 + k]);
      for (int64_t r = 0; r < static_cast<int64_t>(cols[0].size()); ++r) {
        const std::string key =
            num_keys == 0 ? std::string() : EncodeRowKey(kptrs, r);
        auto [it, inserted] = index.try_emplace(key, groups.size());
        if (inserted) {
          SpillGroup g;
          g.first_row = cols[0].ints()[static_cast<size_t>(r)];
          for (size_t k = 0; k < num_keys; ++k) {
            g.keys.push_back(cols[1 + k].GetValue(r));
          }
          g.aggs.resize(num_aggs);
          groups.push_back(std::move(g));
          part_key_bytes += static_cast<int64_t>(key.size());
        }
        SpillGroup& g = groups[it->second];
        for (size_t a = 0; a < num_aggs; ++a) {
          DL2SQL_RETURN_NOT_OK(AccumulateAggValue(
              node.agg_calls[a]->agg_func,
              arg_slot[a] < 0
                  ? Value::Null()
                  : cols[1 + num_keys + static_cast<size_t>(arg_slot[a])]
                        .GetValue(r),
              &g.aggs[a]));
        }
      }
      DL2SQL_RETURN_NOT_OK(part_mem.Charge(
          part_key_bytes +
          static_cast<int64_t>((groups.size() - part_first_group) *
                               (sizeof(size_t) + 48))));
      part_key_bytes = 0;
    }
  }
  TallySpill(spilled_bytes, spilled_parts);
  static Counter* const external_agg_counter =
      MetricsRegistry::Global().counter("db.external_aggs");
  external_agg_counter->Increment();

  // Partition order scattered the groups; serial emit order is first-seen,
  // i.e. ascending first_row.
  std::sort(groups.begin(), groups.end(),
            [](const SpillGroup& a, const SpillGroup& b) {
              return a.first_row < b.first_row;
            });
  // Global aggregate over empty input still yields one row.
  if (num_keys == 0 && groups.empty()) {
    groups.push_back(SpillGroup{-1, {}, std::vector<AggState>(num_aggs)});
  }
  DL2SQL_RETURN_NOT_OK(scratch_mem.Charge(static_cast<int64_t>(
      groups.size() * (sizeof(SpillGroup) + num_aggs * sizeof(AggState)))));

  std::vector<Column> out_cols;
  TableSchema out_schema;
  for (size_t k = 0; k < num_keys; ++k) {
    Column c(key_types[k]);
    c.Reserve(static_cast<int64_t>(groups.size()));
    for (const SpillGroup& g : groups) {
      DL2SQL_RETURN_NOT_OK(c.Append(g.keys[k]));
    }
    out_schema.AddField({node.group_names[k], c.type()});
    out_cols.push_back(std::move(c));
  }
  for (size_t a = 0; a < num_aggs; ++a) {
    const AggFunc f = node.agg_calls[a]->agg_func;
    Column c(AggOutputType(
        f, arg_slot[a] >= 0 ? arg_types[static_cast<size_t>(arg_slot[a])]
                            : DataType::kNull));
    c.Reserve(static_cast<int64_t>(groups.size()));
    for (const SpillGroup& g : groups) {
      DL2SQL_RETURN_NOT_OK(c.Append(AggOutputValue(f, g.aggs[a])));
    }
    out_schema.AddField({node.agg_names[a], c.type()});
    out_cols.push_back(std::move(c));
  }

  const double inf = DrainEvalContext(ctx);
  DL2SQL_ASSIGN_OR_RETURN(
      Table out, Table::FromColumns(std::move(out_schema), std::move(out_cols)));
  ChargeOperator(costs_, "groupby", watch.ElapsedSeconds(), inf);
  return out;
}

Result<Table> Database::ExecSort(const PlanNode& node, Table input) {
  if (input.is_paged()) {
    DL2SQL_ASSIGN_OR_RETURN(bool fits,
                            TryEnsureResident(PlanKind::kSort, &input));
    if (!fits) {
      return Status::ResourceExhausted(
          "ORDER BY input (", input.ByteSize(),
          " bytes) exceeds the query memory budget; spillable sort is not "
          "implemented yet (see ROADMAP)");
    }
  }
  Stopwatch watch;
  EvalContext ctx = MakeEvalContext();
  std::vector<ColumnHandle> keys;
  for (const auto& k : node.sort_keys) {
    DL2SQL_ASSIGN_OR_RETURN(ColumnHandle c, EvalExpr(*k, input, &ctx));
    keys.push_back(std::move(c));
  }
  std::vector<int64_t> idx(static_cast<size_t>(input.num_rows()));
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int64_t>(i);
  std::stable_sort(idx.begin(), idx.end(), [&](int64_t a, int64_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const int c = keys[k]->GetValue(a).Compare(keys[k]->GetValue(b));
      if (c != 0) return node.sort_ascending[k] ? c < 0 : c > 0;
    }
    return false;
  });
  Table out = input.TakeRows(idx);
  const double inf = DrainEvalContext(ctx);
  ChargeOperator(costs_, "sort", watch.ElapsedSeconds(), inf);
  return out;
}

// ------------------------------------------------------------- statements ----

Result<Table> Database::ExecCreateTable(const CreateTableStmt& stmt) {
  if (stmt.is_view) {
    if (stmt.as_select == nullptr) {
      return Status::InvalidArgument("CREATE VIEW requires AS SELECT");
    }
    DL2SQL_RETURN_NOT_OK(
        catalog_.CreateView(stmt.name, stmt.as_select, stmt.or_replace));
    return Table{};
  }
  if (stmt.as_select != nullptr) {
    if (stmt.if_not_exists && catalog_.HasTable(stmt.name)) return Table{};
    DL2SQL_ASSIGN_OR_RETURN(Table result, ExecuteSelect(*stmt.as_select));
    DL2SQL_RETURN_NOT_OK(MaybePageOut(&result));
    DL2SQL_RETURN_NOT_OK(catalog_.CreateTable(
        stmt.name, std::make_shared<Table>(std::move(result)), stmt.temporary,
        stmt.if_not_exists));
    return Table{};
  }
  Table t{TableSchema(stmt.columns)};
  DL2SQL_RETURN_NOT_OK(catalog_.CreateTable(stmt.name,
                                            std::make_shared<Table>(std::move(t)),
                                            stmt.temporary, stmt.if_not_exists));
  return Table{};
}

namespace {

/// System tables are scan-only; DML/DDL against them gets a specific error
/// instead of GetTable's misleading NotFound.
Status CheckNotSystemTable(const Catalog& catalog, const std::string& name) {
  if (catalog.HasVirtualTable(name) || Catalog::IsSystemName(name)) {
    return Status::InvalidArgument("system tables are read-only: '", name,
                                   "'");
  }
  return Status::OK();
}

}  // namespace

Result<Table> Database::ExecInsert(const InsertStmt& stmt) {
  DL2SQL_RETURN_NOT_OK(CheckNotSystemTable(catalog_, stmt.table));
  DL2SQL_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(stmt.table));
  // Column mapping: explicit list or positional.
  std::vector<int> targets;
  if (stmt.columns.empty()) {
    for (int i = 0; i < table->num_columns(); ++i) targets.push_back(i);
  } else {
    for (const auto& c : stmt.columns) {
      DL2SQL_ASSIGN_OR_RETURN(int idx, table->schema().Find(c));
      targets.push_back(idx);
    }
  }

  auto append_row = [&](const std::vector<Value>& provided) -> Status {
    if (provided.size() != targets.size()) {
      return Status::InvalidArgument("INSERT arity mismatch: ", provided.size(),
                                     " values vs ", targets.size(), " columns");
    }
    std::vector<Value> row(static_cast<size_t>(table->num_columns()),
                           Value::Null());
    for (size_t i = 0; i < targets.size(); ++i) {
      row[static_cast<size_t>(targets[i])] = provided[i];
    }
    return table->AppendRow(row);
  };

  int64_t inserted = 0;
  if (stmt.select != nullptr) {
    DL2SQL_ASSIGN_OR_RETURN(Table src, ExecuteSelect(*stmt.select));
    for (int64_t r = 0; r < src.num_rows(); ++r) {
      DL2SQL_RETURN_NOT_OK(append_row(src.GetRow(r)));
      ++inserted;
    }
  } else {
    EvalContext ctx = MakeEvalContext();
    for (const auto& row_exprs : stmt.rows) {
      std::vector<Value> vals;
      vals.reserve(row_exprs.size());
      for (const auto& e : row_exprs) {
        DL2SQL_ASSIGN_OR_RETURN(Value v, EvalScalar(*e, &ctx));
        vals.push_back(std::move(v));
      }
      DL2SQL_RETURN_NOT_OK(append_row(vals));
      ++inserted;
    }
    DrainEvalContext(ctx);
  }
  DL2SQL_RETURN_NOT_OK(MaybePageOut(table.get()));
  catalog_.InvalidateStats(stmt.table);
  Table out;
  out.SetZeroColumnRows(inserted);
  return out;
}

Result<Table> Database::ExecUpdate(const UpdateStmt& stmt) {
  DL2SQL_RETURN_NOT_OK(CheckNotSystemTable(catalog_, stmt.table));
  DL2SQL_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(stmt.table));
  // In-place column writes need resident storage; big tables page back out
  // below once the mutation is done.
  DL2SQL_RETURN_NOT_OK(table->EnsureResident());
  EvalContext ctx = MakeEvalContext();

  std::vector<int64_t> rows;
  if (stmt.where != nullptr) {
    ExprPtr pred = stmt.where->Clone();
    DL2SQL_RETURN_NOT_OK(BindExpr(pred.get(), table->schema()));
    DL2SQL_ASSIGN_OR_RETURN(rows, FilterRows(*pred, *table, &ctx));
  } else {
    rows.resize(static_cast<size_t>(table->num_rows()));
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<int64_t>(i);
  }

  for (const auto& [col_name, expr] : stmt.assignments) {
    DL2SQL_ASSIGN_OR_RETURN(int col_idx, table->schema().Find(col_name));
    ExprPtr bound = expr->Clone();
    DL2SQL_RETURN_NOT_OK(BindExpr(bound.get(), table->schema()));
    DL2SQL_ASSIGN_OR_RETURN(ColumnHandle values, EvalExpr(*bound, *table, &ctx));
    Column& target = table->mutable_column(col_idx);
    for (int64_t r : rows) {
      const Value v = values->GetValue(r);
      switch (target.type()) {
        case DataType::kInt64: {
          DL2SQL_ASSIGN_OR_RETURN(int64_t iv, v.AsInt());
          target.mutable_ints()[static_cast<size_t>(r)] = iv;
          break;
        }
        case DataType::kFloat64: {
          DL2SQL_ASSIGN_OR_RETURN(double dv, v.AsDouble());
          target.mutable_floats()[static_cast<size_t>(r)] = dv;
          break;
        }
        case DataType::kBool:
          if (v.type() != DataType::kBool) {
            return Status::TypeError("UPDATE: expected BOOL for ", col_name);
          }
          target.mutable_bools()[static_cast<size_t>(r)] =
              v.bool_value() ? 1 : 0;
          break;
        case DataType::kString:
        case DataType::kBlob:
          if (v.type() != DataType::kString && v.type() != DataType::kBlob) {
            return Status::TypeError("UPDATE: expected STRING for ", col_name);
          }
          target.mutable_strings()[static_cast<size_t>(r)] = v.string_value();
          break;
        case DataType::kNull:
          return Status::TypeError("UPDATE on null-typed column");
      }
    }
  }
  DrainEvalContext(ctx);
  DL2SQL_RETURN_NOT_OK(MaybePageOut(table.get()));
  catalog_.InvalidateStats(stmt.table);
  Table out;
  out.SetZeroColumnRows(static_cast<int64_t>(rows.size()));
  return out;
}

Result<Table> Database::ExecDelete(const DeleteStmt& stmt) {
  DL2SQL_RETURN_NOT_OK(CheckNotSystemTable(catalog_, stmt.table));
  DL2SQL_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(stmt.table));
  DL2SQL_RETURN_NOT_OK(table->EnsureResident());
  EvalContext ctx = MakeEvalContext();
  std::vector<int64_t> keep;
  int64_t deleted = 0;
  if (stmt.where == nullptr) {
    deleted = table->num_rows();
  } else {
    ExprPtr pred = stmt.where->Clone();
    DL2SQL_RETURN_NOT_OK(BindExpr(pred.get(), table->schema()));
    DL2SQL_ASSIGN_OR_RETURN(std::vector<int64_t> drop,
                            FilterRows(*pred, *table, &ctx));
    std::vector<uint8_t> dropped(static_cast<size_t>(table->num_rows()), 0);
    for (int64_t r : drop) dropped[static_cast<size_t>(r)] = 1;
    for (int64_t r = 0; r < table->num_rows(); ++r) {
      if (dropped[static_cast<size_t>(r)] == 0) keep.push_back(r);
    }
    deleted = static_cast<int64_t>(drop.size());
  }
  *table = table->TakeRows(keep);
  DrainEvalContext(ctx);
  DL2SQL_RETURN_NOT_OK(MaybePageOut(table.get()));
  catalog_.InvalidateStats(stmt.table);
  Table out;
  out.SetZeroColumnRows(deleted);
  return out;
}

Result<Table> Database::ExecDrop(const DropStmt& stmt) {
  DL2SQL_RETURN_NOT_OK(CheckNotSystemTable(catalog_, stmt.name));
  if (stmt.is_view) {
    DL2SQL_RETURN_NOT_OK(catalog_.DropView(stmt.name, stmt.if_exists));
  } else if (catalog_.HasView(stmt.name)) {
    // DROP TABLE on a view is tolerated (the DL2SQL pipelines recreate views
    // and tables interchangeably between layers).
    DL2SQL_RETURN_NOT_OK(catalog_.DropView(stmt.name, stmt.if_exists));
  } else {
    DL2SQL_RETURN_NOT_OK(catalog_.DropTable(stmt.name, stmt.if_exists));
  }
  return Table{};
}

}  // namespace dl2sql::db
