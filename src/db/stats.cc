#include "db/stats.h"

#include <unordered_set>

namespace dl2sql::db {

TableStats AnalyzeTable(const Table& table) {
  TableStats stats;
  stats.num_rows = table.num_rows();
  for (int ci = 0; ci < table.num_columns(); ++ci) {
    const Column& col = table.column(ci);
    ColumnStats cs;
    const int64_t n = col.size();
    switch (col.type()) {
      case DataType::kInt64: {
        std::unordered_set<int64_t> distinct;
        for (int64_t i = 0; i < n; ++i) {
          if (!col.IsValid(i)) {
            ++cs.num_nulls;
            continue;
          }
          const int64_t v = col.ints()[static_cast<size_t>(i)];
          distinct.insert(v);
          const double d = static_cast<double>(v);
          if (!cs.min || d < *cs.min) cs.min = d;
          if (!cs.max || d > *cs.max) cs.max = d;
        }
        cs.num_distinct = static_cast<int64_t>(distinct.size());
        break;
      }
      case DataType::kFloat64: {
        std::unordered_set<double> distinct;
        for (int64_t i = 0; i < n; ++i) {
          if (!col.IsValid(i)) {
            ++cs.num_nulls;
            continue;
          }
          const double v = col.floats()[static_cast<size_t>(i)];
          distinct.insert(v);
          if (!cs.min || v < *cs.min) cs.min = v;
          if (!cs.max || v > *cs.max) cs.max = v;
        }
        cs.num_distinct = static_cast<int64_t>(distinct.size());
        break;
      }
      case DataType::kBool: {
        bool saw_true = false;
        bool saw_false = false;
        for (int64_t i = 0; i < n; ++i) {
          if (!col.IsValid(i)) {
            ++cs.num_nulls;
            continue;
          }
          (col.bools()[static_cast<size_t>(i)] != 0 ? saw_true : saw_false) =
              true;
        }
        cs.num_distinct = (saw_true ? 1 : 0) + (saw_false ? 1 : 0);
        break;
      }
      case DataType::kString:
      case DataType::kBlob: {
        std::unordered_set<std::string> distinct;
        for (int64_t i = 0; i < n; ++i) {
          if (!col.IsValid(i)) {
            ++cs.num_nulls;
            continue;
          }
          distinct.insert(col.strings()[static_cast<size_t>(i)]);
        }
        cs.num_distinct = static_cast<int64_t>(distinct.size());
        break;
      }
      case DataType::kNull:
        cs.num_nulls = n;
        break;
    }
    stats.columns[table.schema().field(ci).name] = cs;
  }
  return stats;
}

}  // namespace dl2sql::db
