/// \file persistence.h
/// \brief Database snapshots: save/load the catalog's base tables (and view
/// definitions) to a single file using the columnar codec.
///
/// Edge deployments in the paper's setting collect sensor data continuously;
/// a snapshot format lets a lindb instance survive restarts and lets
/// experiment datasets be generated once and reused. Temporary tables are
/// not persisted. Views are stored as their SQL definition and re-parsed on
/// load.
#pragma once

#include <string>

#include "db/database.h"

namespace dl2sql::db {

/// Serializes all non-temporary tables and views into `bytes`.
Result<std::string> SnapshotDatabase(const Database& db);

/// Restores tables/views from SnapshotDatabase output into `db` (existing
/// same-named tables are replaced).
Status RestoreDatabase(const std::string& bytes, Database* db);

/// File convenience wrappers.
Status SaveDatabase(const Database& db, const std::string& path);
Status LoadDatabase(const std::string& path, Database* db);

/// Renders a view definition back to SQL (used by the snapshot writer; also
/// handy for SHOW CREATE-style introspection).
std::string SelectToSql(const SelectStmt& stmt);

/// Renders an expression to SQL (round-trips through the parser).
std::string ExprToSql(const Expr& e);

}  // namespace dl2sql::db
