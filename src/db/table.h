/// \file table.h
/// \brief Table: an in-memory columnar relation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/column.h"
#include "db/types.h"

namespace dl2sql::db {

/// \brief In-memory columnar table. Both base tables (catalog-owned) and
/// intermediate operator results use this representation, mirroring the
/// materialize-per-operator execution style of our engine.
class Table {
 public:
  Table() = default;
  explicit Table(TableSchema schema);

  /// Builds a table directly from columns (sizes must agree).
  static Result<Table> FromColumns(TableSchema schema,
                                   std::vector<Column> columns);

  const TableSchema& schema() const { return schema_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const {
    return columns_.empty() ? zero_column_rows_ : columns_[0].size();
  }

  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  Column& mutable_column(int i) { return columns_[static_cast<size_t>(i)]; }

  /// Column by (possibly qualified) name.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Appends a full row of values (one per column, type-checked).
  Status AppendRow(const std::vector<Value>& row);

  /// Reads a full row.
  std::vector<Value> GetRow(int64_t i) const;

  /// Appends all rows of `other` (schemas must have identical types).
  Status AppendTable(const Table& other);

  /// New table with only the given rows, in order.
  Table TakeRows(const std::vector<int64_t>& indices) const;

  /// Renames fields (e.g. to apply an alias qualification); count must match.
  Status RenameFields(const std::vector<std::string>& names);

  /// Approximate in-memory payload bytes.
  uint64_t ByteSize() const;

  /// Pretty-prints up to `max_rows` rows (for examples and debugging).
  std::string ToString(int64_t max_rows = 20) const;

  /// Used by zero-column results (e.g. COUNT-only aggregates handle columns,
  /// but DDL statements return row-count-only tables).
  void SetZeroColumnRows(int64_t n) { zero_column_rows_ = n; }

 private:
  TableSchema schema_;
  std::vector<Column> columns_;
  int64_t zero_column_rows_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace dl2sql::db
