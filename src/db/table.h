/// \file table.h
/// \brief Table: an in-memory columnar relation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "db/column.h"
#include "db/types.h"

namespace dl2sql::db {

namespace storage {
class PagedTableData;
class StorageEngine;
}  // namespace storage

/// \brief Columnar table. Both base tables (catalog-owned) and intermediate
/// operator results use this representation, mirroring the
/// materialize-per-operator execution style of our engine.
///
/// A table is either *resident* (columns in memory, the default and the only
/// form in in-memory storage mode) or *paged* (rows live in a
/// storage::PagedTableData backing; columns_ is empty). Paged tables are
/// immutable snapshots: row-level readers (GetRow, TakeRows, ToString)
/// transparently decode the needed chunks, while mutators either auto-heal
/// by materializing first (AppendRow, AppendTable) or require the caller to
/// EnsureResident() (column accessors DL2SQL_CHECK residency). Copying a
/// paged table shares the backing; healing a copy never affects the others.
class Table {
 public:
  Table() = default;
  explicit Table(TableSchema schema);

  /// Builds a table directly from columns (sizes must agree).
  static Result<Table> FromColumns(TableSchema schema,
                                   std::vector<Column> columns);

  /// Wraps a finished paged backing (storage::PagedTableBuilder::Finish).
  static Table FromPaged(TableSchema schema,
                         std::shared_ptr<storage::PagedTableData> paged);

  const TableSchema& schema() const { return schema_; }
  int num_columns() const {
    return paged_ != nullptr ? schema_.num_fields()
                             : static_cast<int>(columns_.size());
  }
  int64_t num_rows() const {
    if (paged_ != nullptr) return PagedRows();
    return columns_.empty() ? zero_column_rows_ : columns_[0].size();
  }

  /// \name Residency
  /// @{
  bool is_paged() const { return paged_ != nullptr; }
  const std::shared_ptr<storage::PagedTableData>& paged() const {
    return paged_;
  }

  /// Decodes the paged backing into resident columns and drops it (no-op on
  /// resident tables). Required before any direct column access or mutation.
  Status EnsureResident();

  /// Resident copy of this table; `*this` unchanged. Cheap (COW) when
  /// already resident.
  Result<Table> Materialize() const;

  /// Replaces resident columns with a paged backing built through `engine`
  /// (no-op if already paged). Results stay bit-identical: the slice codec
  /// is lossless.
  Status PageOut(const std::shared_ptr<storage::StorageEngine>& engine);

  /// Bytes held in memory right now: ByteSize() when resident, 0 for the
  /// paged form (its frames are billed to the buffer pool, not the query).
  uint64_t ResidentBytes() const { return paged_ != nullptr ? 0 : ByteSize(); }
  /// @}

  const Column& column(int i) const {
    DL2SQL_DCHECK(paged_ == nullptr) << "column access on a paged table";
    return columns_[static_cast<size_t>(i)];
  }
  Column& mutable_column(int i) {
    DL2SQL_DCHECK(paged_ == nullptr) << "column access on a paged table";
    return columns_[static_cast<size_t>(i)];
  }

  /// Column by (possibly qualified) name. Resident tables only.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Appends a full row of values (one per column, type-checked).
  /// Paged tables auto-heal to resident first.
  Status AppendRow(const std::vector<Value>& row);

  /// Reads a full row (decodes the row's chunk when paged).
  std::vector<Value> GetRow(int64_t i) const;

  /// Appends all rows of `other` (schemas must have identical types).
  /// Either side may be paged; `*this` becomes/stays resident.
  Status AppendTable(const Table& other);

  /// New resident table with only the given rows, in order. Paged tables
  /// gather through the chunk codec (I/O failure aborts — the backing file
  /// is process-private and unlinked, so read errors are unrecoverable).
  Table TakeRows(const std::vector<int64_t>& indices) const;

  /// Renames fields (e.g. to apply an alias qualification); count must match.
  Status RenameFields(const std::vector<std::string>& names);

  /// Logical payload bytes: resident heap bytes, or the resident-equivalent
  /// size of the paged backing. Mode-independent, so catalog accounting and
  /// system.tables report the same numbers either way.
  uint64_t ByteSize() const;

  /// Pretty-prints up to `max_rows` rows (for examples and debugging).
  std::string ToString(int64_t max_rows = 20) const;

  /// Used by zero-column results (e.g. COUNT-only aggregates handle columns,
  /// but DDL statements return row-count-only tables).
  void SetZeroColumnRows(int64_t n) { zero_column_rows_ = n; }

 private:
  int64_t PagedRows() const;

  TableSchema schema_;
  std::vector<Column> columns_;
  int64_t zero_column_rows_ = 0;
  std::shared_ptr<storage::PagedTableData> paged_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace dl2sql::db
