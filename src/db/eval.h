/// \file eval.h
/// \brief Vectorized expression evaluation over columnar tables.
#pragma once

#include <functional>
#include <memory>

#include "common/timer.h"
#include "db/expr.h"
#include "db/table.h"
#include "db/udf.h"

namespace dl2sql {
class ShardedLruCache;
class ThreadPool;
}

namespace dl2sql::db {

/// \brief Interception point for batched neural-UDF invocations.
///
/// When a sink is wired into the EvalContext, the batched-nUDF evaluator
/// hands every cache-miss batch to the sink instead of calling the UDF body
/// directly; the sink decides how to actually invoke `fn` (the serving
/// layer's cross-query coalescer merges rows from concurrently running
/// queries into shared batches). Only neural UDFs that are `parallel_safe`
/// and carry a non-zero model fingerprint are routed — those are exactly the
/// bodies that are pure per-row functions, so regrouping rows across queries
/// cannot change any per-row result.
///
/// Contract: the sink returns exactly rows.size() values, in row order, each
/// identical to what `fn` would have produced for that row. The sink owns the
/// nudf.batches accounting for the invocations it performs (the evaluator
/// counts batches only on the direct path).
class NudfBatchSink {
 public:
  virtual ~NudfBatchSink() = default;

  /// Per-call attribution a sink reports back to the submitting query
  /// (resource accounting; zeros when the sink does not track them).
  /// `billed_seconds` is this query's proportional share — by contributed row
  /// count — of the `fn` invocations its rows rode in; summed over every
  /// participant of a coalesced batch it equals the batch's total fn time.
  /// `wait_seconds` is time spent blocked in the sink beyond the billed
  /// share (waiting for the batch window to close or for another query's
  /// leader to flush).
  struct NudfBatchStats {
    double wait_seconds = 0.0;
    double billed_seconds = 0.0;
  };

  virtual Result<std::vector<Value>> RunBatch(
      uint64_t fingerprint, const BatchFn& fn,
      std::vector<std::vector<Value>>&& rows,
      NudfBatchStats* stats = nullptr) = 0;
};

/// \brief Shared evaluation state threaded through expression evaluation.
struct EvalContext {
  const UdfRegistry* udfs = nullptr;
  /// Executes a scalar subquery (wired to the Database executor); must return
  /// a single value.
  std::function<Result<Value>(const SelectStmt&)> subquery_exec;
  /// When set, neural-UDF wall time is charged to the "inference" bucket so
  /// operators can report relational vs. inference cost separately.
  CostAccumulator* costs = nullptr;
  /// Accumulated nUDF seconds (all calls through this context).
  double inference_seconds = 0.0;
  /// Number of nUDF invocations (rows actually sent to a model); the hint
  /// benchmarks assert pruning through this counter.
  int64_t neural_calls = 0;
  /// Of those, rows answered from the cross-query nUDF result cache (a
  /// subset of neural_calls; per-query introspection, system.queries).
  int64_t nudf_cache_hits = 0;
  /// Worker pool for morsel-parallel kernels; nullptr (or a 1-thread pool)
  /// degenerates every loop to the serial path. Not owned.
  ThreadPool* pool = nullptr;
  /// Rows per morsel for parallel loops (ThreadPool::kDefaultMorselSize).
  int64_t morsel_size = 4096;
  /// Cross-query nUDF result cache (owned by the Database). Only consulted
  /// for neural UDFs whose NUdfInfo carries a non-zero model fingerprint;
  /// nullptr disables memoization entirely. Cache hits still count toward
  /// neural_calls and nudf.invocations — those tally rows *answered* by a
  /// model, whether freshly computed or memoized — so existing accounting is
  /// unchanged; only compute time and nudf.batches shrink.
  ShardedLruCache* nudf_cache = nullptr;
  /// Cross-query batch coalescer (owned by the serving layer, wired through
  /// Database::set_nudf_batch_sink). Only consulted for parallel-safe neural
  /// UDFs with a non-zero fingerprint; nullptr keeps the direct invocation
  /// path bit-for-bit unchanged.
  NudfBatchSink* batch_sink = nullptr;
  /// When true, operators attempt the batch-at-a-time vectorized kernels
  /// (db/exec/vector_*.h) before the row path; kernels that cannot compile
  /// the expression/key shape fall back silently with identical results.
  /// Off (DL2SQL_VECTOR=OFF) forces the row path everywhere.
  bool vectorized = false;
  /// \name Vectorized-kernel accounting (folded by DrainEvalContext)
  /// Batches processed, rows entering kernels, and rows surviving selection;
  /// `vec_rows_selected / vec_rows_in` is the average selection-vector
  /// density ExplainAnalyze reports per operator.
  /// @{
  int64_t vec_batches = 0;
  int64_t vec_rows_in = 0;
  int64_t vec_rows_selected = 0;
  /// @}
  /// \name Coalesced-batch attribution (folded by DrainEvalContext)
  /// Seconds this query's rows waited in the batch sink, and the share of
  /// shared batch_fn time billed back to this query (NudfBatchStats).
  /// @{
  double nudf_wait_seconds = 0.0;
  double nudf_billed_seconds = 0.0;
  /// @}
};

/// Shared, possibly non-owning column handle (column refs alias the input
/// table's columns to avoid deep copies).
using ColumnHandle = std::shared_ptr<const Column>;

/// Evaluates `e` over every row of `input`, producing a column of
/// input.num_rows() values. Aggregate calls must have been planned away.
Result<ColumnHandle> EvalExpr(const Expr& e, const Table& input,
                              EvalContext* ctx);

/// Evaluates a row-independent expression (literals, subqueries, functions of
/// those) to a single value.
Result<Value> EvalScalar(const Expr& e, EvalContext* ctx);

/// Applies a binary operator to two scalars with SQL NULL propagation.
Result<Value> EvalValueBinary(BinaryOp op, const Value& l, const Value& r);

/// Static result type of an expression against a schema.
Result<DataType> InferExprType(const Expr& e, const TableSchema& schema,
                               const UdfRegistry* udfs);

/// Evaluates a predicate and returns the passing row indices.
Result<std::vector<int64_t>> FilterRows(const Expr& predicate,
                                        const Table& input, EvalContext* ctx);

}  // namespace dl2sql::db
