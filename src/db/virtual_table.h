/// \file virtual_table.h
/// \brief Read-only virtual tables materialized at scan time.
///
/// Providers back the reserved `system` schema (system.metrics,
/// system.queries, ...): they expose a fixed schema at registration time but
/// no stored columns — every scan calls Materialize(), which builds a fresh
/// Table from live engine state. Freshness therefore never depends on cache
/// invalidation: a prepared plan may be reused indefinitely because the plan
/// only names the virtual table; its rows are produced when the scan runs.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "db/table.h"

namespace dl2sql::db {

/// \brief One virtual table. Implementations must be safe to call from any
/// query thread concurrently (they read engine state that is itself
/// synchronized — metric atomics, catalog locks, the query-log ring).
class VirtualTableProvider {
 public:
  virtual ~VirtualTableProvider() = default;

  /// Fully qualified lower-case name, e.g. "system.metrics".
  virtual const std::string& name() const = 0;

  /// Column layout; fixed for the provider's lifetime so cached plans keyed
  /// on it stay valid.
  virtual const TableSchema& schema() const = 0;

  /// Builds the rows from live engine state. Called once per scan.
  virtual Result<TablePtr> Materialize() const = 0;

  /// Schema version for plan-cache validation. Constant for the provider's
  /// lifetime (data freshness comes from scan-time materialization, not from
  /// version churn, so cached plans over system tables stay hot).
  virtual uint64_t version() const { return 1; }
};

/// \brief Provider from a schema plus a row-materializing callback; covers
/// every system table that doesn't need its own class.
class CallbackVirtualTable : public VirtualTableProvider {
 public:
  using Materializer = std::function<Result<TablePtr>(const TableSchema&)>;

  CallbackVirtualTable(std::string name, TableSchema schema, Materializer fn)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        fn_(std::move(fn)) {}

  const std::string& name() const override { return name_; }
  const TableSchema& schema() const override { return schema_; }
  Result<TablePtr> Materialize() const override { return fn_(schema_); }

 private:
  std::string name_;
  TableSchema schema_;
  Materializer fn_;
};

}  // namespace dl2sql::db
