#include "db/expr.h"

#include <sstream>

#include "common/string_util.h"

namespace dl2sql::db {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kStddevSamp:
      return "stddevSamp";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

ExprPtr Expr::Lit(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Col(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_name = std::move(name);
  return e;
}

ExprPtr Expr::BoundCol(int index, std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_name = std::move(name);
  e->bound_index = index;
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr x) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->children = {std::move(x)};
  return e;
}

ExprPtr Expr::Func(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::Agg(AggFunc f, ExprPtr arg) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAggCall;
  e->agg_func = f;
  if (arg != nullptr) e->children = {std::move(arg)};
  return e;
}

ExprPtr Expr::Subquery(std::shared_ptr<SelectStmt> stmt) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kScalarSubquery;
  e->subquery = std::move(stmt);
  return e;
}

ExprPtr Expr::In(ExprPtr tested, std::vector<ExprPtr> list) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kInList;
  e->children.push_back(std::move(tested));
  for (auto& x : list) e->children.push_back(std::move(x));
  return e;
}

ExprPtr Expr::Star() {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_shared<Expr>(*this);
  for (auto& c : e->children) c = c->Clone();
  // The subquery AST is treated as immutable and can stay shared.
  return e;
}

bool Expr::HasAggregate() const {
  if (kind == ExprKind::kAggCall) return true;
  for (const auto& c : children) {
    if (c->HasAggregate()) return true;
  }
  return false;
}

bool Expr::CallsFunction(const std::string& name) const {
  if (kind == ExprKind::kFuncCall && EqualsIgnoreCase(func_name, name)) {
    return true;
  }
  for (const auto& c : children) {
    if (c->CallsFunction(name)) return true;
  }
  return false;
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind == ExprKind::kColumnRef) out->push_back(column_name);
  for (const auto& c : children) c->CollectColumns(out);
}

std::string Expr::ToString() const {
  std::ostringstream oss;
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.type() == DataType::kString) {
        oss << "'" << literal.ToString() << "'";
      } else {
        oss << literal.ToString();
      }
      break;
    case ExprKind::kColumnRef:
      oss << column_name;
      if (bound_index >= 0 && column_name.empty()) oss << "#" << bound_index;
      break;
    case ExprKind::kBinary:
      oss << "(" << children[0]->ToString() << " " << BinaryOpToString(bin_op)
          << " " << children[1]->ToString() << ")";
      break;
    case ExprKind::kUnary:
      oss << (un_op == UnaryOp::kNot ? "NOT " : "-") << children[0]->ToString();
      break;
    case ExprKind::kFuncCall: {
      oss << func_name << "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) oss << ", ";
        oss << children[i]->ToString();
      }
      oss << ")";
      break;
    }
    case ExprKind::kAggCall:
      oss << AggFuncToString(agg_func) << "(";
      if (agg_func == AggFunc::kCountStar) {
        oss << "*";
      } else {
        oss << children[0]->ToString();
      }
      oss << ")";
      break;
    case ExprKind::kScalarSubquery:
      oss << "(<subquery>)";
      break;
    case ExprKind::kInList: {
      oss << children[0]->ToString() << " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) oss << ", ";
        oss << children[i]->ToString();
      }
      oss << ")";
      break;
    }
    case ExprKind::kStar:
      oss << "*";
      break;
  }
  return oss.str();
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kBinary && e->bin_op == BinaryOp::kAnd) {
    SplitConjuncts(e->children[0], out);
    SplitConjuncts(e->children[1], out);
  } else {
    out->push_back(e);
  }
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& terms) {
  if (terms.empty()) return Expr::Lit(Value::Bool(true));
  ExprPtr acc = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) {
    acc = Expr::Binary(BinaryOp::kAnd, acc, terms[i]);
  }
  return acc;
}

}  // namespace dl2sql::db
