#include "db/persistence.h"

#include <cstring>
#include <fstream>

#include "common/bytes.h"
#include "db/codec.h"
#include "db/sql/printer.h"

namespace dl2sql::db {

namespace {
constexpr char kMagic[] = "LDBSNAP1";
}

std::string SelectToSql(const SelectStmt& stmt) { return sql::PrintSelect(stmt); }
std::string ExprToSql(const Expr& e) { return sql::PrintExpr(e); }

Result<std::string> SnapshotDatabase(const Database& db) {
  BufferWriter w;
  w.WriteRaw(kMagic, 8);

  std::vector<std::string> tables;
  for (const auto& name : db.catalog().TableNames()) {
    if (!db.catalog().IsTemporary(name)) tables.push_back(name);
  }
  w.WriteU32(static_cast<uint32_t>(tables.size()));
  for (const auto& name : tables) {
    DL2SQL_ASSIGN_OR_RETURN(TablePtr t, db.catalog().GetTable(name));
    DL2SQL_ASSIGN_OR_RETURN(std::string bytes, CompressTable(*t));
    w.WriteString(name);
    w.WriteString(bytes);
  }

  const std::vector<std::string> views = db.catalog().ViewNames();
  w.WriteU32(static_cast<uint32_t>(views.size()));
  for (const auto& name : views) {
    DL2SQL_ASSIGN_OR_RETURN(auto def, db.catalog().GetView(name));
    w.WriteString(name);
    w.WriteString(sql::PrintSelect(*def));
  }
  return w.Take();
}

Status RestoreDatabase(const std::string& bytes, Database* db) {
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, 8) != 0) {
    return Status::ParseError("bad snapshot magic");
  }
  BufferReader r(bytes);
  for (int i = 0; i < 8; ++i) {
    DL2SQL_RETURN_NOT_OK(r.ReadU8().status());
  }
  DL2SQL_ASSIGN_OR_RETURN(uint32_t ntables, r.ReadU32());
  for (uint32_t i = 0; i < ntables; ++i) {
    DL2SQL_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    DL2SQL_ASSIGN_OR_RETURN(std::string payload, r.ReadString());
    DL2SQL_ASSIGN_OR_RETURN(Table t, DecompressTable(payload));
    DL2SQL_RETURN_NOT_OK(db->RegisterTable(name, std::move(t)));
  }
  DL2SQL_ASSIGN_OR_RETURN(uint32_t nviews, r.ReadU32());
  for (uint32_t i = 0; i < nviews; ++i) {
    DL2SQL_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    DL2SQL_ASSIGN_OR_RETURN(std::string sql_text, r.ReadString());
    DL2SQL_ASSIGN_OR_RETURN(Statement stmt, sql::ParseStatement(sql_text));
    if (!std::holds_alternative<std::shared_ptr<SelectStmt>>(stmt)) {
      return Status::ParseError("snapshot view '", name,
                                "' did not parse as a SELECT");
    }
    DL2SQL_RETURN_NOT_OK(db->catalog().CreateView(
        name, std::get<std::shared_ptr<SelectStmt>>(stmt),
        /*or_replace=*/true));
  }
  return Status::OK();
}

Status SaveDatabase(const Database& db, const std::string& path) {
  DL2SQL_ASSIGN_OR_RETURN(std::string bytes, SnapshotDatabase(db));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '", path, "' for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("short write to '", path, "'");
  return Status::OK();
}

Status LoadDatabase(const std::string& path, Database* db) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '", path, "' for reading");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return RestoreDatabase(bytes, db);
}

}  // namespace dl2sql::db
