/// \file catalog.h
/// \brief Catalog: named tables, temp tables and views, plus their statistics.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/mem_tracker.h"
#include "db/index.h"
#include "db/sql/ast.h"
#include "db/stats.h"
#include "db/table.h"
#include "db/virtual_table.h"

namespace dl2sql::db {

/// \brief Owns all named relations of a Database instance.
///
/// Names are case-insensitive. Views store their defining SELECT and are
/// expanded at planning time. Statistics are attached per table by Analyze();
/// fresh tables (notably DL2SQL's generated per-layer temp tables) have none,
/// which is precisely the blind spot of the default cost model the paper
/// exploits in Section IV.
///
/// Thread safety: every method takes an internal reader/writer lock (shared
/// for const accessors, exclusive for mutators), so concurrent SELECTs may
/// resolve relations while another session runs DDL/DML. Two returns escape
/// the lock by design: GetTable's shared_ptr keeps a dropped table's data
/// alive for the query that resolved it (snapshot semantics), and GetStats'
/// raw pointer is only stable while no mutator runs — the serving layer's
/// statement-level RW lock (QueryService) guarantees that; direct multi-
/// threaded Database users must provide the same exclusion.
class Catalog {
 public:
  Status CreateTable(const std::string& name, TablePtr table, bool temporary,
                     bool if_not_exists = false);
  Status CreateView(const std::string& name,
                    std::shared_ptr<SelectStmt> definition, bool or_replace);

  Result<TablePtr> GetTable(const std::string& name) const;
  Result<std::shared_ptr<SelectStmt>> GetView(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  bool HasView(const std::string& name) const;

  Status DropTable(const std::string& name, bool if_exists);
  Status DropView(const std::string& name, bool if_exists);

  /// Removes every temporary table (end-of-query cleanup in engines).
  void DropAllTemporary();

  /// Computes and caches statistics for a table.
  Status Analyze(const std::string& name);

  /// Cached stats; nullptr when the table was never analyzed.
  const TableStats* GetStats(const std::string& name) const;

  /// Invalidate stats and indexes (after DML).
  void InvalidateStats(const std::string& name);

  /// Builds (or rebuilds) a hash index on an INT64 column; reused by hash
  /// joins whose build side is an unfiltered scan of this table.
  Status CreateIndex(const std::string& table, const std::string& column);

  /// Cached index, or nullptr if absent/invalidated.
  std::shared_ptr<HashIndex> GetIndex(const std::string& table,
                                      const std::string& column) const;

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ViewNames() const;

  /// True if `name` is a temporary table.
  bool IsTemporary(const std::string& name) const;

  /// Sum of payload bytes over all tables (storage-overhead benchmarks).
  uint64_t TotalBytes() const;

  /// Bytes this table last charged against the catalog memory tracker (0 for
  /// unknown names, views, virtual tables, or with accounting disabled).
  /// Re-synced on create/ANALYZE and after DML via InvalidateStats, so it can
  /// lag the live ByteSize between mutation and invalidation.
  int64_t TrackedBytes(const std::string& name) const;

  /// The catalog's storage tracker, a child of MemTracker::Process().
  const MemTracker& mem_tracker() const { return mem_; }

  /// \brief Per-relation schema/content version, for plan-cache validation.
  ///
  /// Every mutation touching a name — create/drop (tables and views), DML
  /// stats invalidation, ANALYZE, index (re)builds — bumps its version. The
  /// counter outlives drop/recreate cycles, so a cached plan referencing a
  /// dropped-then-recreated relation can never validate against the new one.
  /// Virtual-table versions fold in the provider's own version, so replacing
  /// a provider also invalidates plans compiled against the old schema.
  uint64_t VersionOf(const std::string& name) const;

  // --- Virtual tables (reserved `system.` schema) -------------------------
  //
  // Providers materialize rows at scan time; the catalog stores only the
  // provider handle and its fixed schema. Names under `system.` are reserved:
  // CreateTable/CreateView reject them so user DDL can never shadow (or be
  // shadowed by) an introspection table.

  /// Registers (or replaces) a provider under its own name(). The name must
  /// start with "system.".
  Status RegisterVirtualTable(std::shared_ptr<VirtualTableProvider> provider);

  /// Removes a provider; missing names are a no-op (Database and
  /// QueryService both unregister defensively in their destructors).
  void UnregisterVirtualTable(const std::string& name);

  /// Provider lookup; nullptr when `name` is not a registered virtual table.
  std::shared_ptr<VirtualTableProvider> GetVirtualTable(
      const std::string& name) const;

  bool HasVirtualTable(const std::string& name) const;

  /// Sorted names of registered virtual tables.
  std::vector<std::string> VirtualTableNames() const;

  /// True for any name in the reserved introspection schema ("system.x",
  /// case-insensitive), registered or not.
  static bool IsSystemName(const std::string& name);

 private:
  /// Callers hold mu_ exclusively.
  void BumpVersion(const std::string& key) { ++versions_[key]; }
  struct Entry {
    TablePtr table;
    bool temporary = false;
    std::optional<TableStats> stats;
    /// Hash indexes keyed by lower-cased column name.
    std::map<std::string, std::shared_ptr<HashIndex>> indexes;
    /// Bytes currently charged against mem_ for this table.
    int64_t tracked_bytes = 0;
  };
  static std::string Key(const std::string& name);

  /// Re-charges `entry` against mem_ from its table's current ByteSize.
  /// Callers hold mu_ exclusively.
  void SyncTrackedLocked(Entry& entry);
  /// Releases `entry`'s outstanding charge. Callers hold mu_ exclusively.
  void ReleaseTrackedLocked(Entry& entry);

  /// Guards every container below; methods never call each other while
  /// holding it (BumpVersion excepted, which asserts nothing and only runs
  /// under the exclusive lock of its caller).
  mutable std::shared_mutex mu_;
  std::map<std::string, Entry> tables_;
  std::map<std::string, std::shared_ptr<SelectStmt>> views_;
  std::map<std::string, std::shared_ptr<VirtualTableProvider>> virtual_tables_;
  /// Persistent per-name mutation counters (never erased, even on drop).
  std::map<std::string, uint64_t> versions_;
  /// Storage accounting for every table this catalog owns.
  MemTracker mem_{"catalog", MemTracker::Process()};
};

}  // namespace dl2sql::db
