#include "db/system_tables.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cache.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "db/database.h"
#include "db/virtual_table.h"

namespace dl2sql::db {

namespace {

// ---------------------------------------------------------- system.metrics

Result<TablePtr> MaterializeMetrics(const TableSchema& schema) {
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  auto t = std::make_shared<Table>(Table{schema});
  for (const auto& [name, value] : snap.counters) {
    DL2SQL_RETURN_NOT_OK(
        t->AppendRow({Value::String(name), Value::String("counter"),
                      Value::Float(static_cast<double>(value))}));
  }
  for (const auto& [name, value] : snap.gauges) {
    DL2SQL_RETURN_NOT_OK(t->AppendRow(
        {Value::String(name), Value::String("gauge"), Value::Float(value)}));
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::pair<const char*, double> expansions[] = {
        {".count", static_cast<double>(h.count)},
        {".sum_us", static_cast<double>(h.sum_micros)},
        {".p50_us", static_cast<double>(h.Quantile(0.5))},
        {".p95_us", static_cast<double>(h.Quantile(0.95))},
        {".p99_us", static_cast<double>(h.Quantile(0.99))},
    };
    for (const auto& [suffix, value] : expansions) {
      DL2SQL_RETURN_NOT_OK(
          t->AppendRow({Value::String(name + suffix),
                        Value::String("histogram"), Value::Float(value)}));
    }
  }
  return t;
}

// ---------------------------------------------------------- system.queries

/// 16-digit lower-case hex of a distributed trace/span id; "" for 0 so
/// untraced rows stay visibly blank.
std::string TraceIdHex(uint64_t id) {
  if (id == 0) return std::string();
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

Result<TablePtr> MaterializeQueries(Database* db, const TableSchema& schema) {
  auto t = std::make_shared<Table>(Table{schema});
  QueryLog* log = db->query_log();
  if (log == nullptr) return t;
  for (const QueryLogRecord& r : log->Snapshot()) {
    DL2SQL_RETURN_NOT_OK(t->AppendRow({
        Value::Int(r.id),
        Value::String(r.sql),
        Value::String(QueryKindName(r.kind)),
        Value::String(r.error),
        Value::Float(static_cast<double>(r.duration_us) / 1000.0),
        Value::Int(r.rows),
        Value::Int(r.neural_calls),
        Value::Int(r.nudf_cache_hits),
        Value::Bool(r.plan_cache_hit),
        Value::Float(static_cast<double>(r.admission_wait_us) / 1000.0),
        Value::Int(r.session_id),
        Value::Int(r.peak_operator_bytes),
        Value::Int(r.operator_rows),
        Value::Int(r.vector_batches),
        Value::Int(r.end_micros),
        Value::String(TraceIdHex(r.trace_id)),
        Value::String(DistStrategyLabel(r.dist_strategy)),
        Value::Int(r.dist_shards),
        Value::Int(r.dist_slowest_shard),
        Value::Float(static_cast<double>(r.dist_slowest_us) / 1000.0),
        Value::Float(static_cast<double>(r.dist_merge_us) / 1000.0),
    }));
  }
  return t;
}

// --------------------------------------------------- system.query_profiles

/// The resource-accounting view over the same seqlock ring as
/// system.queries: one row per finished query with its CPU / wait-state /
/// tracked-memory breakdown. Columns are all zeros when the query ran with
/// DL2SQL_MEM_TRACKER=OFF.
Result<TablePtr> MaterializeQueryProfiles(Database* db,
                                          const TableSchema& schema) {
  auto t = std::make_shared<Table>(Table{schema});
  QueryLog* log = db->query_log();
  if (log == nullptr) return t;
  for (const QueryLogRecord& r : log->Snapshot()) {
    DL2SQL_RETURN_NOT_OK(t->AppendRow({
        Value::Int(r.id),
        Value::String(r.sql),
        Value::String(QueryKindName(r.kind)),
        Value::Int(r.session_id),
        Value::Float(static_cast<double>(r.duration_us) / 1000.0),
        Value::Float(static_cast<double>(r.cpu_us) / 1000.0),
        Value::Float(static_cast<double>(r.admission_wait_us) / 1000.0),
        Value::Float(static_cast<double>(r.lock_wait_us) / 1000.0),
        Value::Float(static_cast<double>(r.pool_queue_wait_us) / 1000.0),
        Value::Float(static_cast<double>(r.coalesce_wait_us) / 1000.0),
        Value::Float(static_cast<double>(r.billed_batch_us) / 1000.0),
        Value::Int(r.mem_peak_bytes),
        Value::Int(r.mem_cumulative_bytes),
        Value::Int(r.end_micros),
        Value::Int(r.spill_bytes),
        Value::Int(r.spill_partitions),
    }));
  }
  return t;
}

// ------------------------------------------------------------ system.spans

Result<TablePtr> MaterializeSpans(const TableSchema& schema) {
  auto t = std::make_shared<Table>(Table{schema});
  for (const auto& s : TraceCollector::Global().Summary()) {
    const double avg_us =
        s.count == 0 ? 0.0
                     : static_cast<double>(s.total_us) /
                           static_cast<double>(s.count);
    DL2SQL_RETURN_NOT_OK(t->AppendRow({Value::String(s.name),
                                       Value::Int(s.count),
                                       Value::Int(s.total_us),
                                       Value::Float(avg_us),
                                       Value::Int(s.max_us)}));
  }
  return t;
}

// ----------------------------------------------------------- system.caches

Result<TablePtr> MaterializeCaches(Database* db, const TableSchema& schema) {
  auto t = std::make_shared<Table>(Table{schema});
  auto append = [&](const ShardedLruCache* cache) -> Status {
    if (cache == nullptr) return Status::OK();
    const CacheStats s = cache->stats();
    return t->AppendRow(
        {Value::String(cache->name()), Value::Int(s.entries),
         Value::Int(s.bytes),
         Value::Int(static_cast<int64_t>(cache->capacity_bytes())),
         Value::Int(s.hits), Value::Int(s.misses), Value::Int(s.insertions),
         Value::Int(s.evictions)});
  };
  DL2SQL_RETURN_NOT_OK(append(db->nudf_cache()));
  DL2SQL_RETURN_NOT_OK(append(db->plan_cache()));
  return t;
}

// ----------------------------------------------------------- system.tables

Result<TablePtr> MaterializeTables(Database* db, const TableSchema& schema) {
  auto t = std::make_shared<Table>(Table{schema});
  const Catalog& catalog = db->catalog();
  for (const std::string& name : catalog.TableNames()) {
    auto table = catalog.GetTable(name);
    // Dropped between listing and lookup (concurrent DDL): skip.
    if (!table.ok()) continue;
    DL2SQL_RETURN_NOT_OK(t->AppendRow(
        {Value::String(name), Value::String("table"),
         Value::Int((*table)->num_rows()),
         Value::Int(static_cast<int64_t>((*table)->ByteSize())),
         Value::Int(catalog.TrackedBytes(name)),
         Value::Bool(catalog.IsTemporary(name))}));
  }
  for (const std::string& name : catalog.ViewNames()) {
    DL2SQL_RETURN_NOT_OK(t->AppendRow(
        {Value::String(name), Value::String("view"), Value::Int(0),
         Value::Int(0), Value::Int(0), Value::Bool(false)}));
  }
  for (const std::string& name : catalog.VirtualTableNames()) {
    DL2SQL_RETURN_NOT_OK(t->AppendRow(
        {Value::String(name), Value::String("virtual"), Value::Int(0),
         Value::Int(0), Value::Int(0), Value::Bool(false)}));
  }
  return t;
}

}  // namespace

void RegisterDatabaseSystemTables(Database* db) {
  Catalog& catalog = db->catalog();

  TableSchema metrics_schema({{"name", DataType::kString},
                              {"kind", DataType::kString},
                              {"value", DataType::kFloat64}});
  DL2SQL_CHECK(catalog
                   .RegisterVirtualTable(std::make_shared<CallbackVirtualTable>(
                       "system.metrics", std::move(metrics_schema),
                       [](const TableSchema& s) { return MaterializeMetrics(s); }))
                   .ok());

  TableSchema queries_schema({{"id", DataType::kInt64},
                              {"sql", DataType::kString},
                              {"kind", DataType::kString},
                              {"error", DataType::kString},
                              {"duration_ms", DataType::kFloat64},
                              {"rows", DataType::kInt64},
                              {"neural_calls", DataType::kInt64},
                              {"nudf_cache_hits", DataType::kInt64},
                              {"plan_cache_hit", DataType::kBool},
                              {"admission_wait_ms", DataType::kFloat64},
                              {"session_id", DataType::kInt64},
                              {"peak_operator_bytes", DataType::kInt64},
                              {"operator_rows", DataType::kInt64},
                              {"vector_batches", DataType::kInt64},
                              {"end_micros", DataType::kInt64},
                              {"trace_id", DataType::kString},
                              {"dist_strategy", DataType::kString},
                              {"dist_shards", DataType::kInt64},
                              {"dist_slowest_shard", DataType::kInt64},
                              {"dist_slowest_ms", DataType::kFloat64},
                              {"dist_merge_ms", DataType::kFloat64}});
  DL2SQL_CHECK(catalog
                   .RegisterVirtualTable(std::make_shared<CallbackVirtualTable>(
                       "system.queries", std::move(queries_schema),
                       [db](const TableSchema& s) {
                         return MaterializeQueries(db, s);
                       }))
                   .ok());

  TableSchema profiles_schema({{"id", DataType::kInt64},
                               {"sql", DataType::kString},
                               {"kind", DataType::kString},
                               {"session_id", DataType::kInt64},
                               {"duration_ms", DataType::kFloat64},
                               {"cpu_ms", DataType::kFloat64},
                               {"admission_wait_ms", DataType::kFloat64},
                               {"lock_wait_ms", DataType::kFloat64},
                               {"pool_queue_wait_ms", DataType::kFloat64},
                               {"coalesce_wait_ms", DataType::kFloat64},
                               {"billed_batch_ms", DataType::kFloat64},
                               {"mem_peak_bytes", DataType::kInt64},
                               {"mem_cumulative_bytes", DataType::kInt64},
                               {"end_micros", DataType::kInt64},
                               {"spill_bytes", DataType::kInt64},
                               {"spill_partitions", DataType::kInt64}});
  DL2SQL_CHECK(catalog
                   .RegisterVirtualTable(std::make_shared<CallbackVirtualTable>(
                       "system.query_profiles", std::move(profiles_schema),
                       [db](const TableSchema& s) {
                         return MaterializeQueryProfiles(db, s);
                       }))
                   .ok());

  TableSchema spans_schema({{"name", DataType::kString},
                            {"count", DataType::kInt64},
                            {"total_us", DataType::kInt64},
                            {"avg_us", DataType::kFloat64},
                            {"max_us", DataType::kInt64}});
  DL2SQL_CHECK(catalog
                   .RegisterVirtualTable(std::make_shared<CallbackVirtualTable>(
                       "system.spans", std::move(spans_schema),
                       [](const TableSchema& s) { return MaterializeSpans(s); }))
                   .ok());

  TableSchema caches_schema({{"name", DataType::kString},
                             {"entries", DataType::kInt64},
                             {"bytes", DataType::kInt64},
                             {"capacity_bytes", DataType::kInt64},
                             {"hits", DataType::kInt64},
                             {"misses", DataType::kInt64},
                             {"insertions", DataType::kInt64},
                             {"evictions", DataType::kInt64}});
  DL2SQL_CHECK(catalog
                   .RegisterVirtualTable(std::make_shared<CallbackVirtualTable>(
                       "system.caches", std::move(caches_schema),
                       [db](const TableSchema& s) {
                         return MaterializeCaches(db, s);
                       }))
                   .ok());

  TableSchema tables_schema({{"name", DataType::kString},
                             {"kind", DataType::kString},
                             {"rows", DataType::kInt64},
                             {"bytes", DataType::kInt64},
                             {"tracked_bytes", DataType::kInt64},
                             {"temporary", DataType::kBool}});
  DL2SQL_CHECK(catalog
                   .RegisterVirtualTable(std::make_shared<CallbackVirtualTable>(
                       "system.tables", std::move(tables_schema),
                       [db](const TableSchema& s) {
                         return MaterializeTables(db, s);
                       }))
                   .ok());
}

}  // namespace dl2sql::db
