/// \file index.h
/// \brief Hash indexes over base-table integer columns.
///
/// Section IV-A of the paper: "To speed up the join processing, we build
/// indices on columns MatrixID, OrderID, and KernelID. The processing of
/// join is performed by scanning the feature map table and probing the
/// kernel tables." A HashIndex is exactly that probe structure, built once
/// per (table, column) and reused by every hash join whose build side is an
/// unfiltered scan of the indexed table — which is precisely the shape of
/// the generated neural-operator joins (static kernel/mapping tables on the
/// build side, per-query feature tables probing).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/table.h"

namespace dl2sql::db {

/// \brief Immutable hash index over one INT64 column of a table snapshot.
class HashIndex {
 public:
  /// Builds the index; the column must be INT64 (NULL rows are skipped, as
  /// NULL keys never join).
  static Result<std::shared_ptr<HashIndex>> Build(const Table& table,
                                                  int column_index);

  /// Row ids holding `key`, or nullptr if absent.
  const std::vector<int64_t>* Lookup(int64_t key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  int column_index() const { return column_index_; }
  int64_t indexed_rows() const { return indexed_rows_; }
  size_t num_keys() const { return map_.size(); }

 private:
  HashIndex() = default;

  int column_index_ = -1;
  int64_t indexed_rows_ = 0;
  std::unordered_map<int64_t, std::vector<int64_t>> map_;
};

}  // namespace dl2sql::db
