#include "db/plan.h"

#include <sstream>

namespace dl2sql::db {

const char* PlanKindToString(PlanKind k) {
  switch (k) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
  }
  return "?";
}

std::string PlanNode::ToString(int indent) const {
  std::ostringstream oss;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  oss << pad << PlanKindToString(kind);
  switch (kind) {
    case PlanKind::kScan:
      oss << " " << table_name;
      if (!qualifier.empty() && qualifier != table_name) {
        oss << " AS " << qualifier;
      }
      for (const auto& p : scan_predicates) {
        oss << " [pred: " << p->ToString() << "]";
      }
      break;
    case PlanKind::kFilter:
      oss << " " << predicate->ToString();
      break;
    case PlanKind::kProject: {
      oss << " [";
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i > 0) oss << ", ";
        oss << exprs[i]->ToString();
        if (i < names.size() && !names[i].empty()) oss << " AS " << names[i];
      }
      oss << "]";
      break;
    }
    case PlanKind::kJoin:
      oss << (join_is_inner ? " INNER" : " CROSS");
      if (join_condition != nullptr) {
        oss << " ON " << join_condition->ToString();
      }
      if (!equi_keys.empty()) {
        oss << " [hash keys: ";
        for (size_t i = 0; i < equi_keys.size(); ++i) {
          if (i > 0) oss << ", ";
          oss << equi_keys[i].first->ToString() << "="
              << equi_keys[i].second->ToString();
        }
        oss << "]";
      }
      if (use_symmetric_hash) oss << " [symmetric]";
      break;
    case PlanKind::kAggregate: {
      oss << " keys=[";
      for (size_t i = 0; i < group_keys.size(); ++i) {
        if (i > 0) oss << ", ";
        oss << group_keys[i]->ToString();
      }
      oss << "] aggs=[";
      for (size_t i = 0; i < agg_calls.size(); ++i) {
        if (i > 0) oss << ", ";
        oss << agg_calls[i]->ToString();
      }
      oss << "]";
      break;
    }
    case PlanKind::kSort: {
      oss << " [";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) oss << ", ";
        oss << sort_keys[i]->ToString() << (sort_ascending[i] ? "" : " DESC");
      }
      oss << "]";
      break;
    }
    case PlanKind::kLimit:
      oss << " " << limit;
      break;
  }
  if (est_rows >= 0) oss << " (est_rows=" << est_rows << ")";
  oss << "\n";
  for (const auto& c : children) oss << c->ToString(indent + 1);
  return oss.str();
}

PlanPtr MakeScan(std::string table_name, std::string qualifier,
                 TableSchema schema) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kScan;
  n->table_name = std::move(table_name);
  n->qualifier = std::move(qualifier);
  n->output_schema = std::move(schema);
  return n;
}

PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kFilter;
  n->output_schema = child->output_schema;
  n->children = {std::move(child)};
  n->predicate = std::move(predicate);
  return n;
}

PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names, TableSchema schema) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kProject;
  n->output_schema = std::move(schema);
  n->children = {std::move(child)};
  n->exprs = std::move(exprs);
  n->names = std::move(names);
  return n;
}

PlanPtr MakeJoin(PlanPtr left, PlanPtr right, bool inner, ExprPtr condition) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kJoin;
  TableSchema schema;
  for (const auto& f : left->output_schema.fields()) schema.AddField(f);
  for (const auto& f : right->output_schema.fields()) schema.AddField(f);
  n->output_schema = std::move(schema);
  n->children = {std::move(left), std::move(right)};
  n->join_is_inner = inner;
  n->join_condition = std::move(condition);
  return n;
}

PlanPtr MakeLimit(PlanPtr child, int64_t limit) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kLimit;
  n->output_schema = child->output_schema;
  n->children = {std::move(child)};
  n->limit = limit;
  return n;
}

}  // namespace dl2sql::db
