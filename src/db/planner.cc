#include "db/planner.h"

#include <map>

#include "common/string_util.h"
#include "db/eval.h"

namespace dl2sql::db {

namespace {

constexpr int kMaxViewDepth = 16;

/// Output column name for an expression without an explicit alias.
std::string DefaultName(const Expr& e) {
  if (e.kind == ExprKind::kColumnRef) {
    const size_t dot = e.column_name.rfind('.');
    return dot == std::string::npos ? e.column_name
                                    : e.column_name.substr(dot + 1);
  }
  return e.ToString();
}

/// Rewrites `e` in place, replacing subtrees that textually match a group key
/// or a collected aggregate call with bound references into the Aggregate
/// node's output (keys first, then aggregates).
Status RewriteAggExpr(ExprPtr* e, const std::vector<std::string>& key_strs,
                      const std::vector<std::string>& agg_strs,
                      const TableSchema& agg_schema) {
  const std::string s = (*e)->ToString();
  for (size_t i = 0; i < key_strs.size(); ++i) {
    if (s == key_strs[i]) {
      *e = Expr::BoundCol(static_cast<int>(i),
                          agg_schema.field(static_cast<int>(i)).name);
      return Status::OK();
    }
  }
  for (size_t i = 0; i < agg_strs.size(); ++i) {
    if (s == agg_strs[i]) {
      const int idx = static_cast<int>(key_strs.size() + i);
      *e = Expr::BoundCol(idx, agg_schema.field(idx).name);
      return Status::OK();
    }
  }
  if ((*e)->kind == ExprKind::kAggCall) {
    return Status::InvalidArgument("unplanned aggregate ", (*e)->ToString());
  }
  if ((*e)->kind == ExprKind::kColumnRef) {
    return Status::InvalidArgument(
        "column ", (*e)->column_name,
        " must appear in GROUP BY or inside an aggregate");
  }
  for (auto& c : (*e)->children) {
    DL2SQL_RETURN_NOT_OK(RewriteAggExpr(&c, key_strs, agg_strs, agg_schema));
  }
  return Status::OK();
}

/// Collects distinct aggregate calls (textual identity) in evaluation order.
void CollectAggCalls(const ExprPtr& e, std::vector<ExprPtr>* calls,
                     std::vector<std::string>* strs) {
  if (e->kind == ExprKind::kAggCall) {
    const std::string s = e->ToString();
    for (const auto& seen : *strs) {
      if (seen == s) return;
    }
    calls->push_back(e->Clone());
    strs->push_back(s);
    return;  // no nested aggregates
  }
  for (const auto& c : e->children) CollectAggCalls(c, calls, strs);
}

}  // namespace

Status BindExpr(Expr* e, const TableSchema& schema) {
  if (e->kind == ExprKind::kColumnRef) {
    if (e->bound_index < 0) {
      DL2SQL_ASSIGN_OR_RETURN(int idx, schema.Find(e->column_name));
      e->bound_index = idx;
    }
    return Status::OK();
  }
  if (e->kind == ExprKind::kScalarSubquery) return Status::OK();
  for (auto& c : e->children) {
    DL2SQL_RETURN_NOT_OK(BindExpr(c.get(), schema));
  }
  return Status::OK();
}

Result<PlanPtr> Planner::PlanTableRef(const TableRef& ref, int depth) {
  if (depth > kMaxViewDepth) {
    return Status::InvalidArgument("view nesting deeper than ", kMaxViewDepth,
                                   " (cycle?)");
  }
  const std::string qualifier = ref.EffectiveName();
  if (ref.IsDerived()) {
    DL2SQL_ASSIGN_OR_RETURN(PlanPtr sub, PlanSelectImpl(*ref.subquery, depth + 1));
    // Requalify the derived table's output columns under its alias.
    TableSchema schema;
    for (const auto& f : sub->output_schema.fields()) {
      const size_t dot = f.name.rfind('.');
      const std::string base =
          dot == std::string::npos ? f.name : f.name.substr(dot + 1);
      schema.AddField(
          {qualifier.empty() ? base : qualifier + "." + base, f.type});
    }
    sub->output_schema = std::move(schema);
    return sub;
  }
  // Base table or view.
  if (referenced_ != nullptr) referenced_->push_back(ref.table_name);
  if (catalog_->HasView(ref.table_name)) {
    DL2SQL_ASSIGN_OR_RETURN(auto view_def, catalog_->GetView(ref.table_name));
    TableRef expanded;
    expanded.subquery = view_def;
    expanded.alias = qualifier;
    return PlanTableRef(expanded, depth + 1);
  }
  // Virtual tables plan as ordinary scans against the provider's fixed
  // schema; rows are materialized from live engine state at execution time.
  if (auto provider = catalog_->GetVirtualTable(ref.table_name)) {
    TableSchema schema;
    for (const auto& f : provider->schema().fields()) {
      schema.AddField({qualifier + "." + f.name, f.type});
    }
    return MakeScan(ref.table_name, qualifier, std::move(schema));
  }
  DL2SQL_ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(ref.table_name));
  TableSchema schema;
  for (const auto& f : table->schema().fields()) {
    schema.AddField({qualifier + "." + f.name, f.type});
  }
  return MakeScan(ref.table_name, qualifier, std::move(schema));
}

Result<PlanPtr> Planner::PlanSelectImpl(const SelectStmt& stmt, int depth) {
  // ---- FROM ----
  PlanPtr plan;
  if (stmt.from) {
    DL2SQL_ASSIGN_OR_RETURN(plan, PlanTableRef(*stmt.from, depth));
    for (const auto& entry : stmt.joins) {
      DL2SQL_ASSIGN_OR_RETURN(PlanPtr right, PlanTableRef(entry.table, depth));
      ExprPtr cond;
      if (entry.on != nullptr) {
        cond = entry.on->Clone();
      }
      PlanPtr join = MakeJoin(plan, right, entry.join == JoinType::kInner,
                              std::move(cond));
      if (join->join_condition != nullptr) {
        DL2SQL_RETURN_NOT_OK(
            BindExpr(join->join_condition.get(), join->output_schema));
      }
      plan = std::move(join);
    }
  } else {
    // SELECT without FROM: a one-row dummy input.
    plan = MakeScan("", "", TableSchema{});
  }

  // ---- WHERE ----
  if (stmt.where != nullptr) {
    ExprPtr pred = stmt.where->Clone();
    DL2SQL_RETURN_NOT_OK(BindExpr(pred.get(), plan->output_schema));
    plan = MakeFilter(std::move(plan), std::move(pred));
  }

  // ---- aggregation analysis ----
  bool needs_agg = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    if (item.expr->HasAggregate()) needs_agg = true;
  }
  if (stmt.having != nullptr && stmt.having->HasAggregate()) needs_agg = true;

  // Cloned select expressions (rewritten in the aggregate case).
  std::vector<ExprPtr> select_exprs;
  std::vector<std::string> select_names;
  for (const auto& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      if (needs_agg) {
        return Status::InvalidArgument("'*' cannot be used with GROUP BY");
      }
      for (int i = 0; i < plan->output_schema.num_fields(); ++i) {
        const auto& f = plan->output_schema.field(i);
        select_exprs.push_back(Expr::BoundCol(i, f.name));
        const size_t dot = f.name.rfind('.');
        select_names.push_back(dot == std::string::npos
                                   ? f.name
                                   : f.name.substr(dot + 1));
      }
      continue;
    }
    select_exprs.push_back(item.expr->Clone());
    select_names.push_back(item.alias.empty() ? DefaultName(*item.expr)
                                              : item.alias);
  }

  ExprPtr having;
  std::vector<ExprPtr> order_exprs;
  for (const auto& o : stmt.order_by) order_exprs.push_back(o.expr->Clone());
  if (stmt.having != nullptr) having = stmt.having->Clone();

  if (needs_agg) {
    auto agg = std::make_shared<PlanNode>();
    agg->kind = PlanKind::kAggregate;

    std::vector<std::string> key_strs;
    for (const auto& key : stmt.group_by) {
      ExprPtr k = key->Clone();
      key_strs.push_back(k->ToString());
      DL2SQL_RETURN_NOT_OK(BindExpr(k.get(), plan->output_schema));
      agg->group_names.push_back(DefaultName(*key));
      agg->group_keys.push_back(std::move(k));
    }

    std::vector<ExprPtr> agg_calls;
    std::vector<std::string> agg_strs;
    for (const auto& e : select_exprs) CollectAggCalls(e, &agg_calls, &agg_strs);
    if (having != nullptr) CollectAggCalls(having, &agg_calls, &agg_strs);
    for (const auto& e : order_exprs) CollectAggCalls(e, &agg_calls, &agg_strs);

    TableSchema agg_schema;
    for (size_t i = 0; i < agg->group_keys.size(); ++i) {
      DL2SQL_ASSIGN_OR_RETURN(
          DataType t,
          InferExprType(*agg->group_keys[i], plan->output_schema, udfs_));
      agg_schema.AddField({agg->group_names[i], t});
    }
    for (size_t i = 0; i < agg_calls.size(); ++i) {
      ExprPtr call = agg_calls[i];
      if (call->agg_func != AggFunc::kCountStar) {
        DL2SQL_RETURN_NOT_OK(
            BindExpr(call->children[0].get(), plan->output_schema));
      }
      DL2SQL_ASSIGN_OR_RETURN(
          DataType t, InferExprType(*call, plan->output_schema, udfs_));
      const std::string name = "__agg" + std::to_string(i);
      agg_schema.AddField({name, t});
      agg->agg_names.push_back(name);
      agg->agg_calls.push_back(std::move(call));
    }
    agg->output_schema = agg_schema;
    agg->children = {std::move(plan)};
    plan = std::move(agg);

    for (auto& e : select_exprs) {
      DL2SQL_RETURN_NOT_OK(
          RewriteAggExpr(&e, key_strs, agg_strs, plan->output_schema));
    }
    if (having != nullptr) {
      DL2SQL_RETURN_NOT_OK(
          RewriteAggExpr(&having, key_strs, agg_strs, plan->output_schema));
      plan = MakeFilter(std::move(plan), std::move(having));
    }
    for (auto& e : order_exprs) {
      // Try the aggregate rewrite; failures (e.g. references to select-list
      // aliases) are bound later against the projection output instead.
      ExprPtr rewritten = e->Clone();
      if (RewriteAggExpr(&rewritten, key_strs, agg_strs, plan->output_schema)
              .ok()) {
        e = std::move(rewritten);
      }
    }
  } else if (having != nullptr) {
    return Status::InvalidArgument("HAVING without aggregation");
  }

  // ---- projection ----
  TableSchema out_schema;
  for (size_t i = 0; i < select_exprs.size(); ++i) {
    DL2SQL_RETURN_NOT_OK(BindExpr(select_exprs[i].get(), plan->output_schema));
    DL2SQL_ASSIGN_OR_RETURN(
        DataType t, InferExprType(*select_exprs[i], plan->output_schema, udfs_));
    out_schema.AddField({select_names[i], t});
  }
  PlanPtr pre_project = plan;  // kept for ORDER BY fallback binding
  plan = MakeProject(std::move(plan), select_exprs, select_names, out_schema);

  // ---- ORDER BY ----
  if (!order_exprs.empty()) {
    // Bind each key against the projected output; keys referencing
    // non-projected expressions are carried as hidden projection columns
    // (__sortN), sorted on, then dropped by a final projection.
    std::vector<ExprPtr> bound_keys;
    std::vector<ExprPtr> hidden_exprs;
    for (size_t i = 0; i < order_exprs.size(); ++i) {
      ExprPtr key = order_exprs[i]->Clone();
      if (BindExpr(key.get(), plan->output_schema).ok()) {
        bound_keys.push_back(std::move(key));
        continue;
      }
      ExprPtr pre = order_exprs[i]->Clone();
      DL2SQL_RETURN_NOT_OK(BindExpr(pre.get(), pre_project->output_schema)
                               .WithContext("ORDER BY"));
      const int hidden_index = static_cast<int>(select_exprs.size()) +
                               static_cast<int>(hidden_exprs.size());
      const std::string hname =
          "__sort" + std::to_string(hidden_exprs.size());
      hidden_exprs.push_back(std::move(pre));
      bound_keys.push_back(Expr::BoundCol(hidden_index, hname));
    }

    const size_t visible = select_exprs.size();
    if (!hidden_exprs.empty()) {
      // Rebuild the projection with the hidden sort columns appended.
      std::vector<ExprPtr> ext_exprs = select_exprs;
      std::vector<std::string> ext_names = select_names;
      TableSchema ext_schema = out_schema;
      for (size_t i = 0; i < hidden_exprs.size(); ++i) {
        DL2SQL_ASSIGN_OR_RETURN(
            DataType t,
            InferExprType(*hidden_exprs[i], pre_project->output_schema, udfs_));
        const std::string hname = "__sort" + std::to_string(i);
        ext_exprs.push_back(hidden_exprs[i]);
        ext_names.push_back(hname);
        ext_schema.AddField({hname, t});
      }
      plan = MakeProject(pre_project, std::move(ext_exprs), std::move(ext_names),
                         ext_schema);
    }

    auto sort = std::make_shared<PlanNode>();
    sort->kind = PlanKind::kSort;
    sort->output_schema = plan->output_schema;
    sort->sort_keys = std::move(bound_keys);
    for (const auto& o : stmt.order_by) {
      sort->sort_ascending.push_back(o.ascending);
    }
    sort->children = {std::move(plan)};
    plan = std::move(sort);

    if (!hidden_exprs.empty()) {
      // Drop the hidden columns again.
      std::vector<ExprPtr> drop_exprs;
      std::vector<std::string> drop_names;
      for (size_t i = 0; i < visible; ++i) {
        drop_exprs.push_back(
            Expr::BoundCol(static_cast<int>(i), select_names[i]));
        drop_names.push_back(select_names[i]);
      }
      plan = MakeProject(std::move(plan), std::move(drop_exprs),
                         std::move(drop_names), out_schema);
    }
  }

  // ---- LIMIT ----
  if (stmt.limit >= 0) {
    plan = MakeLimit(std::move(plan), stmt.limit);
  }
  return plan;
}

}  // namespace dl2sql::db
