/// \file column.h
/// \brief Column: a typed, contiguous vector of values — the unit of storage
/// and of vectorized expression evaluation in lindb.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/value.h"

namespace dl2sql::db {

/// \brief A typed column with an optional validity (null) vector.
///
/// Physical encodings: Bool/Int64/Float64 use native vectors; String and Blob
/// share a string vector. An empty validity vector means "all rows valid".
///
/// Copying a Column is cheap: the payload is shared copy-on-write, so table
/// scans and projections that pass columns through do not duplicate data.
/// Mutating accessors detach (clone) a shared payload first.
class Column {
 public:
  Column() : type_(DataType::kNull), data_(std::make_shared<Payload>()) {}
  explicit Column(DataType type)
      : type_(type), data_(std::make_shared<Payload>()) {}

  static Column Ints(std::vector<int64_t> v) {
    Column c(DataType::kInt64);
    c.data_->ints = std::move(v);
    return c;
  }
  static Column Floats(std::vector<double> v) {
    Column c(DataType::kFloat64);
    c.data_->floats = std::move(v);
    return c;
  }
  static Column Bools(std::vector<uint8_t> v) {
    Column c(DataType::kBool);
    c.data_->bools = std::move(v);
    return c;
  }
  static Column Strings(std::vector<std::string> v) {
    Column c(DataType::kString);
    c.data_->strings = std::move(v);
    return c;
  }
  static Column Blobs(std::vector<std::string> v) {
    Column c(DataType::kBlob);
    c.data_->strings = std::move(v);
    return c;
  }

  DataType type() const { return type_; }

  int64_t size() const;

  /// Reserves capacity in the underlying vector (detaches if shared).
  void Reserve(int64_t n);

  /// Appends a Value; must match the column type or be NULL (which marks the
  /// row invalid and stores a default slot). Detaches if shared.
  Status Append(const Value& v);

  /// Move overload: steals string/blob payloads instead of copying. Scalar
  /// payloads fall through to the copy overload (copies are free there).
  Status Append(Value&& v);

  /// Reads row `i` as a Value (NULL if invalid).
  Value GetValue(int64_t i) const;

  bool IsValid(int64_t i) const {
    return data_->validity.empty() ||
           data_->validity[static_cast<size_t>(i)] != 0;
  }
  bool HasNulls() const;

  /// \name Direct typed access for hot loops (no null handling; callers check).
  /// @{
  const std::vector<int64_t>& ints() const { return data_->ints; }
  const std::vector<double>& floats() const { return data_->floats; }
  const std::vector<uint8_t>& bools() const { return data_->bools; }
  const std::vector<std::string>& strings() const { return data_->strings; }
  std::vector<int64_t>& mutable_ints() {
    Detach();
    return data_->ints;
  }
  std::vector<double>& mutable_floats() {
    Detach();
    return data_->floats;
  }
  std::vector<uint8_t>& mutable_bools() {
    Detach();
    return data_->bools;
  }
  std::vector<std::string>& mutable_strings() {
    Detach();
    return data_->strings;
  }
  /// @}

  /// Raw validity flags (empty = all rows valid). For codecs and paging.
  const std::vector<uint8_t>& validity() const { return data_->validity; }

  /// Replaces the validity vector wholesale (empty = all valid). `v` must be
  /// empty or size()-long; used when reconstituting columns from storage.
  void SetValidity(std::vector<uint8_t> v) {
    Detach();
    data_->validity = std::move(v);
  }

  /// Gathers rows by index into a new column (indices must be in range).
  Column Take(const std::vector<int64_t>& indices) const;

  /// Approximate heap bytes used by the column payload.
  uint64_t ByteSize() const;

 private:
  struct Payload {
    std::vector<int64_t> ints;
    std::vector<double> floats;
    std::vector<uint8_t> bools;
    std::vector<std::string> strings;
    /// Parallel validity flags; empty means all valid.
    std::vector<uint8_t> validity;
  };

  /// Clones the payload if it is shared with other Column instances.
  void Detach() {
    if (data_.use_count() > 1) {
      data_ = std::make_shared<Payload>(*data_);
    }
  }

  void EnsureValiditySized();

  DataType type_;
  std::shared_ptr<Payload> data_;
};

}  // namespace dl2sql::db
