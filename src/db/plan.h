/// \file plan.h
/// \brief Logical/physical plan tree. The optimizer rewrites this tree and the
/// executor interprets it directly (operator-at-a-time materialization).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "db/expr.h"
#include "db/sql/ast.h"
#include "db/table.h"

namespace dl2sql::db {

enum class PlanKind : uint8_t {
  kScan,       ///< base-table scan (optionally with an inlined predicate)
  kFilter,
  kProject,
  kJoin,       ///< inner or cross join
  kAggregate,  ///< hash aggregation
  kSort,
  kLimit,
};

const char* PlanKindToString(PlanKind k);

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// \brief One operator in the plan tree.
///
/// A single struct with a kind tag (matching Expr's design): each kind uses a
/// subset of the fields. `output_schema` is always set by the planner; field
/// names are qualified with the originating relation alias where applicable.
struct PlanNode {
  PlanKind kind;
  TableSchema output_schema;
  std::vector<PlanPtr> children;

  // ---- kScan ----
  std::string table_name;  ///< catalog name
  std::string qualifier;   ///< alias used to qualify output columns
  /// Conjuncts evaluated during the scan itself (pushed-down predicates,
  /// including nUDF predicates the optimizer chose to evaluate at scan time).
  std::vector<ExprPtr> scan_predicates;

  // ---- kFilter ----
  ExprPtr predicate;

  // ---- kProject ----
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;

  // ---- kJoin ----
  bool join_is_inner = false;   ///< false = cross product
  ExprPtr join_condition;       ///< full residual condition (may be null)
  /// Extracted equi-join key pairs (left expr over left child schema, right
  /// expr over right child schema); empty means no hashable keys.
  std::vector<std::pair<ExprPtr, ExprPtr>> equi_keys;
  /// Hint rule 3: use the symmetric hash join operator (nUDF join condition).
  bool use_symmetric_hash = false;
  /// Build the hash table on the left child instead of the right (chosen by
  /// the optimizer from estimated child cardinalities).
  bool join_build_left = false;

  // ---- kAggregate ----
  std::vector<ExprPtr> group_keys;
  std::vector<std::string> group_names;
  std::vector<ExprPtr> agg_calls;   ///< each an ExprKind::kAggCall
  std::vector<std::string> agg_names;

  // ---- kSort ----
  std::vector<ExprPtr> sort_keys;
  std::vector<bool> sort_ascending;

  // ---- kLimit ----
  int64_t limit = -1;

  // ---- optimizer annotations ----
  double est_rows = -1.0;
  double est_cost = -1.0;  ///< cumulative cost units (I/O+CPU abstract units)

  /// Indented tree rendering (EXPLAIN output).
  std::string ToString(int indent = 0) const;
};

/// \name Construction helpers
/// @{
PlanPtr MakeScan(std::string table_name, std::string qualifier,
                 TableSchema schema);
PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate);
PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names, TableSchema schema);
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, bool inner, ExprPtr condition);
PlanPtr MakeLimit(PlanPtr child, int64_t limit);
/// @}

}  // namespace dl2sql::db
