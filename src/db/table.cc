#include "db/table.h"

#include <sstream>

#include "db/storage/paged_table.h"

namespace dl2sql::db {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (int i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
}

Result<Table> Table::FromColumns(TableSchema schema,
                                 std::vector<Column> columns) {
  if (static_cast<int>(columns.size()) != schema.num_fields()) {
    return Status::InvalidArgument("FromColumns: ", columns.size(),
                                   " columns vs ", schema.num_fields(),
                                   " fields");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.field(static_cast<int>(i)).type) {
      return Status::TypeError(
          "FromColumns: column ", i, " type ",
          DataTypeToString(columns[i].type()), " vs field type ",
          DataTypeToString(schema.field(static_cast<int>(i)).type));
    }
    if (i > 0 && columns[i].size() != columns[0].size()) {
      return Status::InvalidArgument("FromColumns: ragged column sizes");
    }
  }
  Table t;
  t.schema_ = std::move(schema);
  t.columns_ = std::move(columns);
  return t;
}

Table Table::FromPaged(TableSchema schema,
                       std::shared_ptr<storage::PagedTableData> paged) {
  Table t;
  t.schema_ = std::move(schema);
  t.paged_ = std::move(paged);
  return t;
}

int64_t Table::PagedRows() const { return paged_->num_rows(); }

Status Table::EnsureResident() {
  if (paged_ == nullptr) return Status::OK();
  DL2SQL_ASSIGN_OR_RETURN(std::vector<Column> cols, paged_->Materialize());
  columns_ = std::move(cols);
  paged_.reset();
  return Status::OK();
}

Result<Table> Table::Materialize() const {
  if (paged_ == nullptr) return *this;
  DL2SQL_ASSIGN_OR_RETURN(std::vector<Column> cols, paged_->Materialize());
  return FromColumns(schema_, std::move(cols));
}

Status Table::PageOut(
    const std::shared_ptr<storage::StorageEngine>& engine) {
  if (paged_ != nullptr) return Status::OK();
  storage::PagedTableBuilder builder(engine, schema_);
  DL2SQL_RETURN_NOT_OK(builder.Append(*this));
  DL2SQL_ASSIGN_OR_RETURN(paged_, builder.Finish());
  columns_.clear();
  return Status::OK();
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  DL2SQL_CHECK(paged_ == nullptr) << "ColumnByName on a paged table";
  DL2SQL_ASSIGN_OR_RETURN(int idx, schema_.Find(name));
  return &columns_[static_cast<size_t>(idx)];
}

Status Table::AppendRow(const std::vector<Value>& row) {
  DL2SQL_RETURN_NOT_OK(EnsureResident());
  if (static_cast<int>(row.size()) != num_columns()) {
    return Status::InvalidArgument("AppendRow: ", row.size(), " values vs ",
                                   num_columns(), " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    DL2SQL_RETURN_NOT_OK(columns_[i].Append(row[i]).WithContext(
        "column " + schema_.field(static_cast<int>(i)).name));
  }
  return Status::OK();
}

std::vector<Value> Table::GetRow(int64_t i) const {
  if (paged_ != nullptr) {
    auto cols = paged_->Gather({i});
    DL2SQL_CHECK(cols.ok()) << "paged row read failed: "
                            << cols.status().ToString();
    std::vector<Value> row;
    row.reserve(cols->size());
    for (const auto& c : *cols) row.push_back(c.GetValue(0));
    return row;
  }
  std::vector<Value> row;
  row.reserve(columns_.size());
  for (const auto& c : columns_) row.push_back(c.GetValue(i));
  return row;
}

Status Table::AppendTable(const Table& other) {
  DL2SQL_RETURN_NOT_OK(EnsureResident());
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("AppendTable: column count mismatch");
  }
  if (other.is_paged()) {
    DL2SQL_ASSIGN_OR_RETURN(Table resident, other.Materialize());
    return AppendTable(resident);
  }
  for (int i = 0; i < num_columns(); ++i) {
    if (other.column(i).type() != column(i).type()) {
      return Status::TypeError("AppendTable: column ", i, " type mismatch");
    }
  }
  // Row-wise append keeps validity handling in one place; bulk appends of the
  // typed vectors would skip null propagation.
  for (int64_t r = 0; r < other.num_rows(); ++r) {
    DL2SQL_RETURN_NOT_OK(AppendRow(other.GetRow(r)));
  }
  return Status::OK();
}

Table Table::TakeRows(const std::vector<int64_t>& indices) const {
  if (paged_ != nullptr) {
    auto cols = paged_->Gather(indices);
    DL2SQL_CHECK(cols.ok()) << "paged gather failed: "
                            << cols.status().ToString();
    auto t = FromColumns(schema_, std::move(*cols));
    DL2SQL_CHECK(t.ok()) << t.status().ToString();
    return std::move(*t);
  }
  Table out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  for (const auto& c : columns_) out.columns_.push_back(c.Take(indices));
  if (columns_.empty()) {
    out.zero_column_rows_ = static_cast<int64_t>(indices.size());
  }
  return out;
}

Status Table::RenameFields(const std::vector<std::string>& names) {
  if (static_cast<int>(names.size()) != schema_.num_fields()) {
    return Status::InvalidArgument("RenameFields: count mismatch");
  }
  TableSchema renamed;
  for (int i = 0; i < schema_.num_fields(); ++i) {
    renamed.AddField({names[static_cast<size_t>(i)], schema_.field(i).type});
  }
  schema_ = std::move(renamed);
  return Status::OK();
}

uint64_t Table::ByteSize() const {
  if (paged_ != nullptr) {
    return static_cast<uint64_t>(paged_->logical_bytes());
  }
  uint64_t bytes = 0;
  for (const auto& c : columns_) bytes += c.ByteSize();
  return bytes;
}

std::string Table::ToString(int64_t max_rows) const {
  std::ostringstream oss;
  for (int i = 0; i < schema_.num_fields(); ++i) {
    if (i > 0) oss << " | ";
    oss << schema_.field(i).name;
  }
  oss << "\n";
  const int64_t n = std::min<int64_t>(num_rows(), max_rows);
  if (paged_ != nullptr) {
    for (int64_t r = 0; r < n; ++r) {
      const std::vector<Value> row = GetRow(r);
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) oss << " | ";
        oss << row[c].ToString();
      }
      oss << "\n";
    }
  } else {
    for (int64_t r = 0; r < n; ++r) {
      for (int c = 0; c < num_columns(); ++c) {
        if (c > 0) oss << " | ";
        oss << columns_[static_cast<size_t>(c)].GetValue(r).ToString();
      }
      oss << "\n";
    }
  }
  if (num_rows() > n) {
    oss << "... (" << num_rows() << " rows total)\n";
  }
  return oss.str();
}

}  // namespace dl2sql::db
