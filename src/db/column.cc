#include "db/column.h"

#include <algorithm>

namespace dl2sql::db {

int64_t Column::size() const {
  switch (type_) {
    case DataType::kBool:
      return static_cast<int64_t>(data_->bools.size());
    case DataType::kInt64:
      return static_cast<int64_t>(data_->ints.size());
    case DataType::kFloat64:
      return static_cast<int64_t>(data_->floats.size());
    case DataType::kString:
    case DataType::kBlob:
      return static_cast<int64_t>(data_->strings.size());
    case DataType::kNull:
      return static_cast<int64_t>(data_->validity.size());
  }
  return 0;
}

void Column::Reserve(int64_t n) {
  Detach();
  const size_t sn = static_cast<size_t>(n);
  switch (type_) {
    case DataType::kBool:
      data_->bools.reserve(sn);
      break;
    case DataType::kInt64:
      data_->ints.reserve(sn);
      break;
    case DataType::kFloat64:
      data_->floats.reserve(sn);
      break;
    case DataType::kString:
    case DataType::kBlob:
      data_->strings.reserve(sn);
      break;
    case DataType::kNull:
      break;
  }
}

void Column::EnsureValiditySized() {
  if (data_->validity.empty()) {
    data_->validity.assign(static_cast<size_t>(size()), 1);
  }
}

Status Column::Append(const Value& v) {
  Detach();
  if (v.is_null()) {
    EnsureValiditySized();
    switch (type_) {
      case DataType::kBool:
        data_->bools.push_back(0);
        break;
      case DataType::kInt64:
        data_->ints.push_back(0);
        break;
      case DataType::kFloat64:
        data_->floats.push_back(0.0);
        break;
      case DataType::kString:
      case DataType::kBlob:
        data_->strings.emplace_back();
        break;
      case DataType::kNull:
        break;
    }
    data_->validity.push_back(0);
    return Status::OK();
  }

  switch (type_) {
    case DataType::kBool:
      if (v.type() != DataType::kBool) {
        return Status::TypeError("append ", DataTypeToString(v.type()),
                                 " to bool column");
      }
      data_->bools.push_back(v.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64: {
      if (v.type() != DataType::kInt64) {
        return Status::TypeError("append ", DataTypeToString(v.type()),
                                 " to int column");
      }
      data_->ints.push_back(v.int_value());
      break;
    }
    case DataType::kFloat64: {
      // Numeric coercion: ints into float columns (common for literals).
      DL2SQL_ASSIGN_OR_RETURN(double d, v.AsDouble());
      data_->floats.push_back(d);
      break;
    }
    case DataType::kString:
      if (v.type() != DataType::kString) {
        return Status::TypeError("append ", DataTypeToString(v.type()),
                                 " to string column");
      }
      data_->strings.push_back(v.string_value());
      break;
    case DataType::kBlob:
      if (v.type() != DataType::kBlob && v.type() != DataType::kString) {
        return Status::TypeError("append ", DataTypeToString(v.type()),
                                 " to blob column");
      }
      data_->strings.push_back(v.string_value());
      break;
    case DataType::kNull:
      return Status::TypeError("append to null-typed column");
  }
  if (!data_->validity.empty()) data_->validity.push_back(1);
  return Status::OK();
}

Status Column::Append(Value&& v) {
  if ((type_ == DataType::kString || type_ == DataType::kBlob) &&
      !v.is_null()) {
    if (v.type() != DataType::kString &&
        !(type_ == DataType::kBlob && v.type() == DataType::kBlob)) {
      return Status::TypeError("append ", DataTypeToString(v.type()), " to ",
                               DataTypeToString(type_), " column");
    }
    Detach();
    data_->strings.push_back(v.TakeString());
    if (!data_->validity.empty()) data_->validity.push_back(1);
    return Status::OK();
  }
  return Append(static_cast<const Value&>(v));
}

Value Column::GetValue(int64_t i) const {
  if (!IsValid(i)) return Value::Null();
  const size_t si = static_cast<size_t>(i);
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(data_->bools[si] != 0);
    case DataType::kInt64:
      return Value::Int(data_->ints[si]);
    case DataType::kFloat64:
      return Value::Float(data_->floats[si]);
    case DataType::kString:
      return Value::String(data_->strings[si]);
    case DataType::kBlob:
      return Value::Blob(data_->strings[si]);
    case DataType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

bool Column::HasNulls() const {
  return std::any_of(data_->validity.begin(), data_->validity.end(),
                     [](uint8_t v) { return v == 0; });
}

Column Column::Take(const std::vector<int64_t>& indices) const {
  Column out(type_);
  out.Reserve(static_cast<int64_t>(indices.size()));
  const bool nulls = !data_->validity.empty();
  if (nulls) out.data_->validity.reserve(indices.size());
  for (int64_t idx : indices) {
    const size_t si = static_cast<size_t>(idx);
    switch (type_) {
      case DataType::kBool:
        out.data_->bools.push_back(data_->bools[si]);
        break;
      case DataType::kInt64:
        out.data_->ints.push_back(data_->ints[si]);
        break;
      case DataType::kFloat64:
        out.data_->floats.push_back(data_->floats[si]);
        break;
      case DataType::kString:
      case DataType::kBlob:
        out.data_->strings.push_back(data_->strings[si]);
        break;
      case DataType::kNull:
        break;
    }
    if (nulls) out.data_->validity.push_back(data_->validity[si]);
  }
  return out;
}

uint64_t Column::ByteSize() const {
  uint64_t bytes = data_->validity.size();
  switch (type_) {
    case DataType::kBool:
      bytes += data_->bools.size();
      break;
    case DataType::kInt64:
      bytes += data_->ints.size() * sizeof(int64_t);
      break;
    case DataType::kFloat64:
      bytes += data_->floats.size() * sizeof(double);
      break;
    case DataType::kString:
    case DataType::kBlob:
      for (const auto& s : data_->strings) bytes += s.size() + sizeof(uint32_t);
      break;
    case DataType::kNull:
      break;
  }
  return bytes;
}

}  // namespace dl2sql::db
