#include "db/optimizer.h"

#include <algorithm>

#include "common/logging.h"
#include "db/planner.h"

namespace dl2sql::db {

namespace {

/// Deep-copies a plan subtree including its expressions.
PlanPtr ClonePlan(const PlanPtr& node) {
  auto n = std::make_shared<PlanNode>(*node);
  for (auto& c : n->children) c = ClonePlan(c);
  auto clone_expr = [](ExprPtr& e) {
    if (e != nullptr) e = e->Clone();
  };
  clone_expr(n->predicate);
  clone_expr(n->join_condition);
  for (auto& e : n->exprs) clone_expr(e);
  for (auto& e : n->group_keys) clone_expr(e);
  for (auto& e : n->agg_calls) clone_expr(e);
  for (auto& e : n->sort_keys) clone_expr(e);
  for (auto& e : n->scan_predicates) clone_expr(e);
  for (auto& [l, r] : n->equi_keys) {
    clone_expr(l);
    clone_expr(r);
  }
  return n;
}

/// Returns [min,max] bound index used in the expression, or nullopt if it has
/// no column refs. Unbound refs poison the result (returns {-1,-1}).
void BoundRange(const Expr& e, int* min_idx, int* max_idx, bool* has_unbound) {
  if (e.kind == ExprKind::kColumnRef) {
    if (e.bound_index < 0) {
      *has_unbound = true;
      return;
    }
    *min_idx = *min_idx < 0 ? e.bound_index : std::min(*min_idx, e.bound_index);
    *max_idx = std::max(*max_idx, e.bound_index);
    return;
  }
  for (const auto& c : e.children) {
    BoundRange(*c, min_idx, max_idx, has_unbound);
  }
}

enum class Side { kLeft, kRight, kBoth, kNone };

Side ClassifySide(const Expr& e, int left_width) {
  int mn = -1, mx = -1;
  bool unbound = false;
  BoundRange(e, &mn, &mx, &unbound);
  if (unbound) return Side::kBoth;  // conservative: keep above the join
  if (mn < 0) return Side::kNone;
  if (mx < left_width) return Side::kLeft;
  if (mn >= left_width) return Side::kRight;
  return Side::kBoth;
}

}  // namespace

void UnbindExpr(Expr* e) {
  if (e->kind == ExprKind::kColumnRef) e->bound_index = -1;
  for (auto& c : e->children) UnbindExpr(c.get());
}

void ShiftBoundIndexes(Expr* e, int delta) {
  if (e->kind == ExprKind::kColumnRef && e->bound_index >= 0) {
    e->bound_index += delta;
  }
  for (auto& c : e->children) ShiftBoundIndexes(c.get(), delta);
}

// ------------------------------------------------------ NeuralAware model ----

namespace {

/// If `pred` is a comparison of an nUDF call against a literal (either
/// order), returns the udf and the tested label; otherwise nullptr.
const ScalarUdf* MatchNeuralComparison(const Expr& pred, const CostContext& ctx,
                                       std::string* label, bool* negated) {
  if (ctx.udfs == nullptr) return nullptr;
  if (pred.kind != ExprKind::kBinary ||
      (pred.bin_op != BinaryOp::kEq && pred.bin_op != BinaryOp::kNe)) {
    return nullptr;
  }
  const Expr* call = nullptr;
  const Expr* lit = nullptr;
  for (int side = 0; side < 2; ++side) {
    const Expr& a = *pred.children[static_cast<size_t>(side)];
    const Expr& b = *pred.children[static_cast<size_t>(1 - side)];
    if (a.kind == ExprKind::kFuncCall && ctx.udfs->IsNeural(a.func_name) &&
        b.kind == ExprKind::kLiteral) {
      call = &a;
      lit = &b;
      break;
    }
  }
  if (call == nullptr) return nullptr;
  auto r = ctx.udfs->Find(call->func_name);
  if (!r.ok()) return nullptr;
  *label = lit->literal.ToString();
  *negated = pred.bin_op == BinaryOp::kNe;
  return *r;
}

/// True if the expression calls any registered neural function.
bool ContainsNeuralCall(const Expr& e, const UdfRegistry* udfs) {
  if (udfs == nullptr) return false;
  if (e.kind == ExprKind::kFuncCall && udfs->IsNeural(e.func_name)) return true;
  for (const auto& c : e.children) {
    if (ContainsNeuralCall(*c, udfs)) return true;
  }
  return false;
}

/// Sum of per-row nUDF cost units across all neural calls in `e`.
double NeuralUnitsPerRow(const Expr& e, const CostContext& ctx) {
  double units = 0;
  if (e.kind == ExprKind::kFuncCall && ctx.udfs != nullptr &&
      ctx.udfs->IsNeural(e.func_name)) {
    auto r = ctx.udfs->Find(e.func_name);
    if (r.ok()) {
      units += (*r)->neural.per_call_cost_sec / ctx.seconds_per_unit;
    }
  }
  for (const auto& c : e.children) units += NeuralUnitsPerRow(*c, ctx);
  return units;
}

}  // namespace

double NeuralAwareCostModel::EstimateSelectivity(const Expr& pred,
                                                 const PlanNode& child,
                                                 const CostContext& ctx) const {
  std::string label;
  bool negated = false;
  const ScalarUdf* udf = MatchNeuralComparison(pred, ctx, &label, &negated);
  if (udf != nullptr) {
    const double p = udf->neural.selectivity.Probability(label);
    return negated ? 1.0 - p : p;
  }
  return DefaultCostModel::EstimateSelectivity(pred, child, ctx);
}

Status NeuralAwareCostModel::Annotate(PlanNode* node,
                                      const CostContext& ctx) const {
  DL2SQL_RETURN_NOT_OK(DefaultCostModel::Annotate(node, ctx));
  // Charge neural predicate work that the blind model ignores.
  if (node->kind == PlanKind::kFilter) {
    const double child_rows = node->children[0]->est_rows;
    const double units = NeuralUnitsPerRow(*node->predicate, ctx);
    if (units > 0) node->est_cost += child_rows * units;
  }
  if (node->kind == PlanKind::kJoin && node->use_symmetric_hash) {
    // nUDF evaluated once per left row during the symmetric join.
    double units = 0;
    for (const auto& [lk, _] : node->equi_keys) {
      units += NeuralUnitsPerRow(*lk, ctx);
    }
    node->est_cost += node->children[0]->est_rows * units;
  }
  if (node->kind == PlanKind::kProject) {
    const double child_rows = node->children[0]->est_rows;
    double units = 0;
    for (const auto& e : node->exprs) units += NeuralUnitsPerRow(*e, ctx);
    if (units > 0) node->est_cost += child_rows * units;
  }
  return Status::OK();
}

// ---------------------------------------------------------------- Optimizer ----

Optimizer::Optimizer(OptimizerOptions options, CostContext ctx)
    : options_(std::move(options)), ctx_(std::move(ctx)) {
  model_ = options_.cost_model;
  if (model_ == nullptr) {
    model_ = options_.enable_nudf_hints
                 ? std::shared_ptr<const CostModel>(
                       std::make_shared<NeuralAwareCostModel>())
                 : std::shared_ptr<const CostModel>(
                       std::make_shared<DefaultCostModel>());
  }
}

bool Optimizer::IsNeuralExpr(const Expr& e) const {
  return ContainsNeuralCall(e, ctx_.udfs);
}

Status Optimizer::ChooseBuildSides(PlanNode* node) const {
  for (auto& c : node->children) {
    DL2SQL_RETURN_NOT_OK(ChooseBuildSides(c.get()));
  }
  if (node->kind == PlanKind::kJoin && !node->equi_keys.empty() &&
      !node->use_symmetric_hash) {
    node->join_build_left =
        node->children[0]->est_rows < node->children[1]->est_rows;
  }
  return Status::OK();
}

namespace {

/// Collects the leaves and (unbound, cloned) join conjuncts of a left-deep
/// inner/cross join chain. Returns false when the chain should not be
/// touched (symmetric joins carry operator-specific semantics).
bool CollectJoinChain(const PlanPtr& node, std::vector<PlanPtr>* leaves,
                      std::vector<ExprPtr>* conjuncts) {
  if (node->kind != PlanKind::kJoin) {
    leaves->push_back(node);
    return true;
  }
  if (node->use_symmetric_hash) return false;
  if (!CollectJoinChain(node->children[0], leaves, conjuncts)) return false;
  if (!CollectJoinChain(node->children[1], leaves, conjuncts)) return false;
  for (const auto& [l, r] : node->equi_keys) {
    ExprPtr eq = Expr::Binary(BinaryOp::kEq, l->Clone(), r->Clone());
    UnbindExpr(eq.get());
    conjuncts->push_back(std::move(eq));
  }
  if (node->join_condition != nullptr) {
    std::vector<ExprPtr> parts;
    SplitConjuncts(node->join_condition, &parts);
    for (auto& p : parts) {
      ExprPtr c = p->Clone();
      UnbindExpr(c.get());
      conjuncts->push_back(std::move(c));
    }
  }
  return true;
}

/// True if every column the expression references binds in `schema`.
bool BindsIn(const Expr& e, const TableSchema& schema) {
  ExprPtr probe = e.Clone();
  UnbindExpr(probe.get());
  return BindExpr(probe.get(), schema).ok();
}

}  // namespace

Result<PlanPtr> Optimizer::ReorderJoins(PlanPtr node) {
  if (node->kind != PlanKind::kJoin) {
    for (auto& c : node->children) {
      DL2SQL_ASSIGN_OR_RETURN(c, ReorderJoins(c));
    }
    return node;
  }
  // A join is a chain root here (parents recurse through non-join nodes).
  std::vector<PlanPtr> leaves;
  std::vector<ExprPtr> conjuncts;
  if (!CollectJoinChain(node, &leaves, &conjuncts) || leaves.size() < 3) {
    for (auto& c : node->children) {
      DL2SQL_ASSIGN_OR_RETURN(c, ReorderJoins(c));
    }
    return node;
  }
  // Reorder within each leaf's own subtree first.
  for (auto& leaf : leaves) {
    DL2SQL_ASSIGN_OR_RETURN(leaf, ReorderJoins(leaf));
  }

  // Estimated cardinality per leaf.
  std::vector<double> rows(leaves.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    DL2SQL_RETURN_NOT_OK(model_->Annotate(leaves[i].get(), ctx_));
    rows[i] = std::max(1.0, leaves[i]->est_rows);
  }

  const TableSchema original_schema = node->output_schema;

  std::vector<bool> used(leaves.size(), false);
  std::vector<bool> placed(conjuncts.size(), false);

  // Start from the smallest leaf.
  size_t start = 0;
  for (size_t i = 1; i < leaves.size(); ++i) {
    if (rows[i] < rows[start]) start = i;
  }
  used[start] = true;
  PlanPtr current = leaves[start];
  double current_rows = rows[start];

  auto applicable = [&](const TableSchema& combined, size_t ci) {
    return !placed[ci] && BindsIn(*conjuncts[ci], combined);
  };

  for (size_t step = 1; step < leaves.size(); ++step) {
    // Pick the leaf minimizing the estimated join output.
    size_t best = leaves.size();
    double best_out = 0;
    bool best_connected = false;
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (used[i]) continue;
      TableSchema combined = current->output_schema;
      for (const auto& f : leaves[i]->output_schema.fields()) {
        combined.AddField(f);
      }
      bool connected = false;
      double sel = 1.0;
      for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
        if (!applicable(combined, ci)) continue;
        if (BindsIn(*conjuncts[ci], current->output_schema) ||
            BindsIn(*conjuncts[ci], leaves[i]->output_schema)) {
          continue;  // single-side: applied later as a residual, not a link
        }
        connected = true;
        // FK-ish default: an equi link collapses the product to ~max side.
        sel *= conjuncts[ci]->bin_op == BinaryOp::kEq &&
                       conjuncts[ci]->kind == ExprKind::kBinary
                   ? 1.0 / std::max(current_rows, rows[i])
                   : DefaultCostModel::kDefaultRangeSelectivity;
      }
      const double out = std::max(1.0, current_rows * rows[i] * sel);
      if (best == leaves.size() || (connected && !best_connected) ||
          (connected == best_connected && out < best_out)) {
        best = i;
        best_out = out;
        best_connected = connected;
      }
    }
    used[best] = true;
    PlanPtr join = MakeJoin(current, leaves[best], /*inner=*/false, nullptr);
    // Attach every now-applicable conjunct: equi pairs when the sides
    // separate, residual condition otherwise.
    const int left_width = current->output_schema.num_fields();
    std::vector<ExprPtr> residual;
    for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
      if (!applicable(join->output_schema, ci)) continue;
      placed[ci] = true;
      ExprPtr bound = conjuncts[ci]->Clone();
      DL2SQL_RETURN_NOT_OK(BindExpr(bound.get(), join->output_schema));
      bool as_equi = false;
      if (bound->kind == ExprKind::kBinary && bound->bin_op == BinaryOp::kEq) {
        const Side sa = ClassifySide(*bound->children[0], left_width);
        const Side sb = ClassifySide(*bound->children[1], left_width);
        if (sa == Side::kLeft && sb == Side::kRight) {
          ExprPtr rk = bound->children[1];
          ShiftBoundIndexes(rk.get(), -left_width);
          join->equi_keys.emplace_back(bound->children[0], std::move(rk));
          as_equi = true;
        } else if (sa == Side::kRight && sb == Side::kLeft) {
          ExprPtr rk = bound->children[0];
          ShiftBoundIndexes(rk.get(), -left_width);
          join->equi_keys.emplace_back(bound->children[1], std::move(rk));
          as_equi = true;
        }
      }
      if (as_equi) {
        join->join_is_inner = true;
      } else {
        residual.push_back(std::move(bound));
      }
    }
    if (!residual.empty()) {
      join->join_is_inner = true;
      join->join_condition = CombineConjuncts(residual);
    }
    current = std::move(join);
    current_rows = best_out;
  }

  // Restore the original column order for the operators above.
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (int i = 0; i < original_schema.num_fields(); ++i) {
    const std::string& name = original_schema.field(i).name;
    DL2SQL_ASSIGN_OR_RETURN(int idx, current->output_schema.Find(name));
    exprs.push_back(Expr::BoundCol(idx, name));
    names.push_back(name);
  }
  return MakeProject(std::move(current), std::move(exprs), std::move(names),
                     original_schema);
}

Result<PlanPtr> Optimizer::Optimize(PlanPtr plan) {
  DL2SQL_ASSIGN_OR_RETURN(plan, OptimizeNode(std::move(plan)));
  if (options_.enable_join_reorder) {
    DL2SQL_ASSIGN_OR_RETURN(plan, ReorderJoins(std::move(plan)));
  }
  DL2SQL_RETURN_NOT_OK(model_->Annotate(plan.get(), ctx_));
  DL2SQL_RETURN_NOT_OK(ChooseBuildSides(plan.get()));
  return plan;
}

Result<PlanPtr> Optimizer::OptimizeNode(PlanPtr plan) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  switch (plan->kind) {
    case PlanKind::kProject:
    case PlanKind::kAggregate:
    case PlanKind::kSort:
    case PlanKind::kLimit: {
      for (auto& c : plan->children) {
        DL2SQL_ASSIGN_OR_RETURN(c, OptimizeNode(c));
      }
      return plan;
    }
    case PlanKind::kFilter:
    case PlanKind::kJoin: {
      if (!options_.enable_pushdown) {
        for (auto& c : plan->children) {
          DL2SQL_ASSIGN_OR_RETURN(c, OptimizeNode(c));
        }
        return plan;
      }
      // Collect conjuncts from the filter chain at this subtree root.
      std::vector<ExprPtr> preds;
      PlanPtr cur = plan;
      while (cur->kind == PlanKind::kFilter) {
        SplitConjuncts(cur->predicate, &preds);
        cur = cur->children[0];
      }
      std::vector<ExprPtr> relational;
      std::vector<ExprPtr> neural;
      auto references_columns = [](const Expr& e) {
        std::vector<std::string> refs;
        e.CollectColumns(&refs);
        return !refs.empty();
      };
      for (auto& p : preds) {
        // Neural predicates go through hint-rule placement — except
        // join-condition-shaped equalities (nUDF(x) = other-relation column),
        // which must reach the join so rule 3 can pick the symmetric hash
        // join.
        const bool neural_comparison =
            options_.enable_nudf_hints && IsNeuralExpr(*p);
        const bool join_shaped =
            p->kind == ExprKind::kBinary && p->bin_op == BinaryOp::kEq &&
            references_columns(*p->children[0]) &&
            references_columns(*p->children[1]);
        if (neural_comparison && !join_shaped) {
          neural.push_back(p);
        } else {
          relational.push_back(p);
        }
      }
      DL2SQL_ASSIGN_OR_RETURN(PlanPtr pushed,
                              PushDown(cur, std::move(relational)));
      if (options_.enable_nudf_hints) {
        return PlaceNeuralPredicates(std::move(pushed), std::move(neural));
      }
      return pushed;
    }
    case PlanKind::kScan:
      return plan;
  }
  return Status::InternalError("unhandled plan kind in optimizer");
}

Result<PlanPtr> Optimizer::PushDown(PlanPtr node, std::vector<ExprPtr> preds) {
  switch (node->kind) {
    case PlanKind::kFilter: {
      SplitConjuncts(node->predicate, &preds);
      return PushDown(node->children[0], std::move(preds));
    }
    case PlanKind::kJoin: {
      const int left_width = node->children[0]->output_schema.num_fields();
      std::vector<ExprPtr> left_preds;
      std::vector<ExprPtr> right_preds;
      std::vector<ExprPtr> residual;

      // The join's own ON condition participates in the split too.
      if (node->join_condition != nullptr) {
        SplitConjuncts(node->join_condition, &preds);
        node->join_condition = nullptr;
      }

      for (auto& p : preds) {
        const Side side = ClassifySide(*p, left_width);
        if (side == Side::kLeft) {
          left_preds.push_back(std::move(p));
          continue;
        }
        if (side == Side::kRight) {
          ShiftBoundIndexes(p.get(), -left_width);
          right_preds.push_back(std::move(p));
          continue;
        }
        if (side == Side::kNone) {
          // Row-independent predicate: cheapest on the smaller side; keep as
          // residual to stay simple.
          residual.push_back(std::move(p));
          continue;
        }
        // Spans both sides: extract hashable equi keys.
        if (p->kind == ExprKind::kBinary && p->bin_op == BinaryOp::kEq) {
          const Expr& a = *p->children[0];
          const Expr& b = *p->children[1];
          const Side sa = ClassifySide(a, left_width);
          const Side sb = ClassifySide(b, left_width);
          const bool neural_key =
              options_.enable_nudf_hints &&
              (IsNeuralExpr(a) || IsNeuralExpr(b));
          if (sa == Side::kLeft && sb == Side::kRight) {
            ExprPtr rk = p->children[1];
            ShiftBoundIndexes(rk.get(), -left_width);
            node->equi_keys.emplace_back(p->children[0], std::move(rk));
            if (neural_key) node->use_symmetric_hash = true;
            node->join_is_inner = true;
            continue;
          }
          if (sa == Side::kRight && sb == Side::kLeft) {
            ExprPtr rk = p->children[0];
            ShiftBoundIndexes(rk.get(), -left_width);
            node->equi_keys.emplace_back(p->children[1], std::move(rk));
            if (neural_key) node->use_symmetric_hash = true;
            node->join_is_inner = true;
            continue;
          }
        }
        residual.push_back(std::move(p));
      }

      if (!residual.empty()) {
        node->join_is_inner = true;
        node->join_condition = CombineConjuncts(residual);
      }
      DL2SQL_ASSIGN_OR_RETURN(
          node->children[0], PushDown(node->children[0], std::move(left_preds)));
      DL2SQL_ASSIGN_OR_RETURN(
          node->children[1],
          PushDown(node->children[1], std::move(right_preds)));
      return node;
    }
    case PlanKind::kScan: {
      if (preds.empty()) return node;
      return MakeFilter(std::move(node), CombineConjuncts(preds));
    }
    default: {
      // Project/Aggregate/Sort/Limit: optimize below independently; keep the
      // predicates above (pushing through projections would require
      // expression rewriting we do not attempt).
      DL2SQL_ASSIGN_OR_RETURN(PlanPtr sub, OptimizeNode(node));
      if (preds.empty()) return sub;
      return MakeFilter(std::move(sub), CombineConjuncts(preds));
    }
  }
}

namespace {

/// Inserts a (neural) predicate as deep as its column references allow:
/// descends join children whose schema binds every referenced column, and
/// wraps the reached subtree in a Filter.
Result<PlanPtr> InsertAtLowest(PlanPtr node, ExprPtr pred) {
  if (node->kind == PlanKind::kJoin) {
    for (size_t side = 0; side < 2; ++side) {
      ExprPtr attempt = pred->Clone();
      UnbindExpr(attempt.get());
      if (BindExpr(attempt.get(), node->children[side]->output_schema).ok()) {
        DL2SQL_ASSIGN_OR_RETURN(
            node->children[side],
            InsertAtLowest(node->children[side], std::move(attempt)));
        return node;
      }
    }
  }
  // Attach here.
  ExprPtr bound = pred->Clone();
  UnbindExpr(bound.get());
  DL2SQL_RETURN_NOT_OK(BindExpr(bound.get(), node->output_schema));
  return MakeFilter(std::move(node), std::move(bound));
}

}  // namespace

Result<PlanPtr> Optimizer::PlaceNeuralPredicates(
    PlanPtr plan, std::vector<ExprPtr> neural_preds) {
  if (neural_preds.empty()) return plan;

  // Order rule: evaluate the most selective nUDF first (paper's detect-
  // before-classify example). "First" = deepest filter in the cascade.
  std::stable_sort(neural_preds.begin(), neural_preds.end(),
                   [&](const ExprPtr& a, const ExprPtr& b) {
                     return model_->EstimateSelectivity(*a, *plan, ctx_) <
                            model_->EstimateSelectivity(*b, *plan, ctx_);
                   });

  // Candidate A: evaluate during the table scan (deepest legal position).
  PlanPtr scan_time = ClonePlan(plan);
  // Most selective pred should end up nearest the scan; inserting in reverse
  // order stacks filters with the most selective at the bottom.
  for (auto it = neural_preds.rbegin(); it != neural_preds.rend(); ++it) {
    DL2SQL_ASSIGN_OR_RETURN(scan_time,
                            InsertAtLowest(std::move(scan_time), *it));
  }

  // Candidate B: delay as much as possible — cascade of filters above the
  // whole relational subtree, most selective first (bottom).
  PlanPtr delayed = ClonePlan(plan);
  for (const auto& p : neural_preds) {
    ExprPtr bound = p->Clone();
    UnbindExpr(bound.get());
    DL2SQL_RETURN_NOT_OK(BindExpr(bound.get(), delayed->output_schema));
    delayed = MakeFilter(std::move(delayed), std::move(bound));
  }

  DL2SQL_RETURN_NOT_OK(model_->Annotate(scan_time.get(), ctx_));
  DL2SQL_RETURN_NOT_OK(model_->Annotate(delayed.get(), ctx_));
  DL2SQL_LOG(Debug) << "nUDF placement: scan-time cost=" << scan_time->est_cost
                    << " delayed cost=" << delayed->est_cost;
  return scan_time->est_cost <= delayed->est_cost ? scan_time : delayed;
}

}  // namespace dl2sql::db
