/// \file vector_filter.h
/// \brief Batch-at-a-time predicate evaluation producing selection vectors.
///
/// The predicate is compiled once into a small tree of typed kernel calls
/// (column pointers resolved, literals unboxed), then each morsel is
/// processed as one VectorBatch: comparisons refine the selection vector in
/// place of materializing full boolean columns, AND refines sequentially,
/// OR unions two refinements, NOT takes the set difference. Falls back
/// (returns `false`) whenever the predicate touches anything outside the
/// kernel inventory — NULL-bearing columns, UDF calls, subqueries, IN
/// lists, type mixes the row path would route through Value — so the row
/// evaluator remains the single source of truth for those.
#pragma once

#include <vector>

#include "db/eval.h"
#include "db/expr.h"
#include "db/table.h"

namespace dl2sql::db::vec {

/// Attempts the vectorized filter. Returns true and fills `out_rows` with
/// the passing row indices (ascending, identical to the row path's
/// FilterRows order) when the whole predicate compiled to kernels; returns
/// false — with `out_rows` untouched — when the caller must fall back.
/// Kernel stats are folded into `ctx` (batches, rows in, rows selected).
Result<bool> TryVectorFilter(const Expr& predicate, const Table& input,
                             EvalContext* ctx, std::vector<int64_t>* out_rows);

/// True if `predicate` would take the vectorized path over `input`
/// (compile-only probe; test and planner introspection).
bool IsVectorizablePredicate(const Expr& predicate, const Table& input);

}  // namespace dl2sql::db::vec
