#include "db/exec/vector_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/cache.h"
#include "db/exec/row_key.h"

namespace dl2sql::db::vec {

namespace {

/// Branchless compaction: writes the candidate row unconditionally and
/// advances the cursor only when the predicate held. The loop carries no
/// data-dependent branch, which keeps the selection pipeline throughput
/// bound by the comparison, not the branch predictor.
template <typename Keep>
SelIndex RefineLoop(const SelIndex* sel, SelIndex count, SelIndex* out,
                    Keep keep) {
  SelIndex m = 0;
  for (SelIndex k = 0; k < count; ++k) {
    const SelIndex r = sel[k];
    out[m] = r;
    m += keep(k, r) ? 1 : 0;
  }
  return m;
}

template <typename Cmp>
SelIndex RefineNumWith(const NumOperand& a, const NumOperand& b,
                       const SelIndex* sel, SelIndex count, SelIndex* out,
                       Cmp cmp) {
  // Hot shapes get dedicated loops over raw typed arrays so the operand
  // kind switch is hoisted out of the inner loop: dense-int column against
  // an int immediate (generated predicates), dense column against a
  // compressed intermediate, and dense against dense.
  using K = NumOperand::Kind;
  if (a.kind == K::kDenseInt && b.kind == K::kImmInt) {
    const int64_t* x = a.i64;
    const double y = static_cast<double>(b.imm_i);
    return RefineLoop(sel, count, out, [&](SelIndex, SelIndex r) {
      return cmp(static_cast<double>(x[r]), y);
    });
  }
  if (a.kind == K::kCompInt && b.kind == K::kImmInt) {
    const int64_t* x = a.i64;
    const double y = static_cast<double>(b.imm_i);
    return RefineLoop(sel, count, out, [&](SelIndex k, SelIndex) {
      return cmp(static_cast<double>(x[k]), y);
    });
  }
  if (a.kind == K::kDenseFloat && b.kind == K::kImmFloat) {
    const double* x = a.f64;
    const double y = b.imm_f;
    return RefineLoop(sel, count, out,
                      [&](SelIndex, SelIndex r) { return cmp(x[r], y); });
  }
  if (a.kind == K::kDenseInt && b.kind == K::kDenseInt) {
    const int64_t* x = a.i64;
    const int64_t* y = b.i64;
    return RefineLoop(sel, count, out, [&](SelIndex, SelIndex r) {
      return cmp(static_cast<double>(x[r]), static_cast<double>(y[r]));
    });
  }
  return RefineLoop(sel, count, out, [&](SelIndex k, SelIndex r) {
    return cmp(a.At(k, r), b.At(k, r));
  });
}

}  // namespace

SelIndex RefineCompareNum(BinaryOp op, const NumOperand& a,
                          const NumOperand& b, const SelIndex* sel,
                          SelIndex count, SelIndex* out) {
  switch (op) {
    case BinaryOp::kEq:
      return RefineNumWith(a, b, sel, count, out,
                           [](double x, double y) { return x == y; });
    case BinaryOp::kNe:
      return RefineNumWith(a, b, sel, count, out,
                           [](double x, double y) { return x != y; });
    case BinaryOp::kLt:
      return RefineNumWith(a, b, sel, count, out,
                           [](double x, double y) { return x < y; });
    case BinaryOp::kLe:
      return RefineNumWith(a, b, sel, count, out,
                           [](double x, double y) { return x <= y; });
    case BinaryOp::kGt:
      return RefineNumWith(a, b, sel, count, out,
                           [](double x, double y) { return x > y; });
    case BinaryOp::kGe:
      return RefineNumWith(a, b, sel, count, out,
                           [](double x, double y) { return x >= y; });
    default:
      return 0;  // callers only pass comparisons
  }
}

SelIndex RefineCompareStr(BinaryOp op, const StrOperand& a,
                          const StrOperand& b, const SelIndex* sel,
                          SelIndex count, SelIndex* out) {
  auto with = [&](auto keep_of_cmp) {
    return RefineLoop(sel, count, out, [&](SelIndex, SelIndex r) {
      return keep_of_cmp(a.At(r).compare(b.At(r)));
    });
  };
  switch (op) {
    case BinaryOp::kEq:
      return with([](int c) { return c == 0; });
    case BinaryOp::kNe:
      return with([](int c) { return c != 0; });
    case BinaryOp::kLt:
      return with([](int c) { return c < 0; });
    case BinaryOp::kLe:
      return with([](int c) { return c <= 0; });
    case BinaryOp::kGt:
      return with([](int c) { return c > 0; });
    case BinaryOp::kGe:
      return with([](int c) { return c >= 0; });
    default:
      return 0;
  }
}

SelIndex RefineBool(const uint8_t* bools, bool want, const SelIndex* sel,
                    SelIndex count, SelIndex* out) {
  const uint8_t target = want ? 1 : 0;
  return RefineLoop(sel, count, out, [&](SelIndex, SelIndex r) {
    return (bools[r] != 0 ? 1 : 0) == target;
  });
}

SelIndex SelUnion(const SelIndex* a, SelIndex an, const SelIndex* b,
                  SelIndex bn, SelIndex* out) {
  SelIndex i = 0, j = 0, m = 0;
  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      out[m++] = a[i++];
    } else if (b[j] < a[i]) {
      out[m++] = b[j++];
    } else {
      out[m++] = a[i++];
      ++j;
    }
  }
  while (i < an) out[m++] = a[i++];
  while (j < bn) out[m++] = b[j++];
  return m;
}

SelIndex SelDifference(const SelIndex* sel, SelIndex count,
                       const SelIndex* sub, SelIndex sub_count,
                       SelIndex* out) {
  SelIndex j = 0, m = 0;
  for (SelIndex k = 0; k < count; ++k) {
    if (j < sub_count && sub[j] == sel[k]) {
      ++j;
      continue;
    }
    out[m++] = sel[k];
  }
  return m;
}

Status ArithInt(BinaryOp op, const NumOperand& a, const NumOperand& b,
                const SelIndex* sel, SelIndex count, int64_t* out) {
  switch (op) {
    case BinaryOp::kAdd:
      for (SelIndex k = 0; k < count; ++k) {
        const SelIndex r = sel[k];
        out[k] = a.AtInt(k, r) + b.AtInt(k, r);
      }
      return Status::OK();
    case BinaryOp::kSub:
      for (SelIndex k = 0; k < count; ++k) {
        const SelIndex r = sel[k];
        out[k] = a.AtInt(k, r) - b.AtInt(k, r);
      }
      return Status::OK();
    case BinaryOp::kMul:
      for (SelIndex k = 0; k < count; ++k) {
        const SelIndex r = sel[k];
        out[k] = a.AtInt(k, r) * b.AtInt(k, r);
      }
      return Status::OK();
    case BinaryOp::kMod:
      for (SelIndex k = 0; k < count; ++k) {
        const SelIndex r = sel[k];
        const int64_t d = b.AtInt(k, r);
        if (d == 0) return Status::InvalidArgument("modulo by zero");
        out[k] = a.AtInt(k, r) % d;
      }
      return Status::OK();
    default:
      return Status::InternalError("unhandled int binary op");
  }
}

Status ArithFloat(BinaryOp op, const NumOperand& a, const NumOperand& b,
                  const SelIndex* sel, SelIndex count, double* out) {
  switch (op) {
    case BinaryOp::kAdd:
      for (SelIndex k = 0; k < count; ++k) {
        const SelIndex r = sel[k];
        out[k] = a.At(k, r) + b.At(k, r);
      }
      return Status::OK();
    case BinaryOp::kSub:
      for (SelIndex k = 0; k < count; ++k) {
        const SelIndex r = sel[k];
        out[k] = a.At(k, r) - b.At(k, r);
      }
      return Status::OK();
    case BinaryOp::kMul:
      for (SelIndex k = 0; k < count; ++k) {
        const SelIndex r = sel[k];
        out[k] = a.At(k, r) * b.At(k, r);
      }
      return Status::OK();
    case BinaryOp::kDiv:
      for (SelIndex k = 0; k < count; ++k) {
        const SelIndex r = sel[k];
        out[k] = a.At(k, r) / b.At(k, r);
      }
      return Status::OK();
    case BinaryOp::kMod:
      for (SelIndex k = 0; k < count; ++k) {
        const SelIndex r = sel[k];
        out[k] = std::fmod(a.At(k, r), b.At(k, r));
      }
      return Status::OK();
    default:
      return Status::InternalError("unhandled float binary op");
  }
}

void NegInt(const NumOperand& a, const SelIndex* sel, SelIndex count,
            int64_t* out) {
  for (SelIndex k = 0; k < count; ++k) out[k] = -a.AtInt(k, sel[k]);
}

void NegFloat(const NumOperand& a, const SelIndex* sel, SelIndex count,
              double* out) {
  for (SelIndex k = 0; k < count; ++k) out[k] = -a.At(k, sel[k]);
}

// ------------------------------------------------- canonical key hashing ----

namespace {

constexpr uint64_t kKeySeed = 0xd1b54a32d192ed03ull;

/// splitmix64-style finalizer over (type tag, payload); the tag keeps the
/// cross-type non-equalities of row_key.h (bool 1 never collides with int 1).
inline uint64_t HashScalarPart(uint64_t tag, uint64_t payload) {
  uint64_t x = (tag + 0x9e3779b97f4a7c15ull) ^ payload;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Defined-behavior integral-float canonicalization: row_key.h encodes
/// integral floats as int64 so INT64 keys join FLOAT64 keys. The range guard
/// (2^63 bounds are exactly representable) keeps the cast UBSan-clean for
/// NaN, infinities and out-of-range magnitudes, which all take the
/// non-integral branch.
inline bool IntegralFloat(double v, int64_t* out) {
  if (!(v >= -9223372036854775808.0 && v < 9223372036854775808.0)) {
    return false;
  }
  const int64_t as_int = static_cast<int64_t>(v);
  if (static_cast<double>(as_int) != v) return false;
  *out = as_int;
  return true;
}

inline uint64_t FloatBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// The canonical decoded view of one key part — tag and payload match the
/// byte encoding of row_key.h AppendKeyPart, so view equality is exactly
/// encoded-string equality.
struct PartView {
  uint64_t tag = 0;  // 0 null, 1 bool, 2 int (canonical), 3 float, 4 string
  uint64_t scalar = 0;
  const std::string* str = nullptr;
};

inline PartView KeyPartView(const Column& col, int64_t row) {
  PartView v;
  if (!col.IsValid(row)) return v;  // tag 0
  const size_t i = static_cast<size_t>(row);
  switch (col.type()) {
    case DataType::kBool:
      v.tag = 1;
      v.scalar = col.bools()[i] != 0 ? 1 : 0;
      return v;
    case DataType::kInt64:
      v.tag = 2;
      v.scalar = static_cast<uint64_t>(col.ints()[i]);
      return v;
    case DataType::kFloat64: {
      const double d = col.floats()[i];
      int64_t as_int;
      if (IntegralFloat(d, &as_int)) {
        v.tag = 2;
        v.scalar = static_cast<uint64_t>(as_int);
      } else {
        v.tag = 3;
        v.scalar = FloatBits(d);
      }
      return v;
    }
    case DataType::kString:
    case DataType::kBlob:
      v.tag = 4;
      v.str = &col.strings()[i];
      return v;
    case DataType::kNull:
      return v;  // tag 0, same as AppendKeyPart
  }
  return v;
}

inline uint64_t PartHash(const PartView& v) {
  if (v.tag == 4) return HashScalarPart(4, Hash64(*v.str));
  return HashScalarPart(v.tag, v.scalar);
}

inline bool PartEqual(const PartView& a, const PartView& b) {
  if (a.tag != b.tag) return false;
  if (a.tag == 4) return *a.str == *b.str;
  return a.scalar == b.scalar;
}

}  // namespace

void HashKeyRange(const std::vector<const Column*>& cols, int64_t begin,
                  int64_t end, uint64_t* out) {
  const int64_t n = end - begin;
  for (int64_t i = 0; i < n; ++i) out[i] = kKeySeed;
  for (const Column* c : cols) {
    // Column-at-a-time with the type switch hoisted; the common no-null
    // int64 shape is a pure multiply-xor stream.
    if (c->type() == DataType::kInt64 && !c->HasNulls()) {
      const int64_t* v = c->ints().data() + begin;
      for (int64_t i = 0; i < n; ++i) {
        out[i] = HashCombine(out[i],
                             HashScalarPart(2, static_cast<uint64_t>(v[i])));
      }
      continue;
    }
    if (c->type() == DataType::kFloat64 && !c->HasNulls()) {
      const double* v = c->floats().data() + begin;
      for (int64_t i = 0; i < n; ++i) {
        int64_t as_int;
        const uint64_t h =
            IntegralFloat(v[i], &as_int)
                ? HashScalarPart(2, static_cast<uint64_t>(as_int))
                : HashScalarPart(3, FloatBits(v[i]));
        out[i] = HashCombine(out[i], h);
      }
      continue;
    }
    for (int64_t i = 0; i < n; ++i) {
      out[i] = HashCombine(out[i], PartHash(KeyPartView(*c, begin + i)));
    }
  }
}

uint64_t HashKeyRow(const std::vector<const Column*>& cols, int64_t row) {
  uint64_t h = kKeySeed;
  for (const Column* c : cols) {
    h = HashCombine(h, PartHash(KeyPartView(*c, row)));
  }
  return h;
}

void KeyNullRange(const std::vector<const Column*>& cols, int64_t begin,
                  int64_t end, uint8_t* out) {
  const int64_t n = end - begin;
  std::memset(out, 0, static_cast<size_t>(n));
  for (const Column* c : cols) {
    if (!c->HasNulls() && c->type() != DataType::kNull) continue;
    for (int64_t i = 0; i < n; ++i) {
      if (!c->IsValid(begin + i) || c->type() == DataType::kNull) out[i] = 1;
    }
  }
}

bool CanonicalKeyRowsEqual(const std::vector<const Column*>& a, int64_t ra,
                           const std::vector<const Column*>& b, int64_t rb) {
  for (size_t c = 0; c < a.size(); ++c) {
    if (!PartEqual(KeyPartView(*a[c], ra), KeyPartView(*b[c], rb))) {
      return false;
    }
  }
  return true;
}

void EncodeColumnKeysRange(const Column& col, int64_t begin, int64_t end,
                           std::vector<std::string>* out) {
  for (int64_t r = begin; r < end; ++r) {
    std::string k;
    if (col.IsValid(r)) AppendKeyPart(col, r, &k);
    out->push_back(std::move(k));  // empty = NULL, never joins
  }
}

// ------------------------------------------------- aggregate accumulation ----

void AccumulateCount(const SelIndex* gids, SelIndex n, VAggState* states) {
  for (SelIndex i = 0; i < n; ++i) ++states[gids[i]].count;
}

void AccumulateCountBool(const uint8_t* bools, const SelIndex* gids,
                         SelIndex n, VAggState* states) {
  for (SelIndex i = 0; i < n; ++i) {
    states[gids[i]].count += bools[i] != 0 ? 1 : 0;
  }
}

void AccumulateSumInt(const int64_t* vals, const SelIndex* gids, SelIndex n,
                      VAggState* states) {
  for (SelIndex i = 0; i < n; ++i) {
    VAggState& st = states[gids[i]];
    const double d = static_cast<double>(vals[i]);
    ++st.count;
    st.sum += d;
    st.sumsq += d * d;
  }
}

void AccumulateSumFloat(const double* vals, const SelIndex* gids, SelIndex n,
                        VAggState* states) {
  for (SelIndex i = 0; i < n; ++i) {
    VAggState& st = states[gids[i]];
    const double d = vals[i];
    ++st.count;
    st.sum += d;
    st.sumsq += d * d;
  }
}

void AccumulateMinMaxInt(const int64_t* vals, const SelIndex* gids,
                         SelIndex n, bool want_min, VAggState* states) {
  if (want_min) {
    for (SelIndex i = 0; i < n; ++i) {
      VAggState& st = states[gids[i]];
      const int64_t v = vals[i];
      if (!st.has_minmax || v < st.imin_max) st.imin_max = v;
      st.has_minmax = true;
    }
  } else {
    for (SelIndex i = 0; i < n; ++i) {
      VAggState& st = states[gids[i]];
      const int64_t v = vals[i];
      if (!st.has_minmax || v > st.imin_max) st.imin_max = v;
      st.has_minmax = true;
    }
  }
}

void AccumulateMinMaxFloat(const double* vals, const SelIndex* gids,
                           SelIndex n, bool want_min, VAggState* states) {
  // Strict < / > against the current extremum reproduces Value::Compare's
  // "replace only when strictly better", so ties keep the first-seen value.
  if (want_min) {
    for (SelIndex i = 0; i < n; ++i) {
      VAggState& st = states[gids[i]];
      const double v = vals[i];
      if (!st.has_minmax || v < st.fmin_max) st.fmin_max = v;
      st.has_minmax = true;
    }
  } else {
    for (SelIndex i = 0; i < n; ++i) {
      VAggState& st = states[gids[i]];
      const double v = vals[i];
      if (!st.has_minmax || v > st.fmin_max) st.fmin_max = v;
      st.has_minmax = true;
    }
  }
}

void MergeVAggState(VAggState* dst, const VAggState& src, bool want_min) {
  dst->count += src.count;
  dst->sum += src.sum;
  dst->sumsq += src.sumsq;
  if (src.has_minmax) {
    if (!dst->has_minmax) {
      dst->imin_max = src.imin_max;
      dst->fmin_max = src.fmin_max;
    } else if (want_min) {
      dst->imin_max = std::min(dst->imin_max, src.imin_max);
      dst->fmin_max = std::min(dst->fmin_max, src.fmin_max);
    } else {
      dst->imin_max = std::max(dst->imin_max, src.imin_max);
      dst->fmin_max = std::max(dst->fmin_max, src.fmin_max);
    }
    dst->has_minmax = true;
  }
}

}  // namespace dl2sql::db::vec
