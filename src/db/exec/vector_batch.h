/// \file vector_batch.h
/// \brief Batch-at-a-time execution primitives: the batch window, selection
/// vectors, typed operand views and the per-batch scratch arena.
///
/// A VectorBatch is a [begin, begin+rows) window over a table's columns —
/// one morsel of the morsel-parallel driver. Kernels never materialize
/// per-row Values inside a batch; they read typed column slices directly and
/// communicate which rows are still live through a selection vector of
/// in-window indices. Selection vectors are always ascending, so
/// concatenating per-batch survivor lists in morsel order reproduces the
/// row-at-a-time result order exactly (see DESIGN.md, "Vectorized
/// execution").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mem_tracker.h"
#include "db/column.h"

namespace dl2sql::db::vec {

/// In-window row index. Batches are morsel-sized (<< 2^31 rows), so 32 bits
/// keep selection vectors cache-resident.
using SelIndex = int32_t;

/// Per-operator kernel accounting, folded into the EvalContext after the
/// morsel loop completes (no atomics on the hot path): number of batches
/// processed, rows entering the operator's kernels, and rows surviving
/// selection. `rows_selected / rows_in` is the average selection-vector
/// density ExplainAnalyze reports; kernels without a selection phase (hash,
/// accumulate) count every input row as selected.
struct VectorOpStats {
  int64_t batches = 0;
  int64_t rows_in = 0;
  int64_t rows_selected = 0;
};

/// \brief One batch window over the input plus its live selection vector.
struct VectorBatch {
  int64_t begin = 0;   ///< first table row of the window
  SelIndex rows = 0;   ///< window height (<= morsel size)
  const SelIndex* sel = nullptr;  ///< ascending in-window survivors
  SelIndex count = 0;             ///< live entries in `sel`
};

/// \brief A typed numeric operand inside one batch: a dense column slice
/// (indexed by in-window row), a sel-compressed scratch buffer (indexed by
/// selection slot), or an immediate. Kernels receive (slot, row) pairs and
/// pick the right index per kind, so column data is never gathered just to
/// line it up with a selection vector.
struct NumOperand {
  enum class Kind : uint8_t {
    kDenseInt,    ///< i64[row]
    kDenseFloat,  ///< f64[row]
    kCompInt,     ///< i64[slot] (computed, sel-compressed)
    kCompFloat,   ///< f64[slot]
    kImmInt,      ///< imm_i
    kImmFloat,    ///< imm_f
  };
  Kind kind = Kind::kImmFloat;
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  int64_t imm_i = 0;
  double imm_f = 0;

  bool IsInt() const {
    return kind == Kind::kDenseInt || kind == Kind::kCompInt ||
           kind == Kind::kImmInt;
  }

  /// Value as double at selection slot `k` referencing in-window row `r`.
  double At(SelIndex k, SelIndex r) const {
    switch (kind) {
      case Kind::kDenseInt:
        return static_cast<double>(i64[r]);
      case Kind::kDenseFloat:
        return f64[r];
      case Kind::kCompInt:
        return static_cast<double>(i64[k]);
      case Kind::kCompFloat:
        return f64[k];
      case Kind::kImmInt:
        return static_cast<double>(imm_i);
      case Kind::kImmFloat:
        return imm_f;
    }
    return 0;
  }

  /// Integer value at (slot, row); only meaningful when IsInt().
  int64_t AtInt(SelIndex k, SelIndex r) const {
    switch (kind) {
      case Kind::kDenseInt:
        return i64[r];
      case Kind::kCompInt:
        return i64[k];
      case Kind::kImmInt:
        return imm_i;
      default:
        return static_cast<int64_t>(At(k, r));
    }
  }

  static NumOperand DenseInt(const int64_t* p) {
    NumOperand o;
    o.kind = Kind::kDenseInt;
    o.i64 = p;
    return o;
  }
  static NumOperand DenseFloat(const double* p) {
    NumOperand o;
    o.kind = Kind::kDenseFloat;
    o.f64 = p;
    return o;
  }
  static NumOperand CompInt(const int64_t* p) {
    NumOperand o;
    o.kind = Kind::kCompInt;
    o.i64 = p;
    return o;
  }
  static NumOperand CompFloat(const double* p) {
    NumOperand o;
    o.kind = Kind::kCompFloat;
    o.f64 = p;
    return o;
  }
  static NumOperand ImmInt(int64_t v) {
    NumOperand o;
    o.kind = Kind::kImmInt;
    o.imm_i = v;
    return o;
  }
  static NumOperand ImmFloat(double v) {
    NumOperand o;
    o.kind = Kind::kImmFloat;
    o.imm_f = v;
    return o;
  }
};

/// \brief Scratch allocator for one batch's intermediates (compressed
/// expression results, selection-vector ping-pong buffers). Buffers are
/// recycled across batches of the same morsel-loop body: Reset() rewinds the
/// cursors without freeing, so steady state performs no allocation.
class BatchArena {
 public:
  int64_t* AcquireI64(int64_t n) { return Acquire(&i64_, &i64_used_, n); }
  double* AcquireF64(int64_t n) { return Acquire(&f64_, &f64_used_, n); }
  SelIndex* AcquireSel(int64_t n) { return Acquire(&sel_, &sel_used_, n); }

  /// Rewinds the arena for the next batch; capacity is retained.
  void Reset() {
    i64_used_ = 0;
    f64_used_ = 0;
    sel_used_ = 0;
  }

  /// Process-level tracker for pooled batch buffers. Arenas are per
  /// morsel-loop body and their buffers are recycled across batches, so the
  /// footprint belongs to the executor, not any single query; charges batch
  /// through a BatchedMemCharge so steady state (no growth) never touches
  /// the tracker.
  static MemTracker* Tracker() {
    static MemTracker* const tracker =
        new MemTracker("exec.arena", MemTracker::Process());
    return tracker;
  }

 private:
  template <typename T>
  T* Acquire(std::vector<std::unique_ptr<std::vector<T>>>* pool, size_t* used,
             int64_t n) {
    if (*used == pool->size()) {
      pool->push_back(std::make_unique<std::vector<T>>());
    }
    std::vector<T>& buf = *(*pool)[*used];
    if (static_cast<int64_t>(buf.size()) < n) {
      mem_.Add(static_cast<int64_t>(
          (static_cast<size_t>(n) - buf.size()) * sizeof(T)));
      buf.resize(static_cast<size_t>(n));
    }
    ++*used;
    return buf.data();
  }

  std::vector<std::unique_ptr<std::vector<int64_t>>> i64_;
  std::vector<std::unique_ptr<std::vector<double>>> f64_;
  std::vector<std::unique_ptr<std::vector<SelIndex>>> sel_;
  size_t i64_used_ = 0;
  size_t f64_used_ = 0;
  size_t sel_used_ = 0;
  /// Releases everything this arena grew on destruction.
  BatchedMemCharge mem_{Tracker()};
};

}  // namespace dl2sql::db::vec
