/// \file row_key.h
/// \brief Binary row-key encoding for hash joins and hash aggregation.
#pragma once

#include <string>
#include <vector>

#include "db/column.h"

namespace dl2sql::db {

/// Appends a collision-free encoding of column[row] to `out`.
/// Layout: 1 type byte, then a fixed- or length-prefixed payload. NULL is
/// encoded as its own type byte so NULL keys group together in GROUP BY.
inline void AppendKeyPart(const Column& col, int64_t row, std::string* out) {
  if (!col.IsValid(row)) {
    out->push_back('\x00');
    return;
  }
  const size_t i = static_cast<size_t>(row);
  switch (col.type()) {
    case DataType::kBool: {
      out->push_back('\x01');
      out->push_back(col.bools()[i] != 0 ? '\x01' : '\x00');
      return;
    }
    case DataType::kInt64: {
      out->push_back('\x02');
      const int64_t v = col.ints()[i];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return;
    }
    case DataType::kFloat64: {
      // Integral floats are encoded as ints so joins across INT64/FLOAT64
      // key columns (common in generated SQL) match.
      const double v = col.floats()[i];
      const int64_t as_int = static_cast<int64_t>(v);
      if (static_cast<double>(as_int) == v) {
        out->push_back('\x02');
        out->append(reinterpret_cast<const char*>(&as_int), sizeof(as_int));
        return;
      }
      out->push_back('\x03');
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return;
    }
    case DataType::kString:
    case DataType::kBlob: {
      out->push_back('\x04');
      const std::string& s = col.strings()[i];
      const uint32_t len = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
      return;
    }
    case DataType::kNull:
      out->push_back('\x00');
      return;
  }
}

/// Encodes one row's key across several columns.
inline std::string EncodeRowKey(const std::vector<const Column*>& cols,
                                int64_t row) {
  std::string key;
  for (const Column* c : cols) AppendKeyPart(*c, row, &key);
  return key;
}

/// True if any key column is NULL at `row` (NULL keys never join).
inline bool RowKeyHasNull(const std::vector<const Column*>& cols, int64_t row) {
  for (const Column* c : cols) {
    if (!c->IsValid(row)) return true;
  }
  return false;
}

}  // namespace dl2sql::db
