/// \file vector_aggregate.h
/// \brief Batch-at-a-time hash aggregation over typed accumulator arrays.
///
/// Group assignment happens morsel-at-a-time (batched canonical key hashing
/// for the generic key shape, direct typed maps for the hot 1/2-int-key
/// shapes) producing a gid-per-row buffer; each aggregate then updates its
/// contiguous per-group state array with one tight typed loop per batch.
/// Accumulation order within a group is row order — serially the float sums
/// are bit-identical to the row path, and the parallel worker-order merge
/// mirrors the row path's MergeAggState fold exactly.
#pragma once

#include <vector>

#include "db/eval.h"
#include "db/plan.h"
#include "db/table.h"

namespace dl2sql::db::vec {

/// Attempts the vectorized aggregation for `node` over pre-evaluated group
/// keys and aggregate arguments (`n` input rows). Returns true and fills
/// `out` with the complete result table — identical to the row path's
/// emission — when every aggregate compiled to a typed kernel; returns false
/// (out untouched) when any aggregate or key shape is unsupported
/// (NULL-bearing argument columns, string MIN/MAX, kNull-typed arguments),
/// in which case the caller must run the row path.
Result<bool> TryVectorAggregate(const PlanNode& node,
                                const std::vector<ColumnHandle>& key_cols,
                                const std::vector<ColumnHandle>& arg_cols,
                                int64_t n, EvalContext* ctx, Table* out);

}  // namespace dl2sql::db::vec
