#include "db/exec/vector_filter.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "accel/thread_pool.h"
#include "common/trace.h"
#include "db/exec/vector_batch.h"
#include "db/exec/vector_kernels.h"

namespace dl2sql::db::vec {

namespace {

// ------------------------------------------------------------- compile ----

/// A numeric scalar sub-expression compiled to kernel form. `is_int` is the
/// value domain the row path's FastBinary would produce (int arithmetic
/// stays int64 with wraparound; kDiv is always float; kMod over floats is
/// fmod), so the vectorized intermediates carry exactly the same values.
struct CompiledNum {
  enum class Kind : uint8_t { kColInt, kColFloat, kImmInt, kImmFloat, kBin, kNeg };
  Kind kind = Kind::kImmFloat;
  const Column* col = nullptr;
  int64_t imm_i = 0;
  double imm_f = 0;
  BinaryOp op = BinaryOp::kAdd;
  bool is_int = false;
  std::unique_ptr<CompiledNum> l, r;
};

struct CompiledPred {
  enum class Kind : uint8_t {
    kAnd,
    kOr,
    kNot,
    kCmpNum,
    kCmpStr,
    kBoolCol,
    kConst,
  };
  Kind kind = Kind::kConst;
  BinaryOp cmp = BinaryOp::kEq;
  std::unique_ptr<CompiledNum> a, b;       // kCmpNum
  const Column* str_col_a = nullptr;       // kCmpStr operands: column xor
  const Column* str_col_b = nullptr;       // immediate
  std::string str_imm_a, str_imm_b;
  bool a_is_imm = false, b_is_imm = false;
  const Column* bool_col = nullptr;        // kBoolCol
  bool const_value = false;                // kConst
  std::unique_ptr<CompiledPred> l, r;      // kAnd/kOr; kNot uses l
};

const Column* ResolveColumn(const Expr& e, const Table& input) {
  int idx = e.bound_index;
  if (idx < 0) {
    auto found = input.schema().Find(e.column_name);
    if (!found.ok()) return nullptr;
    idx = *found;
  }
  if (idx < 0 || idx >= input.num_columns()) return nullptr;
  return &input.column(idx);
}

std::unique_ptr<CompiledNum> CompileNum(const Expr& e, const Table& input) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      auto out = std::make_unique<CompiledNum>();
      if (e.literal.type() == DataType::kInt64) {
        out->kind = CompiledNum::Kind::kImmInt;
        out->imm_i = e.literal.int_value();
        out->is_int = true;
        return out;
      }
      if (e.literal.type() == DataType::kFloat64) {
        out->kind = CompiledNum::Kind::kImmFloat;
        out->imm_f = e.literal.float_value();
        return out;
      }
      return nullptr;
    }
    case ExprKind::kColumnRef: {
      const Column* col = ResolveColumn(e, input);
      if (col == nullptr || col->HasNulls()) return nullptr;
      auto out = std::make_unique<CompiledNum>();
      out->col = col;
      if (col->type() == DataType::kInt64) {
        out->kind = CompiledNum::Kind::kColInt;
        out->is_int = true;
        return out;
      }
      if (col->type() == DataType::kFloat64) {
        out->kind = CompiledNum::Kind::kColFloat;
        return out;
      }
      return nullptr;
    }
    case ExprKind::kBinary: {
      switch (e.bin_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          break;
        default:
          return nullptr;
      }
      auto l = CompileNum(*e.children[0], input);
      if (l == nullptr) return nullptr;
      auto r = CompileNum(*e.children[1], input);
      if (r == nullptr) return nullptr;
      auto out = std::make_unique<CompiledNum>();
      out->kind = CompiledNum::Kind::kBin;
      out->op = e.bin_op;
      out->is_int =
          e.bin_op != BinaryOp::kDiv && l->is_int && r->is_int;
      out->l = std::move(l);
      out->r = std::move(r);
      return out;
    }
    case ExprKind::kUnary: {
      if (e.un_op != UnaryOp::kNeg) return nullptr;
      auto x = CompileNum(*e.children[0], input);
      if (x == nullptr) return nullptr;
      auto out = std::make_unique<CompiledNum>();
      out->kind = CompiledNum::Kind::kNeg;
      out->is_int = x->is_int;
      out->l = std::move(x);
      return out;
    }
    default:
      return nullptr;
  }
}

/// Compiles a string operand: a no-null STRING column or a string literal.
/// BLOB columns fall back, mirroring FastStringCompare's gate.
bool CompileStrOperand(const Expr& e, const Table& input, const Column** col,
                       std::string* imm, bool* is_imm) {
  if (e.kind == ExprKind::kLiteral && e.literal.type() == DataType::kString) {
    *imm = e.literal.string_value();
    *is_imm = true;
    return true;
  }
  if (e.kind == ExprKind::kColumnRef) {
    const Column* c = ResolveColumn(e, input);
    if (c != nullptr && c->type() == DataType::kString && !c->HasNulls()) {
      *col = c;
      *is_imm = false;
      return true;
    }
  }
  return false;
}

std::unique_ptr<CompiledPred> CompilePred(const Expr& e, const Table& input) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      if (e.literal.type() != DataType::kBool) return nullptr;
      auto out = std::make_unique<CompiledPred>();
      out->kind = CompiledPred::Kind::kConst;
      out->const_value = e.literal.bool_value();
      return out;
    }
    case ExprKind::kColumnRef: {
      const Column* col = ResolveColumn(e, input);
      if (col == nullptr || col->type() != DataType::kBool || col->HasNulls()) {
        return nullptr;
      }
      auto out = std::make_unique<CompiledPred>();
      out->kind = CompiledPred::Kind::kBoolCol;
      out->bool_col = col;
      return out;
    }
    case ExprKind::kUnary: {
      if (e.un_op != UnaryOp::kNot) return nullptr;
      auto child = CompilePred(*e.children[0], input);
      if (child == nullptr) return nullptr;
      auto out = std::make_unique<CompiledPred>();
      out->kind = CompiledPred::Kind::kNot;
      out->l = std::move(child);
      return out;
    }
    case ExprKind::kBinary: {
      if (e.bin_op == BinaryOp::kAnd || e.bin_op == BinaryOp::kOr) {
        auto l = CompilePred(*e.children[0], input);
        if (l == nullptr) return nullptr;
        auto r = CompilePred(*e.children[1], input);
        if (r == nullptr) return nullptr;
        auto out = std::make_unique<CompiledPred>();
        out->kind = e.bin_op == BinaryOp::kAnd ? CompiledPred::Kind::kAnd
                                               : CompiledPred::Kind::kOr;
        out->l = std::move(l);
        out->r = std::move(r);
        return out;
      }
      if (!IsComparison(e.bin_op)) return nullptr;
      // Numeric comparison?
      auto a = CompileNum(*e.children[0], input);
      if (a != nullptr) {
        auto b = CompileNum(*e.children[1], input);
        if (b == nullptr) return nullptr;
        auto out = std::make_unique<CompiledPred>();
        out->kind = CompiledPred::Kind::kCmpNum;
        out->cmp = e.bin_op;
        out->a = std::move(a);
        out->b = std::move(b);
        return out;
      }
      // String comparison?
      auto out = std::make_unique<CompiledPred>();
      if (!CompileStrOperand(*e.children[0], input, &out->str_col_a,
                             &out->str_imm_a, &out->a_is_imm) ||
          !CompileStrOperand(*e.children[1], input, &out->str_col_b,
                             &out->str_imm_b, &out->b_is_imm)) {
        return nullptr;
      }
      out->kind = CompiledPred::Kind::kCmpStr;
      out->cmp = e.bin_op;
      return out;
    }
    default:
      return nullptr;
  }
}

// ---------------------------------------------------------- batch eval ----

Result<NumOperand> EvalNum(const CompiledNum& e, int64_t begin,
                           const SelIndex* sel, SelIndex count,
                           BatchArena* arena) {
  switch (e.kind) {
    case CompiledNum::Kind::kColInt:
      return NumOperand::DenseInt(e.col->ints().data() + begin);
    case CompiledNum::Kind::kColFloat:
      return NumOperand::DenseFloat(e.col->floats().data() + begin);
    case CompiledNum::Kind::kImmInt:
      return NumOperand::ImmInt(e.imm_i);
    case CompiledNum::Kind::kImmFloat:
      return NumOperand::ImmFloat(e.imm_f);
    case CompiledNum::Kind::kNeg: {
      DL2SQL_ASSIGN_OR_RETURN(NumOperand x,
                              EvalNum(*e.l, begin, sel, count, arena));
      if (e.is_int) {
        int64_t* out = arena->AcquireI64(count);
        NegInt(x, sel, count, out);
        return NumOperand::CompInt(out);
      }
      double* out = arena->AcquireF64(count);
      NegFloat(x, sel, count, out);
      return NumOperand::CompFloat(out);
    }
    case CompiledNum::Kind::kBin: {
      DL2SQL_ASSIGN_OR_RETURN(NumOperand a,
                              EvalNum(*e.l, begin, sel, count, arena));
      DL2SQL_ASSIGN_OR_RETURN(NumOperand b,
                              EvalNum(*e.r, begin, sel, count, arena));
      if (e.is_int) {
        int64_t* out = arena->AcquireI64(count);
        DL2SQL_RETURN_NOT_OK(ArithInt(e.op, a, b, sel, count, out));
        return NumOperand::CompInt(out);
      }
      double* out = arena->AcquireF64(count);
      DL2SQL_RETURN_NOT_OK(ArithFloat(e.op, a, b, sel, count, out));
      return NumOperand::CompFloat(out);
    }
  }
  return Status::InternalError("unhandled compiled numeric kind");
}

Result<SelIndex> RefinePred(const CompiledPred& p, int64_t begin,
                            const SelIndex* sel, SelIndex count,
                            SelIndex* out, BatchArena* arena) {
  switch (p.kind) {
    case CompiledPred::Kind::kCmpNum: {
      DL2SQL_ASSIGN_OR_RETURN(NumOperand a,
                              EvalNum(*p.a, begin, sel, count, arena));
      DL2SQL_ASSIGN_OR_RETURN(NumOperand b,
                              EvalNum(*p.b, begin, sel, count, arena));
      return RefineCompareNum(p.cmp, a, b, sel, count, out);
    }
    case CompiledPred::Kind::kCmpStr: {
      StrOperand a, b;
      if (p.a_is_imm) {
        a.imm = &p.str_imm_a;
      } else {
        a.base = p.str_col_a->strings().data() + begin;
      }
      if (p.b_is_imm) {
        b.imm = &p.str_imm_b;
      } else {
        b.base = p.str_col_b->strings().data() + begin;
      }
      return RefineCompareStr(p.cmp, a, b, sel, count, out);
    }
    case CompiledPred::Kind::kBoolCol:
      return RefineBool(p.bool_col->bools().data() + begin, true, sel, count,
                        out);
    case CompiledPred::Kind::kConst:
      if (!p.const_value) return 0;
      std::copy(sel, sel + count, out);
      return count;
    case CompiledPred::Kind::kAnd: {
      SelIndex* tmp = arena->AcquireSel(count);
      DL2SQL_ASSIGN_OR_RETURN(SelIndex m,
                              RefinePred(*p.l, begin, sel, count, tmp, arena));
      return RefinePred(*p.r, begin, tmp, m, out, arena);
    }
    case CompiledPred::Kind::kOr: {
      SelIndex* t1 = arena->AcquireSel(count);
      SelIndex* t2 = arena->AcquireSel(count);
      DL2SQL_ASSIGN_OR_RETURN(SelIndex m1,
                              RefinePred(*p.l, begin, sel, count, t1, arena));
      DL2SQL_ASSIGN_OR_RETURN(SelIndex m2,
                              RefinePred(*p.r, begin, sel, count, t2, arena));
      return SelUnion(t1, m1, t2, m2, out);
    }
    case CompiledPred::Kind::kNot: {
      // Exact 2VL complement: refine the child, then subtract. Avoids
      // negated-comparison rewrites, which would diverge from the row path
      // on NaN operands.
      SelIndex* tmp = arena->AcquireSel(count);
      DL2SQL_ASSIGN_OR_RETURN(SelIndex m,
                              RefinePred(*p.l, begin, sel, count, tmp, arena));
      return SelDifference(sel, count, tmp, m, out);
    }
  }
  return Status::InternalError("unhandled compiled predicate kind");
}

}  // namespace

bool IsVectorizablePredicate(const Expr& predicate, const Table& input) {
  return CompilePred(predicate, input) != nullptr;
}

Result<bool> TryVectorFilter(const Expr& predicate, const Table& input,
                             EvalContext* ctx,
                             std::vector<int64_t>* out_rows) {
  const std::unique_ptr<CompiledPred> compiled = CompilePred(predicate, input);
  if (compiled == nullptr) return false;

  DL2SQL_TRACE_SPAN("vector", "filter");
  const int64_t n = input.num_rows();
  const int64_t m = ctx != nullptr && ctx->morsel_size > 0
                        ? ctx->morsel_size
                        : ThreadPool::kDefaultMorselSize;
  const int64_t num_morsels = n == 0 ? 0 : (n + m - 1) / m;
  std::vector<std::vector<int64_t>> parts(static_cast<size_t>(num_morsels));
  const int workers =
      ctx != nullptr && ctx->pool != nullptr ? ctx->pool->num_threads() : 1;
  // One arena per worker: buffers are recycled across that worker's
  // morsels, so steady state allocates nothing inside the loop.
  std::vector<BatchArena> arenas(static_cast<size_t>(std::max(1, workers)));

  auto body = [&](int64_t bgn, int64_t end, int worker) -> Status {
    BatchArena& arena = arenas[static_cast<size_t>(worker)];
    arena.Reset();
    const SelIndex rows = static_cast<SelIndex>(end - bgn);
    SelIndex* identity = arena.AcquireSel(rows);
    for (SelIndex i = 0; i < rows; ++i) identity[i] = i;
    SelIndex* survivors = arena.AcquireSel(rows);
    DL2SQL_ASSIGN_OR_RETURN(
        SelIndex count,
        RefinePred(*compiled, bgn, identity, rows, survivors, &arena));
    auto& part = parts[static_cast<size_t>(bgn / m)];
    part.reserve(static_cast<size_t>(count));
    for (SelIndex k = 0; k < count; ++k) {
      part.push_back(bgn + survivors[k]);
    }
    return Status::OK();
  };
  // Mirror ForEachMorsel: any wired pool runs the morsel loop (it degrades
  // to inline serial execution for single-threaded pools and single-morsel
  // inputs), so pool accounting and trace spans match the row path.
  if (ctx != nullptr && ctx->pool != nullptr) {
    DL2SQL_RETURN_NOT_OK(ctx->pool->ParallelForMorsel(n, m, body));
  } else {
    for (int64_t b = 0; b < n; b += m) {
      DL2SQL_RETURN_NOT_OK(body(b, std::min(n, b + m), 0));
    }
  }

  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out_rows->clear();
  out_rows->reserve(total);
  for (const auto& p : parts) {
    out_rows->insert(out_rows->end(), p.begin(), p.end());
  }
  if (ctx != nullptr) {
    ctx->vec_batches += num_morsels;
    ctx->vec_rows_in += n;
    ctx->vec_rows_selected += static_cast<int64_t>(total);
  }
  return true;
}

}  // namespace dl2sql::db::vec
