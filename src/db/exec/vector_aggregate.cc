#include "db/exec/vector_aggregate.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "accel/thread_pool.h"
#include "common/trace.h"
#include "db/exec/vector_batch.h"
#include "db/exec/vector_kernels.h"

namespace dl2sql::db::vec {

namespace {

/// Composite key for the two-int64 fast path (batched pipelines group on
/// (BatchID, TupleID)-style pairs); same shape as the row path's.
struct Int2Key {
  int64_t a;
  int64_t b;
  bool operator==(const Int2Key& o) const { return a == o.a && b == o.b; }
};

struct Int2KeyHash {
  size_t operator()(const Int2Key& k) const {
    uint64_t x = static_cast<uint64_t>(k.a) * 0x9e3779b97f4a7c15ull;
    x ^= static_cast<uint64_t>(k.b) + 0x9e3779b97f4a7c15ull + (x << 6) +
         (x >> 2);
    return static_cast<size_t>(x);
  }
};

/// One aggregate compiled to a typed accumulation kernel.
struct VAggSpec {
  enum class Kind : uint8_t {
    kCountStar,
    kCountAll,   ///< COUNT over a no-null non-bool column: every row counts
    kCountBool,  ///< COUNT over a no-null bool column: TRUE rows count
    kSumInt,     ///< SUM/AVG/STDDEV int64 source
    kSumFloat,
    kMinMaxInt,
    kMinMaxFloat,
  };
  Kind kind = Kind::kCountStar;
  const Column* arg = nullptr;
  bool want_min = false;
};

/// Groups in first-seen order with per-aggregate contiguous state arrays
/// (states[a][gid]), the layout the accumulation kernels stream over.
struct GroupSet {
  std::vector<int64_t> first_row;
  std::vector<std::vector<VAggState>> per_agg;

  explicit GroupSet(size_t num_aggs) : per_agg(num_aggs) {}

  size_t size() const { return first_row.size(); }

  void SyncStates() {
    for (auto& states : per_agg) states.resize(first_row.size());
  }
};

/// Runs the compiled kernels for one morsel: `gids[i]` is the group of row
/// `bgn + i`. States must already be sized (SyncStates).
void AccumulateMorsel(const std::vector<VAggSpec>& specs, int64_t bgn,
                      SelIndex rows, const SelIndex* gids, GroupSet* gs) {
  for (size_t a = 0; a < specs.size(); ++a) {
    const VAggSpec& s = specs[a];
    VAggState* states = gs->per_agg[a].data();
    switch (s.kind) {
      case VAggSpec::Kind::kCountStar:
      case VAggSpec::Kind::kCountAll:
        AccumulateCount(gids, rows, states);
        break;
      case VAggSpec::Kind::kCountBool:
        AccumulateCountBool(s.arg->bools().data() + bgn, gids, rows, states);
        break;
      case VAggSpec::Kind::kSumInt:
        AccumulateSumInt(s.arg->ints().data() + bgn, gids, rows, states);
        break;
      case VAggSpec::Kind::kSumFloat:
        AccumulateSumFloat(s.arg->floats().data() + bgn, gids, rows, states);
        break;
      case VAggSpec::Kind::kMinMaxInt:
        AccumulateMinMaxInt(s.arg->ints().data() + bgn, gids, rows,
                            s.want_min, states);
        break;
      case VAggSpec::Kind::kMinMaxFloat:
        AccumulateMinMaxFloat(s.arg->floats().data() + bgn, gids, rows,
                              s.want_min, states);
        break;
    }
  }
}

/// Per-worker (or serial) grouping state for the generic key shape: morsel
/// keys are hashed in one batch, then candidates are resolved through a
/// hash -> gid-list map with exact canonical-key verification.
struct HashedIndex {
  std::unordered_map<uint64_t, std::vector<SelIndex>> map;
  std::vector<uint64_t> hash_buf;

  SelIndex FindOrInsert(const std::vector<const Column*>& kptrs, int64_t row,
                        uint64_t hash, GroupSet* gs) {
    std::vector<SelIndex>& bucket = map[hash];
    for (SelIndex gid : bucket) {
      if (CanonicalKeyRowsEqual(kptrs, row, kptrs,
                                gs->first_row[static_cast<size_t>(gid)])) {
        return gid;
      }
    }
    const SelIndex gid = static_cast<SelIndex>(gs->size());
    bucket.push_back(gid);
    gs->first_row.push_back(row);
    return gid;
  }
};

/// Assigns a gid to every row of [bgn, end) for one key shape, growing `gs`.
/// The three strategies mirror the row path's index selection exactly.
class Grouper {
 public:
  enum class Kind : uint8_t { kGlobal, kInt1, kInt2, kHashed };

  static Grouper Make(const std::vector<const Column*>& kptrs) {
    Grouper g;
    g.kptrs_ = kptrs;
    auto int_keys = [&](size_t count) {
      if (kptrs.size() != count) return false;
      for (const Column* k : kptrs) {
        if (k->type() != DataType::kInt64 || k->HasNulls()) return false;
      }
      return true;
    };
    if (kptrs.empty()) {
      g.kind_ = Kind::kGlobal;
    } else if (int_keys(1)) {
      g.kind_ = Kind::kInt1;
    } else if (int_keys(2)) {
      g.kind_ = Kind::kInt2;
    } else {
      g.kind_ = Kind::kHashed;
    }
    return g;
  }

  void AssignGids(int64_t bgn, int64_t end, SelIndex* gids, GroupSet* gs) {
    const SelIndex rows = static_cast<SelIndex>(end - bgn);
    switch (kind_) {
      case Kind::kGlobal: {
        if (gs->first_row.empty() && rows > 0) gs->first_row.push_back(bgn);
        for (SelIndex i = 0; i < rows; ++i) gids[i] = 0;
        return;
      }
      case Kind::kInt1: {
        const int64_t* keys = kptrs_[0]->ints().data();
        for (SelIndex i = 0; i < rows; ++i) {
          const int64_t row = bgn + i;
          auto [it, inserted] =
              int1_.try_emplace(keys[row], static_cast<SelIndex>(gs->size()));
          if (inserted) gs->first_row.push_back(row);
          gids[i] = it->second;
        }
        return;
      }
      case Kind::kInt2: {
        const int64_t* k0 = kptrs_[0]->ints().data();
        const int64_t* k1 = kptrs_[1]->ints().data();
        for (SelIndex i = 0; i < rows; ++i) {
          const int64_t row = bgn + i;
          auto [it, inserted] = int2_.try_emplace(
              Int2Key{k0[row], k1[row]}, static_cast<SelIndex>(gs->size()));
          if (inserted) gs->first_row.push_back(row);
          gids[i] = it->second;
        }
        return;
      }
      case Kind::kHashed: {
        hashed_.hash_buf.resize(static_cast<size_t>(rows));
        HashKeyRange(kptrs_, bgn, end, hashed_.hash_buf.data());
        for (SelIndex i = 0; i < rows; ++i) {
          gids[i] = hashed_.FindOrInsert(kptrs_, bgn + i,
                                         hashed_.hash_buf[static_cast<size_t>(i)],
                                         gs);
        }
        return;
      }
    }
  }

  /// Merge-time lookup: the gid of `row`'s key in `gs`, or inserts it.
  SelIndex MergeFindOrInsert(int64_t row, GroupSet* gs) {
    switch (kind_) {
      case Kind::kGlobal: {
        if (gs->first_row.empty()) {
          gs->first_row.push_back(row);
        }
        return 0;
      }
      case Kind::kInt1: {
        const int64_t* keys = kptrs_[0]->ints().data();
        auto [it, inserted] =
            int1_.try_emplace(keys[row], static_cast<SelIndex>(gs->size()));
        if (inserted) gs->first_row.push_back(row);
        return it->second;
      }
      case Kind::kInt2: {
        const int64_t* k0 = kptrs_[0]->ints().data();
        const int64_t* k1 = kptrs_[1]->ints().data();
        auto [it, inserted] = int2_.try_emplace(
            Int2Key{k0[row], k1[row]}, static_cast<SelIndex>(gs->size()));
        if (inserted) gs->first_row.push_back(row);
        return it->second;
      }
      case Kind::kHashed:
        return hashed_.FindOrInsert(kptrs_, row, HashKeyRow(kptrs_, row), gs);
    }
    return 0;
  }

 private:
  Kind kind_ = Kind::kGlobal;
  std::vector<const Column*> kptrs_;
  std::unordered_map<int64_t, SelIndex> int1_;
  std::unordered_map<Int2Key, SelIndex, Int2KeyHash> int2_;
  HashedIndex hashed_;
};

bool CompileAggs(const PlanNode& node,
                 const std::vector<ColumnHandle>& arg_cols,
                 std::vector<VAggSpec>* specs) {
  for (size_t a = 0; a < node.agg_calls.size(); ++a) {
    const AggFunc f = node.agg_calls[a]->agg_func;
    VAggSpec s;
    if (f == AggFunc::kCountStar) {
      s.kind = VAggSpec::Kind::kCountStar;
      specs->push_back(s);
      continue;
    }
    const Column* arg = arg_cols[a].get();
    // NULL-bearing arguments keep the row path's skip-NULL semantics; the
    // whole operator falls back rather than special-casing validity here.
    if (arg == nullptr || arg->HasNulls() || arg->type() == DataType::kNull) {
      return false;
    }
    s.arg = arg;
    switch (f) {
      case AggFunc::kCount:
        s.kind = arg->type() == DataType::kBool ? VAggSpec::Kind::kCountBool
                                                : VAggSpec::Kind::kCountAll;
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
      case AggFunc::kStddevSamp:
        if (arg->type() == DataType::kInt64) {
          s.kind = VAggSpec::Kind::kSumInt;
        } else if (arg->type() == DataType::kFloat64) {
          s.kind = VAggSpec::Kind::kSumFloat;
        } else {
          return false;
        }
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        // String MIN/MAX stays on the row path (Value comparison).
        if (arg->type() == DataType::kInt64) {
          s.kind = VAggSpec::Kind::kMinMaxInt;
        } else if (arg->type() == DataType::kFloat64) {
          s.kind = VAggSpec::Kind::kMinMaxFloat;
        } else {
          return false;
        }
        s.want_min = f == AggFunc::kMin;
        break;
      case AggFunc::kCountStar:
        break;
    }
    specs->push_back(s);
  }
  return true;
}

/// Converts the typed states back into exactly the Values the row path
/// emits (same formulas, same NULL rules, same column types).
Result<Table> EmitGroups(const PlanNode& node,
                         const std::vector<ColumnHandle>& key_cols,
                         const std::vector<ColumnHandle>& arg_cols,
                         const std::vector<VAggSpec>& specs,
                         const GroupSet& gs) {
  const size_t num_groups = gs.size();
  std::vector<Column> out_cols;
  TableSchema out_schema;
  for (size_t k = 0; k < key_cols.size(); ++k) {
    Column c(key_cols[k]->type());
    c.Reserve(static_cast<int64_t>(num_groups));
    for (int64_t row : gs.first_row) {
      DL2SQL_RETURN_NOT_OK(c.Append(key_cols[k]->GetValue(row)));
    }
    out_schema.AddField({node.group_names[k], c.type()});
    out_cols.push_back(std::move(c));
  }
  for (size_t a = 0; a < specs.size(); ++a) {
    const AggFunc f = node.agg_calls[a]->agg_func;
    DataType t;
    switch (f) {
      case AggFunc::kCount:
      case AggFunc::kCountStar:
        t = DataType::kInt64;
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        t = arg_cols[a] != nullptr ? arg_cols[a]->type() : DataType::kFloat64;
        break;
      default:
        t = DataType::kFloat64;
        break;
    }
    Column c(t);
    c.Reserve(static_cast<int64_t>(num_groups));
    const bool int_minmax = specs[a].kind == VAggSpec::Kind::kMinMaxInt;
    for (size_t g = 0; g < num_groups; ++g) {
      const VAggState& st = gs.per_agg[a][g];
      Value v;
      switch (f) {
        case AggFunc::kCount:
        case AggFunc::kCountStar:
          v = Value::Int(st.count);
          break;
        case AggFunc::kSum:
          v = st.count == 0 ? Value::Null() : Value::Float(st.sum);
          break;
        case AggFunc::kAvg:
          v = st.count == 0
                  ? Value::Null()
                  : Value::Float(st.sum / static_cast<double>(st.count));
          break;
        case AggFunc::kStddevSamp: {
          if (st.count < 2) {
            v = Value::Null();
            break;
          }
          const double mean = st.sum / static_cast<double>(st.count);
          const double var =
              (st.sumsq - static_cast<double>(st.count) * mean * mean) /
              static_cast<double>(st.count - 1);
          v = Value::Float(std::sqrt(std::max(0.0, var)));
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax:
          if (!st.has_minmax) {
            v = Value::Null();
          } else if (int_minmax) {
            v = Value::Int(st.imin_max);
          } else {
            v = Value::Float(st.fmin_max);
          }
          break;
      }
      DL2SQL_RETURN_NOT_OK(c.Append(v));
    }
    out_schema.AddField({node.agg_names[a], c.type()});
    out_cols.push_back(std::move(c));
  }
  return Table::FromColumns(std::move(out_schema), std::move(out_cols));
}

}  // namespace

Result<bool> TryVectorAggregate(const PlanNode& node,
                                const std::vector<ColumnHandle>& key_cols,
                                const std::vector<ColumnHandle>& arg_cols,
                                int64_t n, EvalContext* ctx, Table* out) {
  std::vector<VAggSpec> specs;
  if (!CompileAggs(node, arg_cols, &specs)) return false;

  DL2SQL_TRACE_SPAN("vector", "aggregate");
  std::vector<const Column*> kptrs;
  for (const auto& c : key_cols) kptrs.push_back(c.get());

  const size_t num_aggs = specs.size();
  const int64_t m = ctx != nullptr && ctx->morsel_size > 0
                        ? ctx->morsel_size
                        : ThreadPool::kDefaultMorselSize;
  const int64_t num_morsels = n == 0 ? 0 : (n + m - 1) / m;
  const bool parallel = ctx != nullptr && ctx->pool != nullptr &&
                        ctx->pool->num_threads() > 1 && n > m;

  GroupSet merged(num_aggs);
  if (!parallel) {
    Grouper grouper = Grouper::Make(kptrs);
    std::vector<SelIndex> gids;
    auto body = [&](int64_t bgn, int64_t end, int) -> Status {
      gids.resize(static_cast<size_t>(end - bgn));
      grouper.AssignGids(bgn, end, gids.data(), &merged);
      merged.SyncStates();
      AccumulateMorsel(specs, bgn, static_cast<SelIndex>(end - bgn),
                       gids.data(), &merged);
      return Status::OK();
    };
    if (ctx != nullptr && ctx->pool != nullptr) {
      // With a pool wired, drive the loop through ParallelForMorsel for pool
      // accounting and trace parity with the row path. The !parallel branch
      // conditions (single-threaded pool or n <= m) guarantee it executes
      // inline, morsel-at-a-time, so the shared grouper state stays serial.
      DL2SQL_RETURN_NOT_OK(ctx->pool->ParallelForMorsel(n, m, body));
    } else {
      for (int64_t bgn = 0; bgn < n; bgn += m) {
        DL2SQL_RETURN_NOT_OK(body(bgn, std::min(n, bgn + m), 0));
      }
    }
  } else {
    const int workers = ctx->pool->num_threads();
    std::vector<GroupSet> wsets(static_cast<size_t>(workers),
                                GroupSet(num_aggs));
    std::vector<Grouper> wgroupers(static_cast<size_t>(workers));
    for (auto& g : wgroupers) g = Grouper::Make(kptrs);
    std::vector<std::vector<SelIndex>> wgids(static_cast<size_t>(workers));
    DL2SQL_RETURN_NOT_OK(ctx->pool->ParallelForMorsel(
        n, m, [&](int64_t bgn, int64_t end, int w) -> Status {
          GroupSet& gs = wsets[static_cast<size_t>(w)];
          std::vector<SelIndex>& gids = wgids[static_cast<size_t>(w)];
          gids.resize(static_cast<size_t>(end - bgn));
          wgroupers[static_cast<size_t>(w)].AssignGids(bgn, end, gids.data(),
                                                       &gs);
          gs.SyncStates();
          AccumulateMorsel(specs, bgn, static_cast<SelIndex>(end - bgn),
                           gids.data(), &gs);
          return Status::OK();
        }));
    // Worker-order merge with min-first_row + additive fold, then a sort by
    // first_row — the exact structure of the row path's parallel merge, so
    // group order is identical for any thread count.
    Grouper merger = Grouper::Make(kptrs);
    for (GroupSet& gs : wsets) {
      for (size_t g = 0; g < gs.size(); ++g) {
        const int64_t fr = gs.first_row[g];
        const size_t before = merged.size();
        const SelIndex gid = merger.MergeFindOrInsert(fr, &merged);
        const size_t dst = static_cast<size_t>(gid);
        const bool inserted = merged.size() > before;
        merged.SyncStates();
        if (merged.first_row[dst] > fr) merged.first_row[dst] = fr;
        for (size_t a = 0; a < num_aggs; ++a) {
          if (inserted) {
            merged.per_agg[a][dst] = gs.per_agg[a][g];
          } else {
            MergeVAggState(&merged.per_agg[a][dst], gs.per_agg[a][g],
                           specs[a].want_min);
          }
        }
      }
    }
    // Restore first-seen order (sort by first_row, permuting states along).
    std::vector<size_t> order(merged.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return merged.first_row[a] < merged.first_row[b];
    });
    GroupSet sorted(num_aggs);
    sorted.first_row.reserve(merged.size());
    for (size_t i : order) sorted.first_row.push_back(merged.first_row[i]);
    for (size_t a = 0; a < num_aggs; ++a) {
      sorted.per_agg[a].reserve(merged.size());
      for (size_t i : order) sorted.per_agg[a].push_back(merged.per_agg[a][i]);
    }
    merged = std::move(sorted);
  }

  // Global aggregate over empty input still yields one row.
  if (kptrs.empty() && merged.size() == 0) {
    merged.first_row.push_back(-1);
    merged.SyncStates();
  }

  DL2SQL_ASSIGN_OR_RETURN(
      Table result, EmitGroups(node, key_cols, arg_cols, specs, merged));
  if (ctx != nullptr) {
    ctx->vec_batches += num_morsels;
    ctx->vec_rows_in += n;
    ctx->vec_rows_selected += n;
  }
  *out = std::move(result);
  return true;
}

}  // namespace dl2sql::db::vec
