/// \file vector_kernels.h
/// \brief SIMD-friendly tight-loop kernels for batch-at-a-time execution:
/// selection-vector refinement (comparisons, boolean columns, set algebra),
/// sel-compressed arithmetic, batched canonical row-key hashing, and typed
/// aggregate accumulation.
///
/// Every kernel operates on one batch window and plain typed arrays; no
/// Value is ever boxed. Numeric comparison semantics match the row path's
/// FastBinary exactly (both operands canonicalized through double), and the
/// hash/equality kernels match row_key.h's encoding exactly (integral floats
/// compare equal to the same int64; NULL parts group together but never
/// join), so the vectorized operators are bit-identical to the row
/// operators.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/column.h"
#include "db/exec/vector_batch.h"
#include "db/expr.h"

namespace dl2sql::db::vec {

/// \name Selection-vector refinement
/// All refine kernels read `sel[0..count)` (ascending in-window rows), write
/// the surviving subset to `out` (ascending again) and return the survivor
/// count. `out` may not alias `sel`.
/// @{

/// Numeric comparison: keeps rows where `a op b` holds, both operands read
/// through the double canonicalization the row path uses.
SelIndex RefineCompareNum(BinaryOp op, const NumOperand& a,
                          const NumOperand& b, const SelIndex* sel,
                          SelIndex count, SelIndex* out);

/// String comparison against a dense column slice and/or an immediate.
/// Null entries must have been excluded already. A null `imm` means "dense
/// column slice"; exactly mirrors FastStringCompare's std::string::compare.
struct StrOperand {
  const std::string* base = nullptr;  ///< dense slice, indexed by row
  const std::string* imm = nullptr;   ///< immediate; wins over base
  const std::string& At(SelIndex r) const { return imm ? *imm : base[r]; }
};
SelIndex RefineCompareStr(BinaryOp op, const StrOperand& a,
                          const StrOperand& b, const SelIndex* sel,
                          SelIndex count, SelIndex* out);

/// Boolean column as predicate: keeps rows where bools[row] equals `want`.
SelIndex RefineBool(const uint8_t* bools, bool want, const SelIndex* sel,
                    SelIndex count, SelIndex* out);

/// Union of two ascending selection vectors (OR). Returns merged count.
SelIndex SelUnion(const SelIndex* a, SelIndex an, const SelIndex* b,
                  SelIndex bn, SelIndex* out);

/// Difference sel \ sub (NOT), where `sub` is an ascending subset of `sel`.
SelIndex SelDifference(const SelIndex* sel, SelIndex count,
                       const SelIndex* sub, SelIndex sub_count, SelIndex* out);
/// @}

/// \name Sel-compressed arithmetic
/// Results are written at selection-slot positions `out[0..count)`, aligned
/// with the selection vector that produced them (no gather needed).
/// @{

/// Integer arithmetic (kAdd/kSub/kMul/kMod). Errors on modulo by zero over a
/// *selected* row, mirroring the row path's error (the row path evaluates
/// unselected rows too; see DESIGN.md for the documented divergence on
/// data-dependent errors).
Status ArithInt(BinaryOp op, const NumOperand& a, const NumOperand& b,
                const SelIndex* sel, SelIndex count, int64_t* out);

/// Float arithmetic (kAdd/kSub/kMul/kDiv/kMod); kDiv is always float and
/// x/0 -> inf, kMod is fmod — ClickHouse semantics, same as the row path.
Status ArithFloat(BinaryOp op, const NumOperand& a, const NumOperand& b,
                  const SelIndex* sel, SelIndex count, double* out);

void NegInt(const NumOperand& a, const SelIndex* sel, SelIndex count,
            int64_t* out);
void NegFloat(const NumOperand& a, const SelIndex* sel, SelIndex count,
              double* out);
/// @}

/// \name Batched canonical row-key hashing (join build/probe, hash agg)
/// The canonical key view mirrors row_key.h byte encodings: two rows hash
/// (and compare) equal iff their EncodeRowKey strings are equal.
/// @{

/// Combined canonical hash of the key columns for rows [begin, end), written
/// to out[0..end-begin).
void HashKeyRange(const std::vector<const Column*>& cols, int64_t begin,
                  int64_t end, uint64_t* out);

/// Single-row variant (parallel-merge bookkeeping; same function).
uint64_t HashKeyRow(const std::vector<const Column*>& cols, int64_t row);

/// out[i] = 1 iff any key column is NULL at row begin+i (NULL keys never
/// join).
void KeyNullRange(const std::vector<const Column*>& cols, int64_t begin,
                  int64_t end, uint8_t* out);

/// Exact canonical key equality across (possibly differently typed) column
/// sets — equivalent to EncodeRowKey(a, ra) == EncodeRowKey(b, rb).
bool CanonicalKeyRowsEqual(const std::vector<const Column*>& a, int64_t ra,
                           const std::vector<const Column*>& b, int64_t rb);

/// Batched single-column key encoding for the symmetric hash join: appends
/// each row's AppendKeyPart encoding (empty string for NULL) to `out`,
/// without materializing a table slice or evaluating an expression.
void EncodeColumnKeysRange(const Column& col, int64_t begin, int64_t end,
                           std::vector<std::string>* out);
/// @}

/// \name Typed aggregate accumulation
/// Per-(group, aggregate) state updated a batch at a time through a
/// gid-per-row buffer; no Value boxing. Emission converts these back into
/// exactly the Values the row path produces.
/// @{

struct VAggState {
  int64_t count = 0;
  double sum = 0;
  double sumsq = 0;
  bool has_minmax = false;
  int64_t imin_max = 0;  ///< int min OR max, per the aggregate's direction
  double fmin_max = 0;   ///< float min OR max
};

/// COUNT(*) and COUNT(non-null non-bool column): one per row.
void AccumulateCount(const SelIndex* gids, SelIndex n, VAggState* states);

/// COUNT(bool_expr): counts TRUE rows (the paper's count(nUDF(...) = TRUE)).
void AccumulateCountBool(const uint8_t* bools, const SelIndex* gids,
                         SelIndex n, VAggState* states);

/// SUM/AVG/STDDEV over a numeric column: count + sum + sum of squares, in
/// row order (serial accumulation order matches the row path bit-for-bit).
void AccumulateSumInt(const int64_t* vals, const SelIndex* gids, SelIndex n,
                      VAggState* states);
void AccumulateSumFloat(const double* vals, const SelIndex* gids, SelIndex n,
                        VAggState* states);

/// MIN or MAX over a numeric column (`want_min` picks the direction).
void AccumulateMinMaxInt(const int64_t* vals, const SelIndex* gids,
                         SelIndex n, bool want_min, VAggState* states);
void AccumulateMinMaxFloat(const double* vals, const SelIndex* gids,
                           SelIndex n, bool want_min, VAggState* states);

/// Parallel-merge fold (count/sum/sumsq additive, min/max by comparison),
/// mirroring the row path's MergeAggState worker-order merge.
void MergeVAggState(VAggState* dst, const VAggState& src, bool want_min);
/// @}

}  // namespace dl2sql::db::vec
