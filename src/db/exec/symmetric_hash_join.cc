#include "db/exec/symmetric_hash_join.h"

#include <limits>
#include <list>
#include <unordered_map>

#include "common/trace.h"
#include "db/exec/row_key.h"
#include "db/exec/vector_kernels.h"

namespace dl2sql::db {

namespace {

constexpr int64_t kNeverEvicted = std::numeric_limits<int64_t>::max();

/// A consumed tuple: source row, global arrival stamp, eviction stamp.
struct TupleEntry {
  int64_t row;
  int64_t arrival;
  int64_t evicted_at = kNeverEvicted;
};

/// One side of the symmetric join.
struct SideState {
  /// Resident hash table: key -> bucket of tuple indexes (into `all`).
  std::unordered_map<std::string, std::vector<size_t>> resident;
  /// Every consumed tuple (resident or evicted), in arrival order, with its
  /// key retained for the cleanup phase.
  std::vector<TupleEntry> all;
  std::vector<std::string> keys;  ///< parallel to `all`
  /// Full key index over `all` (for cleanup probing).
  std::unordered_map<std::string, std::vector<size_t>> full_index;
  /// LRU ordering of resident buckets (front = most recent).
  std::list<std::string> lru;
  std::unordered_map<std::string, std::list<std::string>::iterator> lru_pos;
  int64_t resident_tuples = 0;

  void Touch(const std::string& key) {
    auto it = lru_pos.find(key);
    if (it != lru_pos.end()) {
      lru.erase(it->second);
    }
    lru.push_front(key);
    lru_pos[key] = lru.begin();
  }

  void Insert(const std::string& key, int64_t row, int64_t arrival) {
    const size_t idx = all.size();
    all.push_back({row, arrival, kNeverEvicted});
    keys.push_back(key);
    full_index[key].push_back(idx);
    resident[key].push_back(idx);
    ++resident_tuples;
    Touch(key);
  }

  /// Evicts the least-recently-used bucket; returns evicted tuple count.
  int64_t EvictLruBucket(int64_t now) {
    if (lru.empty()) return 0;
    const std::string key = lru.back();
    lru.pop_back();
    lru_pos.erase(key);
    auto it = resident.find(key);
    if (it == resident.end()) return 0;
    int64_t evicted = 0;
    for (size_t idx : it->second) {
      all[idx].evicted_at = now;
      ++evicted;
    }
    resident_tuples -= evicted;
    resident.erase(it);
    return evicted;
  }
};

/// Evaluates the key expression over a [begin, end) slice of `table`.
Result<std::vector<std::string>> BatchKeys(const Table& table, const Expr& key,
                                           int64_t begin, int64_t end,
                                           EvalContext* ctx) {
  // Vectorized fast path for plain column keys (the common shape of the
  // generated equi joins): encode straight off the source column with the
  // batched kernel — no table slice, no expression evaluation, byte-identical
  // key strings either way.
  if (ctx != nullptr && ctx->vectorized && key.kind == ExprKind::kColumnRef) {
    int idx = key.bound_index;
    if (idx < 0) {
      auto found = table.schema().Find(key.column_name);
      if (found.ok()) idx = *found;
    }
    if (idx >= 0 && idx < table.num_columns()) {
      std::vector<std::string> keys;
      keys.reserve(static_cast<size_t>(end - begin));
      vec::EncodeColumnKeysRange(table.column(idx), begin, end, &keys);
      ++ctx->vec_batches;
      ctx->vec_rows_in += end - begin;
      ctx->vec_rows_selected += end - begin;
      return keys;
    }
  }
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t r = begin; r < end; ++r) rows.push_back(r);
  const Table slice = table.TakeRows(rows);
  DL2SQL_ASSIGN_OR_RETURN(ColumnHandle col, EvalExpr(key, slice, ctx));
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = 0; i < col->size(); ++i) {
    std::string k;
    if (col->IsValid(i)) {
      AppendKeyPart(*col, i, &k);
    }
    keys.push_back(std::move(k));  // empty key string = NULL, never joins
  }
  return keys;
}

}  // namespace

Result<std::vector<std::pair<int64_t, int64_t>>> SymmetricHashJoinPairs(
    const Table& left, const Table& right, const Expr& left_key,
    const Expr& right_key, EvalContext* ctx,
    const SymmetricHashJoinOptions& options, SymmetricHashJoinStats* stats) {
  if (options.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  SideState ls, rs;
  std::vector<std::pair<int64_t, int64_t>> out;
  SymmetricHashJoinStats local_stats;

  int64_t lpos = 0, rpos = 0;
  int64_t clock = 0;  // global arrival/eviction stamp

  auto maybe_evict = [&](int64_t now) {
    if (options.memory_budget_tuples <= 0) return;
    while (ls.resident_tuples + rs.resident_tuples >
           options.memory_budget_tuples) {
      // Evict from the side holding more resident tuples; bucket-granular.
      SideState& victim = ls.resident_tuples >= rs.resident_tuples ? ls : rs;
      const int64_t evicted = victim.EvictLruBucket(now);
      if (evicted == 0) break;  // nothing left to evict
      ++local_stats.evicted_buckets;
      local_stats.evicted_tuples += evicted;
    }
  };

  // Alternate batches from both inputs (symmetric pipelining).
  while (lpos < left.num_rows() || rpos < right.num_rows()) {
    if (lpos < left.num_rows()) {
      DL2SQL_TRACE_SPAN("join", "shj_left_batch");
      const int64_t end = std::min(left.num_rows(), lpos + options.batch_size);
      DL2SQL_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                              BatchKeys(left, left_key, lpos, end, ctx));
      for (int64_t r = lpos; r < end; ++r) {
        const std::string& k = keys[static_cast<size_t>(r - lpos)];
        const int64_t now = clock++;
        if (k.empty()) continue;  // NULL key
        // Probe the right side's resident bucket (this tuple is "later").
        auto it = rs.resident.find(k);
        if (it != rs.resident.end()) {
          rs.Touch(k);
          for (size_t idx : it->second) {
            out.emplace_back(r, rs.all[idx].row);
            ++local_stats.online_pairs;
          }
        }
        ls.Insert(k, r, now);
        maybe_evict(now);
      }
      lpos = end;
    }
    if (rpos < right.num_rows()) {
      DL2SQL_TRACE_SPAN("join", "shj_right_batch");
      const int64_t end = std::min(right.num_rows(), rpos + options.batch_size);
      DL2SQL_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                              BatchKeys(right, right_key, rpos, end, ctx));
      for (int64_t r = rpos; r < end; ++r) {
        const std::string& k = keys[static_cast<size_t>(r - rpos)];
        const int64_t now = clock++;
        if (k.empty()) continue;
        auto it = ls.resident.find(k);
        if (it != ls.resident.end()) {
          ls.Touch(k);
          for (size_t idx : it->second) {
            out.emplace_back(ls.all[idx].row, r);
            ++local_stats.online_pairs;
          }
        }
        rs.Insert(k, r, now);
        maybe_evict(now);
      }
      rpos = end;
    }
  }

  // Cleanup: recover pairs whose earlier tuple was evicted before the later
  // tuple arrived. A pair is recovered exactly once, via its earlier tuple.
  auto cleanup = [&](const SideState& evicted_side, const SideState& other,
                     bool evicted_is_left) {
    for (size_t i = 0; i < evicted_side.all.size(); ++i) {
      const TupleEntry& t = evicted_side.all[i];
      if (t.evicted_at == kNeverEvicted) continue;
      auto it = other.full_index.find(evicted_side.keys[i]);
      if (it == other.full_index.end()) continue;
      for (size_t oidx : it->second) {
        const TupleEntry& u = other.all[oidx];
        // u is later than t's eviction => the online probe missed this pair.
        if (u.arrival >= t.evicted_at) {
          if (evicted_is_left) {
            out.emplace_back(t.row, u.row);
          } else {
            out.emplace_back(u.row, t.row);
          }
          ++local_stats.cleanup_pairs;
        }
      }
    }
  };
  {
    DL2SQL_TRACE_SPAN("join", "shj_cleanup");
    cleanup(ls, rs, /*evicted_is_left=*/true);
    cleanup(rs, ls, /*evicted_is_left=*/false);
  }

  if (stats != nullptr) *stats = local_stats;
  return out;
}

}  // namespace dl2sql::db
