/// \file symmetric_hash_join.h
/// \brief Symmetric hash join with bucket-based LRU buffering (hint rule 3).
///
/// Section IV-B: when an nUDF appears in a join condition
/// (T0.nUDF(x) = T1.y), the paper joins the streams symmetrically — hash
/// tables are kept for nUDF(x) and y, each arriving tuple probes the other
/// side's bucket, the buffer applies a *bucket*-granularity LRU policy, and
/// nUDF evaluation happens in batches.
///
/// This implementation preserves exact join semantics under eviction: every
/// tuple carries an arrival stamp and (if evicted) an eviction stamp; a pair
/// (l, r) is emitted online when the later tuple arrives while the earlier
/// one is still resident, and a cleanup phase emits exactly the pairs whose
/// earlier tuple was evicted before the later one arrived.
#pragma once

#include <cstdint>
#include <vector>

#include "db/eval.h"
#include "db/expr.h"
#include "db/table.h"

namespace dl2sql::db {

struct SymmetricHashJoinOptions {
  /// Rows consumed per step from each side (the nUDF batch size).
  int64_t batch_size = 64;
  /// Max resident tuples across both hash tables; <=0 means unbounded.
  int64_t memory_budget_tuples = 0;
};

/// Statistics for tests/benchmarks.
struct SymmetricHashJoinStats {
  int64_t evicted_buckets = 0;
  int64_t evicted_tuples = 0;
  int64_t cleanup_pairs = 0;
  int64_t online_pairs = 0;
};

/// Joins `left` and `right` on EncodeRowKey(left_key(row)) ==
/// EncodeRowKey(right_key(row)); key expressions are evaluated per batch via
/// `ctx` (so nUDF time lands in the inference bucket). Returns matching
/// (left_row, right_row) index pairs in unspecified order.
Result<std::vector<std::pair<int64_t, int64_t>>> SymmetricHashJoinPairs(
    const Table& left, const Table& right, const Expr& left_key,
    const Expr& right_key, EvalContext* ctx,
    const SymmetricHashJoinOptions& options,
    SymmetricHashJoinStats* stats = nullptr);

}  // namespace dl2sql::db
