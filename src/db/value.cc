#include "db/value.h"

#include <sstream>

namespace dl2sql::db {

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  return Compare(other) == 0;
}

int Value::Compare(const Value& other) const {
  const DataType a = type();
  const DataType b = other.type();
  // NULLs first.
  if (a == DataType::kNull && b == DataType::kNull) return 0;
  if (a == DataType::kNull) return -1;
  if (b == DataType::kNull) return 1;
  // Cross-numeric comparison via double.
  const bool a_num = IsNumeric(a) || a == DataType::kBool;
  const bool b_num = IsNumeric(b) || b == DataType::kBool;
  if (a_num && b_num) {
    const double da = *AsDouble();
    const double db = *other.AsDouble();
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  if ((a == DataType::kString || a == DataType::kBlob) &&
      (b == DataType::kString || b == DataType::kBlob)) {
    return string_value().compare(other.string_value()) < 0
               ? -1
               : (string_value() == other.string_value() ? 0 : 1);
  }
  // Mixed incomparable types: order by type id for determinism.
  return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case DataType::kInt64:
      return std::to_string(int_value());
    case DataType::kFloat64: {
      std::ostringstream oss;
      oss << float_value();
      return oss.str();
    }
    case DataType::kString:
      return string_value();
    case DataType::kBlob:
      return "<blob:" + std::to_string(string_value().size()) + "B>";
  }
  return "?";
}

}  // namespace dl2sql::db
