/// \file planner.h
/// \brief Binds a parsed SELECT against the catalog and produces a plan tree.
#pragma once

#include "common/result.h"
#include "db/catalog.h"
#include "db/plan.h"
#include "db/udf.h"

namespace dl2sql::db {

/// \brief AST -> plan translation.
///
/// Responsibilities: resolve tables/views/derived tables, qualify and bind
/// column references, expand '*', plan aggregation (rewriting aggregate calls
/// in the select list into references to Aggregate outputs), and assemble
/// Filter/Join/Project/Sort/Limit nodes. Optimization (predicate pushdown,
/// join strategy, nUDF placement) happens afterwards in Optimizer.
class Planner {
 public:
  /// When `referenced` is non-null, every catalog relation this plan resolves
  /// (base tables AND views, including relations reached through nested view
  /// expansion) is appended to it — the dependency set the plan cache
  /// validates against catalog versions on each hit.
  Planner(const Catalog* catalog, const UdfRegistry* udfs,
          std::vector<std::string>* referenced = nullptr)
      : catalog_(catalog), udfs_(udfs), referenced_(referenced) {}

  Result<PlanPtr> PlanSelect(const SelectStmt& stmt) {
    return PlanSelectImpl(stmt, /*depth=*/0);
  }

 private:
  Result<PlanPtr> PlanSelectImpl(const SelectStmt& stmt, int depth);
  Result<PlanPtr> PlanTableRef(const TableRef& ref, int depth);

  const Catalog* catalog_;
  const UdfRegistry* udfs_;
  std::vector<std::string>* referenced_;
};

/// Binds every unbound column reference in `e` to an index in `schema`.
/// Subquery subtrees are left alone (they bind against their own scopes).
Status BindExpr(Expr* e, const TableSchema& schema);

}  // namespace dl2sql::db
