#include "db/types.h"

#include <sstream>

#include "common/string_util.h"

namespace dl2sql::db {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kFloat64:
      return "FLOAT64";
    case DataType::kString:
      return "STRING";
    case DataType::kBlob:
      return "BLOB";
  }
  return "?";
}

namespace {

/// Unqualified part of a possibly qualified name ("v.keyframe" -> "keyframe").
std::string BaseName(const std::string& name) {
  const size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

}  // namespace

Result<int> TableSchema::Find(const std::string& name) const {
  int exact = -1;
  int suffix = -1;
  int suffix_count = 0;
  for (int i = 0; i < num_fields(); ++i) {
    const std::string& fname = fields_[static_cast<size_t>(i)].name;
    if (EqualsIgnoreCase(fname, name)) {
      if (exact >= 0) {
        return Status::InvalidArgument("ambiguous column name '", name, "'");
      }
      exact = i;
    }
    if (name.find('.') == std::string::npos &&
        EqualsIgnoreCase(BaseName(fname), name)) {
      suffix = i;
      ++suffix_count;
    }
  }
  if (exact >= 0) return exact;
  if (suffix_count == 1) return suffix;
  if (suffix_count > 1) {
    return Status::InvalidArgument("ambiguous column name '", name, "'");
  }
  return Status::NotFound("column '", name, "' not found in schema ",
                          ToString());
}

std::string TableSchema::ToString() const {
  std::ostringstream oss;
  oss << "(";
  for (int i = 0; i < num_fields(); ++i) {
    if (i > 0) oss << ", ";
    oss << fields_[static_cast<size_t>(i)].name << " "
        << DataTypeToString(fields_[static_cast<size_t>(i)].type);
  }
  oss << ")";
  return oss.str();
}

}  // namespace dl2sql::db
