#include "db/codec.h"

#include <cstring>

#include "common/bytes.h"

namespace dl2sql::db {

namespace {

constexpr char kMagic[] = "LDBTAB01";

void WriteVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> ReadVarint(const std::string& in, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < in.size()) {
    const uint8_t b = static_cast<uint8_t>(in[*pos]);
    ++*pos;
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) break;
  }
  return Status::ParseError("bad varint at offset ", *pos);
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

Result<std::string> CompressTable(const Table& table) {
  if (table.is_paged()) {
    // Snapshots and storage accounting always see the resident form; the
    // paged backing is an execution-time representation only.
    DL2SQL_ASSIGN_OR_RETURN(Table resident, table.Materialize());
    return CompressTable(resident);
  }
  std::string out(kMagic, 8);
  WriteVarint(static_cast<uint64_t>(table.num_columns()), &out);
  WriteVarint(static_cast<uint64_t>(table.num_rows()), &out);
  for (int c = 0; c < table.num_columns(); ++c) {
    const Field& f = table.schema().field(c);
    WriteVarint(f.name.size(), &out);
    out.append(f.name);
    out.push_back(static_cast<char>(f.type));
    const Column& col = table.column(c);
    if (col.HasNulls()) {
      return Status::NotImplemented(
          "codec does not support NULLs (parameter tables never have them)");
    }
    out.push_back('\x00');  // null-flag byte reserved for future use
    switch (col.type()) {
      case DataType::kInt64: {
        int64_t prev = 0;
        for (int64_t v : col.ints()) {
          WriteVarint(ZigZag(v - prev), &out);
          prev = v;
        }
        break;
      }
      case DataType::kFloat64: {
        for (double v : col.floats()) {
          const float f32 = static_cast<float>(v);
          out.append(reinterpret_cast<const char*>(&f32), sizeof(f32));
        }
        break;
      }
      case DataType::kBool: {
        uint8_t acc = 0;
        int bits = 0;
        for (uint8_t b : col.bools()) {
          acc = static_cast<uint8_t>(acc | ((b & 1) << bits));
          if (++bits == 8) {
            out.push_back(static_cast<char>(acc));
            acc = 0;
            bits = 0;
          }
        }
        if (bits > 0) out.push_back(static_cast<char>(acc));
        break;
      }
      case DataType::kString:
      case DataType::kBlob: {
        for (const auto& s : col.strings()) {
          WriteVarint(s.size(), &out);
          out.append(s);
        }
        break;
      }
      case DataType::kNull:
        break;
    }
  }
  return out;
}

Result<Table> DecompressTable(const std::string& bytes) {
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, 8) != 0) {
    return Status::ParseError("bad table codec magic");
  }
  size_t pos = 8;
  DL2SQL_ASSIGN_OR_RETURN(uint64_t ncols, ReadVarint(bytes, &pos));
  DL2SQL_ASSIGN_OR_RETURN(uint64_t nrows, ReadVarint(bytes, &pos));
  TableSchema schema;
  std::vector<Column> columns;
  for (uint64_t c = 0; c < ncols; ++c) {
    DL2SQL_ASSIGN_OR_RETURN(uint64_t name_len, ReadVarint(bytes, &pos));
    if (pos + name_len > bytes.size()) {
      return Status::ParseError("truncated column name");
    }
    std::string name = bytes.substr(pos, name_len);
    pos += name_len;
    if (pos + 2 > bytes.size()) return Status::ParseError("truncated header");
    const auto type = static_cast<DataType>(bytes[pos]);
    pos += 2;  // type byte + reserved null-flag byte
    Column col(type);
    col.Reserve(static_cast<int64_t>(nrows));
    switch (type) {
      case DataType::kInt64: {
        int64_t prev = 0;
        auto& v = col.mutable_ints();
        for (uint64_t r = 0; r < nrows; ++r) {
          DL2SQL_ASSIGN_OR_RETURN(uint64_t d, ReadVarint(bytes, &pos));
          prev += UnZigZag(d);
          v.push_back(prev);
        }
        break;
      }
      case DataType::kFloat64: {
        auto& v = col.mutable_floats();
        for (uint64_t r = 0; r < nrows; ++r) {
          if (pos + sizeof(float) > bytes.size()) {
            return Status::ParseError("truncated float column");
          }
          float f32;
          std::memcpy(&f32, bytes.data() + pos, sizeof(f32));
          pos += sizeof(f32);
          v.push_back(static_cast<double>(f32));
        }
        break;
      }
      case DataType::kBool: {
        auto& v = col.mutable_bools();
        for (uint64_t r = 0; r < nrows; ++r) {
          const size_t byte_idx = pos + r / 8;
          if (byte_idx >= bytes.size()) {
            return Status::ParseError("truncated bool column");
          }
          v.push_back((static_cast<uint8_t>(bytes[byte_idx]) >> (r % 8)) & 1);
        }
        pos += (nrows + 7) / 8;
        break;
      }
      case DataType::kString:
      case DataType::kBlob: {
        auto& v = col.mutable_strings();
        for (uint64_t r = 0; r < nrows; ++r) {
          DL2SQL_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(bytes, &pos));
          if (pos + len > bytes.size()) {
            return Status::ParseError("truncated string column");
          }
          v.push_back(bytes.substr(pos, len));
          pos += len;
        }
        break;
      }
      case DataType::kNull:
        return Status::ParseError("cannot decode null-typed column");
    }
    schema.AddField({std::move(name), type});
    columns.push_back(std::move(col));
  }
  return Table::FromColumns(std::move(schema), std::move(columns));
}

Result<uint64_t> CompressedTableBytes(const Table& table) {
  DL2SQL_ASSIGN_OR_RETURN(std::string bytes, CompressTable(table));
  return static_cast<uint64_t>(bytes.size());
}

Status EncodeColumnSlice(const Column& col, int64_t begin, int64_t end,
                         std::string* out) {
  if (begin < 0 || end < begin || end > col.size()) {
    return Status::InvalidArgument("bad column slice [", begin, ", ", end,
                                   ") of ", col.size(), " rows");
  }
  const auto& validity = col.validity();
  bool has_nulls = false;
  if (!validity.empty()) {
    for (int64_t i = begin; i < end; ++i) {
      if (validity[static_cast<size_t>(i)] == 0) {
        has_nulls = true;
        break;
      }
    }
  }
  out->push_back(has_nulls ? '\x01' : '\x00');
  if (has_nulls) {
    uint8_t acc = 0;
    int bits = 0;
    for (int64_t i = begin; i < end; ++i) {
      const uint8_t valid = validity[static_cast<size_t>(i)] != 0 ? 1 : 0;
      acc = static_cast<uint8_t>(acc | (valid << bits));
      if (++bits == 8) {
        out->push_back(static_cast<char>(acc));
        acc = 0;
        bits = 0;
      }
    }
    if (bits > 0) out->push_back(static_cast<char>(acc));
  }
  switch (col.type()) {
    case DataType::kInt64: {
      // Delta base resets per slice so any chunk decodes independently.
      // NULL rows encode their default slot value; the bitmap restores them.
      int64_t prev = 0;
      const auto& v = col.ints();
      for (int64_t i = begin; i < end; ++i) {
        WriteVarint(ZigZag(v[static_cast<size_t>(i)] - prev), out);
        prev = v[static_cast<size_t>(i)];
      }
      break;
    }
    case DataType::kFloat64: {
      // Raw 8 bytes — paged tables must round-trip bit-identically, so the
      // float32 narrowing of CompressTable is not acceptable here.
      const auto& v = col.floats();
      out->append(reinterpret_cast<const char*>(v.data() + begin),
                  static_cast<size_t>(end - begin) * sizeof(double));
      break;
    }
    case DataType::kBool: {
      uint8_t acc = 0;
      int bits = 0;
      const auto& v = col.bools();
      for (int64_t i = begin; i < end; ++i) {
        acc = static_cast<uint8_t>(acc | ((v[static_cast<size_t>(i)] & 1)
                                          << bits));
        if (++bits == 8) {
          out->push_back(static_cast<char>(acc));
          acc = 0;
          bits = 0;
        }
      }
      if (bits > 0) out->push_back(static_cast<char>(acc));
      break;
    }
    case DataType::kString:
    case DataType::kBlob: {
      const auto& v = col.strings();
      for (int64_t i = begin; i < end; ++i) {
        const auto& s = v[static_cast<size_t>(i)];
        WriteVarint(s.size(), out);
        out->append(s);
      }
      break;
    }
    case DataType::kNull:
      break;
  }
  return Status::OK();
}

Result<Column> DecodeColumnSlice(DataType type, int64_t n_rows,
                                 const std::string& in, size_t* pos) {
  if (*pos >= in.size()) {
    return Status::ParseError("truncated column slice header");
  }
  const uint64_t n = static_cast<uint64_t>(n_rows);
  const bool has_nulls = in[*pos] != '\x00';
  ++*pos;
  std::vector<uint8_t> validity;
  if (has_nulls) {
    validity.resize(n);
    for (uint64_t r = 0; r < n; ++r) {
      const size_t byte_idx = *pos + r / 8;
      if (byte_idx >= in.size()) {
        return Status::ParseError("truncated validity bitmap");
      }
      validity[r] = (static_cast<uint8_t>(in[byte_idx]) >> (r % 8)) & 1;
    }
    *pos += (n + 7) / 8;
  }
  Column col(type);
  col.Reserve(n_rows);
  switch (type) {
    case DataType::kInt64: {
      int64_t prev = 0;
      auto& v = col.mutable_ints();
      for (uint64_t r = 0; r < n; ++r) {
        DL2SQL_ASSIGN_OR_RETURN(uint64_t d, ReadVarint(in, pos));
        prev += UnZigZag(d);
        v.push_back(prev);
      }
      break;
    }
    case DataType::kFloat64: {
      auto& v = col.mutable_floats();
      if (*pos + n * sizeof(double) > in.size()) {
        return Status::ParseError("truncated float slice");
      }
      v.resize(n);
      std::memcpy(v.data(), in.data() + *pos, n * sizeof(double));
      *pos += n * sizeof(double);
      break;
    }
    case DataType::kBool: {
      auto& v = col.mutable_bools();
      for (uint64_t r = 0; r < n; ++r) {
        const size_t byte_idx = *pos + r / 8;
        if (byte_idx >= in.size()) {
          return Status::ParseError("truncated bool slice");
        }
        v.push_back((static_cast<uint8_t>(in[byte_idx]) >> (r % 8)) & 1);
      }
      *pos += (n + 7) / 8;
      break;
    }
    case DataType::kString:
    case DataType::kBlob: {
      auto& v = col.mutable_strings();
      for (uint64_t r = 0; r < n; ++r) {
        DL2SQL_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(in, pos));
        if (*pos + len > in.size()) {
          return Status::ParseError("truncated string slice");
        }
        v.push_back(in.substr(*pos, len));
        *pos += len;
      }
      break;
    }
    case DataType::kNull:
      return Status::ParseError("cannot decode null-typed slice");
  }
  if (has_nulls) col.SetValidity(std::move(validity));
  return col;
}

}  // namespace dl2sql::db
