/// \file udf.h
/// \brief Scalar UDF registry, including neural UDFs (nUDFs).
///
/// An nUDF is the unit the paper's collaborative queries call
/// (nUDF_detect(V.keyframe) = TRUE, ...). Which code implements the nUDF body
/// is exactly what distinguishes the three strategies:
///  - independent processing: the body ships the blob across a simulated
///    DL-system boundary (serialize, infer, deserialize);
///  - loose integration: the body runs a model deserialized from a compiled
///    blob inside the kernel;
///  - DL2SQL: the predicate is rewritten into SQL, so the body is never
///    called on the hot path (kept for fallback/verification).
///
/// The registry also stores per-class selectivity histograms (Section IV-B,
/// Eq. 10) that the optimizer's hint rules consume.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/value.h"

namespace dl2sql::db {

/// Body of a scalar function: values in, value out.
using ScalarFn = std::function<Result<Value>(const std::vector<Value>&)>;

/// Optional vectorized body: one call for a whole column of rows (outer
/// vector = rows, inner = arguments). The evaluator prefers this when
/// registered — it is how batched nUDF inference enters query execution.
using BatchFn =
    std::function<Result<std::vector<Value>>(const std::vector<std::vector<Value>>&)>;

/// \brief Offline-learned class distribution of an nUDF (Eq. 9/10).
/// Pr(c_i) = H(c_i) / sum_j H(c_j); used as predicate selectivity when the
/// query tests `nUDF(x) = c_i`.
struct NUdfSelectivity {
  /// Histogram counts per class label (string form of the nUDF output).
  std::map<std::string, int64_t> histogram;

  /// Pr of a class label; uniform fallback when the label is unseen.
  double Probability(const std::string& label) const;

  /// Total training samples behind the histogram.
  int64_t TotalCount() const;
};

/// \brief Metadata attached to neural UDFs.
struct NUdfInfo {
  std::string model_name;
  NUdfSelectivity selectivity;
  /// Estimated seconds for a single inference call, used by the optimizer to
  /// weigh scan-time vs. delayed nUDF evaluation (hint rule 1).
  double per_call_cost_sec = 0.0;
  int64_t num_parameters = 0;
  /// Content hash of the deployed model (nn::ModelFingerprint). Keys the
  /// cross-query nUDF result cache together with the serialized argument row.
  /// 0 (the default) marks the body as uncacheable — stateful bodies and
  /// hand-registered test functions stay exactly as before.
  uint64_t fingerprint = 0;
};

/// \brief A registered scalar function.
struct ScalarUdf {
  std::string name;
  int arity = -1;  ///< -1 = variadic
  DataType return_type = DataType::kNull;
  ScalarFn fn;
  /// When set, the evaluator calls this once per column instead of fn once
  /// per row (batched nUDF inference).
  BatchFn batch_fn;
  bool is_neural = false;
  NUdfInfo neural;  ///< meaningful only when is_neural
  /// True when `batch_fn` may be invoked concurrently from several pool
  /// workers (pure compute, no shared mutable state). Bodies that re-enter
  /// the Database (e.g. DL2SQL's SQL-rewrite fallback) must leave this false;
  /// the evaluator then still batches per morsel but runs morsels serially.
  bool parallel_safe = false;
};

/// \brief Case-insensitive registry of scalar functions. Built-in math/util
/// functions are pre-registered; engines add nUDFs per model.
class UdfRegistry {
 public:
  UdfRegistry();

  /// Registers (or replaces) a function.
  void Register(ScalarUdf udf);

  /// Registers a neural UDF. `batch_fn` is optional (vectorized body);
  /// `arity` is 1 for plain nUDFs, 3 for conditional model families
  /// (keyframe, humidity, temperature). `parallel_safe` marks `batch_fn` as
  /// callable concurrently from pool workers.
  void RegisterNeural(const std::string& name, DataType return_type,
                      ScalarFn fn, NUdfInfo info, BatchFn batch_fn = nullptr,
                      int arity = 1, bool parallel_safe = false);

  /// Looks up by name (case-insensitive).
  Result<const ScalarUdf*> Find(const std::string& name) const;

  bool Contains(const std::string& name) const { return Find(name).ok(); }

  /// True if `name` is registered and neural.
  bool IsNeural(const std::string& name) const;

  std::vector<std::string> Names() const;

  /// Monotonic counter bumped by every Register (including replacements).
  /// Plan caches fold it into their keys so plans optimized against an older
  /// registry state are never served.
  uint64_t version() const { return version_; }

  /// Invoked when RegisterNeural replaces an existing neural UDF whose model
  /// fingerprint differs (model reload/retrain). The Database installs a hook
  /// that drops memoized nUDF results.
  using NeuralReplacedHook = std::function<void(const std::string& name)>;
  void set_neural_replaced_hook(NeuralReplacedHook hook) {
    neural_replaced_hook_ = std::move(hook);
  }

 private:
  void RegisterBuiltins();
  std::map<std::string, ScalarUdf> fns_;  // keyed by lower-cased name
  uint64_t version_ = 0;
  NeuralReplacedHook neural_replaced_hook_;
};

}  // namespace dl2sql::db
