#include "db/catalog.h"

#include <mutex>
#include <shared_mutex>

#include "common/string_util.h"

namespace dl2sql::db {

std::string Catalog::Key(const std::string& name) { return ToLower(name); }

void Catalog::SyncTrackedLocked(Entry& entry) {
  const int64_t now = MemTracker::Enabled() && entry.table != nullptr
                          ? static_cast<int64_t>(entry.table->ByteSize())
                          : 0;
  if (now != entry.tracked_bytes) {
    mem_.Consume(now - entry.tracked_bytes);
    entry.tracked_bytes = now;
  }
}

void Catalog::ReleaseTrackedLocked(Entry& entry) {
  if (entry.tracked_bytes != 0) {
    mem_.Release(entry.tracked_bytes);
    entry.tracked_bytes = 0;
  }
}

bool Catalog::IsSystemName(const std::string& name) {
  const std::string key = Key(name);
  return key.rfind("system.", 0) == 0 || key == "system";
}

Status Catalog::CreateTable(const std::string& name, TablePtr table,
                            bool temporary, bool if_not_exists) {
  std::unique_lock lock(mu_);
  const std::string key = Key(name);
  if (IsSystemName(key)) {
    return Status::InvalidArgument(
        "the 'system' schema is reserved for introspection tables; cannot "
        "create table '",
        name, "'");
  }
  if (views_.count(key) != 0) {
    return Status::AlreadyExists("a view named '", name, "' already exists");
  }
  if (tables_.count(key) != 0) {
    if (if_not_exists) return Status::OK();
    return Status::AlreadyExists("table '", name, "' already exists");
  }
  Entry& entry =
      (tables_[key] = Entry{std::move(table), temporary, std::nullopt});
  SyncTrackedLocked(entry);
  BumpVersion(key);
  return Status::OK();
}

Status Catalog::CreateView(const std::string& name,
                           std::shared_ptr<SelectStmt> definition,
                           bool or_replace) {
  std::unique_lock lock(mu_);
  const std::string key = Key(name);
  if (IsSystemName(key)) {
    return Status::InvalidArgument(
        "the 'system' schema is reserved for introspection tables; cannot "
        "create view '",
        name, "'");
  }
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("a table named '", name, "' already exists");
  }
  if (views_.count(key) != 0 && !or_replace) {
    return Status::AlreadyExists("view '", name, "' already exists");
  }
  views_[key] = std::move(definition);
  BumpVersion(key);
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '", name, "' does not exist");
  }
  return it->second.table;
}

Result<std::shared_ptr<SelectStmt>> Catalog::GetView(
    const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = views_.find(Key(name));
  if (it == views_.end()) {
    return Status::NotFound("view '", name, "' does not exist");
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  std::shared_lock lock(mu_);
  return tables_.count(Key(name)) != 0;
}

bool Catalog::HasView(const std::string& name) const {
  std::shared_lock lock(mu_);
  return views_.count(Key(name)) != 0;
}

Status Catalog::DropTable(const std::string& name, bool if_exists) {
  std::unique_lock lock(mu_);
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    if (!if_exists) {
      return Status::NotFound("table '", name, "' does not exist");
    }
    return Status::OK();
  }
  ReleaseTrackedLocked(it->second);
  tables_.erase(it);
  BumpVersion(Key(name));
  return Status::OK();
}

Status Catalog::DropView(const std::string& name, bool if_exists) {
  std::unique_lock lock(mu_);
  if (views_.erase(Key(name)) == 0) {
    if (!if_exists) {
      return Status::NotFound("view '", name, "' does not exist");
    }
    return Status::OK();
  }
  BumpVersion(Key(name));
  return Status::OK();
}

void Catalog::DropAllTemporary() {
  std::unique_lock lock(mu_);
  for (auto it = tables_.begin(); it != tables_.end();) {
    if (it->second.temporary) {
      ReleaseTrackedLocked(it->second);
      BumpVersion(it->first);
      it = tables_.erase(it);
    } else {
      ++it;
    }
  }
}

Status Catalog::Analyze(const std::string& name) {
  std::unique_lock lock(mu_);
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '", name, "' does not exist");
  }
  if (it->second.table->is_paged()) {
    // AnalyzeTable reads columns directly; stats collection is a one-shot
    // full pass, so materializing a copy is the honest cost either way.
    DL2SQL_ASSIGN_OR_RETURN(Table resident, it->second.table->Materialize());
    it->second.stats = AnalyzeTable(resident);
  } else {
    it->second.stats = AnalyzeTable(*it->second.table);
  }
  SyncTrackedLocked(it->second);
  // Fresh stats steer the optimizer differently: cached plans must re-plan.
  BumpVersion(it->first);
  return Status::OK();
}

const TableStats* Catalog::GetStats(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(Key(name));
  if (it == tables_.end() || !it->second.stats) return nullptr;
  return &*it->second.stats;
}

void Catalog::InvalidateStats(const std::string& name) {
  std::unique_lock lock(mu_);
  auto it = tables_.find(Key(name));
  if (it != tables_.end()) {
    it->second.stats.reset();
    it->second.indexes.clear();
    // Every DML path ends here, so tracked storage bytes re-sync here too.
    SyncTrackedLocked(it->second);
    // DML invalidation: plans cached against this relation stop validating.
    BumpVersion(it->first);
  }
}

Status Catalog::CreateIndex(const std::string& table,
                            const std::string& column) {
  std::unique_lock lock(mu_);
  auto it = tables_.find(Key(table));
  if (it == tables_.end()) {
    return Status::NotFound("table '", table, "' does not exist");
  }
  DL2SQL_ASSIGN_OR_RETURN(int col, it->second.table->schema().Find(column));
  std::shared_ptr<HashIndex> index;
  if (it->second.table->is_paged()) {
    DL2SQL_ASSIGN_OR_RETURN(Table resident, it->second.table->Materialize());
    DL2SQL_ASSIGN_OR_RETURN(index, HashIndex::Build(resident, col));
  } else {
    DL2SQL_ASSIGN_OR_RETURN(index, HashIndex::Build(*it->second.table, col));
  }
  it->second.indexes[ToLower(column)] = std::move(index);
  BumpVersion(it->first);
  return Status::OK();
}

std::shared_ptr<HashIndex> Catalog::GetIndex(const std::string& table,
                                             const std::string& column) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(Key(table));
  if (it == tables_.end()) return nullptr;
  auto ix = it->second.indexes.find(ToLower(column));
  return ix == it->second.indexes.end() ? nullptr : ix->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [k, _] : tables_) names.push_back(k);
  return names;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [k, _] : views_) names.push_back(k);
  return names;
}

bool Catalog::IsTemporary(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(Key(name));
  return it != tables_.end() && it->second.temporary;
}

uint64_t Catalog::VersionOf(const std::string& name) const {
  std::shared_lock lock(mu_);
  const std::string key = Key(name);
  uint64_t version = 0;
  auto it = versions_.find(key);
  if (it != versions_.end()) version = it->second;
  // Virtual tables fold in the provider's own version so swapping a provider
  // (new schema, same name) invalidates plans compiled against the old one.
  auto vt = virtual_tables_.find(key);
  if (vt != virtual_tables_.end()) version += vt->second->version();
  return version;
}

Status Catalog::RegisterVirtualTable(
    std::shared_ptr<VirtualTableProvider> provider) {
  if (provider == nullptr) {
    return Status::InvalidArgument("null virtual-table provider");
  }
  const std::string key = Key(provider->name());
  if (!IsSystemName(key) || key == "system") {
    return Status::InvalidArgument("virtual table '", provider->name(),
                                   "' must live in the 'system' schema");
  }
  std::unique_lock lock(mu_);
  virtual_tables_[key] = std::move(provider);
  BumpVersion(key);
  return Status::OK();
}

void Catalog::UnregisterVirtualTable(const std::string& name) {
  std::unique_lock lock(mu_);
  const std::string key = Key(name);
  if (virtual_tables_.erase(key) != 0) BumpVersion(key);
}

std::shared_ptr<VirtualTableProvider> Catalog::GetVirtualTable(
    const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = virtual_tables_.find(Key(name));
  return it == virtual_tables_.end() ? nullptr : it->second;
}

bool Catalog::HasVirtualTable(const std::string& name) const {
  std::shared_lock lock(mu_);
  return virtual_tables_.count(Key(name)) != 0;
}

std::vector<std::string> Catalog::VirtualTableNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(virtual_tables_.size());
  for (const auto& [k, _] : virtual_tables_) names.push_back(k);
  return names;
}

int64_t Catalog::TrackedBytes(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(Key(name));
  return it == tables_.end() ? 0 : it->second.tracked_bytes;
}

uint64_t Catalog::TotalBytes() const {
  std::shared_lock lock(mu_);
  uint64_t bytes = 0;
  for (const auto& [_, e] : tables_) bytes += e.table->ByteSize();
  return bytes;
}

}  // namespace dl2sql::db
