#include "db/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace dl2sql::db {

namespace {

/// Base (unqualified) column name of a bound/unbound reference.
std::string RefBaseName(const Expr& e) {
  const size_t dot = e.column_name.rfind('.');
  return dot == std::string::npos ? e.column_name
                                  : e.column_name.substr(dot + 1);
}

}  // namespace

const ColumnStats* FindColumnStats(const PlanNode& node, const Expr& column_ref,
                                   const CostContext& ctx) {
  if (column_ref.kind != ExprKind::kColumnRef || ctx.catalog == nullptr) {
    return nullptr;
  }
  // Walk down through row-preserving nodes to the scan.
  const PlanNode* cur = &node;
  while (cur->kind != PlanKind::kScan) {
    if (cur->children.size() != 1) return nullptr;
    cur = cur->children[0].get();
  }
  const TableStats* stats = ctx.catalog->GetStats(cur->table_name);
  if (stats == nullptr) return nullptr;
  return stats->Find(RefBaseName(column_ref));
}

double DefaultCostModel::ScanRows(const PlanNode& node,
                                  const CostContext& ctx) const {
  auto it = ctx.assumed_rows.find(ToLower(node.table_name));
  if (it != ctx.assumed_rows.end()) return it->second;
  if (ctx.catalog != nullptr) {
    auto table = ctx.catalog->GetTable(node.table_name);
    if (table.ok()) return static_cast<double>((*table)->num_rows());
  }
  // Unknown relation (not created yet): a textbook default.
  return 1000.0;
}

double DefaultCostModel::EstimateSelectivity(const Expr& pred,
                                             const PlanNode& child,
                                             const CostContext& ctx) const {
  std::vector<ExprPtr> conjuncts;
  // EstimateSelectivity may receive a conjunction; decompose and multiply.
  auto self = std::make_shared<Expr>(pred);
  SplitConjuncts(self, &conjuncts);
  if (conjuncts.size() > 1) {
    double sel = 1.0;
    for (const auto& c : conjuncts) {
      sel *= EstimateSelectivity(*c, child, ctx);
    }
    return sel;
  }

  if (pred.kind == ExprKind::kUnary && pred.un_op == UnaryOp::kNot) {
    return 1.0 - EstimateSelectivity(*pred.children[0], child, ctx);
  }
  if (pred.kind == ExprKind::kBinary && pred.bin_op == BinaryOp::kOr) {
    const double a = EstimateSelectivity(*pred.children[0], child, ctx);
    const double b = EstimateSelectivity(*pred.children[1], child, ctx);
    return std::min(1.0, a + b - a * b);
  }
  if (pred.kind == ExprKind::kBinary && IsComparison(pred.bin_op)) {
    const Expr& l = *pred.children[0];
    const Expr& r = *pred.children[1];
    // Opaque functions (including nUDFs) on either side: blind default.
    if (l.kind == ExprKind::kFuncCall || r.kind == ExprKind::kFuncCall) {
      return kOpaqueFnSelectivity;
    }
    const Expr* col = l.kind == ExprKind::kColumnRef ? &l : nullptr;
    const Expr* lit = r.kind == ExprKind::kLiteral ? &r : nullptr;
    if (col == nullptr && r.kind == ExprKind::kColumnRef) col = &r;
    if (lit == nullptr && l.kind == ExprKind::kLiteral) lit = &l;
    if (col != nullptr && lit != nullptr) {
      const ColumnStats* cs = FindColumnStats(child, *col, ctx);
      if (pred.bin_op == BinaryOp::kEq) {
        if (cs != nullptr && cs->num_distinct > 0) {
          return 1.0 / static_cast<double>(cs->num_distinct);
        }
        return kDefaultEqSelectivity;
      }
      if (pred.bin_op == BinaryOp::kNe) {
        if (cs != nullptr && cs->num_distinct > 0) {
          return 1.0 - 1.0 / static_cast<double>(cs->num_distinct);
        }
        return 1.0 - kDefaultEqSelectivity;
      }
      // Range: interpolate within [min, max] when numeric stats exist.
      if (cs != nullptr && cs->min && cs->max && *cs->max > *cs->min &&
          IsNumeric(lit->literal.type())) {
        const double v = *lit->literal.AsDouble();
        const double lo = *cs->min;
        const double hi = *cs->max;
        double frac = (v - lo) / (hi - lo);
        frac = std::clamp(frac, 0.0, 1.0);
        const bool less = pred.bin_op == BinaryOp::kLt ||
                          pred.bin_op == BinaryOp::kLe;
        const bool col_on_left = col == &l;
        // col < v  -> frac; col > v -> 1-frac; flipped when literal on left.
        const double sel = (less == col_on_left) ? frac : 1.0 - frac;
        return std::clamp(sel, 0.0, 1.0);
      }
      return kDefaultRangeSelectivity;
    }
    return kDefaultRangeSelectivity;
  }
  if (pred.kind == ExprKind::kFuncCall) {
    return kOpaqueFnSelectivity;
  }
  if (pred.kind == ExprKind::kInList) {
    return std::min(
        1.0, kDefaultEqSelectivity *
                 static_cast<double>(pred.children.size() - 1));
  }
  if (pred.kind == ExprKind::kLiteral &&
      pred.literal.type() == DataType::kBool) {
    return pred.literal.bool_value() ? 1.0 : 0.0;
  }
  return 0.5;
}

Status DefaultCostModel::Annotate(PlanNode* node, const CostContext& ctx) const {
  double child_cost = 0;
  for (auto& c : node->children) {
    DL2SQL_RETURN_NOT_OK(Annotate(c.get(), ctx));
    child_cost += c->est_cost;
  }
  // Morsel-parallel operators split their per-row CPU work across the
  // device's workers; scan and sort stay serial in the executor.
  const double par = std::max(1.0, ctx.parallelism);
  switch (node->kind) {
    case PlanKind::kScan: {
      double rows = ScanRows(*node, ctx);
      double cost = rows;  // one unit per row scanned
      for (const auto& p : node->scan_predicates) {
        rows *= EstimateSelectivity(*p, *node, ctx);
      }
      node->est_rows = rows;
      node->est_cost = cost;
      return Status::OK();
    }
    case PlanKind::kFilter: {
      const PlanNode& child = *node->children[0];
      const double sel = EstimateSelectivity(*node->predicate, child, ctx);
      node->est_rows = child.est_rows * sel;
      // One unit per input row evaluated; opaque functions cost nothing in
      // the blind model (that is its flaw).
      node->est_cost = child_cost + child.est_rows / par;
      return Status::OK();
    }
    case PlanKind::kProject: {
      const PlanNode& child = *node->children[0];
      node->est_rows = child.est_rows;
      node->est_cost = child_cost + child.est_rows / par;
      return Status::OK();
    }
    case PlanKind::kJoin: {
      const PlanNode& l = *node->children[0];
      const PlanNode& r = *node->children[1];
      double out;
      if (!node->join_is_inner && node->equi_keys.empty()) {
        out = l.est_rows * r.est_rows;
      } else {
        // With NDV stats on an equi key, use the textbook 1/max(ndv) rule;
        // otherwise fall back to the blind default selectivity.
        double stats_sel = 2.0;  // sentinel: >1 means "no stats found"
        for (const auto& [lk, rk] : node->equi_keys) {
          const ColumnStats* ls = FindColumnStats(l, *lk, ctx);
          const ColumnStats* rs = FindColumnStats(r, *rk, ctx);
          const int64_t ndv = std::max(ls != nullptr ? ls->num_distinct : 0,
                                       rs != nullptr ? rs->num_distinct : 0);
          if (ndv > 0) {
            stats_sel = std::min(stats_sel, 1.0 / static_cast<double>(ndv));
          }
        }
        const double sel =
            stats_sel <= 1.0 ? stats_sel : kDefaultJoinSelectivity;
        out = l.est_rows * r.est_rows * sel;
      }
      node->est_rows = out;
      // Hash join: serial build on the right, morsel-parallel probe + emit.
      node->est_cost = child_cost + r.est_rows + (l.est_rows + out) / par;
      return Status::OK();
    }
    case PlanKind::kAggregate: {
      const PlanNode& child = *node->children[0];
      double groups;
      if (node->group_keys.empty()) {
        groups = 1;
      } else {
        double ndv_product = 1;
        bool have_stats = false;
        for (const auto& k : node->group_keys) {
          const ColumnStats* cs = FindColumnStats(child, *k, ctx);
          if (cs != nullptr && cs->num_distinct > 0) {
            ndv_product *= static_cast<double>(cs->num_distinct);
            have_stats = true;
          }
        }
        groups = have_stats ? std::min(ndv_product, child.est_rows)
                            : child.est_rows * kDefaultGroupRatio;
      }
      node->est_rows = std::max(groups, 1.0);
      // Thread-local accumulation parallelizes; the merge/emit over groups
      // stays serial.
      node->est_cost = child_cost + child.est_rows / par + node->est_rows;
      return Status::OK();
    }
    case PlanKind::kSort: {
      const PlanNode& child = *node->children[0];
      node->est_rows = child.est_rows;
      const double n = std::max(child.est_rows, 2.0);
      node->est_cost = child_cost + n * std::log2(n);
      return Status::OK();
    }
    case PlanKind::kLimit: {
      const PlanNode& child = *node->children[0];
      node->est_rows = std::min(child.est_rows,
                                static_cast<double>(node->limit < 0
                                                        ? child.est_rows
                                                        : node->limit));
      node->est_cost = child_cost;
      return Status::OK();
    }
  }
  return Status::InternalError("unhandled plan kind in cost model");
}

}  // namespace dl2sql::db
