/// \file codec.h
/// \brief Columnar table compression, modeling ClickHouse's on-disk codecs.
///
/// Storage accounting (Table IV of the paper) compares the *stored* size of
/// the three model representations; the baseline systems "maintain models in
/// file systems using compression", and ClickHouse likewise stores columns
/// with delta/LZ4 codecs. This codec implements the dominant wins for our
/// parameter tables losslessly:
///   - INT64: zigzag-varint delta encoding (ID columns are near-sequential);
///   - FLOAT64: stored as float32 (all our values originate as float32);
///   - BOOL: bit-packed;
///   - STRING/BLOB: raw with varint length prefixes.
/// Compress/Decompress round-trip exactly (float columns round-trip through
/// float32, which is how they were produced).
#pragma once

#include <string>

#include "common/result.h"
#include "db/table.h"

namespace dl2sql::db {

/// Serializes a table into the compressed columnar format.
Result<std::string> CompressTable(const Table& table);

/// Inverse of CompressTable.
Result<Table> DecompressTable(const std::string& bytes);

/// Convenience: compressed byte size of a table.
Result<uint64_t> CompressedTableBytes(const Table& table);

}  // namespace dl2sql::db
