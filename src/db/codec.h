/// \file codec.h
/// \brief Columnar table compression, modeling ClickHouse's on-disk codecs.
///
/// Storage accounting (Table IV of the paper) compares the *stored* size of
/// the three model representations; the baseline systems "maintain models in
/// file systems using compression", and ClickHouse likewise stores columns
/// with delta/LZ4 codecs. This codec implements the dominant wins for our
/// parameter tables losslessly:
///   - INT64: zigzag-varint delta encoding (ID columns are near-sequential);
///   - FLOAT64: stored as float32 (all our values originate as float32);
///   - BOOL: bit-packed;
///   - STRING/BLOB: raw with varint length prefixes.
/// Compress/Decompress round-trip exactly (float columns round-trip through
/// float32, which is how they were produced).
#pragma once

#include <string>

#include "common/result.h"
#include "db/table.h"

namespace dl2sql::db {

/// Serializes a table into the compressed columnar format.
Result<std::string> CompressTable(const Table& table);

/// Inverse of CompressTable.
Result<Table> DecompressTable(const std::string& bytes);

/// Convenience: compressed byte size of a table.
Result<uint64_t> CompressedTableBytes(const Table& table);

/// \name Column-slice codec (paged storage)
///
/// Serializes rows [begin, end) of one column for the block-file chunks of
/// paged tables (db/storage/paged_table.h). Unlike CompressTable this format
/// is fully lossless — floats are stored as raw 8 bytes and NULLs are carried
/// in a bit-packed validity bitmap — because paged tables must be
/// bit-identical to their resident form. Ints are zigzag-varint
/// delta-encoded with the delta base reset per slice, bools bit-packed,
/// strings/blobs varint-length-prefixed.
/// @{

/// Appends the encoded slice to `*out`.
Status EncodeColumnSlice(const Column& col, int64_t begin, int64_t end,
                         std::string* out);

/// Decodes `n_rows` rows of a `type` column from `in` starting at `*pos`,
/// advancing `*pos` past the slice.
Result<Column> DecodeColumnSlice(DataType type, int64_t n_rows,
                                 const std::string& in, size_t* pos);
/// @}

}  // namespace dl2sql::db
