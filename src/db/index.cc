#include "db/index.h"

namespace dl2sql::db {

Result<std::shared_ptr<HashIndex>> HashIndex::Build(const Table& table,
                                                    int column_index) {
  if (column_index < 0 || column_index >= table.num_columns()) {
    return Status::InvalidArgument("index column ", column_index,
                                   " out of range");
  }
  const Column& col = table.column(column_index);
  if (col.type() != DataType::kInt64) {
    return Status::InvalidArgument(
        "hash indexes support INT64 columns, got ",
        DataTypeToString(col.type()), " for column ",
        table.schema().field(column_index).name);
  }
  auto index = std::shared_ptr<HashIndex>(new HashIndex());
  index->column_index_ = column_index;
  index->indexed_rows_ = col.size();
  index->map_.reserve(static_cast<size_t>(col.size()));
  const auto& vals = col.ints();
  for (int64_t r = 0; r < col.size(); ++r) {
    if (!col.IsValid(r)) continue;
    index->map_[vals[static_cast<size_t>(r)]].push_back(r);
  }
  return index;
}

}  // namespace dl2sql::db
