#include "db/sql/printer.h"

#include <cstdio>
#include <sstream>

namespace dl2sql::db::sql {

namespace {

std::string QuoteString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

void PrintTableRef(const TableRef& ref, std::ostringstream* oss) {
  if (ref.IsDerived()) {
    *oss << "(" << PrintSelect(*ref.subquery) << ")";
  } else {
    *oss << ref.table_name;
  }
  if (!ref.alias.empty()) *oss << " " << ref.alias;
}

}  // namespace

std::string PrintExpr(const Expr& e) {
  std::ostringstream oss;
  switch (e.kind) {
    case ExprKind::kLiteral:
      switch (e.literal.type()) {
        case DataType::kString:
        case DataType::kBlob:
          oss << QuoteString(e.literal.string_value());
          break;
        case DataType::kFloat64: {
          // %.17g round-trips doubles exactly: printed statements shipped to
          // cluster shards (and persisted view definitions) must reparse to
          // the same value, not a 6-significant-digit approximation.
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.17g", e.literal.float_value());
          std::string text(buf);
          // Integral doubles print bare ("2"), which would reparse as an
          // integer literal; keep the float type explicit.
          if (text.find_first_of(".eE") == std::string::npos) text += ".0";
          oss << text;
          break;
        }
        default:
          oss << e.literal.ToString();
          break;
      }
      break;
    case ExprKind::kColumnRef:
      oss << e.column_name;
      break;
    case ExprKind::kBinary:
      oss << "(" << PrintExpr(*e.children[0]) << " "
          << BinaryOpToString(e.bin_op) << " " << PrintExpr(*e.children[1])
          << ")";
      break;
    case ExprKind::kUnary:
      if (e.un_op == UnaryOp::kNot) {
        oss << "NOT (" << PrintExpr(*e.children[0]) << ")";
      } else {
        oss << "-(" << PrintExpr(*e.children[0]) << ")";
      }
      break;
    case ExprKind::kFuncCall: {
      oss << e.func_name << "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) oss << ", ";
        oss << PrintExpr(*e.children[i]);
      }
      oss << ")";
      break;
    }
    case ExprKind::kAggCall:
      oss << AggFuncToString(e.agg_func) << "(";
      if (e.agg_func == AggFunc::kCountStar) {
        oss << "*";
      } else {
        oss << PrintExpr(*e.children[0]);
      }
      oss << ")";
      break;
    case ExprKind::kScalarSubquery:
      oss << "(" << PrintSelect(*e.subquery) << ")";
      break;
    case ExprKind::kInList: {
      oss << PrintExpr(*e.children[0]) << " IN (";
      for (size_t i = 1; i < e.children.size(); ++i) {
        if (i > 1) oss << ", ";
        oss << PrintExpr(*e.children[i]);
      }
      oss << ")";
      break;
    }
    case ExprKind::kStar:
      oss << "*";
      break;
  }
  return oss.str();
}

std::string PrintSelect(const SelectStmt& stmt) {
  std::ostringstream oss;
  oss << "SELECT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << PrintExpr(*stmt.items[i].expr);
    if (!stmt.items[i].alias.empty()) oss << " AS " << stmt.items[i].alias;
  }
  if (stmt.from) {
    oss << " FROM ";
    PrintTableRef(*stmt.from, &oss);
    for (const auto& j : stmt.joins) {
      if (j.join == JoinType::kCross) {
        oss << ", ";
        PrintTableRef(j.table, &oss);
      } else {
        oss << " INNER JOIN ";
        PrintTableRef(j.table, &oss);
        oss << " ON " << PrintExpr(*j.on);
      }
    }
  }
  if (stmt.where != nullptr) oss << " WHERE " << PrintExpr(*stmt.where);
  if (!stmt.group_by.empty()) {
    oss << " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) oss << ", ";
      oss << PrintExpr(*stmt.group_by[i]);
    }
  }
  if (stmt.having != nullptr) oss << " HAVING " << PrintExpr(*stmt.having);
  if (!stmt.order_by.empty()) {
    oss << " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) oss << ", ";
      oss << PrintExpr(*stmt.order_by[i].expr);
      if (!stmt.order_by[i].ascending) oss << " DESC";
    }
  }
  if (stmt.limit >= 0) oss << " LIMIT " << stmt.limit;
  return oss.str();
}

}  // namespace dl2sql::db::sql
