#include "db/sql/lexer.h"

#include <cctype>

namespace dl2sql::db::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: -- ... \n
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.offset = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      t.type = TokenType::kIdent;
      t.text = sql.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' ||
                       ((sql[j] == '+' || sql[j] == '-') && j > i &&
                        (sql[j - 1] == 'e' || sql[j - 1] == 'E')))) {
        if (sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E') is_float = true;
        ++j;
      }
      const std::string num = sql.substr(i, j - i);
      try {
        if (is_float) {
          t.type = TokenType::kFloat;
          t.float_val = std::stod(num);
        } else {
          t.type = TokenType::kInt;
          t.int_val = std::stoll(num);
        }
      } catch (const std::exception&) {
        return Status::ParseError("bad numeric literal '", num, "' at offset ",
                                  i);
      }
      t.text = num;
      i = j;
    } else if (c == '\'') {
      // String literal; '' escapes a quote.
      std::string out;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            out.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        out.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset ", i);
      }
      t.type = TokenType::kString;
      t.text = std::move(out);
      i = j;
    } else {
      // Multi-char operators first.
      t.type = TokenType::kSymbol;
      if (i + 1 < n) {
        const std::string two = sql.substr(i, 2);
        if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
          t.text = two == "<>" ? "!=" : two;
          i += 2;
          tokens.push_back(std::move(t));
          continue;
        }
      }
      static const std::string kSingles = "(),.*+-/%=<>;";
      if (kSingles.find(c) == std::string::npos) {
        return Status::ParseError("unexpected character '", std::string(1, c),
                                  "' at offset ", i);
      }
      t.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace dl2sql::db::sql
