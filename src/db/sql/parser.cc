#include "db/sql/parser.h"

#include "common/string_util.h"

namespace dl2sql::db::sql {

namespace {

/// Aggregate function names recognized by the parser.
Result<AggFunc> LookupAggFunc(const std::string& name) {
  if (EqualsIgnoreCase(name, "count")) return AggFunc::kCount;
  if (EqualsIgnoreCase(name, "sum")) return AggFunc::kSum;
  if (EqualsIgnoreCase(name, "avg")) return AggFunc::kAvg;
  if (EqualsIgnoreCase(name, "min")) return AggFunc::kMin;
  if (EqualsIgnoreCase(name, "max")) return AggFunc::kMax;
  if (EqualsIgnoreCase(name, "stddevsamp") ||
      EqualsIgnoreCase(name, "stddev_samp")) {
    return AggFunc::kStddevSamp;
  }
  return Status::NotFound("not an aggregate");
}

Result<DataType> LookupTypeName(const std::string& name) {
  if (EqualsIgnoreCase(name, "int") || EqualsIgnoreCase(name, "integer") ||
      EqualsIgnoreCase(name, "bigint") || EqualsIgnoreCase(name, "int64")) {
    return DataType::kInt64;
  }
  if (EqualsIgnoreCase(name, "float") || EqualsIgnoreCase(name, "double") ||
      EqualsIgnoreCase(name, "real") || EqualsIgnoreCase(name, "float64")) {
    return DataType::kFloat64;
  }
  if (EqualsIgnoreCase(name, "text") || EqualsIgnoreCase(name, "string") ||
      EqualsIgnoreCase(name, "varchar") || EqualsIgnoreCase(name, "date")) {
    return DataType::kString;
  }
  if (EqualsIgnoreCase(name, "bool") || EqualsIgnoreCase(name, "boolean")) {
    return DataType::kBool;
  }
  if (EqualsIgnoreCase(name, "blob") || EqualsIgnoreCase(name, "bytes")) {
    return DataType::kBlob;
  }
  return Status::ParseError("unknown type name '", name, "'");
}

/// Keywords that terminate an implicit alias position.
bool IsReservedKeyword(const std::string& s) {
  static const char* kWords[] = {
      "select", "from",  "where",  "group", "having", "order",  "limit",
      "inner",  "join",  "on",     "and",   "or",     "not",    "as",
      "by",     "asc",   "desc",   "in",    "union",  "left",   "right",
      "cross",  "set",   "values", "into",  "update", "delete", "create",
      "drop",   "table", "view",   "temp",  "temporary"};
  for (const char* w : kWords) {
    if (EqualsIgnoreCase(s, w)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseOneStatement() {
    DL2SQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    Accept(";");
    if (!AtEnd()) {
      return Status::ParseError("trailing tokens after statement, near '",
                                Peek().text, "'");
    }
    return stmt;
  }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      if (Accept(";")) continue;
      DL2SQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
      out.push_back(std::move(stmt));
      if (!AtEnd() && !Accept(";")) {
        return Status::ParseError("expected ';' between statements, near '",
                                  Peek().text, "'");
      }
    }
    return out;
  }

  Result<ExprPtr> ParseLoneExpression() {
    DL2SQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) {
      return Status::ParseError("trailing tokens after expression, near '",
                                Peek().text, "'");
    }
    return e;
  }

 private:
  // ------------------------------------------------------------ helpers ----
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  /// True and consume if the next token is the given symbol or keyword.
  bool Accept(const std::string& text) {
    const Token& t = Peek();
    if (t.type == TokenType::kSymbol && t.text == text) {
      ++pos_;
      return true;
    }
    if (t.type == TokenType::kIdent && EqualsIgnoreCase(t.text, text)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekIs(const std::string& text, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    if (t.type == TokenType::kSymbol) return t.text == text;
    if (t.type == TokenType::kIdent) return EqualsIgnoreCase(t.text, text);
    return false;
  }

  Status Expect(const std::string& text) {
    if (!Accept(text)) {
      return Status::ParseError("expected '", text, "', found '", Peek().text,
                                "' at offset ", Peek().offset);
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().type != TokenType::kIdent) {
      return Status::ParseError("expected ", what, ", found '", Peek().text,
                                "' at offset ", Peek().offset);
    }
    return Advance().text;
  }

  /// Relation name with optional schema qualifier: `ident` or `ident.ident`
  /// (e.g. "system.metrics"). The qualified pair is a single relation name
  /// everywhere downstream (catalog keys, planner, plan cache).
  Result<std::string> ExpectRelationName(const char* what) {
    DL2SQL_ASSIGN_OR_RETURN(std::string name, ExpectIdent(what));
    if (Accept(".")) {
      DL2SQL_ASSIGN_OR_RETURN(std::string rel,
                              ExpectIdent("relation name after '.'"));
      name += "." + rel;
    }
    return name;
  }

  // --------------------------------------------------------- statements ----
  Result<Statement> ParseStatementInner() {
    if (PeekIs("select") || PeekIs("(")) {
      DL2SQL_ASSIGN_OR_RETURN(auto sel, ParseSelectMaybeParen());
      return Statement(sel);
    }
    if (PeekIs("create")) return ParseCreate();
    if (PeekIs("insert")) return ParseInsert();
    if (PeekIs("update")) return ParseUpdate();
    if (PeekIs("delete")) return ParseDelete();
    if (PeekIs("drop")) return ParseDrop();
    return Status::ParseError("unknown statement starting at '", Peek().text,
                              "'");
  }

  Result<std::shared_ptr<SelectStmt>> ParseSelectMaybeParen() {
    if (Accept("(")) {
      DL2SQL_ASSIGN_OR_RETURN(auto sel, ParseSelectMaybeParen());
      DL2SQL_RETURN_NOT_OK(Expect(")"));
      return sel;
    }
    return ParseSelect();
  }

  Result<std::shared_ptr<SelectStmt>> ParseSelect() {
    DL2SQL_RETURN_NOT_OK(Expect("select"));
    auto stmt = std::make_shared<SelectStmt>();
    // Select list.
    do {
      SelectItem item;
      if (PeekIs("*") &&
          !(Peek(1).type == TokenType::kSymbol && Peek(1).text == ".")) {
        Advance();
        item.expr = Expr::Star();
      } else {
        DL2SQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Accept("as")) {
          DL2SQL_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
        } else if (Peek().type == TokenType::kIdent &&
                   !IsReservedKeyword(Peek().text)) {
          item.alias = Advance().text;
        }
      }
      stmt->items.push_back(std::move(item));
    } while (Accept(","));

    if (Accept("from")) {
      DL2SQL_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
      stmt->from = std::move(first);
      for (;;) {
        if (Accept(",")) {
          FromEntry e;
          e.join = JoinType::kCross;
          DL2SQL_ASSIGN_OR_RETURN(e.table, ParseTableRef());
          stmt->joins.push_back(std::move(e));
          continue;
        }
        const bool inner = PeekIs("inner");
        if (inner || PeekIs("join")) {
          if (inner) Advance();
          DL2SQL_RETURN_NOT_OK(Expect("join"));
          FromEntry e;
          e.join = JoinType::kInner;
          DL2SQL_ASSIGN_OR_RETURN(e.table, ParseTableRef());
          DL2SQL_RETURN_NOT_OK(Expect("on"));
          DL2SQL_ASSIGN_OR_RETURN(e.on, ParseExpr());
          stmt->joins.push_back(std::move(e));
          continue;
        }
        break;
      }
    }

    if (Accept("where")) {
      DL2SQL_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (Accept("group")) {
      DL2SQL_RETURN_NOT_OK(Expect("by"));
      do {
        DL2SQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (Accept(","));
    }
    if (Accept("having")) {
      DL2SQL_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (Accept("order")) {
      DL2SQL_RETURN_NOT_OK(Expect("by"));
      do {
        OrderItem item;
        DL2SQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Accept("desc")) {
          item.ascending = false;
        } else {
          Accept("asc");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Accept(","));
    }
    if (Accept("limit")) {
      if (Peek().type != TokenType::kInt) {
        return Status::ParseError("LIMIT expects an integer");
      }
      stmt->limit = Advance().int_val;
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (Accept("(")) {
      DL2SQL_ASSIGN_OR_RETURN(ref.subquery, ParseSelectMaybeParen());
      DL2SQL_RETURN_NOT_OK(Expect(")"));
    } else {
      DL2SQL_ASSIGN_OR_RETURN(ref.table_name,
                              ExpectRelationName("table name"));
    }
    if (Accept("as")) {
      DL2SQL_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("table alias"));
    } else if (Peek().type == TokenType::kIdent &&
               !IsReservedKeyword(Peek().text)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  Result<Statement> ParseCreate() {
    DL2SQL_RETURN_NOT_OK(Expect("create"));
    CreateTableStmt stmt;
    if (Accept("or")) {
      DL2SQL_RETURN_NOT_OK(Expect("replace"));
      stmt.or_replace = true;
    }
    if (Accept("temp") || Accept("temporary")) stmt.temporary = true;
    if (Accept("view")) {
      stmt.is_view = true;
    } else {
      DL2SQL_RETURN_NOT_OK(Expect("table"));
    }
    if (Accept("if")) {
      DL2SQL_RETURN_NOT_OK(Expect("not"));
      DL2SQL_RETURN_NOT_OK(Expect("exists"));
      stmt.if_not_exists = true;
    }
    DL2SQL_ASSIGN_OR_RETURN(stmt.name, ExpectRelationName("table name"));

    if (Accept("as")) {
      DL2SQL_ASSIGN_OR_RETURN(stmt.as_select, ParseSelectMaybeParen());
      return Statement(std::move(stmt));
    }
    if (Accept("(")) {
      // Either "(SELECT ...)" (the paper's Q1 style) or a column list.
      if (PeekIs("select")) {
        DL2SQL_ASSIGN_OR_RETURN(stmt.as_select, ParseSelect());
        DL2SQL_RETURN_NOT_OK(Expect(")"));
        return Statement(std::move(stmt));
      }
      do {
        Field f;
        DL2SQL_ASSIGN_OR_RETURN(f.name, ExpectIdent("column name"));
        DL2SQL_ASSIGN_OR_RETURN(std::string tname, ExpectIdent("type name"));
        DL2SQL_ASSIGN_OR_RETURN(f.type, LookupTypeName(tname));
        stmt.columns.push_back(std::move(f));
      } while (Accept(","));
      DL2SQL_RETURN_NOT_OK(Expect(")"));
      if (Accept("partition")) {
        DL2SQL_RETURN_NOT_OK(Expect("by"));
        DL2SQL_RETURN_NOT_OK(Expect("hash"));
        DL2SQL_RETURN_NOT_OK(Expect("("));
        DL2SQL_ASSIGN_OR_RETURN(stmt.partition_by,
                                ExpectIdent("partition column"));
        DL2SQL_RETURN_NOT_OK(Expect(")"));
        bool found = false;
        for (const Field& f : stmt.columns) {
          if (ToLower(f.name) == ToLower(stmt.partition_by)) found = true;
        }
        if (!found) {
          return Status::ParseError("PARTITION BY HASH names unknown column ",
                                    stmt.partition_by);
        }
      }
      return Statement(std::move(stmt));
    }
    return Status::ParseError("CREATE ", stmt.is_view ? "VIEW" : "TABLE",
                              " requires AS SELECT or a column list");
  }

  Result<Statement> ParseInsert() {
    DL2SQL_RETURN_NOT_OK(Expect("insert"));
    DL2SQL_RETURN_NOT_OK(Expect("into"));
    InsertStmt stmt;
    DL2SQL_ASSIGN_OR_RETURN(stmt.table, ExpectRelationName("table name"));
    if (Accept("(")) {
      do {
        DL2SQL_ASSIGN_OR_RETURN(std::string c, ExpectIdent("column name"));
        stmt.columns.push_back(std::move(c));
      } while (Accept(","));
      DL2SQL_RETURN_NOT_OK(Expect(")"));
    }
    if (Accept("values")) {
      do {
        DL2SQL_RETURN_NOT_OK(Expect("("));
        std::vector<ExprPtr> row;
        do {
          DL2SQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          row.push_back(std::move(e));
        } while (Accept(","));
        DL2SQL_RETURN_NOT_OK(Expect(")"));
        stmt.rows.push_back(std::move(row));
      } while (Accept(","));
      return Statement(std::move(stmt));
    }
    if (PeekIs("select") || PeekIs("(")) {
      DL2SQL_ASSIGN_OR_RETURN(stmt.select, ParseSelectMaybeParen());
      return Statement(std::move(stmt));
    }
    return Status::ParseError("INSERT requires VALUES or SELECT");
  }

  Result<Statement> ParseUpdate() {
    DL2SQL_RETURN_NOT_OK(Expect("update"));
    UpdateStmt stmt;
    DL2SQL_ASSIGN_OR_RETURN(stmt.table, ExpectRelationName("table name"));
    DL2SQL_RETURN_NOT_OK(Expect("set"));
    do {
      DL2SQL_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      DL2SQL_RETURN_NOT_OK(Expect("="));
      DL2SQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(e));
    } while (Accept(","));
    if (Accept("where")) {
      DL2SQL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    DL2SQL_RETURN_NOT_OK(Expect("delete"));
    DL2SQL_RETURN_NOT_OK(Expect("from"));
    DeleteStmt stmt;
    DL2SQL_ASSIGN_OR_RETURN(stmt.table, ExpectRelationName("table name"));
    if (Accept("where")) {
      DL2SQL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDrop() {
    DL2SQL_RETURN_NOT_OK(Expect("drop"));
    DropStmt stmt;
    if (Accept("view")) {
      stmt.is_view = true;
    } else {
      DL2SQL_RETURN_NOT_OK(Expect("table"));
    }
    if (Accept("if")) {
      DL2SQL_RETURN_NOT_OK(Expect("exists"));
      stmt.if_exists = true;
    }
    DL2SQL_ASSIGN_OR_RETURN(stmt.name, ExpectRelationName("table name"));
    return Statement(std::move(stmt));
  }

  // -------------------------------------------------------- expressions ----
  // Precedence: OR < AND < NOT < comparison/IN < +,- < *,/,% < unary < atom
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DL2SQL_ASSIGN_OR_RETURN(ExprPtr l, ParseAnd());
    while (Accept("or")) {
      DL2SQL_ASSIGN_OR_RETURN(ExprPtr r, ParseAnd());
      l = Expr::Binary(BinaryOp::kOr, std::move(l), std::move(r));
    }
    return l;
  }

  Result<ExprPtr> ParseAnd() {
    DL2SQL_ASSIGN_OR_RETURN(ExprPtr l, ParseNot());
    while (Accept("and")) {
      DL2SQL_ASSIGN_OR_RETURN(ExprPtr r, ParseNot());
      l = Expr::Binary(BinaryOp::kAnd, std::move(l), std::move(r));
    }
    return l;
  }

  Result<ExprPtr> ParseNot() {
    if (Accept("not")) {
      DL2SQL_ASSIGN_OR_RETURN(ExprPtr x, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(x));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    DL2SQL_ASSIGN_OR_RETURN(ExprPtr l, ParseAdditive());
    static const std::pair<const char*, BinaryOp> kOps[] = {
        {"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const auto& [sym, op] : kOps) {
      if (Accept(sym)) {
        DL2SQL_ASSIGN_OR_RETURN(ExprPtr r, ParseAdditive());
        return Expr::Binary(op, std::move(l), std::move(r));
      }
    }
    if (Accept("in")) {
      DL2SQL_RETURN_NOT_OK(Expect("("));
      std::vector<ExprPtr> list;
      do {
        DL2SQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        list.push_back(std::move(e));
      } while (Accept(","));
      DL2SQL_RETURN_NOT_OK(Expect(")"));
      return Expr::In(std::move(l), std::move(list));
    }
    return l;
  }

  Result<ExprPtr> ParseAdditive() {
    DL2SQL_ASSIGN_OR_RETURN(ExprPtr l, ParseMultiplicative());
    for (;;) {
      if (Accept("+")) {
        DL2SQL_ASSIGN_OR_RETURN(ExprPtr r, ParseMultiplicative());
        l = Expr::Binary(BinaryOp::kAdd, std::move(l), std::move(r));
      } else if (Accept("-")) {
        DL2SQL_ASSIGN_OR_RETURN(ExprPtr r, ParseMultiplicative());
        l = Expr::Binary(BinaryOp::kSub, std::move(l), std::move(r));
      } else {
        return l;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    DL2SQL_ASSIGN_OR_RETURN(ExprPtr l, ParseUnary());
    for (;;) {
      if (Accept("*")) {
        DL2SQL_ASSIGN_OR_RETURN(ExprPtr r, ParseUnary());
        l = Expr::Binary(BinaryOp::kMul, std::move(l), std::move(r));
      } else if (Accept("/")) {
        DL2SQL_ASSIGN_OR_RETURN(ExprPtr r, ParseUnary());
        l = Expr::Binary(BinaryOp::kDiv, std::move(l), std::move(r));
      } else if (Accept("%")) {
        DL2SQL_ASSIGN_OR_RETURN(ExprPtr r, ParseUnary());
        l = Expr::Binary(BinaryOp::kMod, std::move(l), std::move(r));
      } else {
        return l;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept("-")) {
      DL2SQL_ASSIGN_OR_RETURN(ExprPtr x, ParseUnary());
      // Constant-fold negative literals so they stay literals.
      if (x->kind == ExprKind::kLiteral) {
        if (x->literal.type() == DataType::kInt64) {
          return Expr::Lit(Value::Int(-x->literal.int_value()));
        }
        if (x->literal.type() == DataType::kFloat64) {
          return Expr::Lit(Value::Float(-x->literal.float_value()));
        }
      }
      return Expr::Unary(UnaryOp::kNeg, std::move(x));
    }
    Accept("+");
    return ParseAtom();
  }

  Result<ExprPtr> ParseAtom() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInt: {
        Advance();
        return Expr::Lit(Value::Int(t.int_val));
      }
      case TokenType::kFloat: {
        Advance();
        return Expr::Lit(Value::Float(t.float_val));
      }
      case TokenType::kString: {
        Advance();
        return Expr::Lit(Value::String(t.text));
      }
      case TokenType::kSymbol: {
        if (t.text == "(") {
          Advance();
          if (PeekIs("select")) {
            DL2SQL_ASSIGN_OR_RETURN(auto sub, ParseSelect());
            DL2SQL_RETURN_NOT_OK(Expect(")"));
            return Expr::Subquery(sub);
          }
          DL2SQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          DL2SQL_RETURN_NOT_OK(Expect(")"));
          return e;
        }
        break;
      }
      case TokenType::kIdent: {
        // Literal keywords.
        if (EqualsIgnoreCase(t.text, "true")) {
          Advance();
          return Expr::Lit(Value::Bool(true));
        }
        if (EqualsIgnoreCase(t.text, "false")) {
          Advance();
          return Expr::Lit(Value::Bool(false));
        }
        if (EqualsIgnoreCase(t.text, "null")) {
          Advance();
          return Expr::Lit(Value::Null());
        }
        const std::string name = Advance().text;
        // Function call?
        if (PeekIs("(")) {
          Advance();
          auto agg = LookupAggFunc(name);
          if (agg.ok()) {
            if (*agg == AggFunc::kCount && Accept("*")) {
              DL2SQL_RETURN_NOT_OK(Expect(")"));
              return Expr::Agg(AggFunc::kCountStar, nullptr);
            }
            DL2SQL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            DL2SQL_RETURN_NOT_OK(Expect(")"));
            return Expr::Agg(*agg, std::move(arg));
          }
          std::vector<ExprPtr> args;
          if (!Accept(")")) {
            do {
              DL2SQL_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
              args.push_back(std::move(a));
            } while (Accept(","));
            DL2SQL_RETURN_NOT_OK(Expect(")"));
          }
          return Expr::Func(name, std::move(args));
        }
        // Qualified column a.b (or a.*, rejected here).
        if (PeekIs(".")) {
          Advance();
          DL2SQL_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
          return Expr::Col(name + "." + col);
        }
        return Expr::Col(name);
      }
      default:
        break;
    }
    return Status::ParseError("unexpected token '", t.text, "' at offset ",
                              t.offset);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& input) {
  DL2SQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser p(std::move(tokens));
  return p.ParseOneStatement();
}

Result<std::vector<Statement>> ParseScript(const std::string& input) {
  DL2SQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser p(std::move(tokens));
  return p.ParseAll();
}

std::vector<std::string> SplitStatements(const std::string& input) {
  std::vector<std::string> pieces;
  std::string current;
  auto emit = [&] {
    // Drop pieces that hold no statement (whitespace/comment-only).
    const size_t first = current.find_first_not_of(" \t\r\n");
    if (first != std::string::npos) {
      const size_t last = current.find_last_not_of(" \t\r\n");
      pieces.push_back(current.substr(first, last - first + 1));
    }
    current.clear();
  };
  for (size_t i = 0; i < input.size(); ++i) {
    const char c = input[i];
    if (c == '\'') {
      // String literal; '' escapes a quote (mirrors the lexer).
      current.push_back(c);
      for (++i; i < input.size(); ++i) {
        current.push_back(input[i]);
        if (input[i] == '\'') {
          if (i + 1 < input.size() && input[i + 1] == '\'') {
            current.push_back(input[++i]);
          } else {
            break;
          }
        }
      }
      continue;
    }
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '-') {
      // Line comment: keep it in the piece (the lexer skips it) but never
      // split on a ';' inside it.
      while (i < input.size() && input[i] != '\n') current.push_back(input[i++]);
      if (i < input.size()) current.push_back('\n');
      continue;
    }
    if (c == ';') {
      emit();
      continue;
    }
    current.push_back(c);
  }
  emit();
  return pieces;
}

Result<ExprPtr> ParseExpression(const std::string& input) {
  DL2SQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser p(std::move(tokens));
  return p.ParseLoneExpression();
}

}  // namespace dl2sql::db::sql
