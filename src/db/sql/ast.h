/// \file ast.h
/// \brief Parsed statement representations for the lindb SQL dialect.
///
/// Dialect coverage (driven by the paper's queries Q1-Q5 and Table I):
///   SELECT ... FROM t [alias][, t2 ...] [INNER JOIN t3 ON ...] WHERE ...
///     GROUP BY ... HAVING ... ORDER BY ... LIMIT n
///   scalar subqueries, derived tables (SELECT in FROM)
///   CREATE [TEMP] TABLE name AS SELECT / (SELECT ...) / (col type, ...)
///   CREATE [OR REPLACE] VIEW name AS SELECT
///   INSERT INTO name VALUES (...), (...) / INSERT INTO name SELECT
///   UPDATE name SET col = expr [WHERE ...]
///   DELETE FROM name [WHERE ...]
///   DROP TABLE/VIEW [IF EXISTS] name
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "db/expr.h"
#include "db/types.h"

namespace dl2sql::db {

struct SelectStmt;

/// One relation in a FROM clause: a base table or a derived subquery.
struct TableRef {
  std::string table_name;                  ///< empty for derived tables
  std::shared_ptr<SelectStmt> subquery;    ///< set for derived tables
  std::string alias;                       ///< optional

  bool IsDerived() const { return subquery != nullptr; }
  /// Name used to qualify this relation's columns.
  std::string EffectiveName() const {
    return alias.empty() ? table_name : alias;
  }
};

enum class JoinType : uint8_t { kCross, kInner };

/// FROM-list entry after the first: either a comma (cross) join or an
/// explicit INNER JOIN with an ON condition.
struct FromEntry {
  TableRef table;
  JoinType join = JoinType::kCross;
  ExprPtr on;  ///< null for cross joins
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< optional output name
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::optional<TableRef> from;   ///< absent for SELECT <exprs>
  std::vector<FromEntry> joins;   ///< remaining FROM-list entries
  ExprPtr where;                  ///< nullable
  std::vector<ExprPtr> group_by;
  ExprPtr having;                 ///< nullable
  std::vector<OrderItem> order_by;
  int64_t limit = -1;             ///< -1 = no limit
};

struct CreateTableStmt {
  std::string name;
  bool temporary = false;
  bool is_view = false;
  bool or_replace = false;
  bool if_not_exists = false;
  std::vector<Field> columns;               ///< for explicit column DDL
  std::shared_ptr<SelectStmt> as_select;    ///< for CTAS / views
  /// Column named by a trailing `PARTITION BY HASH (col)` clause (explicit
  /// column DDL only). A plain embedded Database ignores it — partitioning is
  /// advisory metadata consumed by the cluster coordinator, which routes
  /// rows by the column's hash.
  std::string partition_by;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;            ///< optional column list
  std::vector<std::vector<ExprPtr>> rows;      ///< VALUES form
  std::shared_ptr<SelectStmt> select;          ///< INSERT ... SELECT form
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  ///< nullable
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  ///< nullable
};

struct DropStmt {
  std::string name;
  bool if_exists = false;
  bool is_view = false;
};

using Statement = std::variant<std::shared_ptr<SelectStmt>, CreateTableStmt,
                               InsertStmt, UpdateStmt, DeleteStmt, DropStmt>;

}  // namespace dl2sql::db
