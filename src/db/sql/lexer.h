/// \file lexer.h
/// \brief SQL tokenizer for the lindb dialect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dl2sql::db::sql {

enum class TokenType : uint8_t {
  kIdent,    ///< identifiers and keywords (case-insensitive)
  kInt,      ///< integer literal
  kFloat,    ///< floating-point literal
  kString,   ///< single-quoted string literal (quotes stripped)
  kSymbol,   ///< punctuation / operator: ( ) , . * + - / % = != <> < <= > >= ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   ///< raw text (lower-cased for idents? no: as written)
  int64_t int_val = 0;
  double float_val = 0;
  size_t offset = 0;  ///< byte offset in the input, for error messages
};

/// Tokenizes `sql`; returns ParseError with position info on bad input.
/// The token stream always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace dl2sql::db::sql
