/// \file printer.h
/// \brief Renders parsed statements back to SQL text that the parser accepts
/// (used by snapshots to persist view definitions, and by tests to check
/// round-tripping).
#pragma once

#include <string>

#include "db/sql/ast.h"

namespace dl2sql::db::sql {

/// SELECT statement -> SQL.
std::string PrintSelect(const SelectStmt& stmt);

/// Expression -> SQL.
std::string PrintExpr(const Expr& e);

}  // namespace dl2sql::db::sql
