/// \file parser.h
/// \brief Recursive-descent parser for the lindb SQL dialect.
#pragma once

#include "common/result.h"
#include "db/sql/ast.h"
#include "db/sql/lexer.h"

namespace dl2sql::db::sql {

/// Parses a single statement (a trailing ';' is allowed).
Result<Statement> ParseStatement(const std::string& input);

/// Parses a script of ';'-separated statements.
Result<std::vector<Statement>> ParseScript(const std::string& input);

/// Splits a script into the texts of its ';'-separated statements without
/// parsing them, respecting single-quoted strings ('' escapes a quote) and
/// `--` line comments exactly as the lexer does. Empty/whitespace-only pieces
/// are dropped. Lets callers attach the failing statement's index and SQL
/// text to errors (Database::ExecuteScript) and feed statements one at a time
/// to a remote server (lindb_client).
std::vector<std::string> SplitStatements(const std::string& input);

/// Parses a standalone expression (used by tests and programmatic plans).
Result<ExprPtr> ParseExpression(const std::string& input);

}  // namespace dl2sql::db::sql
