/// \file parser.h
/// \brief Recursive-descent parser for the lindb SQL dialect.
#pragma once

#include "common/result.h"
#include "db/sql/ast.h"
#include "db/sql/lexer.h"

namespace dl2sql::db::sql {

/// Parses a single statement (a trailing ';' is allowed).
Result<Statement> ParseStatement(const std::string& input);

/// Parses a script of ';'-separated statements.
Result<std::vector<Statement>> ParseScript(const std::string& input);

/// Parses a standalone expression (used by tests and programmatic plans).
Result<ExprPtr> ParseExpression(const std::string& input);

}  // namespace dl2sql::db::sql
