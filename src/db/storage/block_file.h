/// \file block_file.h
/// \brief BlockFile: a single temp-backed tablespace of fixed-size blocks.
///
/// All paged tables and executor spill partitions of one StorageEngine share
/// one file, addressed by block id (offset = id * block_bytes). Blocks are
/// allocated from a bump pointer with a free list, so dropping a paged table
/// returns its blocks for reuse instead of growing the file. The file is
/// created with mkstemp and unlinked immediately: the kernel reclaims it when
/// the last descriptor closes, so crashed processes leave nothing behind.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace dl2sql::db::storage {

class BlockFile {
 public:
  /// Creates an anonymous block file inside `dir` (empty = TMPDIR or /tmp).
  static Result<std::unique_ptr<BlockFile>> Open(const std::string& dir,
                                                 size_t block_bytes);
  ~BlockFile();

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  size_t block_bytes() const { return block_bytes_; }

  /// Reserves one block id (free-listed ids are reused first).
  int64_t Allocate();

  /// Returns a block to the free list. The caller must ensure no frame in
  /// any buffer pool still maps it (BufferPool::Discard first).
  void Free(int64_t block);

  /// Reads one full block into `dst` (block_bytes() bytes). Blocks that were
  /// allocated but never written read back as zeros (the file is sparse).
  Status Read(int64_t block, char* dst) const;

  /// Writes one full block from `src` (block_bytes() bytes).
  Status Write(int64_t block, const char* src);

  /// Blocks currently allocated (high-water minus free list).
  int64_t allocated_blocks() const;
  /// High-water block count — on-disk footprint upper bound.
  int64_t file_blocks() const;

 private:
  BlockFile(int fd, size_t block_bytes)
      : fd_(fd), block_bytes_(block_bytes) {}

  const int fd_;
  const size_t block_bytes_;
  mutable std::mutex mu_;  ///< guards the allocator state only; I/O is pread/pwrite
  int64_t next_block_ = 0;
  std::vector<int64_t> free_list_;
};

}  // namespace dl2sql::db::storage
