/// \file storage_engine.h
/// \brief StorageEngine: the per-Database owner of the out-of-core machinery.
///
/// One engine bundles the shared BlockFile tablespace and the pinning
/// BufferPool, plus the knobs that shape paged tables and executor spills.
/// Paged tables (paged_table.h) and the grace-join / external-aggregation
/// spill paths all allocate blocks here, so one pool budget governs every
/// byte of cached block data in the database.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/storage/block_file.h"
#include "db/storage/buffer_pool.h"

namespace dl2sql::db::storage {

struct StorageOptions {
  /// Buffer-pool budget across all shards. Env: DL2SQL_BUFFER_POOL_BYTES.
  size_t pool_bytes = 256ull << 20;
  /// Fixed block size of the tablespace file.
  size_t block_bytes = 64 * 1024;
  /// Buffer-pool shard count (lock striping).
  int shards = 4;
  /// Rows per paged-table chunk (one chunk = one contiguous block run).
  int64_t chunk_rows = 4096;
  /// Tables whose logical payload is below this stay resident even in paged
  /// mode — paging tiny dimension tables costs more than it saves.
  /// Env: DL2SQL_PAGE_MIN_BYTES.
  size_t page_min_bytes = 1 << 20;
  /// Partition fan-out for grace hash join and external aggregation.
  /// Env: DL2SQL_SPILL_PARTITIONS.
  int spill_partitions = 16;
  /// Directory for the (unlinked) tablespace temp file; empty = TMPDIR or
  /// /tmp. Env: DL2SQL_STORAGE_DIR.
  std::string dir;

  /// Applies DL2SQL_BUFFER_POOL_BYTES / DL2SQL_PAGE_MIN_BYTES /
  /// DL2SQL_SPILL_PARTITIONS / DL2SQL_STORAGE_DIR on top of the defaults.
  /// Unparseable values are ignored with a warning, like the other env gates.
  static StorageOptions FromEnv();
};

class StorageEngine {
 public:
  static Result<std::shared_ptr<StorageEngine>> Create(
      const StorageOptions& options);

  const StorageOptions& options() const { return options_; }
  BlockFile& block_file() { return *file_; }
  BufferPool& pool() { return *pool_; }

  /// Allocates `n` blocks (free-listed ids first).
  std::vector<int64_t> AllocateBlocks(int64_t n);

  /// Returns blocks to the free list, dropping any cached frames first.
  void FreeBlocks(const std::vector<int64_t>& blocks);

  /// Publishes pool/file stats into the global MetricsRegistry
  /// (storage.* gauges) together with the process RSS gauges.
  void UpdateMetrics();

  /// Refreshes process.rss_bytes / process.peak_rss_bytes from
  /// /proc/self/statm and getrusage. Static so the bench can call it without
  /// an engine. Returns current RSS in bytes (0 if unavailable).
  static int64_t UpdateProcessRssMetrics();

 private:
  StorageEngine(StorageOptions options, std::unique_ptr<BlockFile> file);

  const StorageOptions options_;
  std::unique_ptr<BlockFile> file_;
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace dl2sql::db::storage
