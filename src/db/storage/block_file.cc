#include "db/storage/block_file.h"

#include <errno.h>
#include <fcntl.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

namespace dl2sql::db::storage {

Result<std::unique_ptr<BlockFile>> BlockFile::Open(const std::string& dir,
                                                   size_t block_bytes) {
  if (block_bytes == 0) {
    return Status::InvalidArgument("block_bytes must be positive");
  }
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = ::getenv("TMPDIR");
    base = tmp != nullptr && *tmp != '\0' ? tmp : "/tmp";
  }
  std::string path = base + "/dl2sql-blocks-XXXXXX";
  std::vector<char> tmpl(path.begin(), path.end());
  tmpl.push_back('\0');
  const int fd = ::mkstemp(tmpl.data());
  if (fd < 0) {
    return Status::IoError("mkstemp(", path, "): ", ::strerror(errno));
  }
  // Unlink immediately: the tablespace lives only as long as the descriptor,
  // so no cleanup pass is ever needed, even after a crash.
  ::unlink(tmpl.data());
  return std::unique_ptr<BlockFile>(new BlockFile(fd, block_bytes));
}

BlockFile::~BlockFile() { ::close(fd_); }

int64_t BlockFile::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_list_.empty()) {
    const int64_t b = free_list_.back();
    free_list_.pop_back();
    return b;
  }
  return next_block_++;
}

void BlockFile::Free(int64_t block) {
  std::lock_guard<std::mutex> lock(mu_);
  free_list_.push_back(block);
}

Status BlockFile::Read(int64_t block, char* dst) const {
  size_t done = 0;
  const off_t base = static_cast<off_t>(block) * static_cast<off_t>(block_bytes_);
  while (done < block_bytes_) {
    const ssize_t n = ::pread(fd_, dst + done, block_bytes_ - done,
                              base + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pread(block ", block, "): ", ::strerror(errno));
    }
    if (n == 0) {
      // Reading past EOF: the block was allocated but never written
      // (all-null column slices encode to zero payload bytes). Zero-fill.
      ::memset(dst + done, 0, block_bytes_ - done);
      return Status::OK();
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status BlockFile::Write(int64_t block, const char* src) {
  size_t done = 0;
  const off_t base = static_cast<off_t>(block) * static_cast<off_t>(block_bytes_);
  while (done < block_bytes_) {
    const ssize_t n = ::pwrite(fd_, src + done, block_bytes_ - done,
                               base + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pwrite(block ", block, "): ", ::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

int64_t BlockFile::allocated_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_block_ - static_cast<int64_t>(free_list_.size());
}

int64_t BlockFile::file_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_block_;
}

}  // namespace dl2sql::db::storage
