/// \file buffer_pool.h
/// \brief Sharded pinning buffer pool over a BlockFile (see DESIGN.md,
/// "Out-of-core storage").
///
/// The pool caches fixed-size blocks in frames. Readers Pin() a block — a
/// cache hit bumps the pin count, a miss allocates or evicts a frame and
/// reads the block from disk — and hold the returned PinnedBlock RAII handle
/// for as long as they need the bytes stable; unpinned frames become eviction
/// candidates for a per-shard clock (second-chance) sweep. Writers Put() a
/// freshly allocated block: the frame is marked dirty and written back to the
/// BlockFile only when evicted (or at FlushAll), so spill partitions that fit
/// in the pool never touch disk at all.
///
/// Memory accounting: the budget is enforced with a plain per-shard byte
/// counter (it is a functional cap, so it holds even under
/// DL2SQL_MEM_TRACKER=OFF); every frame's bytes are additionally mirrored
/// into a per-shard MemTracker child of "storage.buffer_pool" (parented
/// under the process tracker) for system.metrics / profile visibility.
/// Budget exhaustion triggers eviction; each shard admits at least one frame
/// unconditionally, so progress is guaranteed even under budgets smaller
/// than one block per shard (effective floor: shards * block_bytes).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/mem_tracker.h"
#include "common/result.h"
#include "db/storage/block_file.h"

namespace dl2sql::db::storage {

class BufferPool;

/// RAII pin on one cached block. The referenced bytes stay valid and
/// unevictable until destruction. Movable, not copyable.
class PinnedBlock {
 public:
  PinnedBlock() = default;
  PinnedBlock(PinnedBlock&& o) noexcept { *this = std::move(o); }
  PinnedBlock& operator=(PinnedBlock&& o) noexcept;
  ~PinnedBlock();

  PinnedBlock(const PinnedBlock&) = delete;
  PinnedBlock& operator=(const PinnedBlock&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  explicit operator bool() const { return data_ != nullptr; }

 private:
  friend class BufferPool;
  PinnedBlock(BufferPool* pool, int shard, int frame, const char* data,
              size_t size)
      : pool_(pool), shard_(shard), frame_(frame), data_(data), size_(size) {}

  BufferPool* pool_ = nullptr;
  int shard_ = 0;
  int frame_ = -1;
  const char* data_ = nullptr;
  size_t size_ = 0;
};

class BufferPool {
 public:
  /// `budget_bytes` caps cached frame memory across all shards (floor: one
  /// frame per shard). `file` is not owned and must outlive the pool.
  BufferPool(BlockFile* file, size_t budget_bytes, int shards);
  ~BufferPool();

  /// Pins `block`, reading it from the file on a miss. Fails with
  /// ResourceExhausted only when every frame of the block's shard is pinned
  /// and the budget admits no new frame.
  Result<PinnedBlock> Pin(int64_t block);

  /// Caches `len` bytes (<= block_bytes, zero-padded) as the content of
  /// `block` and marks the frame dirty; write-back happens at eviction or
  /// FlushAll. The caller must be the only writer of `block` (fresh ids from
  /// BlockFile::Allocate are).
  Status Put(int64_t block, const char* data, size_t len);

  /// Drops any frames caching these blocks without write-back (the blocks
  /// are being freed; their content is dead).
  void Discard(const std::vector<int64_t>& blocks);

  /// Writes every dirty frame back to the file (tests and durability hooks).
  Status FlushAll();

  struct Stats {
    int64_t frames = 0;         ///< resident frames across all shards
    int64_t frame_bytes = 0;    ///< frames * block_bytes
    int64_t pinned = 0;         ///< frames with a live pin
    int64_t dirty = 0;          ///< frames awaiting write-back
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t writebacks = 0;
    int64_t budget_bytes = 0;   ///< configured budget
  };
  Stats stats() const;

  size_t block_bytes() const { return file_->block_bytes(); }
  size_t budget_bytes() const { return budget_; }

  /// The pool-level tracker ("storage.buffer_pool"); shard charges are its
  /// children. Test introspection.
  const MemTracker& mem_tracker() const { return *tracker_; }

 private:
  friend class PinnedBlock;
  struct Frame;
  struct Shard;

  int ShardOf(int64_t block) const;
  void Unpin(int shard, int frame);
  /// Finds or loads `block` in its shard; returns the frame index with the
  /// pin count already bumped. Called with the shard lock held.
  Result<int> PinLocked(Shard& s, int64_t block);
  /// Makes a frame available in shard `s`: reuse a free slot under budget or
  /// evict the clock's next unpinned victim (writing back if dirty). Returns
  /// the frame index, or ResourceExhausted when everything is pinned.
  Result<int> AcquireFrameLocked(Shard& s);

  BlockFile* const file_;
  const size_t budget_;
  std::unique_ptr<MemTracker> tracker_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dl2sql::db::storage
