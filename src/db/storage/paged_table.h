/// \file paged_table.h
/// \brief PagedTableData: the out-of-core backing of a Table in paged mode.
///
/// A paged table's rows live in the StorageEngine's block file as a sequence
/// of *chunks* (chunk_rows rows each, last one short). One chunk is the
/// concatenation of every column's EncodeColumnSlice output, split across
/// ceil(bytes / block_bytes) blocks; decoding a chunk therefore needs all of
/// its blocks pinned at once, which bounds the pin footprint of a scan window
/// to one chunk. The codec is lossless (codec.h slice functions), so a paged
/// table materializes back to exactly the Table it was built from — the
/// bit-identity contract of DL2SQL_STORAGE=paged rests on this.
///
/// PagedTableData is immutable after Finish(); mutation goes through
/// Table::EnsureResident() (decode everything, drop the backing). The
/// destructor returns the chunks' blocks to the engine's free list.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "db/storage/storage_engine.h"
#include "db/table.h"

namespace dl2sql::db::storage {

class PagedTableBuilder;

class PagedTableData {
 public:
  ~PagedTableData();

  PagedTableData(const PagedTableData&) = delete;
  PagedTableData& operator=(const PagedTableData&) = delete;

  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(types_.size()); }
  /// Resident-equivalent payload bytes (what Table::ByteSize() would report
  /// after materializing). Logical, not on-disk.
  int64_t logical_bytes() const { return logical_bytes_; }
  int64_t num_chunks() const { return static_cast<int64_t>(chunks_.size()); }
  int64_t chunk_first_row(int64_t c) const {
    return chunks_[static_cast<size_t>(c)].first_row;
  }
  int64_t chunk_rows(int64_t c) const {
    return chunks_[static_cast<size_t>(c)].rows;
  }
  /// Index of the chunk containing `row` (0 <= row < num_rows()).
  int64_t ChunkOfRow(int64_t row) const;

  StorageEngine* engine() const { return engine_.get(); }
  /// Shared handle for callers that build further paged tables (spill paths)
  /// against the same engine.
  const std::shared_ptr<StorageEngine>& shared_engine() const {
    return engine_;
  }

  /// Decodes one chunk into resident columns (all blocks pinned during the
  /// read, released before returning).
  Result<std::vector<Column>> ReadChunk(int64_t c) const;

  /// Decodes rows by global index, in the given (arbitrary) order. Chunks
  /// are decoded at most once per contiguous run, so mostly-ascending index
  /// lists (limits, delete keep-lists, sorted join sides) stay cheap.
  Result<std::vector<Column>> Gather(const std::vector<int64_t>& rows) const;

  /// Decodes every chunk into full resident columns.
  Result<std::vector<Column>> Materialize() const;

 private:
  friend class PagedTableBuilder;

  struct ChunkRef {
    int64_t first_row = 0;
    int64_t rows = 0;
    std::vector<int64_t> blocks;
    int64_t encoded_bytes = 0;  ///< payload length inside the block run
  };

  PagedTableData(std::shared_ptr<StorageEngine> engine,
                 std::vector<DataType> types)
      : engine_(std::move(engine)), types_(std::move(types)) {}

  /// Reassembles a chunk's encoded payload from its pinned blocks.
  Result<std::string> ReadChunkBytes(const ChunkRef& chunk) const;

  std::shared_ptr<StorageEngine> engine_;
  std::vector<DataType> types_;
  std::vector<ChunkRef> chunks_;
  int64_t num_rows_ = 0;
  int64_t logical_bytes_ = 0;
};

/// \brief Streaming writer: feed rows in order, get a PagedTableData.
///
/// Full chunks are encoded straight from the source columns (no row-wise
/// value boxing), so building a paged table from a resident one — or from a
/// generator appending slice-sized batches, as bench/oocore_scale.cc does —
/// never holds more than one chunk of staging plus the pool's frames.
class PagedTableBuilder {
 public:
  PagedTableBuilder(std::shared_ptr<StorageEngine> engine, TableSchema schema);

  /// Appends all rows of `t` (column types must match the schema).
  Status Append(const Table& t);

  Status AppendRow(const std::vector<Value>& row);

  /// Flushes the staging tail and returns the finished immutable backing.
  /// The builder must not be reused afterwards.
  Result<std::shared_ptr<PagedTableData>> Finish();

 private:
  /// Encodes rows [begin, end) of `t` as one chunk and writes its blocks.
  Status FlushChunk(const Table& t, int64_t begin, int64_t end);

  std::shared_ptr<StorageEngine> engine_;
  TableSchema schema_;
  Table staging_;
  std::shared_ptr<PagedTableData> data_;
};

}  // namespace dl2sql::db::storage
