#include "db/storage/paged_table.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "common/logging.h"
#include "db/codec.h"

namespace dl2sql::db::storage {

namespace {

// Resident bytes of rows [begin, end) of `col`, mirroring Column::ByteSize.
int64_t SliceByteSize(const Column& col, int64_t begin, int64_t end) {
  const int64_t n = end - begin;
  int64_t bytes = col.validity().empty() ? 0 : n;
  switch (col.type()) {
    case DataType::kBool:
      bytes += n;
      break;
    case DataType::kInt64:
      bytes += n * static_cast<int64_t>(sizeof(int64_t));
      break;
    case DataType::kFloat64:
      bytes += n * static_cast<int64_t>(sizeof(double));
      break;
    case DataType::kString:
    case DataType::kBlob:
      for (int64_t i = begin; i < end; ++i) {
        bytes += static_cast<int64_t>(
            col.strings()[static_cast<size_t>(i)].size() + sizeof(uint32_t));
      }
      break;
    case DataType::kNull:
      break;
  }
  return bytes;
}

// Appends all of `src` onto `dst` column-wise (typed vector inserts, no
// per-value boxing). Types must match.
void AppendPiece(Column* dst, const Column& src) {
  const int64_t dst_rows = dst->size();
  const int64_t src_rows = src.size();
  const bool dst_nulls = !dst->validity().empty();
  const bool src_nulls = !src.validity().empty();
  switch (dst->type()) {
    case DataType::kBool: {
      auto& v = dst->mutable_bools();
      v.insert(v.end(), src.bools().begin(), src.bools().end());
      break;
    }
    case DataType::kInt64: {
      auto& v = dst->mutable_ints();
      v.insert(v.end(), src.ints().begin(), src.ints().end());
      break;
    }
    case DataType::kFloat64: {
      auto& v = dst->mutable_floats();
      v.insert(v.end(), src.floats().begin(), src.floats().end());
      break;
    }
    case DataType::kString:
    case DataType::kBlob: {
      auto& v = dst->mutable_strings();
      v.insert(v.end(), src.strings().begin(), src.strings().end());
      break;
    }
    case DataType::kNull:
      break;
  }
  if (dst_nulls || src_nulls) {
    std::vector<uint8_t> merged = dst->validity();
    if (merged.empty()) merged.assign(static_cast<size_t>(dst_rows), 1);
    if (src_nulls) {
      merged.insert(merged.end(), src.validity().begin(),
                    src.validity().end());
    } else {
      merged.insert(merged.end(), static_cast<size_t>(src_rows), 1);
    }
    dst->SetValidity(std::move(merged));
  }
}

}  // namespace

PagedTableData::~PagedTableData() {
  std::vector<int64_t> all;
  for (const ChunkRef& c : chunks_) {
    all.insert(all.end(), c.blocks.begin(), c.blocks.end());
  }
  if (!all.empty()) engine_->FreeBlocks(all);
}

int64_t PagedTableData::ChunkOfRow(int64_t row) const {
  DL2SQL_CHECK(row >= 0 && row < num_rows_) << "row " << row << " out of "
                                            << num_rows_;
  // Chunks have uniform size except the last, so direct division works.
  const int64_t per = chunks_.front().rows;
  const int64_t c = std::min<int64_t>(row / per, num_chunks() - 1);
  DL2SQL_CHECK(row >= chunks_[static_cast<size_t>(c)].first_row);
  return c;
}

Result<std::string> PagedTableData::ReadChunkBytes(const ChunkRef& chunk) const {
  std::string buf;
  buf.reserve(static_cast<size_t>(chunk.encoded_bytes));
  int64_t remaining = chunk.encoded_bytes;
  for (const int64_t block : chunk.blocks) {
    DL2SQL_ASSIGN_OR_RETURN(PinnedBlock pin, engine_->pool().Pin(block));
    const size_t take = static_cast<size_t>(std::min<int64_t>(
        remaining, static_cast<int64_t>(pin.size())));
    buf.append(pin.data(), take);
    remaining -= static_cast<int64_t>(take);
  }
  if (remaining != 0) {
    return Status::InternalError("chunk byte count mismatch: ", remaining,
                                 " bytes unread");
  }
  return buf;
}

Result<std::vector<Column>> PagedTableData::ReadChunk(int64_t c) const {
  const ChunkRef& chunk = chunks_[static_cast<size_t>(c)];
  DL2SQL_ASSIGN_OR_RETURN(std::string buf, ReadChunkBytes(chunk));
  std::vector<Column> cols;
  cols.reserve(types_.size());
  size_t pos = 0;
  for (const DataType type : types_) {
    DL2SQL_ASSIGN_OR_RETURN(Column col,
                            DecodeColumnSlice(type, chunk.rows, buf, &pos));
    cols.push_back(std::move(col));
  }
  return cols;
}

Result<std::vector<Column>> PagedTableData::Gather(
    const std::vector<int64_t>& rows) const {
  std::vector<Column> out;
  out.reserve(types_.size());
  for (const DataType type : types_) out.emplace_back(type);
  int64_t cached_chunk = -1;
  std::vector<Column> cached;
  // Each maximal run of requested rows falling in one chunk becomes one
  // Take() on the decoded chunk; the single-chunk cache also covers repeats.
  size_t i = 0;
  while (i < rows.size()) {
    const int64_t c = ChunkOfRow(rows[i]);
    if (c != cached_chunk) {
      DL2SQL_ASSIGN_OR_RETURN(cached, ReadChunk(c));
      cached_chunk = c;
    }
    const ChunkRef& chunk = chunks_[static_cast<size_t>(c)];
    std::vector<int64_t> local;
    while (i < rows.size() && rows[i] >= chunk.first_row &&
           rows[i] < chunk.first_row + chunk.rows) {
      local.push_back(rows[i] - chunk.first_row);
      ++i;
    }
    for (size_t k = 0; k < out.size(); ++k) {
      AppendPiece(&out[k], cached[k].Take(local));
    }
  }
  return out;
}

Result<std::vector<Column>> PagedTableData::Materialize() const {
  std::vector<Column> out;
  out.reserve(types_.size());
  for (const DataType type : types_) out.emplace_back(type);
  for (int64_t c = 0; c < num_chunks(); ++c) {
    DL2SQL_ASSIGN_OR_RETURN(std::vector<Column> cols, ReadChunk(c));
    for (size_t k = 0; k < out.size(); ++k) {
      AppendPiece(&out[k], cols[k]);
    }
  }
  return out;
}

PagedTableBuilder::PagedTableBuilder(std::shared_ptr<StorageEngine> engine,
                                     TableSchema schema)
    : engine_(std::move(engine)),
      schema_(std::move(schema)),
      staging_(schema_) {
  std::vector<DataType> types;
  types.reserve(static_cast<size_t>(schema_.num_fields()));
  for (int i = 0; i < schema_.num_fields(); ++i) {
    types.push_back(schema_.field(i).type);
  }
  data_ = std::shared_ptr<PagedTableData>(
      new PagedTableData(engine_, std::move(types)));
}

Status PagedTableBuilder::FlushChunk(const Table& t, int64_t begin,
                                     int64_t end) {
  std::string buf;
  int64_t slice_bytes = 0;
  for (int c = 0; c < t.num_columns(); ++c) {
    DL2SQL_RETURN_NOT_OK(EncodeColumnSlice(t.column(c), begin, end, &buf));
    slice_bytes += SliceByteSize(t.column(c), begin, end);
  }
  const size_t bb = engine_->block_file().block_bytes();
  const int64_t n_blocks = static_cast<int64_t>((buf.size() + bb - 1) / bb);
  PagedTableData::ChunkRef chunk;
  chunk.first_row = data_->num_rows_;
  chunk.rows = end - begin;
  chunk.encoded_bytes = static_cast<int64_t>(buf.size());
  chunk.blocks = engine_->AllocateBlocks(n_blocks);
  for (int64_t b = 0; b < n_blocks; ++b) {
    const size_t off = static_cast<size_t>(b) * bb;
    const size_t len = std::min(bb, buf.size() - off);
    Status s = engine_->pool().Put(chunk.blocks[static_cast<size_t>(b)],
                                   buf.data() + off, len);
    if (!s.ok()) {
      engine_->FreeBlocks(chunk.blocks);
      return s;
    }
  }
  data_->chunks_.push_back(std::move(chunk));
  data_->num_rows_ += end - begin;
  data_->logical_bytes_ += slice_bytes;
  return Status::OK();
}

Status PagedTableBuilder::Append(const Table& t) {
  if (t.num_columns() != schema_.num_fields()) {
    return Status::InvalidArgument("paged append: column count mismatch");
  }
  if (schema_.num_fields() == 0) {
    return Status::InvalidArgument("cannot page a zero-column table");
  }
  for (int c = 0; c < t.num_columns(); ++c) {
    if (t.column(c).type() != schema_.field(c).type) {
      return Status::TypeError("paged append: column ", c, " type mismatch");
    }
  }
  const int64_t chunk_rows = engine_->options().chunk_rows;
  int64_t pos = 0;
  while (pos < t.num_rows()) {
    if (staging_.num_rows() == 0 && t.num_rows() - pos >= chunk_rows) {
      // Whole chunk available: encode straight from the source columns.
      DL2SQL_RETURN_NOT_OK(FlushChunk(t, pos, pos + chunk_rows));
      pos += chunk_rows;
      continue;
    }
    const int64_t take = std::min(chunk_rows - staging_.num_rows(),
                                  t.num_rows() - pos);
    std::vector<int64_t> idx(static_cast<size_t>(take));
    std::iota(idx.begin(), idx.end(), pos);
    for (int c = 0; c < t.num_columns(); ++c) {
      AppendPiece(&staging_.mutable_column(c), t.column(c).Take(idx));
    }
    pos += take;
    if (staging_.num_rows() == chunk_rows) {
      DL2SQL_RETURN_NOT_OK(FlushChunk(staging_, 0, chunk_rows));
      staging_ = Table(schema_);
    }
  }
  return Status::OK();
}

Status PagedTableBuilder::AppendRow(const std::vector<Value>& row) {
  if (schema_.num_fields() == 0) {
    return Status::InvalidArgument("cannot page a zero-column table");
  }
  DL2SQL_RETURN_NOT_OK(staging_.AppendRow(row));
  if (staging_.num_rows() == engine_->options().chunk_rows) {
    DL2SQL_RETURN_NOT_OK(FlushChunk(staging_, 0, staging_.num_rows()));
    staging_ = Table(schema_);
  }
  return Status::OK();
}

Result<std::shared_ptr<PagedTableData>> PagedTableBuilder::Finish() {
  if (staging_.num_rows() > 0) {
    DL2SQL_RETURN_NOT_OK(FlushChunk(staging_, 0, staging_.num_rows()));
    staging_ = Table(schema_);
  }
  if (data_->chunks_.empty() && data_->num_rows_ == 0 &&
      schema_.num_fields() == 0) {
    return Status::InvalidArgument("cannot page a zero-column table");
  }
  return std::move(data_);
}

}  // namespace dl2sql::db::storage
