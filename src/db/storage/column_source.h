/// \file column_source.h
/// \brief ColumnSource: windowed iteration over a table's columns.
///
/// The out-of-core executor paths (windowed aggregation, spill partitioning,
/// scan streaming) must not assume a table's columns are resident. A
/// ColumnSource presents any table as a sequence of row windows, each of
/// which materializes to a small resident Table on demand:
///   - resident tables yield fixed-size slice windows (or one whole-table
///     window when the size hint is 0) — cheap columnar Takes;
///   - paged tables yield one window per storage chunk, so a full pass pins
///     at most one chunk's blocks at a time.
/// Iterating windows in order therefore bounds executor residency to
/// max(window bytes) regardless of table size.
#pragma once

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "db/table.h"

namespace dl2sql::db::storage {

class ColumnSource {
 public:
  virtual ~ColumnSource() = default;

  virtual int64_t num_rows() const = 0;
  virtual int64_t num_windows() const = 0;
  /// Global row index of the first row of window `w`.
  virtual int64_t window_start(int64_t w) const = 0;
  virtual int64_t window_rows(int64_t w) const = 0;
  /// Materializes window `w` as a resident Table with the source's schema.
  virtual Result<Table> ReadWindow(int64_t w) const = 0;
};

/// Builds the appropriate source for `table`. `window_rows_hint` shapes
/// resident-table windows (0 = one window spanning the whole table); paged
/// tables always window per chunk.
std::unique_ptr<ColumnSource> MakeColumnSource(const TablePtr& table,
                                               int64_t window_rows_hint);

}  // namespace dl2sql::db::storage
